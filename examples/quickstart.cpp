// Quickstart: offload one kernel from the host MCU to the PULP accelerator.
//
// This walks the whole heterogeneous path the paper describes:
//   1. pick a kernel (matmul on char data) and generate its accelerator
//      program for the 4-core cluster,
//   2. open an offload session: STM32-L476 host at 16 MHz, QSPI link,
//      accelerator at the 0.5 V near-threshold operating point,
//   3. run the offload: binary + input over the link, cluster executes,
//      results come back,
//   4. verify bit-exactness against the golden reference and print the
//      timing/energy/power budget breakdown.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "kernels/kernel.hpp"
#include "kernels/runner.hpp"
#include "runtime/offload.hpp"

int main() {
  using namespace ulp;

  // 1. Generate the kernel for the accelerator target.
  const core::CoreConfig accel_cfg = core::or10n_config();
  const kernels::KernelCase kc = kernels::make_matmul_char(
      accel_cfg.features, /*num_cores=*/4, kernels::Target::kCluster,
      /*seed=*/42);
  std::printf("kernel:        %s\n", kc.name.c_str());
  std::printf("input:         %zu bytes   output: %zu bytes\n",
              kc.input.size(), kc.output_bytes);
  std::printf("binary image:  %zu bytes (%zu instructions)\n",
              kc.binary_bytes(), kc.program.code.size());

  // 2. Offload session: host at 16 MHz, accelerator at the 0.5 V point.
  const double mcu_freq = mhz(16);
  const host::McuSpec& mcu = host::stm32l476();
  link::SpiLinkConfig link_cfg;
  link_cfg.lanes = mcu.spi_lanes;  // QSPI
  link_cfg.max_freq_hz = mcu.spi_max_hz;
  runtime::OffloadSession session(mcu, mcu_freq, link::SpiLink(link_cfg));
  const power::PulpPowerModel& pm = session.power_model();
  const power::OperatingPoint op{0.5, pm.fmax_hz(0.5)};

  // 3. Run the full offload.
  const runtime::OffloadOutcome outcome =
      session.run(kc.offload_request(), op);

  // 4. Verify and report.
  if (outcome.output != kc.expected) {
    std::printf("FAIL: accelerator output does not match the reference!\n");
    return 1;
  }
  std::printf("result:        bit-exact match with the golden reference\n\n");

  const auto& t = outcome.timing;
  std::printf("-- timing (one offload, one iteration) --\n");
  std::printf("code offload:  %8.1f us  (%zu bytes over the link)\n",
              t.t_binary_s * 1e6, t.binary_bytes);
  std::printf("input in:      %8.1f us\n", t.t_in_s * 1e6);
  std::printf("compute:       %8.1f us  (%llu cluster cycles @ %.0f MHz)\n",
              t.t_compute_s * 1e6,
              static_cast<unsigned long long>(t.accel_cycles),
              op.freq_hz / 1e6);
  std::printf("output back:   %8.1f us\n", t.t_out_s * 1e6);
  std::printf("total:         %8.1f us\n", t.total_s(1, false) * 1e6);

  std::printf("\n-- power --\n");
  std::printf("MCU active:    %6.2f mW @ %.0f MHz\n",
              mcu.active_power_w(mcu_freq) * 1e3, mcu_freq / 1e6);
  std::printf("PULP compute:  %6.2f mW @ %.2f V (chi_run=%.2f)\n",
              pm.total_w(outcome.activity, op) * 1e3, op.vdd,
              outcome.activity.cores_run);
  std::printf("steady system: %6.2f mW (double-buffered iteration stream)\n",
              session.steady_power_w(outcome, op, true) * 1e3);

  const auto e = session.energy(outcome, op, 1, false);
  std::printf("\n-- energy (one iteration) --\n");
  std::printf("MCU: %.2f uJ   PULP: %.2f uJ   link: %.2f uJ   total: %.2f uJ\n",
              e.mcu_j * 1e6, e.pulp_j * 1e6, e.link_j * 1e6,
              e.total_j() * 1e6);

  // Comparison point: the same kernel on the MCU alone.
  const auto mcu_cfg = mcu.core_config();
  const auto kc_mcu = kernels::make_matmul_char(
      mcu_cfg.features, 1, kernels::Target::kFlat, 42);
  const auto mcu_run = kernels::run_on_flat(kc_mcu, mcu_cfg);
  const double t_mcu = static_cast<double>(mcu_run.cycles) / mcu_freq;
  std::printf("\n-- vs MCU alone @ %.0f MHz --\n", mcu_freq / 1e6);
  std::printf("MCU compute:   %8.1f us  ->  offloaded speedup %.1fx\n",
              t_mcu * 1e6, t_mcu / t.t_compute_s);
  return 0;
}
