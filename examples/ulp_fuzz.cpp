// ulp_fuzz: randomized differential verification driver.
//
// Default run: a campaign of constrained-random single-core programs
// checked against the independent golden interpreter and the full cluster
// stepping matrix (reference per-cycle, plain fast-forward, block-cached),
// plus multi-core stress schedules checked for convergence, DMA
// byte-exactness, and equality across every stepping mode — including
// block-cached multi-core windows, the fifth differential column. Failures
// are auto-shrunk to minimal repros.
//
//   ulp_fuzz                         default campaign (500 + 100)
//   ulp_fuzz --programs N --stress M --seed S --items K
//   ulp_fuzz --coverage              print the opcode coverage matrix;
//                                    exit 1 if any opcode went unexercised
//   ulp_fuzz --replay file.repro     re-run one saved repro (all modes)
//   ulp_fuzz --emit-corpus DIR N     save N generated programs as .repro
//   ulp_fuzz --shrink-out DIR        where to write shrunken failures
//   ulp_fuzz --block-cache 0|1       pin the process-wide ISS block-cache
//                                    default (same latch as ULP_BLOCK_CACHE;
//                                    check_program itself pins every leg's
//                                    mode explicitly, so this only affects
//                                    paths outside the differential matrix)
//   ulp_fuzz --mc-windows 0|1        likewise for multi-core block windows
//                                    (same latch as ULP_MC_WINDOWS)
//   ulp_fuzz --snapshot-every K      run the snapshot differential column
//                                    (mid-run save/restore into a fresh
//                                    cluster, stitched run must be
//                                    bit-identical) on every Kth program;
//                                    1 = every program (default), 0 = off
//
// Exit codes: 0 = clean, 1 = differential failures (or coverage gap with
// --coverage), 2 = usage / setup error.
#include <cstring>
#include <iostream>
#include <string>

#include "common/cli.hpp"
#include "common/config.hpp"
#include "common/status.hpp"
#include "verif/differential.hpp"
#include "verif/repro.hpp"
#include "verif/shrink.hpp"

namespace {

using namespace ulp;

int usage() {
  std::cerr << "usage: ulp_fuzz [--programs N] [--stress M] [--seed S]\n"
               "                [--items K] [--no-dma] [--coverage]\n"
               "                [--shrink-out DIR] [--emit-corpus DIR N]\n"
               "                [--replay FILE.repro] [--block-cache 0|1]\n"
               "                [--mc-windows 0|1] [--snapshot-every K]\n";
  return 2;
}

int replay(const std::string& path) {
  verif::GenProgram gp = verif::load_repro(path);
  std::cout << "replaying " << path << ": profile=" << gp.profile
            << " cores=" << gp.num_cores << " instrs="
            << gp.program.code.size() << "\n";
  const verif::DiffResult r = verif::check_program(gp);
  if (!r.pass) {
    std::cout << "FAIL: " << r.detail << "\n";
    return 1;
  }
  std::cout << "PASS\n";
  return 0;
}

int emit_corpus(const verif::CampaignParams& params, const std::string& dir,
                u32 count) {
  for (u32 i = 0; i < count; ++i) {
    const bool stress = i % 5 == 4;  // every fifth corpus entry multi-core
    const verif::GenParams gen =
        verif::campaign_member(params, i, stress);
    const verif::GenProgram gp = verif::generate(gen);
    char name[64];
    std::snprintf(name, sizeof(name), "%s%03u_%s.repro",
                  stress ? "stress" : "diff", i, gp.profile.c_str());
    const std::string path = dir + "/" + name;
    const Status s = verif::save_repro(gp, path);
    if (!s.ok()) {
      std::cerr << "error: " << s.message() << "\n";
      return 2;
    }
    std::cout << "wrote " << path << "\n";
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  verif::CampaignParams params;
  bool coverage_mode = false;
  std::string shrink_dir;
  std::string replay_path;
  std::string corpus_dir;
  u32 corpus_count = 0;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::cerr << "error: " << arg << " needs a value\n";
        std::exit(2);
      }
      return argv[++i];
    };
    // Numeric arguments parse strictly: the whole argv token must be a
    // number that fits, else one error line + usage, exit 2 (std::stoul
    // here used to escape as an uncaught std::invalid_argument abort).
    auto number_u32 = [&](u32* out) {
      const char* v = value();
      if (!ulp::cli::parse_u32(v, out)) {
        std::cerr << "error: " << arg << ": not a valid count: '" << v
                  << "'\n";
        std::exit(usage());
      }
    };
    if (arg == "--programs") {
      number_u32(&params.num_programs);
    } else if (arg == "--stress") {
      number_u32(&params.num_stress);
    } else if (arg == "--seed") {
      const char* v = value();
      if (!ulp::cli::parse_u64(v, &params.seed, ~0ull, 0)) {
        std::cerr << "error: --seed: not a valid seed: '" << v << "'\n";
        std::exit(usage());
      }
    } else if (arg == "--items") {
      number_u32(&params.body_items);
    } else if (arg == "--no-dma") {
      params.allow_dma = false;
    } else if (arg == "--coverage") {
      coverage_mode = true;
    } else if (arg == "--shrink-out") {
      shrink_dir = value();
    } else if (arg == "--replay") {
      replay_path = value();
    } else if (arg == "--emit-corpus") {
      corpus_dir = value();
      number_u32(&corpus_count);
    } else if (arg == "--block-cache") {
      // check_program pins every leg's stepping mode explicitly per run;
      // this latch covers everything else (paths that build clusters with
      // the process default, e.g. outside the differential matrix).
      config::set_block_cache_default(std::strcmp(value(), "0") != 0);
    } else if (arg == "--mc-windows") {
      config::set_multicore_windows_default(std::strcmp(value(), "0") != 0);
    } else if (arg == "--snapshot-every") {
      number_u32(&params.snapshot_every);
    } else {
      return usage();
    }
  }

  try {
    if (!replay_path.empty()) return replay(replay_path);
    if (!corpus_dir.empty()) return emit_corpus(params, corpus_dir,
                                                corpus_count);

    const verif::CampaignResult result = verif::run_campaign(params);
    std::cout << "campaign: " << result.programs_run << " programs, "
              << result.stress_run << " stress schedules, "
              << result.coverage.total() << " instructions retired, "
              << result.failure_count << " failures\n";

    for (const verif::CampaignFailure& f : result.failures) {
      std::cout << "\nFAIL seed=0x" << std::hex << f.params.seed << std::dec
                << " profile=" << f.params.profile << " cores="
                << f.params.num_cores << "\n  " << f.detail << "\n";
      const verif::GenProgram gp = verif::generate(f.params);
      const verif::ShrinkResult shrunk = verif::shrink(gp, f.detail);
      std::cout << "  shrunk " << shrunk.original_instrs << " -> "
                << shrunk.shrunk_instrs << " instrs ("
                << shrunk.oracle_calls << " oracle calls): "
                << shrunk.detail << "\n";
      if (!shrink_dir.empty()) {
        char name[64];
        std::snprintf(name, sizeof(name), "fail_%016llx.repro",
                      static_cast<unsigned long long>(f.params.seed));
        const std::string path = shrink_dir + "/" + name;
        const Status s = verif::save_repro(shrunk.program, path);
        if (s.ok()) {
          std::cout << "  repro: " << path << "\n";
        } else {
          std::cerr << "  error writing repro: " << s.message() << "\n";
        }
      }
    }

    if (coverage_mode) {
      std::cout << "\n" << result.coverage.report();
      const auto missing = result.coverage.unexercised();
      if (!missing.empty()) return 1;
    }
    return result.pass() ? 0 : 1;
  } catch (const SimError& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
}
