// The OpenMP-style programming interface: write an offloaded computation
// the way the paper's users would write "#pragma omp target".
//
// Computes a fixed-point AXPY, y = alpha*x + y over 2048 Q4.11 elements:
//
//   #pragma omp target map(to: x[0:n]) map(tofrom: y[0:n])
//   #pragma omp parallel for
//   for (i = 0; i < n; ++i) y[i] = (alpha * x[i] >> 11) + y[i];
//
// then ships it through the offload runtime (QSPI link, L476 host at
// 16 MHz, PULP at the 0.5 V point) and verifies against the host-computed
// reference.
//
// Build & run:  ./build/examples/openmp_style
#include <cstdio>
#include <vector>

#include "common/rng.hpp"
#include "runtime/omp.hpp"

int main() {
  using namespace ulp;
  using codegen::Builder;
  using isa::Opcode;

  constexpr u32 kN = 2048;
  constexpr i32 kAlpha = 1536;  // 0.75 in Q4.11

  Rng rng(1);
  std::vector<i16> x(kN), y(kN);
  for (u32 i = 0; i < kN; ++i) {
    x[i] = static_cast<i16>(rng.uniform(-2000, 2000));
    y[i] = static_cast<i16>(rng.uniform(-2000, 2000));
  }
  auto pack = [](const std::vector<i16>& v) {
    std::vector<u8> out(v.size() * 2);
    for (size_t i = 0; i < v.size(); ++i) {
      out[2 * i] = static_cast<u8>(v[i]);
      out[2 * i + 1] = static_cast<u8>(v[i] >> 8);
    }
    return out;
  };

  // ---- the "directives" -------------------------------------------------
  omp::TargetRegion region(core::or10n_config().features, /*num_cores=*/4);
  const Addr dev_x = region.map_to(pack(x));
  const Addr dev_yin = region.map_to(pack(y));
  const Addr dev_yout = region.map_from(kN * 2);  // tofrom, split in/out
  region.parallel_for(kN, [&](Builder& bld, const omp::ForContext& ctx) {
    bld.emit(Opcode::kSlli, ctx.r_tmp0, ctx.r_index, 0, 1);
    bld.li(ctx.r_tmp1, dev_x);
    bld.emit(Opcode::kAdd, ctx.r_tmp1, ctx.r_tmp1, ctx.r_tmp0);
    bld.emit(Opcode::kLh, ctx.r_tmp2, ctx.r_tmp1, 0, 0);   // x[i]
    bld.li(ctx.r_tmp1, kAlpha);
    bld.emit(Opcode::kMul, ctx.r_tmp2, ctx.r_tmp2, ctx.r_tmp1);
    bld.emit(Opcode::kSrai, ctx.r_tmp2, ctx.r_tmp2, 0, 11);  // alpha*x
    bld.li(ctx.r_tmp1, dev_yin);
    bld.emit(Opcode::kAdd, ctx.r_tmp1, ctx.r_tmp1, ctx.r_tmp0);
    bld.emit(Opcode::kLh, ctx.r_tmp3, ctx.r_tmp1, 0, 0);   // y[i]
    bld.emit(Opcode::kAdd, ctx.r_tmp2, ctx.r_tmp2, ctx.r_tmp3);
    bld.li(ctx.r_tmp1, dev_yout);
    bld.emit(Opcode::kAdd, ctx.r_tmp1, ctx.r_tmp1, ctx.r_tmp0);
    bld.emit(Opcode::kSh, ctx.r_tmp2, ctx.r_tmp1, 0, 0);
  });
  const omp::Offloadable off = region.compile();

  // ---- offload it -------------------------------------------------------
  link::SpiLinkConfig lcfg;
  lcfg.lanes = host::stm32l476().spi_lanes;
  runtime::OffloadSession session(host::stm32l476(), mhz(16),
                                  link::SpiLink(lcfg));
  const power::OperatingPoint op{0.5,
                                 session.power_model().fmax_hz(0.5)};
  const auto outcome = session.run(off.request(), op);

  // ---- verify -----------------------------------------------------------
  u32 errors = 0;
  for (u32 i = 0; i < kN; ++i) {
    const i16 expected =
        static_cast<i16>(((kAlpha * x[i]) >> 11) + y[i]);
    const i16 got = static_cast<i16>(
        static_cast<u16>(outcome.output[2 * i]) |
        static_cast<u16>(outcome.output[2 * i + 1]) << 8);
    if (expected != got) ++errors;
  }
  std::printf("axpy over %u Q4.11 elements on 4 cores\n", kN);
  std::printf("region program: %zu instructions (outlined automatically)\n",
              off.program.code.size());
  std::printf("compute: %llu cluster cycles; offload total %.2f ms\n",
              static_cast<unsigned long long>(outcome.timing.accel_cycles),
              outcome.timing.total_s(1, false) * 1e3);
  std::printf("verification: %s\n",
              errors == 0 ? "all elements match the host reference"
                          : "MISMATCHES FOUND");
  return errors == 0 ? 0 : 1;
}
