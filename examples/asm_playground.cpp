// Assembly playground: drive the VR1K core directly with textual assembly.
//
// Shows the lowest layer of the stack — the ISA, assembler, disassembler
// and single-core ISS — without any kernel machinery: a dot-product written
// three ways (plain RISC loop, hardware loop, hardware loop + SIMD), run on
// the OR10N configuration, comparing cycle counts.
//
// Build & run:  ./build/examples/asm_playground
#include <cstdio>

#include "codegen/assembler.hpp"
#include "core/core.hpp"
#include "isa/disasm.hpp"
#include "mem/bus.hpp"

namespace {

constexpr const char* kPlainLoop = R"(
    ; dot product of 64 int16 pairs at 0x100 / 0x200, result in r10
    addi r1, r0, 0x100   ; pA
    addi r2, r0, 0x200   ; pB
    addi r3, r0, 64      ; count
    addi r10, r0, 0
top:
    lh   r4, 0(r1)
    addi r1, r1, 2
    lh   r5, 0(r2)
    addi r2, r2, 2
    mul  r6, r4, r5
    add  r10, r10, r6
    addi r3, r3, -1
    bne  r3, r0, top
    halt
)";

constexpr const char* kHwLoop = R"(
    addi r1, r0, 0x100
    addi r2, r0, 0x200
    addi r3, r0, 64
    addi r10, r0, 0
    lp.setup 0, r3, body_end
    lh!  r4, 2(r1)       ; post-increment load
    lh!  r5, 2(r2)
    mac  r10, r4, r5     ; register-register MAC
body_end:
    halt
)";

constexpr const char* kSimdLoop = R"(
    addi r1, r0, 0x100
    addi r2, r0, 0x200
    addi r3, r0, 32      ; 2 elements per dotp2.h
    addi r10, r0, 0
    lp.setup 0, r3, body_end
    lw!  r4, 4(r1)
    lw!  r5, 4(r2)
    dotp2.h r10, r4, r5  ; 2x16 dot product accumulate
body_end:
    halt
)";

}  // namespace

int main() {
  using namespace ulp;
  struct Variant {
    const char* name;
    const char* source;
  };
  const Variant variants[] = {
      {"plain RISC loop", kPlainLoop},
      {"hw loop + MAC + post-inc", kHwLoop},
      {"hw loop + 2x16 SIMD", kSimdLoop},
  };

  i64 expected = 0;
  std::printf("dot product of 64 int16 pairs on the OR10N configuration\n\n");
  for (const Variant& v : variants) {
    const isa::Program prog = codegen::assemble(v.source);

    mem::Sram sram(0, 64 * 1024);
    mem::SimpleBus bus(&sram, 1);
    // Test vectors: a[i] = i - 32, b[i] = 3i + 1.
    for (u32 i = 0; i < 64; ++i) {
      bus.debug_store(0x100 + 2 * i, 2, static_cast<u32>(i) - 32);
      bus.debug_store(0x200 + 2 * i, 2, 3 * i + 1);
    }
    core::Core cpu(0, 1, core::or10n_config(), &bus);
    cpu.reset(&prog);
    cpu.run_to_halt();

    const i32 result = static_cast<i32>(cpu.reg(10));
    if (expected == 0) expected = result;
    std::printf("%-26s %3zu instrs  %5llu cycles  result %d%s\n", v.name,
                prog.code.size(),
                static_cast<unsigned long long>(cpu.perf().cycles), result,
                result == expected ? "" : "  <-- MISMATCH");
  }

  std::printf("\nDisassembly of the SIMD variant:\n%s\n",
              isa::disassemble_listing(codegen::assemble(kSimdLoop).code)
                  .c_str());
  return 0;
}
