// Waveform dump: run a kernel on the cluster and write a GTKWave-loadable
// VCD of the execution — core states (running / clock-gated / halted),
// program counters, TCDM bank usage, DMA occupancy and the EOC GPIO.
//
// Build & run:  ./build/examples/waveform_dump [kernel] [out.vcd]
// Then:         gtkwave out.vcd
#include <cstdio>
#include <fstream>

#include "kernels/kernel.hpp"
#include "trace/cluster_tracer.hpp"

int main(int argc, char** argv) {
  using namespace ulp;
  const std::string kernel_name = argc > 1 ? argv[1] : "matmul";
  const std::string path = argc > 2 ? argv[2] : "cluster.vcd";

  const kernels::KernelInfo* info = nullptr;
  for (const auto& k : kernels::all_kernels()) {
    if (k.name == kernel_name) info = &k;
  }
  if (info == nullptr) {
    std::printf("unknown kernel '%s'; available:\n", kernel_name.c_str());
    for (const auto& k : kernels::all_kernels()) {
      std::printf("  %s\n", k.name.c_str());
    }
    return 1;
  }

  const auto cfg = core::or10n_config();
  const auto kc =
      info->factory(cfg.features, 4, kernels::Target::kCluster, 1);
  cluster::Cluster cl;
  cl.load_program(kc.program);
  for (size_t i = 0; i < kc.input.size(); ++i) {
    cl.bus().debug_store(kc.input_addr + static_cast<Addr>(i), 1,
                         kc.input[i]);
  }

  std::ofstream out(path);
  if (!out) {
    std::printf("cannot open %s for writing\n", path.c_str());
    return 1;
  }
  trace::ClusterTracer tracer(cl, out);
  const u64 cycles = tracer.run_traced();

  std::printf("traced %-14s  %llu cycles -> %s\n", kc.name.c_str(),
              static_cast<unsigned long long>(cycles), path.c_str());
  std::printf("signals: per-core state/pc, tcdm bank_busy, dma outstanding,\n"
              "eoc, barrier count. Open with: gtkwave %s\n", path.c_str());
  return 0;
}
