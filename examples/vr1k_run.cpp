// vr1k_run: assemble and execute a VR1K assembly file on the single-core
// ISS — the repository's "simulator binary" for hand-written programs.
//
// Usage:
//   ./build/examples/vr1k_run program.s [--config or10n|m4|m3|baseline]
//                                       [--trace] [--reg rN=VALUE ...]
//
// Prints the retired-instruction trace (with --trace), the final register
// file (non-zero registers) and the performance counters. With no file
// argument a built-in demo program runs.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "codegen/assembler.hpp"
#include "core/core.hpp"
#include "isa/disasm.hpp"
#include "mem/bus.hpp"

namespace {

constexpr const char* kDemo = R"(
    ; demo: sum of the first 100 integers
    addi r1, r0, 100
    addi r2, r0, 0
top:
    add  r2, r2, r1
    addi r1, r1, -1
    bne  r1, r0, top
    halt
)";

ulp::core::CoreConfig pick_config(const char* name) {
  using namespace ulp::core;
  if (std::strcmp(name, "or10n") == 0) return or10n_config();
  if (std::strcmp(name, "m4") == 0) return cortex_m4_config();
  if (std::strcmp(name, "m3") == 0) return cortex_m3_config();
  if (std::strcmp(name, "baseline") == 0) return baseline_config();
  std::fprintf(stderr, "unknown config '%s'\n", name);
  std::exit(1);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ulp;
  std::string source = kDemo;
  core::CoreConfig cfg = core::or10n_config();
  bool trace = false;
  std::vector<std::pair<u32, u32>> presets;

  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--config") == 0 && i + 1 < argc) {
      cfg = pick_config(argv[++i]);
    } else if (std::strcmp(argv[i], "--trace") == 0) {
      trace = true;
    } else if (std::strcmp(argv[i], "--reg") == 0 && i + 1 < argc) {
      u32 r = 0, v = 0;
      if (std::sscanf(argv[++i], "r%u=%i", &r,
                      reinterpret_cast<int*>(&v)) == 2 &&
          r < 32) {
        presets.emplace_back(r, v);
      } else {
        std::fprintf(stderr, "bad --reg argument '%s'\n", argv[i]);
        return 1;
      }
    } else {
      std::ifstream file(argv[i]);
      if (!file) {
        std::fprintf(stderr, "cannot open '%s'\n", argv[i]);
        return 1;
      }
      std::ostringstream ss;
      ss << file.rdbuf();
      source = ss.str();
    }
  }

  isa::Program prog;
  try {
    prog = codegen::assemble(source);
  } catch (const SimError& e) {
    std::fprintf(stderr, "assembly error: %s\n", e.what());
    return 1;
  }

  mem::Sram sram(0, 256 * 1024);
  mem::SimpleBus bus(&sram, 1);
  core::Core cpu(0, 1, cfg, &bus);
  cpu.reset(&prog);
  for (const auto& [r, v] : presets) cpu.set_reg(r, v);
  if (trace) {
    cpu.set_retire_hook([](u32 pc, const isa::Instr& in) {
      std::printf("  %4u: %s\n", pc, isa::disassemble(in).c_str());
    });
  }

  try {
    cpu.run_to_halt();
  } catch (const SimError& e) {
    std::fprintf(stderr, "runtime fault: %s\n", e.what());
    return 1;
  }

  std::printf("config: %s   %zu instructions assembled\n", cfg.name.c_str(),
              prog.code.size());
  std::printf("registers (non-zero):\n");
  for (u32 r = 1; r < 32; ++r) {
    if (cpu.reg(r) != 0) {
      std::printf("  r%-2u = %10u  (0x%08x / %d)\n", r, cpu.reg(r),
                  cpu.reg(r), static_cast<i32>(cpu.reg(r)));
    }
  }
  const auto& p = cpu.perf();
  std::printf("perf: %llu cycles, %llu instrs (%.2f IPC), "
              "%llu loads, %llu stores, %llu branches (%llu taken)\n",
              static_cast<unsigned long long>(p.cycles),
              static_cast<unsigned long long>(p.instrs),
              static_cast<double>(p.instrs) / static_cast<double>(p.cycles),
              static_cast<unsigned long long>(p.loads),
              static_cast<unsigned long long>(p.stores),
              static_cast<unsigned long long>(p.branches),
              static_cast<unsigned long long>(p.branches_taken));
  return 0;
}
