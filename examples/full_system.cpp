// Full-system co-simulation: both processors of the heterogeneous node run
// simulated code at the same time.
//
// A Cortex-M4 host executes the generated bare-metal offload driver: it
// streams the kernel image and input over the byte-timed QSPI wire,
// raises the fetch-enable GPIO, polls EOC while the 4-core cluster
// crunches, then pulls the results back — the complete Figure 1 system
// with nothing abstracted to arithmetic.
//
// Build & run:  ./build/examples/full_system [kernel] [--trace out.json]
//               [--profile]
//
// --trace dumps the co-simulation as a Chrome/Perfetto timeline (host MCU,
// SPI wire, cluster cores/DMA on one real-time axis — load the file in
// ui.perfetto.dev); --profile prints the top-phases report.
#include <cstdio>
#include <cstring>

#include "system/hetero_system.hpp"
#include "system/host_driver.hpp"
#include "trace/metrics.hpp"
#include "trace/trace_export.hpp"

int main(int argc, char** argv) {
  using namespace ulp;
  std::string kernel_name = "matmul";
  std::string trace_path;
  bool profile = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc) {
      trace_path = argv[++i];
    } else if (std::strcmp(argv[i], "--profile") == 0) {
      profile = true;
    } else {
      kernel_name = argv[i];
    }
  }
  const kernels::KernelInfo* info = nullptr;
  for (const auto& k : kernels::all_kernels()) {
    if (k.name == kernel_name) info = &k;
  }
  if (info == nullptr) {
    std::printf("unknown kernel '%s'\n", kernel_name.c_str());
    return 1;
  }

  const auto accel_cfg = core::or10n_config();
  const auto kc =
      info->factory(accel_cfg.features, 4, kernels::Target::kCluster, 99);
  const system::FullSystemPackage pkg = system::package_offload(kc);

  system::HeteroSystemParams params;
  params.mcu_freq_hz = mhz(16);
  params.pulp_freq_hz = mhz(16);  // the 0.5 V near-threshold point
  system::HeteroSystem sys(params);
  trace::EventTrace trace;
  trace::MetricsRegistry metrics;
  if (!trace_path.empty() || profile) {
    sys.attach_trace({&trace, &metrics});
  }
  sys.load_host_program(pkg.host_program);

  std::printf("offloading %s: image %u B, input %u B, output %u B\n",
              kc.name.c_str(), pkg.spec.image_len, pkg.spec.input_len,
              pkg.spec.output_len);
  const u64 host_cycles = sys.run_to_host_halt();
  const auto stats = sys.stats();

  std::vector<u8> result(kc.output_bytes);
  for (size_t i = 0; i < result.size(); ++i) {
    result[i] = static_cast<u8>(sys.host_sram().load(
        pkg.spec.host_output_addr + static_cast<Addr>(i), 1, false));
  }
  const bool ok = result == kc.expected;

  std::printf("\nhost driver:   %u instructions of bare-metal code\n",
              static_cast<unsigned>(pkg.host_program.code.size()));
  std::printf("host cycles:   %llu  (%.2f ms @ 16 MHz)\n",
              static_cast<unsigned long long>(host_cycles),
              static_cast<double>(host_cycles) / mhz(16) * 1e3);
  std::printf("cluster cycles %llu\n",
              static_cast<unsigned long long>(stats.cluster_cycles));
  std::printf("wire traffic:  %llu bytes, busy %llu host cycles (%.0f%%)\n",
              static_cast<unsigned long long>(stats.wire_bytes),
              static_cast<unsigned long long>(stats.wire_busy_host_cycles),
              100.0 * static_cast<double>(stats.wire_busy_host_cycles) /
                  static_cast<double>(host_cycles));
  std::printf("result:        %s\n",
              ok ? "bit-exact match with the golden reference"
                 : "MISMATCH");

  if (!trace_path.empty()) {
    const Status s = trace::write_chrome_trace_file(trace, trace_path);
    if (s.ok()) {
      std::printf("trace written to %s (load in ui.perfetto.dev)\n",
                  trace_path.c_str());
    } else {
      std::fprintf(stderr, "trace export failed: %s\n", s.message().c_str());
    }
  }
  if (profile) {
    std::printf("\n%s", trace::profile_report(trace, &metrics).c_str());
  }
  return ok ? 0 : 1;
}
