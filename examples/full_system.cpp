// Full-system co-simulation: both processors of the heterogeneous node run
// simulated code at the same time.
//
// A Cortex-M4 host executes the generated bare-metal offload driver: it
// streams the kernel image and input over the byte-timed QSPI wire,
// raises the fetch-enable GPIO, polls EOC while the 4-core cluster
// crunches, then pulls the results back — the complete Figure 1 system
// with nothing abstracted to arithmetic.
//
// Build & run:  ./build/examples/full_system [kernel] [--trace out.json]
//               [--profile] [--profile-out prof.json] [--trace-limit N]
//               [--metrics-json m.json] [--faults=<spec>] [--clusters N]
//               [--snapshot-out state.ulps] [--restore state.ulps]
//
// --snapshot-out saves the complete simulator state (both processors, all
// memories, the wire mid-frame, fault-injector RNG, clock-ratio phase)
// after the offload finishes; --restore loads such a file into the
// freshly built system before the offload runs. The restored system is
// bit-identical to the one that was saved — a run after --restore
// produces exactly the output a continuous run would have. Geometry must
// match (--clusters, --faults imply wire/injector layout); a mismatched
// or corrupted file is rejected with a typed error and the system is left
// untouched.
//
// --clusters N co-simulates an N-cluster node: the host driver ships one
// kernel instance (input shard) per cluster over the shared QSPI wire,
// launches them concurrently and retires them in order through the wake
// mask (not combinable with --faults: the multi-cluster dispatch driver
// has no robust protocol).
//
// --trace dumps the co-simulation as a Chrome/Perfetto timeline (host MCU,
// SPI wire, cluster cores/DMA on one real-time axis, plus derived
// power.cluster/power.host/power.link counter tracks in watts — load the
// file in ui.perfetto.dev); --profile prints the top-phases report.
//
// --profile-out writes the cycle attribution profile of both processors
// (per-pc hotspots, call frames, stall buckets) as deterministic JSON and
// prints the stall table + hottest-lines disassembly; --trace-limit caps
// the in-memory event trace (ring buffer); --metrics-json dumps the
// metrics registry.
//
// --faults enables the robust offload protocol (CRC-framed transfers,
// retrying driver, EOC watchdog) under deterministic link fault injection;
// the spec is comma-separated key=value with keys seed, flip, drop, dup,
// nak, burst, stuck — e.g. --faults=seed=7,flip=1e-4,stuck=1. The run
// reports recovery (CRC errors vs. retries) or host-reference fallback.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>

#include "common/cli.hpp"
#include "snapshot/snapshot.hpp"
#include "common/rng.hpp"
#include "host/mcu.hpp"
#include "profile/energy_timeline.hpp"
#include "profile/profile.hpp"
#include "profile/report.hpp"
#include "system/hetero_system.hpp"
#include "system/host_driver.hpp"
#include "trace/metrics.hpp"
#include "trace/trace_export.hpp"

int main(int argc, char** argv) {
  using namespace ulp;
  std::string kernel_name = "matmul";
  std::string trace_path;
  std::string fault_spec;
  std::string profile_out;
  std::string metrics_path;
  std::string snapshot_out;
  std::string restore_path;
  size_t trace_limit = 0;
  u32 num_clusters = 1;
  bool robust = false;
  bool profile = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc) {
      trace_path = argv[++i];
    } else if (std::strcmp(argv[i], "--snapshot-out") == 0 && i + 1 < argc) {
      snapshot_out = argv[++i];
    } else if (std::strcmp(argv[i], "--restore") == 0 && i + 1 < argc) {
      restore_path = argv[++i];
    } else if (std::strcmp(argv[i], "--profile") == 0) {
      profile = true;
    } else if (std::strcmp(argv[i], "--profile-out") == 0 && i + 1 < argc) {
      profile_out = argv[++i];
    } else if (std::strcmp(argv[i], "--metrics-json") == 0 && i + 1 < argc) {
      metrics_path = argv[++i];
    } else if (std::strcmp(argv[i], "--trace-limit") == 0 && i + 1 < argc) {
      u64 v = 0;
      if (!cli::parse_u64(argv[++i], &v, ~0ull, 0)) {
        std::fprintf(stderr,
                     "full_system: --trace-limit: not a valid count: '%s'\n"
                     "usage: full_system [kernel] [--trace out.json] "
                     "[--trace-limit N] [--clusters N] [--faults=spec]\n",
                     argv[i]);
        return 2;
      }
      trace_limit = v > 0 && v < 16 ? 16 : static_cast<size_t>(v);
    } else if (std::strcmp(argv[i], "--clusters") == 0 && i + 1 < argc) {
      if (!cli::parse_u32(argv[++i], &num_clusters, 32) ||
          num_clusters == 0) {
        std::fprintf(stderr,
                     "full_system: --clusters: expected an integer in "
                     "[1, 32], got '%s'\n",
                     argv[i]);
        return 2;
      }
    } else if (std::strncmp(argv[i], "--faults=", 9) == 0) {
      fault_spec = argv[i] + 9;
      robust = true;
    } else if (std::strcmp(argv[i], "--faults") == 0 && i + 1 < argc) {
      fault_spec = argv[++i];
      robust = true;
    } else {
      kernel_name = argv[i];
    }
  }
  link::FaultConfig fault_cfg;
  if (robust) {
    const Status s = link::FaultInjector::parse(fault_spec, &fault_cfg);
    if (!s.ok()) {
      std::fprintf(stderr, "bad --faults spec: %s\n", s.message().c_str());
      return 1;
    }
  }
  const kernels::KernelInfo* info = nullptr;
  for (const auto& k : kernels::all_kernels()) {
    if (k.name == kernel_name) info = &k;
  }
  if (info == nullptr) {
    std::printf("unknown kernel '%s'\n", kernel_name.c_str());
    return 1;
  }

  if (robust && num_clusters > 1) {
    std::fprintf(stderr,
                 "full_system: --faults needs the robust driver, which "
                 "dispatches to a single cluster (drop --clusters)\n");
    return 2;
  }

  const auto accel_cfg = core::or10n_config();
  const auto kc =
      info->factory(accel_cfg.features, 4, kernels::Target::kCluster, 99);

  system::HeteroSystemParams params;
  params.mcu_freq_hz = mhz(16);
  params.pulp_freq_hz = mhz(16);  // the 0.5 V near-threshold point
  params.num_clusters = num_clusters;
  if (robust) {
    params.crc_frames = true;
    params.faults = fault_cfg;
  }
  system::HeteroSystem sys(params);
  trace::EventTrace trace;
  trace::MetricsRegistry metrics;
  if (trace_limit > 0) trace.set_event_limit(trace_limit);
  if (!trace_path.empty() || profile || !metrics_path.empty()) {
    sys.attach_trace({&trace, &metrics});
  }
  profile::ClusterProfiler cluster_prof;
  profile::CoreProfiler host_prof;
  if (!profile_out.empty()) {
    cluster_prof.attach(sys.soc().cluster());
    host_prof.attach(sys.host_core());
  }

  if (!restore_path.empty()) {
    std::vector<u8> image;
    Status s = snapshot::read_file(restore_path, &image);
    snapshot::Reader reader;
    if (s.ok()) s = reader.open(image);
    if (s.ok()) s = sys.restore(reader);
    if (!s.ok()) {
      std::fprintf(stderr, "snapshot restore failed (%s): %s\n",
                   status_code_name(s.code()), s.message().c_str());
      return 2;
    }
    std::printf("restored %s: host at cycle %llu, %u cluster(s)\n",
                restore_path.c_str(),
                static_cast<unsigned long long>(sys.stats().host_cycles),
                sys.num_clusters());
  }

  u64 host_cycles = 0;
  bool ok = false;
  unsigned driver_instrs = 0;
  if (num_clusters == 1) {
    const system::FullSystemPackage pkg = robust
                                              ? system::package_robust_offload(kc)
                                              : system::package_offload(kc);
    std::printf("offloading %s: image %u B, input %u B, output %u B%s\n",
                kc.name.c_str(), pkg.spec.image_len, pkg.spec.input_len,
                pkg.spec.output_len,
                robust ? " (robust protocol, fault injection on)" : "");
    const system::SystemOffloadResult res =
        system::run_offload_with_fallback(sys, pkg);
    host_cycles = res.host_cycles;
    ok = res.output == kc.expected;
    driver_instrs = static_cast<unsigned>(pkg.host_program.code.size());
    if (robust && !res.status.ok()) {
      std::printf("offload:       FAILED (%s: %s)%s\n",
                  status_code_name(res.status.code()),
                  res.status.message().c_str(),
                  res.used_host_fallback
                      ? " -> degraded to host-reference output"
                      : "");
    }
  } else {
    // One kernel instance per cluster: cluster 0 reuses the single-cluster
    // seed, siblings shard theirs off it.
    std::vector<kernels::KernelCase> cases;
    cases.push_back(kc);
    for (u32 c = 1; c < num_clusters; ++c) {
      cases.push_back(info->factory(accel_cfg.features, 4,
                                    kernels::Target::kCluster,
                                    derive_seed(99, c)));
    }
    const system::MultiSystemPackage mpkg =
        system::package_multi_offload(cases);
    std::printf("offloading %s to %u clusters: image %u B/cluster\n",
                kc.name.c_str(), num_clusters, mpkg.specs[0].image_len);
    const system::MultiOffloadResult res = system::run_multi_offload(sys, mpkg);
    host_cycles = res.host_cycles;
    driver_instrs = static_cast<unsigned>(mpkg.host_program.code.size());
    ok = true;
    for (u32 c = 0; c < num_clusters; ++c) {
      const bool match = res.outputs[c] == cases[c].expected;
      ok = ok && match;
      std::printf("cluster %u:     %llu cycles, output %s\n", c,
                  static_cast<unsigned long long>(
                      res.stats.cluster_cycles_each[c]),
                  match ? "ok" : "MISMATCH");
    }
  }
  const auto stats = sys.stats();

  std::printf("\nhost driver:   %u instructions of bare-metal code\n",
              driver_instrs);
  std::printf("host cycles:   %llu  (%.2f ms @ 16 MHz)\n",
              static_cast<unsigned long long>(host_cycles),
              static_cast<double>(host_cycles) / mhz(16) * 1e3);
  std::printf("cluster cycles %llu\n",
              static_cast<unsigned long long>(stats.cluster_cycles));
  std::printf("wire traffic:  %llu bytes, busy %llu host cycles (%.0f%%)\n",
              static_cast<unsigned long long>(stats.wire_bytes),
              static_cast<unsigned long long>(stats.wire_busy_host_cycles),
              100.0 * static_cast<double>(stats.wire_busy_host_cycles) /
                  static_cast<double>(host_cycles));
  if (robust) {
    std::printf("link frames:   %llu (%llu CRC/framing rejects)\n",
                static_cast<unsigned long long>(stats.link_frames),
                static_cast<unsigned long long>(stats.link_crc_errors));
    std::printf("faults:        %llu injected\n",
                static_cast<unsigned long long>(stats.fault_count));
    if (ok && stats.link_crc_errors > 0) {
      std::printf("offload:       recovered by retry\n");
    }
  }
  std::printf("result:        %s\n",
              ok ? "bit-exact match with the golden reference"
                 : "MISMATCH");

  if (!snapshot_out.empty()) {
    snapshot::Writer writer;
    const Status s = sys.save(writer);
    if (!s.ok()) {
      std::fprintf(stderr, "snapshot save failed: %s\n",
                   s.message().c_str());
      return 2;
    }
    const std::vector<u8> image = writer.finish();
    const Status ws = snapshot::write_file(snapshot_out, image);
    if (!ws.ok()) {
      std::fprintf(stderr, "cannot write snapshot file: %s\n",
                   ws.message().c_str());
      return 2;
    }
    std::printf("snapshot:      %zu bytes -> %s\n", image.size(),
                snapshot_out.c_str());
  }

  if (!profile_out.empty()) {
    cluster_prof.capture();
    host_prof.capture(sys.host_program(), stats.host_link_bound_cycles);
    profile::JobProfile jp;
    jp.collected = true;
    jp.cluster = cluster_prof.data();
    jp.has_host = true;
    jp.host = host_prof.data();
    std::ofstream out(profile_out);
    if (out.good()) {
      out << profile::to_json(jp) << '\n';
      std::printf("profile written to %s\n", profile_out.c_str());
    } else {
      std::fprintf(stderr, "cannot open profile file: %s\n",
                   profile_out.c_str());
    }
    std::printf("\ncluster stall attribution (cycles):\n%s",
                profile::bucket_table(jp.cluster).c_str());
    std::printf("\nhost stall attribution (cycles):\n%s",
                profile::bucket_table(jp.host).c_str());
    std::printf("\nhottest cluster code (top 12 lines):\n%s",
                profile::annotated_disassembly(jp.cluster, 12).c_str());
  }
  if (!trace_path.empty()) {
    // Derived power counter tracks (watts), bound to the same real-time
    // axis as the span tracks.
    const host::McuSpec& mcu = host::stm32l476();
    link::SpiLinkConfig lcfg;
    lcfg.lanes = mcu.spi_lanes;
    lcfg.max_freq_hz = mcu.spi_max_hz;
    profile::PowerTimelineSpec pts;
    pts.op = {0.5, params.pulp_freq_hz};
    pts.num_cluster_cores = 4;
    pts.host_active_w = mcu.active_power_w(params.mcu_freq_hz);
    pts.host_sleep_w = mcu.sleep_w;
    pts.link_active_w = link::SpiLink(lcfg).active_power_w(params.mcu_freq_hz);
    profile::add_power_tracks(trace, pts);
    const Status s = trace::write_chrome_trace_file(trace, trace_path);
    if (s.ok()) {
      std::printf("trace written to %s (load in ui.perfetto.dev)\n",
                  trace_path.c_str());
    } else {
      std::fprintf(stderr, "trace export failed: %s\n", s.message().c_str());
    }
  }
  if (trace.dropped_events() > 0) {
    std::printf("trace ring buffer dropped %llu oldest events "
                "(--trace-limit %zu)\n",
                static_cast<unsigned long long>(trace.dropped_events()),
                trace_limit);
  }
  if (profile) {
    std::printf("\n%s", trace::profile_report(trace, &metrics).c_str());
  }
  if (!metrics_path.empty()) {
    // Block-cache telemetry is folded in once at exit from the final
    // cluster stats (not sampled mid-run: the per-cycle reference oracle
    // has no cache, so traced exports would stop being mode-identical).
    core::BlockCacheStats bc;
    for (u32 c = 0; c < sys.num_clusters(); ++c) {
      const cluster::ClusterStats cs = sys.soc(c).cluster().stats();
      bc.hits += cs.block_cache.hits;
      bc.decodes += cs.block_cache.decodes;
      bc.flushes += cs.block_cache.flushes;
      bc.chained += cs.block_cache.chained;
      bc.dmap_fallbacks += cs.block_cache.dmap_fallbacks;
    }
    metrics.counter("blockcache.hits").add(bc.hits);
    metrics.counter("blockcache.decodes").add(bc.decodes);
    metrics.counter("blockcache.flushes").add(bc.flushes);
    metrics.counter("blockcache.chained").add(bc.chained);
    metrics.counter("blockcache.dmap_fallbacks").add(bc.dmap_fallbacks);
    const Status s = trace::write_metrics_json_file(metrics, metrics_path);
    if (s.ok()) {
      std::printf("metrics written to %s\n", metrics_path.c_str());
    } else {
      std::fprintf(stderr, "metrics export failed: %s\n",
                   s.message().c_str());
    }
  }
  return ok ? 0 : 1;
}
