// ulp_campaign: run a declarative simulation campaign over the
// heterogeneous node's design space on a worker pool.
//
//   ulp_campaign --campaign sweep.txt --workers 4 --json out.json
//   ulp_campaign --kernels matmul,cnn --cores 1,4,8 --vdd "0.5,0.8"
//                --repeats 4 --csv sweep.csv
//
// Axes may come from a campaign file (--campaign, see
// src/batch/campaign.hpp for the format) and/or inline flags; inline
// flags override file keys. The aggregated JSON/CSV outputs are
// byte-identical for any --workers value; wall-clock throughput numbers
// are segregated into --stats-json and the stderr progress feed.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "batch/aggregate.hpp"
#include "batch/campaign.hpp"
#include "batch/engine.hpp"
#include "common/cli.hpp"
#include "common/config.hpp"
#include "core/block_cache.hpp"
#include "trace/metrics.hpp"
#include "trace/trace_export.hpp"

namespace {

#ifndef ULP_BUILD_TYPE
#define ULP_BUILD_TYPE "unknown"
#endif

void print_usage(std::FILE* out) {
  std::fputs(
      "usage: ulp_campaign [options]\n"
      "\n"
      "campaign definition (file first, inline flags override):\n"
      "  --campaign FILE       campaign file (key = value lines)\n"
      "  --engine NAME         analytic (default) | cosim\n"
      "  --kernels A,B,...     kernel axis (default: matmul)\n"
      "  --cores N,N,...       core-count axis (default: 4)\n"
      "  --clusters N,N,...    clusters-per-node axis (default: 1)\n"
      "  --mcu-mhz F,F,...     MCU clock axis in MHz (default: 16)\n"
      "  --lanes N,N,...       SPI lane axis; 0 = engine default\n"
      "  --vdd F,F,...         PULP V_DD axis; cluster runs at fmax(V_DD)\n"
      "  --faults S;S;...      link fault specs, ';'-separated; 'none' = clean\n"
      "  --repeats N           statistical repeats per cell (default: 1)\n"
      "  --seed N              campaign base seed (default: 1)\n"
      "  --iterations N        offload amortisation count (analytic engine)\n"
      "  --double-buffered     overlap transfers with compute (analytic)\n"
      "  --reference-stepping B  0|1: override the cluster stepping default\n"
      "  --block-cache B       0|1: override the ISS block-cache default\n"
      "  --mc-windows B        0|1: override the multi-core block-window "
      "default\n"
      "\n"
      "execution:\n"
      "  --workers N           worker threads (default: 1; 0 = inline)\n"
      "  --warm-start B        0|1: reuse cached accelerator boot snapshots\n"
      "                        across jobs (wall-clock only; results are\n"
      "                        byte-identical to cold boots)\n"
      "  --quiet               no stderr progress feed\n"
      "\n"
      "output:\n"
      "  --json FILE           deterministic per-job + summary JSON\n"
      "  --csv FILE            deterministic per-job CSV\n"
      "  --profile-out FILE    per-job + merged cycle attribution profiles\n"
      "                        (implies 'profile = 1'; deterministic)\n"
      "  --metrics-json FILE   campaign metrics as deterministic JSON\n"
      "  --stats-json FILE     wall-clock throughput stats (NOT deterministic)\n"
      "  --list                print the expanded job matrix and exit\n"
      "  --build-info          print build type and exit\n",
      out);
}

struct CliError {
  std::string message;
};

const char* need_value(int argc, char** argv, int* i) {
  if (*i + 1 >= argc) {
    throw CliError{std::string(argv[*i]) + ": missing value"};
  }
  return argv[++*i];
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ulp;

  batch::CampaignSpec spec;
  batch::RunOptions options;
  // Inline flags are buffered as campaign-file lines and applied through
  // the same parser the file goes through — one grammar, one validator.
  std::string overrides;
  std::string campaign_file;
  std::string json_path;
  std::string csv_path;
  std::string stats_path;
  std::string profile_path;
  std::string metrics_path;
  bool list_only = false;
  bool quiet = false;

  try {
    for (int i = 1; i < argc; ++i) {
      const char* arg = argv[i];
      auto override_key = [&](const char* key) {
        overrides += std::string(key) + " = " + need_value(argc, argv, &i) +
                     "\n";
      };
      if (std::strcmp(arg, "--campaign") == 0) {
        campaign_file = need_value(argc, argv, &i);
      } else if (std::strcmp(arg, "--engine") == 0) {
        override_key("engine");
      } else if (std::strcmp(arg, "--kernels") == 0) {
        override_key("kernels");
      } else if (std::strcmp(arg, "--cores") == 0) {
        override_key("cores");
      } else if (std::strcmp(arg, "--clusters") == 0) {
        override_key("clusters");
      } else if (std::strcmp(arg, "--mcu-mhz") == 0) {
        override_key("mcu_mhz");
      } else if (std::strcmp(arg, "--lanes") == 0) {
        override_key("lanes");
      } else if (std::strcmp(arg, "--vdd") == 0) {
        override_key("vdd");
      } else if (std::strcmp(arg, "--faults") == 0) {
        override_key("faults");
      } else if (std::strcmp(arg, "--repeats") == 0) {
        override_key("repeats");
      } else if (std::strcmp(arg, "--seed") == 0) {
        override_key("seed");
      } else if (std::strcmp(arg, "--iterations") == 0) {
        override_key("iterations");
      } else if (std::strcmp(arg, "--double-buffered") == 0) {
        overrides += "double_buffered = 1\n";
      } else if (std::strcmp(arg, "--warm-start") == 0) {
        override_key("warm_start");
      } else if (std::strcmp(arg, "--reference-stepping") == 0) {
        const std::string v = need_value(argc, argv, &i);
        config::set_reference_stepping_default(v == "1" || v == "true");
      } else if (std::strcmp(arg, "--block-cache") == 0) {
        const std::string v = need_value(argc, argv, &i);
        config::set_block_cache_default(v == "1" || v == "true");
      } else if (std::strcmp(arg, "--mc-windows") == 0) {
        const std::string v = need_value(argc, argv, &i);
        config::set_multicore_windows_default(v == "1" || v == "true");
      } else if (std::strcmp(arg, "--workers") == 0) {
        const char* v = need_value(argc, argv, &i);
        if (!cli::parse_u32(v, &options.workers, 1024)) {
          throw CliError{std::string("--workers: expected an integer in "
                                     "[0, 1024], got '") +
                         v + "'"};
        }
      } else if (std::strcmp(arg, "--json") == 0) {
        json_path = need_value(argc, argv, &i);
      } else if (std::strcmp(arg, "--csv") == 0) {
        csv_path = need_value(argc, argv, &i);
      } else if (std::strcmp(arg, "--profile-out") == 0) {
        profile_path = need_value(argc, argv, &i);
        overrides += "profile = 1\n";
      } else if (std::strcmp(arg, "--metrics-json") == 0) {
        metrics_path = need_value(argc, argv, &i);
      } else if (std::strcmp(arg, "--stats-json") == 0) {
        stats_path = need_value(argc, argv, &i);
      } else if (std::strcmp(arg, "--list") == 0) {
        list_only = true;
      } else if (std::strcmp(arg, "--quiet") == 0) {
        quiet = true;
      } else if (std::strcmp(arg, "--build-info") == 0) {
#ifdef NDEBUG
        const char* asserts = "off";
#else
        const char* asserts = "on";
#endif
        const bool bc_on = config::block_cache_default() &&
                           !config::reference_stepping_default();
        const char* bc = bc_on ? "on" : "off";
        const char* mc =
            bc_on && config::multicore_windows_default() ? "on" : "off";
        std::printf("build_type=%s asserts=%s block_cache=%s mc_windows=%s "
                    "dispatch=%s\n",
                    ULP_BUILD_TYPE, asserts, bc, mc,
                    core::block_dispatch_backend());
        return 0;
      } else if (std::strcmp(arg, "--help") == 0 ||
                 std::strcmp(arg, "-h") == 0) {
        print_usage(stdout);
        return 0;
      } else {
        throw CliError{std::string("unknown option '") + arg + "'"};
      }
    }
  } catch (const CliError& e) {
    std::fprintf(stderr, "ulp_campaign: %s\n\n", e.message.c_str());
    print_usage(stderr);
    return 2;
  }

  if (!campaign_file.empty()) {
    const Status s = batch::parse_campaign_file(campaign_file, &spec);
    if (!s.ok()) {
      std::fprintf(stderr, "ulp_campaign: %s\n", s.message().c_str());
      return 1;
    }
  }
  if (!overrides.empty()) {
    const Status s = batch::parse_campaign_text(overrides, &spec);
    if (!s.ok()) {
      std::fprintf(stderr, "ulp_campaign: %s\n", s.message().c_str());
      return 1;
    }
  }

  if (list_only) {
    for (const batch::JobSpec& job : batch::expand(spec)) {
      std::printf("%4llu  seed=%016llx  %s\n",
                  static_cast<unsigned long long>(job.index),
                  static_cast<unsigned long long>(job.seed),
                  job.label().c_str());
    }
    return 0;
  }

  if (!quiet) {
    std::fprintf(stderr,
                 "ulp_campaign: %llu jobs on %u worker(s), %s engine\n",
                 static_cast<unsigned long long>(spec.job_count()),
                 options.workers, batch::engine_name(spec.engine));
    options.on_progress = [](const batch::ProgressSnapshot& p) {
      std::fprintf(stderr,
                   "  %llu/%llu jobs (%llu failed)  %.1f jobs/s  "
                   "%.3g sim-cycles/s\n",
                   static_cast<unsigned long long>(p.jobs_done),
                   static_cast<unsigned long long>(p.jobs_total),
                   static_cast<unsigned long long>(p.jobs_failed),
                   p.jobs_per_s(), p.cycles_per_s());
    };
  }

  const batch::CampaignResult result = batch::run_campaign(spec, options);

  if (!json_path.empty()) {
    const Status s = batch::write_json(json_path, result);
    if (!s.ok()) {
      std::fprintf(stderr, "ulp_campaign: %s\n", s.message().c_str());
      return 1;
    }
  }
  if (!csv_path.empty()) {
    const Status s = batch::write_csv(csv_path, result);
    if (!s.ok()) {
      std::fprintf(stderr, "ulp_campaign: %s\n", s.message().c_str());
      return 1;
    }
  }
  if (!profile_path.empty()) {
    const Status s = batch::write_profile_json(profile_path, result);
    if (!s.ok()) {
      std::fprintf(stderr, "ulp_campaign: %s\n", s.message().c_str());
      return 1;
    }
  }
  if (!metrics_path.empty()) {
    // Campaign metrics are rebuilt from the deterministic result fold (in
    // job-index order), never sampled from workers: byte-identical for any
    // --workers value.
    trace::MetricsRegistry reg;
    const batch::CampaignTotals& t = result.totals;
    reg.counter("campaign.jobs").add(t.jobs);
    reg.counter("campaign.passed").add(t.passed);
    reg.counter("campaign.failed").add(t.failed);
    reg.counter("campaign.fallbacks").add(t.fallbacks);
    reg.counter("campaign.accel_cycles").add(t.accel_cycles);
    reg.counter("campaign.host_cycles").add(t.host_cycles);
    reg.counter("campaign.instrs").add(t.total_instrs);
    reg.counter("campaign.crc_errors").add(t.crc_errors);
    reg.counter("campaign.retransmissions").add(t.retransmissions);
    reg.counter("campaign.watchdog_expiries").add(t.watchdog_expiries);
    reg.counter("campaign.fault_count").add(t.fault_count);
    reg.counter("campaign.blockcache.hits").add(t.bc_hits);
    reg.counter("campaign.blockcache.decodes").add(t.bc_decodes);
    reg.counter("campaign.blockcache.flushes").add(t.bc_flushes);
    reg.counter("campaign.blockcache.chained").add(t.bc_chained);
    reg.counter("campaign.blockcache.dmap_fallbacks")
        .add(t.bc_dmap_fallbacks);
    reg.gauge("campaign.compute_s").set(t.compute_s);
    reg.gauge("campaign.total_s").set(t.total_s);
    reg.gauge("campaign.energy_j").set(t.energy_j);
    for (const batch::JobResult& r : result.jobs) {
      reg.histogram("job.accel_cycles").record(r.accel_cycles);
      reg.histogram("job.instrs").record(r.total_instrs);
      reg.histogram("job.tcdm_conflicts").record(r.tcdm_conflicts);
      reg.histogram("job.icache_misses").record(r.icache_misses);
    }
    const Status s = trace::write_metrics_json_file(reg, metrics_path);
    if (!s.ok()) {
      std::fprintf(stderr, "ulp_campaign: %s\n", s.message().c_str());
      return 1;
    }
  }
  if (!stats_path.empty()) {
    // Wall-clock stats live apart from the deterministic outputs on
    // purpose: everything here varies run to run.
    std::FILE* f = std::fopen(stats_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "ulp_campaign: cannot open %s\n",
                   stats_path.c_str());
      return 1;
    }
    const double dt = result.elapsed_s;
    std::fprintf(f,
                 "{\n  \"build_type\": \"%s\",\n  \"workers\": %u,\n"
                 "  \"jobs\": %llu,\n  \"failed\": %llu,\n"
                 "  \"accel_cycles\": %llu,\n  \"elapsed_s\": %.6f,\n"
                 "  \"jobs_per_s\": %.6f,\n  \"cycles_per_s\": %.6f\n}\n",
                 ULP_BUILD_TYPE, options.workers,
                 static_cast<unsigned long long>(result.totals.jobs),
                 static_cast<unsigned long long>(result.totals.failed),
                 static_cast<unsigned long long>(result.totals.accel_cycles),
                 dt, dt > 0 ? static_cast<double>(result.totals.jobs) / dt : 0.0,
                 dt > 0 ? static_cast<double>(result.totals.accel_cycles) / dt
                        : 0.0);
    std::fclose(f);
  }

  std::fputs(batch::summary_text(result).c_str(), stdout);
  // Exit status tracks delivered results, not protocol weather: a job whose
  // offload failed but was recovered by host fallback still passed.
  return result.totals.passed == result.totals.jobs ? 0 : 1;
}
