// Concurrent heterogeneous node: the Discussion section's closing point —
// "an additional, separate task to be performed on the host at the same
// time", exploiting the relative strengths of host and accelerator.
//
// The full-system simulation runs a CNN frame classification on the
// cluster while the host MCU, instead of idling in its EOC wait loop,
// executes rounds of a control-plane task (a fixed-point exponential
// moving average over a 64-sample sensor window). Both results are
// verified; the printout shows how much host work fit inside the
// accelerator's compute time for free.
//
// Build & run:  ./build/examples/concurrent_node
#include <cstdio>

#include "system/hetero_system.hpp"
#include "system/host_driver.hpp"

int main() {
  using namespace ulp;
  using codegen::Builder;
  using isa::Opcode;

  const auto accel_cfg = core::or10n_config();
  const auto kc =
      kernels::make_cnn(accel_cfg.features, 4, kernels::Target::kCluster, 4);

  system::FullSystemPackage pkg = system::package_offload(kc);
  // Host-side sensor window and EMA state, placed after the output buffer.
  const Addr sensor_buf =
      (pkg.spec.host_output_addr + pkg.spec.output_len + 3) & ~3u;
  const Addr ema_addr = sensor_buf + 64 * 4;
  const Addr counter_addr = ema_addr + 4;

  pkg.spec.host_task_counter_addr = counter_addr;
  pkg.spec.host_task = [&](Builder& bld) {
    // One EMA sweep: ema += (x[i] - ema) >> 3 over the 64-sample window.
    bld.li(5, sensor_buf);
    bld.li(6, ema_addr);
    bld.emit(Opcode::kLw, 7, 6, 0, 0);  // ema
    bld.li(8, 64);
    bld.loop(8, 15, [&] {
      bld.lw_pi(9, 5, 4);
      bld.emit(Opcode::kSub, 10, 9, 7);
      bld.emit(Opcode::kSrai, 10, 10, 0, 3);
      bld.emit(Opcode::kAdd, 7, 7, 10);
    });
    bld.emit(Opcode::kSw, 7, 6, 0, 0);
  };
  // The spec changed after package_offload built the program: rebuild.
  pkg.host_program =
      system::build_host_driver(core::cortex_m4_config().features, pkg.spec);
  pkg.host_program.data.push_back(
      {pkg.spec.host_image_addr, isa::serialize(kc.program)});
  pkg.host_program.data.push_back({pkg.spec.host_input_addr, kc.input});
  // Synthetic sensor samples.
  std::vector<u8> sensor(64 * 4);
  for (u32 i = 0; i < 64; ++i) {
    const i32 v = 1000 + static_cast<i32>(200 * ((i * 37) % 11)) - 1000;
    for (int b = 0; b < 4; ++b) {
      sensor[i * 4 + static_cast<u32>(b)] = static_cast<u8>(v >> (8 * b));
    }
  }
  pkg.host_program.data.push_back({sensor_buf, sensor});

  system::HeteroSystem sys;
  sys.load_host_program(pkg.host_program);
  const u64 host_cycles = sys.run_to_host_halt();

  std::vector<u8> result(kc.output_bytes);
  for (size_t i = 0; i < result.size(); ++i) {
    result[i] = static_cast<u8>(sys.host_sram().load(
        pkg.spec.host_output_addr + static_cast<Addr>(i), 1, false));
  }
  const u32 rounds = sys.host_sram().load(counter_addr, 4, false);
  const u32 ema = sys.host_sram().load(ema_addr, 4, false);

  std::printf("cluster task:   %s -> %s\n", kc.name.c_str(),
              result == kc.expected ? "bit-exact" : "MISMATCH");
  std::printf("host task:      %u EMA sweeps over the sensor window "
              "(final ema raw = %d)\n",
              rounds, static_cast<i32>(ema));
  std::printf("host cycles:    %llu total; the sweeps ran inside the EOC "
              "wait that a\n                plain driver would have spent "
              "spinning\n",
              static_cast<unsigned long long>(host_cycles));
  return result == kc.expected && rounds > 0 ? 0 : 1;
}
