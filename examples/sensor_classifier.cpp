// Biomedical/sensor classifier node: the paper's second motivating domain
// ("compressed sensing ... biomedical applications", SVM benchmarks from
// wearable-class workloads).
//
// A sensor produces windows of samples; each window is classified with an
// RBF SVM. The node is battery powered, so the figure of merit is energy
// per classification and the resulting battery life at a given duty cycle.
// The example compares running the classifier on the MCU against
// offloading it, both inside the same power envelope.
//
// Build & run:  ./build/examples/sensor_classifier
#include <cstdio>

#include "kernels/kernel.hpp"
#include "kernels/runner.hpp"
#include "runtime/offload.hpp"

int main() {
  using namespace ulp;
  // A CR2032 coin cell: ~225 mAh at 3 V.
  constexpr double kBatteryJoules = 0.225 * 3600.0 * 3.0;
  constexpr double kWindowsPerSecond = 2.0;  // sensor duty cycle

  const host::McuSpec& mcu = host::stm32l476();
  const double f_mcu = mhz(8);

  // --- On-MCU classification ---------------------------------------
  const auto mcu_cfg = mcu.core_config();
  const auto kc_mcu = kernels::make_svm_rbf(mcu_cfg.features, 1,
                                            kernels::Target::kFlat, 7);
  const auto run_mcu = kernels::run_on_flat(kc_mcu, mcu_cfg);
  const double t_mcu = static_cast<double>(run_mcu.cycles) / f_mcu;
  const double e_mcu = t_mcu * mcu.active_power_w(f_mcu);

  // --- Offloaded classification ------------------------------------
  const auto accel_cfg = core::or10n_config();
  const auto kc = kernels::make_svm_rbf(accel_cfg.features, 4,
                                        kernels::Target::kCluster, 7);
  link::SpiLinkConfig lcfg;
  lcfg.lanes = mcu.spi_lanes;
  lcfg.max_freq_hz = mcu.spi_max_hz;
  runtime::OffloadSession session(mcu, f_mcu, link::SpiLink(lcfg));
  power::PulpPowerModel pm;
  const power::OperatingPoint op{0.5, pm.fmax_hz(0.5)};
  const auto outcome = session.run(kc.offload_request(), op);
  if (outcome.output != kc.expected) {
    std::printf("classification mismatch!\n");
    return 1;
  }
  // The model stays resident on the accelerator: the binary (with the
  // support vectors) is offloaded once, then each window is one iteration.
  const u32 n = 1000;
  const auto e_off_total = session.energy(outcome, op, n, true);
  const double e_off = e_off_total.total_j() / n;
  const double t_off = outcome.timing.t_in_s + outcome.timing.t_compute_s +
                       outcome.timing.t_out_s;

  std::printf("RBF-SVM window classification @ MCU %.0f MHz\n", f_mcu / 1e6);
  std::printf("\n%-24s %14s %14s\n", "", "MCU only", "heterogeneous");
  std::printf("%-24s %11.2f ms %11.2f ms\n", "latency / window", t_mcu * 1e3,
              t_off * 1e3);
  std::printf("%-24s %11.2f uJ %11.2f uJ\n", "energy / window", e_mcu * 1e6,
              e_off * 1e6);
  std::printf("%-24s %11.1fx %13s\n", "energy advantage", e_mcu / e_off, "");

  // Battery life at the duty cycle (classification energy only; both
  // variants share the same sensor/sleep floor, so the delta is what the
  // architecture buys).
  const double life_mcu =
      kBatteryJoules / (e_mcu * kWindowsPerSecond) / 86400.0;
  const double life_off =
      kBatteryJoules / (e_off * kWindowsPerSecond) / 86400.0;
  std::printf("\nCR2032 budget at %.0f windows/s (compute share only):\n",
              kWindowsPerSecond);
  std::printf("%-24s %11.0f days\n", "MCU only", life_mcu);
  std::printf("%-24s %11.0f days\n", "heterogeneous", life_off);

  std::printf(
      "\nReading: the accelerator classifies the window faster at lower\n"
      "energy, then clock-gates; the MCU sleeps through the compute. This\n"
      "is the paper's point that the ULP accelerator must be *much* more\n"
      "energy-efficient than its host to be worth the coupling.\n");
  return 0;
}
