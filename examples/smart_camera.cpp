// Smart camera node: the paper's motivating IoT scenario (Section I —
// "embedded machine vision").
//
// A low-power camera produces frames; the MCU wants a CNN classification
// per frame inside a sub-10 mW system budget. This example sweeps the MCU
// frequency, gives the accelerator whatever power is left, and reports the
// achievable frame rate three ways:
//   * MCU alone (no accelerator),
//   * heterogeneous, sequential offload per frame,
//   * heterogeneous, double-buffered (next frame streams in while the
//     current one is classified — the paper's "traditional double
//     buffering schemes").
//
// Build & run:  ./build/examples/smart_camera
#include <cstdio>

#include "kernels/kernel.hpp"
#include "kernels/runner.hpp"
#include "runtime/offload.hpp"

int main() {
  using namespace ulp;
  constexpr double kBudget = mw(10);

  const core::CoreConfig accel_cfg = core::or10n_config();
  const kernels::KernelCase frame_kernel = kernels::make_cnn(
      accel_cfg.features, 4, kernels::Target::kCluster, 2026);

  const host::McuSpec& mcu = host::stm32l476();
  const auto mcu_cfg = mcu.core_config();
  const auto kc_mcu =
      kernels::make_cnn(mcu_cfg.features, 1, kernels::Target::kFlat, 2026);
  const u64 mcu_cycles = kernels::run_on_flat(kc_mcu, mcu_cfg).cycles;

  power::PulpPowerModel pm;

  std::printf("Smart camera: CNN classification per frame, %.0f mW budget\n",
              kBudget * 1e3);
  std::printf("%8s | %10s | %12s %12s | %10s %8s\n", "f_mcu", "MCU-only",
              "seq fps", "dblbuf fps", "PULP op", "P total");
  std::printf("%8s | %10s | %12s %12s | %10s %8s\n", "", "fps", "", "",
              "V / MHz", "mW");

  for (double f_mcu : {mhz(2), mhz(4), mhz(8), mhz(16), mhz(26), mhz(32)}) {
    // MCU alone: full budget check, frame rate from its own cycles.
    const double p_mcu = mcu.active_power_w(f_mcu);
    const double fps_mcu_only =
        p_mcu <= kBudget ? f_mcu / static_cast<double>(mcu_cycles) : 0.0;

    // Heterogeneous: residual power to the accelerator.
    link::SpiLinkConfig lcfg;
    lcfg.lanes = mcu.spi_lanes;
    lcfg.max_freq_hz = mcu.spi_max_hz;
    runtime::OffloadSession session(mcu, f_mcu, link::SpiLink(lcfg));

    // Activity factors for the budget search come from a reference run.
    const auto probe = session.run(frame_kernel.offload_request(),
                                   power::OperatingPoint{0.6, pm.fmax_hz(0.6)});
    const double residual =
        kBudget - p_mcu - session.link().idle_power_w();
    const auto op = pm.max_performance_point(residual, probe.activity);
    if (!op) {
      std::printf("%5.0fMHz | %10.1f | %12s %12s | %10s %8s\n", f_mcu / 1e6,
                  fps_mcu_only, "--", "--", "--", "--");
      continue;
    }
    const auto outcome = session.run(frame_kernel.offload_request(), *op);
    if (outcome.output != frame_kernel.expected) {
      std::printf("classification mismatch!\n");
      return 1;
    }
    // Steady-state frame period with the code offload amortised.
    const auto& t = outcome.timing;
    const double seq_period = t.t_in_s + t.t_compute_s + t.t_out_s;
    const double dbl_period =
        std::max(t.t_compute_s, t.t_in_s + t.t_out_s);
    const double p_total = session.steady_power_w(outcome, *op, true);
    std::printf(
        "%5.0fMHz | %10.1f | %12.1f %12.1f | %4.2fV/%3.0fM %8.2f\n",
        f_mcu / 1e6, fps_mcu_only, 1.0 / seq_period, 1.0 / dbl_period,
        op->vdd, op->freq_hz / 1e6, p_total * 1e3);
  }

  std::printf(
      "\nReading: the MCU alone cannot exceed a few frames/s inside the\n"
      "budget; handing the freed-up power to the accelerator buys an order\n"
      "of magnitude, and double buffering hides the QSPI transfer time\n"
      "whenever classification dominates.\n");
  return 0;
}
