#!/usr/bin/env sh
# Profiler smoke run: a profiled full-system offload plus a profiled
# multi-worker campaign, asserting the two profiler invariants end to end:
#
#   1. conservation — every attributed profile reports "conserved":true
#      (each core cycle landed in exactly one stall bucket, per-pc cycles
#      sum to the core counters), and
#   2. determinism — the campaign profile aggregate is byte-identical for
#      1 worker and N workers, and across reference/fast-forward stepping.
#
#   scripts/profile_smoke.sh [full_system-binary] [kernel]
#
# The binary defaults to build/examples/full_system, the kernel to matmul.
# When an ASan tree exists at build-asan/, the same runs are repeated with
# the instrumented binaries to flush out profiler memory errors.
set -eu

BIN=${1:-build/examples/full_system}
KERNEL=${2:-matmul}

if [ ! -x "$BIN" ]; then
  echo "error: $BIN not found or not executable (build first?)" >&2
  exit 1
fi

TMP=$(mktemp -d)
trap 'rm -rf "$TMP"' EXIT INT TERM

# Asserts a profile JSON file conserves: at least one "conserved":true and
# no "conserved":false anywhere in the document.
check_conserved() {
  FILE=$1
  WHAT=$2
  if ! grep -q '"conserved":true' "$FILE"; then
    echo "FAILED: $WHAT has no conserved profile" >&2
    exit 1
  fi
  if grep -q '"conserved":false' "$FILE"; then
    echo "FAILED: $WHAT violates cycle conservation" >&2
    exit 1
  fi
}

smoke() {
  FS=$1     # full_system binary
  TAG=$2    # output-file prefix
  CAMPAIGN=$(dirname "$FS")/ulp_campaign

  echo ""
  echo "== profiled offload ($TAG) =="
  "$FS" "$KERNEL" --profile-out "$TMP/$TAG-offload.json" \
    --metrics-json "$TMP/$TAG-metrics.json" --trace-limit 4096 > /dev/null
  check_conserved "$TMP/$TAG-offload.json" "profiled offload"
  echo "-- OK: cluster + host profiles conserve"

  if [ ! -x "$CAMPAIGN" ]; then
    echo "(skipping campaign smoke: $CAMPAIGN not built)"
    return
  fi

  # 8 jobs (2 kernels x 2 core counts x 2 repeats), profiled, run once on
  # a single worker and once on four. The profile aggregates must be
  # byte-identical — the campaign fold is index-ordered, not
  # completion-ordered.
  echo "== profiled campaign ($TAG, 1 vs 4 workers) =="
  for W in 1 4; do
    "$CAMPAIGN" --quiet --kernels "$KERNEL,cnn" --cores 1,4 --repeats 2 \
      --workers "$W" --profile-out "$TMP/$TAG-w$W.json" \
      --metrics-json "$TMP/$TAG-w$W-metrics.json"
  done
  check_conserved "$TMP/$TAG-w1.json" "campaign profile"
  if ! cmp -s "$TMP/$TAG-w1.json" "$TMP/$TAG-w4.json"; then
    echo "FAILED: campaign profile differs between 1 and 4 workers" >&2
    exit 1
  fi
  if ! cmp -s "$TMP/$TAG-w1-metrics.json" "$TMP/$TAG-w4-metrics.json"; then
    echo "FAILED: campaign metrics differ between 1 and 4 workers" >&2
    exit 1
  fi
  echo "-- OK: 1-worker and 4-worker profile aggregates byte-identical"

  # Reference stepping must reproduce the fast-forward profile bit for bit.
  echo "== profiled campaign ($TAG, reference vs fast-forward) =="
  "$CAMPAIGN" --quiet --kernels "$KERNEL,cnn" --cores 1,4 --repeats 2 \
    --workers 4 --reference-stepping 1 --profile-out "$TMP/$TAG-ref.json"
  if ! cmp -s "$TMP/$TAG-w4.json" "$TMP/$TAG-ref.json"; then
    echo "FAILED: profile differs between stepping modes" >&2
    exit 1
  fi
  echo "-- OK: reference and fast-forward profiles byte-identical"

  # Neither may the basic-block translation cache change a single
  # attributed cycle: the default w4 profile above ran block-cached
  # (process default), so pin the cache off and compare bytes.
  echo "== profiled campaign ($TAG, block cache on vs off) =="
  "$CAMPAIGN" --quiet --kernels "$KERNEL,cnn" --cores 1,4 --repeats 2 \
    --workers 4 --block-cache 0 --profile-out "$TMP/$TAG-nobc.json"
  if ! cmp -s "$TMP/$TAG-w4.json" "$TMP/$TAG-nobc.json"; then
    echo "FAILED: profile differs with the block cache disabled" >&2
    exit 1
  fi
  echo "-- OK: block-cached and per-instruction profiles byte-identical"
}

smoke "$BIN" "default"

# ASan pass: same assertions on the instrumented tree when it exists.
ASAN_BIN=build-asan/examples/full_system
if [ -x "$ASAN_BIN" ]; then
  smoke "$ASAN_BIN" "asan"
else
  echo ""
  echo "(skipping ASan pass: $ASAN_BIN not built)"
fi

echo ""
echo "profile smoke: conservation + determinism hold"
