# Shared guard for benchmark-recording scripts: committed BENCH_*.json
# numbers must come from an optimised, assert-free binary. Source this
# file, then call the helpers below.
#
# The repo's benches compile their CMAKE_BUILD_TYPE into the binary
# (ULP_BUILD_TYPE) and report it via a --*build-info flag; gbench's own
# "library_build_type" context field describes the installed benchmark
# library and is NOT trustworthy provenance for our binaries — debug
# numbers were committed under that confusion once.

# ensure_release_build <build-dir> <target> — configures <build-dir> as a
# Release build of this repo (erroring out if it exists with a different
# CMAKE_BUILD_TYPE) and builds <target> in it.
ensure_release_build() {
  _dir=$1
  _target=$2
  _src=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
  if [ -f "$_dir/CMakeCache.txt" ]; then
    _cached=$(sed -n 's/^CMAKE_BUILD_TYPE:[^=]*=//p' "$_dir/CMakeCache.txt")
    if [ "$_cached" != "Release" ]; then
      echo "ERROR: $_dir is configured as '$_cached', not Release." >&2
      echo "       Use a dedicated Release build dir for recording." >&2
      exit 1
    fi
  fi
  cmake -B "$_dir" -S "$_src" -DCMAKE_BUILD_TYPE=Release >/dev/null
  cmake --build "$_dir" --target "$_target" -j >/dev/null
}

# require_release <binary> <info-flag> — runs `<binary> <info-flag>` and
# fails loudly unless it reports an optimised, assert-free Release build.
require_release() {
  _bin=$1
  _flag=$2
  if ! _info=$("$_bin" "$_flag" 2>&1); then
    echo "ERROR: '$_bin $_flag' failed: $_info" >&2
    echo "       (binary predates build provenance? rebuild first)" >&2
    exit 1
  fi
  case $_info in
    *"build_type=Release"*"asserts=off"*)
      echo "verified: $_bin ($_info)"
      ;;
    *)
      echo "ERROR: refusing to record benchmark numbers from a" >&2
      echo "       non-Release binary: $_bin reports '$_info'." >&2
      echo "       Rebuild with -DCMAKE_BUILD_TYPE=Release." >&2
      exit 1
      ;;
  esac
}
