#!/usr/bin/env sh
# Scale-out smoke test: multi-cluster dispatch end to end.
#
#   scripts/scaleout_smoke.sh [build-dir]
#
# Against an existing build tree (default: build), this script checks the
# two contracts the multi-cluster refactor must keep:
#
#   1. The {clusters: 1} degenerate path is byte-identical to the legacy
#      single-cluster campaign: a sweep with an explicit size-1 clusters
#      axis serialises to the same JSON as one without the axis at all,
#      in both engines.
#   2. A 2/4-cluster sweep completes with every job passing, in both
#      engines and across worker counts (1 vs 4 must agree byte-for-byte).
#
# If an ASan tree exists at build-asan/ (or $ASAN_DIR), the 2-cluster
# cosim sweep is repeated there to shake out lifetime bugs in the
# N-cluster wiring.
set -eu

DIR=${1:-build}
ASAN_DIR=${ASAN_DIR:-build-asan}
CAMPAIGN="$DIR/examples/ulp_campaign"
FULL="$DIR/examples/full_system"

[ -x "$CAMPAIGN" ] || {
  echo "error: $CAMPAIGN not built (run cmake --build $DIR first)" >&2
  exit 1
}

TMP=$(mktemp -d)
trap 'rm -rf "$TMP"' EXIT

echo "== N=1 degenerate byte-identity (analytic + cosim) =="
for engine in analytic cosim; do
  "$CAMPAIGN" --quiet --engine "$engine" --kernels matmul,cnn --cores 4 \
    --vdd 0.5 --repeats 1 --json "$TMP/legacy-$engine.json"
  "$CAMPAIGN" --quiet --engine "$engine" --kernels matmul,cnn --cores 4 \
    --clusters 1 --lanes 0 --vdd 0.5 --repeats 1 \
    --json "$TMP/degenerate-$engine.json"
  cmp "$TMP/legacy-$engine.json" "$TMP/degenerate-$engine.json" || {
    echo "FAIL: clusters=1 $engine campaign diverged from legacy" >&2
    exit 1
  }
done

echo "== multi-cluster sweep passes (analytic, clusters x lanes) =="
"$CAMPAIGN" --quiet --engine analytic --kernels matmul,cnn --cores 1,4 \
  --clusters 1,2,4 --lanes 0,4 --vdd 0.5,0.8 --repeats 1 \
  --json "$TMP/scale-analytic.json"
grep -q '"failed": 0' "$TMP/scale-analytic.json" || {
  echo "FAIL: analytic scale-out sweep had failing jobs" >&2
  exit 1
}

echo "== multi-cluster sweep passes (cosim, worker invariance) =="
"$CAMPAIGN" --quiet --engine cosim --kernels matmul --cores 4 \
  --clusters 1,2 --vdd 0.5 --repeats 1 --workers 1 \
  --json "$TMP/scale-cosim-w1.json"
"$CAMPAIGN" --quiet --engine cosim --kernels matmul --cores 4 \
  --clusters 1,2 --vdd 0.5 --repeats 1 --workers 4 \
  --json "$TMP/scale-cosim-w4.json"
grep -q '"failed": 0' "$TMP/scale-cosim-w1.json" || {
  echo "FAIL: cosim scale-out sweep had failing jobs" >&2
  exit 1
}
cmp "$TMP/scale-cosim-w1.json" "$TMP/scale-cosim-w4.json" || {
  echo "FAIL: cosim scale-out aggregate differs across worker counts" >&2
  exit 1
}

if [ -x "$FULL" ]; then
  echo "== 2-cluster full_system boots and matches =="
  "$FULL" --clusters 2 | grep -q "FAILED" && {
    echo "FAIL: full_system --clusters 2 reported a mismatch" >&2
    exit 1
  }
fi

if [ -x "$ASAN_DIR/examples/ulp_campaign" ]; then
  echo "== 2-cluster cosim sweep under ASan ($ASAN_DIR) =="
  "$ASAN_DIR/examples/ulp_campaign" --quiet --engine cosim \
    --kernels matmul --cores 4 --clusters 2 --vdd 0.5 --repeats 1
else
  echo "== ASan tree $ASAN_DIR not present; skipping ASan pass =="
fi

echo "scale-out smoke: clean"
