#!/usr/bin/env sh
# ThreadSanitizer smoke test for the parallel campaign engine:
#
#   scripts/tsan_smoke.sh [build-dir]
#
# Configures a dedicated ULP_SANITIZE=thread tree (default: build-tsan),
# builds the batch test suite and the ulp_campaign CLI, and runs a
# multi-worker campaign under TSan with halt_on_error — any data race in
# the pool, the shared progress counters or the per-job simulation state
# fails the script.
set -eu

DIR=${1:-build-tsan}
SRC=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)

cmake -B "$DIR" -S "$SRC" -DULP_SANITIZE=thread \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo >/dev/null
cmake --build "$DIR" --target test_batch test_snapshot ulp_campaign -j \
  >/dev/null

export TSAN_OPTIONS="halt_on_error=1 abort_on_error=1"

echo "== test_batch under TSan =="
"$DIR/tests/test_batch" --gtest_brief=1

echo "== test_snapshot under TSan =="
# Covers the differential snapshot fuzzer (save/restore on clusters with
# threaded block dispatch) and the warm-start boot-snapshot cache, whose
# process-wide mutex-guarded map is shared by every worker.
"$DIR/tests/test_snapshot" --gtest_brief=1

echo "== multi-worker campaign under TSan (block-cached) =="
# Explicitly block-cached: every worker runs its jobs through the per-core
# basic-block caches, so a shared mutable decode structure would be a race.
"$DIR/examples/ulp_campaign" --quiet --workers 4 --block-cache 1 \
  --kernels matmul,cnn --cores 1,4 --vdd 0.5,0.8 \
  --faults "none;seed=7,flip=1e-4" --repeats 2

echo "== multi-worker campaign under TSan (multi-core windows) =="
# 4-core jobs with multi-core block windows pinned on: the window replay
# shares nothing across workers (per-core caches, per-cluster arbiter
# state), and a stray global in the cycle-walk or the bank replay would
# race here.
"$DIR/examples/ulp_campaign" --quiet --workers 4 --block-cache 1 \
  --mc-windows 1 --kernels matmul,cnn --cores 4 --vdd 0.5,0.8 \
  --faults "none;seed=7,flip=1e-4" --repeats 2

echo "== multi-worker campaign under TSan (cache disabled control) =="
"$DIR/examples/ulp_campaign" --quiet --workers 4 --block-cache 0 \
  --kernels matmul,cnn --cores 1,4 --vdd 0.5,0.8 \
  --faults "none;seed=7,flip=1e-4" --repeats 2

echo "== warm-start campaign under TSan =="
# All four workers race to populate and then hit the shared boot-snapshot
# cache (same kernel images, same geometries) — the cache lookup, insert
# and eviction paths all run concurrently here.
"$DIR/examples/ulp_campaign" --quiet --workers 4 --warm-start 1 \
  --kernels matmul,cnn --cores 1,4 --vdd 0.5,0.8 --repeats 2

echo "== multi-cluster campaign under TSan =="
# Scale-out cells: each worker simulates several clusters sharing one wire
# inside its job, both engines — a race in the per-job HeteroSystem scale
# path or the scale-out composition helpers fails here.
"$DIR/examples/ulp_campaign" --quiet --workers 4 \
  --kernels matmul,cnn --cores 4 --clusters 1,2,4 --lanes 0,4 \
  --vdd 0.5 --repeats 2
"$DIR/examples/ulp_campaign" --quiet --workers 4 --engine cosim \
  --kernels matmul --cores 4 --clusters 1,2 --vdd 0.5 --repeats 1

echo "TSan smoke: clean"
