#!/usr/bin/env sh
# Measures campaign-engine batch throughput (jobs/s and simulated
# cycles/s) at several worker counts and records the scaling curve:
#
#   scripts/bench_throughput.sh [ulp_campaign-binary | build-dir] [out.json]
#
# The campaign is a >=64-job analytic sweep over the Table I design space.
# Along the way the script asserts the determinism contract: the
# aggregated JSON/CSV written by the 1-worker and every N-worker run must
# be byte-identical (only the wall-clock stats may differ).
#
# Inherits the Release guard: numbers are only recorded from a verified
# Release build. The host's CPU count is stamped into the output — on a
# single-core host the >1-worker points measure oversubscription, not
# parallel speedup, and the committed JSON must be read with that context.
set -eu

. "$(CDPATH= cd -- "$(dirname -- "$0")" && pwd)/release_guard.sh"

ARG=${1:-build-release}
OUT=${2:-BENCH_throughput.json}
WORKER_COUNTS=${ULP_BENCH_WORKERS:-"1 2 4"}

if [ -d "$ARG" ] || [ ! -e "$ARG" ]; then
  ensure_release_build "$ARG" ulp_campaign
  BIN=$ARG/examples/ulp_campaign
else
  BIN=$ARG
fi
require_release "$BIN" --build-info

NUM_CPUS=$( (command -v nproc >/dev/null 2>&1 && nproc) || echo 1)

TMP=$(mktemp -d)
trap 'rm -rf "$TMP"' EXIT

# 2 kernels x 2 cores x 2 clocks x 2 vdd x 2 fault specs x 2 repeats = 64.
run_campaign() {
  "$BIN" --quiet \
    --kernels matmul,cnn --cores 1,4 --mcu-mhz 16,48 --vdd 0.5,0.8 \
    --faults "none;seed=7,flip=1e-4" --repeats 2 --seed 1 \
    --workers "$1" \
    --json "$TMP/agg$1.json" --csv "$TMP/agg$1.csv" \
    --stats-json "$TMP/stats$1.json" >/dev/null
}

echo "== campaign throughput (64 jobs, analytic engine) =="
FIRST=""
for W in $WORKER_COUNTS; do
  run_campaign "$W"
  if [ -z "$FIRST" ]; then
    FIRST=$W
  else
    # The determinism contract, enforced at record time.
    cmp "$TMP/agg$FIRST.json" "$TMP/agg$W.json" || {
      echo "ERROR: $W-worker JSON differs from $FIRST-worker JSON" >&2
      exit 1
    }
    cmp "$TMP/agg$FIRST.csv" "$TMP/agg$W.csv" || {
      echo "ERROR: $W-worker CSV differs from $FIRST-worker CSV" >&2
      exit 1
    }
  fi
  echo "  workers=$W: $(sed -n 's/.*"jobs_per_s": \([0-9.]*\).*/\1 jobs\/s/p' \
    "$TMP/stats$W.json")"
done
echo "aggregates byte-identical across worker counts: OK"

{
  echo "{"
  echo "  \"context\": {"
  echo "    \"date\": \"$(date -u +%Y-%m-%dT%H:%M:%SZ)\","
  echo "    \"num_cpus\": $NUM_CPUS,"
  echo "    \"build_type\": \"Release\","
  echo "    \"campaign_jobs\": 64,"
  echo "    \"engine\": \"analytic\","
  echo "    \"note\": \"speedup over 1 worker requires num_cpus > 1;" \
       "on a single-CPU host extra workers measure oversubscription\""
  echo "  },"
  echo "  \"runs\": ["
  SEP=""
  for W in $WORKER_COUNTS; do
    printf '%b    ' "$SEP"
    tr -d '\n' < "$TMP/stats$W.json"
    SEP=',\n'
  done
  printf '\n  ]\n}\n'
} > "$OUT"
echo "wrote $OUT"
