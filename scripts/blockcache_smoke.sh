#!/usr/bin/env sh
# Block-cache stepping-mode smoke: replays the committed differential
# corpus and runs a seeded 4-core fuzz batch across every stepping mode
# the ISS supports — per-cycle reference, plain fast-forward, solo
# block-cached, and block-cached with multi-core windows — so a change to
# the cache, the window replay or the dispatch backend that breaks
# bit-exactness in any one mode fails fast.
#
#   scripts/blockcache_smoke.sh [ulp_fuzz-binary] [seed]
#
# The binary defaults to build/examples/ulp_fuzz, the seed to a fixed
# constant — every run is deterministic. check_program already pins each
# differential leg's mode internally; the process-wide latches flipped
# here additionally cover every simulation outside the matrix (shrink
# oracles, stress reruns), so the sweep exercises both layers.
#
# When an AddressSanitizer tree exists at build-asan/ (configure with
#   cmake -B build-asan -S . -DCMAKE_CXX_FLAGS="-fsanitize=address"),
# the multi-core-window batch is repeated under ASan: the window replay
# walks direct host-pointer spans, exactly where an out-of-bounds access
# would hide from the differential check.
set -eu

BIN=${1:-build/examples/ulp_fuzz}
SEED=${2:-0xB10CCA9E}

if [ ! -x "$BIN" ]; then
  echo "error: $BIN not found or not executable (build first?)" >&2
  exit 1
fi

CORPUS=$(dirname "$0")/../tests/verif/corpus

echo "== corpus replay across stepping modes =="
# Mode latches: ULP_REFERENCE_STEPPING beats ULP_BLOCK_CACHE beats
# ULP_MC_WINDOWS (see DESIGN.md §7). The four rows below walk the whole
# ladder; --block-cache/--mc-windows pin the same latches from the CLI.
for MODE in reference ff bc bc-mc; do
  case $MODE in
    reference) ENV="ULP_REFERENCE_STEPPING=1" ;;
    ff)        ENV="ULP_BLOCK_CACHE=0" ;;
    bc)        ENV="ULP_MC_WINDOWS=0" ;;
    bc-mc)     ENV="" ;;
  esac
  FOUND=0
  for repro in "$CORPUS"/*.repro; do
    [ -e "$repro" ] || break
    FOUND=1
    env $ENV "$BIN" --replay "$repro" > /dev/null || {
      echo "FAILED: corpus replay diverged ($MODE): $repro" >&2
      exit 1
    }
  done
  [ "$FOUND" = 1 ] && echo "-- OK: corpus bit-exact in mode $MODE"
done

echo ""
echo "== seeded 4-core fuzz batch across stepping modes =="
# Stress schedules are multi-core (up to 4 cores), which is the only
# place multi-core windows can form; --items is kept high so programs
# have dense block-sized bodies between sync points.
for MODE in reference ff bc bc-mc; do
  case $MODE in
    reference) ENV="ULP_REFERENCE_STEPPING=1" ;;
    ff)        ENV="ULP_BLOCK_CACHE=0" ;;
    bc)        ENV="ULP_MC_WINDOWS=0" ;;
    bc-mc)     ENV="" ;;
  esac
  env $ENV "$BIN" --programs 200 --stress 200 --items 64 \
    --seed "$SEED" > /dev/null || {
    echo "FAILED: fuzz batch diverged in mode $MODE (seed $SEED)" >&2
    exit 1
  }
  echo "-- OK: fuzz batch clean in mode $MODE"
done

ASAN_BIN=build-asan/examples/ulp_fuzz
if [ -x "$ASAN_BIN" ]; then
  echo ""
  echo "== ASan multi-core-window batch (same seed) =="
  "$ASAN_BIN" --programs 50 --stress 100 --items 64 --seed "$SEED"
  echo "-- OK: ASan batch clean"
else
  echo ""
  echo "(skipping ASan batch: $ASAN_BIN not built)"
fi

echo ""
echo "block-cache smoke: all stepping modes agree"
