#!/usr/bin/env sh
# Differential-fuzz smoke run: a seeded constrained-random campaign against
# the independent golden interpreter plus multi-core stress schedules, with
# the opcode-coverage gate on. Sized to finish in about a minute while still
# retiring millions of instructions across every feature profile.
#
#   scripts/fuzz_smoke.sh [ulp_fuzz-binary] [seed]
#
# The binary defaults to build/examples/ulp_fuzz, the seed to a fixed
# constant — every run is deterministic, so failures reproduce exactly and
# the printed seeds can be re-fuzzed or replayed directly.
#
# When an AddressSanitizer tree exists at build-asan/ (configure with
#   cmake -B build-asan -S . -DCMAKE_CXX_FLAGS="-fsanitize=address"),
# the same seeded batch is repeated under ASan to catch memory errors the
# differential check cannot see.
set -eu

BIN=${1:-build/examples/ulp_fuzz}
SEED=${2:-0x5EEDFACE}

if [ ! -x "$BIN" ]; then
  echo "error: $BIN not found or not executable (build first?)" >&2
  exit 1
fi

echo "== replaying committed corpus (block cache on and off) =="
CORPUS=$(dirname "$0")/../tests/verif/corpus
FOUND=0
# The differential check pins both block modes internally; the process-wide
# --block-cache latch additionally flips every other simulation the replay
# leg touches (shrink oracles, stress reruns), so exercise both settings.
# Replay also runs the snapshot column on every entry: each cluster-backed
# mode is re-run through a seed-derived mid-run save/restore into a fresh
# cluster and diffed bit-for-bit against the continuous run.
for BC in 1 0; do
  for repro in "$CORPUS"/*.repro; do
    [ -e "$repro" ] || break
    FOUND=1
    "$BIN" --block-cache "$BC" --replay "$repro" > /dev/null || {
      echo "FAILED: corpus replay diverged (block-cache $BC): $repro" >&2
      exit 1
    }
  done
done
[ "$FOUND" = 1 ] && echo "-- OK: corpus replayed bit-exactly in both modes"

echo ""
echo "== seeded differential campaign (coverage-gated) =="
# ~60s of fuzzing on a development machine: the differential harness runs
# each program four ways (golden, reference, fast-forward, block-cached),
# so the program count is the budget knob. The snapshot column costs about
# 16 ms per program (it re-runs every cluster mode through a mid-run
# save/restore), so at this scale it runs on every 32nd program — still
# thousands of randomized round trips per smoke run; unit campaigns and
# the corpus replay above keep it on for every program.
"$BIN" --programs 100000 --stress 20000 --items 64 --seed "$SEED" \
  --snapshot-every 32 --coverage
echo "-- OK: campaign clean, all implemented opcodes exercised"

ASAN_BIN=build-asan/examples/ulp_fuzz
if [ -x "$ASAN_BIN" ]; then
  echo ""
  echo "== ASan batch (same seed) =="
  "$ASAN_BIN" --programs 300 --stress 60 --seed "$SEED"
  echo "-- OK: ASan batch clean"
else
  echo ""
  echo "(skipping ASan batch: $ASAN_BIN not built)"
fi

echo ""
echo "fuzz smoke: all checks passed"
