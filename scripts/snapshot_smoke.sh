#!/usr/bin/env sh
# Snapshot/restore smoke run: exercises the full save/restore surface end
# to end in under a minute.
#
#   scripts/snapshot_smoke.sh [build-dir]
#
# Legs:
#   1. full_system round trip — save mid-run state with --snapshot-out,
#      restore it with --restore, and demand the restored continuation
#      prints the same result block as the continuous run.
#   2. corpus replay — every committed .repro runs through the
#      differential snapshot column (each cluster stepping mode re-run
#      through a seed-derived mid-run save/restore, diffed bit-for-bit).
#   3. seeded snapshot fuzz batch — fresh randomized programs, snapshot
#      column on every program.
#   4. warm-start campaign — the same campaign cold and warm; the
#      deterministic JSON aggregates must be byte-identical (warm start
#      is a wall-clock optimisation only).
#   5. optional ASan leg — when build-asan/ exists (configure with
#      cmake -B build-asan -S . -DCMAKE_CXX_FLAGS="-fsanitize=address"),
#      the fuzz batch repeats under ASan to catch memory errors in the
#      serializer that bit-identity checks cannot see.
set -eu

DIR=${1:-build}
TMP=$(mktemp -d)
trap 'rm -rf "$TMP"' EXIT

for bin in "$DIR/examples/full_system" "$DIR/examples/ulp_fuzz" \
           "$DIR/examples/ulp_campaign"; do
  if [ ! -x "$bin" ]; then
    echo "error: $bin not found or not executable (build first?)" >&2
    exit 1
  fi
done

echo "== full_system save/restore round trip =="
# The continuous run both produces the reference output and writes the
# snapshot; the restored run must reproduce the result block exactly.
"$DIR/examples/full_system" matmul --snapshot-out "$TMP/state.ulps" \
  > "$TMP/cold.txt"
"$DIR/examples/full_system" matmul --restore "$TMP/state.ulps" \
  > "$TMP/warm.txt"
grep "result:" "$TMP/cold.txt" > "$TMP/cold_result.txt"
grep "result:" "$TMP/warm.txt" > "$TMP/warm_result.txt"
cmp "$TMP/cold_result.txt" "$TMP/warm_result.txt" || {
  echo "FAILED: restored full_system run diverged from continuous run" >&2
  exit 1
}
# A wrong-geometry restore must be rejected cleanly (all-or-nothing).
if "$DIR/examples/full_system" matmul --clusters 2 \
     --restore "$TMP/state.ulps" > /dev/null 2>&1; then
  echo "FAILED: wrong-geometry snapshot was accepted" >&2
  exit 1
fi
echo "-- OK: round trip bit-exact, wrong geometry rejected"

echo ""
echo "== corpus replay through the snapshot column =="
CORPUS=$(dirname "$0")/../tests/verif/corpus
FOUND=0
for repro in "$CORPUS"/*.repro; do
  [ -e "$repro" ] || break
  FOUND=1
  "$DIR/examples/ulp_fuzz" --replay "$repro" > /dev/null || {
    echo "FAILED: snapshot column diverged on corpus entry: $repro" >&2
    exit 1
  }
done
[ "$FOUND" = 1 ] && echo "-- OK: every corpus entry round-trips bit-exactly"

echo ""
echo "== seeded snapshot fuzz batch (column on every program) =="
"$DIR/examples/ulp_fuzz" --programs 400 --stress 80 --items 64 \
  --seed 0x5EED5AFE --snapshot-every 1
echo "-- OK: randomized snapshot round trips clean"

echo ""
echo "== warm-start campaign byte-identity =="
# Same campaign, cold then warm, multi-worker; the deterministic JSON
# aggregate must not change by a single byte.
CAMPAIGN_ARGS="--quiet --workers 4 --kernels matmul,cnn --cores 1,4 \
  --vdd 0.5,0.8 --repeats 2"
"$DIR/examples/ulp_campaign" $CAMPAIGN_ARGS --warm-start 0 \
  --json "$TMP/campaign_cold.json" > /dev/null
"$DIR/examples/ulp_campaign" $CAMPAIGN_ARGS --warm-start 1 \
  --json "$TMP/campaign_warm.json" > /dev/null
cmp "$TMP/campaign_cold.json" "$TMP/campaign_warm.json" || {
  echo "FAILED: warm-start campaign aggregate differs from cold start" >&2
  exit 1
}
echo "-- OK: warm-start aggregates byte-identical to cold start"

ASAN_BIN=build-asan/examples/ulp_fuzz
if [ -x "$ASAN_BIN" ]; then
  echo ""
  echo "== ASan snapshot batch =="
  "$ASAN_BIN" --programs 60 --stress 12 --seed 0x5EED5AFE --snapshot-every 1
  echo "-- OK: ASan snapshot batch clean"
else
  echo ""
  echo "(skipping ASan batch: $ASAN_BIN not built)"
fi

echo ""
echo "snapshot smoke: all checks passed"
