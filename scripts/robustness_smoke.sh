#!/usr/bin/env sh
# Robustness smoke run: drives the full-system co-simulation through the
# robust offload protocol at several link fault rates and asserts the node
# always delivers correct results — by retry recovery at survivable rates,
# and by host-reference fallback when the EOC line is dead.
#
#   scripts/robustness_smoke.sh [full_system-binary] [kernel]
#
# The binary defaults to build/examples/full_system, the kernel to matmul.
# Every run uses a fixed seed, so failures reproduce exactly. After the
# single-run scenarios, the same fault space is swept as a multi-worker
# ulp_campaign batch (when the CLI is built next to the given binary).
set -eu

BIN=${1:-build/examples/full_system}
KERNEL=${2:-matmul}

if [ ! -x "$BIN" ]; then
  echo "error: $BIN not found or not executable (build first?)" >&2
  exit 1
fi

run() {
  SPEC=$1
  WHAT=$2
  echo ""
  echo "== $WHAT  (--faults=$SPEC) =="
  if "$BIN" "$KERNEL" "--faults=$SPEC"; then
    echo "-- OK: correct result under $WHAT"
  else
    echo "FAILED: $WHAT did not recover" >&2
    exit 1
  fi
}

# Three escalating per-beat/per-frame fault rates: the retrying driver must
# recover every one of them with a bit-exact result (exit code 0).
run "seed=7,flip=1e-5"          "light bit-flip noise"
run "seed=7,flip=1e-4"          "heavy bit-flip noise"
run "seed=7,flip=5e-5,nak=0.05" "flips + transient NAKs"

# Dead EOC line: retries cannot help; the watchdog must expire and the node
# degrade to the host-reference output — still correct, still exit 0.
run "seed=7,stuck=5"            "stuck EOC line (host fallback)"

echo ""
echo "robustness smoke: all scenarios recovered"

# Campaign sweep: the same scenarios as a parallel batch on the co-sim
# engine. The campaign must complete with zero failed jobs (fallback jobs
# count as recovered) and report the injected-fault traffic it survived.
CAMPAIGN=$(dirname "$BIN")/ulp_campaign
if [ -x "$CAMPAIGN" ]; then
  echo ""
  echo "== campaign sweep (cosim engine, 4 workers) =="
  "$CAMPAIGN" --quiet --engine cosim --workers 4 \
    --kernels "$KERNEL" --cores 1,4 \
    --faults "none;seed=7,flip=1e-5;seed=7,flip=1e-4;seed=7,flip=5e-5,nak=0.05" \
    --repeats 2
  echo "-- OK: campaign sweep recovered every job"
else
  echo "(skipping campaign sweep: $CAMPAIGN not built)"
fi
