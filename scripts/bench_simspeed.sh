#!/usr/bin/env sh
# Runs the simspeed google-benchmark binary in both stepping modes and
# merges the results into one JSON document:
#
#   scripts/bench_simspeed.sh [simspeed-binary | build-dir] [output.json]
#
# Given a build dir (default: build-release), it configures and builds a
# Release tree there first; given a binary, the binary itself must report
# a Release build — debug numbers are refused, never silently recorded.
#
# "fast_forward" holds the default quiescence-fast-forward numbers (after),
# "reference_stepping" the ULP_REFERENCE_STEPPING=1 per-cycle loop (before).
# Requires jq for the merge; without jq the two raw files are left next to
# the output path.
set -eu

. "$(CDPATH= cd -- "$(dirname -- "$0")" && pwd)/release_guard.sh"

ARG=${1:-build-release}
OUT=${2:-BENCH_simspeed.json}
MIN_TIME=${ULP_BENCH_MIN_TIME:-1}

if [ -d "$ARG" ] || [ ! -e "$ARG" ]; then
  ensure_release_build "$ARG" simspeed
  BIN=$ARG/bench/simspeed
else
  BIN=$ARG
fi
require_release "$BIN" --ulp-build-info

FF_TMP=$(mktemp)
REF_TMP=$(mktemp)
trap 'rm -f "$FF_TMP" "$REF_TMP"' EXIT

echo "== fast-forward (default) =="
"$BIN" --benchmark_format=json --benchmark_min_time="$MIN_TIME" \
  --benchmark_out_format=json --benchmark_out="$FF_TMP" >/dev/null
echo "== reference stepping (ULP_REFERENCE_STEPPING=1) =="
ULP_REFERENCE_STEPPING=1 "$BIN" --benchmark_format=json \
  --benchmark_min_time="$MIN_TIME" \
  --benchmark_out_format=json --benchmark_out="$REF_TMP" >/dev/null

if command -v jq >/dev/null 2>&1; then
  jq -n --slurpfile ff "$FF_TMP" --slurpfile ref "$REF_TMP" \
    '{fast_forward: $ff[0], reference_stepping: $ref[0]}' > "$OUT"
  echo "wrote $OUT"
  echo "speedup (iteration time, reference / fast-forward):"
  jq -r '
    (.reference_stepping.benchmarks | map({(.name): .real_time}) | add)
      as $ref
    | .fast_forward.benchmarks[]
    | "  \(.name): \(($ref[.name] / .real_time * 100 | round) / 100)x"
  ' "$OUT"
else
  cp "$FF_TMP" "${OUT%.json}.fast_forward.json"
  cp "$REF_TMP" "${OUT%.json}.reference.json"
  echo "jq not found: wrote ${OUT%.json}.fast_forward.json and" \
       "${OUT%.json}.reference.json"
fi
