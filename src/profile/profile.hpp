// Cycle- and energy-attribution profiles.
//
// Captured data model plus the collectors that attach PcProfiles to live
// cores (cluster or host) and fold their contents into plain, mergeable
// structs. Everything here is deterministic: captures depend only on the
// simulated execution, merges are index-ordered, and the conservation
// invariant — every cycle in exactly one stall bucket, per-pc cycles
// summing back to the core's cycle counter — is checkable at any time.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "cluster/cluster.hpp"
#include "core/core.hpp"
#include "profile/pc_profile.hpp"

namespace ulp::profile {

/// Where a core's cycles went. Exactly one bucket per cycle:
/// total() == PerfCounters::cycles by construction (from_perf checks the
/// decomposition's preconditions).
struct CycleBuckets {
  u64 execute = 0;     ///< Issue + functional-unit latency.
  u64 icache = 0;      ///< I$ refill stalls.
  u64 tcdm = 0;        ///< Denied bus grants (bank conflicts, busy L2 port).
  u64 link_bound = 0;  ///< Host only: executing with an SPI transfer in flight.
  u64 barrier = 0;     ///< Asleep inside a barrier.
  u64 dma_wait = 0;    ///< WFE with a DMA transfer outstanding.
  u64 event_wait = 0;  ///< WFE on a plain software event.
  u64 halted = 0;      ///< After HALT/EOC.

  [[nodiscard]] u64 total() const {
    return execute + icache + tcdm + link_bound + barrier + dma_wait +
           event_wait + halted;
  }

  /// Decomposes a core's counters. `link_bound_cycles` (host cores only)
  /// must be a subset of its active cycles.
  [[nodiscard]] static CycleBuckets from_perf(const core::PerfCounters& p,
                                              u64 link_bound_cycles = 0);

  CycleBuckets& operator+=(const CycleBuckets& o);
  bool operator==(const CycleBuckets&) const = default;
};

/// One core's captured profile.
struct CoreProfileData {
  core::PerfCounters perf;
  u64 link_bound_cycles = 0;
  /// Cycles attributed up front (at issue) but not yet consumed when the
  /// run stopped — non-zero only when a core was abandoned mid-instruction
  /// (aborted offloads). Keeps conservation exact without rewinding.
  u64 busy_remaining = 0;
  std::vector<PcCount> pcs;
  std::vector<PcProfile::Frame> frames;
  u64 truncated_calls = 0;

  [[nodiscard]] CycleBuckets buckets() const {
    return CycleBuckets::from_perf(perf, link_bound_cycles);
  }

  /// Per-pc conservation: attributed cycles (plus halted time, which is
  /// attributed to no pc) account for every observed cycle.
  [[nodiscard]] bool conserved() const;

  /// Index-ordered fold of another capture into this one.
  void merge(const CoreProfileData& o);
};

/// One clock domain's profile: the program image it ran plus one
/// CoreProfileData per core.
struct DomainProfile {
  std::string name;  ///< "cluster", "host", ...
  std::vector<isa::Instr> code;
  std::vector<CoreProfileData> cores;

  [[nodiscard]] bool conserved() const;
  /// Bucket sum across cores.
  [[nodiscard]] CycleBuckets buckets() const;
  void merge(const DomainProfile& o);
};

/// Everything one batch job (or one session) collected.
struct JobProfile {
  bool collected = false;
  DomainProfile cluster;
  bool has_host = false;  ///< Co-simulated jobs also profile the host MCU.
  DomainProfile host;
};

/// Attaches collectors to every core of a cluster, and folds the collected
/// counts into an accumulating DomainProfile at capture() time. The
/// underlying PcProfiles reset with the cores on load_program, so the
/// attach/run/capture cycle can repeat across program loads.
class ClusterProfiler {
 public:
  ClusterProfiler() { data_.name = "cluster"; }
  ~ClusterProfiler() { detach(); }
  ClusterProfiler(const ClusterProfiler&) = delete;
  ClusterProfiler& operator=(const ClusterProfiler&) = delete;

  void attach(cluster::Cluster& cl);
  /// Folds the current run's counters into data(). Call once per run,
  /// after it finishes and before the next load_program.
  void capture();
  void detach();

  [[nodiscard]] const DomainProfile& data() const { return data_; }

 private:
  cluster::Cluster* cl_ = nullptr;
  std::vector<std::unique_ptr<PcProfile>> collectors_;
  DomainProfile data_;
};

/// Same for a single core outside a cluster (the host MCU).
class CoreProfiler {
 public:
  CoreProfiler() { data_.name = "host"; }
  ~CoreProfiler() { detach(); }
  CoreProfiler(const CoreProfiler&) = delete;
  CoreProfiler& operator=(const CoreProfiler&) = delete;

  void attach(core::Core& core);
  /// `program` is the image the core ran; `link_bound_cycles` the run's
  /// host-link-bound count (system::HeteroStats::host_link_bound_cycles).
  void capture(const isa::Program& program, u64 link_bound_cycles);
  void detach();

  [[nodiscard]] const DomainProfile& data() const { return data_; }

 private:
  core::Core* core_ = nullptr;
  std::unique_ptr<PcProfile> collector_;
  DomainProfile data_;
};

/// A keyed set of profilers for tools that profile many kernels in one
/// process (the bench binaries): one ClusterProfiler per label, iterated
/// in label order at report time.
class ProfileBook {
 public:
  ClusterProfiler& cluster(const std::string& label);
  [[nodiscard]] const std::map<std::string, std::unique_ptr<ClusterProfiler>>&
  clusters() const {
    return clusters_;
  }
  [[nodiscard]] bool empty() const { return clusters_.empty(); }

 private:
  std::map<std::string, std::unique_ptr<ClusterProfiler>> clusters_;
};

}  // namespace ulp::profile
