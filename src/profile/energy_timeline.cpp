#include "profile/energy_timeline.hpp"

#include <algorithm>
#include <map>
#include <string>
#include <vector>

namespace ulp::profile {

namespace {

using trace::EventTrace;

struct Deltas {
  // tick -> change in concurrently-active span count at that tick.
  std::map<u64, i64> run;
  std::map<u64, i64> aux;  ///< DMA spans (cluster domain only).
  u64 last_tick = 0;
  bool any = false;
};

bool starts_with(const std::string& s, const std::string& prefix) {
  return s.size() >= prefix.size() &&
         s.compare(0, prefix.size(), prefix) == 0;
}

/// Emits one counter track from a delta map via `watts(run, aux)`.
template <typename WattsFn>
void emit_track(EventTrace& trace, const std::string& name, double tps,
                int sort_index, const Deltas& d, WattsFn watts) {
  if (!d.any) return;
  const EventTrace::TrackId track = trace.add_track(name, tps, sort_index);
  // Walk both delta maps in tick order, emitting a sample per change point.
  std::map<u64, std::pair<i64, i64>> merged;
  for (const auto& [t, v] : d.run) merged[t].first += v;
  for (const auto& [t, v] : d.aux) merged[t].second += v;
  merged.try_emplace(0);           // explicit initial level
  merged.try_emplace(d.last_tick); // extend the line to the end of the run
  i64 run = 0;
  i64 aux = 0;
  for (const auto& [tick, dv] : merged) {
    run += dv.first;
    aux += dv.second;
    trace.counter(track, name, tick, watts(run, aux));
  }
}

}  // namespace

void add_power_tracks(EventTrace& trace, const PowerTimelineSpec& spec) {
  trace.close_open_spans();

  const std::string core_prefix = spec.cluster_prefix + ".core";
  const std::string dma_track = spec.cluster_prefix + ".dma";
  Deltas cluster;
  Deltas host;
  Deltas link;
  double cluster_tps = 1e9;
  double host_tps = 1e9;
  double link_tps = 1e9;

  const std::vector<EventTrace::Track>& tracks = trace.tracks();
  std::vector<u8> kind(tracks.size(), 0);  // 1 core, 2 dma, 3 host, 4 link
  for (size_t t = 0; t < tracks.size(); ++t) {
    if (starts_with(tracks[t].name, core_prefix)) {
      kind[t] = 1;
      cluster_tps = tracks[t].ticks_per_second;
    } else if (tracks[t].name == dma_track) {
      kind[t] = 2;
      cluster_tps = tracks[t].ticks_per_second;
    } else if (tracks[t].name == spec.host_track) {
      kind[t] = 3;
      host_tps = tracks[t].ticks_per_second;
    } else if (tracks[t].name == spec.link_track) {
      kind[t] = 4;
      link_tps = tracks[t].ticks_per_second;
    }
  }

  for (const EventTrace::Event& e : trace.events()) {
    if (e.kind != EventTrace::EventKind::kSpan || e.open) continue;
    const u8 k = kind[e.track];
    if (k == 0) continue;
    Deltas* d = nullptr;
    bool aux = false;
    if (k == 1 && e.name == "run") {
      d = &cluster;
    } else if (k == 2) {
      d = &cluster;
      aux = true;
    } else if (k == 3 && e.name == "run") {
      d = &host;
    } else if (k == 4) {
      d = &link;
    }
    if (d == nullptr) continue;
    d->any = true;
    d->last_tick = std::max(d->last_tick, e.end_tick);
    auto& m = aux ? d->aux : d->run;
    m[e.begin_tick] += 1;
    m[e.end_tick] -= 1;
  }

  emit_track(trace, "power.cluster", cluster_tps, 200, cluster,
             [&spec](i64 run, i64 dma) {
               power::ActivityFactors chi;
               chi.cores_run = static_cast<double>(run);
               chi.cores_idle =
                   static_cast<double>(spec.num_cluster_cores) - chi.cores_run;
               if (chi.cores_idle < 0) chi.cores_idle = 0;
               chi.mem = spec.mem_chi_per_running_core * chi.cores_run;
               chi.dma = dma > 0 ? 1.0 : 0.0;
               return spec.model.total_w(chi, spec.op);
             });
  emit_track(trace, "power.host", host_tps, 201, host,
             [&spec](i64 run, i64 /*aux*/) {
               return run > 0 ? spec.host_active_w : spec.host_sleep_w;
             });
  if (spec.link_active_w > 0) {
    emit_track(trace, "power.link", link_tps, 202, link,
               [&spec](i64 run, i64 /*aux*/) {
                 return run > 0 ? spec.link_active_w : 0.0;
               });
  }
}

}  // namespace ulp::profile
