#include "profile/report.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <vector>

#include "isa/disasm.hpp"

namespace ulp::profile {

namespace {

/// Per-pc totals summed across a domain's cores.
std::vector<PcCount> summed_pcs(const DomainProfile& d) {
  std::vector<PcCount> sum;
  for (const CoreProfileData& c : d.cores) {
    if (c.pcs.size() > sum.size()) sum.resize(c.pcs.size());
    for (size_t i = 0; i < c.pcs.size(); ++i) {
      sum[i].instrs += c.pcs[i].instrs;
      sum[i].cycles += c.pcs[i].cycles;
    }
  }
  return sum;
}

std::string fmt(const char* f, auto... args) {
  char buf[160];
  std::snprintf(buf, sizeof(buf), f, args...);
  return buf;
}

}  // namespace

std::string annotated_disassembly(const DomainProfile& d, size_t max_lines) {
  const std::vector<PcCount> sum = summed_pcs(d);
  u64 total = 0;
  for (const PcCount& p : sum) total += p.cycles;

  std::vector<size_t> keep(d.code.size());
  for (size_t i = 0; i < keep.size(); ++i) keep[i] = i;
  if (max_lines > 0 && keep.size() > max_lines) {
    std::stable_sort(keep.begin(), keep.end(), [&](size_t a, size_t b) {
      const u64 ca = a < sum.size() ? sum[a].cycles : 0;
      const u64 cb = b < sum.size() ? sum[b].cycles : 0;
      return ca > cb;
    });
    keep.resize(max_lines);
    std::sort(keep.begin(), keep.end());
  }

  std::string out = fmt("%12s %10s %6s  %-4s %s\n", "cycles", "instrs",
                        "cyc%", "pc", "instruction");
  for (size_t pc : keep) {
    const u64 cycles = pc < sum.size() ? sum[pc].cycles : 0;
    const u64 instrs = pc < sum.size() ? sum[pc].instrs : 0;
    const double pct =
        total == 0 ? 0.0 : 100.0 * static_cast<double>(cycles) /
                               static_cast<double>(total);
    out += fmt("%12" PRIu64 " %10" PRIu64 " %5.1f%%  %-4zu %s\n", cycles,
               instrs, pct, pc, isa::disassemble(d.code[pc]).c_str());
  }
  return out;
}

std::string folded_stacks(const DomainProfile& d) {
  // Merge every core's call tree into one, then walk it depth-first with
  // children in entry-pc order so the line set is canonical.
  CoreProfileData all;
  for (const CoreProfileData& c : d.cores) all.merge(c);
  const std::vector<PcProfile::Frame>& fr = all.frames;
  if (fr.empty()) return "";

  std::vector<std::vector<u32>> children(fr.size());
  for (u32 i = 1; i < fr.size(); ++i) children[fr[i].parent].push_back(i);
  for (auto& c : children) {
    std::sort(c.begin(), c.end(),
              [&fr](u32 a, u32 b) { return fr[a].entry_pc < fr[b].entry_pc; });
  }

  std::string out;
  std::vector<std::pair<u32, std::string>> stack;
  stack.emplace_back(0u, std::string("all"));
  while (!stack.empty()) {
    auto [i, path] = std::move(stack.back());
    stack.pop_back();
    if (fr[i].cycles > 0) {
      out += path + " " + std::to_string(fr[i].cycles) + "\n";
    }
    // Reverse order: the explicit stack pops smallest entry pc first.
    for (auto it = children[i].rbegin(); it != children[i].rend(); ++it) {
      stack.emplace_back(*it,
                         path + ";fn@" + std::to_string(fr[*it].entry_pc));
    }
  }
  return out;
}

std::string bucket_table(const DomainProfile& d) {
  std::string out =
      fmt("%-6s %12s %10s %10s %10s %10s %10s %10s %12s %14s\n", "core",
          "execute", "icache", "tcdm", "link", "barrier", "dma_wait",
          "evt_wait", "halted", "total");
  auto row = [&out](const std::string& label, const CycleBuckets& b) {
    out += fmt("%-6s %12" PRIu64 " %10" PRIu64 " %10" PRIu64 " %10" PRIu64
               " %10" PRIu64 " %10" PRIu64 " %10" PRIu64 " %12" PRIu64
               " %14" PRIu64 "\n",
               label.c_str(), b.execute, b.icache, b.tcdm, b.link_bound,
               b.barrier, b.dma_wait, b.event_wait, b.halted, b.total());
  };
  for (size_t i = 0; i < d.cores.size(); ++i) {
    row(std::to_string(i), d.cores[i].buckets());
  }
  row("all", d.buckets());
  return out;
}

namespace {

void append_core_json(std::string& out, const CoreProfileData& c) {
  const CycleBuckets b = c.buckets();
  out += "{\"cycles\":" + std::to_string(c.perf.cycles);
  out += ",\"instrs\":" + std::to_string(c.perf.instrs);
  out += ",\"busy_remaining\":" + std::to_string(c.busy_remaining);
  out += ",\"truncated_calls\":" + std::to_string(c.truncated_calls);
  out += ",\"conserved\":";
  out += c.conserved() ? "true" : "false";
  out += ",\"buckets\":{\"execute\":" + std::to_string(b.execute);
  out += ",\"icache\":" + std::to_string(b.icache);
  out += ",\"tcdm\":" + std::to_string(b.tcdm);
  out += ",\"link_bound\":" + std::to_string(b.link_bound);
  out += ",\"barrier\":" + std::to_string(b.barrier);
  out += ",\"dma_wait\":" + std::to_string(b.dma_wait);
  out += ",\"event_wait\":" + std::to_string(b.event_wait);
  out += ",\"halted\":" + std::to_string(b.halted) + "}";
  out += ",\"pcs\":[";
  bool first = true;
  for (size_t pc = 0; pc < c.pcs.size(); ++pc) {
    if (c.pcs[pc].instrs == 0 && c.pcs[pc].cycles == 0) continue;
    if (!first) out += ",";
    first = false;
    out += "[" + std::to_string(pc) + "," + std::to_string(c.pcs[pc].instrs) +
           "," + std::to_string(c.pcs[pc].cycles) + "]";
  }
  out += "],\"frames\":[";
  for (size_t i = 0; i < c.frames.size(); ++i) {
    if (i > 0) out += ",";
    out += "[" + std::to_string(c.frames[i].entry_pc) + "," +
           std::to_string(c.frames[i].parent) + "," +
           std::to_string(c.frames[i].cycles) + "]";
  }
  out += "]}";
}

}  // namespace

std::string to_json(const DomainProfile& d) {
  std::string out = "{\"name\":\"" + d.name + "\"";
  out += ",\"code_size\":" + std::to_string(d.code.size());
  out += ",\"conserved\":";
  out += d.conserved() ? "true" : "false";
  out += ",\"cores\":[";
  for (size_t i = 0; i < d.cores.size(); ++i) {
    if (i > 0) out += ",";
    append_core_json(out, d.cores[i]);
  }
  out += "]}";
  return out;
}

std::string to_json(const JobProfile& p) {
  std::string out = "{\"collected\":";
  out += p.collected ? "true" : "false";
  out += ",\"cluster\":" + to_json(p.cluster);
  if (p.has_host) out += ",\"host\":" + to_json(p.host);
  out += "}";
  return out;
}

}  // namespace ulp::profile
