// Power counter tracks for the Perfetto export.
//
// A post-pass over a completed EventTrace: the per-core run/wait spans,
// the DMA spans, the host run/sleep spans and the SPI-wire spans already
// encode each domain's instantaneous activity, so binding src/power's
// model to those span edges yields a piecewise-constant power timeline —
// one counter track per domain — without touching any hot path.
#pragma once

#include "power/pulp_power.hpp"
#include "trace/event_trace.hpp"

namespace ulp::profile {

struct PowerTimelineSpec {
  power::PulpPowerModel model;
  power::OperatingPoint op;       ///< Cluster operating point.
  u32 num_cluster_cores = 4;
  /// Memory activity (chi_mem) contributed by each concurrently running
  /// core. Spans carry no access counts, so this is the timeline's one
  /// approximation; 0 omits the memory term.
  double mem_chi_per_running_core = 0.0;
  double host_active_w = 0.0;  ///< From host::McuSpec::active_power_w.
  double host_sleep_w = 0.0;
  double link_active_w = 0.0;  ///< 0 skips the link power track.
  std::string cluster_prefix = "cluster";
  std::string host_track = "host.mcu";
  std::string link_track = "link.spi";
};

/// Appends "power.cluster" / "power.host" / "power.link" counter tracks
/// (watts) derived from the spans already recorded in `trace`. Closes any
/// still-open spans first. Tracks whose source spans are absent are
/// skipped.
void add_power_tracks(trace::EventTrace& trace, const PowerTimelineSpec& spec);

}  // namespace ulp::profile
