// Per-core cycle/instruction attribution collector.
//
// A PcProfile hangs off one core (core::Core::set_profile) and receives two
// kinds of events from the pipeline model:
//
//   on_retire(pc, instr, ra)  — an instruction retired at `pc`; jal/jalr
//                               retirements additionally drive a call-tree
//                               so the profile can emit folded stacks.
//   add_cycles(pc, n)         — `n` cycles of wall time belong to `pc`.
//
// The core lumps each instruction's full cost at a well-defined charge
// point (issue, grant, sleep entry, wake), never per busy-countdown cycle,
// so the attribution stream is identical between per-cycle reference
// stepping and the quiescence fast-forward scheduler — the property the
// profile differential tests pin down bit-for-bit.
//
// Header-only and dependency-light (isa + common) on purpose: core::Core
// stores a raw pointer to this type, and ulp_core must not depend on the
// full profile library (which links cluster and power).
#pragma once

#include <map>
#include <utility>
#include <vector>

#include "common/status.hpp"
#include "common/types.hpp"
#include "isa/isa.hpp"

namespace ulp::profile {

/// One program counter's totals (pc == instruction index).
struct PcCount {
  u64 instrs = 0;  ///< Retirements at this pc.
  u64 cycles = 0;  ///< Cycles attributed to this pc (stalls included).

  bool operator==(const PcCount&) const = default;
};

class PcProfile {
 public:
  /// Call-tree node. Frame 0 is the root (cycles outside any tracked
  /// call); children are keyed by (parent, callee entry pc).
  struct Frame {
    u32 entry_pc = 0;  ///< Callee entry (meaningless for the root).
    u32 parent = 0;    ///< Parent frame index (root: itself).
    u64 cycles = 0;    ///< Cycles attributed while this frame was current.
  };

  /// Calls nested deeper than this are counted but not descended into
  /// (runaway-recursion guard for fuzzed programs).
  static constexpr size_t kMaxStackDepth = 128;

  PcProfile() { reset(); }

  void reset() {
    pcs_.clear();
    frames_.assign(1, Frame{});
    children_.clear();
    stack_.clear();
    current_ = 0;
    truncated_calls_ = 0;
  }

  /// Instruction retirement. `ra_value` is the value of the instruction's
  /// ra register *before* execution (the jalr target).
  void on_retire(u32 pc, const isa::Instr& in, u32 ra_value) {
    ++touch(pc).instrs;
    if (in.op != isa::Opcode::kJal && in.op != isa::Opcode::kJalr) return;
    const u32 target =
        in.op == isa::Opcode::kJal
            ? static_cast<u32>(static_cast<i64>(pc) + in.imm)
            : ra_value;
    if (in.op == isa::Opcode::kJalr && !stack_.empty() &&
        target == stack_.back().ret_pc) {
      // Return: jump to the address the innermost call left behind.
      current_ = stack_.back().caller;
      stack_.pop_back();
      return;
    }
    if (in.rd == 0) return;  // plain goto, not a call
    if (stack_.size() >= kMaxStackDepth) {
      ++truncated_calls_;
      return;
    }
    stack_.push_back({pc + 1, current_});
    current_ = child_of(current_, target);
  }

  /// Attribute `n` cycles to `pc` and to the current call-tree frame.
  void add_cycles(u32 pc, u64 n) {
    touch(pc).cycles += n;
    frames_[current_].cycles += n;
  }

  [[nodiscard]] const std::vector<PcCount>& pcs() const { return pcs_; }
  [[nodiscard]] const std::vector<Frame>& frames() const { return frames_; }
  [[nodiscard]] u64 truncated_calls() const { return truncated_calls_; }

  [[nodiscard]] u64 total_cycles() const {
    u64 n = 0;
    for (const PcCount& p : pcs_) n += p.cycles;
    return n;
  }
  [[nodiscard]] u64 total_instrs() const {
    u64 n = 0;
    for (const PcCount& p : pcs_) n += p.instrs;
    return n;
  }

  /// Complete serializable state. children_ is excluded on purpose: it is
  /// a pure index of frames_ (child i sits at key {parent, entry_pc}) and
  /// set_raw_state rebuilds it, so the snapshot format never depends on
  /// std::map iteration details.
  struct RawState {
    std::vector<PcCount> pcs;
    std::vector<Frame> frames;
    std::vector<std::pair<u32, u32>> stack;  ///< (ret_pc, caller) pairs.
    u32 current = 0;
    u64 truncated_calls = 0;
  };

  [[nodiscard]] RawState raw_state() const {
    RawState s;
    s.pcs = pcs_;
    s.frames = frames_;
    s.stack.reserve(stack_.size());
    for (const CallRec& c : stack_) s.stack.emplace_back(c.ret_pc, c.caller);
    s.current = current_;
    s.truncated_calls = truncated_calls_;
    return s;
  }

  void set_raw_state(const RawState& s) {
    ULP_CHECK(!s.frames.empty() && s.current < s.frames.size(),
              "profile raw state malformed");
    pcs_ = s.pcs;
    frames_ = s.frames;
    children_.clear();
    for (u32 i = 1; i < frames_.size(); ++i) {
      children_[{frames_[i].parent, frames_[i].entry_pc}] = i;
    }
    stack_.clear();
    stack_.reserve(s.stack.size());
    for (const auto& [ret_pc, caller] : s.stack) {
      stack_.push_back({ret_pc, caller});
    }
    current_ = s.current;
    truncated_calls_ = s.truncated_calls;
  }

 private:
  struct CallRec {
    u32 ret_pc = 0;  ///< Address a matching return jalr targets.
    u32 caller = 0;  ///< Frame to restore on return.
  };

  PcCount& touch(u32 pc) {
    if (pc >= pcs_.size()) pcs_.resize(pc + 1);
    return pcs_[pc];
  }

  u32 child_of(u32 parent, u32 entry) {
    const auto [it, fresh] = children_.try_emplace({parent, entry}, 0);
    if (fresh) {
      it->second = static_cast<u32>(frames_.size());
      frames_.push_back({entry, parent, 0});
    }
    return it->second;
  }

  std::vector<PcCount> pcs_;
  std::vector<Frame> frames_;
  std::map<std::pair<u32, u32>, u32> children_;
  std::vector<CallRec> stack_;
  u32 current_ = 0;
  u64 truncated_calls_ = 0;
};

}  // namespace ulp::profile
