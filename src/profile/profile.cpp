#include "profile/profile.hpp"

#include <algorithm>

#include "common/status.hpp"

namespace ulp::profile {

CycleBuckets CycleBuckets::from_perf(const core::PerfCounters& p,
                                     u64 link_bound_cycles) {
  ULP_CHECK(p.active_cycles >=
                p.stall_mem + p.stall_icache + link_bound_cycles,
            "stall cycles exceed active cycles");
  ULP_CHECK(p.sleep_cycles == p.sleep_barrier_cycles + p.sleep_dma_cycles +
                                  p.sleep_event_cycles,
            "sleep split does not cover sleep cycles");
  ULP_CHECK(p.cycles == p.active_cycles + p.sleep_cycles + p.halted_cycles,
            "cycle counters do not partition total cycles");
  CycleBuckets b;
  b.execute =
      p.active_cycles - p.stall_mem - p.stall_icache - link_bound_cycles;
  b.icache = p.stall_icache;
  b.tcdm = p.stall_mem;
  b.link_bound = link_bound_cycles;
  b.barrier = p.sleep_barrier_cycles;
  b.dma_wait = p.sleep_dma_cycles;
  b.event_wait = p.sleep_event_cycles;
  b.halted = p.halted_cycles;
  return b;
}

CycleBuckets& CycleBuckets::operator+=(const CycleBuckets& o) {
  execute += o.execute;
  icache += o.icache;
  tcdm += o.tcdm;
  link_bound += o.link_bound;
  barrier += o.barrier;
  dma_wait += o.dma_wait;
  event_wait += o.event_wait;
  halted += o.halted;
  return *this;
}

bool CoreProfileData::conserved() const {
  u64 attributed = 0;
  for (const PcCount& p : pcs) attributed += p.cycles;
  // Instruction costs are attributed in full at issue; a run abandoned
  // mid-instruction leaves busy_remaining attributed-but-unconsumed.
  if (attributed + perf.halted_cycles != perf.cycles + busy_remaining) {
    return false;
  }
  u64 retired = 0;
  for (const PcCount& p : pcs) retired += p.instrs;
  if (retired != perf.instrs) return false;
  return buckets().total() == perf.cycles;
}

namespace {

/// Folds `src` call-tree frames into `dst`. Parents always precede their
/// children in a PcProfile's frame array, so one forward pass with an
/// index map suffices.
void merge_frames(std::vector<PcProfile::Frame>& dst,
                  const std::vector<PcProfile::Frame>& src) {
  if (src.empty()) return;
  if (dst.empty()) dst.push_back(PcProfile::Frame{});
  std::map<std::pair<u32, u32>, u32> index;  // (dst parent, entry) -> dst
  for (u32 i = 1; i < dst.size(); ++i) {
    index[{dst[i].parent, dst[i].entry_pc}] = i;
  }
  std::vector<u32> remap(src.size(), 0);
  dst[0].cycles += src[0].cycles;
  for (u32 i = 1; i < src.size(); ++i) {
    const u32 parent = remap[src[i].parent];
    const auto [it, fresh] =
        index.try_emplace({parent, src[i].entry_pc}, 0);
    if (fresh) {
      it->second = static_cast<u32>(dst.size());
      dst.push_back({src[i].entry_pc, parent, 0});
    }
    remap[i] = it->second;
    dst[it->second].cycles += src[i].cycles;
  }
}

void merge_pcs(std::vector<PcCount>& dst, const std::vector<PcCount>& src) {
  if (src.size() > dst.size()) dst.resize(src.size());
  for (size_t i = 0; i < src.size(); ++i) {
    dst[i].instrs += src[i].instrs;
    dst[i].cycles += src[i].cycles;
  }
}

}  // namespace

void CoreProfileData::merge(const CoreProfileData& o) {
  perf += o.perf;
  link_bound_cycles += o.link_bound_cycles;
  busy_remaining += o.busy_remaining;
  truncated_calls += o.truncated_calls;
  merge_pcs(pcs, o.pcs);
  merge_frames(frames, o.frames);
}

bool DomainProfile::conserved() const {
  return std::all_of(cores.begin(), cores.end(),
                     [](const CoreProfileData& c) { return c.conserved(); });
}

CycleBuckets DomainProfile::buckets() const {
  CycleBuckets b;
  for (const CoreProfileData& c : cores) b += c.buckets();
  return b;
}

void DomainProfile::merge(const DomainProfile& o) {
  if (code.empty()) code = o.code;
  if (cores.size() < o.cores.size()) cores.resize(o.cores.size());
  for (size_t i = 0; i < o.cores.size(); ++i) cores[i].merge(o.cores[i]);
}

void ClusterProfiler::attach(cluster::Cluster& cl) {
  detach();
  cl_ = &cl;
  const u32 n = cl.params().num_cores;
  collectors_.clear();
  for (u32 i = 0; i < n; ++i) {
    collectors_.push_back(std::make_unique<PcProfile>());
    cl.core(i).set_profile(collectors_[i].get());
  }
}

void ClusterProfiler::capture() {
  ULP_CHECK(cl_ != nullptr, "capture() before attach()");
  data_.code = cl_->program().code;
  const u32 n = cl_->params().num_cores;
  if (data_.cores.size() < n) data_.cores.resize(n);
  for (u32 i = 0; i < n; ++i) {
    const core::Core& c = cl_->core(i);
    CoreProfileData run;
    run.perf = c.perf();
    run.busy_remaining = c.busy_remaining();
    run.pcs = collectors_[i]->pcs();
    run.frames = collectors_[i]->frames();
    run.truncated_calls = collectors_[i]->truncated_calls();
    data_.cores[i].merge(run);
  }
}

void ClusterProfiler::detach() {
  if (cl_ == nullptr) return;
  for (u32 i = 0; i < cl_->params().num_cores; ++i) {
    if (cl_->core(i).profile() == collectors_[i].get()) {
      cl_->core(i).set_profile(nullptr);
    }
  }
  cl_ = nullptr;
}

void CoreProfiler::attach(core::Core& core) {
  detach();
  core_ = &core;
  collector_ = std::make_unique<PcProfile>();
  core.set_profile(collector_.get());
}

void CoreProfiler::capture(const isa::Program& program,
                           u64 link_bound_cycles) {
  ULP_CHECK(core_ != nullptr, "capture() before attach()");
  data_.code = program.code;
  if (data_.cores.empty()) data_.cores.resize(1);
  CoreProfileData run;
  run.perf = core_->perf();
  run.link_bound_cycles = link_bound_cycles;
  run.busy_remaining = core_->busy_remaining();
  run.pcs = collector_->pcs();
  run.frames = collector_->frames();
  run.truncated_calls = collector_->truncated_calls();
  data_.cores[0].merge(run);
}

void CoreProfiler::detach() {
  if (core_ == nullptr) return;
  if (core_->profile() == collector_.get()) core_->set_profile(nullptr);
  core_ = nullptr;
}

ClusterProfiler& ProfileBook::cluster(const std::string& label) {
  auto& slot = clusters_[label];
  if (slot == nullptr) slot = std::make_unique<ClusterProfiler>();
  return *slot;
}

}  // namespace ulp::profile
