// Render captured profiles: annotated disassembly, folded stacks for
// flamegraph tools, a stall-bucket table, and a deterministic JSON form
// (integer-only, index-ordered) that doubles as the byte-identity oracle
// in the differential tests.
#pragma once

#include <string>

#include "profile/profile.hpp"

namespace ulp::profile {

/// Per-instruction listing with cycle/instruction counts summed across the
/// domain's cores. `max_lines` > 0 keeps only the hottest lines (by
/// cycles), re-sorted back into pc order.
[[nodiscard]] std::string annotated_disassembly(const DomainProfile& d,
                                                size_t max_lines = 0);

/// Brendan-Gregg folded-stack lines ("all;fn@4;fn@17 1234"), one per
/// call-tree path with nonzero cycles, merged across cores and sorted by
/// path. Pipe through flamegraph.pl unchanged.
[[nodiscard]] std::string folded_stacks(const DomainProfile& d);

/// Stall-attribution table: one row per core plus a total row; every
/// cycle in exactly one column.
[[nodiscard]] std::string bucket_table(const DomainProfile& d);

/// Deterministic JSON (integers only; fixed key order; index-ordered
/// arrays). Byte-identical across stepping modes and worker counts.
[[nodiscard]] std::string to_json(const DomainProfile& d);
[[nodiscard]] std::string to_json(const JobProfile& p);

}  // namespace ulp::profile
