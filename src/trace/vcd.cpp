#include "trace/vcd.hpp"

#include <algorithm>
#include <map>

namespace ulp::trace {

std::string VcdWriter::make_id(u32 index) {
  // Printable identifier alphabet per the VCD spec: '!' (33) .. '~' (126).
  std::string id;
  do {
    id.push_back(static_cast<char>('!' + index % 94));
    index /= 94;
  } while (index > 0);
  return id;
}

VcdWriter::SignalId VcdWriter::add_signal(const std::string& scope,
                                          const std::string& name,
                                          u32 width) {
  ULP_CHECK(!dumping_, "add_signal after begin_dump");
  ULP_CHECK(width >= 1 && width <= 64, "VCD signal width out of range");
  Signal s;
  s.scope = scope;
  s.name = name;
  s.width = width;
  s.id = make_id(static_cast<u32>(signals_.size()));
  signals_.push_back(std::move(s));
  return static_cast<SignalId>(signals_.size() - 1);
}

void VcdWriter::begin_dump() {
  ULP_CHECK(!dumping_, "begin_dump called twice");
  std::ostream& out = *out_;
  out << "$date ulp-hetsim $end\n";
  out << "$version ulp-hetsim cluster tracer $end\n";
  out << "$timescale 1ns $end\n";

  // Group signals by scope; emit nested $scope blocks for dotted paths.
  std::map<std::string, std::vector<const Signal*>> by_scope;
  for (const Signal& s : signals_) by_scope[s.scope].push_back(&s);
  for (const auto& [scope, sigs] : by_scope) {
    // Open nested scopes.
    size_t start = 0;
    int depth = 0;
    while (start <= scope.size()) {
      const size_t dot = scope.find('.', start);
      const std::string part =
          scope.substr(start, dot == std::string::npos ? std::string::npos
                                                       : dot - start);
      if (!part.empty()) {
        out << "$scope module " << part << " $end\n";
        ++depth;
      }
      if (dot == std::string::npos) break;
      start = dot + 1;
    }
    for (const Signal* s : sigs) {
      out << "$var wire " << s->width << ' ' << s->id << ' ' << s->name
          << " $end\n";
    }
    for (int i = 0; i < depth; ++i) out << "$upscope $end\n";
  }
  out << "$enddefinitions $end\n";
  dumping_ = true;
}

void VcdWriter::set(SignalId id, u64 value) {
  ULP_CHECK(id < signals_.size(), "unknown VCD signal");
  Signal& s = signals_[id];
  if (s.width < 64) {
    value &= (u64{1} << s.width) - 1;
  }
  s.pending = value;
  s.dirty = s.pending != s.current || !s.initialised;
}

void VcdWriter::emit_value(const Signal& s, u64 value) {
  std::ostream& out = *out_;
  if (s.width == 1) {
    out << (value ? '1' : '0') << s.id << '\n';
    return;
  }
  out << 'b';
  bool started = false;
  for (int bit = static_cast<int>(s.width) - 1; bit >= 0; --bit) {
    const bool v = (value >> bit) & 1;
    if (v) started = true;
    if (started || bit == 0) out << (v ? '1' : '0');
  }
  out << ' ' << s.id << '\n';
}

void VcdWriter::tick(u64 time) {
  ULP_CHECK(dumping_, "tick before begin_dump");
  ULP_CHECK(!time_emitted_ || time > last_time_,
            "VCD time must be strictly increasing");
  bool any = false;
  for (const Signal& s : signals_) {
    if (s.dirty) any = true;
  }
  if (!any) return;
  *out_ << '#' << time << '\n';
  time_emitted_ = true;
  last_time_ = time;
  for (Signal& s : signals_) {
    if (!s.dirty) continue;
    emit_value(s, s.pending);
    s.current = s.pending;
    s.dirty = false;
    s.initialised = true;
  }
}

}  // namespace ulp::trace
