// Value Change Dump (IEEE 1364) writer.
//
// The FPGA prototype of the paper is observable with a logic analyser /
// waveform viewer; this gives the simulator the same property: cluster
// activity (core states, program counters, TCDM bank usage, DMA occupancy,
// barrier/EOC lines) dumps to a .vcd file loadable in GTKWave & friends.
//
// Usage:
//   VcdWriter vcd(stream);
//   auto sig = vcd.add_signal("cluster.core0", "pc", 32);
//   vcd.begin_dump();
//   vcd.set(sig, value);   // any number of signals
//   vcd.tick(cycle);       // emits the changes at #cycle
#pragma once

#include <ostream>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "common/types.hpp"

namespace ulp::trace {

class VcdWriter {
 public:
  using SignalId = u32;

  explicit VcdWriter(std::ostream& out) : out_(&out) {}

  /// Declare a signal inside `scope` (dot-separated path). Must be called
  /// before begin_dump(). Width in bits (1..64).
  SignalId add_signal(const std::string& scope, const std::string& name,
                      u32 width);

  /// Emit the VCD header (timescale = one cluster cycle = 1 ns nominal).
  void begin_dump();

  /// Stage a new value for a signal (latched on the next tick()).
  void set(SignalId id, u64 value);

  /// Advance to `time` and emit all staged changes.
  void tick(u64 time);

  [[nodiscard]] bool dumping() const { return dumping_; }
  [[nodiscard]] size_t num_signals() const { return signals_.size(); }

 private:
  struct Signal {
    std::string scope;
    std::string name;
    std::string id;  ///< VCD short identifier.
    u32 width = 1;
    u64 current = 0;
    u64 pending = 0;
    bool dirty = false;
    bool initialised = false;
  };

  [[nodiscard]] static std::string make_id(u32 index);
  void emit_value(const Signal& s, u64 value);

  std::ostream* out_;
  std::vector<Signal> signals_;
  bool dumping_ = false;
  bool time_emitted_ = false;
  u64 last_time_ = 0;
};

}  // namespace ulp::trace
