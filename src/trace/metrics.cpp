#include "trace/metrics.hpp"

#include <bit>
#include <sstream>

namespace ulp::trace {

void Histogram::record(u64 sample) {
  const size_t bucket = sample == 0 ? 0 : std::bit_width(sample);
  ++buckets_[bucket];
  ++count_;
  sum_ += sample;
  if (count_ == 1 || sample < min_) min_ = sample;
  if (sample > max_) max_ = sample;
}

u64 Histogram::approx_quantile(double q) const {
  if (count_ == 0) return 0;
  const double target = q * static_cast<double>(count_);
  u64 seen = 0;
  for (size_t i = 0; i < kBuckets; ++i) {
    seen += buckets_[i];
    if (static_cast<double>(seen) >= target) {
      if (i == 0) return 0;
      if (i >= 64) return max_;
      return (u64{1} << i) - 1;  // bucket upper bound
    }
  }
  return max_;
}

size_t Histogram::significant_buckets() const {
  for (size_t i = kBuckets; i > 0; --i) {
    if (buckets_[i - 1] != 0) return i;
  }
  return 0;
}

Counter& MetricsRegistry::counter(std::string_view name) {
  auto it = counters_.find(std::string(name));
  if (it == counters_.end()) {
    check_unique(name, "counter");
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  auto it = gauges_.find(std::string(name));
  if (it == gauges_.end()) {
    check_unique(name, "gauge");
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Histogram& MetricsRegistry::histogram(std::string_view name) {
  auto it = histograms_.find(std::string(name));
  if (it == histograms_.end()) {
    check_unique(name, "histogram");
    it = histograms_.emplace(std::string(name), std::make_unique<Histogram>())
             .first;
  }
  return *it->second;
}

void MetricsRegistry::check_unique(std::string_view name,
                                   const char* kind) const {
  const std::string key(name);
  const bool taken = counters_.count(key) + gauges_.count(key) +
                         histograms_.count(key) >
                     0;
  ULP_CHECK(!taken, "metric '" + key + "' already registered as another " +
                        "kind (wanted " + kind + ")");
}

std::string MetricsRegistry::format() const {
  std::ostringstream os;
  for (const auto& [name, c] : counters_) {
    os << "  " << name << ": " << c->value() << "\n";
  }
  for (const auto& [name, g] : gauges_) {
    os << "  " << name << ": " << g->value() << "\n";
  }
  for (const auto& [name, h] : histograms_) {
    os << "  " << name << ": n=" << h->count() << " sum=" << h->sum()
       << " min=" << h->min() << " mean=" << h->mean() << " max=" << h->max()
       << " p50~" << h->approx_quantile(0.5) << " p99~"
       << h->approx_quantile(0.99) << "\n";
  }
  return os.str();
}

}  // namespace ulp::trace
