// Exporters for EventTrace + MetricsRegistry.
//
// write_chrome_trace() renders the Chrome trace-event JSON format — the
// `{"traceEvents": [...]}` object — loadable in ui.perfetto.dev and
// chrome://tracing. Every track becomes one "thread" of a single
// "ulp-hetsim" process, named and ordered through metadata events;
// spans become "X" (complete) events, instants "i", counter samples "C".
// Timestamps are microseconds of simulated real time, converted per track
// from its tick rate, so host-cycle and cluster-cycle tracks align.
//
// profile_report() is the human-readable digest: per track, the top span
// names by total time with counts and share of the track's busy time,
// followed by the metrics registry dump (report.hpp style).
#pragma once

#include <ostream>
#include <string>

#include "trace/event_trace.hpp"
#include "trace/metrics.hpp"

namespace ulp::trace {

/// JSON string-literal body escaping (quotes, backslashes, control chars).
[[nodiscard]] std::string json_escape(std::string_view s);

/// Writes the trace as Chrome trace-event JSON. Open spans are closed
/// first. Returns an error Status if the stream fails.
Status write_chrome_trace(EventTrace& trace, std::ostream& out);

/// Convenience: export to a file path.
Status write_chrome_trace_file(EventTrace& trace, const std::string& path);

/// "Top phases by time" profile: per-track span aggregation plus the
/// metrics dump. `metrics` may be null.
[[nodiscard]] std::string profile_report(EventTrace& trace,
                                         const MetricsRegistry* metrics);

/// The registry as deterministic JSON: keys in map (name) order, doubles
/// rendered %.17g, histograms with count/sum/min/max/mean/quantiles and
/// their significant log2 buckets. Matches the CSV path's determinism
/// contract — byte-identical for identical metric contents.
[[nodiscard]] std::string metrics_to_json(const MetricsRegistry& metrics);

/// Convenience: write metrics_to_json() to a file path.
Status write_metrics_json_file(const MetricsRegistry& metrics,
                               const std::string& path);

}  // namespace ulp::trace
