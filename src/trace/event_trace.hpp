// Span-based event trace of a simulated run.
//
// Every component that does timed work — the host MCU, the SPI wire, the
// cluster cores, the DMA, the offload runtime — records *spans* (nested
// begin/end intervals), *instants* (zero-width markers) and *counter
// samples* onto its own track. Tracks carry their clock's tick rate, so a
// host track stamped in 16 MHz MCU cycles and a cluster track stamped in
// near-threshold PULP cycles line up on one real-time axis when exported
// (trace_export.hpp renders Chrome/Perfetto trace-event JSON and a
// human-readable profile).
//
// The recorder is deliberately dumb and allocation-light: events append to
// a flat vector, span nesting is a per-track stack of indices. Components
// keep a `Sinks` struct (two raw pointers); the hot-path cost with no
// trace attached is a single null check.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "common/status.hpp"
#include "common/types.hpp"

namespace ulp::trace {

class EventTrace;
class MetricsRegistry;

/// Optional observers a component records into. Both pointers may be null
/// (then every hook is a no-op); components test `if (sinks_)` once per
/// event site.
struct Sinks {
  EventTrace* events = nullptr;
  MetricsRegistry* metrics = nullptr;

  [[nodiscard]] explicit operator bool() const {
    return events != nullptr || metrics != nullptr;
  }
};

class EventTrace {
 public:
  using TrackId = u32;

  enum class EventKind : u8 {
    kSpan,     ///< Closed begin/end interval.
    kInstant,  ///< Zero-width marker.
    kCounter,  ///< Sampled numeric value.
  };

  /// One numeric annotation on an event ("bytes", "addr", ...).
  struct Arg {
    std::string key;
    double value = 0;
  };

  struct Track {
    std::string name;
    double ticks_per_second = 1e9;  ///< Nominal: 1 tick = 1 ns.
    int sort_index = 0;             ///< Display order hint (ascending).
  };

  struct Event {
    EventKind kind = EventKind::kSpan;
    TrackId track = 0;
    std::string name;
    u64 begin_tick = 0;
    u64 end_tick = 0;   ///< Spans only; == begin_tick until closed.
    u32 depth = 0;      ///< Span nesting depth at begin time.
    bool open = false;  ///< Span begun but not yet ended.
    double value = 0;   ///< Counters only.
    std::vector<Arg> args;

    [[nodiscard]] u64 duration_ticks() const { return end_tick - begin_tick; }
  };

  /// Registers a track. `ticks_per_second` converts this track's tick
  /// stamps to real time at export (pass the clock frequency in Hz).
  TrackId add_track(std::string name, double ticks_per_second = 1e9,
                    int sort_index = 0);

  /// Bounds the trace to roughly `limit` events (0 = unbounded, the
  /// default). When the cap trips, the oldest closed events are evicted —
  /// open spans always survive — down to 3/4 of the cap, and
  /// dropped_events() counts the evictions. Long fuzz/campaign runs keep a
  /// sliding window of recent activity instead of growing without bound.
  void set_event_limit(size_t limit);
  [[nodiscard]] size_t event_limit() const { return limit_; }
  [[nodiscard]] u64 dropped_events() const { return dropped_events_; }

  /// Opens a nested span on `track` at `tick`. Spans on one track must be
  /// closed in LIFO order.
  void begin(TrackId track, std::string_view name, u64 tick,
             std::vector<Arg> args = {});

  /// Closes the innermost open span on `track` at `tick`.
  void end(TrackId track, u64 tick);

  /// A span whose extent is known up front (analytic timing models).
  void complete(TrackId track, std::string_view name, u64 begin_tick,
                u64 duration_ticks, std::vector<Arg> args = {});

  void instant(TrackId track, std::string_view name, u64 tick,
               std::vector<Arg> args = {});

  void counter(TrackId track, std::string_view name, u64 tick, double value);

  /// Closes every span still open (at its own begin tick if nothing newer
  /// was recorded on the track). Exporters call this implicitly.
  void close_open_spans();

  /// Same, but for one track only — lets a component that restarts its
  /// cycle count tidy its own tracks without touching others' in-flight
  /// spans.
  void close_open_spans(TrackId track);

  [[nodiscard]] const std::vector<Track>& tracks() const { return tracks_; }
  [[nodiscard]] const std::vector<Event>& events() const { return events_; }
  [[nodiscard]] size_t num_events() const { return events_.size(); }
  [[nodiscard]] bool empty() const { return events_.empty(); }

  /// Test/report helper: all closed spans named `name` on `track`.
  [[nodiscard]] std::vector<const Event*> spans_named(
      TrackId track, std::string_view name) const;

  /// Sum of closed-span durations named `name` on `track`, in ticks.
  [[nodiscard]] u64 total_span_ticks(TrackId track,
                                     std::string_view name) const;

 private:
  void check_track(TrackId track) const;
  /// Ring-buffer eviction once the event cap trips (see set_event_limit).
  void maybe_compact();

  std::vector<Track> tracks_;
  std::vector<Event> events_;
  std::vector<std::vector<size_t>> open_;  ///< Per-track open-span stack.
  std::vector<u64> last_tick_;             ///< Per-track newest timestamp.
  size_t limit_ = 0;                       ///< 0 = unbounded.
  u64 dropped_events_ = 0;
};

}  // namespace ulp::trace
