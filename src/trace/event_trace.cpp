#include "trace/event_trace.hpp"

#include <algorithm>

namespace ulp::trace {

EventTrace::TrackId EventTrace::add_track(std::string name,
                                          double ticks_per_second,
                                          int sort_index) {
  ULP_CHECK(!name.empty(), "trace track needs a name");
  ULP_CHECK(ticks_per_second > 0, "track tick rate must be positive");
  tracks_.push_back({std::move(name), ticks_per_second, sort_index});
  open_.emplace_back();
  last_tick_.push_back(0);
  return static_cast<TrackId>(tracks_.size() - 1);
}

void EventTrace::check_track(TrackId track) const {
  ULP_CHECK(track < tracks_.size(), "unknown trace track");
}

void EventTrace::begin(TrackId track, std::string_view name, u64 tick,
                       std::vector<Arg> args) {
  check_track(track);
  Event e;
  e.kind = EventKind::kSpan;
  e.track = track;
  e.name = std::string(name);
  e.begin_tick = tick;
  e.end_tick = tick;
  e.depth = static_cast<u32>(open_[track].size());
  e.open = true;
  e.args = std::move(args);
  open_[track].push_back(events_.size());
  events_.push_back(std::move(e));
  last_tick_[track] = std::max(last_tick_[track], tick);
}

void EventTrace::end(TrackId track, u64 tick) {
  check_track(track);
  ULP_CHECK(!open_[track].empty(), "span end without a matching begin");
  Event& e = events_[open_[track].back()];
  open_[track].pop_back();
  ULP_CHECK(tick >= e.begin_tick, "span ends before it begins");
  e.end_tick = tick;
  e.open = false;
  last_tick_[track] = std::max(last_tick_[track], tick);
}

void EventTrace::complete(TrackId track, std::string_view name,
                          u64 begin_tick, u64 duration_ticks,
                          std::vector<Arg> args) {
  check_track(track);
  Event e;
  e.kind = EventKind::kSpan;
  e.track = track;
  e.name = std::string(name);
  e.begin_tick = begin_tick;
  e.end_tick = begin_tick + duration_ticks;
  e.depth = static_cast<u32>(open_[track].size());
  e.args = std::move(args);
  events_.push_back(std::move(e));
  last_tick_[track] = std::max(last_tick_[track], begin_tick + duration_ticks);
}

void EventTrace::instant(TrackId track, std::string_view name, u64 tick,
                         std::vector<Arg> args) {
  check_track(track);
  Event e;
  e.kind = EventKind::kInstant;
  e.track = track;
  e.name = std::string(name);
  e.begin_tick = tick;
  e.end_tick = tick;
  e.args = std::move(args);
  events_.push_back(std::move(e));
  last_tick_[track] = std::max(last_tick_[track], tick);
}

void EventTrace::counter(TrackId track, std::string_view name, u64 tick,
                         double value) {
  check_track(track);
  Event e;
  e.kind = EventKind::kCounter;
  e.track = track;
  e.name = std::string(name);
  e.begin_tick = tick;
  e.end_tick = tick;
  e.value = value;
  events_.push_back(std::move(e));
  last_tick_[track] = std::max(last_tick_[track], tick);
}

void EventTrace::close_open_spans() {
  for (TrackId t = 0; t < tracks_.size(); ++t) close_open_spans(t);
}

void EventTrace::close_open_spans(TrackId track) {
  check_track(track);
  while (!open_[track].empty()) {
    Event& e = events_[open_[track].back()];
    open_[track].pop_back();
    e.end_tick = std::max(e.begin_tick, last_tick_[track]);
    e.open = false;
  }
}

std::vector<const EventTrace::Event*> EventTrace::spans_named(
    TrackId track, std::string_view name) const {
  std::vector<const Event*> out;
  for (const Event& e : events_) {
    if (e.kind == EventKind::kSpan && e.track == track && !e.open &&
        e.name == name) {
      out.push_back(&e);
    }
  }
  return out;
}

u64 EventTrace::total_span_ticks(TrackId track, std::string_view name) const {
  u64 total = 0;
  for (const Event* e : spans_named(track, name)) {
    total += e->duration_ticks();
  }
  return total;
}

}  // namespace ulp::trace
