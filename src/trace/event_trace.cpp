#include "trace/event_trace.hpp"

#include <algorithm>

namespace ulp::trace {

EventTrace::TrackId EventTrace::add_track(std::string name,
                                          double ticks_per_second,
                                          int sort_index) {
  ULP_CHECK(!name.empty(), "trace track needs a name");
  ULP_CHECK(ticks_per_second > 0, "track tick rate must be positive");
  tracks_.push_back({std::move(name), ticks_per_second, sort_index});
  open_.emplace_back();
  last_tick_.push_back(0);
  return static_cast<TrackId>(tracks_.size() - 1);
}

void EventTrace::check_track(TrackId track) const {
  ULP_CHECK(track < tracks_.size(), "unknown trace track");
}

void EventTrace::begin(TrackId track, std::string_view name, u64 tick,
                       std::vector<Arg> args) {
  check_track(track);
  Event e;
  e.kind = EventKind::kSpan;
  e.track = track;
  e.name = std::string(name);
  e.begin_tick = tick;
  e.end_tick = tick;
  e.depth = static_cast<u32>(open_[track].size());
  e.open = true;
  e.args = std::move(args);
  open_[track].push_back(events_.size());
  events_.push_back(std::move(e));
  last_tick_[track] = std::max(last_tick_[track], tick);
  maybe_compact();
}

void EventTrace::end(TrackId track, u64 tick) {
  check_track(track);
  ULP_CHECK(!open_[track].empty(), "span end without a matching begin");
  Event& e = events_[open_[track].back()];
  open_[track].pop_back();
  ULP_CHECK(tick >= e.begin_tick, "span ends before it begins");
  e.end_tick = tick;
  e.open = false;
  last_tick_[track] = std::max(last_tick_[track], tick);
}

void EventTrace::complete(TrackId track, std::string_view name,
                          u64 begin_tick, u64 duration_ticks,
                          std::vector<Arg> args) {
  check_track(track);
  Event e;
  e.kind = EventKind::kSpan;
  e.track = track;
  e.name = std::string(name);
  e.begin_tick = begin_tick;
  e.end_tick = begin_tick + duration_ticks;
  e.depth = static_cast<u32>(open_[track].size());
  e.args = std::move(args);
  events_.push_back(std::move(e));
  last_tick_[track] = std::max(last_tick_[track], begin_tick + duration_ticks);
  maybe_compact();
}

void EventTrace::instant(TrackId track, std::string_view name, u64 tick,
                         std::vector<Arg> args) {
  check_track(track);
  Event e;
  e.kind = EventKind::kInstant;
  e.track = track;
  e.name = std::string(name);
  e.begin_tick = tick;
  e.end_tick = tick;
  e.args = std::move(args);
  events_.push_back(std::move(e));
  last_tick_[track] = std::max(last_tick_[track], tick);
  maybe_compact();
}

void EventTrace::counter(TrackId track, std::string_view name, u64 tick,
                         double value) {
  check_track(track);
  Event e;
  e.kind = EventKind::kCounter;
  e.track = track;
  e.name = std::string(name);
  e.begin_tick = tick;
  e.end_tick = tick;
  e.value = value;
  events_.push_back(std::move(e));
  last_tick_[track] = std::max(last_tick_[track], tick);
  maybe_compact();
}

void EventTrace::set_event_limit(size_t limit) {
  ULP_CHECK(limit == 0 || limit >= 16,
            "trace event limit must be 0 (unbounded) or at least 16");
  limit_ = limit;
  maybe_compact();
}

void EventTrace::maybe_compact() {
  if (limit_ == 0 || events_.size() <= limit_) return;
  // Evict down to 3/4 of the cap so eviction is amortised, oldest closed
  // events first. Open spans must survive: their indices live in the
  // per-track stacks and their ends are still to come.
  const size_t keep_target = limit_ - limit_ / 4;
  const size_t to_drop = events_.size() - keep_target;
  std::vector<u8> is_open(events_.size(), 0);
  for (const std::vector<size_t>& stack : open_) {
    for (const size_t idx : stack) is_open[idx] = 1;
  }
  std::vector<Event> kept;
  kept.reserve(events_.size() - to_drop);
  std::vector<size_t> remap(events_.size(), 0);
  size_t dropped = 0;
  for (size_t i = 0; i < events_.size(); ++i) {
    if (is_open[i] == 0 && dropped < to_drop) {
      ++dropped;
      continue;
    }
    remap[i] = kept.size();
    kept.push_back(std::move(events_[i]));
  }
  events_ = std::move(kept);
  for (std::vector<size_t>& stack : open_) {
    for (size_t& idx : stack) idx = remap[idx];
  }
  dropped_events_ += dropped;
}

void EventTrace::close_open_spans() {
  for (TrackId t = 0; t < tracks_.size(); ++t) close_open_spans(t);
}

void EventTrace::close_open_spans(TrackId track) {
  check_track(track);
  while (!open_[track].empty()) {
    Event& e = events_[open_[track].back()];
    open_[track].pop_back();
    e.end_tick = std::max(e.begin_tick, last_tick_[track]);
    e.open = false;
  }
}

std::vector<const EventTrace::Event*> EventTrace::spans_named(
    TrackId track, std::string_view name) const {
  std::vector<const Event*> out;
  for (const Event& e : events_) {
    if (e.kind == EventKind::kSpan && e.track == track && !e.open &&
        e.name == name) {
      out.push_back(&e);
    }
  }
  return out;
}

u64 EventTrace::total_span_ticks(TrackId track, std::string_view name) const {
  u64 total = 0;
  for (const Event* e : spans_named(track, name)) {
    total += e->duration_ticks();
  }
  return total;
}

}  // namespace ulp::trace
