#include "trace/cluster_tracer.hpp"

namespace ulp::trace {

namespace {
u64 core_state(const core::Core& c) {
  if (c.halted()) return 0;
  if (c.sleeping()) return 2;
  return 1;
}
}  // namespace

ClusterTracer::ClusterTracer(cluster::Cluster& cl, std::ostream& out)
    : cl_(&cl), vcd_(out) {
  const u32 n = cl.params().num_cores;
  for (u32 i = 0; i < n; ++i) {
    const std::string scope = "cluster.core" + std::to_string(i);
    core_state_.push_back(vcd_.add_signal(scope, "state", 2));
    core_pc_.push_back(vcd_.add_signal(scope, "pc", 32));
  }
  tcdm_busy_ = vcd_.add_signal("cluster.tcdm", "bank_busy",
                               std::min(cl.params().tcdm_banks, 32u));
  dma_outstanding_ = vcd_.add_signal("cluster.dma", "outstanding", 4);
  eoc_ = vcd_.add_signal("cluster", "eoc", 1);
  barriers_ = vcd_.add_signal("cluster", "barriers", 16);
  vcd_.begin_dump();
}

void ClusterTracer::sample() {
  const u32 n = cl_->params().num_cores;
  for (u32 i = 0; i < n; ++i) {
    core::Core& c = cl_->core(i);
    vcd_.set(core_state_[i], core_state(c));
    vcd_.set(core_pc_[i], c.pc());
  }
  vcd_.set(tcdm_busy_, cl_->tcdm().busy_mask());
  vcd_.set(dma_outstanding_, cl_->dma().outstanding());
  vcd_.set(eoc_, cl_->events().eoc() ? 1 : 0);
  vcd_.set(barriers_, cl_->events().barriers_completed());
  vcd_.tick(cl_->cycles());
}

u64 ClusterTracer::run_traced(u64 max_cycles) {
  while (!cl_->all_halted()) {
    ULP_CHECK(cl_->cycles() < max_cycles, "traced run exceeded cycle budget");
    cl_->step();
    sample();
  }
  while (!cl_->dma().idle()) {
    cl_->step();
    sample();
  }
  return cl_->cycles();
}

}  // namespace ulp::trace
