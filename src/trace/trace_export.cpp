#include "trace/trace_export.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <iomanip>
#include <map>
#include <sstream>

namespace ulp::trace {

namespace {

/// Microseconds of simulated real time for `tick` on `track`.
double ticks_to_us(const EventTrace::Track& track, u64 tick) {
  return static_cast<double>(tick) / track.ticks_per_second * 1e6;
}

void write_args(std::ostream& os, const std::vector<EventTrace::Arg>& args) {
  os << "\"args\":{";
  for (size_t i = 0; i < args.size(); ++i) {
    if (i > 0) os << ',';
    os << '"' << json_escape(args[i].key) << "\":" << args[i].value;
  }
  os << '}';
}

}  // namespace

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

Status write_chrome_trace(EventTrace& trace, std::ostream& out) {
  trace.close_open_spans();
  std::ostringstream os;
  os << std::setprecision(15);
  os << "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[";
  bool first = true;
  auto sep = [&] {
    if (!first) os << ",";
    os << "\n";
    first = false;
  };

  sep();
  os << R"({"ph":"M","pid":1,"tid":0,"name":"process_name",)"
     << R"("args":{"name":"ulp-hetsim"}})";

  const auto& tracks = trace.tracks();
  for (size_t t = 0; t < tracks.size(); ++t) {
    sep();
    os << R"({"ph":"M","pid":1,"tid":)" << t
       << R"(,"name":"thread_name","args":{"name":")"
       << json_escape(tracks[t].name) << "\"}}";
    sep();
    os << R"({"ph":"M","pid":1,"tid":)" << t
       << R"(,"name":"thread_sort_index","args":{"sort_index":)"
       << tracks[t].sort_index << "}}";
  }

  for (const EventTrace::Event& e : trace.events()) {
    const EventTrace::Track& track = tracks[e.track];
    const double ts = ticks_to_us(track, e.begin_tick);
    sep();
    switch (e.kind) {
      case EventTrace::EventKind::kSpan: {
        const double dur =
            ticks_to_us(track, e.end_tick) - ticks_to_us(track, e.begin_tick);
        os << R"({"ph":"X","pid":1,"tid":)" << e.track << ",\"name\":\""
           << json_escape(e.name) << "\",\"ts\":" << ts << ",\"dur\":" << dur
           << ",";
        write_args(os, e.args);
        os << "}";
        break;
      }
      case EventTrace::EventKind::kInstant: {
        os << R"({"ph":"i","pid":1,"tid":)" << e.track << ",\"name\":\""
           << json_escape(e.name) << "\",\"ts\":" << ts << ",\"s\":\"t\",";
        write_args(os, e.args);
        os << "}";
        break;
      }
      case EventTrace::EventKind::kCounter: {
        os << R"({"ph":"C","pid":1,"tid":)" << e.track << ",\"name\":\""
           << json_escape(e.name) << "\",\"ts\":" << ts
           << ",\"args\":{\"value\":" << e.value << "}}";
        break;
      }
    }
  }
  os << "\n]}\n";

  out << os.str();
  out.flush();
  if (!out.good()) return Status::Error("trace export: stream write failed");
  return {};
}

Status write_chrome_trace_file(EventTrace& trace, const std::string& path) {
  std::ofstream out(path);
  if (!out.good()) {
    return Status::Error("trace export: cannot open " + path);
  }
  return write_chrome_trace(trace, out);
}

std::string profile_report(EventTrace& trace, const MetricsRegistry* metrics) {
  trace.close_open_spans();
  std::ostringstream os;
  os << "=== profile: top phases by time ===\n";

  struct Agg {
    u64 ticks = 0;
    u64 count = 0;
  };
  const auto& tracks = trace.tracks();
  for (size_t t = 0; t < tracks.size(); ++t) {
    std::map<std::string, Agg> by_name;
    u64 busy_ticks = 0;  // depth-0 only, so nesting is not double-counted
    for (const EventTrace::Event& e : trace.events()) {
      if (e.kind != EventTrace::EventKind::kSpan || e.track != t) continue;
      Agg& a = by_name[e.name];
      a.ticks += e.duration_ticks();
      ++a.count;
      if (e.depth == 0) busy_ticks += e.duration_ticks();
    }
    if (by_name.empty()) continue;

    std::vector<std::pair<std::string, Agg>> rows(by_name.begin(),
                                                  by_name.end());
    std::sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
      return a.second.ticks > b.second.ticks;
    });

    os << tracks[t].name << " (busy "
       << ticks_to_us(tracks[t], busy_ticks) / 1e3 << " ms):\n";
    const size_t top = std::min<size_t>(rows.size(), 10);
    for (size_t i = 0; i < top; ++i) {
      const auto& [name, a] = rows[i];
      const double share = busy_ticks == 0 ? 0.0
                                           : 100.0 *
                                                 static_cast<double>(a.ticks) /
                                                 static_cast<double>(busy_ticks);
      char line[160];
      std::snprintf(line, sizeof line,
                    "  %-28s %12.3f us  x%-7llu %5.1f%%\n", name.c_str(),
                    ticks_to_us(tracks[t], a.ticks),
                    static_cast<unsigned long long>(a.count), share);
      os << line;
    }
  }

  if (metrics != nullptr && !metrics->empty()) {
    os << "=== metrics ===\n" << metrics->format();
  }
  return os.str();
}

}  // namespace ulp::trace
