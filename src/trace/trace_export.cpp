#include "trace/trace_export.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <iomanip>
#include <map>
#include <sstream>

#include "common/ratio.hpp"

namespace ulp::trace {

namespace {

/// Tick -> real-time conversion for one track. For the normal case of an
/// integral tick rate (every clock frequency is), timestamps go through
/// the exact integer picoseconds-per-tick ratio: multiply first in 128-bit,
/// divide once. Converting each track's raw tick count through its own
/// double expression instead rounds differently per track, which skews
/// host spans against cluster spans on the shared export timeline.
class TickScale {
 public:
  explicit TickScale(const EventTrace::Track& track) {
    const double tps = track.ticks_per_second;
    const double rounded = std::round(tps);
    if (std::abs(tps - rounded) < 1e-3 && rounded >= 1.0 &&
        rounded <= 1e12) {
      const ClockRatio ps_per_tick = ClockRatio::from_fraction(
          1'000'000'000'000ull, static_cast<u64>(rounded));
      num_ = ps_per_tick.numerator();
      den_ = ps_per_tick.denominator();
      exact_ = true;
    } else {
      inv_us_ = 1e6 / tps;  // fractional rates: best-effort double path
    }
  }

  /// Microseconds of simulated real time for `tick`.
  [[nodiscard]] double us(u64 tick) const {
    if (exact_) {
      const auto ps = static_cast<unsigned __int128>(tick) * num_ / den_;
      return static_cast<double>(ps) / 1e6;
    }
    return static_cast<double>(tick) * inv_us_;
  }

 private:
  bool exact_ = false;
  u64 num_ = 1;
  u64 den_ = 1;
  double inv_us_ = 0.0;
};

std::vector<TickScale> track_scales(const EventTrace& trace) {
  std::vector<TickScale> scales;
  scales.reserve(trace.tracks().size());
  for (const EventTrace::Track& t : trace.tracks()) scales.emplace_back(t);
  return scales;
}

void write_args(std::ostream& os, const std::vector<EventTrace::Arg>& args) {
  os << "\"args\":{";
  for (size_t i = 0; i < args.size(); ++i) {
    if (i > 0) os << ',';
    os << '"' << json_escape(args[i].key) << "\":" << args[i].value;
  }
  os << '}';
}

}  // namespace

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

Status write_chrome_trace(EventTrace& trace, std::ostream& out) {
  trace.close_open_spans();
  std::ostringstream os;
  os << std::setprecision(15);
  os << "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[";
  bool first = true;
  auto sep = [&] {
    if (!first) os << ",";
    os << "\n";
    first = false;
  };

  sep();
  os << R"({"ph":"M","pid":1,"tid":0,"name":"process_name",)"
     << R"("args":{"name":"ulp-hetsim"}})";

  const auto& tracks = trace.tracks();
  for (size_t t = 0; t < tracks.size(); ++t) {
    sep();
    os << R"({"ph":"M","pid":1,"tid":)" << t
       << R"(,"name":"thread_name","args":{"name":")"
       << json_escape(tracks[t].name) << "\"}}";
    sep();
    os << R"({"ph":"M","pid":1,"tid":)" << t
       << R"(,"name":"thread_sort_index","args":{"sort_index":)"
       << tracks[t].sort_index << "}}";
  }

  const std::vector<TickScale> scales = track_scales(trace);
  for (const EventTrace::Event& e : trace.events()) {
    const TickScale& scale = scales[e.track];
    const double ts = scale.us(e.begin_tick);
    sep();
    switch (e.kind) {
      case EventTrace::EventKind::kSpan: {
        const double dur = scale.us(e.end_tick) - scale.us(e.begin_tick);
        os << R"({"ph":"X","pid":1,"tid":)" << e.track << ",\"name\":\""
           << json_escape(e.name) << "\",\"ts\":" << ts << ",\"dur\":" << dur
           << ",";
        write_args(os, e.args);
        os << "}";
        break;
      }
      case EventTrace::EventKind::kInstant: {
        os << R"({"ph":"i","pid":1,"tid":)" << e.track << ",\"name\":\""
           << json_escape(e.name) << "\",\"ts\":" << ts << ",\"s\":\"t\",";
        write_args(os, e.args);
        os << "}";
        break;
      }
      case EventTrace::EventKind::kCounter: {
        os << R"({"ph":"C","pid":1,"tid":)" << e.track << ",\"name\":\""
           << json_escape(e.name) << "\",\"ts\":" << ts
           << ",\"args\":{\"value\":" << e.value << "}}";
        break;
      }
    }
  }
  os << "\n]}\n";

  out << os.str();
  out.flush();
  if (!out.good()) return Status::Error("trace export: stream write failed");
  return {};
}

Status write_chrome_trace_file(EventTrace& trace, const std::string& path) {
  std::ofstream out(path);
  if (!out.good()) {
    return Status::Error("trace export: cannot open " + path);
  }
  return write_chrome_trace(trace, out);
}

namespace {

/// Shortest round-trippable double: %.17g recovers the exact bits, so the
/// JSON is byte-stable across runs and worker counts.
std::string json_double(double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

}  // namespace

std::string metrics_to_json(const MetricsRegistry& metrics) {
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, c] : metrics.counters()) {
    if (!first) out += ",";
    first = false;
    out += "\"" + json_escape(name) + "\":" + std::to_string(c->value());
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, g] : metrics.gauges()) {
    if (!first) out += ",";
    first = false;
    out += "\"" + json_escape(name) + "\":" + json_double(g->value());
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : metrics.histograms()) {
    if (!first) out += ",";
    first = false;
    out += "\"" + json_escape(name) + "\":{";
    out += "\"count\":" + std::to_string(h->count());
    out += ",\"sum\":" + std::to_string(h->sum());
    out += ",\"min\":" + std::to_string(h->min());
    out += ",\"max\":" + std::to_string(h->max());
    out += ",\"mean\":" + json_double(h->mean());
    out += ",\"p50\":" + std::to_string(h->approx_quantile(0.5));
    out += ",\"p99\":" + std::to_string(h->approx_quantile(0.99));
    out += ",\"buckets\":[";
    const size_t n = h->significant_buckets();
    for (size_t i = 0; i < n; ++i) {
      if (i > 0) out += ",";
      out += std::to_string(h->bucket(i));
    }
    out += "]}";
  }
  out += "}}\n";
  return out;
}

Status write_metrics_json_file(const MetricsRegistry& metrics,
                               const std::string& path) {
  std::ofstream out(path);
  if (!out.good()) {
    return Status::Error("metrics export: cannot open " + path);
  }
  out << metrics_to_json(metrics);
  out.flush();
  if (!out.good()) return Status::Error("metrics export: stream write failed");
  return {};
}

std::string profile_report(EventTrace& trace, const MetricsRegistry* metrics) {
  trace.close_open_spans();
  std::ostringstream os;
  os << "=== profile: top phases by time ===\n";

  struct Agg {
    u64 ticks = 0;
    u64 count = 0;
  };
  const auto& tracks = trace.tracks();
  const std::vector<TickScale> scales = track_scales(trace);
  for (size_t t = 0; t < tracks.size(); ++t) {
    std::map<std::string, Agg> by_name;
    u64 busy_ticks = 0;  // depth-0 only, so nesting is not double-counted
    for (const EventTrace::Event& e : trace.events()) {
      if (e.kind != EventTrace::EventKind::kSpan || e.track != t) continue;
      Agg& a = by_name[e.name];
      a.ticks += e.duration_ticks();
      ++a.count;
      if (e.depth == 0) busy_ticks += e.duration_ticks();
    }
    if (by_name.empty()) continue;

    std::vector<std::pair<std::string, Agg>> rows(by_name.begin(),
                                                  by_name.end());
    std::sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
      return a.second.ticks > b.second.ticks;
    });

    os << tracks[t].name << " (busy " << scales[t].us(busy_ticks) / 1e3
       << " ms):\n";
    const size_t top = std::min<size_t>(rows.size(), 10);
    for (size_t i = 0; i < top; ++i) {
      const auto& [name, a] = rows[i];
      const double share = busy_ticks == 0 ? 0.0
                                           : 100.0 *
                                                 static_cast<double>(a.ticks) /
                                                 static_cast<double>(busy_ticks);
      char line[160];
      std::snprintf(line, sizeof line,
                    "  %-28s %12.3f us  x%-7llu %5.1f%%\n", name.c_str(),
                    scales[t].us(a.ticks),
                    static_cast<unsigned long long>(a.count), share);
      os << line;
    }
  }

  if (metrics != nullptr && !metrics->empty()) {
    os << "=== metrics ===\n" << metrics->format();
  }
  return os.str();
}

}  // namespace ulp::trace
