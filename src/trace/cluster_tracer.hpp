// Waveform tracing of a cluster run.
//
// Samples the observable cluster state once per cycle into a VCD stream:
// per core its execution state (0 = halted, 1 = running, 2 = clock-gated
// sleep) and program counter, the TCDM banks claimed this cycle, the DMA
// queue occupancy and the EOC GPIO. Load the output in GTKWave to see
// barriers, bank conflicts and DMA phases the way the paper's FPGA
// platform exposed them.
#pragma once

#include "cluster/cluster.hpp"
#include "trace/vcd.hpp"

namespace ulp::trace {

class ClusterTracer {
 public:
  /// Declares the signal hierarchy for `cl` and emits the VCD header.
  ClusterTracer(cluster::Cluster& cl, std::ostream& out);

  /// Sample after a cluster step; emits changes at the cluster's cycle.
  void sample();

  /// Drives the cluster to completion (like Cluster::run) with per-cycle
  /// sampling. Returns elapsed cycles.
  u64 run_traced(u64 max_cycles = 100'000'000ull);

 private:
  cluster::Cluster* cl_;
  VcdWriter vcd_;
  std::vector<VcdWriter::SignalId> core_state_;
  std::vector<VcdWriter::SignalId> core_pc_;
  VcdWriter::SignalId tcdm_busy_;
  VcdWriter::SignalId dma_outstanding_;
  VcdWriter::SignalId eoc_;
  VcdWriter::SignalId barriers_;
};

}  // namespace ulp::trace
