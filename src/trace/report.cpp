#include "trace/report.hpp"

#include <cstring>

namespace ulp::trace {

std::string format_stats(const cluster::ClusterStats& stats) {
  std::ostringstream os;
  os << "cluster: " << stats.cycles << " cycles, "
     << stats.total_instrs() << " instructions retired\n";
  for (size_t i = 0; i < stats.cores.size(); ++i) {
    const auto& c = stats.cores[i];
    os << "  core" << i << ": " << c.instrs << " instrs, active "
       << c.active_cycles << " (" << static_cast<int>(c.activity() * 100)
       << "%), sleep " << c.sleep_cycles << ", mem-stall " << c.stall_mem
       << ", I$-stall " << c.stall_icache << "\n";
  }
  os << "  tcdm: " << stats.tcdm_conflicts << " bank conflicts\n";
  os << "  dma:  " << stats.dma.bytes_moved << " bytes in "
     << stats.dma.busy_cycles << " busy cycles ("
     << stats.dma.transfers_completed << " transfers, "
     << stats.dma.stall_cycles << " stalled)\n";
  os << "  i$:   " << stats.icache_misses << " cold misses\n";
  return os.str();
}

std::string CsvWriter::escape_field(const std::string& field) {
  if (field.find_first_of(",\"\r\n") == std::string::npos) return field;
  std::string quoted = "\"";
  for (const char c : field) {
    if (c == '"') quoted += '"';
    quoted += c;
  }
  quoted += '"';
  return quoted;
}

CsvWriter::CsvWriter(const std::string& path,
                     const std::vector<std::string>& columns)
    : out_(path), columns_(columns.size()) {
  ULP_CHECK(out_.good(), "cannot open CSV file: " + path);
  ULP_CHECK(!columns.empty(), "CSV needs at least one column");
  for (size_t i = 0; i < columns.size(); ++i) {
    if (i > 0) out_ << ',';
    out_ << escape_field(columns[i]);
  }
  out_ << '\n';
}

Status CsvWriter::row(const std::vector<double>& values) {
  if (values.size() != columns_) {
    return Status::Error("CSV row arity mismatch: got " +
                         std::to_string(values.size()) + " values for " +
                         std::to_string(columns_) + " columns");
  }
  for (size_t i = 0; i < values.size(); ++i) {
    if (i > 0) out_ << ',';
    out_ << values[i];
  }
  out_ << '\n';
  out_.flush();
  if (!out_.good()) return Status::Error("CSV write failed (stream error)");
  ++rows_;
  return {};
}

Status CsvWriter::row(const std::vector<std::string>& cells) {
  if (cells.size() != columns_) {
    return Status::Error("CSV row arity mismatch: got " +
                         std::to_string(cells.size()) + " cells for " +
                         std::to_string(columns_) + " columns");
  }
  for (size_t i = 0; i < cells.size(); ++i) {
    if (i > 0) out_ << ',';
    out_ << escape_field(cells[i]);
  }
  out_ << '\n';
  out_.flush();
  if (!out_.good()) return Status::Error("CSV write failed (stream error)");
  ++rows_;
  return {};
}

std::string csv_path_from_args(int argc, char** argv) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--csv") == 0) return argv[i + 1];
  }
  return {};
}

}  // namespace ulp::trace
