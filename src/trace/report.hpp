// Reporting helpers: human-readable cluster statistics and CSV export.
//
// Benches print the paper's rows to stdout; for plotting, every bench also
// accepts `--csv <file>` and dumps its series through CsvWriter. The
// formats here are deliberately dumb (RFC-4180-minus-quotes) — the data
// is numeric and the column names are identifiers.
#pragma once

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "cluster/cluster.hpp"
#include "common/status.hpp"

namespace ulp::trace {

/// Multi-line human-readable digest of a cluster run.
[[nodiscard]] std::string format_stats(const cluster::ClusterStats& stats);

class CsvWriter {
 public:
  /// Opens `path` and writes the header row. Throws on I/O failure.
  CsvWriter(const std::string& path, const std::vector<std::string>& columns);

  /// Appends one row; must match the header's arity.
  void row(const std::vector<double>& values);

  [[nodiscard]] size_t rows_written() const { return rows_; }

 private:
  std::ofstream out_;
  size_t columns_;
  size_t rows_ = 0;
};

/// Parses a `--csv <path>` pair out of (argc, argv); returns the path or
/// an empty string. Keeps bench main()s trivial.
[[nodiscard]] std::string csv_path_from_args(int argc, char** argv);

}  // namespace ulp::trace
