// Reporting helpers: human-readable cluster statistics and CSV export.
//
// Benches print the paper's rows to stdout; for plotting, every bench also
// accepts `--csv <file>` and dumps its series through CsvWriter. Data rows
// are numeric; header fields are quoted per RFC 4180 whenever they contain
// a delimiter, quote or newline, so arbitrary column names round-trip.
#pragma once

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "cluster/cluster.hpp"
#include "common/status.hpp"

namespace ulp::trace {

/// Multi-line human-readable digest of a cluster run.
[[nodiscard]] std::string format_stats(const cluster::ClusterStats& stats);

class CsvWriter {
 public:
  /// Opens `path` and writes the header row (fields quoted per RFC 4180
  /// where needed). Throws on I/O failure — a bad path is a setup error.
  CsvWriter(const std::string& path, const std::vector<std::string>& columns);

  /// Appends one row. Returns an error Status (instead of silently
  /// mis-writing) when the arity does not match the header or the stream
  /// rejects the write; the file is left untouched on arity mismatch.
  Status row(const std::vector<double>& values);

  /// Appends one row of pre-formatted cells (quoted per RFC 4180 where
  /// needed). For mixed numeric/text tables — the campaign engine's
  /// per-job rows carry kernel names, fault specs and status strings next
  /// to the numbers. Same arity/stream error contract as the numeric row.
  Status row(const std::vector<std::string>& cells);

  /// RFC 4180 field encoding: wraps the field in double quotes and doubles
  /// embedded quotes iff it contains a comma, quote, CR or LF.
  [[nodiscard]] static std::string escape_field(const std::string& field);

  [[nodiscard]] size_t rows_written() const { return rows_; }

 private:
  std::ofstream out_;
  size_t columns_;
  size_t rows_ = 0;
};

/// Parses a `--csv <path>` pair out of (argc, argv); returns the path or
/// an empty string. Keeps bench main()s trivial.
[[nodiscard]] std::string csv_path_from_args(int argc, char** argv);

}  // namespace ulp::trace
