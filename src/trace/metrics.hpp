// Named-metric registry: counters, gauges and log2-bucketed histograms.
//
// Components register metrics by name on first use ("spi.payload_bytes",
// "cluster.barrier_wait_cycles", "tcdm.conflicts", ...); a registry is
// shared across all components of one run through trace::Sinks. Lookups
// return stable references, so hot paths resolve their metric once at
// attach time and then pay a plain increment.
#pragma once

#include <array>
#include <map>
#include <memory>
#include <string>
#include <string_view>

#include "common/status.hpp"
#include "common/types.hpp"

namespace ulp::trace {

/// Monotonic event count.
class Counter {
 public:
  void add(u64 n = 1) { value_ += n; }
  [[nodiscard]] u64 value() const { return value_; }

 private:
  u64 value_ = 0;
};

/// Last-written value (occupancy, frequency, efficiency...).
class Gauge {
 public:
  void set(double v) { value_ = v; }
  [[nodiscard]] double value() const { return value_; }

 private:
  double value_ = 0;
};

/// Log2-bucketed histogram of non-negative integer samples. Bucket i
/// holds samples in [2^(i-1), 2^i) — bucket 0 holds the value 0 — which
/// matches the dynamic range of the quantities we care about (payload
/// sizes from tens of bytes to tens of kilobytes, wait times from a few
/// cycles to millions).
class Histogram {
 public:
  static constexpr size_t kBuckets = 65;

  void record(u64 sample);

  [[nodiscard]] u64 count() const { return count_; }
  [[nodiscard]] u64 sum() const { return sum_; }
  [[nodiscard]] u64 min() const { return count_ == 0 ? 0 : min_; }
  [[nodiscard]] u64 max() const { return max_; }
  [[nodiscard]] double mean() const {
    return count_ == 0 ? 0.0
                       : static_cast<double>(sum_) / static_cast<double>(count_);
  }
  [[nodiscard]] u64 bucket(size_t i) const { return buckets_.at(i); }

  /// Smallest value v such that >= q (in [0,1]) of the samples are <= v,
  /// resolved to bucket upper bounds (exact enough for reporting).
  [[nodiscard]] u64 approx_quantile(double q) const;

  /// Index of the highest non-empty bucket + 1 (0 when empty).
  [[nodiscard]] size_t significant_buckets() const;

 private:
  std::array<u64, kBuckets> buckets_{};
  u64 count_ = 0;
  u64 sum_ = 0;
  u64 min_ = 0;
  u64 max_ = 0;
};

class MetricsRegistry {
 public:
  /// Find-or-create; references stay valid for the registry's lifetime.
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name);

  [[nodiscard]] bool empty() const {
    return counters_.empty() && gauges_.empty() && histograms_.empty();
  }

  [[nodiscard]] const std::map<std::string, std::unique_ptr<Counter>>&
  counters() const {
    return counters_;
  }
  [[nodiscard]] const std::map<std::string, std::unique_ptr<Gauge>>& gauges()
      const {
    return gauges_;
  }
  [[nodiscard]] const std::map<std::string, std::unique_ptr<Histogram>>&
  histograms() const {
    return histograms_;
  }

  /// Human-readable dump, sorted by name (report.hpp style).
  [[nodiscard]] std::string format() const;

 private:
  // A metric name must not be registered as two different kinds.
  void check_unique(std::string_view name, const char* kind) const;

  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace ulp::trace
