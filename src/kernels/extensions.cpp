// Extension kernels beyond Table I.
//
// The paper's introduction motivates the platform with "embedded machine
// vision or voice recognition" and "compressed sensing (e.g. in biomedical
// applications)"; its evaluation covers the vision/learning side. These two
// kernels cover the other two application classes with the same rigour
// (fixed-point arithmetic, feature-directed codegen, bit-exact golden
// references) and are clearly marked as extensions — they are NOT part of
// the Table I reproduction:
//
//   fir-bank: a 4-band x 32-tap Q4.11 FIR filter bank over a 1024-sample
//             window — the classic biosignal front-end. Bands x output
//             chunks parallelise embarrassingly.
//   fft:      512-point radix-2 DIT FFT on Q4.11 complex data with
//             per-stage >>1 scaling and a twiddle LUT shipped in the
//             binary — the voice front-end. Each of the 9 stages is a
//             parallel butterfly sweep separated by cluster barriers,
//             making it the most synchronisation-intensive kernel in the
//             repository.
#include "kernels/kernel.hpp"

#include <cmath>

#include "codegen/builder.hpp"
#include "common/rng.hpp"
#include "runtime/outliner.hpp"

namespace ulp::kernels {
namespace {

using codegen::Builder;
using isa::Opcode;
using runtime::OutlineRegs;

i16 rd16(const std::vector<u8>& v, size_t idx) {
  return static_cast<i16>(static_cast<u16>(v[2 * idx]) |
                          static_cast<u16>(v[2 * idx + 1]) << 8);
}
void wr16(std::vector<u8>& v, size_t idx, i32 val) {
  v[2 * idx] = static_cast<u8>(val);
  v[2 * idx + 1] = static_cast<u8>(val >> 8);
}

// ---------------------------------------------------------------------
// fir-bank
// ---------------------------------------------------------------------

constexpr u32 kFirBands = 4;
constexpr u32 kFirTaps = 32;
constexpr u32 kFirSamples = 1024;
// The signal is stored with kFirTaps zero samples of pre-history so the
// kernel can index x[n-k] without boundary branches.
constexpr u32 kFirSignalWords = kFirTaps + kFirSamples;

std::vector<i16> fir_coeffs(u64 seed) {
  Rng rng(seed ^ 0xF17);
  std::vector<i16> h(kFirBands * kFirTaps);
  for (auto& c : h) c = static_cast<i16>(rng.uniform(-400, 400));
  return h;
}

void emit_fir_compute(Builder& bld, const OutlineRegs& regs, Addr sig,
                      Addr coef, Addr out, u32 num_cores) {
  // Worksharing over band * sample: total = kFirBands * kFirSamples.
  const u8 rLo = 3, rHi = 4, rIdx = 5, rBand = 6, rN = 7, rPx = 8, rPh = 9,
           rAcc = 10, rX = 12, rH = 13, rT = 14, rPo = 15;
  runtime::emit_static_bounds(bld, rLo, rHi, regs.core_id,
                              kFirBands * kFirSamples, num_cores, 20);
  const auto done = bld.make_label();
  bld.branch(Opcode::kBge, rLo, rHi, done);
  bld.mv(rIdx, rLo);
  const auto top = bld.make_label();
  bld.bind(top);
  // band = idx / kFirSamples (power of two: shift), n = idx % kFirSamples.
  bld.emit(Opcode::kSrli, rBand, rIdx, 0, 10);
  bld.emit(Opcode::kSlli, rN, rBand, 0, 10);
  bld.emit(Opcode::kSub, rN, rIdx, rN);
  // px = sig + (kFirTaps + n)*2 (points at x[n]); walks DOWN over taps.
  bld.emit(Opcode::kSlli, rPx, rN, 0, 1);
  bld.li(rT, sig + kFirTaps * 2);
  bld.emit(Opcode::kAdd, rPx, rPx, rT);
  // ph = coef + band*kFirTaps*2.
  bld.emit(Opcode::kSlli, rPh, rBand, 0,
           1 + 5 /* *2 bytes * 32 taps == <<6 */);
  bld.li(rT, coef);
  bld.emit(Opcode::kAdd, rPh, rPh, rT);
  bld.li(rAcc, 0);
  bld.loop_hot(kFirTaps, 21, [&] {
    bld.lh_pi(rX, rPx, -2);  // x[n-k], walking backwards
    bld.lh_pi(rH, rPh, 2);   // h[band][k]
    bld.emit(Opcode::kMul, rT, rX, rH);
    bld.emit(Opcode::kSrai, rT, rT, 0, 11);
    bld.emit(Opcode::kAdd, rAcc, rAcc, rT);
  });
  // out[band][n] = acc (truncated to i16 by the store).
  bld.emit(Opcode::kSlli, rPo, rIdx, 0, 1);
  bld.li(rT, out);
  bld.emit(Opcode::kAdd, rPo, rPo, rT);
  bld.emit(Opcode::kSh, rAcc, rPo, 0, 0);
  bld.emit(Opcode::kAddi, rIdx, rIdx, 0, 1);
  bld.branch(Opcode::kBlt, rIdx, rHi, top);
  bld.bind(done);
}

std::vector<u8> fir_golden(const std::vector<u8>& input,
                           const std::vector<i16>& h) {
  std::vector<u8> out(kFirBands * kFirSamples * 2);
  for (u32 band = 0; band < kFirBands; ++band) {
    for (u32 n = 0; n < kFirSamples; ++n) {
      i32 acc = 0;
      for (u32 k = 0; k < kFirTaps; ++k) {
        const i32 x = rd16(input, kFirTaps + n - k);
        acc += (x * h[band * kFirTaps + k]) >> 11;
      }
      wr16(out, band * kFirSamples + n, acc);
    }
  }
  return out;
}

// ---------------------------------------------------------------------
// fft
// ---------------------------------------------------------------------

constexpr u32 kFftN = 512;
constexpr u32 kFftLogN = 9;

std::vector<i16> fft_twiddles() {
  // w_k = exp(-2*pi*i*k/N) in Q1.14 for k in [0, N/2): re, im interleaved.
  std::vector<i16> tw(kFftN);  // N/2 pairs
  for (u32 k = 0; k < kFftN / 2; ++k) {
    const double a = -2.0 * M_PI * k / kFftN;
    tw[2 * k] = static_cast<i16>(std::lround(std::cos(a) * 16384));
    tw[2 * k + 1] = static_cast<i16>(std::lround(std::sin(a) * 16384));
  }
  return tw;
}

u32 bit_reverse(u32 v, u32 bits) {
  u32 r = 0;
  for (u32 i = 0; i < bits; ++i) r |= ((v >> i) & 1) << (bits - 1 - i);
  return r;
}

/// Cluster/flat compute: `in` holds the staged samples, `work` the
/// in-place FFT buffer (both interleaved re/im q16).
void emit_fft_compute(Builder& bld, const OutlineRegs& regs, Addr in,
                      Addr work, Addr tw, u32 num_cores, bool cluster) {
  const u8 rLo = 3, rHi = 4, rB = 5, rI0 = 6, rI1 = 7, rAr = 8, rAi = 9,
           rBr = 10, rBi = 11, rWr = 12, rWi = 13, rT0 = 14, rT1 = 15,
           rT2 = 16, rP = 17;

  // ---- bit-reversal copy in -> work, chunked over indices.
  runtime::emit_static_bounds(bld, rLo, rHi, regs.core_id, kFftN, num_cores,
                              20);
  {
    const auto done = bld.make_label();
    bld.branch(Opcode::kBge, rLo, rHi, done);
    bld.mv(rB, rLo);
    const auto top = bld.make_label();
    bld.bind(top);
    // rev = bit_reverse(i, 9): unrolled bit gather.
    bld.li(rT0, 0);
    for (u32 bit = 0; bit < kFftLogN; ++bit) {
      bld.emit(Opcode::kSrli, rT1, rB, 0, static_cast<i32>(bit));
      bld.emit(Opcode::kAndi, rT1, rT1, 0, 1);
      bld.emit(Opcode::kSlli, rT1, rT1, 0,
               static_cast<i32>(kFftLogN - 1 - bit));
      bld.emit(Opcode::kOr, rT0, rT0, rT1);
    }
    // work[rev] = in[i] (two halfwords).
    bld.emit(Opcode::kSlli, rT1, rB, 0, 2);
    bld.li(rT2, in);
    bld.emit(Opcode::kAdd, rT1, rT1, rT2);
    bld.emit(Opcode::kLh, rAr, rT1, 0, 0);
    bld.emit(Opcode::kLh, rAi, rT1, 0, 2);
    bld.emit(Opcode::kSlli, rT1, rT0, 0, 2);
    bld.li(rT2, work);
    bld.emit(Opcode::kAdd, rT1, rT1, rT2);
    bld.emit(Opcode::kSh, rAr, rT1, 0, 0);
    bld.emit(Opcode::kSh, rAi, rT1, 0, 2);
    bld.emit(Opcode::kAddi, rB, rB, 0, 1);
    bld.branch(Opcode::kBlt, rB, rHi, top);
    bld.bind(done);
  }

  // ---- 9 butterfly stages, one barrier between each.
  runtime::emit_static_bounds(bld, rLo, rHi, regs.core_id, kFftN / 2,
                              num_cores, 20);
  for (u32 s = 0; s < kFftLogN; ++s) {
    if (cluster) bld.barrier();
    const u32 half = 1u << s;
    const u32 tw_step = kFftN / (2 * half);
    const auto done = bld.make_label();
    bld.branch(Opcode::kBge, rLo, rHi, done);
    bld.mv(rB, rLo);
    const auto top = bld.make_label();
    bld.bind(top);
    // j = b & (half-1); block = b >> s; i0 = (block << (s+1)) + j.
    if (half > 1) {
      bld.emit(Opcode::kAndi, rT0, rB, 0, static_cast<i32>(half - 1));
    } else {
      bld.li(rT0, 0);
    }
    bld.emit(Opcode::kSrli, rT1, rB, 0, static_cast<i32>(s));
    bld.emit(Opcode::kSlli, rT1, rT1, 0, static_cast<i32>(s + 1));
    bld.emit(Opcode::kAdd, rI0, rT1, rT0);
    bld.emit(Opcode::kAddi, rI1, rI0, 0, static_cast<i32>(half));
    // Twiddle pointer: tw + j*tw_step*4.
    bld.li(rT1, static_cast<u32>(tw_step * 4));
    bld.emit(Opcode::kMul, rT1, rT0, rT1);
    bld.li(rP, tw);
    bld.emit(Opcode::kAdd, rP, rP, rT1);
    bld.emit(Opcode::kLh, rWr, rP, 0, 0);
    bld.emit(Opcode::kLh, rWi, rP, 0, 2);
    // Load a = work[i0], b = work[i1].
    bld.emit(Opcode::kSlli, rT1, rI0, 0, 2);
    bld.li(rT2, work);
    bld.emit(Opcode::kAdd, rI0, rT1, rT2);  // rI0 now a byte pointer
    bld.emit(Opcode::kSlli, rT1, rI1, 0, 2);
    bld.emit(Opcode::kAdd, rI1, rT1, rT2);
    bld.emit(Opcode::kLh, rAr, rI0, 0, 0);
    bld.emit(Opcode::kLh, rAi, rI0, 0, 2);
    bld.emit(Opcode::kLh, rBr, rI1, 0, 0);
    bld.emit(Opcode::kLh, rBi, rI1, 0, 2);
    // t = w * b in Q1.14: tre = (br*wr - bi*wi) >> 14, tim likewise.
    bld.emit(Opcode::kMul, rT0, rBr, rWr);
    bld.emit(Opcode::kMul, rT1, rBi, rWi);
    bld.emit(Opcode::kSub, rT0, rT0, rT1);
    bld.emit(Opcode::kSrai, rT0, rT0, 0, 14);  // tre
    bld.emit(Opcode::kMul, rT1, rBr, rWi);
    bld.emit(Opcode::kMul, rT2, rBi, rWr);
    bld.emit(Opcode::kAdd, rT1, rT1, rT2);
    bld.emit(Opcode::kSrai, rT1, rT1, 0, 14);  // tim
    // a' = (a + t) >> 1; b' = (a - t) >> 1 (per-stage scaling).
    bld.emit(Opcode::kAdd, rT2, rAr, rT0);
    bld.emit(Opcode::kSrai, rT2, rT2, 0, 1);
    bld.emit(Opcode::kSh, rT2, rI0, 0, 0);
    bld.emit(Opcode::kSub, rT2, rAr, rT0);
    bld.emit(Opcode::kSrai, rT2, rT2, 0, 1);
    bld.emit(Opcode::kSh, rT2, rI1, 0, 0);
    bld.emit(Opcode::kAdd, rT2, rAi, rT1);
    bld.emit(Opcode::kSrai, rT2, rT2, 0, 1);
    bld.emit(Opcode::kSh, rT2, rI0, 0, 2);
    bld.emit(Opcode::kSub, rT2, rAi, rT1);
    bld.emit(Opcode::kSrai, rT2, rT2, 0, 1);
    bld.emit(Opcode::kSh, rT2, rI1, 0, 2);
    bld.emit(Opcode::kAddi, rB, rB, 0, 1);
    bld.branch(Opcode::kBlt, rB, rHi, top);
    bld.bind(done);
  }
}

std::vector<u8> fft_golden(const std::vector<u8>& input,
                           const std::vector<i16>& tw) {
  std::vector<i32> re(kFftN), im(kFftN);
  for (u32 i = 0; i < kFftN; ++i) {
    const u32 r = bit_reverse(i, kFftLogN);
    re[r] = rd16(input, 2 * i);
    im[r] = rd16(input, 2 * i + 1);
  }
  for (u32 s = 0; s < kFftLogN; ++s) {
    const u32 half = 1u << s;
    const u32 tw_step = kFftN / (2 * half);
    for (u32 b = 0; b < kFftN / 2; ++b) {
      const u32 j = b & (half - 1);
      const u32 i0 = ((b >> s) << (s + 1)) + j;
      const u32 i1 = i0 + half;
      const i32 wr = tw[2 * (j * tw_step)];
      const i32 wi = tw[2 * (j * tw_step) + 1];
      const i32 tre = (re[i1] * wr - im[i1] * wi) >> 14;
      const i32 tim = (re[i1] * wi + im[i1] * wr) >> 14;
      const i32 ar = re[i0];
      const i32 ai = im[i0];
      // Match the ISS exactly: 16-bit wrap on store, then sign re-extend.
      re[i0] = static_cast<i16>((ar + tre) >> 1);
      re[i1] = static_cast<i16>((ar - tre) >> 1);
      im[i0] = static_cast<i16>((ai + tim) >> 1);
      im[i1] = static_cast<i16>((ai - tim) >> 1);
    }
  }
  std::vector<u8> out(kFftN * 4);
  for (u32 i = 0; i < kFftN; ++i) {
    wr16(out, 2 * i, re[i]);
    wr16(out, 2 * i + 1, im[i]);
  }
  return out;
}

}  // namespace

KernelCase make_fir_bank(const core::CoreFeatures& features, u32 num_cores,
                         Target target, u64 seed) {
  Rng rng(seed);
  const std::vector<i16> h = fir_coeffs(seed);
  KernelCase kc;
  kc.name = "fir-bank (ext)";
  kc.input.resize(kFirSignalWords * 2);  // kFirTaps zeros + samples
  for (u32 i = kFirTaps; i < kFirSignalWords; ++i) {
    wr16(kc.input, i, rng.uniform(-2000, 2000));
  }
  kc.expected = fir_golden(kc.input, h);
  kc.output_bytes = kFirBands * kFirSamples * 2;

  std::vector<u8> coef_bytes(h.size() * 2);
  for (size_t i = 0; i < h.size(); ++i) wr16(coef_bytes, i, h[i]);

  const bool cluster = target == Target::kCluster;
  const Addr sig = cluster ? memmap::kTcdmBase : kFlatInputAddr;
  const Addr out = sig + kFirSignalWords * 2;
  const Addr coef = cluster ? out + kc.output_bytes
                            : static_cast<Addr>(kFlatScratchAddr);
  auto compute = [&](Builder& bld, const OutlineRegs& regs) {
    emit_fir_compute(bld, regs, sig, coef, out, cluster ? num_cores : 1);
  };
  if (cluster) {
    kc.input_addr = kL2InputAddr;
    kc.output_addr = kL2OutputAddr;
    kc.program = runtime::outline_target(
        features, {{kL2InputAddr, sig, static_cast<u32>(kc.input.size())}},
        {{out, kL2OutputAddr, static_cast<u32>(kc.output_bytes)}}, compute);
  } else {
    kc.input_addr = sig;
    kc.output_addr = out;
    kc.program = runtime::outline_flat(features, compute);
  }
  kc.program.data.push_back({coef, std::move(coef_bytes)});
  return kc;
}

KernelCase make_fft(const core::CoreFeatures& features, u32 num_cores,
                    Target target, u64 seed) {
  Rng rng(seed);
  const std::vector<i16> tw = fft_twiddles();
  KernelCase kc;
  kc.name = "fft (ext)";
  kc.input.resize(kFftN * 4);
  for (u32 i = 0; i < kFftN * 2; ++i) {
    wr16(kc.input, i, rng.uniform(-8000, 8000));
  }
  kc.expected = fft_golden(kc.input, tw);
  kc.output_bytes = kFftN * 4;

  std::vector<u8> tw_bytes(tw.size() * 2);
  for (size_t i = 0; i < tw.size(); ++i) wr16(tw_bytes, i, tw[i]);

  const bool cluster = target == Target::kCluster;
  const Addr in = cluster ? memmap::kTcdmBase : kFlatInputAddr;
  const Addr work = in + kFftN * 4;
  const Addr twd = cluster ? work + kFftN * 4
                           : static_cast<Addr>(kFlatScratchAddr);
  auto compute = [&](Builder& bld, const OutlineRegs& regs) {
    emit_fft_compute(bld, regs, in, work, twd, cluster ? num_cores : 1,
                     cluster);
  };
  if (cluster) {
    kc.input_addr = kL2InputAddr;
    kc.output_addr = kL2OutputAddr;
    kc.program = runtime::outline_target(
        features, {{kL2InputAddr, in, static_cast<u32>(kc.input.size())}},
        {{work, kL2OutputAddr, static_cast<u32>(kc.output_bytes)}}, compute);
  } else {
    kc.input_addr = in;
    kc.output_addr = work;
    kc.program = runtime::outline_flat(features, compute);
  }
  kc.program.data.push_back({twd, std::move(tw_bytes)});
  return kc;
}

const std::vector<KernelInfo>& extension_kernels() {
  static const std::vector<KernelInfo> kTable = {
      {"fir-bank (ext)", "biomedical / DSP", &make_fir_bank},
      {"fft (ext)", "voice / DSP", &make_fft},
  };
  return kTable;
}

}  // namespace ulp::kernels
