// Executes a KernelCase on the matching simulated platform and collects
// timing/activity. This is the measurement harness behind the Figure 4
// studies and the verification tests; the full host+link offload flow lives
// in runtime/offload.hpp.
#pragma once

#include "cluster/cluster.hpp"
#include "kernels/kernel.hpp"
#include "profile/profile.hpp"

namespace ulp::kernels {

struct RunOutcome {
  u64 cycles = 0;
  std::vector<u8> output;
  cluster::ClusterStats stats;  ///< Cluster targets only.

  /// Convenience: did the run reproduce the golden reference bit-exactly?
  [[nodiscard]] bool matches(const KernelCase& kc) const {
    return output == kc.expected;
  }
};

/// Runs a Target::kCluster case on a cluster configured with `core_config`
/// x `num_cores` (must match the values the case was generated for).
/// Non-null `sinks` record the run onto "<track_prefix>.*" event-trace
/// tracks (1 cycle = 1 ns nominal) and into the metrics registry. A
/// non-null `profiler` is attached for the run and captured afterwards
/// (per-pc cycle attribution + stall buckets).
[[nodiscard]] RunOutcome run_on_cluster(const KernelCase& kc,
                                        const core::CoreConfig& core_config,
                                        u32 num_cores,
                                        const trace::Sinks& sinks = {},
                                        const std::string& track_prefix =
                                            "cluster",
                                        profile::ClusterProfiler* profiler =
                                            nullptr);

/// Runs a Target::kFlat case on a single core with flat memory.
[[nodiscard]] RunOutcome run_on_flat(const KernelCase& kc,
                                     const core::CoreConfig& core_config);

/// Table I "RISC ops": instructions retired by the kernel on the baseline
/// configuration (flat, single core, all enhancements off).
[[nodiscard]] u64 measure_risc_ops(const KernelInfo& info, u64 seed = 1);

}  // namespace ulp::kernels
