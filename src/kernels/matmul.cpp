// Matrix multiplication kernels (Table I rows 1-3).
//
// C = A x Bt' where Bt is stored transposed (the standard embedded layout:
// both operands are then walked row-major, which keeps the inner product
// contiguous and SIMD-friendly). Three data types, matching the paper:
//   * char  (64x64 i8,  8 kB in / 4 kB out)  — integer, 4x8 dot products
//   * short (64x64 i16, 16 kB in / 8 kB out) — integer, 2x16 dot products
//   * fixed (64x64 Q4.11, 16 kB in / 8 kB out) — per-product rounding shift,
//     which (as the paper explains) is incompatible with the MAC/dot-product
//     units: there is no multiply-shift-accumulate instruction. The fixed
//     variant therefore runs scalar mul+srai+add on every target.
//
// Accumulation is word-width and the store truncates to the element type,
// i.e. results are exact in Z/2^8 / Z/2^16 — the property Strassen relies
// on to be bit-identical with the direct product.
#include "kernels/kernel.hpp"

#include "codegen/builder.hpp"
#include "common/rng.hpp"
#include "runtime/outliner.hpp"

namespace ulp::kernels {
namespace {

using codegen::Builder;
using isa::Opcode;
using runtime::OutlineRegs;

enum class MatKind { kChar, kShort, kFixed };

constexpr u32 kN = 64;

struct MatLayout {
  Addr a = 0;
  Addr bt = 0;
  Addr c = 0;
};

u32 elem_bytes(MatKind k) { return k == MatKind::kChar ? 1 : 2; }

/// Emits the parallel compute section: rows [lo,hi) of C per core.
void emit_matmul_compute(Builder& bld, const OutlineRegs& regs,
                         const MatLayout& lay, MatKind kind, u32 num_cores) {
  const u32 eb = elem_bytes(kind);
  const u32 row_bytes = kN * eb;
  const bool simd =
      bld.features().has_simd && kind != MatKind::kFixed;

  const u8 r_lo = 3, r_hi = 4, r_pa = 5, r_pb = 6, r_pc = 7, r_rows = 8,
           r_j = 9, r_acc = 10, r_va = 12, r_vb = 13, r_t = 14;

  runtime::emit_static_bounds(bld, r_lo, r_hi, regs.core_id, kN, num_cores,
                              /*scratch=*/20);
  const auto done = bld.make_label();
  bld.branch(Opcode::kBge, r_lo, r_hi, done);

  // pA = A + lo*row_bytes; pC = C + lo*row_bytes; rows = hi - lo.
  bld.li(20, row_bytes);
  bld.emit(Opcode::kMul, 21, r_lo, 20);
  bld.li(r_pa, lay.a);
  bld.emit(Opcode::kAdd, r_pa, r_pa, 21);
  bld.li(r_pc, lay.c);
  bld.emit(Opcode::kAdd, r_pc, r_pc, 21);
  bld.emit(Opcode::kSub, r_rows, r_hi, r_lo);

  const auto rows_top = bld.make_label();
  bld.bind(rows_top);
  bld.li(r_pb, lay.bt);
  bld.li(r_j, kN);
  bld.loop(r_j, /*scratch=*/21, [&] {
    bld.li(r_acc, 0);
    if (simd && kind == MatKind::kChar) {
      bld.loop_hot(kN / 4, 22, [&] {
        bld.lw_pi(r_va, r_pa, 4);
        bld.lw_pi(r_vb, r_pb, 4);
        bld.emit(Opcode::kDotp4b, r_acc, r_va, r_vb);
      });
    } else if (simd && kind == MatKind::kShort) {
      bld.loop_hot(kN / 2, 22, [&] {
        bld.lw_pi(r_va, r_pa, 4);
        bld.lw_pi(r_vb, r_pb, 4);
        bld.emit(Opcode::kDotp2h, r_acc, r_va, r_vb);
      });
    } else if (kind == MatKind::kFixed) {
      bld.loop_hot(kN, 22, [&] {
        bld.lh_pi(r_va, r_pa, 2);
        bld.lh_pi(r_vb, r_pb, 2);
        bld.emit(Opcode::kMul, r_t, r_va, r_vb);
        bld.emit(Opcode::kSrai, r_t, r_t, 0, 11);  // Q4.11 rounding shift
        bld.emit(Opcode::kAdd, r_acc, r_acc, r_t);
      });
    } else {
      // Scalar integer path (Cortex-M / baseline).
      bld.loop_hot(kN, 22, [&] {
        if (kind == MatKind::kChar) {
          bld.lb_pi(r_va, r_pa, 1);
          bld.lb_pi(r_vb, r_pb, 1);
        } else {
          bld.lh_pi(r_va, r_pa, 2);
          bld.lh_pi(r_vb, r_pb, 2);
        }
        bld.mac(r_acc, r_va, r_vb, r_t);
      });
    }
    // Store C element, rewind the A row for the next column of Bt.
    if (kind == MatKind::kChar) {
      bld.sb_pi(r_acc, r_pc, 1);
    } else {
      bld.sh_pi(r_acc, r_pc, 2);
    }
    bld.emit(Opcode::kAddi, r_pa, r_pa, 0, -static_cast<i32>(row_bytes));
  });
  bld.emit(Opcode::kAddi, r_pa, r_pa, 0, static_cast<i32>(row_bytes));
  bld.emit(Opcode::kAddi, r_rows, r_rows, 0, -1);
  bld.branch(Opcode::kBne, r_rows, codegen::zero, rows_top);
  bld.bind(done);
}

std::vector<u8> make_inputs(MatKind kind, u64 seed) {
  Rng rng(seed);
  const u32 eb = elem_bytes(kind);
  std::vector<u8> bytes(2 * kN * kN * eb);
  if (kind == MatKind::kChar) {
    for (auto& b : bytes) b = static_cast<u8>(rng.uniform(-128, 127));
  } else {
    for (size_t i = 0; i < bytes.size(); i += 2) {
      // shorts: full range; fixed: ~(-1, 1) in Q4.11 to stay representative.
      const i32 v = kind == MatKind::kShort ? rng.uniform(-32768, 32767)
                                            : rng.uniform(-2047, 2047);
      bytes[i] = static_cast<u8>(v);
      bytes[i + 1] = static_cast<u8>(v >> 8);
    }
  }
  return bytes;
}

std::vector<u8> golden(MatKind kind, const std::vector<u8>& input) {
  const u32 eb = elem_bytes(kind);
  const u8* a = input.data();
  const u8* bt = input.data() + kN * kN * eb;
  std::vector<u8> out(kN * kN * eb);
  for (u32 i = 0; i < kN; ++i) {
    for (u32 j = 0; j < kN; ++j) {
      // Unsigned accumulation: wraps mod 2^32 exactly like the ISS adder
      // (short products can overflow 32 bits over 64 terms).
      u32 acc = 0;
      for (u32 k = 0; k < kN; ++k) {
        if (kind == MatKind::kChar) {
          const i32 av = static_cast<i8>(a[i * kN + k]);
          const i32 bv = static_cast<i8>(bt[j * kN + k]);
          acc += static_cast<u32>(av) * static_cast<u32>(bv);
        } else {
          const i32 av = static_cast<i16>(
              static_cast<u16>(a[(i * kN + k) * 2]) |
              static_cast<u16>(a[(i * kN + k) * 2 + 1]) << 8);
          const i32 bv = static_cast<i16>(
              static_cast<u16>(bt[(j * kN + k) * 2]) |
              static_cast<u16>(bt[(j * kN + k) * 2 + 1]) << 8);
          if (kind == MatKind::kFixed) {
            acc += static_cast<u32>((av * bv) >> 11);
          } else {
            acc += static_cast<u32>(av) * static_cast<u32>(bv);
          }
        }
      }
      if (kind == MatKind::kChar) {
        out[i * kN + j] = static_cast<u8>(acc);
      } else {
        out[(i * kN + j) * 2] = static_cast<u8>(acc);
        out[(i * kN + j) * 2 + 1] = static_cast<u8>(acc >> 8);
      }
    }
  }
  return out;
}

KernelCase make_matmul(MatKind kind, const char* name,
                       const core::CoreFeatures& features, u32 num_cores,
                       Target target, u64 seed) {
  const u32 eb = elem_bytes(kind);
  const u32 in_bytes = 2 * kN * kN * eb;
  const u32 out_bytes = kN * kN * eb;

  KernelCase kc;
  kc.name = name;
  kc.input = make_inputs(kind, seed);
  kc.expected = golden(kind, kc.input);
  kc.output_bytes = out_bytes;

  MatLayout lay;
  if (target == Target::kCluster) {
    lay.a = memmap::kTcdmBase;
    lay.bt = lay.a + kN * kN * eb;
    lay.c = lay.bt + kN * kN * eb;
    kc.input_addr = kL2InputAddr;
    kc.output_addr = kL2OutputAddr;
    kc.program = runtime::outline_target(
        features, {{kL2InputAddr, lay.a, in_bytes}},
        {{lay.c, kL2OutputAddr, out_bytes}},
        [&](Builder& bld, const OutlineRegs& regs) {
          emit_matmul_compute(bld, regs, lay, kind, num_cores);
        });
  } else {
    lay.a = kFlatInputAddr;
    lay.bt = lay.a + kN * kN * eb;
    lay.c = kFlatOutputAddr;
    kc.input_addr = kFlatInputAddr;
    kc.output_addr = kFlatOutputAddr;
    kc.program = runtime::outline_flat(
        features, [&](Builder& bld, const OutlineRegs& regs) {
          emit_matmul_compute(bld, regs, lay, kind, /*num_cores=*/1);
        });
  }
  return kc;
}

}  // namespace

KernelCase make_matmul_char(const core::CoreFeatures& f, u32 nc, Target t,
                            u64 seed) {
  return make_matmul(MatKind::kChar, "matmul", f, nc, t, seed);
}
KernelCase make_matmul_short(const core::CoreFeatures& f, u32 nc, Target t,
                             u64 seed) {
  return make_matmul(MatKind::kShort, "matmul (short)", f, nc, t, seed);
}
KernelCase make_matmul_fixed(const core::CoreFeatures& f, u32 nc, Target t,
                             u64 seed) {
  return make_matmul(MatKind::kFixed, "matmul (fixed)", f, nc, t, seed);
}

}  // namespace ulp::kernels
