// Histogram of Oriented Gradients feature descriptor (Table I row 10).
//
// A fixed-point port in the spirit of the paper's VLFeat-based hog: the
// benchmark needs "a very high dynamic range ... 32-bit fixed-point numbers
// and SW-emulated 64-bit variables for accumulation", which is exactly what
// makes it the one kernel with an architectural *slowdown* on OR10N
// (Figure 4): Cortex-M cores have 32x32->64 multiply hardware, OR10N does
// not and emulates it with 16x16 partial products (Builder::q32_mul).
//
// Pipeline over a 128x128 8-bit image (16 kB input):
//   1. per pixel (borders excluded): central-difference gradients, gradient
//      magnitude via bit-by-bit integer sqrt, orientation assignment by
//      maximum projection onto 9 orientation vectors (VLFeat-style),
//      accumulation into 16x16 cells x 9 bins;
//   2. per 2x2-cell block (15x15 blocks): L2 normalisation with the sum of
//      squares accumulated in software 64-bit, inverse-norm division, and a
//      Q·16 multiply per descriptor element -> 15*15*36 i32 outputs (~32 kB,
//      the paper's 36 kB output).
//
// Parallelisation: cell rows (phase 1) and block rows (phase 2) chunked
// across cores, separated by a barrier.
#include "kernels/kernel.hpp"

#include <cmath>

#include "codegen/builder.hpp"
#include "common/lut.hpp"
#include "common/rng.hpp"
#include "runtime/outliner.hpp"

namespace ulp::kernels {
namespace {

using codegen::Builder;
using isa::Opcode;
using runtime::OutlineRegs;

constexpr u32 kSide = 128;     // image side, 8-bit pixels
constexpr u32 kCell = 8;       // cell side in pixels
constexpr u32 kCells = 16;     // cells per side
constexpr u32 kBins = 9;
constexpr u32 kBlocks = 15;    // blocks per side (2x2 cells, stride 1 cell)
constexpr u32 kBlockDims = 4 * kBins;  // 36

constexpr u32 kImgBytes = kSide * kSide;
constexpr u32 kHistBytes = kCells * kCells * kBins * 4;
constexpr u32 kOutBytes = kBlocks * kBlocks * kBlockDims * 4;

struct Layout {
  Addr img = 0;
  Addr hist = 0;
  Addr out = 0;
};

/// Orientation vectors (cos, sin) of k*pi/9 in Q2.14 — compile-time table
/// shared (via this function) by codegen and reference.
struct OrientVec {
  i32 c, s;
};
const std::array<OrientVec, kBins>& orient_vectors() {
  static const auto table = [] {
    std::array<OrientVec, kBins> t{};
    for (u32 k = 0; k < kBins; ++k) {
      const double a = static_cast<double>(k) * M_PI / kBins;
      t[k] = {static_cast<i32>(std::lround(std::cos(a) * 16384)),
              static_cast<i32>(std::lround(std::sin(a) * 16384))};
    }
    return t;
  }();
  return table;
}

// Register conventions for the kernel body.
constexpr u8 rY = 3, rX = 4, rGx = 5, rGy = 6, rV = 7, rBest = 8, rBin = 9,
             rT0 = 10, rT1 = 11, rT2 = 12, rT3 = 13, rInv = 14, rImg = 15,
             rHist = 16, rLo5 = 5, rHi6 = 6, rPh = 17, rPo = 18, rCnt = 19,
             rLoB = 20, rHiB = 21;

/// Subroutine: rV = floor(sqrt(rV)) for a non-negative 32-bit value.
/// Bit-by-bit method, 16 software iterations (no hardware loop: callers may
/// hold both loop slots). Clobbers rT0..rT3.
Builder::Label emit_isqrt32(Builder& bld) {
  const auto entry = bld.make_label();
  bld.bind(entry);
  bld.li(rT0, 0);   // root
  bld.li(rT1, 0);   // rem
  bld.li(rT2, 16);  // iterations
  const auto top = bld.make_label();
  bld.bind(top);
  bld.emit(Opcode::kSlli, rT0, rT0, 0, 1);   // root <<= 1
  bld.emit(Opcode::kSlli, rT1, rT1, 0, 2);   // rem <<= 2
  bld.emit(Opcode::kSrli, rT3, rV, 0, 30);   // top 2 bits of v
  bld.emit(Opcode::kOr, rT1, rT1, rT3);
  bld.emit(Opcode::kSlli, rV, rV, 0, 2);     // v <<= 2
  const auto no_bit = bld.make_label();
  bld.branch(Opcode::kBgeu, rT0, rT1, no_bit);  // skip unless root < rem
  bld.emit(Opcode::kAddi, rT3, rT0, 0, 1);
  bld.emit(Opcode::kSub, rT1, rT1, rT3);     // rem -= root + 1
  bld.emit(Opcode::kAddi, rT0, rT0, 0, 2);   // root += 2
  bld.bind(no_bit);
  bld.emit(Opcode::kAddi, rT2, rT2, 0, -1);
  bld.branch(Opcode::kBne, rT2, codegen::zero, top);
  bld.emit(Opcode::kSrli, rV, rT0, 0, 1);    // result = root >> 1
  bld.emit(Opcode::kJalr, 0, 31, 0);
  return entry;
}

void emit_hog_compute(Builder& bld, const OutlineRegs& regs,
                      const Layout& lay, u32 num_cores, bool cluster) {
  const auto after_subs = bld.make_label();
  bld.branch(Opcode::kBeq, codegen::zero, codegen::zero, after_subs);
  const auto isqrt = emit_isqrt32(bld);
  bld.bind(after_subs);

  bld.li(rImg, lay.img);
  bld.li(rHist, lay.hist);

  // ---- Phase 1: gradient histograms, cell rows chunked across cores.
  runtime::emit_static_bounds(bld, rLoB, rHiB, regs.core_id, kCells,
                              num_cores, rT0);
  const auto phase1_done = bld.make_label();
  bld.branch(Opcode::kBge, rLoB, rHiB, phase1_done);
  // y = max(8*lo, 1); ylim register holds min(8*hi, 127) recomputed below.
  bld.emit(Opcode::kSlli, rY, rLoB, 0, 3);
  const auto y_ok = bld.make_label();
  bld.branch(Opcode::kBne, rY, codegen::zero, y_ok);
  bld.li(rY, 1);
  bld.bind(y_ok);
  bld.emit(Opcode::kSlli, rHiB, rHiB, 0, 3);  // yend = 8*hi
  bld.li(rT0, 127);
  const auto yend_ok = bld.make_label();
  bld.branch(Opcode::kBge, rT0, rHiB, yend_ok);
  bld.mv(rHiB, rT0);
  bld.bind(yend_ok);

  const auto y_top = bld.make_label();
  bld.bind(y_top);
  bld.li(rX, 1);
  const auto x_top = bld.make_label();
  bld.bind(x_top);
  {
    // p = img + y*128 + x.
    bld.emit(Opcode::kSlli, rT0, rY, 0, 7);
    bld.emit(Opcode::kAdd, rT0, rT0, rX);
    bld.emit(Opcode::kAdd, rT0, rT0, rImg);
    bld.emit(Opcode::kLbu, rGx, rT0, 0, 1);      // img[y][x+1]
    bld.emit(Opcode::kLbu, rT1, rT0, 0, -1);     // img[y][x-1]
    bld.emit(Opcode::kSub, rGx, rGx, rT1);
    bld.emit(Opcode::kLbu, rGy, rT0, 0, kSide);  // img[y+1][x]
    bld.emit(Opcode::kLbu, rT1, rT0, 0, -static_cast<i32>(kSide));
    bld.emit(Opcode::kSub, rGy, rGy, rT1);

    // Orientation: bin = argmax_k |gx*cos_k + gy*sin_k| (unrolled).
    for (u32 k = 0; k < kBins; ++k) {
      const OrientVec& o = orient_vectors()[k];
      bld.li(rT0, static_cast<u32>(o.c));
      bld.emit(Opcode::kMul, rT0, rGx, rT0);
      bld.li(rT1, static_cast<u32>(o.s));
      bld.emit(Opcode::kMul, rT1, rGy, rT1);
      bld.emit(Opcode::kAdd, rT0, rT0, rT1);
      // |p|: t1 = p >> 31; p = (p ^ t1) - t1.
      bld.emit(Opcode::kSrai, rT1, rT0, 0, 31);
      bld.emit(Opcode::kXor, rT0, rT0, rT1);
      bld.emit(Opcode::kSub, rT0, rT0, rT1);
      if (k == 0) {
        bld.mv(rBest, rT0);
        bld.li(rBin, 0);
      } else {
        const auto not_better = bld.make_label();
        bld.branch(Opcode::kBge, rBest, rT0, not_better);
        bld.mv(rBest, rT0);
        bld.li(rBin, static_cast<u32>(k));
        bld.bind(not_better);
      }
    }

    // Magnitude = isqrt(gx^2 + gy^2).
    bld.emit(Opcode::kMul, rV, rGx, rGx);
    bld.emit(Opcode::kMul, rT0, rGy, rGy);
    bld.emit(Opcode::kAdd, rV, rV, rT0);
    bld.jal(31, isqrt);

    // hist[((y>>3)*16 + (x>>3))*9 + bin] += mag.
    bld.emit(Opcode::kSrai, rT0, rY, 0, 3);
    bld.emit(Opcode::kSlli, rT0, rT0, 0, 4);
    bld.emit(Opcode::kSrai, rT1, rX, 0, 3);
    bld.emit(Opcode::kAdd, rT0, rT0, rT1);
    bld.li(rT1, kBins);
    bld.emit(Opcode::kMul, rT0, rT0, rT1);
    bld.emit(Opcode::kAdd, rT0, rT0, rBin);
    bld.emit(Opcode::kSlli, rT0, rT0, 0, 2);
    bld.emit(Opcode::kAdd, rT0, rT0, rHist);
    bld.emit(Opcode::kLw, rT1, rT0, 0, 0);
    bld.emit(Opcode::kAdd, rT1, rT1, rV);
    bld.emit(Opcode::kSw, rT1, rT0, 0, 0);
  }
  bld.emit(Opcode::kAddi, rX, rX, 0, 1);
  bld.li(rT0, kSide - 1);
  bld.branch(Opcode::kBlt, rX, rT0, x_top);
  bld.emit(Opcode::kAddi, rY, rY, 0, 1);
  bld.branch(Opcode::kBlt, rY, rHiB, y_top);
  bld.bind(phase1_done);

  if (cluster) bld.barrier();

  // ---- Phase 2: block normalisation, block rows chunked across cores.
  runtime::emit_static_bounds(bld, rLoB, rHiB, regs.core_id, kBlocks,
                              num_cores, rT0);
  const auto phase2_done = bld.make_label();
  bld.branch(Opcode::kBge, rLoB, rHiB, phase2_done);
  bld.mv(rY, rLoB);  // by
  const auto by_top = bld.make_label();
  bld.bind(by_top);
  bld.li(rX, 0);  // bx
  const auto bx_top = bld.make_label();
  bld.bind(bx_top);
  {
    // 64-bit sum of squares over the four cells (software 64-bit: the
    // paper's "SW-emulated 64-bit variables for accumulation").
    bld.li(rLo5, 0);
    bld.li(rHi6, 0);
    for (u32 dy = 0; dy < 2; ++dy) {
      for (u32 dx = 0; dx < 2; ++dx) {
        // pH = hist + (((by+dy)*16 + bx+dx)*9)*4.
        bld.emit(Opcode::kAddi, rT0, rY, 0, static_cast<i32>(dy));
        bld.emit(Opcode::kSlli, rT0, rT0, 0, 4);
        bld.emit(Opcode::kAdd, rT0, rT0, rX);
        bld.emit(Opcode::kAddi, rT0, rT0, 0, static_cast<i32>(dx));
        bld.li(rT1, kBins * 4);
        bld.emit(Opcode::kMul, rT0, rT0, rT1);
        bld.emit(Opcode::kAdd, rPh, rT0, rHist);
        bld.li(rCnt, kBins);
        const auto sq_top = bld.make_label();
        bld.bind(sq_top);
        bld.lw_pi(rV, rPh, 4);
        bld.emit(Opcode::kMul, rT0, rV, rV);
        bld.add64(rLo5, rHi6, rT0, codegen::zero, rT1);
        bld.emit(Opcode::kAddi, rCnt, rCnt, 0, -1);
        bld.branch(Opcode::kBne, rCnt, codegen::zero, sq_top);
      }
    }
    // n = (isqrt((hi << 28) | (lo >> 4)) << 2) + 1; inv = 2^28 / n.
    bld.emit(Opcode::kSlli, rV, rHi6, 0, 28);
    bld.emit(Opcode::kSrli, rT0, rLo5, 0, 4);
    bld.emit(Opcode::kOr, rV, rV, rT0);
    bld.jal(31, isqrt);
    bld.emit(Opcode::kSlli, rV, rV, 0, 2);
    bld.emit(Opcode::kAddi, rV, rV, 0, 1);
    bld.li(rT0, 1 << 28);
    bld.emit(Opcode::kDivu, rInv, rT0, rV);

    // Emit the 36 normalised q32 values: out = q32_mul(v << 16, inv).
    // pOut = out + ((by*15 + bx)*36)*4.
    bld.li(rT0, kBlocks);
    bld.emit(Opcode::kMul, rT0, rY, rT0);
    bld.emit(Opcode::kAdd, rT0, rT0, rX);
    bld.li(rT1, kBlockDims * 4);
    bld.emit(Opcode::kMul, rT0, rT0, rT1);
    bld.li(rPo, lay.out);
    bld.emit(Opcode::kAdd, rPo, rPo, rT0);
    for (u32 dy = 0; dy < 2; ++dy) {
      for (u32 dx = 0; dx < 2; ++dx) {
        bld.emit(Opcode::kAddi, rT0, rY, 0, static_cast<i32>(dy));
        bld.emit(Opcode::kSlli, rT0, rT0, 0, 4);
        bld.emit(Opcode::kAdd, rT0, rT0, rX);
        bld.emit(Opcode::kAddi, rT0, rT0, 0, static_cast<i32>(dx));
        bld.li(rT1, kBins * 4);
        bld.emit(Opcode::kMul, rT0, rT0, rT1);
        bld.emit(Opcode::kAdd, rPh, rT0, rHist);
        bld.li(rCnt, kBins);
        const auto out_top = bld.make_label();
        bld.bind(out_top);
        bld.lw_pi(rV, rPh, 4);
        bld.emit(Opcode::kSlli, rV, rV, 0, 16);
        bld.q32_mul(rT0, rV, rInv, rT1, rT2, rT3, rGx);
        bld.sw_pi(rT0, rPo, 4);
        bld.emit(Opcode::kAddi, rCnt, rCnt, 0, -1);
        bld.branch(Opcode::kBne, rCnt, codegen::zero, out_top);
      }
    }
  }
  bld.emit(Opcode::kAddi, rX, rX, 0, 1);
  bld.li(rT0, kBlocks);
  bld.branch(Opcode::kBlt, rX, rT0, bx_top);
  bld.emit(Opcode::kAddi, rY, rY, 0, 1);
  bld.branch(Opcode::kBlt, rY, rHiB, by_top);
  bld.bind(phase2_done);
}

// ---------------------------------------------------------------------
// Golden reference.
// ---------------------------------------------------------------------

std::vector<u8> golden(const std::vector<u8>& img) {
  std::vector<i32> hist(kCells * kCells * kBins, 0);
  for (u32 y = 1; y < kSide - 1; ++y) {
    for (u32 x = 1; x < kSide - 1; ++x) {
      const i32 gx = static_cast<i32>(img[y * kSide + x + 1]) -
                     static_cast<i32>(img[y * kSide + x - 1]);
      const i32 gy = static_cast<i32>(img[(y + 1) * kSide + x]) -
                     static_cast<i32>(img[(y - 1) * kSide + x]);
      u32 bin = 0;
      i32 best = -1;
      for (u32 k = 0; k < kBins; ++k) {
        const OrientVec& o = orient_vectors()[k];
        const i32 p = gx * o.c + gy * o.s;
        const i32 ap = p < 0 ? -p : p;
        if (ap > best) {
          best = ap;
          bin = k;
        }
      }
      const u32 mag =
          isqrt64(static_cast<u64>(static_cast<i64>(gx) * gx + gy * gy));
      hist[((y >> 3) * kCells + (x >> 3)) * kBins + bin] +=
          static_cast<i32>(mag);
    }
  }
  std::vector<u8> out(kOutBytes);
  size_t oidx = 0;
  for (u32 by = 0; by < kBlocks; ++by) {
    for (u32 bx = 0; bx < kBlocks; ++bx) {
      u64 norm2 = 0;
      for (u32 dy = 0; dy < 2; ++dy) {
        for (u32 dx = 0; dx < 2; ++dx) {
          for (u32 b = 0; b < kBins; ++b) {
            const u32 v = static_cast<u32>(
                hist[((by + dy) * kCells + bx + dx) * kBins + b]);
            norm2 += static_cast<u64>(v) * v;
          }
        }
      }
      const u32 ns2 = static_cast<u32>(norm2 >> 4);
      const u32 n = (isqrt64(ns2) << 2) + 1;
      const u32 inv = (1u << 28) / n;
      for (u32 dy = 0; dy < 2; ++dy) {
        for (u32 dx = 0; dx < 2; ++dx) {
          for (u32 b = 0; b < kBins; ++b) {
            const i32 v =
                hist[((by + dy) * kCells + bx + dx) * kBins + b];
            const i64 prod = static_cast<i64>(v << 16) *
                             static_cast<i64>(static_cast<i32>(inv));
            const i32 q = static_cast<i32>(prod >> 16);
            for (int byi = 0; byi < 4; ++byi) {
              out[oidx++] = static_cast<u8>(q >> (8 * byi));
            }
          }
        }
      }
    }
  }
  return out;
}

}  // namespace

KernelCase make_hog(const core::CoreFeatures& features, u32 num_cores,
                    Target target, u64 seed) {
  Rng rng(seed);
  KernelCase kc;
  kc.name = "hog";
  kc.input.resize(kImgBytes);
  for (auto& b : kc.input) b = static_cast<u8>(rng.next_u32());
  kc.expected = golden(kc.input);
  kc.output_bytes = kOutBytes;

  const bool cluster = target == Target::kCluster;
  Layout lay;
  if (cluster) {
    lay.img = memmap::kTcdmBase;
    lay.hist = lay.img + kImgBytes;
    lay.out = lay.hist + kHistBytes;
  } else {
    lay.img = kFlatInputAddr;
    lay.hist = kFlatScratchAddr;
    lay.out = kFlatOutputAddr;
  }

  auto compute = [&](Builder& bld, const OutlineRegs& regs) {
    emit_hog_compute(bld, regs, lay, cluster ? num_cores : 1, cluster);
  };
  if (cluster) {
    kc.input_addr = kL2InputAddr;
    kc.output_addr = kL2OutputAddr;
    kc.program = runtime::outline_target(
        features, {{kL2InputAddr, lay.img, kImgBytes}},
        {{lay.out, kL2OutputAddr, kOutBytes}}, compute);
  } else {
    kc.input_addr = lay.img;
    kc.output_addr = lay.out;
    kc.program = runtime::outline_flat(features, compute);
  }
  return kc;
}

}  // namespace ulp::kernels
