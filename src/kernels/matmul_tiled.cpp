// Tiled, DMA-streamed matrix multiplication with optional double buffering.
//
// The Table I kernels stage their whole working set once; this kernel
// demonstrates the paper's "traditional double buffering schemes ... to
// overlap data transfers with useful computation" (Section IV-B) *inside
// the simulated cluster*, not just in the analytic offload model:
//
//   C[128x64] = A[128x64] x Bt[64x64]'   (char data)
//
// Bt is resident in TCDM; A streams through it in 8 tiles of 16 rows. Two
// tile buffers ping-pong: while the cores compute tile t, the cluster DMA
// prefetches tile t+1 from L2 and writes tile t-1's results back. The
// sequential variant issues the same transfers but waits for them eagerly,
// so the difference in measured cycles is exactly the overlap win.
//
// Flow per tile (core 0 drives the DMA, barriers rendezvous all cores):
//   wait DMA idle            (tile t input ready, tile t-1 output flushed)
//   start prefetch of t+1 and write-back of t-1   [double-buffered only]
//   barrier; all cores compute tile t; barrier
//   sequential only: start + await write-back of t
#include "kernels/kernel.hpp"

#include "codegen/builder.hpp"
#include "common/rng.hpp"
#include "runtime/outliner.hpp"

namespace ulp::kernels {
namespace {

using codegen::Builder;
using isa::Opcode;

constexpr u32 kRows = 128;
constexpr u32 kN = 64;        // columns of A / side of Bt
constexpr u32 kTileRows = 16;
constexpr u32 kTiles = kRows / kTileRows;
constexpr u32 kTileBytes = kTileRows * kN;  // char elements

struct Layout {
  Addr bt = 0;       // resident Bt, kN*kN
  Addr a_buf[2];     // ping-pong input tiles
  Addr c_buf[2];     // ping-pong output tiles
  Addr l2_a = 0;     // streamed source in L2
  Addr l2_c = 0;     // streamed destination in L2
};

/// Compute subroutine: rows [r3, r4) of the current tile; r24 = A-tile
/// base, r25 = C-tile base. Clobbers r5..r14, r20..r22. Returns via r31.
Builder::Label emit_tile_compute(Builder& bld, const Layout& lay) {
  const auto entry = bld.make_label();
  bld.bind(entry);
  const bool simd = bld.features().has_simd;
  const u8 rPa = 5, rPb = 6, rPc = 7, rRows = 8, rJ = 9, rAcc = 10, rVa = 12,
           rVb = 13, rT = 14;
  const auto done = bld.make_label();
  bld.branch(Opcode::kBge, 3, 4, done);
  // pA = a_base + lo*kN ; pC = c_base + lo*kN ; rows = hi - lo.
  bld.li(20, kN);
  bld.emit(Opcode::kMul, 21, 3, 20);
  bld.emit(Opcode::kAdd, rPa, 24, 21);
  bld.emit(Opcode::kAdd, rPc, 25, 21);
  bld.emit(Opcode::kSub, rRows, 4, 3);
  const auto rows_top = bld.make_label();
  bld.bind(rows_top);
  bld.li(rPb, lay.bt);
  bld.li(rJ, kN);
  bld.loop(rJ, 21, [&] {
    bld.li(rAcc, 0);
    if (simd) {
      bld.loop_hot(kN / 4, 22, [&] {
        bld.lw_pi(rVa, rPa, 4);
        bld.lw_pi(rVb, rPb, 4);
        bld.emit(Opcode::kDotp4b, rAcc, rVa, rVb);
      });
    } else {
      bld.loop_hot(kN, 22, [&] {
        bld.lb_pi(rVa, rPa, 1);
        bld.lb_pi(rVb, rPb, 1);
        bld.mac(rAcc, rVa, rVb, rT);
      });
    }
    bld.sb_pi(rAcc, rPc, 1);
    bld.emit(Opcode::kAddi, rPa, rPa, 0, -static_cast<i32>(kN));
  });
  bld.emit(Opcode::kAddi, rPa, rPa, 0, kN);
  bld.emit(Opcode::kAddi, rRows, rRows, 0, -1);
  bld.branch(Opcode::kBne, rRows, codegen::zero, rows_top);
  bld.bind(done);
  bld.emit(Opcode::kJalr, 0, 30, 0);  // link register for this subroutine
  return entry;
}

/// Core-0-only DMA helper: start src->dst of len bytes (immediates).
void emit_dma(Builder& bld, Addr src, Addr dst, u32 len) {
  bld.li(26, src);
  bld.li(27, dst);
  bld.li(28, len);
  bld.dma_start(/*base=*/29, 26, 27, 28);
}

isa::Program build_tiled(const core::CoreFeatures& features, u32 num_cores,
                         const Layout& lay, bool double_buffered) {
  Builder bld(features);
  const auto after_subs = bld.make_label();
  bld.branch(Opcode::kBeq, codegen::zero, codegen::zero, after_subs);
  const auto compute = emit_tile_compute(bld, lay);
  bld.bind(after_subs);

  bld.csr_coreid(1);
  bld.csr_numcores(2);
  // Static bounds over the tile's rows are tile-invariant.
  runtime::emit_static_bounds(bld, 3, 4, 1, kTileRows, num_cores, 20);

  const auto core0_skip0 = bld.make_label();
  bld.branch(Opcode::kBne, 1, codegen::zero, core0_skip0);
  // Resident Bt plus the first input tile.
  emit_dma(bld, lay.l2_a + kRows * kN, lay.bt, kN * kN);
  emit_dma(bld, lay.l2_a, lay.a_buf[0], kTileBytes);
  bld.bind(core0_skip0);

  for (u32 t = 0; t < kTiles; ++t) {
    const u32 cur = t % 2;
    const auto skip = bld.make_label();
    bld.branch(Opcode::kBne, 1, codegen::zero, skip);
    // Tile t's input (and t-1's writeback) must have landed.
    bld.dma_wait(/*base=*/29, /*tmp=*/26);
    if (double_buffered) {
      // Kick the background transfers for the next round *before* compute.
      if (t + 1 < kTiles) {
        emit_dma(bld, lay.l2_a + (t + 1) * kTileBytes, lay.a_buf[1 - cur],
                 kTileBytes);
      }
      if (t >= 1) {
        emit_dma(bld, lay.c_buf[1 - cur], lay.l2_c + (t - 1) * kTileBytes,
                 kTileBytes);
      }
    }
    bld.bind(skip);
    bld.barrier();
    bld.li(24, lay.a_buf[cur]);
    bld.li(25, lay.c_buf[cur]);
    bld.jal(30, compute);
    bld.barrier();
    if (!double_buffered) {
      const auto skip2 = bld.make_label();
      bld.branch(Opcode::kBne, 1, codegen::zero, skip2);
      emit_dma(bld, lay.c_buf[cur], lay.l2_c + t * kTileBytes, kTileBytes);
      bld.dma_wait(/*base=*/29, /*tmp=*/26);
      if (t + 1 < kTiles) {
        emit_dma(bld, lay.l2_a + (t + 1) * kTileBytes, lay.a_buf[1 - cur],
                 kTileBytes);
      }
      bld.bind(skip2);
    }
  }
  // Flush the final tile (double-buffered path) and finish.
  const auto not_zero = bld.make_label();
  bld.branch(Opcode::kBne, 1, codegen::zero, not_zero);
  if (double_buffered) {
    bld.dma_wait(29, 26);
    emit_dma(bld, lay.c_buf[(kTiles - 1) % 2],
             lay.l2_c + (kTiles - 1) * kTileBytes, kTileBytes);
  }
  bld.dma_wait(29, 26);
  bld.eoc();
  bld.bind(not_zero);
  bld.halt();
  return bld.finalize();
}

}  // namespace

KernelCase make_matmul_tiled(const core::CoreFeatures& features,
                             u32 num_cores, u64 seed, bool double_buffered) {
  Rng rng(seed);
  KernelCase kc;
  kc.name = double_buffered ? "matmul-tiled (dbuf)" : "matmul-tiled (seq)";
  // Input layout in L2: A (kRows x kN) followed by Bt (kN x kN).
  kc.input.resize(kRows * kN + kN * kN);
  for (auto& b : kc.input) b = static_cast<u8>(rng.uniform(-128, 127));
  kc.output_bytes = kRows * kN;

  // Golden: plain char matmul with wrap-around accumulation.
  kc.expected.resize(kc.output_bytes);
  const u8* a = kc.input.data();
  const u8* bt = kc.input.data() + kRows * kN;
  for (u32 i = 0; i < kRows; ++i) {
    for (u32 j = 0; j < kN; ++j) {
      u32 acc = 0;
      for (u32 k = 0; k < kN; ++k) {
        acc += static_cast<u32>(static_cast<i8>(a[i * kN + k])) *
               static_cast<u32>(static_cast<i8>(bt[j * kN + k]));
      }
      kc.expected[i * kN + j] = static_cast<u8>(acc);
    }
  }

  Layout lay;
  lay.bt = memmap::kTcdmBase;
  lay.a_buf[0] = lay.bt + kN * kN;
  lay.a_buf[1] = lay.a_buf[0] + kTileBytes;
  lay.c_buf[0] = lay.a_buf[1] + kTileBytes;
  lay.c_buf[1] = lay.c_buf[0] + kTileBytes;
  lay.l2_a = kL2InputAddr;
  lay.l2_c = kL2OutputAddr;
  kc.input_addr = kL2InputAddr;
  kc.output_addr = kL2OutputAddr;
  kc.program = build_tiled(features, num_cores, lay, double_buffered);
  return kc;
}

}  // namespace ulp::kernels
