// Convolutional Neural Network kernels (Table I rows 8-9).
//
// A from-scratch fixed-point (Q4.11) ConvNet in the spirit of the paper's
// CConvNet-based benchmark: 32x32 input image, two 5x5 convolution layers
// with tanh activations and 2x2 average pooling, and a fully connected
// layer producing 10 raw 32-bit scores (the paper's 40 B output).
//
//   cnn:          conv1(1->4, 5x5) -> tanh -> pool2x2
//                 conv2(4->8, 5x5) -> tanh -> pool2x2
//                 fc(200 -> 10)
//   cnn (approx): the "approximated" variant — stride-2 convolutions fuse
//                 the pooling, and activations become a cheap hard clamp to
//                 [-1, 1]; fewer operations, same interface (the paper's
//                 2.6M vs 3.3M RISC-op ratio).
//
// All multiplies carry the per-product Q4.11 shift (fixed-point group of
// Figure 4). Weights ship as initialised data segments of the binary; the
// tanh LUT is shared with common/lut.hpp so golden and generated code agree
// bit-for-bit.
//
// Parallelisation: output feature maps round-robin across cores for the
// conv layers, output neurons chunked for the FC layer, with cluster
// barriers between layers.
#include "kernels/kernel.hpp"

#include "codegen/builder.hpp"
#include "common/lut.hpp"
#include "common/rng.hpp"
#include "runtime/outliner.hpp"

namespace ulp::kernels {
namespace {

using codegen::Builder;
using isa::Opcode;
using runtime::OutlineRegs;

constexpr u32 kIn = 32;    // input image side
constexpr u32 kK = 5;      // kernel side
constexpr u32 kC1 = 4;     // conv1 output maps
constexpr u32 kC2 = 8;     // conv2 output maps
constexpr u32 kOut = 10;   // classes

// Standard variant geometry.
constexpr u32 kConv1Side = kIn - kK + 1;        // 28
constexpr u32 kPool1Side = kConv1Side / 2;      // 14
constexpr u32 kConv2Side = kPool1Side - kK + 1; // 10
constexpr u32 kPool2Side = kConv2Side / 2;      // 5
// Approx variant: stride-2 convolutions produce the pooled sizes directly.
constexpr u32 kApprox1Side = (kIn - kK) / 2 + 1;          // 14
constexpr u32 kApprox2Side = (kApprox1Side - kK) / 2 + 1; // 5

constexpr u32 kFcInputs = kC2 * kPool2Side * kPool2Side;  // 200

struct Layout {
  Addr image = 0;    // kIn^2 q16
  Addr maps1 = 0;    // conv1 activations (28^2 or 14^2 per map)
  Addr pool1 = 0;    // 14^2 per map (standard only)
  Addr maps2 = 0;    // 10^2 per map (standard only)
  Addr pool2 = 0;    // 5^2 per map
  Addr out = 0;      // 10 x i32
  Addr w1 = 0;       // conv1 weights: kC1 x 25 + kC1 bias
  Addr w2 = 0;       // conv2 weights: kC2 x kC1 x 25 + kC2 bias
  Addr wfc = 0;      // fc weights: kOut x 200 + kOut bias
  Addr lut = 0;      // tanh LUT
};

// Register map: r3..r19 kernel locals, r20..r22 loop scratch.
constexpr u8 rAcc = 3, rPin = 4, rPw = 5, rPout = 6, rX = 7, rW = 8, rT = 9,
             rKy = 10, rOx = 11, rOy = 12, rT2 = 13, rLut = 14, rBias = 15,
             rLo = 16, rHi = 17, rCnt = 18, rT3 = 19;

/// acc (raw q16 sum, i32) -> activation in rAcc.
/// tanh: symmetric LUT lookup; approx: hard clamp to [-2048, 2047].
void emit_activation(Builder& bld, bool approx) {
  if (approx) {
    const auto not_high = bld.make_label();
    const auto done = bld.make_label();
    bld.li(rT, 2047);
    bld.branch(Opcode::kBge, rT, rAcc, not_high);
    bld.mv(rAcc, rT);
    bld.branch(Opcode::kBeq, codegen::zero, codegen::zero, done);
    bld.bind(not_high);
    bld.li(rT, -2048);
    bld.branch(Opcode::kBge, rAcc, rT, done);
    bld.mv(rAcc, rT);
    bld.bind(done);
    return;
  }
  // Signed tanh LUT: index = min(|acc| >> 4, 511), negate for acc < 0.
  const auto nonneg = bld.make_label();
  const auto lookup = bld.make_label();
  const auto done = bld.make_label();
  bld.branch(Opcode::kBge, rAcc, codegen::zero, nonneg);
  bld.emit(Opcode::kSub, rAcc, codegen::zero, rAcc);
  bld.li(rT2, 1);  // negate flag
  bld.branch(Opcode::kBeq, codegen::zero, codegen::zero, lookup);
  bld.bind(nonneg);
  bld.li(rT2, 0);
  bld.bind(lookup);
  bld.emit(Opcode::kSrai, rAcc, rAcc, 0, 4);
  bld.li(rT, 511);
  const auto in_range = bld.make_label();
  bld.branch(Opcode::kBge, rT, rAcc, in_range);
  bld.mv(rAcc, rT);
  bld.bind(in_range);
  bld.emit(Opcode::kSlli, rAcc, rAcc, 0, 1);
  bld.emit(Opcode::kAdd, rAcc, rAcc, rLut);
  bld.emit(Opcode::kLh, rAcc, rAcc, 0, 0);
  bld.branch(Opcode::kBeq, rT2, codegen::zero, done);
  bld.emit(Opcode::kSub, rAcc, codegen::zero, rAcc);
  bld.bind(done);
}

/// One convolution layer: out maps assigned round-robin to cores.
/// in: `num_in` maps of `in_side`^2 at in_base (contiguous maps);
/// out: `num_out` maps of out_side^2 at out_base; weights at w_base:
/// per out map: num_in * 25 q16 taps, then all biases at the tail.
void emit_conv_layer(Builder& bld, const OutlineRegs& regs, u32 num_cores,
                     Addr in_base, u32 in_side, u32 num_in, Addr out_base,
                     u32 num_out, Addr w_base, u32 stride, bool approx) {
  const u32 out_side = (in_side - kK) / stride + 1;
  const u32 taps = num_in * kK * kK;
  const Addr bias_base = w_base + num_out * taps * 2;

  for (u32 m = 0; m < num_out; ++m) {
    const auto skip = bld.make_label();
    bld.li(rT, m % num_cores);
    bld.branch(Opcode::kBne, regs.core_id, rT, skip);

    // Load this map's bias once.
    bld.li(rT, bias_base + m * 2);
    bld.emit(Opcode::kLh, rBias, rT, 0, 0);
    bld.li(rPout, out_base + m * out_side * out_side * 2);

    // oy and ox are explicit software loops whose down-counters double as
    // coordinates (hardware-loop counters are architecturally invisible);
    // the hot 5x5 tap loop gets hardware slot 0.
    bld.li(rOy, out_side);
    const auto oy_top = bld.make_label();
    bld.bind(oy_top);
    bld.li(rOx, out_side);
    const auto ox_top = bld.make_label();
    bld.bind(ox_top);
    bld.mv(rAcc, rBias);
    // pW for this out map; pIn positioned per (im, oy, ox) below.
    bld.li(rPw, w_base + m * taps * 2);
    for (u32 im = 0; im < num_in; ++im) {
      // pIn = in_base + im*in_side^2*2 + ((out_side - oy)*stride*in_side
      //       + (out_side - ox)*stride)*2 ; oy/ox count DOWN from out_side.
      bld.li(rT, out_side);
      bld.emit(Opcode::kSub, rT, rT, rOy);  // row index
      if (stride == 2) bld.emit(Opcode::kSlli, rT, rT, 0, 1);
      bld.li(rT2, in_side * 2);
      bld.emit(Opcode::kMul, rT, rT, rT2);
      bld.li(rT2, out_side);
      bld.emit(Opcode::kSub, rT2, rT2, rOx);  // col index
      if (stride == 2) bld.emit(Opcode::kSlli, rT2, rT2, 0, 1);
      bld.emit(Opcode::kSlli, rT2, rT2, 0, 1);
      bld.emit(Opcode::kAdd, rT, rT, rT2);
      bld.li(rPin, in_base + im * in_side * in_side * 2);
      bld.emit(Opcode::kAdd, rPin, rPin, rT);
      bld.loop_hot(kK, 20, [&] {
        for (u32 kx = 0; kx < kK; ++kx) {
          bld.lh_pi(rX, rPin, 2);
          bld.lh_pi(rW, rPw, 2);
          bld.emit(Opcode::kMul, rT, rX, rW);
          bld.emit(Opcode::kSrai, rT, rT, 0, 11);
          bld.emit(Opcode::kAdd, rAcc, rAcc, rT);
        }
        bld.emit(Opcode::kAddi, rPin, rPin, 0,
                 static_cast<i32>((in_side - kK) * 2));
      }, /*unroll=*/kK);
    }
    emit_activation(bld, approx);
    bld.sh_pi(rAcc, rPout, 2);
    bld.emit(Opcode::kAddi, rOx, rOx, 0, -1);
    bld.branch(Opcode::kBne, rOx, codegen::zero, ox_top);
    bld.emit(Opcode::kAddi, rOy, rOy, 0, -1);
    bld.branch(Opcode::kBne, rOy, codegen::zero, oy_top);
    bld.bind(skip);
  }
}

/// 2x2 average pooling, maps round-robin across cores.
void emit_pool_layer(Builder& bld, const OutlineRegs& regs, u32 num_cores,
                     Addr in_base, u32 in_side, Addr out_base, u32 num_maps) {
  const u32 out_side = in_side / 2;
  for (u32 m = 0; m < num_maps; ++m) {
    const auto skip = bld.make_label();
    bld.li(rT, m % num_cores);
    bld.branch(Opcode::kBne, regs.core_id, rT, skip);
    bld.li(rPout, out_base + m * out_side * out_side * 2);
    bld.li(rOy, out_side);
    const auto oy_top = bld.make_label();
    bld.bind(oy_top);
    // pIn = in + m*in_side^2*2 + (out_side-oy)*2*in_side*2.
    bld.li(rT, out_side);
    bld.emit(Opcode::kSub, rT, rT, rOy);
    bld.li(rT2, in_side * 4);
    bld.emit(Opcode::kMul, rT, rT, rT2);
    bld.li(rPin, in_base + m * in_side * in_side * 2);
    bld.emit(Opcode::kAdd, rPin, rPin, rT);
    bld.li(rOx, out_side);
    bld.loop(rOx, 20, [&] {
      bld.lh_pi(rX, rPin, 2);
      bld.lh_pi(rW, rPin, static_cast<i32>(in_side * 2) - 2);
      bld.emit(Opcode::kAdd, rAcc, rX, rW);
      bld.lh_pi(rX, rPin, 2);
      bld.lh_pi(rW, rPin, -static_cast<i32>(in_side * 2) + 2);
      bld.emit(Opcode::kAdd, rX, rX, rW);
      bld.emit(Opcode::kAdd, rAcc, rAcc, rX);
      bld.emit(Opcode::kSrai, rAcc, rAcc, 0, 2);
      bld.sh_pi(rAcc, rPout, 2);
    });
    bld.emit(Opcode::kAddi, rOy, rOy, 0, -1);
    bld.branch(Opcode::kBne, rOy, codegen::zero, oy_top);
    bld.bind(skip);
  }
}

/// Fully connected layer: neurons chunked across cores; i32 raw outputs.
void emit_fc_layer(Builder& bld, const OutlineRegs& regs, u32 num_cores,
                   Addr in_base, Addr out_base, Addr w_base) {
  const Addr bias_base = w_base + kOut * kFcInputs * 2;
  runtime::emit_static_bounds(bld, rLo, rHi, regs.core_id, kOut, num_cores,
                              20);
  const auto done = bld.make_label();
  bld.branch(Opcode::kBge, rLo, rHi, done);
  bld.emit(Opcode::kSub, rCnt, rHi, rLo);
  // pW = w + lo*200*2; pOut = out + lo*4; pBias = bias + lo*2.
  bld.li(rT, kFcInputs * 2);
  bld.emit(Opcode::kMul, rT, rLo, rT);
  bld.li(rPw, w_base);
  bld.emit(Opcode::kAdd, rPw, rPw, rT);
  bld.emit(Opcode::kSlli, rT, rLo, 0, 2);
  bld.li(rPout, out_base);
  bld.emit(Opcode::kAdd, rPout, rPout, rT);
  bld.emit(Opcode::kSlli, rT, rLo, 0, 1);
  bld.li(rT3, bias_base);
  bld.emit(Opcode::kAdd, rT3, rT3, rT);

  const auto o_top = bld.make_label();
  bld.bind(o_top);
  bld.emit(Opcode::kLh, rAcc, rT3, 0, 0);
  bld.emit(Opcode::kAddi, rT3, rT3, 0, 2);
  bld.li(rPin, in_base);
  bld.loop_hot(kFcInputs, 20, [&] {
    bld.lh_pi(rX, rPin, 2);
    bld.lh_pi(rW, rPw, 2);
    bld.emit(Opcode::kMul, rT, rX, rW);
    bld.emit(Opcode::kSrai, rT, rT, 0, 11);
    bld.emit(Opcode::kAdd, rAcc, rAcc, rT);
  });
  bld.sw_pi(rAcc, rPout, 4);
  bld.emit(Opcode::kAddi, rCnt, rCnt, 0, -1);
  bld.branch(Opcode::kBne, rCnt, codegen::zero, o_top);
  bld.bind(done);
}

void emit_cnn_compute(Builder& bld, const OutlineRegs& regs,
                      const Layout& lay, bool approx, u32 num_cores,
                      bool cluster) {
  if (!approx) bld.li(rLut, lay.lut);
  if (approx) {
    emit_conv_layer(bld, regs, num_cores, lay.image, kIn, 1, lay.pool1, kC1,
                    lay.w1, /*stride=*/2, approx);
    if (cluster) bld.barrier();
    emit_conv_layer(bld, regs, num_cores, lay.pool1, kApprox1Side, kC1,
                    lay.pool2, kC2, lay.w2, /*stride=*/2, approx);
    if (cluster) bld.barrier();
  } else {
    emit_conv_layer(bld, regs, num_cores, lay.image, kIn, 1, lay.maps1, kC1,
                    lay.w1, /*stride=*/1, approx);
    if (cluster) bld.barrier();
    emit_pool_layer(bld, regs, num_cores, lay.maps1, kConv1Side, lay.pool1,
                    kC1);
    if (cluster) bld.barrier();
    emit_conv_layer(bld, regs, num_cores, lay.pool1, kPool1Side, kC1,
                    lay.maps2, kC2, lay.w2, /*stride=*/1, approx);
    if (cluster) bld.barrier();
    emit_pool_layer(bld, regs, num_cores, lay.maps2, kConv2Side, lay.pool2,
                    kC2);
    if (cluster) bld.barrier();
  }
  emit_fc_layer(bld, regs, num_cores, lay.pool2, lay.out, lay.wfc);
}

// ---------------------------------------------------------------------
// Golden reference (bit-exact mirror of the generated arithmetic).
// ---------------------------------------------------------------------

struct Weights {
  std::vector<i16> w1, b1, w2, b2, wfc, bfc;
};

Weights make_weights(u64 seed) {
  Rng rng(seed ^ 0xC0FFEE);
  Weights w;
  auto fill = [&](std::vector<i16>& v, size_t n, i32 lim) {
    v.resize(n);
    for (auto& x : v) x = static_cast<i16>(rng.uniform(-lim, lim));
  };
  fill(w.w1, kC1 * kK * kK, 600);
  fill(w.b1, kC1, 400);
  fill(w.w2, kC2 * kC1 * kK * kK, 300);
  fill(w.b2, kC2, 400);
  fill(w.wfc, kOut * kFcInputs, 300);
  fill(w.bfc, kOut, 400);
  return w;
}

i16 activate_ref(i32 acc, bool approx, const Lut16& lut) {
  if (approx) return static_cast<i16>(std::clamp<i32>(acc, -2048, 2047));
  return tanh_lut_signed(lut, acc);
}

/// Reference convolution identical in structure to the emitted one.
std::vector<i16> conv_ref(const std::vector<i16>& in, u32 in_side, u32 num_in,
                          const std::vector<i16>& w, const std::vector<i16>& b,
                          u32 num_out, u32 stride, bool approx,
                          const Lut16& lut) {
  const u32 out_side = (in_side - kK) / stride + 1;
  std::vector<i16> out(num_out * out_side * out_side);
  for (u32 m = 0; m < num_out; ++m) {
    for (u32 oy = 0; oy < out_side; ++oy) {
      for (u32 ox = 0; ox < out_side; ++ox) {
        i32 acc = b[m];
        for (u32 im = 0; im < num_in; ++im) {
          for (u32 ky = 0; ky < kK; ++ky) {
            for (u32 kx = 0; kx < kK; ++kx) {
              const i32 x = in[im * in_side * in_side +
                               (oy * stride + ky) * in_side + ox * stride +
                               kx];
              const i32 ww =
                  w[(m * num_in + im) * kK * kK + ky * kK + kx];
              acc += (x * ww) >> 11;
            }
          }
        }
        out[m * out_side * out_side + oy * out_side + ox] =
            activate_ref(acc, approx, lut);
      }
    }
  }
  return out;
}

std::vector<i16> pool_ref(const std::vector<i16>& in, u32 in_side,
                          u32 num_maps) {
  const u32 out_side = in_side / 2;
  std::vector<i16> out(num_maps * out_side * out_side);
  for (u32 m = 0; m < num_maps; ++m) {
    for (u32 oy = 0; oy < out_side; ++oy) {
      for (u32 ox = 0; ox < out_side; ++ox) {
        const auto at = [&](u32 dy, u32 dx) -> i32 {
          return in[m * in_side * in_side + (2 * oy + dy) * in_side +
                    2 * ox + dx];
        };
        const i32 sum = at(0, 0) + at(0, 1) + at(1, 0) + at(1, 1);
        out[m * out_side * out_side + oy * out_side + ox] =
            static_cast<i16>(sum >> 2);
      }
    }
  }
  return out;
}

std::vector<u8> golden(const std::vector<u8>& input, const Weights& w,
                       bool approx, const Lut16& lut) {
  std::vector<i16> img(kIn * kIn);
  for (size_t i = 0; i < img.size(); ++i) {
    img[i] = static_cast<i16>(static_cast<u16>(input[2 * i]) |
                              static_cast<u16>(input[2 * i + 1]) << 8);
  }
  std::vector<i16> pooled2;
  if (approx) {
    const auto l1 = conv_ref(img, kIn, 1, w.w1, w.b1, kC1, 2, true, lut);
    pooled2 = conv_ref(l1, kApprox1Side, kC1, w.w2, w.b2, kC2, 2, true, lut);
  } else {
    const auto l1 = conv_ref(img, kIn, 1, w.w1, w.b1, kC1, 1, false, lut);
    const auto p1 = pool_ref(l1, kConv1Side, kC1);
    const auto l2 = conv_ref(p1, kPool1Side, kC1, w.w2, w.b2, kC2, 1, false,
                             lut);
    pooled2 = pool_ref(l2, kConv2Side, kC2);
  }
  std::vector<u8> out(kOut * 4);
  for (u32 o = 0; o < kOut; ++o) {
    i32 acc = w.bfc[o];
    for (u32 k = 0; k < kFcInputs; ++k) {
      acc += (static_cast<i32>(pooled2[k]) * w.wfc[o * kFcInputs + k]) >> 11;
    }
    for (int b = 0; b < 4; ++b) {
      out[o * 4 + static_cast<u32>(b)] = static_cast<u8>(acc >> (8 * b));
    }
  }
  return out;
}

std::vector<u8> to_bytes(const std::vector<i16>& v) {
  std::vector<u8> out(v.size() * 2);
  for (size_t i = 0; i < v.size(); ++i) {
    out[2 * i] = static_cast<u8>(v[i]);
    out[2 * i + 1] = static_cast<u8>(v[i] >> 8);
  }
  return out;
}

KernelCase make_cnn_impl(bool approx, const char* name,
                         const core::CoreFeatures& features, u32 num_cores,
                         Target target, u64 seed) {
  const Lut16 lut = make_tanh_lut();
  const Weights w = make_weights(seed);

  KernelCase kc;
  kc.name = name;
  Rng rng(seed);
  kc.input.resize(kIn * kIn * 2);
  for (size_t i = 0; i < kc.input.size(); i += 2) {
    const i32 v = rng.uniform(-2000, 2000);
    kc.input[i] = static_cast<u8>(v);
    kc.input[i + 1] = static_cast<u8>(v >> 8);
  }
  kc.expected = golden(kc.input, w, approx, lut);
  kc.output_bytes = kOut * 4;

  const bool cluster = target == Target::kCluster;
  Layout lay;
  Addr p = cluster ? memmap::kTcdmBase : kFlatInputAddr;
  auto alloc = [&](u32 bytes) {
    const Addr a = p;
    p += (bytes + 3) & ~3u;
    return a;
  };
  lay.image = alloc(kIn * kIn * 2);
  lay.maps1 = alloc(kC1 * kConv1Side * kConv1Side * 2);
  lay.pool1 = alloc(kC1 * kPool1Side * kPool1Side * 2);
  lay.maps2 = alloc(kC2 * kConv2Side * kConv2Side * 2);
  lay.pool2 = alloc(kC2 * kPool2Side * kPool2Side * 2);
  lay.out = cluster ? alloc(kOut * 4) : kFlatOutputAddr;
  lay.w1 = alloc((kC1 * kK * kK + kC1) * 2);
  lay.w2 = alloc((kC2 * kC1 * kK * kK + kC2) * 2);
  lay.wfc = alloc((kOut * kFcInputs + kOut) * 2);
  lay.lut = alloc(static_cast<u32>(lut.size_bytes()));

  auto compute = [&](Builder& bld, const OutlineRegs& regs) {
    emit_cnn_compute(bld, regs, lay, approx, cluster ? num_cores : 1,
                     cluster);
  };

  if (cluster) {
    kc.input_addr = kL2InputAddr;
    kc.output_addr = kL2OutputAddr;
    kc.program = runtime::outline_target(
        features, {{kL2InputAddr, lay.image, kIn * kIn * 2}},
        {{lay.out, kL2OutputAddr, kOut * 4}}, compute);
  } else {
    kc.input_addr = lay.image;
    kc.output_addr = lay.out;
    kc.program = runtime::outline_flat(features, compute);
  }

  // Weights + biases + LUT ship as data segments (part of the binary).
  auto concat = [&](const std::vector<i16>& a, const std::vector<i16>& b) {
    std::vector<i16> v = a;
    v.insert(v.end(), b.begin(), b.end());
    return to_bytes(v);
  };
  kc.program.data.push_back({lay.w1, concat(w.w1, w.b1)});
  kc.program.data.push_back({lay.w2, concat(w.w2, w.b2)});
  kc.program.data.push_back({lay.wfc, concat(w.wfc, w.bfc)});
  if (!approx) {
    std::vector<i16> lt(lut.table.begin(), lut.table.end());
    kc.program.data.push_back({lay.lut, to_bytes(lt)});
  }
  return kc;
}

}  // namespace

KernelCase make_cnn(const core::CoreFeatures& f, u32 nc, Target t, u64 seed) {
  return make_cnn_impl(false, "cnn", f, nc, t, seed);
}
KernelCase make_cnn_approx(const core::CoreFeatures& f, u32 nc, Target t,
                           u64 seed) {
  return make_cnn_impl(true, "cnn (approx)", f, nc, t, seed);
}

}  // namespace ulp::kernels
