// Strassen fast matrix multiplication (Table I row 4).
//
// One recursion level over a 64x64 char product: seven 32x32 block products
// M1..M7 plus block additions. All arithmetic is 8-bit wrap-around (Z/256),
// over which Strassen's identities are exact — the result is bit-identical
// to the direct char matmul, which is what the golden reference computes.
//
// Parallelisation: the seven block products are distributed round-robin
// across the cores (core c runs products p with p mod P == c), a barrier,
// then the four output quadrants are assembled, again round-robin. This has
// a real Amdahl component (7 products over 4 cores -> one core does two
// while the rest idle), visible in Figure 4 (right).
//
// The generated code uses jal/jalr subroutines — the only kernel that
// exercises the call path, deliberately.
#include "kernels/kernel.hpp"

#include "codegen/builder.hpp"
#include "common/rng.hpp"
#include "runtime/outliner.hpp"

namespace ulp::kernels {
namespace {

using codegen::Builder;
using isa::Opcode;
using runtime::OutlineRegs;

constexpr u32 kN = 64;   // full matrix
constexpr u32 kH = 32;   // block size

struct Layout {
  Addr a = 0;
  Addr bt = 0;
  Addr c = 0;
  Addr m = 0;   // M1..M7, compact 32x32, 1 KiB each
  Addr t = 0;   // per-product temp pairs T1/T2, compact, 2 KiB per product
};

// Register conventions inside the kernel body (r1/r2 reserved by outliner):
//   r3..r5  subroutine arguments, r31 link register,
//   r10..r19 subroutine locals, r20..r27 driver locals.

/// Subroutine: dst(compact) = srcA +/- srcB, 32x32 chars, sources with a
/// 64-byte row stride (blocks of A or Bt). args: r3=dst, r4=srcA, r5=srcB.
Builder::Label emit_addsub32(Builder& bld, bool subtract) {
  const auto entry = bld.make_label();
  bld.bind(entry);
  const bool simd = bld.features().has_simd;
  bld.li(10, kH);  // row counter
  bld.loop(10, 16, [&] {
    if (simd) {
      bld.loop_hot(kH / 4, 17, [&] {
        bld.lw_pi(12, 4, 4);
        bld.lw_pi(13, 5, 4);
        bld.emit(subtract ? Opcode::kSub4b : Opcode::kAdd4b, 14, 12, 13);
        bld.sw_pi(14, 3, 4);
      });
    } else {
      bld.loop_hot(kH, 17, [&] {
        bld.lb_pi(12, 4, 1);
        bld.lb_pi(13, 5, 1);
        bld.emit(subtract ? Opcode::kSub : Opcode::kAdd, 14, 12, 13);
        bld.sb_pi(14, 3, 1);
      });
    }
    // Sources advance to the next 64-byte row (32 consumed + 32 skip).
    bld.emit(Opcode::kAddi, 4, 4, 0, kH);
    bld.emit(Opcode::kAddi, 5, 5, 0, kH);
  });
  bld.emit(Opcode::kJalr, 0, 31, 0);
  return entry;
}

/// Subroutine: dst(compact) = src(strided 64), 32x32 chars. r3=dst, r4=src.
Builder::Label emit_copy32(Builder& bld) {
  const auto entry = bld.make_label();
  bld.bind(entry);
  bld.li(10, kH);
  bld.loop(10, 16, [&] {
    bld.loop_hot(kH / 4, 17, [&] {
      bld.lw_pi(12, 4, 4);
      bld.sw_pi(12, 3, 4);
    });
    bld.emit(Opcode::kAddi, 4, 4, 0, kH);
  });
  bld.emit(Opcode::kJalr, 0, 31, 0);
  return entry;
}

/// Subroutine: M(compact) = X(compact) * Yt(compact)', 32x32 chars.
/// r3=X, r4=Yt, r5=M.
Builder::Label emit_mult32(Builder& bld) {
  const auto entry = bld.make_label();
  bld.bind(entry);
  const bool simd = bld.features().has_simd;
  // Outer i loop is an explicit software loop so the hot j/k loops get the
  // two hardware-loop slots.
  bld.li(10, kH);
  const auto i_top = bld.make_label();
  bld.bind(i_top);
  bld.mv(15, 4);   // pB = Yt
  bld.li(11, kH);  // j loop
  bld.loop(11, 17, [&] {
    bld.li(12, 0);  // acc
    if (simd) {
      bld.loop_hot(kH / 4, 18, [&] {
        bld.lw_pi(14, 3, 4);
        bld.lw_pi(19, 15, 4);
        bld.emit(Opcode::kDotp4b, 12, 14, 19);
      });
    } else {
      bld.loop_hot(kH, 18, [&] {
        bld.lb_pi(14, 3, 1);
        bld.lb_pi(19, 15, 1);
        bld.mac(12, 14, 19, 9);
      });
    }
    bld.sb_pi(12, 5, 1);
    bld.emit(Opcode::kAddi, 3, 3, 0, -static_cast<i32>(kH));  // rewind X row
  });
  bld.emit(Opcode::kAddi, 3, 3, 0, kH);  // next X row
  bld.emit(Opcode::kAddi, 10, 10, 0, -1);
  bld.branch(Opcode::kBne, 10, codegen::zero, i_top);
  bld.emit(Opcode::kJalr, 0, 31, 0);
  return entry;
}

/// Block address helpers (row stride 64 bytes, char elements).
Addr blk(Addr base, u32 br, u32 bc) { return base + br * kH * kN + bc * kH; }

struct Subs {
  Builder::Label add32, sub32, copy32, mult32;
};

/// Emits the driver for one product M[p]: prepares T1/T2 (or copies single
/// blocks) and calls mult32. Operand spec: {sign, blocks} per side.
struct Side {
  // block0 +/- block1; if single is true only block0 (copied).
  Addr block0 = 0;
  Addr block1 = 0;
  bool single = false;
  bool subtract = false;
};

void emit_side(Builder& bld, const Subs& subs, const Side& s, Addr t_dst) {
  bld.li(3, t_dst);
  bld.li(4, s.block0);
  if (s.single) {
    bld.jal(31, subs.copy32);
    return;
  }
  bld.li(5, s.block1);
  bld.jal(31, s.subtract ? subs.sub32 : subs.add32);
}

/// Emits quadrant assembly: C[q] (strided) = sum of +/- M blocks (compact).
/// `terms` = (M index, sign). Clobbers r3..r6, r10..r14.
void emit_quadrant(Builder& bld, const Layout& lay, u32 br, u32 bc,
                   const std::vector<std::pair<u32, int>>& terms) {
  // Walk 32 rows; r3 = C row ptr, r4.. = M row ptrs kept in r20+.
  bld.li(3, blk(lay.c, br, bc));
  for (size_t i = 0; i < terms.size(); ++i) {
    bld.li(static_cast<u8>(20 + i), lay.m + terms[i].first * kH * kH);
  }
  bld.li(10, kH);
  bld.loop(10, 16, [&] {
    bld.li(11, kH);
    bld.loop(11, 17, [&] {
      bld.li(12, 0);
      for (size_t i = 0; i < terms.size(); ++i) {
        bld.lb_pi(13, static_cast<u8>(20 + i), 1);
        bld.emit(terms[i].second > 0 ? Opcode::kAdd : Opcode::kSub, 12, 12,
                 13);
      }
      bld.sb_pi(12, 3, 1);
    });
    bld.emit(Opcode::kAddi, 3, 3, 0, kH);  // skip to next strided C row
  });
}

void emit_strassen_compute(Builder& bld, const OutlineRegs& regs,
                           const Layout& lay, u32 num_cores, bool cluster) {
  // Skip over the subroutine bodies.
  const auto after_subs = bld.make_label();
  bld.branch(Opcode::kBeq, codegen::zero, codegen::zero, after_subs);
  Subs subs;
  subs.add32 = emit_addsub32(bld, /*subtract=*/false);
  subs.sub32 = emit_addsub32(bld, /*subtract=*/true);
  subs.copy32 = emit_copy32(bld);
  subs.mult32 = emit_mult32(bld);
  bld.bind(after_subs);

  const Addr a11 = blk(lay.a, 0, 0), a12 = blk(lay.a, 0, 1),
             a21 = blk(lay.a, 1, 0), a22 = blk(lay.a, 1, 1);
  const Addr b11 = blk(lay.bt, 0, 0), b12 = blk(lay.bt, 0, 1),
             b21 = blk(lay.bt, 1, 0), b22 = blk(lay.bt, 1, 1);
  // Note: bNM here are blocks of Bt; the side specs below already encode the
  // transposition (M3 uses Bt21-Bt22 for B12-B22, etc.).
  struct Product {
    Side x, y;
  };
  const Product products[7] = {
      {{a11, a22, false, false}, {b11, b22, false, false}},  // M1
      {{a21, a22, false, false}, {b11, 0, true, false}},     // M2
      {{a11, 0, true, false}, {b21, b22, false, true}},      // M3
      {{a22, 0, true, false}, {b12, b11, false, true}},      // M4
      {{a11, a12, false, false}, {b22, 0, true, false}},     // M5
      {{a21, a11, false, true}, {b11, b21, false, false}},   // M6
      {{a12, a22, false, true}, {b12, b22, false, false}},   // M7
  };

  // Round-robin product ownership: core c runs products p == c (mod P).
  for (u32 p = 0; p < 7; ++p) {
    const auto skip = bld.make_label();
    bld.li(27, p % num_cores);
    bld.branch(Opcode::kBne, regs.core_id, 27, skip);
    const Addr t1 = lay.t + p * 2 * kH * kH;
    const Addr t2 = t1 + kH * kH;
    emit_side(bld, subs, products[p].x, t1);
    emit_side(bld, subs, products[p].y, t2);
    bld.li(3, t1);
    bld.li(4, t2);
    bld.li(5, lay.m + p * kH * kH);
    bld.jal(31, subs.mult32);
    bld.bind(skip);
  }

  if (cluster) bld.barrier();

  // Quadrant assembly (M indices are 0-based).
  const std::vector<std::pair<u32, int>> quadrants[4] = {
      {{0, 1}, {3, 1}, {4, -1}, {6, 1}},  // C11 = M1+M4-M5+M7
      {{2, 1}, {4, 1}},                   // C12 = M3+M5
      {{1, 1}, {3, 1}},                   // C21 = M2+M4
      {{0, 1}, {1, -1}, {2, 1}, {5, 1}},  // C22 = M1-M2+M3+M6
  };
  for (u32 q = 0; q < 4; ++q) {
    const auto skip = bld.make_label();
    bld.li(27, q % num_cores);
    bld.branch(Opcode::kBne, regs.core_id, 27, skip);
    emit_quadrant(bld, lay, q / 2, q % 2, quadrants[q]);
    bld.bind(skip);
  }
}

std::vector<u8> golden_direct(const std::vector<u8>& input) {
  const u8* a = input.data();
  const u8* bt = input.data() + kN * kN;
  std::vector<u8> out(kN * kN);
  for (u32 i = 0; i < kN; ++i) {
    for (u32 j = 0; j < kN; ++j) {
      u32 acc = 0;
      for (u32 k = 0; k < kN; ++k) {
        acc += static_cast<u32>(static_cast<i8>(a[i * kN + k])) *
               static_cast<u32>(static_cast<i8>(bt[j * kN + k]));
      }
      out[i * kN + j] = static_cast<u8>(acc);
    }
  }
  return out;
}

}  // namespace

KernelCase make_strassen(const core::CoreFeatures& features, u32 num_cores,
                         Target target, u64 seed) {
  Rng rng(seed);
  KernelCase kc;
  kc.name = "strassen";
  kc.input.resize(2 * kN * kN);
  for (auto& b : kc.input) b = static_cast<u8>(rng.uniform(-128, 127));
  kc.expected = golden_direct(kc.input);
  kc.output_bytes = kN * kN;

  Layout lay;
  if (target == Target::kCluster) {
    lay.a = memmap::kTcdmBase;
    lay.bt = lay.a + kN * kN;
    lay.c = lay.bt + kN * kN;
    lay.m = lay.c + kN * kN;
    lay.t = lay.m + 7 * kH * kH;
    kc.input_addr = kL2InputAddr;
    kc.output_addr = kL2OutputAddr;
    kc.program = runtime::outline_target(
        features, {{kL2InputAddr, lay.a, 2 * kN * kN}},
        {{lay.c, kL2OutputAddr, kN * kN}},
        [&](Builder& bld, const OutlineRegs& regs) {
          emit_strassen_compute(bld, regs, lay, num_cores, /*cluster=*/true);
        });
  } else {
    lay.a = kFlatInputAddr;
    lay.bt = lay.a + kN * kN;
    lay.c = kFlatOutputAddr;
    lay.m = kFlatScratchAddr;
    lay.t = lay.m + 7 * kH * kH;
    kc.input_addr = kFlatInputAddr;
    kc.output_addr = kFlatOutputAddr;
    kc.program = runtime::outline_flat(
        features, [&](Builder& bld, const OutlineRegs& regs) {
          emit_strassen_compute(bld, regs, lay, /*num_cores=*/1,
                                /*cluster=*/false);
        });
  }
  return kc;
}

}  // namespace ulp::kernels
