#include "kernels/kernel.hpp"

namespace ulp::kernels {

const std::vector<KernelInfo>& all_kernels() {
  static const std::vector<KernelInfo> kTable = {
      {"matmul", "linear algebra", &make_matmul_char},
      {"matmul (short)", "linear algebra", &make_matmul_short},
      {"matmul (fixed)", "linear algebra", &make_matmul_fixed},
      {"strassen", "linear algebra", &make_strassen},
      {"svm (linear)", "learning / vision", &make_svm_linear},
      {"svm (poly)", "learning / vision", &make_svm_poly},
      {"svm (RBF)", "learning / vision", &make_svm_rbf},
      {"cnn", "learning / vision", &make_cnn},
      {"cnn (approx)", "learning / vision", &make_cnn_approx},
      {"hog", "vision", &make_hog},
  };
  return kTable;
}

}  // namespace ulp::kernels
