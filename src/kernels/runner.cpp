#include "kernels/runner.hpp"

#include "common/status.hpp"
#include "mem/bus.hpp"

namespace ulp::kernels {

RunOutcome run_on_cluster(const KernelCase& kc,
                          const core::CoreConfig& core_config, u32 num_cores,
                          const trace::Sinks& sinks,
                          const std::string& track_prefix,
                          profile::ClusterProfiler* profiler) {
  cluster::ClusterParams params;
  params.num_cores = num_cores;
  params.core_config = core_config;
  cluster::Cluster cl(params);
  if (sinks) cl.attach_trace(sinks, 1e9, track_prefix);
  if (profiler != nullptr) profiler->attach(cl);
  cl.load_program(kc.program);
  // Host-side deposit of the input payload into the L2 staging area (the
  // timed SPI path is modelled separately by the offload runtime).
  for (size_t i = 0; i < kc.input.size(); ++i) {
    cl.bus().debug_store(kc.input_addr + static_cast<Addr>(i), 1,
                         kc.input[i]);
  }
  RunOutcome out;
  out.cycles = cl.run();
  ULP_CHECK(cl.events().eoc(), "cluster kernel finished without EOC");
  out.output.resize(kc.output_bytes);
  for (size_t i = 0; i < kc.output_bytes; ++i) {
    out.output[i] = static_cast<u8>(
        cl.bus().debug_load(kc.output_addr + static_cast<Addr>(i), 1, false));
  }
  out.stats = cl.stats();
  if (profiler != nullptr) {
    profiler->capture();
    profiler->detach();  // the cluster dies with this scope
  }
  return out;
}

RunOutcome run_on_flat(const KernelCase& kc,
                       const core::CoreConfig& core_config) {
  mem::Sram sram(0, 512 * 1024);
  mem::SimpleBus bus(&sram, /*latency=*/1);
  core::Core cpu(0, 1, core_config, &bus);
  // Data segments (weights, LUTs) and the input payload.
  for (const isa::Segment& seg : kc.program.data) {
    for (size_t i = 0; i < seg.bytes.size(); ++i) {
      bus.debug_store(seg.addr + static_cast<Addr>(i), 1, seg.bytes[i]);
    }
  }
  for (size_t i = 0; i < kc.input.size(); ++i) {
    bus.debug_store(kc.input_addr + static_cast<Addr>(i), 1, kc.input[i]);
  }
  cpu.reset(&kc.program);
  cpu.run_to_halt();
  RunOutcome out;
  out.cycles = cpu.perf().cycles;
  out.output.resize(kc.output_bytes);
  for (size_t i = 0; i < kc.output_bytes; ++i) {
    out.output[i] = static_cast<u8>(
        bus.debug_load(kc.output_addr + static_cast<Addr>(i), 1, false));
  }
  out.stats.cycles = out.cycles;
  out.stats.cores.push_back(cpu.perf());
  return out;
}

u64 measure_risc_ops(const KernelInfo& info, u64 seed) {
  const core::CoreConfig cfg = core::baseline_config();
  const KernelCase kc = info.factory(cfg.features, 1, Target::kFlat, seed);
  mem::Sram sram(0, 512 * 1024);
  mem::SimpleBus bus(&sram, 1);
  core::Core cpu(0, 1, cfg, &bus);
  for (const isa::Segment& seg : kc.program.data) {
    for (size_t i = 0; i < seg.bytes.size(); ++i) {
      bus.debug_store(seg.addr + static_cast<Addr>(i), 1, seg.bytes[i]);
    }
  }
  for (size_t i = 0; i < kc.input.size(); ++i) {
    bus.debug_store(kc.input_addr + static_cast<Addr>(i), 1, kc.input[i]);
  }
  cpu.reset(&kc.program);
  cpu.run_to_halt();
  return cpu.perf().instrs;
}

}  // namespace ulp::kernels
