// Support Vector Machine classifier kernels (Table I rows 5-7).
//
// A from-scratch port of the libsvm decision function to Q4.11 fixed point,
// matching the paper's "C porting of libsvm working on 16-bit fixed-point
// data". For each test vector x: score = b + sum_i alpha_i * K(x, sv_i),
// with three kernels:
//   linear: K = <x, sv>
//   poly:   K = (gamma*<x, sv> + c)^3
//   RBF:    K = exp(-gamma * ||x - sv||^2), via the shared exp LUT
// Every multiply carries the Q4.11 per-product shift, so none of the MAC /
// dot-product units apply (the paper's explanation for the lower
// architectural speedup of the fixed-point group in Figure 4).
//
// Workload: 200 support vectors x 16 features, 32 test vectors, binary
// decision scores (the paper's SVM is multiclass with a ~1.6 kB output; the
// class count does not change the compute structure, only output size —
// recorded in EXPERIMENTS.md).
//
// Parallelisation: test vectors are chunked across cores.
#include "kernels/kernel.hpp"

#include "codegen/builder.hpp"
#include "common/lut.hpp"
#include "common/rng.hpp"
#include "runtime/outliner.hpp"

namespace ulp::kernels {
namespace {

using codegen::Builder;
using isa::Opcode;
using runtime::OutlineRegs;

enum class SvmKind { kLinear, kPoly, kRbf };

constexpr u32 kNumSv = 200;
constexpr u32 kDim = 16;
constexpr u32 kNumTest = 32;
constexpr i32 kGammaRaw = 128;   // 1/16 in Q4.11
constexpr i32 kCoefRaw = 1024;   // 0.5
constexpr i32 kBiasRaw = -217;   // arbitrary fixed bias

constexpr u32 kSvBytes = kNumSv * kDim * 2;
constexpr u32 kAlphaBytes = kNumSv * 2;
constexpr u32 kTestBytes = kNumTest * kDim * 2;
constexpr u32 kInBytes = kSvBytes + kAlphaBytes + kTestBytes;
constexpr u32 kOutBytes = kNumTest * 2;

struct Layout {
  Addr sv = 0;
  Addr alpha = 0;
  Addr test = 0;
  Addr out = 0;
  Addr lut = 0;  // RBF only
};

i16 rd16(const std::vector<u8>& v, size_t idx) {
  return static_cast<i16>(static_cast<u16>(v[2 * idx]) |
                          static_cast<u16>(v[2 * idx + 1]) << 8);
}

void emit_svm_compute(Builder& bld, const OutlineRegs& regs,
                      const Layout& lay, SvmKind kind, u32 num_cores) {
  const u8 r_lo = 3, r_hi = 4, r_psv = 5, r_pa = 6, r_pt = 7, r_tc = 8,
           r_ic = 9, r_score = 10, r_x = 12, r_s = 13, r_t = 14,
           r_acc = 15, r_pout = 16, r_lut = 17, r_t2 = 18;

  runtime::emit_static_bounds(bld, r_lo, r_hi, regs.core_id, kNumTest,
                              num_cores, 20);
  const auto done = bld.make_label();
  bld.branch(Opcode::kBge, r_lo, r_hi, done);

  // pT = test + lo*D*2, pOut = out + lo*2, tc = hi-lo.
  bld.li(20, kDim * 2);
  bld.emit(Opcode::kMul, 21, r_lo, 20);
  bld.li(r_pt, lay.test);
  bld.emit(Opcode::kAdd, r_pt, r_pt, 21);
  bld.li(r_pout, lay.out);
  bld.emit(Opcode::kSlli, 21, r_lo, 0, 1);
  bld.emit(Opcode::kAdd, r_pout, r_pout, 21);
  bld.emit(Opcode::kSub, r_tc, r_hi, r_lo);
  if (kind == SvmKind::kRbf) bld.li(r_lut, lay.lut);

  const auto test_top = bld.make_label();
  bld.bind(test_top);
  bld.li(r_score, kBiasRaw);
  bld.li(r_psv, lay.sv);
  bld.li(r_pa, lay.alpha);
  bld.li(r_ic, kNumSv);
  bld.loop(r_ic, 21, [&] {
    // Inner accumulation over the 16 features.
    bld.li(r_acc, 0);
    bld.loop_hot(kDim, 22, [&] {
      bld.lh_pi(r_x, r_pt, 2);
      bld.lh_pi(r_s, r_psv, 2);
      if (kind == SvmKind::kRbf) {
        bld.emit(Opcode::kSub, r_t, r_x, r_s);
        bld.emit(Opcode::kMul, r_t, r_t, r_t);  // (x-sv)^2 >= 0
      } else {
        bld.emit(Opcode::kMul, r_t, r_x, r_s);
      }
      bld.emit(Opcode::kSrai, r_t, r_t, 0, 11);
      bld.emit(Opcode::kAdd, r_acc, r_acc, r_t);
    });
    bld.emit(Opcode::kAddi, r_pt, r_pt, 0, -static_cast<i32>(kDim * 2));

    // Kernel transform: r_acc -> K in r_t.
    switch (kind) {
      case SvmKind::kLinear:
        bld.mv(r_t, r_acc);
        break;
      case SvmKind::kPoly:
        bld.li(r_t2, kGammaRaw);
        bld.emit(Opcode::kMul, r_t, r_acc, r_t2);
        bld.emit(Opcode::kSrai, r_t, r_t, 0, 11);
        bld.emit(Opcode::kAddi, r_t, r_t, 0, kCoefRaw);  // k1
        bld.emit(Opcode::kMul, r_t2, r_t, r_t);
        bld.emit(Opcode::kSrai, r_t2, r_t2, 0, 11);      // k2 = k1^2
        bld.emit(Opcode::kMul, r_t, r_t2, r_t);
        bld.emit(Opcode::kSrai, r_t, r_t, 0, 11);        // k3 = k1^3
        break;
      case SvmKind::kRbf: {
        bld.li(r_t2, kGammaRaw);
        bld.emit(Opcode::kMul, r_t, r_acc, r_t2);
        bld.emit(Opcode::kSrai, r_t, r_t, 0, 11);  // arg = gamma*s, >= 0
        // LUT index = min(arg >> 5, 511); K = lut[index].
        bld.emit(Opcode::kSrai, r_t, r_t, 0, 5);
        bld.li(r_t2, 511);
        const auto in_range = bld.make_label();
        bld.branch(Opcode::kBge, r_t2, r_t, in_range);
        bld.mv(r_t, r_t2);
        bld.bind(in_range);
        bld.emit(Opcode::kSlli, r_t, r_t, 0, 1);
        bld.emit(Opcode::kAdd, r_t, r_t, r_lut);
        bld.emit(Opcode::kLh, r_t, r_t, 0, 0);
        break;
      }
    }
    // score += (alpha * K) >> 11.
    bld.lh_pi(r_t2, r_pa, 2);
    bld.emit(Opcode::kMul, r_t, r_t, r_t2);
    bld.emit(Opcode::kSrai, r_t, r_t, 0, 11);
    bld.emit(Opcode::kAdd, r_score, r_score, r_t);
  });
  bld.sh_pi(r_score, r_pout, 2);
  bld.emit(Opcode::kAddi, r_pt, r_pt, 0, kDim * 2);  // next test vector
  bld.emit(Opcode::kAddi, r_tc, r_tc, 0, -1);
  bld.branch(Opcode::kBne, r_tc, codegen::zero, test_top);
  bld.bind(done);
}

std::vector<u8> make_inputs(u64 seed) {
  Rng rng(seed);
  std::vector<u8> in(kInBytes);
  auto put = [&](size_t idx, i32 v) {
    in[2 * idx] = static_cast<u8>(v);
    in[2 * idx + 1] = static_cast<u8>(v >> 8);
  };
  size_t idx = 0;
  // Support vectors and test vectors in ~(-1, 1); alphas in ~(-0.5, 0.5).
  for (u32 i = 0; i < kNumSv * kDim; ++i) put(idx++, rng.uniform(-2000, 2000));
  for (u32 i = 0; i < kNumSv; ++i) put(idx++, rng.uniform(-1024, 1024));
  for (u32 i = 0; i < kNumTest * kDim; ++i) {
    put(idx++, rng.uniform(-2000, 2000));
  }
  return in;
}

std::vector<u8> golden(SvmKind kind, const std::vector<u8>& in,
                       const Lut16& lut) {
  std::vector<u8> out(kOutBytes);
  const size_t sv0 = 0;
  const size_t a0 = kNumSv * kDim;
  const size_t t0 = a0 + kNumSv;
  for (u32 t = 0; t < kNumTest; ++t) {
    i32 score = kBiasRaw;
    for (u32 i = 0; i < kNumSv; ++i) {
      i32 acc = 0;
      for (u32 k = 0; k < kDim; ++k) {
        const i32 x = rd16(in, t0 + t * kDim + k);
        const i32 s = rd16(in, sv0 + i * kDim + k);
        const i32 p = kind == SvmKind::kRbf ? (x - s) * (x - s) : x * s;
        acc += p >> 11;
      }
      i32 kv = 0;
      switch (kind) {
        case SvmKind::kLinear:
          kv = acc;
          break;
        case SvmKind::kPoly: {
          const i32 k1 = ((acc * kGammaRaw) >> 11) + kCoefRaw;
          const i32 k2 = (k1 * k1) >> 11;
          kv = (k2 * k1) >> 11;
          break;
        }
        case SvmKind::kRbf: {
          const i32 arg = (acc * kGammaRaw) >> 11;
          kv = lut.lookup(arg);
          break;
        }
      }
      score += (kv * static_cast<i32>(rd16(in, a0 + i))) >> 11;
    }
    out[2 * t] = static_cast<u8>(score);
    out[2 * t + 1] = static_cast<u8>(score >> 8);
  }
  return out;
}

KernelCase make_svm(SvmKind kind, const char* name,
                    const core::CoreFeatures& features, u32 num_cores,
                    Target target, u64 seed) {
  const Lut16 lut = make_exp_neg_lut();
  KernelCase kc;
  kc.name = name;
  kc.input = make_inputs(seed);
  kc.expected = golden(kind, kc.input, lut);
  kc.output_bytes = kOutBytes;

  Layout lay;
  const bool cluster = target == Target::kCluster;
  const Addr data_base = cluster ? memmap::kTcdmBase : kFlatInputAddr;
  lay.sv = data_base;
  lay.alpha = lay.sv + kSvBytes;
  lay.test = lay.alpha + kAlphaBytes;
  lay.out = cluster ? lay.test + kTestBytes : kFlatOutputAddr;
  lay.lut = cluster ? lay.out + kOutBytes + 64 : kFlatScratchAddr;

  std::vector<u8> lut_bytes(lut.size_bytes());
  for (size_t i = 0; i < lut.table.size(); ++i) {
    lut_bytes[2 * i] = static_cast<u8>(lut.table[i]);
    lut_bytes[2 * i + 1] = static_cast<u8>(lut.table[i] >> 8);
  }

  auto compute = [&](Builder& bld, const OutlineRegs& regs) {
    emit_svm_compute(bld, regs, lay, kind, cluster ? num_cores : 1);
  };

  if (cluster) {
    kc.input_addr = kL2InputAddr;
    kc.output_addr = kL2OutputAddr;
    kc.program = runtime::outline_target(
        features, {{kL2InputAddr, lay.sv, kInBytes}},
        {{lay.out, kL2OutputAddr, kOutBytes}}, compute);
  } else {
    kc.input_addr = kFlatInputAddr;
    kc.output_addr = kFlatOutputAddr;
    kc.program = runtime::outline_flat(features, compute);
  }
  if (kind == SvmKind::kRbf) {
    // The exp LUT ships with the binary as an initialised data segment.
    kc.program.data.push_back({lay.lut, std::move(lut_bytes)});
  }
  return kc;
}

}  // namespace

KernelCase make_svm_linear(const core::CoreFeatures& f, u32 nc, Target t,
                           u64 seed) {
  return make_svm(SvmKind::kLinear, "svm (linear)", f, nc, t, seed);
}
KernelCase make_svm_poly(const core::CoreFeatures& f, u32 nc, Target t,
                         u64 seed) {
  return make_svm(SvmKind::kPoly, "svm (poly)", f, nc, t, seed);
}
KernelCase make_svm_rbf(const core::CoreFeatures& f, u32 nc, Target t,
                        u64 seed) {
  return make_svm(SvmKind::kRbf, "svm (RBF)", f, nc, t, seed);
}

}  // namespace ulp::kernels
