// Benchmark kernel infrastructure.
//
// Each of the paper's ten kernels (Table I) is provided as a factory that
// returns a KernelCase: a generated program for the requested target, the
// synthetic input bytes the host would ship from its sensor, and the golden
// expected output computed by a plain C++ reference. Kernels are generated
// for either:
//   * Target::kCluster — the SPMD PULP-cluster program (DMA staging,
//     barriers, per-core chunking) produced by runtime::outline_target, or
//   * Target::kFlat    — a single-core flat-memory program used for the MCU
//     baselines and the Figure 4 "architectural speedup" study.
//
// Outputs are bit-exact: fixed-point semantics are defined once (common/
// fixed_point.hpp, common/lut.hpp) and shared between the references and
// the generated code.
#pragma once

#include <string>
#include <vector>

#include "common/memmap.hpp"
#include "core/features.hpp"
#include "isa/program.hpp"
#include "runtime/offload.hpp"

namespace ulp::kernels {

enum class Target {
  kCluster,  ///< PULP cluster: TCDM + DMA staging + barriers.
  kFlat,     ///< Single core, flat memory (MCU-side execution).
};

/// L2 staging area used by cluster kernels (where the host-side runtime
/// deposits inputs / collects outputs over the SPI link).
inline constexpr Addr kL2InputAddr = memmap::kL2Input;
inline constexpr Addr kL2OutputAddr = memmap::kL2Output;

/// Flat-memory layout for Target::kFlat (MCU address space).
inline constexpr Addr kFlatInputAddr = 0x10000;
inline constexpr Addr kFlatOutputAddr = 0x30000;
inline constexpr Addr kFlatScratchAddr = 0x50000;

struct KernelCase {
  std::string name;
  isa::Program program;

  std::vector<u8> input;  ///< Host-provided bytes (the map(to:) payload).
  Addr input_addr = 0;    ///< Where the harness/host deposits them.

  size_t output_bytes = 0;
  Addr output_addr = 0;  ///< Where results appear after EOC.
  std::vector<u8> expected;  ///< Golden reference output.

  /// Table I bookkeeping.
  [[nodiscard]] size_t input_kb_x10() const { return input.size() * 10 / 1024; }
  [[nodiscard]] size_t binary_bytes() const { return program.image_size_bytes(); }

  /// View of this case as an offload runtime request (cluster targets).
  /// The golden reference output doubles as the host-reference result the
  /// degradation path falls back to.
  [[nodiscard]] runtime::OffloadRequest offload_request() const {
    return {&program, input, input_addr, output_bytes, output_addr, expected};
  }
};

/// Factory signature shared by all kernels. `num_cores` applies to cluster
/// targets (build-time static chunking); flat targets ignore it.
using KernelFactory = KernelCase (*)(const core::CoreFeatures&, u32 num_cores,
                                     Target, u64 seed);

struct KernelInfo {
  std::string name;
  std::string field;  ///< Table I "Field" column.
  KernelFactory factory;
};

/// All ten Table I kernels, in the paper's order.
[[nodiscard]] const std::vector<KernelInfo>& all_kernels();

// Individual factories (defined across the kernel translation units).
KernelCase make_matmul_char(const core::CoreFeatures&, u32, Target, u64 seed);
KernelCase make_matmul_short(const core::CoreFeatures&, u32, Target, u64 seed);
KernelCase make_matmul_fixed(const core::CoreFeatures&, u32, Target, u64 seed);
KernelCase make_strassen(const core::CoreFeatures&, u32, Target, u64 seed);
KernelCase make_svm_linear(const core::CoreFeatures&, u32, Target, u64 seed);
KernelCase make_svm_poly(const core::CoreFeatures&, u32, Target, u64 seed);
KernelCase make_svm_rbf(const core::CoreFeatures&, u32, Target, u64 seed);
KernelCase make_cnn(const core::CoreFeatures&, u32, Target, u64 seed);
KernelCase make_cnn_approx(const core::CoreFeatures&, u32, Target, u64 seed);
KernelCase make_hog(const core::CoreFeatures&, u32, Target, u64 seed);

/// Beyond Table I: a DMA-streamed, tiled matmul (128x64 char rows stream
/// through two ping-pong TCDM buffers) demonstrating the paper's double
/// buffering inside the simulated cluster. Cluster target only.
KernelCase make_matmul_tiled(const core::CoreFeatures&, u32 num_cores,
                             u64 seed, bool double_buffered);

/// Beyond Table I: kernels for the intro's remaining application classes
/// (voice front-end FFT, biomedical FIR bank). Same factory contract as
/// the Table I kernels; listed separately so the reproduction stays
/// paper-faithful.
KernelCase make_fir_bank(const core::CoreFeatures&, u32, Target, u64 seed);
KernelCase make_fft(const core::CoreFeatures&, u32, Target, u64 seed);
[[nodiscard]] const std::vector<KernelInfo>& extension_kernels();

}  // namespace ulp::kernels
