#include "mem/tcdm.hpp"

namespace ulp::mem {

Tcdm::Tcdm(Addr base, u32 num_banks, u32 bank_bytes)
    : base_(base),
      num_banks_(num_banks),
      mem_(static_cast<size_t>(num_banks) * bank_bytes, 0) {
  ULP_CHECK(num_banks > 0 && (num_banks & (num_banks - 1)) == 0,
            "TCDM bank count must be a power of two");
  ULP_CHECK(num_banks <= 64, "TCDM bank-busy bitmask holds at most 64 banks");
  ULP_CHECK(bank_bytes % 4 == 0, "TCDM bank size must be word-aligned");
}

bool Tcdm::try_grant(Addr addr) {
  ULP_CHECK(contains(addr, 1), "TCDM grant out of range");
  const u64 bit = 1ull << bank_of(addr);
  if (bank_busy_ & bit) {
    ++conflicts_;
    return false;
  }
  bank_busy_ |= bit;
  ++accesses_;
  return true;
}

u32 Tcdm::load(Addr addr, int size, bool sign_extend) const {
  ULP_CHECK(contains(addr, size), "TCDM load out of range");
  return load_le(mem_, addr - base_, size, sign_extend);
}

void Tcdm::store(Addr addr, int size, u32 value) {
  ULP_CHECK(contains(addr, size), "TCDM store out of range");
  store_le(mem_, addr - base_, size, value);
}

}  // namespace ulp::mem
