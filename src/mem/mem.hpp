// Basic memory building blocks: little-endian scalar access over byte
// arrays, the Sram device, and the Peripheral interface for memory-mapped
// cluster devices (DMA controller, event unit, mailbox).
#pragma once

#include <span>
#include <vector>

#include "common/status.hpp"
#include "common/types.hpp"

namespace ulp::mem {

/// Little-endian load of 1/2/4 bytes from `bytes` at `offset`.
[[nodiscard]] u32 load_le(std::span<const u8> bytes, size_t offset, int size,
                          bool sign_extend);

/// Little-endian store of 1/2/4 bytes into `bytes` at `offset`.
void store_le(std::span<u8> bytes, size_t offset, int size, u32 value);

/// A flat RAM/ROM device mapped at a fixed base address.
class Sram {
 public:
  Sram(Addr base, size_t size_bytes) : base_(base), mem_(size_bytes, 0) {}

  [[nodiscard]] Addr base() const { return base_; }
  [[nodiscard]] size_t size() const { return mem_.size(); }
  [[nodiscard]] bool contains(Addr addr, int size) const {
    return addr >= base_ && addr + static_cast<Addr>(size) <= base_ + mem_.size();
  }

  [[nodiscard]] u32 load(Addr addr, int size, bool sign_extend) const {
    ULP_CHECK(contains(addr, size), "Sram load out of range");
    return load_le(mem_, addr - base_, size, sign_extend);
  }

  void store(Addr addr, int size, u32 value) {
    ULP_CHECK(contains(addr, size), "Sram store out of range");
    store_le(mem_, addr - base_, size, value);
  }

  /// Raw backing bytes (testing / program loading / host marshaling).
  [[nodiscard]] std::span<u8> bytes() { return mem_; }
  [[nodiscard]] std::span<const u8> bytes() const { return mem_; }

 private:
  Addr base_;
  std::vector<u8> mem_;
};

/// A memory-mapped device with word-granular registers and side effects.
/// Offsets are relative to the peripheral's mapped base.
class Peripheral {
 public:
  virtual ~Peripheral() = default;
  [[nodiscard]] virtual u32 read32(Addr offset) = 0;
  virtual void write32(Addr offset, u32 value) = 0;
};

}  // namespace ulp::mem
