// Tightly-coupled data memory (TCDM): the cluster's shared L1 scratchpad.
//
// The PULP cluster has no per-core data caches; all four cores (and the DMA)
// share a multi-banked scratchpad reached through a single-cycle
// log-interconnect with *word-level interleaving* — consecutive 32-bit words
// live in consecutive banks, which spreads sequential streams across banks
// and keeps conflict rates low (Rahimi et al. [30]). Each bank serves one
// request per cycle; a losing initiator stalls and retries, which is exactly
// the (small) parallel-efficiency loss visible in Figure 4 (right).
#pragma once

#include <vector>

#include "mem/mem.hpp"

namespace ulp::mem {

class Tcdm {
 public:
  /// `base`: mapped address; total size = banks * bank_bytes.
  Tcdm(Addr base, u32 num_banks, u32 bank_bytes);

  [[nodiscard]] Addr base() const { return base_; }
  [[nodiscard]] u32 num_banks() const { return num_banks_; }
  [[nodiscard]] size_t size() const { return mem_.size(); }
  [[nodiscard]] bool contains(Addr addr, int size) const {
    return addr >= base_ &&
           addr + static_cast<Addr>(size) <= base_ + mem_.size();
  }

  /// Word-interleaved bank selection: bank = (addr/4) mod num_banks.
  [[nodiscard]] u32 bank_of(Addr addr) const {
    return ((addr - base_) / 4) % num_banks_;
  }

  /// Start of a new interconnect cycle: every bank port is free again.
  void begin_cycle() { bank_busy_ = 0; }

  /// Claim `addr`'s bank for this cycle. Returns false (and counts a
  /// conflict) if another initiator already holds the bank this cycle.
  [[nodiscard]] bool try_grant(Addr addr);

  /// Bulk statistics for fast-forwarded windows in which the DMA is the
  /// only initiator: charges the grants (and same-bank copy conflicts) the
  /// per-cycle arbitration would have counted, without touching the
  /// current cycle's bank ports.
  void charge_uncontended(u64 accesses, u64 conflicts) {
    accesses_ += accesses;
    conflicts_ += conflicts;
  }

  /// Slot the block-cached fast lane bumps once per uncontended access it
  /// replays without try_grant (see DataBus::direct_map).
  [[nodiscard]] u64* access_counter_slot() { return &accesses_; }

  // Functional access (timing handled by the caller through try_grant).
  [[nodiscard]] u32 load(Addr addr, int size, bool sign_extend) const;
  void store(Addr addr, int size, u32 value);

  /// Backdoor for program loading and result readout; no timing, no stats.
  [[nodiscard]] std::span<u8> bytes() { return mem_; }
  [[nodiscard]] std::span<const u8> bytes() const { return mem_; }

  /// Bitmask of banks claimed so far in the current cycle (banks 0..31;
  /// used by the waveform tracer).
  [[nodiscard]] u32 busy_mask() const {
    return static_cast<u32>(bank_busy_);
  }

  // Statistics.
  [[nodiscard]] u64 total_accesses() const { return accesses_; }
  [[nodiscard]] u64 total_conflicts() const { return conflicts_; }
  void reset_stats() { accesses_ = conflicts_ = 0; }

 private:
  Addr base_;
  u32 num_banks_;
  std::vector<u8> mem_;
  u64 bank_busy_ = 0;  ///< Bit per bank; bank counts are capped at 64.
  u64 accesses_ = 0;
  u64 conflicts_ = 0;
};

}  // namespace ulp::mem
