// Shared instruction cache model.
//
// The PULP cluster fetches through one I$ shared by all four cores. The
// benchmark kernels fit comfortably in the cache, so steady state is
// all-hits; what remains observable is the cold-start cost, modelled as a
// fixed refill penalty on the first touch of each line (shared: once one
// core has pulled a line, the others hit). This matches the paper, which
// reports no I$ miss effects but a real shared-I$ structure.
#pragma once

#include <vector>

#include "common/status.hpp"
#include "common/types.hpp"

namespace ulp::mem {

class SharedICache {
 public:
  /// `instrs_per_line`: line granularity in instructions (default 4 = 16 B).
  /// `miss_penalty`: stall cycles charged to the fetching core on a miss.
  explicit SharedICache(u32 instrs_per_line = 4, u32 miss_penalty = 8)
      : instrs_per_line_(instrs_per_line), miss_penalty_(miss_penalty) {
    ULP_CHECK(instrs_per_line > 0, "line size must be positive");
  }

  /// Size the presence bitmap for a program of `num_instrs` instructions.
  void reset(size_t num_instrs) {
    present_.assign(num_instrs / instrs_per_line_ + 1, false);
    misses_ = hits_ = 0;
  }

  /// Fetch of instruction index `pc`: returns extra stall cycles (0 on hit).
  [[nodiscard]] u32 fetch(u32 pc) {
    const size_t line = pc / instrs_per_line_;
    ULP_CHECK(line < present_.size(), "fetch beyond program end");
    if (present_[line]) {
      ++hits_;
      return 0;
    }
    present_[line] = true;
    ++misses_;
    return miss_penalty_;
  }

  /// Bulk-counts fetches the block-cached fast lane proved to be hits
  /// without probing (same line as the previous record in the same run).
  void charge_hits(u64 n) { hits_ += n; }

  [[nodiscard]] u64 misses() const { return misses_; }
  [[nodiscard]] u64 hits() const { return hits_; }
  [[nodiscard]] u32 miss_penalty() const { return miss_penalty_; }
  [[nodiscard]] u32 instrs_per_line() const { return instrs_per_line_; }

  // Presence bitmap access for snapshot save/restore; the cluster owns
  // the serialization (and validates the bitmap against the snapshot's
  // program geometry) so this class stays snapshot-agnostic. The saved
  // bitmap is authoritative: its size replaces the current one, which is
  // how a pre-boot snapshot (never reset, empty bitmap) restores into a
  // cluster that already ran something.
  [[nodiscard]] const std::vector<bool>& lines_present() const {
    return present_;
  }
  void restore_state(std::vector<bool> present, u64 misses, u64 hits) {
    present_ = std::move(present);
    misses_ = misses;
    hits_ = hits;
  }

 private:
  u32 instrs_per_line_;
  u32 miss_penalty_;
  std::vector<bool> present_;
  u64 misses_ = 0;
  u64 hits_ = 0;
};

}  // namespace ulp::mem
