#include "mem/mem.hpp"

namespace ulp::mem {

u32 load_le(std::span<const u8> bytes, size_t offset, int size,
            bool sign_extend) {
  // Sizes 1..4: size 3 occurs as the sub-word part of an unaligned access
  // split at a word boundary (the hardware's byte-lane rotator).
  ULP_CHECK(size >= 1 && size <= 4, "bad access size");
  ULP_CHECK(offset + static_cast<size_t>(size) <= bytes.size(),
            "load out of range");
  u32 v = 0;
  for (int i = size - 1; i >= 0; --i) {
    v = (v << 8) | bytes[offset + static_cast<size_t>(i)];
  }
  if (sign_extend && size < 4) {
    const u32 sign_bit = 1u << (size * 8 - 1);
    if (v & sign_bit) v |= ~((sign_bit << 1) - 1);
  }
  return v;
}

void store_le(std::span<u8> bytes, size_t offset, int size, u32 value) {
  ULP_CHECK(size >= 1 && size <= 4, "bad access size");
  ULP_CHECK(offset + static_cast<size_t>(size) <= bytes.size(),
            "store out of range");
  for (int i = 0; i < size; ++i) {
    bytes[offset + static_cast<size_t>(i)] = static_cast<u8>(value >> (8 * i));
  }
}

}  // namespace ulp::mem
