// Data buses seen by bus masters (cores, DMA).
//
// A master presents one access per cycle; the bus answers with
// granted/latency and performs the data movement on grant. Two concrete
// buses exist:
//  * ClusterBus — TCDM (banked, contended) + L2 (single-ported, slower) +
//    memory-mapped peripherals. Models the PULP cluster interconnect.
//  * SimpleBus — one flat SRAM with fixed latency, never contended. Models
//    the single-master MCU host (and the "Cortex-M" baselines).
#pragma once

#include <vector>

#include "mem/mem.hpp"
#include "mem/tcdm.hpp"

namespace ulp::mem {

struct BusResult {
  bool granted = false;
  u32 latency = 0;  ///< Total cycles for the access when granted (>= 1).
  u32 data = 0;     ///< Loaded value (loads only).
};

class DataBus {
 public:
  virtual ~DataBus() = default;

  /// One timed access attempt. On grant the access has happened (including
  /// any peripheral side effect). `initiator` identifies the master for
  /// statistics and arbitration bookkeeping.
  virtual BusResult access(Addr addr, int size, bool is_store, u32 store_value,
                           bool sign_extend, u32 initiator) = 0;

  // Untimed backdoor used for program loading and result readout.
  [[nodiscard]] virtual u32 debug_load(Addr addr, int size,
                                       bool sign_extend) = 0;
  virtual void debug_store(Addr addr, int size, u32 value) = 0;
};

struct PeripheralMapping {
  Addr base = 0;
  u32 size = 0;
  Peripheral* device = nullptr;
};

/// The PULP cluster interconnect: word-interleaved TCDM, single-port L2,
/// peripheral region. Call begin_cycle() once per cluster cycle.
class ClusterBus final : public DataBus {
 public:
  ClusterBus(Tcdm* tcdm, Sram* l2, u32 l2_latency);

  void add_peripheral(Addr base, u32 size, Peripheral* device);
  void begin_cycle();

  BusResult access(Addr addr, int size, bool is_store, u32 store_value,
                   bool sign_extend, u32 initiator) override;
  u32 debug_load(Addr addr, int size, bool sign_extend) override;
  void debug_store(Addr addr, int size, u32 value) override;

  [[nodiscard]] Tcdm& tcdm() { return *tcdm_; }
  [[nodiscard]] Sram& l2() { return *l2_; }

 private:
  [[nodiscard]] Peripheral* find_peripheral(Addr addr, Addr* offset);

  Tcdm* tcdm_;
  Sram* l2_;
  u32 l2_latency_;
  bool l2_port_busy_ = false;
  std::vector<PeripheralMapping> peripherals_;
};

/// Flat single-master memory (MCU host model), with optional memory-mapped
/// peripherals (SPI master controller, GPIO, timers).
class SimpleBus final : public DataBus {
 public:
  SimpleBus(Sram* sram, u32 latency) : sram_(sram), latency_(latency) {
    ULP_CHECK(latency >= 1, "bus latency must be >= 1");
  }

  void add_peripheral(Addr base, u32 size, Peripheral* device) {
    ULP_CHECK(device != nullptr, "null peripheral");
    peripherals_.push_back({base, size, device});
  }

  BusResult access(Addr addr, int size, bool is_store, u32 store_value,
                   bool sign_extend, u32 initiator) override;
  u32 debug_load(Addr addr, int size, bool sign_extend) override;
  void debug_store(Addr addr, int size, u32 value) override;

 private:
  Sram* sram_;
  u32 latency_;
  std::vector<PeripheralMapping> peripherals_;
};

}  // namespace ulp::mem
