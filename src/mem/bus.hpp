// Data buses seen by bus masters (cores, DMA).
//
// A master presents one access per cycle; the bus answers with
// granted/latency and performs the data movement on grant. Two concrete
// buses exist:
//  * ClusterBus — TCDM (banked, contended) + L2 (single-ported, slower) +
//    memory-mapped peripherals. Models the PULP cluster interconnect.
//  * SimpleBus — one flat SRAM with fixed latency, never contended. Models
//    the single-master MCU host (and the "Cortex-M" baselines).
#pragma once

#include <array>
#include <functional>
#include <vector>

#include "mem/mem.hpp"
#include "mem/tcdm.hpp"

namespace ulp::mem {

struct BusResult {
  bool granted = false;
  u32 latency = 0;  ///< Total cycles for the access when granted (>= 1).
  u32 data = 0;     ///< Loaded value (loads only).
};

/// Zero-copy window onto one plain-memory range: everything the block-cached
/// fast lane needs to replay a solo, aligned access without the bus call —
/// the host pointer for the data movement, the deterministic grant latency,
/// and the per-access statistics slot the arbiter would have bumped.
struct DirectSpan {
  u8* data = nullptr;  ///< Host byte at guest address `base`.
  Addr base = 0;
  u32 bytes = 0;
  u32 latency = 1;  ///< Solo grant latency (>= 1), access() would charge it.
  u64* access_counter = nullptr;  ///< Bump once per access (TCDM); may be null.
};

/// The bus's plain-memory geometry plus the write-watch window. Stores that
/// overlap `[watch_base, watch_base + watch_bytes)` must take the bus path so
/// the write watcher fires (self-modifying-code invalidation).
struct DirectMap {
  std::array<DirectSpan, 2> spans{};
  u32 count = 0;
  Addr watch_base = 0;
  u32 watch_bytes = 0;
};

class DataBus {
 public:
  virtual ~DataBus() = default;

  /// One timed access attempt. On grant the access has happened (including
  /// any peripheral side effect). `initiator` identifies the master for
  /// statistics and arbitration bookkeeping.
  virtual BusResult access(Addr addr, int size, bool is_store, u32 store_value,
                           bool sign_extend, u32 initiator) = 0;

  // Untimed backdoor used for program loading and result readout.
  [[nodiscard]] virtual u32 debug_load(Addr addr, int size,
                                       bool sign_extend) = 0;
  virtual void debug_store(Addr addr, int size, u32 value) = 0;

  /// Reset per-cycle arbitration state (bank claims, port busy flags).
  /// Called once per cycle by the owning scheduler; the block-cached fast
  /// path calls it before each access it replays so a solo master sees the
  /// same always-granted arbitration a fresh cycle would give it.
  virtual void begin_cycle() {}

  /// True when `[addr, addr+size)` is ordinary RAM: an access there has no
  /// side effect beyond the data movement and, with this master alone on
  /// the bus, is granted on the first attempt at a deterministic latency.
  /// Peripheral and unmapped ranges return false; the block-cached fast
  /// path must hand those accesses back to the per-cycle loop.
  [[nodiscard]] virtual bool plain_memory(Addr addr, int size) const {
    (void)addr;
    (void)size;
    return false;
  }

  /// Upper bound on the grant latency of any plain_memory() access — the
  /// block-cached fast path sizes its per-instruction cycle budget with it.
  [[nodiscard]] virtual u32 worst_case_latency() const { return 1; }

  /// Arbitration-only grant attempt for a plain-memory access: claims the
  /// same per-cycle resource access() would (TCDM bank, L2 port) and counts
  /// it in the same statistics, but performs no data movement — the caller
  /// replays the data through the direct_map() span. The multi-core block
  /// window uses this to keep bank-conflict timing exact while staying on
  /// the host-pointer fast lane. Only meaningful for addresses where
  /// plain_memory() is true; the default (uncontended bus) always grants.
  [[nodiscard]] virtual bool try_grant_plain(Addr addr) {
    (void)addr;
    return true;
  }

  /// The plain-memory spans a solo master may access directly (see
  /// DirectSpan). Default: none — every access takes the bus path.
  [[nodiscard]] virtual DirectMap direct_map() { return {}; }
};

struct PeripheralMapping {
  Addr base = 0;
  u32 size = 0;
  Peripheral* device = nullptr;
};

/// The PULP cluster interconnect: word-interleaved TCDM, single-port L2,
/// peripheral region. Call begin_cycle() once per cluster cycle.
class ClusterBus final : public DataBus {
 public:
  /// Observer of writes into a watched byte range (the instruction-memory
  /// window of the self-modifying-code model). Invoked *after* the store
  /// has landed, with the store's address and size.
  using WriteWatcher = std::function<void(Addr addr, int size)>;

  ClusterBus(Tcdm* tcdm, Sram* l2, u32 l2_latency);

  void add_peripheral(Addr base, u32 size, Peripheral* device);
  void begin_cycle() override;

  BusResult access(Addr addr, int size, bool is_store, u32 store_value,
                   bool sign_extend, u32 initiator) override;
  u32 debug_load(Addr addr, int size, bool sign_extend) override;
  void debug_store(Addr addr, int size, u32 value) override;

  [[nodiscard]] bool plain_memory(Addr addr, int size) const override {
    return tcdm_->contains(addr, size) || l2_->contains(addr, size);
  }
  [[nodiscard]] u32 worst_case_latency() const override {
    return l2_latency_ > 1 ? l2_latency_ : 1;
  }
  [[nodiscard]] bool try_grant_plain(Addr addr) override {
    if (tcdm_->contains(addr, 1)) return tcdm_->try_grant(addr);
    if (l2_port_busy_) return false;
    l2_port_busy_ = true;
    return true;
  }
  [[nodiscard]] DirectMap direct_map() override;

  /// Watch `[base, base+bytes)` for stores (core stores, DMA beats, host
  /// debug writes through this bus) and call `watcher` after each one.
  /// `bytes == 0` disarms. The disarmed hot-path cost is one compare.
  void set_write_watch(Addr base, u32 bytes, WriteWatcher watcher) {
    watch_base_ = base;
    watch_bytes_ = bytes;
    watcher_ = std::move(watcher);
  }

  [[nodiscard]] Tcdm& tcdm() { return *tcdm_; }
  [[nodiscard]] Sram& l2() { return *l2_; }

 private:
  [[nodiscard]] Peripheral* find_peripheral(Addr addr, Addr* offset);
  void notify_write(Addr addr, int size) {
    if (watch_bytes_ != 0 && addr < watch_base_ + watch_bytes_ &&
        addr + static_cast<Addr>(size) > watch_base_) {
      watcher_(addr, size);
    }
  }

  Tcdm* tcdm_;
  Sram* l2_;
  u32 l2_latency_;
  bool l2_port_busy_ = false;
  std::vector<PeripheralMapping> peripherals_;
  Addr watch_base_ = 0;
  u32 watch_bytes_ = 0;
  WriteWatcher watcher_;
};

/// Flat single-master memory (MCU host model), with optional memory-mapped
/// peripherals (SPI master controller, GPIO, timers).
class SimpleBus final : public DataBus {
 public:
  SimpleBus(Sram* sram, u32 latency) : sram_(sram), latency_(latency) {
    ULP_CHECK(latency >= 1, "bus latency must be >= 1");
  }

  void add_peripheral(Addr base, u32 size, Peripheral* device) {
    ULP_CHECK(device != nullptr, "null peripheral");
    peripherals_.push_back({base, size, device});
  }

  BusResult access(Addr addr, int size, bool is_store, u32 store_value,
                   bool sign_extend, u32 initiator) override;
  u32 debug_load(Addr addr, int size, bool sign_extend) override;
  void debug_store(Addr addr, int size, u32 value) override;

  [[nodiscard]] bool plain_memory(Addr addr, int size) const override {
    return sram_->contains(addr, size);
  }
  [[nodiscard]] u32 worst_case_latency() const override { return latency_; }
  [[nodiscard]] DirectMap direct_map() override;

 private:
  Sram* sram_;
  u32 latency_;
  std::vector<PeripheralMapping> peripherals_;
};

}  // namespace ulp::mem
