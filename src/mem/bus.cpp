#include "mem/bus.hpp"

namespace ulp::mem {

ClusterBus::ClusterBus(Tcdm* tcdm, Sram* l2, u32 l2_latency)
    : tcdm_(tcdm), l2_(l2), l2_latency_(l2_latency) {
  ULP_CHECK(tcdm != nullptr && l2 != nullptr, "ClusterBus needs TCDM and L2");
  ULP_CHECK(l2_latency >= 1, "L2 latency must be >= 1");
}

void ClusterBus::add_peripheral(Addr base, u32 size, Peripheral* device) {
  ULP_CHECK(device != nullptr, "null peripheral");
  peripherals_.push_back({base, size, device});
}

void ClusterBus::begin_cycle() {
  tcdm_->begin_cycle();
  l2_port_busy_ = false;
}

Peripheral* ClusterBus::find_peripheral(Addr addr, Addr* offset) {
  for (const PeripheralMapping& m : peripherals_) {
    if (addr >= m.base && addr < m.base + m.size) {
      *offset = addr - m.base;
      return m.device;
    }
  }
  return nullptr;
}

BusResult ClusterBus::access(Addr addr, int size, bool is_store,
                             u32 store_value, bool sign_extend,
                             u32 /*initiator*/) {
  if (tcdm_->contains(addr, size)) {
    if (!tcdm_->try_grant(addr)) return {};  // bank conflict: stall
    BusResult r{.granted = true, .latency = 1, .data = 0};
    if (is_store) {
      tcdm_->store(addr, size, store_value);
      notify_write(addr, size);
    } else {
      r.data = tcdm_->load(addr, size, sign_extend);
    }
    return r;
  }
  if (l2_->contains(addr, size)) {
    if (l2_port_busy_) return {};  // single L2 port
    l2_port_busy_ = true;
    BusResult r{.granted = true, .latency = l2_latency_, .data = 0};
    if (is_store) {
      l2_->store(addr, size, store_value);
      notify_write(addr, size);
    } else {
      r.data = l2_->load(addr, size, sign_extend);
    }
    return r;
  }
  Addr offset = 0;
  if (Peripheral* p = find_peripheral(addr, &offset)) {
    ULP_CHECK(size == 4 && addr % 4 == 0,
              "peripheral access must be an aligned word");
    BusResult r{.granted = true, .latency = 2, .data = 0};
    if (is_store) {
      p->write32(offset, store_value);
    } else {
      r.data = p->read32(offset);
    }
    return r;
  }
  ULP_CHECK(false, "bus access to unmapped address " + std::to_string(addr));
}

DirectMap ClusterBus::direct_map() {
  DirectMap m;
  // TCDM: banked but conflict-free for a solo master; every granted access
  // bumps the same counter try_grant() would have.
  m.spans[0] = {tcdm_->bytes().data(), tcdm_->base(),
                static_cast<u32>(tcdm_->size()), 1,
                tcdm_->access_counter_slot()};
  m.spans[1] = {l2_->bytes().data(), l2_->base(),
                static_cast<u32>(l2_->size()), l2_latency_, nullptr};
  m.count = 2;
  m.watch_base = watch_base_;
  m.watch_bytes = watch_bytes_;
  return m;
}

u32 ClusterBus::debug_load(Addr addr, int size, bool sign_extend) {
  if (tcdm_->contains(addr, size)) return tcdm_->load(addr, size, sign_extend);
  if (l2_->contains(addr, size)) return l2_->load(addr, size, sign_extend);
  ULP_CHECK(false, "debug_load from unmapped address");
}

void ClusterBus::debug_store(Addr addr, int size, u32 value) {
  if (tcdm_->contains(addr, size)) {
    tcdm_->store(addr, size, value);
    notify_write(addr, size);
    return;
  }
  if (l2_->contains(addr, size)) {
    l2_->store(addr, size, value);
    notify_write(addr, size);
    return;
  }
  ULP_CHECK(false, "debug_store to unmapped address");
}

BusResult SimpleBus::access(Addr addr, int size, bool is_store,
                            u32 store_value, bool sign_extend,
                            u32 /*initiator*/) {
  if (sram_->contains(addr, size)) {
    BusResult r{.granted = true, .latency = latency_, .data = 0};
    if (is_store) {
      sram_->store(addr, size, store_value);
    } else {
      r.data = sram_->load(addr, size, sign_extend);
    }
    return r;
  }
  for (const PeripheralMapping& m : peripherals_) {
    if (addr >= m.base && addr < m.base + m.size) {
      ULP_CHECK(size == 4 && addr % 4 == 0,
                "peripheral access must be an aligned word");
      BusResult r{.granted = true, .latency = 2, .data = 0};
      if (is_store) {
        m.device->write32(addr - m.base, store_value);
      } else {
        r.data = m.device->read32(addr - m.base);
      }
      return r;
    }
  }
  ULP_CHECK(false,
            "host bus access to unmapped address " + std::to_string(addr));
}

DirectMap SimpleBus::direct_map() {
  DirectMap m;
  m.spans[0] = {sram_->bytes().data(), sram_->base(),
                static_cast<u32>(sram_->size()), latency_, nullptr};
  m.count = 1;
  return m;
}

u32 SimpleBus::debug_load(Addr addr, int size, bool sign_extend) {
  return sram_->load(addr, size, sign_extend);
}

void SimpleBus::debug_store(Addr addr, int size, u32 value) {
  sram_->store(addr, size, value);
}

}  // namespace ulp::mem
