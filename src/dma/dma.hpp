// Cluster DMA engine (after Rossi et al., "Ultra-Low-Latency Lightweight
// DMA for Tightly Coupled Multi-Core Clusters" [31]).
//
// Memory-mapped, multi-channel, bufferless: one 32-bit beat per cycle moves
// directly between the source and destination ports (the real block's
// direct TCDM connection exists precisely to avoid an internal buffer).
// Cores program transfers through four registers and poll STATUS or sleep
// on WFE; completion raises a cluster event.
//
// Register map (word offsets from the peripheral base):
//   0x00 SRC    source byte address
//   0x04 DST    destination byte address
//   0x08 LEN    length in bytes
//   0x0C CMD    write: enqueue the transfer described by SRC/DST/LEN
//   0x10 STATUS read: number of transfers still outstanding
#pragma once

#include <deque>

#include "mem/bus.hpp"
#include "trace/event_trace.hpp"

namespace ulp::cluster {
class EventUnit;
}  // namespace ulp::cluster

namespace ulp::snapshot {
class Writer;
class Reader;
}  // namespace ulp::snapshot

namespace ulp::dma {

inline constexpr Addr kRegSrc = 0x00;
inline constexpr Addr kRegDst = 0x04;
inline constexpr Addr kRegLen = 0x08;
inline constexpr Addr kRegCmd = 0x0C;
inline constexpr Addr kRegStatus = 0x10;

struct DmaStats {
  u64 busy_cycles = 0;  ///< Cycles with at least one transfer in flight.
  u64 bytes_moved = 0;
  u64 transfers_completed = 0;
  u64 stall_cycles = 0;  ///< Beats delayed by denied bus grants.
};

class Dma final : public mem::Peripheral {
 public:
  /// Outcome of a fast-forwarded window (see fast_forward()).
  struct FastForwardResult {
    u64 consumed = 0;      ///< Cycles of progress actually made.
    bool completed = false;  ///< A transfer finished (completion event sent).
  };

  /// `initiator_id` distinguishes the DMA from cores in bus statistics.
  Dma(mem::DataBus* bus, u32 initiator_id, u32 max_channels = 8);

  /// Attach the event unit so completions can wake WFE sleepers.
  void set_event_unit(cluster::EventUnit* events) { events_ = events; }

  /// Attach the concrete cluster interconnect so fast_forward() can reason
  /// about bank mapping and drive begin_cycle() itself. The cluster wires
  /// this at construction; without it fast_forward() must not be called.
  void set_cluster_bus(mem::ClusterBus* cbus) { cbus_ = cbus; }

  /// Record per-transfer spans on `track` (cluster-cycle timestamps) and
  /// transfer sizes into the metrics registry. Null sinks detach.
  void attach_trace(const trace::Sinks& sinks,
                    trace::EventTrace::TrackId track) {
    sinks_ = sinks;
    track_ = track;
  }

  // Peripheral interface (core-visible registers).
  u32 read32(Addr offset) override;
  void write32(Addr offset, u32 value) override;

  /// Direct enqueue for host-side/runtime use (same effect as the MMIO
  /// programming sequence).
  void enqueue(Addr src, Addr dst, u32 len_bytes);

  /// One cluster cycle of progress: up to one 4-byte beat. Returns true
  /// when a transfer completed this cycle (its completion event was sent).
  bool step();

  /// Advance up to `max_cycles` cycles of an *uncontended* window: no core
  /// touches the interconnect, so every grant pattern — and therefore the
  /// cycles-per-beat, the TCDM access/conflict counts and the busy/stall
  /// accounting — is analytic. Produces exactly the state `max_cycles`
  /// begin_cycle()+step() iterations would, but in a tight copy loop.
  /// Stops early (and reports it) when a transfer completes, because its
  /// completion event may wake sleeping cores and end the quiescent window.
  /// Must only be called when !idle(); requires set_cluster_bus().
  FastForwardResult fast_forward(u64 max_cycles);

  /// Watch `[base, base+bytes)` as executable code (the cluster's
  /// self-modifying-code window; bytes == 0 disarms). The analytic
  /// fast_forward() paths write memory directly, bypassing the bus write
  /// watcher — any transfer that could land in the window is demoted to the
  /// per-cycle replay, whose bus stores fire the watcher beat by beat.
  void set_code_watch(Addr base, u32 bytes) {
    code_watch_base_ = base;
    code_watch_bytes_ = bytes;
  }

  /// Account `cycles` idle cycles in one jump (keeps the trace clock and
  /// any stepped-but-idle bookkeeping identical to per-cycle stepping).
  void skip_idle(u64 cycles) {
    ULP_CHECK(idle(), "DMA skip_idle while a transfer is in flight");
    now_ += cycles;
  }

  [[nodiscard]] bool idle() const {
    return queue_.empty() && !pending_write_;
  }
  [[nodiscard]] u32 outstanding() const {
    return static_cast<u32>(queue_.size()) + (pending_write_ ? 1u : 0u);
  }
  [[nodiscard]] const DmaStats& stats() const { return stats_; }
  void reset_stats() { stats_ = DmaStats{}; }

  /// Serializes registers, the transfer queue, the half-completed beat,
  /// statistics and the trace clock into the writer's current section.
  /// The code watch is not serialized — the owner re-arms it on restore.
  [[nodiscard]] Status save(snapshot::Writer& w) const;
  /// Reads (and with apply=true applies) the field sequence save() wrote.
  [[nodiscard]] Status restore(snapshot::Reader& r, bool apply);

 private:
  struct Transfer {
    Addr src = 0;
    Addr dst = 0;
    u32 remaining = 0;
    u32 total = 0;
    bool started = false;  ///< First beat issued (trace span open).
  };

  void trace_transfer_begin(const Transfer& t);
  void trace_transfer_end();
  void complete_transfer();
  [[nodiscard]] FastForwardResult fast_forward_stepped(u64 max_cycles);
  /// True when `[addr, addr+bytes)` overlaps the watched code window.
  [[nodiscard]] bool touches_code(Addr addr, u64 bytes) const {
    return code_watch_bytes_ != 0 &&
           addr < code_watch_base_ + code_watch_bytes_ &&
           addr + bytes > code_watch_base_;
  }

  [[nodiscard]] static int beat_size(const Transfer& t);

  mem::DataBus* bus_;
  mem::ClusterBus* cbus_ = nullptr;
  cluster::EventUnit* events_ = nullptr;
  u32 initiator_id_;
  u32 max_channels_;

  // Shadow registers written by cores before CMD.
  u32 reg_src_ = 0;
  u32 reg_dst_ = 0;
  u32 reg_len_ = 0;

  std::deque<Transfer> queue_;
  Addr code_watch_base_ = 0;  ///< SMC window (see set_code_watch).
  u32 code_watch_bytes_ = 0;
  bool pending_write_ = false;  ///< A beat was read but not yet written.
  bool pending_is_last_ = false;  ///< That beat completes its transfer.
  u32 pending_data_ = 0;
  int pending_size_ = 0;
  Addr pending_dst_ = 0;

  DmaStats stats_;

  u64 now_ = 0;  ///< Cluster cycles seen (step() count); trace clock.
  trace::Sinks sinks_;
  trace::EventTrace::TrackId track_ = 0;
};

}  // namespace ulp::dma
