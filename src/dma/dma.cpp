#include "dma/dma.hpp"

#include <algorithm>
#include <cstring>

#include "cluster/event_unit.hpp"
#include "common/status.hpp"
#include "snapshot/snapshot.hpp"
#include "trace/metrics.hpp"

namespace ulp::dma {

Dma::Dma(mem::DataBus* bus, u32 initiator_id, u32 max_channels)
    : bus_(bus), initiator_id_(initiator_id), max_channels_(max_channels) {
  ULP_CHECK(bus != nullptr, "DMA needs a bus");
  ULP_CHECK(max_channels > 0, "DMA needs at least one channel");
}

u32 Dma::read32(Addr offset) {
  switch (offset) {
    case kRegSrc: return reg_src_;
    case kRegDst: return reg_dst_;
    case kRegLen: return reg_len_;
    case kRegStatus: return outstanding();
    default:
      ULP_CHECK(false, "DMA read from invalid register offset " +
                           std::to_string(offset));
  }
}

void Dma::write32(Addr offset, u32 value) {
  switch (offset) {
    case kRegSrc: reg_src_ = value; return;
    case kRegDst: reg_dst_ = value; return;
    case kRegLen: reg_len_ = value; return;
    case kRegCmd: enqueue(reg_src_, reg_dst_, reg_len_); return;
    default:
      ULP_CHECK(false, "DMA write to invalid register offset " +
                           std::to_string(offset));
  }
}

void Dma::enqueue(Addr src, Addr dst, u32 len_bytes) {
  ULP_CHECK(queue_.size() < max_channels_, "DMA channel queue overflow");
  ULP_CHECK(src % 4 == 0 && dst % 4 == 0,
            "DMA transfers must be word-aligned");
  if (len_bytes == 0) return;
  queue_.push_back({src, dst, len_bytes, len_bytes, false});
  if (sinks_) {
    if (sinks_.events != nullptr) {
      sinks_.events->instant(track_, "dma.enqueue", now_,
                             {{"bytes", static_cast<double>(len_bytes)},
                              {"queued", static_cast<double>(queue_.size())}});
    }
    if (sinks_.metrics != nullptr) {
      sinks_.metrics->histogram("dma.transfer_bytes").record(len_bytes);
    }
  }
}

void Dma::trace_transfer_begin(const Transfer& t) {
  if (sinks_.events != nullptr) {
    sinks_.events->begin(track_, "dma.xfer", now_,
                         {{"bytes", static_cast<double>(t.total)},
                          {"src", static_cast<double>(t.src)},
                          {"dst", static_cast<double>(t.dst)}});
  }
}

void Dma::trace_transfer_end() {
  if (sinks_.events != nullptr) sinks_.events->end(track_, now_);
  if (sinks_.metrics != nullptr) sinks_.metrics->counter("dma.transfers").add();
}

int Dma::beat_size(const Transfer& t) {
  if (t.remaining >= 4) return 4;
  if (t.remaining >= 2) return 2;
  return 1;
}

void Dma::complete_transfer() {
  ++stats_.transfers_completed;
  if (sinks_) trace_transfer_end();
  if (events_ != nullptr) events_->send_event(0);
}

bool Dma::step() {
  ++now_;
  if (idle()) return false;
  ++stats_.busy_cycles;

  // A beat that was read but could not be written last cycle retries first.
  if (pending_write_) {
    const mem::BusResult w =
        bus_->access(pending_dst_, pending_size_, /*is_store=*/true,
                     pending_data_, /*sign_extend=*/false, initiator_id_);
    if (!w.granted) {
      ++stats_.stall_cycles;
      return false;
    }
    stats_.bytes_moved += static_cast<u64>(pending_size_);
    pending_write_ = false;
    if (pending_is_last_) {
      pending_is_last_ = false;
      complete_transfer();
      return true;
    }
    return false;
  }

  Transfer& t = queue_.front();
  if (sinks_ && !t.started) trace_transfer_begin(t);
  t.started = true;
  const int size = beat_size(t);

  const mem::BusResult r = bus_->access(t.src, size, /*is_store=*/false, 0,
                                        /*sign_extend=*/false, initiator_id_);
  if (!r.granted) {
    ++stats_.stall_cycles;
    return false;
  }
  const mem::BusResult w = bus_->access(t.dst, size, /*is_store=*/true,
                                        r.data, /*sign_extend=*/false,
                                        initiator_id_);
  const Addr dst = t.dst;
  t.src += static_cast<Addr>(size);
  t.dst += static_cast<Addr>(size);
  t.remaining -= static_cast<u32>(size);
  const bool last_beat = t.remaining == 0;
  if (last_beat) queue_.pop_front();

  if (!w.granted) {
    // Destination port busy this cycle: hold the beat, write it next cycle.
    pending_write_ = true;
    pending_is_last_ = last_beat;
    pending_data_ = r.data;
    pending_size_ = size;
    pending_dst_ = dst;
    return false;
  }
  stats_.bytes_moved += static_cast<u64>(size);
  if (last_beat) {
    complete_transfer();
    return true;
  }
  return false;
}

// Fallback for fast-forward windows the analytic path does not cover
// (attached trace sinks, peripheral-region endpoints): replay the real
// per-cycle sequence, which is still cheap because only the DMA is stepped.
Dma::FastForwardResult Dma::fast_forward_stepped(u64 max_cycles) {
  FastForwardResult r;
  while (r.consumed < max_cycles) {
    cbus_->begin_cycle();
    const bool completed = step();
    ++r.consumed;
    if (completed) {
      r.completed = true;
      break;
    }
  }
  return r;
}

Dma::FastForwardResult Dma::fast_forward(u64 max_cycles) {
  ULP_CHECK(cbus_ != nullptr, "DMA fast_forward needs the cluster bus");
  ULP_CHECK(!idle(), "DMA fast_forward while idle");
  if (sinks_) return fast_forward_stepped(max_cycles);

  mem::Tcdm& tcdm = cbus_->tcdm();
  mem::Sram& l2 = cbus_->l2();
  FastForwardResult r;

  // A beat carried in from a contended cycle writes first (uncontended, the
  // retry is granted immediately).
  if (pending_write_) {
    const bool dst_t = tcdm.contains(pending_dst_, pending_size_);
    if ((!dst_t && !l2.contains(pending_dst_, pending_size_)) ||
        touches_code(pending_dst_, static_cast<u64>(pending_size_))) {
      return fast_forward_stepped(max_cycles);
    }
    if (max_cycles == 0) return r;
    if (dst_t) {
      tcdm.store(pending_dst_, pending_size_, pending_data_);
      tcdm.charge_uncontended(/*accesses=*/1, /*conflicts=*/0);
    } else {
      l2.store(pending_dst_, pending_size_, pending_data_);
    }
    ++stats_.busy_cycles;
    stats_.bytes_moved += static_cast<u64>(pending_size_);
    ++r.consumed;
    pending_write_ = false;
    if (pending_is_last_) {
      pending_is_last_ = false;
      complete_transfer();
      r.completed = true;
    }
    now_ += r.consumed;
    return r;
  }

  while (r.consumed < max_cycles && !queue_.empty() && !r.completed) {
    Transfer& t = queue_.front();
    const bool src_t = tcdm.contains(t.src, static_cast<int>(t.remaining));
    const bool dst_t = tcdm.contains(t.dst, static_cast<int>(t.remaining));
    const bool src_l = l2.contains(t.src, static_cast<int>(t.remaining));
    const bool dst_l = l2.contains(t.dst, static_cast<int>(t.remaining));
    if ((!src_t && !src_l) || (!dst_t && !dst_l) ||
        touches_code(t.dst, t.remaining)) {
      // Peripheral or unmapped endpoint — or a destination overlapping the
      // executable-code window, whose write watcher only sees bus stores:
      // replay per-cycle semantics.
      const FastForwardResult f =
          fast_forward_stepped(max_cycles - r.consumed);
      r.consumed += f.consumed;
      r.completed = f.completed;
      now_ += r.consumed - f.consumed;  // stepped path already advanced now_
      return r;
    }
    // Source and destination advance in lockstep from word-aligned starts,
    // so the same-bank (and L2-self) relation is invariant across the whole
    // transfer: every beat costs the same number of cycles.
    const bool same_bank =
        src_t && dst_t && tcdm.bank_of(t.src) == tcdm.bank_of(t.dst);
    const bool l2_self = src_l && dst_l;
    const bool two_cycle = same_bank || l2_self;
    t.started = true;

    // Single-cycle beats over flat memory: a run of word beats is a plain
    // byte copy (src/dst advance in lockstep, so the regions/banks stay
    // distinct). Copy the whole run at once and charge the counters in
    // bulk; the sub-word tail and any overlapping ranges (where forward
    // per-beat order matters) fall through to the scalar loop below.
    if (!two_cycle && t.remaining >= 8) {
      const u32 full_beats = t.remaining / 4;
      const u32 k = static_cast<u32>(
          std::min<u64>(full_beats, max_cycles - r.consumed));
      const size_t n = static_cast<size_t>(k) * 4;
      const u8* sp = (src_t ? tcdm.bytes() : l2.bytes()).data() +
                     (t.src - (src_t ? tcdm.base() : l2.base()));
      u8* dp = (dst_t ? tcdm.bytes() : l2.bytes()).data() +
               (t.dst - (dst_t ? tcdm.base() : l2.base()));
      if (k > 1 && (sp + n <= dp || dp + n <= sp)) {
        std::memcpy(dp, sp, n);
        tcdm.charge_uncontended(
            /*accesses=*/(static_cast<u64>(src_t) + static_cast<u64>(dst_t)) *
                k,
            /*conflicts=*/0);
        stats_.busy_cycles += k;
        stats_.bytes_moved += n;
        r.consumed += k;
        t.src += static_cast<Addr>(n);
        t.dst += static_cast<Addr>(n);
        t.remaining -= static_cast<u32>(n);
        if (t.remaining == 0) {
          queue_.pop_front();
          complete_transfer();
          r.completed = true;
          break;
        }
        continue;
      }
    }

    while (t.remaining > 0 && r.consumed < max_cycles) {
      const int size = beat_size(t);
      const Addr src = t.src;
      const Addr dst = t.dst;
      const u32 data = src_t ? tcdm.load(src, size, false)
                             : l2.load(src, size, false);
      t.src += static_cast<Addr>(size);
      t.dst += static_cast<Addr>(size);
      t.remaining -= static_cast<u32>(size);
      const bool last_beat = t.remaining == 0;

      if (!two_cycle) {
        // Read + write in the same cycle (distinct banks or regions).
        tcdm.charge_uncontended(
            /*accesses=*/static_cast<u64>(src_t) + static_cast<u64>(dst_t),
            /*conflicts=*/0);
        if (dst_t) {
          tcdm.store(dst, size, data);
        } else {
          l2.store(dst, size, data);
        }
        ++stats_.busy_cycles;
        stats_.bytes_moved += static_cast<u64>(size);
        ++r.consumed;
        if (last_beat) {
          queue_.pop_front();
          complete_transfer();
          r.completed = true;
          break;
        }
        continue;
      }

      // Two-cycle beat: the read claims the bank/port, the same-cycle write
      // attempt is denied (a counted TCDM conflict; the single L2 port
      // stalls silently) and lands on the following cycle.
      tcdm.charge_uncontended(/*accesses=*/static_cast<u64>(src_t),
                              /*conflicts=*/same_bank ? 1 : 0);
      ++stats_.busy_cycles;
      ++r.consumed;
      if (last_beat) queue_.pop_front();
      if (r.consumed == max_cycles) {
        // Window ends between read and write: hold the beat exactly like
        // the per-cycle path does.
        pending_write_ = true;
        pending_is_last_ = last_beat;
        pending_data_ = data;
        pending_size_ = size;
        pending_dst_ = dst;
        break;
      }
      if (dst_t) {
        tcdm.store(dst, size, data);
        tcdm.charge_uncontended(/*accesses=*/1, /*conflicts=*/0);
      } else {
        l2.store(dst, size, data);
      }
      ++stats_.busy_cycles;
      stats_.bytes_moved += static_cast<u64>(size);
      ++r.consumed;
      if (last_beat) {
        complete_transfer();
        r.completed = true;
        break;
      }
    }
  }
  now_ += r.consumed;
  return r;
}

Status Dma::save(snapshot::Writer& w) const {
  w.put_u32(reg_src_);
  w.put_u32(reg_dst_);
  w.put_u32(reg_len_);
  w.put_u64(queue_.size());
  for (const Transfer& t : queue_) {
    w.put_u32(t.src);
    w.put_u32(t.dst);
    w.put_u32(t.remaining);
    w.put_u32(t.total);
    w.put_bool(t.started);
  }
  w.put_bool(pending_write_);
  w.put_bool(pending_is_last_);
  w.put_u32(pending_data_);
  w.put_i32(pending_size_);
  w.put_u32(pending_dst_);
  w.put_u64(stats_.busy_cycles);
  w.put_u64(stats_.bytes_moved);
  w.put_u64(stats_.transfers_completed);
  w.put_u64(stats_.stall_cycles);
  w.put_u64(now_);
  return Status{};
}

Status Dma::restore(snapshot::Reader& r, bool apply) {
  const u32 reg_src = r.get_u32();
  const u32 reg_dst = r.get_u32();
  const u32 reg_len = r.get_u32();
  const u64 depth = r.get_u64();
  if (depth > max_channels_) {
    r.fail(StatusCode::kInvalidArgument,
           "snapshot DMA queue exceeds channel count");
  }
  std::deque<Transfer> queue;
  for (u64 i = 0; i < depth && r.status().ok(); ++i) {
    Transfer t;
    t.src = r.get_u32();
    t.dst = r.get_u32();
    t.remaining = r.get_u32();
    t.total = r.get_u32();
    t.started = r.get_bool();
    if (t.remaining > t.total) {
      r.fail(StatusCode::kInvalidArgument, "snapshot DMA transfer malformed");
    }
    queue.push_back(t);
  }
  const bool pending_write = r.get_bool();
  const bool pending_is_last = r.get_bool();
  const u32 pending_data = r.get_u32();
  const int pending_size = r.get_i32();
  const Addr pending_dst = r.get_u32();
  if (pending_size < 0 || pending_size > 4) {
    r.fail(StatusCode::kInvalidArgument, "snapshot DMA beat size malformed");
  }
  DmaStats stats;
  stats.busy_cycles = r.get_u64();
  stats.bytes_moved = r.get_u64();
  stats.transfers_completed = r.get_u64();
  stats.stall_cycles = r.get_u64();
  const u64 now = r.get_u64();
  if (Status s = r.status(); !s.ok()) return s;
  if (!apply) return Status{};

  reg_src_ = reg_src;
  reg_dst_ = reg_dst;
  reg_len_ = reg_len;
  queue_ = std::move(queue);
  pending_write_ = pending_write;
  pending_is_last_ = pending_is_last;
  pending_data_ = pending_data;
  pending_size_ = pending_size;
  pending_dst_ = pending_dst;
  stats_ = stats;
  now_ = now;
  return Status{};
}

}  // namespace ulp::dma
