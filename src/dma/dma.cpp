#include "dma/dma.hpp"

#include "cluster/event_unit.hpp"
#include "common/status.hpp"
#include "trace/metrics.hpp"

namespace ulp::dma {

Dma::Dma(mem::DataBus* bus, u32 initiator_id, u32 max_channels)
    : bus_(bus), initiator_id_(initiator_id), max_channels_(max_channels) {
  ULP_CHECK(bus != nullptr, "DMA needs a bus");
  ULP_CHECK(max_channels > 0, "DMA needs at least one channel");
}

u32 Dma::read32(Addr offset) {
  switch (offset) {
    case kRegSrc: return reg_src_;
    case kRegDst: return reg_dst_;
    case kRegLen: return reg_len_;
    case kRegStatus: return outstanding();
    default:
      ULP_CHECK(false, "DMA read from invalid register offset " +
                           std::to_string(offset));
  }
}

void Dma::write32(Addr offset, u32 value) {
  switch (offset) {
    case kRegSrc: reg_src_ = value; return;
    case kRegDst: reg_dst_ = value; return;
    case kRegLen: reg_len_ = value; return;
    case kRegCmd: enqueue(reg_src_, reg_dst_, reg_len_); return;
    default:
      ULP_CHECK(false, "DMA write to invalid register offset " +
                           std::to_string(offset));
  }
}

void Dma::enqueue(Addr src, Addr dst, u32 len_bytes) {
  ULP_CHECK(queue_.size() < max_channels_, "DMA channel queue overflow");
  ULP_CHECK(src % 4 == 0 && dst % 4 == 0,
            "DMA transfers must be word-aligned");
  if (len_bytes == 0) return;
  queue_.push_back({src, dst, len_bytes, len_bytes, false});
  if (sinks_) {
    if (sinks_.events != nullptr) {
      sinks_.events->instant(track_, "dma.enqueue", now_,
                             {{"bytes", static_cast<double>(len_bytes)},
                              {"queued", static_cast<double>(queue_.size())}});
    }
    if (sinks_.metrics != nullptr) {
      sinks_.metrics->histogram("dma.transfer_bytes").record(len_bytes);
    }
  }
}

void Dma::trace_transfer_begin(const Transfer& t) {
  if (sinks_.events != nullptr) {
    sinks_.events->begin(track_, "dma.xfer", now_,
                         {{"bytes", static_cast<double>(t.total)},
                          {"src", static_cast<double>(t.src)},
                          {"dst", static_cast<double>(t.dst)}});
  }
}

void Dma::trace_transfer_end() {
  if (sinks_.events != nullptr) sinks_.events->end(track_, now_);
  if (sinks_.metrics != nullptr) sinks_.metrics->counter("dma.transfers").add();
}

int Dma::beat_size(const Transfer& t) {
  if (t.remaining >= 4) return 4;
  if (t.remaining >= 2) return 2;
  return 1;
}

void Dma::step() {
  ++now_;
  if (idle()) return;
  ++stats_.busy_cycles;

  // A beat that was read but could not be written last cycle retries first.
  if (pending_write_) {
    const mem::BusResult w =
        bus_->access(pending_dst_, pending_size_, /*is_store=*/true,
                     pending_data_, /*sign_extend=*/false, initiator_id_);
    if (!w.granted) {
      ++stats_.stall_cycles;
      return;
    }
    stats_.bytes_moved += static_cast<u64>(pending_size_);
    pending_write_ = false;
    if (pending_is_last_) {
      pending_is_last_ = false;
      ++stats_.transfers_completed;
      if (sinks_) trace_transfer_end();
      if (events_ != nullptr) events_->send_event(0);
    }
    return;
  }

  Transfer& t = queue_.front();
  if (sinks_ && !t.started) trace_transfer_begin(t);
  t.started = true;
  const int size = beat_size(t);

  const mem::BusResult r = bus_->access(t.src, size, /*is_store=*/false, 0,
                                        /*sign_extend=*/false, initiator_id_);
  if (!r.granted) {
    ++stats_.stall_cycles;
    return;
  }
  const mem::BusResult w = bus_->access(t.dst, size, /*is_store=*/true,
                                        r.data, /*sign_extend=*/false,
                                        initiator_id_);
  const Addr dst = t.dst;
  t.src += static_cast<Addr>(size);
  t.dst += static_cast<Addr>(size);
  t.remaining -= static_cast<u32>(size);
  const bool last_beat = t.remaining == 0;
  if (last_beat) queue_.pop_front();

  if (!w.granted) {
    // Destination port busy this cycle: hold the beat, write it next cycle.
    pending_write_ = true;
    pending_is_last_ = last_beat;
    pending_data_ = r.data;
    pending_size_ = size;
    pending_dst_ = dst;
    return;
  }
  stats_.bytes_moved += static_cast<u64>(size);
  if (last_beat) {
    ++stats_.transfers_completed;
    if (sinks_) trace_transfer_end();
    if (events_ != nullptr) events_->send_event(0);
  }
}

}  // namespace ulp::dma
