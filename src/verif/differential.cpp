#include "verif/differential.hpp"

#include <sstream>

#include "cluster/cluster.hpp"
#include "common/rng.hpp"
#include "isa/disasm.hpp"

namespace ulp::verif {

namespace {

std::string hex(u32 v) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "0x%08x", v);
  return buf;
}

std::string describe_retire(const Retire& r) {
  return "pc " + std::to_string(r.pc) + ": " + isa::disassemble(r.instr);
}

/// First index at which two retire logs diverge, formatted; empty if equal.
std::string diff_retires(const std::string& label,
                         const std::vector<Retire>& a,
                         const std::vector<Retire>& b) {
  const size_t n = std::min(a.size(), b.size());
  for (size_t i = 0; i < n; ++i) {
    if (!(a[i] == b[i])) {
      return label + ": retire[" + std::to_string(i) + "] " +
             describe_retire(a[i]) + " vs " + describe_retire(b[i]);
    }
  }
  if (a.size() != b.size()) {
    return label + ": retire count " + std::to_string(a.size()) + " vs " +
           std::to_string(b.size()) +
           (n > 0 ? " (last common: " + describe_retire(a[n - 1]) + ")" : "");
  }
  return {};
}

std::string diff_memory(const std::string& label, Addr base,
                        const std::vector<u8>& a, const std::vector<u8>& b) {
  if (a.size() != b.size()) {
    return label + ": size " + std::to_string(a.size()) + " vs " +
           std::to_string(b.size());
  }
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i] != b[i]) {
      return label + ": byte at " + hex(base + static_cast<Addr>(i)) + " = " +
             std::to_string(a[i]) + " vs " + std::to_string(b[i]);
    }
  }
  return {};
}

/// Everything two cluster runs of the same program must agree on — which is
/// everything, including exact cycle counts. `label` names the pairing in
/// the verdict ("ref-vs-ff", "ref-vs-bc", ...).
std::string diff_observations(const std::string& label, const Observation& ref,
                              const Observation& ff) {
  if (ref.cycles != ff.cycles) {
    return label + ": cycles " + std::to_string(ref.cycles) + " vs " +
           std::to_string(ff.cycles);
  }
  if (ref.eoc != ff.eoc || ref.eoc_flag != ff.eoc_flag) {
    return label + ": eoc " + std::to_string(ref.eoc) + "/" +
           std::to_string(ref.eoc_flag) + " vs " + std::to_string(ff.eoc) +
           "/" + std::to_string(ff.eoc_flag);
  }
  if (ref.barriers_completed != ff.barriers_completed) {
    return label + ": barriers " + std::to_string(ref.barriers_completed) +
           " vs " + std::to_string(ff.barriers_completed);
  }
  for (size_t c = 0; c < ref.regs.size(); ++c) {
    for (size_t r = 0; r < isa::kNumRegs; ++r) {
      if (ref.regs[c][r] != ff.regs[c][r]) {
        return label + ": core " + std::to_string(c) + " r" +
               std::to_string(r) + " = " + hex(ref.regs[c][r]) + " vs " +
               hex(ff.regs[c][r]);
      }
    }
  }
  std::string d = diff_memory(label + ": tcdm", memmap::kTcdmBase, ref.tcdm,
                              ff.tcdm);
  if (!d.empty()) return d;
  d = diff_memory(label + ": l2", memmap::kL2Base, ref.l2, ff.l2);
  if (!d.empty()) return d;
  for (size_t c = 0; c < ref.retires.size(); ++c) {
    d = diff_retires(label + ": core " + std::to_string(c), ref.retires[c],
                     ff.retires[c]);
    if (!d.empty()) return d;
  }
  return {};
}

/// Golden-vs-cluster comparison (single-core programs only).
std::string diff_golden(const GenProgram& gp, const Golden& golden,
                        const Observation& real) {
  for (size_t r = 0; r < isa::kNumRegs; ++r) {
    if (golden.reg(static_cast<u32>(r)) != real.regs[0][r]) {
      return "golden-vs-cluster: r" + std::to_string(r) + " = " +
             hex(golden.reg(static_cast<u32>(r))) + " vs " +
             hex(real.regs[0][r]);
    }
  }
  const bool golden_eoc = golden.eoc().has_value();
  if (golden_eoc != real.eoc ||
      (golden_eoc && *golden.eoc() != real.eoc_flag)) {
    return "golden-vs-cluster: eoc " + std::to_string(golden_eoc) + "/" +
           std::to_string(golden_eoc ? *golden.eoc() : 0) + " vs " +
           std::to_string(real.eoc) + "/" + std::to_string(real.eoc_flag);
  }
  std::string d = diff_memory("golden-vs-cluster: tcdm", memmap::kTcdmBase,
                              golden.tcdm(), real.tcdm);
  if (!d.empty()) return d;
  d = diff_memory("golden-vs-cluster: l2", memmap::kL2Base, golden.l2(),
                  real.l2);
  if (!d.empty()) return d;
  if (gp.deterministic_retire) {
    d = diff_retires("golden-vs-cluster", golden.retire_log(),
                     real.retires[0]);
    if (!d.empty()) return d;
  }
  return {};
}

std::string check_dma_copies(const GenProgram& gp, const Observation& obs) {
  for (const DmaCopy& copy : gp.dma_copies) {
    for (u32 i = 0; i < copy.len; ++i) {
      const u8 src = obs.l2[copy.src + i - memmap::kL2Base];
      const u8 dst = obs.tcdm[copy.dst + i - memmap::kTcdmBase];
      if (src != dst) {
        return "dma: dst byte at " + hex(copy.dst + i) + " = " +
               std::to_string(dst) + ", src holds " + std::to_string(src) +
               " (transfer " + hex(copy.src) + " -> " + hex(copy.dst) +
               " len " + std::to_string(copy.len) + ")";
      }
    }
  }
  return {};
}

}  // namespace

Observation run_on_cluster(const GenProgram& gp, bool reference_stepping,
                           u64 max_cycles, Coverage* cov,
                           std::optional<bool> block_cache,
                           std::optional<bool> multicore_windows) {
  cluster::ClusterParams params;
  params.num_cores = gp.num_cores;
  params.core_config = gp.config;
  params.reference_stepping = reference_stepping;
  params.block_cache = block_cache;
  params.multicore_windows = multicore_windows;
  cluster::Cluster cluster(params);

  Observation obs;
  obs.retires.resize(gp.num_cores);
  for (u32 c = 0; c < gp.num_cores; ++c) {
    auto* log = &obs.retires[c];
    cluster.core(c).set_retire_hook(
        [log, cov](u32 pc, const isa::Instr& in) {
          log->push_back({pc, in});
          if (cov != nullptr) cov->record(in);
        });
  }
  cluster.load_program(gp.program);
  obs.cycles = cluster.run(max_cycles);
  obs.eoc = cluster.events().eoc();
  obs.eoc_flag = cluster.events().eoc_flag();
  obs.barriers_completed = cluster.events().barriers_completed();
  obs.regs.resize(gp.num_cores);
  for (u32 c = 0; c < gp.num_cores; ++c) {
    for (u32 r = 0; r < isa::kNumRegs; ++r) {
      obs.regs[c][r] = cluster.core(c).reg(r);
    }
  }
  const auto tcdm = cluster.tcdm().bytes();
  obs.tcdm.assign(tcdm.begin(), tcdm.end());
  const auto l2 = cluster.l2().bytes();
  obs.l2.assign(l2.begin(), l2.end());
  return obs;
}

DiffResult check_program(const GenProgram& gp, Coverage* cov,
                         u64 max_cycles) {
  DiffResult result;
  auto fail = [&](std::string detail) {
    result.pass = false;
    result.detail = std::move(detail);
    return result;
  };

  // Stepping matrix: the per-cycle oracle, plain fast-forward, solo
  // block-cached fast-forward and — for multi-core programs — block-cached
  // fast-forward with multi-core windows must be indistinguishable.
  Observation ref;
  Observation ff;
  Observation bc;
  try {
    ref = run_on_cluster(gp, /*reference_stepping=*/true, max_cycles, cov);
  } catch (const SimError& e) {
    return fail(std::string("cluster(ref): ") + e.what());
  }
  try {
    ff = run_on_cluster(gp, /*reference_stepping=*/false, max_cycles,
                        /*cov=*/nullptr, /*block_cache=*/false);
  } catch (const SimError& e) {
    return fail(std::string("cluster(ff): ") + e.what());
  }
  try {
    bc = run_on_cluster(gp, /*reference_stepping=*/false, max_cycles,
                        /*cov=*/nullptr, /*block_cache=*/true,
                        /*multicore_windows=*/false);
  } catch (const SimError& e) {
    return fail(std::string("cluster(bc): ") + e.what());
  }
  std::string d = diff_observations("ref-vs-ff", ref, ff);
  if (!d.empty()) return fail(std::move(d));
  d = diff_observations("ref-vs-bc", ref, bc);
  if (!d.empty()) return fail(std::move(d));
  if (gp.num_cores > 1) {
    Observation bm;
    try {
      bm = run_on_cluster(gp, /*reference_stepping=*/false, max_cycles,
                          /*cov=*/nullptr, /*block_cache=*/true,
                          /*multicore_windows=*/true);
    } catch (const SimError& e) {
      return fail(std::string("cluster(bc-mc): ") + e.what());
    }
    d = diff_observations("ref-vs-bc-mc", ref, bm);
    if (!d.empty()) return fail(std::move(d));
  }

  if (gp.num_cores == 1) {
    Golden golden;
    const Status s = golden.run(gp.program);
    if (!s.ok()) return fail(s.message());
    if (cov != nullptr) cov->merge(golden.coverage());
    d = diff_golden(gp, golden, ref);
    if (!d.empty()) return fail(std::move(d));
  }

  d = check_dma_copies(gp, ref);
  if (!d.empty()) return fail(std::move(d));
  return result;
}

GenParams campaign_member(const CampaignParams& p, u32 index, bool stress) {
  GenParams gen;
  gen.body_items = p.body_items;
  gen.allow_dma = p.allow_dma;
  if (!stress) {
    gen.seed = derive_seed(p.seed, index);
    gen.num_cores = 1;
    // Profile stripe: mostly the synthetic full-featured core (the only one
    // that reaches every opcode), with the modelled cores mixed in so their
    // builder fallback paths (software loops, mul/add MAC, unrolling) stay
    // under differential test too.
    switch (index % 10) {
      case 6: case 7: gen.profile = "or10n"; break;
      case 8: gen.profile = "cortex_m4"; break;
      case 9: gen.profile = "baseline"; break;
      default: gen.profile = "full"; break;
    }
  } else {
    gen.seed = derive_seed(p.seed, (1u << 20) + index);
    gen.num_cores = 2 + index % 3;
    gen.profile = index % 4 == 3 ? "or10n" : "full";
  }
  return gen;
}

CampaignResult run_campaign(const CampaignParams& params) {
  CampaignResult result;
  auto record_failure = [&](const GenParams& gen, std::string detail) {
    ++result.failure_count;
    if (result.failures.size() < 32) {
      result.failures.push_back({gen, std::move(detail)});
    }
  };

  for (u32 i = 0; i < params.num_programs; ++i) {
    const GenParams gen = campaign_member(params, i, /*stress=*/false);
    const GenProgram gp = generate(gen);
    DiffResult r = check_program(gp, &result.coverage);
    ++result.programs_run;
    if (!r.pass) record_failure(gen, std::move(r.detail));
  }
  for (u32 i = 0; i < params.num_stress; ++i) {
    const GenParams gen = campaign_member(params, i, /*stress=*/true);
    const GenProgram gp = generate(gen);
    DiffResult r = check_program(gp, &result.coverage);
    ++result.stress_run;
    if (!r.pass) record_failure(gen, std::move(r.detail));
  }
  return result;
}

}  // namespace ulp::verif
