#include "verif/differential.hpp"

#include <memory>
#include <sstream>

#include "cluster/cluster.hpp"
#include "common/rng.hpp"
#include "isa/disasm.hpp"
#include "snapshot/snapshot.hpp"

namespace ulp::verif {

namespace {

std::string hex(u32 v) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "0x%08x", v);
  return buf;
}

std::string describe_retire(const Retire& r) {
  return "pc " + std::to_string(r.pc) + ": " + isa::disassemble(r.instr);
}

/// First index at which two retire logs diverge, formatted; empty if equal.
std::string diff_retires(const std::string& label,
                         const std::vector<Retire>& a,
                         const std::vector<Retire>& b) {
  const size_t n = std::min(a.size(), b.size());
  for (size_t i = 0; i < n; ++i) {
    if (!(a[i] == b[i])) {
      return label + ": retire[" + std::to_string(i) + "] " +
             describe_retire(a[i]) + " vs " + describe_retire(b[i]);
    }
  }
  if (a.size() != b.size()) {
    return label + ": retire count " + std::to_string(a.size()) + " vs " +
           std::to_string(b.size()) +
           (n > 0 ? " (last common: " + describe_retire(a[n - 1]) + ")" : "");
  }
  return {};
}

std::string diff_memory(const std::string& label, Addr base,
                        const std::vector<u8>& a, const std::vector<u8>& b) {
  if (a.size() != b.size()) {
    return label + ": size " + std::to_string(a.size()) + " vs " +
           std::to_string(b.size());
  }
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i] != b[i]) {
      return label + ": byte at " + hex(base + static_cast<Addr>(i)) + " = " +
             std::to_string(a[i]) + " vs " + std::to_string(b[i]);
    }
  }
  return {};
}

/// First divergence between two per-core attribution captures; empty if
/// equal. The attribution stream is charged at mode-independent points, so
/// stepping modes — and a run stitched across a snapshot seam — must agree
/// on every counter, call-tree node and live stack entry.
std::string diff_profiles(
    const std::string& label,
    const std::vector<profile::PcProfile::RawState>& a,
    const std::vector<profile::PcProfile::RawState>& b) {
  if (a.size() != b.size()) {
    return label + ": profile core count " + std::to_string(a.size()) +
           " vs " + std::to_string(b.size());
  }
  for (size_t c = 0; c < a.size(); ++c) {
    const std::string at = label + ": core " + std::to_string(c);
    const auto& pa = a[c];
    const auto& pb = b[c];
    if (pa.pcs != pb.pcs) {
      const size_t n = std::min(pa.pcs.size(), pb.pcs.size());
      for (size_t i = 0; i < n; ++i) {
        if (!(pa.pcs[i] == pb.pcs[i])) {
          return at + " profile pc " + std::to_string(i) + ": " +
                 std::to_string(pa.pcs[i].instrs) + "i/" +
                 std::to_string(pa.pcs[i].cycles) + "c vs " +
                 std::to_string(pb.pcs[i].instrs) + "i/" +
                 std::to_string(pb.pcs[i].cycles) + "c";
        }
      }
      return at + " profile pc count " + std::to_string(pa.pcs.size()) +
             " vs " + std::to_string(pb.pcs.size());
    }
    if (pa.frames.size() != pb.frames.size()) {
      return at + " profile frame count " + std::to_string(pa.frames.size()) +
             " vs " + std::to_string(pb.frames.size());
    }
    for (size_t i = 0; i < pa.frames.size(); ++i) {
      const auto& fa = pa.frames[i];
      const auto& fb = pb.frames[i];
      if (fa.entry_pc != fb.entry_pc || fa.parent != fb.parent ||
          fa.cycles != fb.cycles) {
        return at + " profile frame " + std::to_string(i) + ": entry " +
               std::to_string(fa.entry_pc) + " parent " +
               std::to_string(fa.parent) + " cycles " +
               std::to_string(fa.cycles) + " vs entry " +
               std::to_string(fb.entry_pc) + " parent " +
               std::to_string(fb.parent) + " cycles " +
               std::to_string(fb.cycles);
      }
    }
    if (pa.stack != pb.stack || pa.current != pb.current ||
        pa.truncated_calls != pb.truncated_calls) {
      return at + " profile call stack: depth " +
             std::to_string(pa.stack.size()) + " current " +
             std::to_string(pa.current) + " truncated " +
             std::to_string(pa.truncated_calls) + " vs depth " +
             std::to_string(pb.stack.size()) + " current " +
             std::to_string(pb.current) + " truncated " +
             std::to_string(pb.truncated_calls);
    }
  }
  return {};
}

/// Everything two cluster runs of the same program must agree on — which is
/// everything, including exact cycle counts. `label` names the pairing in
/// the verdict ("ref-vs-ff", "ref-vs-bc", ...).
std::string diff_observations(const std::string& label, const Observation& ref,
                              const Observation& ff) {
  if (ref.cycles != ff.cycles) {
    return label + ": cycles " + std::to_string(ref.cycles) + " vs " +
           std::to_string(ff.cycles);
  }
  if (ref.eoc != ff.eoc || ref.eoc_flag != ff.eoc_flag) {
    return label + ": eoc " + std::to_string(ref.eoc) + "/" +
           std::to_string(ref.eoc_flag) + " vs " + std::to_string(ff.eoc) +
           "/" + std::to_string(ff.eoc_flag);
  }
  if (ref.barriers_completed != ff.barriers_completed) {
    return label + ": barriers " + std::to_string(ref.barriers_completed) +
           " vs " + std::to_string(ff.barriers_completed);
  }
  for (size_t c = 0; c < ref.regs.size(); ++c) {
    for (size_t r = 0; r < isa::kNumRegs; ++r) {
      if (ref.regs[c][r] != ff.regs[c][r]) {
        return label + ": core " + std::to_string(c) + " r" +
               std::to_string(r) + " = " + hex(ref.regs[c][r]) + " vs " +
               hex(ff.regs[c][r]);
      }
    }
  }
  std::string d = diff_memory(label + ": tcdm", memmap::kTcdmBase, ref.tcdm,
                              ff.tcdm);
  if (!d.empty()) return d;
  d = diff_memory(label + ": l2", memmap::kL2Base, ref.l2, ff.l2);
  if (!d.empty()) return d;
  for (size_t c = 0; c < ref.retires.size(); ++c) {
    d = diff_retires(label + ": core " + std::to_string(c), ref.retires[c],
                     ff.retires[c]);
    if (!d.empty()) return d;
  }
  d = diff_profiles(label, ref.profiles, ff.profiles);
  if (!d.empty()) return d;
  return {};
}

/// Golden-vs-cluster comparison (single-core programs only).
std::string diff_golden(const GenProgram& gp, const Golden& golden,
                        const Observation& real) {
  for (size_t r = 0; r < isa::kNumRegs; ++r) {
    if (golden.reg(static_cast<u32>(r)) != real.regs[0][r]) {
      return "golden-vs-cluster: r" + std::to_string(r) + " = " +
             hex(golden.reg(static_cast<u32>(r))) + " vs " +
             hex(real.regs[0][r]);
    }
  }
  const bool golden_eoc = golden.eoc().has_value();
  if (golden_eoc != real.eoc ||
      (golden_eoc && *golden.eoc() != real.eoc_flag)) {
    return "golden-vs-cluster: eoc " + std::to_string(golden_eoc) + "/" +
           std::to_string(golden_eoc ? *golden.eoc() : 0) + " vs " +
           std::to_string(real.eoc) + "/" + std::to_string(real.eoc_flag);
  }
  std::string d = diff_memory("golden-vs-cluster: tcdm", memmap::kTcdmBase,
                              golden.tcdm(), real.tcdm);
  if (!d.empty()) return d;
  d = diff_memory("golden-vs-cluster: l2", memmap::kL2Base, golden.l2(),
                  real.l2);
  if (!d.empty()) return d;
  if (gp.deterministic_retire) {
    d = diff_retires("golden-vs-cluster", golden.retire_log(),
                     real.retires[0]);
    if (!d.empty()) return d;
  }
  return {};
}

std::string check_dma_copies(const GenProgram& gp, const Observation& obs) {
  for (const DmaCopy& copy : gp.dma_copies) {
    for (u32 i = 0; i < copy.len; ++i) {
      const u8 src = obs.l2[copy.src + i - memmap::kL2Base];
      const u8 dst = obs.tcdm[copy.dst + i - memmap::kTcdmBase];
      if (src != dst) {
        return "dma: dst byte at " + hex(copy.dst + i) + " = " +
               std::to_string(dst) + ", src holds " + std::to_string(src) +
               " (transfer " + hex(copy.src) + " -> " + hex(copy.dst) +
               " len " + std::to_string(copy.len) + ")";
      }
    }
  }
  return {};
}

cluster::ClusterParams cluster_params_for(const GenProgram& gp,
                                          bool reference_stepping,
                                          std::optional<bool> block_cache,
                                          std::optional<bool> mc_windows) {
  cluster::ClusterParams params;
  params.num_cores = gp.num_cores;
  params.core_config = gp.config;
  params.reference_stepping = reference_stepping;
  params.block_cache = block_cache;
  params.multicore_windows = mc_windows;
  return params;
}

/// Retire hooks appending into `obs` plus one attribution profile per core.
/// Hooks and profiles survive the reset() inside a restore, so the same
/// wiring covers both a plain run and the restored half of a snapshot leg.
void attach_observers(cluster::Cluster& cluster, const GenProgram& gp,
                      Observation* obs, Coverage* cov,
                      std::vector<std::unique_ptr<profile::PcProfile>>* profs) {
  obs->retires.resize(gp.num_cores);
  profs->clear();
  for (u32 c = 0; c < gp.num_cores; ++c) {
    auto* log = &obs->retires[c];
    cluster.core(c).set_retire_hook(
        [log, cov](u32 pc, const isa::Instr& in) {
          log->push_back({pc, in});
          if (cov != nullptr) cov->record(in);
        });
    profs->push_back(std::make_unique<profile::PcProfile>());
    cluster.core(c).set_profile(profs->back().get());
  }
}

void capture_final(cluster::Cluster& cluster, const GenProgram& gp,
                   Observation* obs,
                   const std::vector<std::unique_ptr<profile::PcProfile>>&
                       profs) {
  obs->eoc = cluster.events().eoc();
  obs->eoc_flag = cluster.events().eoc_flag();
  obs->barriers_completed = cluster.events().barriers_completed();
  obs->regs.resize(gp.num_cores);
  for (u32 c = 0; c < gp.num_cores; ++c) {
    for (u32 r = 0; r < isa::kNumRegs; ++r) {
      obs->regs[c][r] = cluster.core(c).reg(r);
    }
  }
  const auto tcdm = cluster.tcdm().bytes();
  obs->tcdm.assign(tcdm.begin(), tcdm.end());
  const auto l2 = cluster.l2().bytes();
  obs->l2.assign(l2.begin(), l2.end());
  obs->profiles.clear();
  for (const auto& p : profs) obs->profiles.push_back(p->raw_state());
}

/// The snapshot leg of one stepping mode: advance a cluster `snap_cycles`
/// cycles, snapshot it, restore the image into a *freshly constructed*
/// cluster and run that one to completion. Retire logs and profiles are
/// stitched across the seam (the restored half keeps appending to the same
/// logs; profile capture state rides inside the snapshot), so the returned
/// Observation is comparable 1:1 against the continuous run's.
Observation run_snapshot_on_cluster(const GenProgram& gp,
                                    bool reference_stepping, u64 snap_cycles,
                                    u64 max_cycles,
                                    std::optional<bool> block_cache,
                                    std::optional<bool> mc_windows) {
  const cluster::ClusterParams params =
      cluster_params_for(gp, reference_stepping, block_cache, mc_windows);

  Observation obs;
  std::vector<u8> image;
  {
    cluster::Cluster donor(params);
    std::vector<std::unique_ptr<profile::PcProfile>> profs;
    attach_observers(donor, gp, &obs, /*cov=*/nullptr, &profs);
    donor.load_program(gp.program);
    donor.advance(snap_cycles);
    snapshot::Writer w;
    donor.save(w).or_throw();
    image = w.finish();
  }

  cluster::Cluster resumed(params);
  std::vector<std::unique_ptr<profile::PcProfile>> profs;
  // Observers go on before restore: the profiles must be attached when the
  // restore applies their serialized capture state.
  attach_observers(resumed, gp, &obs, /*cov=*/nullptr, &profs);
  // attach_observers resized the retire logs but must not clear them — the
  // donor's prefix is the first half of the stitched log.
  snapshot::Reader r;
  r.open(image).or_throw();
  resumed.restore(r).or_throw();
  obs.cycles = resumed.run(max_cycles);
  capture_final(resumed, gp, &obs, profs);
  return obs;
}

}  // namespace

Observation run_on_cluster(const GenProgram& gp, bool reference_stepping,
                           u64 max_cycles, Coverage* cov,
                           std::optional<bool> block_cache,
                           std::optional<bool> multicore_windows) {
  cluster::Cluster cluster(cluster_params_for(gp, reference_stepping,
                                              block_cache,
                                              multicore_windows));

  Observation obs;
  std::vector<std::unique_ptr<profile::PcProfile>> profs;
  attach_observers(cluster, gp, &obs, cov, &profs);
  cluster.load_program(gp.program);
  obs.cycles = cluster.run(max_cycles);
  capture_final(cluster, gp, &obs, profs);
  return obs;
}

DiffResult check_program(const GenProgram& gp, Coverage* cov,
                         u64 max_cycles, bool snapshot_column) {
  DiffResult result;
  auto fail = [&](std::string detail) {
    result.pass = false;
    result.detail = std::move(detail);
    return result;
  };

  // Stepping matrix: the per-cycle oracle, plain fast-forward, solo
  // block-cached fast-forward and — for multi-core programs — block-cached
  // fast-forward with multi-core windows must be indistinguishable.
  Observation ref;
  Observation ff;
  Observation bc;
  try {
    ref = run_on_cluster(gp, /*reference_stepping=*/true, max_cycles, cov);
  } catch (const SimError& e) {
    return fail(std::string("cluster(ref): ") + e.what());
  }
  try {
    ff = run_on_cluster(gp, /*reference_stepping=*/false, max_cycles,
                        /*cov=*/nullptr, /*block_cache=*/false);
  } catch (const SimError& e) {
    return fail(std::string("cluster(ff): ") + e.what());
  }
  try {
    bc = run_on_cluster(gp, /*reference_stepping=*/false, max_cycles,
                        /*cov=*/nullptr, /*block_cache=*/true,
                        /*multicore_windows=*/false);
  } catch (const SimError& e) {
    return fail(std::string("cluster(bc): ") + e.what());
  }
  std::string d = diff_observations("ref-vs-ff", ref, ff);
  if (!d.empty()) return fail(std::move(d));
  d = diff_observations("ref-vs-bc", ref, bc);
  if (!d.empty()) return fail(std::move(d));
  Observation bm;
  if (gp.num_cores > 1) {
    try {
      bm = run_on_cluster(gp, /*reference_stepping=*/false, max_cycles,
                          /*cov=*/nullptr, /*block_cache=*/true,
                          /*multicore_windows=*/true);
    } catch (const SimError& e) {
      return fail(std::string("cluster(bc-mc): ") + e.what());
    }
    d = diff_observations("ref-vs-bc-mc", ref, bm);
    if (!d.empty()) return fail(std::move(d));
  }

  if (snapshot_column) {
    // Snapshot column: every cluster-backed mode replayed through a mid-run
    // save/restore into a fresh cluster. The split point is a pure function
    // of the program seed over 0..cycles inclusive, so save-at-boot and
    // save-after-halt (DMA drain included) both come up across a campaign.
    const u64 snap_cycles =
        derive_seed(gp.seed, 0x534E4150 /* "SNAP" */) % (ref.cycles + 1);
    struct SnapMode {
      const char* name;
      bool reference;
      std::optional<bool> block_cache;
      std::optional<bool> mc_windows;
      const Observation* continuous;
    };
    const SnapMode modes[] = {
        {"ref", true, {}, {}, &ref},
        {"ff", false, false, {}, &ff},
        {"bc", false, true, false, &bc},
        {"bc-mc", false, true, true, gp.num_cores > 1 ? &bm : nullptr},
    };
    for (const SnapMode& m : modes) {
      if (m.continuous == nullptr) continue;
      Observation snap;
      try {
        snap = run_snapshot_on_cluster(gp, m.reference, snap_cycles,
                                       max_cycles, m.block_cache,
                                       m.mc_windows);
      } catch (const SimError& e) {
        return fail(std::string("cluster(snap-") + m.name + "): " + e.what());
      }
      d = diff_observations(std::string(m.name) + "-vs-snap", *m.continuous,
                            snap);
      if (!d.empty()) return fail(std::move(d));
    }
  }

  if (gp.num_cores == 1) {
    Golden golden;
    const Status s = golden.run(gp.program);
    if (!s.ok()) return fail(s.message());
    if (cov != nullptr) cov->merge(golden.coverage());
    d = diff_golden(gp, golden, ref);
    if (!d.empty()) return fail(std::move(d));
  }

  d = check_dma_copies(gp, ref);
  if (!d.empty()) return fail(std::move(d));
  return result;
}

GenParams campaign_member(const CampaignParams& p, u32 index, bool stress) {
  GenParams gen;
  gen.body_items = p.body_items;
  gen.allow_dma = p.allow_dma;
  if (!stress) {
    gen.seed = derive_seed(p.seed, index);
    gen.num_cores = 1;
    // Profile stripe: mostly the synthetic full-featured core (the only one
    // that reaches every opcode), with the modelled cores mixed in so their
    // builder fallback paths (software loops, mul/add MAC, unrolling) stay
    // under differential test too.
    switch (index % 10) {
      case 6: case 7: gen.profile = "or10n"; break;
      case 8: gen.profile = "cortex_m4"; break;
      case 9: gen.profile = "baseline"; break;
      default: gen.profile = "full"; break;
    }
  } else {
    gen.seed = derive_seed(p.seed, (1u << 20) + index);
    gen.num_cores = 2 + index % 3;
    gen.profile = index % 4 == 3 ? "or10n" : "full";
  }
  return gen;
}

CampaignResult run_campaign(const CampaignParams& params) {
  CampaignResult result;
  auto record_failure = [&](const GenParams& gen, std::string detail) {
    ++result.failure_count;
    if (result.failures.size() < 32) {
      result.failures.push_back({gen, std::move(detail)});
    }
  };

  const auto snapshot_member = [&](u32 i) {
    return params.snapshot_every != 0 && i % params.snapshot_every == 0;
  };
  for (u32 i = 0; i < params.num_programs; ++i) {
    const GenParams gen = campaign_member(params, i, /*stress=*/false);
    const GenProgram gp = generate(gen);
    DiffResult r = check_program(gp, &result.coverage, 5'000'000,
                                 snapshot_member(i));
    ++result.programs_run;
    if (!r.pass) record_failure(gen, std::move(r.detail));
  }
  for (u32 i = 0; i < params.num_stress; ++i) {
    const GenParams gen = campaign_member(params, i, /*stress=*/true);
    const GenProgram gp = generate(gen);
    DiffResult r = check_program(gp, &result.coverage, 5'000'000,
                                 snapshot_member(i));
    ++result.stress_run;
    if (!r.pass) record_failure(gen, std::move(r.detail));
  }
  return result;
}

}  // namespace ulp::verif
