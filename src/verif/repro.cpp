#include "verif/repro.hpp"

#include <fstream>
#include <sstream>

#include "codegen/assembler.hpp"
#include "isa/disasm.hpp"

namespace ulp::verif {

namespace {

std::string hex_bytes(const std::vector<u8>& bytes) {
  static const char* digits = "0123456789abcdef";
  std::string out;
  out.reserve(bytes.size() * 2);
  for (u8 b : bytes) {
    out.push_back(digits[b >> 4]);
    out.push_back(digits[b & 0xF]);
  }
  return out;
}

std::vector<u8> parse_hex_bytes(const std::string& text, int line_no) {
  ULP_CHECK(text.size() % 2 == 0,
            "repro line " + std::to_string(line_no) + ": odd hex digit count");
  std::vector<u8> out(text.size() / 2);
  for (size_t i = 0; i < out.size(); ++i) {
    const auto nibble = [&](char c) -> u32 {
      if (c >= '0' && c <= '9') return static_cast<u32>(c - '0');
      if (c >= 'a' && c <= 'f') return static_cast<u32>(c - 'a' + 10);
      if (c >= 'A' && c <= 'F') return static_cast<u32>(c - 'A' + 10);
      throw SimError("repro line " + std::to_string(line_no) +
                     ": bad hex digit '" + std::string(1, c) + "'");
    };
    out[i] = static_cast<u8>((nibble(text[2 * i]) << 4) |
                             nibble(text[2 * i + 1]));
  }
  return out;
}

u64 parse_num(const std::string& token, int line_no) {
  try {
    return std::stoull(token, nullptr, 0);  // base 0: 0x..., 0..., decimal
  } catch (const std::exception&) {
    throw SimError("repro line " + std::to_string(line_no) +
                   ": bad number '" + token + "'");
  }
}

}  // namespace

std::string format_repro(const GenProgram& gp) {
  std::ostringstream os;
  os << "; ulp_fuzz repro\n";
  os << ".seed 0x" << std::hex << gp.seed << std::dec << "\n";
  os << ".profile " << gp.profile << "\n";
  os << ".cores " << gp.num_cores << "\n";
  os << ".deterministic " << (gp.deterministic_retire ? 1 : 0) << "\n";
  for (const DmaCopy& copy : gp.dma_copies) {
    os << ".dma 0x" << std::hex << copy.src << " 0x" << copy.dst << std::dec
       << " " << copy.len << "\n";
  }
  for (const isa::Segment& seg : gp.program.data) {
    os << ".data 0x" << std::hex << seg.addr << std::dec << " "
       << hex_bytes(seg.bytes) << "\n";
  }
  os << ".entry " << gp.program.entry << "\n";
  os << ".code\n";
  for (const isa::Instr& in : gp.program.code) {
    os << "    " << isa::disassemble(in) << "\n";
  }
  return os.str();
}

GenProgram parse_repro(const std::string& text) {
  GenProgram gp;
  gp.profile = "full";
  std::string code_block;
  bool in_code = false;
  u32 entry = 0;

  std::istringstream is(text);
  std::string line;
  int line_no = 0;
  while (std::getline(is, line)) {
    ++line_no;
    if (in_code) {
      code_block += line;
      code_block += '\n';
      continue;
    }
    // Strip comments and whitespace outside the code block (the assembler
    // handles its own).
    const size_t comment = line.find_first_of(";#");
    if (comment != std::string::npos) line.resize(comment);
    std::istringstream ls(line);
    std::string directive;
    if (!(ls >> directive)) continue;
    auto next_token = [&]() {
      std::string t;
      ULP_CHECK(static_cast<bool>(ls >> t),
                "repro line " + std::to_string(line_no) +
                    ": missing operand for " + directive);
      return t;
    };
    if (directive == ".seed") {
      gp.seed = parse_num(next_token(), line_no);
    } else if (directive == ".profile") {
      gp.profile = next_token();
    } else if (directive == ".cores") {
      gp.num_cores = static_cast<u32>(parse_num(next_token(), line_no));
      ULP_CHECK(gp.num_cores >= 1 && gp.num_cores <= 4,
                "repro line " + std::to_string(line_no) + ": bad core count");
    } else if (directive == ".deterministic") {
      gp.deterministic_retire = parse_num(next_token(), line_no) != 0;
    } else if (directive == ".dma") {
      DmaCopy copy;
      copy.src = static_cast<Addr>(parse_num(next_token(), line_no));
      copy.dst = static_cast<Addr>(parse_num(next_token(), line_no));
      copy.len = static_cast<u32>(parse_num(next_token(), line_no));
      gp.dma_copies.push_back(copy);
    } else if (directive == ".data") {
      isa::Segment seg;
      seg.addr = static_cast<Addr>(parse_num(next_token(), line_no));
      seg.bytes = parse_hex_bytes(next_token(), line_no);
      gp.program.data.push_back(std::move(seg));
    } else if (directive == ".entry") {
      entry = static_cast<u32>(parse_num(next_token(), line_no));
    } else if (directive == ".code") {
      in_code = true;
    } else {
      throw SimError("repro line " + std::to_string(line_no) +
                     ": unknown directive '" + directive + "'");
    }
  }
  ULP_CHECK(in_code, "repro has no .code block");

  isa::Program assembled = codegen::assemble(code_block);
  gp.program.code = std::move(assembled.code);
  gp.program.entry = entry;
  gp.config = profile_config(gp.profile);
  return gp;
}

Status save_repro(const GenProgram& gp, const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    return Status::Error(StatusCode::kIoError,
                         "cannot open for writing: " + path);
  }
  out << format_repro(gp);
  out.flush();
  if (!out) return Status::Error(StatusCode::kIoError, "write failed: " + path);
  return {};
}

GenProgram load_repro(const std::string& path) {
  std::ifstream in(path);
  ULP_CHECK(static_cast<bool>(in), "cannot open repro file: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse_repro(buffer.str());
}

}  // namespace ulp::verif
