// Textual .repro files: a failing (or interesting) generated program,
// its data segments and its generation metadata, round-trippable through
// the repository's own assembler/disassembler.
//
// Format: dot-directives followed by a .code block of disassembly:
//
//     ; ulp_fuzz repro
//     .seed 0x1f3a...            ; generation seed (informative)
//     .profile full              ; feature profile (drives CoreConfig)
//     .cores 1
//     .deterministic 1           ; retire-log comparison enabled
//     .dma 0x1c000800 0x10000100 37   ; recorded transfer (src dst len)
//     .data 0x10000400 a03f...        ; segment at addr, hex bytes
//     .entry 0
//     .code
//         addi r1, r0, 5
//         ...
//         halt
//
// parse(format(x)) reproduces x's program bit for bit — corpus tests rely
// on it, and the code block doubles as the human-readable failure listing.
#pragma once

#include <string>

#include "common/status.hpp"
#include "verif/generator.hpp"

namespace ulp::verif {

[[nodiscard]] std::string format_repro(const GenProgram& gp);

/// Parses repro text; throws SimError with a line number on malformed
/// directives and defers to codegen::assemble for the code block.
[[nodiscard]] GenProgram parse_repro(const std::string& text);

/// File convenience wrappers.
Status save_repro(const GenProgram& gp, const std::string& path);
[[nodiscard]] GenProgram load_repro(const std::string& path);  // throws

}  // namespace ulp::verif
