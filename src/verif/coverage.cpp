#include "verif/coverage.hpp"

#include <algorithm>
#include <sstream>

namespace ulp::verif {

namespace {

size_t width_index(int size) {
  switch (size) {
    case 1: return 0;
    case 2: return 1;
    default: return 2;
  }
}

}  // namespace

void Coverage::record(const isa::Instr& in) {
  ++ops_[static_cast<size_t>(in.op)];
  ++fmts_[static_cast<size_t>(isa::op_info(in.op).fmt)];
}

void Coverage::record_mem(int size, bool unaligned, bool straddle) {
  if (unaligned) ++unaligned_[width_index(size)];
  if (straddle) ++straddles_;
}

void Coverage::record_hwloop_depth(u32 depth) {
  ++hwloop_depth_[std::min<u32>(depth, 2)];
}

void Coverage::merge(const Coverage& other) {
  for (size_t i = 0; i < ops_.size(); ++i) ops_[i] += other.ops_[i];
  for (size_t i = 0; i < fmts_.size(); ++i) fmts_[i] += other.fmts_[i];
  for (size_t i = 0; i < hwloop_depth_.size(); ++i) {
    hwloop_depth_[i] += other.hwloop_depth_[i];
  }
  for (size_t i = 0; i < unaligned_.size(); ++i) {
    unaligned_[i] += other.unaligned_[i];
  }
  straddles_ += other.straddles_;
}

u64 Coverage::total() const {
  u64 sum = 0;
  for (u64 c : ops_) sum += c;
  return sum;
}

std::vector<isa::Opcode> Coverage::unexercised() const {
  std::vector<isa::Opcode> missing;
  for (size_t i = 0; i < isa::kNumOpcodes; ++i) {
    if (ops_[i] == 0) missing.push_back(static_cast<isa::Opcode>(i));
  }
  return missing;
}

std::string Coverage::report() const {
  std::ostringstream os;
  os << "opcode coverage (" << total() << " retired)\n";
  // Group opcodes by format so the matrix reads like the ISA listing.
  for (size_t f = 0; f < isa::kNumFmts; ++f) {
    const auto fmt = static_cast<isa::Fmt>(f);
    os << "  [" << isa::fmt_name(fmt) << "]";
    for (size_t i = 0; i < isa::kNumOpcodes; ++i) {
      const auto op = static_cast<isa::Opcode>(i);
      if (isa::op_info(op).fmt != fmt) continue;
      os << ' ' << isa::op_info(op).mnemonic << '=' << ops_[i];
    }
    os << '\n';
  }
  os << "  hwloop depth at retire: d0=" << hwloop_depth_[0]
     << " d1=" << hwloop_depth_[1] << " d2=" << hwloop_depth_[2] << '\n';
  os << "  unaligned accesses: b=" << unaligned_[0] << " h=" << unaligned_[1]
     << " w=" << unaligned_[2] << " (word-straddling=" << straddles_ << ")\n";
  const auto missing = unexercised();
  if (missing.empty()) {
    os << "  all " << isa::kNumOpcodes << " opcodes exercised\n";
  } else {
    os << "  UNEXERCISED:";
    for (isa::Opcode op : missing) os << ' ' << isa::op_info(op).mnemonic;
    os << '\n';
  }
  return os.str();
}

}  // namespace ulp::verif
