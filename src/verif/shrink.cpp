#include "verif/shrink.hpp"

#include <optional>

#include "isa/encoding.hpp"

namespace ulp::verif {

using isa::Instr;
using isa::Opcode;

namespace {

/// Remove code[a, b) and remap every instruction-index-relative operand.
/// Returns nothing when the removal cannot be expressed (a control transfer
/// targets the removed range's interior, an offset stops fitting, a
/// hardware loop body would become empty).
std::optional<isa::Program> remove_range(const isa::Program& p, u32 a,
                                         u32 b) {
  const auto remap = [&](i64 t) -> std::optional<i64> {
    if (t > a && t < b) return std::nullopt;  // interior target: give up
    return t <= a ? t : t - (b - a);
  };
  isa::Program out;
  out.data = p.data;
  const auto entry = remap(p.entry);
  if (!entry) return std::nullopt;
  out.entry = static_cast<u32>(*entry);
  out.code.reserve(p.code.size() - (b - a));
  for (u32 x = 0; x < p.code.size(); ++x) {
    if (x >= a && x < b) continue;
    Instr in = p.code[x];
    const i64 nx = *remap(x);  // x is outside [a,b), so this never fails
    if (isa::is_branch(in.op) || in.op == Opcode::kJal) {
      const auto nt = remap(static_cast<i64>(x) + in.imm);
      if (!nt) return std::nullopt;
      in.imm = static_cast<i32>(*nt - nx);
      if (!isa::imm_fits(in.op, in.imm)) return std::nullopt;
    } else if (in.op == Opcode::kLpSetup) {
      const auto nend = remap(static_cast<i64>(x) + 1 + in.imm);
      if (!nend) return std::nullopt;
      in.imm = static_cast<i32>(*nend - nx - 1);
      if (in.imm < 1 || !isa::imm_fits(in.op, in.imm)) return std::nullopt;
    }
    out.code.push_back(in);
  }
  return out;
}

class Shrinker {
 public:
  Shrinker(const GenProgram& failing, std::string detail,
           const ShrinkOracle& oracle, u32 max_oracle_calls)
      : best_(failing), best_detail_(std::move(detail)), oracle_(oracle),
        budget_(max_oracle_calls) {}

  ShrinkResult run() {
    ShrinkResult result;
    result.original_instrs = static_cast<u32>(best_.program.code.size());
    bool progress = true;
    while (progress && calls_ < budget_) {
      progress = false;
      progress |= pass_remove_ranges();
      progress |= pass_drop_data();
      progress |= pass_shrink_imms();
      progress |= pass_nop_out();
      ++result.rounds;
    }
    result.program = best_;
    result.detail = best_detail_;
    result.oracle_calls = calls_;
    result.shrunk_instrs = static_cast<u32>(best_.program.code.size());
    return result;
  }

 private:
  /// Accept `candidate` if the oracle still reports a failure.
  bool try_candidate(isa::Program candidate) {
    if (calls_ >= budget_) return false;
    ++calls_;
    GenProgram gp = best_;
    gp.program = std::move(candidate);
    std::string detail = oracle_(gp);
    if (detail.empty()) return false;
    best_ = std::move(gp);
    best_detail_ = std::move(detail);
    return true;
  }

  bool pass_remove_ranges() {
    bool any = false;
    for (u32 chunk : {32u, 16u, 8u, 4u, 2u, 1u}) {
      bool removed = true;
      while (removed && calls_ < budget_) {
        removed = false;
        const u32 n = static_cast<u32>(best_.program.code.size());
        if (n <= 1) return any;
        // Scan back-to-front so earlier indices stay valid after a removal.
        for (i64 a = static_cast<i64>(n) - chunk; a >= 0; a -= chunk) {
          auto candidate = remove_range(best_.program, static_cast<u32>(a),
                                        static_cast<u32>(a) + chunk);
          if (!candidate) continue;
          if (try_candidate(std::move(*candidate))) {
            removed = true;
            any = true;
            break;  // sizes shifted; rescan from the (new) end
          }
          if (calls_ >= budget_) return any;
        }
      }
    }
    return any;
  }

  bool pass_drop_data() {
    bool any = false;
    for (size_t i = 0; i < best_.program.data.size() && calls_ < budget_;) {
      isa::Program candidate = best_.program;
      candidate.data.erase(candidate.data.begin() + static_cast<i64>(i));
      if (try_candidate(std::move(candidate))) {
        any = true;  // same index now names the next segment
      } else {
        ++i;
      }
    }
    return any;
  }

  bool pass_shrink_imms() {
    bool any = false;
    for (size_t i = 0; i < best_.program.code.size() && calls_ < budget_;
         ++i) {
      const Instr& in = best_.program.code[i];
      // Only value immediates; control-flow offsets and loop body lengths
      // are handled by range removal.
      if (isa::is_branch(in.op) || in.op == Opcode::kJal ||
          in.op == Opcode::kLpSetup || in.imm == 0) {
        continue;
      }
      for (i32 next : {0, in.imm / 2}) {
        if (next == in.imm) continue;
        isa::Program candidate = best_.program;
        candidate.code[i].imm = next;
        if (try_candidate(std::move(candidate))) {
          any = true;
          break;
        }
      }
    }
    return any;
  }

  bool pass_nop_out() {
    bool any = false;
    for (size_t i = 0; i < best_.program.code.size() && calls_ < budget_;
         ++i) {
      if (best_.program.code[i].op == Opcode::kNop) continue;
      isa::Program candidate = best_.program;
      candidate.code[i] = Instr{};  // kNop
      if (try_candidate(std::move(candidate))) any = true;
    }
    return any;
  }

  GenProgram best_;
  std::string best_detail_;
  const ShrinkOracle& oracle_;
  u32 budget_;
  u32 calls_ = 0;
};

}  // namespace

std::string failure_category(const std::string& detail) {
  const size_t colon = detail.find(':');
  std::string category =
      colon == std::string::npos ? detail : detail.substr(0, colon);
  // SimError messages embed file:line; two different ULP_CHECKs must not
  // look alike, so fold the failed condition into the category.
  const std::string marker = "check failed (";
  const size_t check = detail.find(marker);
  if (check != std::string::npos) {
    const size_t end = detail.find(')', check);
    if (end != std::string::npos) {
      category += '/' + detail.substr(check + marker.size(),
                                      end - check - marker.size());
    }
  }
  return category;
}

ShrinkResult shrink(const GenProgram& failing, const std::string& detail,
                    const ShrinkOracle& oracle, u32 max_oracle_calls) {
  Shrinker shrinker(failing, detail, oracle, max_oracle_calls);
  return shrinker.run();
}

ShrinkResult shrink(const GenProgram& failing, const std::string& detail,
                    u32 max_oracle_calls) {
  const std::string category = failure_category(detail);
  const ShrinkOracle oracle = [&category](const GenProgram& gp) {
    DiffResult r = check_program(gp);
    if (r.pass) return std::string{};
    // A candidate only counts if it fails the same way; morphing into a
    // structurally broken program (different category) is not a shrink.
    if (failure_category(r.detail) != category) return std::string{};
    return r.detail;
  };
  return shrink(failing, detail, oracle, max_oracle_calls);
}

}  // namespace ulp::verif
