// Opcode/format/feature execution-coverage tallies for the fuzzer.
//
// A differential run is only as strong as what it exercised: the harness
// counts every retired instruction by opcode and encoding format, and the
// golden model (which sees architectural context the retire hook does not)
// adds feature-level detail — hardware-loop nesting depth at retirement,
// unaligned access widths and word-boundary straddles, post-increment uses
// and SIMD lane widths. `ulp_fuzz --coverage` prints the matrix; a default
// run must leave no implemented opcode at zero.
#pragma once

#include <array>
#include <string>
#include <vector>

#include "isa/isa.hpp"

namespace ulp::verif {

class Coverage {
 public:
  /// One retired instruction (opcode + format tallies).
  void record(const isa::Instr& in);

  /// Architectural detail for a retired load/store: access width and
  /// whether the address was unaligned / straddled a word boundary.
  void record_mem(int size, bool unaligned, bool straddle);

  /// Number of armed hardware loops (0..2) when an instruction retired.
  void record_hwloop_depth(u32 depth);

  void merge(const Coverage& other);

  [[nodiscard]] u64 count(isa::Opcode op) const {
    return ops_[static_cast<size_t>(op)];
  }
  [[nodiscard]] u64 total() const;

  /// Implemented opcodes never executed (kCount excluded).
  [[nodiscard]] std::vector<isa::Opcode> unexercised() const;

  /// Human-readable matrix: per-opcode counts grouped by format, then the
  /// feature dimensions (loop depth, unaligned widths, SIMD lanes).
  [[nodiscard]] std::string report() const;

 private:
  std::array<u64, isa::kNumOpcodes> ops_{};
  std::array<u64, isa::kNumFmts> fmts_{};
  std::array<u64, 3> hwloop_depth_{};  ///< Retirements under 0/1/2 loops.
  std::array<u64, 3> unaligned_{};     ///< By width index (1/2/4 bytes).
  u64 straddles_ = 0;                  ///< Accesses split across two words.
};

}  // namespace ulp::verif
