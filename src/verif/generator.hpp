// Constrained-random program generator for differential verification.
//
// Programs are random where it stresses the implementation and constrained
// where it must be for a meaningful differential run:
//   * structurally valid by construction — emitted through codegen::Builder,
//     every encoding in range, every branch forward to a bound label;
//   * guaranteed to halt — loop trip counts are generated constants, the
//     only backward branches are builder-generated down-counters and DMA
//     status polls, calls return through the link register, and the
//     epilogue always ends in EOC/HALT;
//   * memory-safe by construction — the generator statically tracks each
//     address register's offset inside its assigned window and only picks
//     displacements / post-increment steps that stay inside it;
//   * event-safe — WFE is only emitted with a pending event source (an SEV
//     or a DMA completion) so no single-core program can sleep forever.
//
// Multi-core (stress) programs add SPMD discipline: control flow depends
// only on uniform registers (same value on every core), stores go to
// per-core private windows, DMA is gated to core 0 with no barrier inside
// the gated region, so every core reaches every barrier the same number of
// times and the program provably converges.
#pragma once

#include <string>
#include <vector>

#include "core/features.hpp"
#include "isa/program.hpp"

namespace ulp::verif {

struct GenParams {
  u64 seed = 1;
  /// Feature profile: "full" (every CoreFeatures flag on — the default
  /// fuzzing target, the only profile that can reach 100% opcode
  /// coverage), or one of the modelled cores: "or10n", "cortex_m4",
  /// "cortex_m3", "baseline".
  std::string profile = "full";
  /// 1 = single-core program comparable against the golden model;
  /// 2..4 = SPMD stress program for invariant checking.
  u32 num_cores = 1;
  /// Random body items to emit (each expands to ~1-8 instructions).
  u32 body_items = 32;
  bool allow_dma = true;
};

/// One generated DMA transfer, kept for the byte-exactness invariant.
struct DmaCopy {
  Addr src = 0;
  Addr dst = 0;
  u32 len = 0;
};

struct GenProgram {
  isa::Program program;
  core::CoreConfig config;
  u32 num_cores = 1;
  u64 seed = 0;
  std::string profile;
  /// True when the retired-instruction sequence is timing-independent
  /// (no DMA status polls): the harness then compares retire logs
  /// instruction-by-instruction, not just final state.
  bool deterministic_retire = true;
  std::vector<DmaCopy> dma_copies;
};

/// Resolve a profile name (including the synthetic "full") to a CoreConfig.
/// Throws SimError on unknown names.
[[nodiscard]] core::CoreConfig profile_config(const std::string& name);

/// Generate one program. Pure function of `params` — same params, same
/// program, bit for bit.
[[nodiscard]] GenProgram generate(const GenParams& params);

}  // namespace ulp::verif
