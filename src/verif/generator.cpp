#include "verif/generator.hpp"

#include <algorithm>

#include "codegen/builder.hpp"
#include "common/memmap.hpp"
#include "common/rng.hpp"
#include "common/status.hpp"

namespace ulp::verif {

using codegen::Builder;
using isa::Opcode;

namespace {

// Register conventions for generated programs. The generator needs static
// knowledge of what every register holds, so roles are fixed:
//   r1..r17   data pool (random values; divergent across cores in stress)
//   r18       software-loop scratch, nesting depth 1
//   r19       DMA length operand
//   r20       loop trip counts (always li'd constants -> uniform)
//   r21, r22  uniform data (the only branch operands in stress mode)
//   r23, r24  numcores / coreid (prologue CSR reads)
//   r25       private-window address computation (stress)
//   r26       TCDM window pointer (statically tracked offset)
//   r27       L2 window pointer (statically tracked offset)
//   r28       DMA base (builder dma helpers re-materialise it)
//   r29       link register (jal/jalr)
//   r30       software-loop scratch, nesting depth 0
//   r31       general scratch (mac fallback, DMA poll)
constexpr u8 kDataLo = 1, kDataHi = 17;
constexpr u8 kLoopScratch1 = 18;
constexpr u8 kDmaLen = 19;
constexpr u8 kTrip = 20;
constexpr u8 kUni0 = 21, kUni1 = 22;
constexpr u8 kNumCoresReg = 23, kCoreIdReg = 24;
constexpr u8 kPriv = 25;
constexpr u8 kTcdmPtr = 26, kL2Ptr = 27;
constexpr u8 kDmaBaseReg = 28;
constexpr u8 kLink = 29;
constexpr u8 kLoopScratch0 = 30;
constexpr u8 kScratch = 31;

// Memory windows. Each pointer register owns one window and the generator
// proves every access in-bounds against it. The DMA arenas are disjoint
// from the compute windows so transfers never race generated stores.
constexpr u32 kWinSize = 0x100;
constexpr Addr kTcdmWin = memmap::kTcdmBase + 0x400;
constexpr Addr kStressWinBase = memmap::kTcdmBase + 0x800;  // +coreid*0x100
constexpr Addr kL2Win = memmap::kL2Base + 0x400;
constexpr Addr kDmaSrcArena = memmap::kL2Base + 0x800;
constexpr Addr kDmaDstArena = memmap::kTcdmBase + 0x100;
constexpr u32 kDmaSliceBytes = 64;
constexpr u32 kMaxDmaOps = 4;

constexpr Opcode kLoadOps[] = {Opcode::kLw, Opcode::kLh, Opcode::kLhu,
                               Opcode::kLb, Opcode::kLbu};
constexpr Opcode kLoadPiOps[] = {Opcode::kLwpi, Opcode::kLhpi, Opcode::kLhupi,
                                 Opcode::kLbpi, Opcode::kLbupi};
constexpr Opcode kStoreOps[] = {Opcode::kSw, Opcode::kSh, Opcode::kSb};
constexpr Opcode kStorePiOps[] = {Opcode::kSwpi, Opcode::kShpi, Opcode::kSbpi};
constexpr Opcode kBranchOps[] = {Opcode::kBeq, Opcode::kBne, Opcode::kBlt,
                                 Opcode::kBge, Opcode::kBltu, Opcode::kBgeu};

class Generator {
 public:
  explicit Generator(const GenParams& p)
      : p_(p), rng_(p.seed == 0 ? 1 : p.seed), cfg_(profile_config(p.profile)),
        b_(cfg_.features) {}

  GenProgram run();

 private:
  [[nodiscard]] bool stress() const { return p_.num_cores > 1; }
  [[nodiscard]] const core::CoreFeatures& feat() const {
    return cfg_.features;
  }

  u8 data_reg() {
    return static_cast<u8>(rng_.uniform(kDataLo, kDataHi));
  }
  /// A register legal as a branch operand: in stress mode only uniform
  /// registers keep control flow convergent across cores.
  u8 cond_reg() {
    if (stress()) {
      constexpr u8 pool[] = {kUni0, kUni1, kTrip, codegen::zero};
      return pool[static_cast<size_t>(rng_.uniform(0, 3))];
    }
    return rng_.uniform(0, 4) == 0 ? codegen::zero : data_reg();
  }
  u32 interesting_value() {
    switch (rng_.uniform(0, 5)) {
      case 0: return 0;
      case 1: return 0xFFFFFFFFu;
      case 2: return 0x80000000u;
      case 3: return static_cast<u32>(rng_.uniform(-4, 4));
      default: return rng_.next_u32();
    }
  }

  void prologue();
  void body_item(int depth);
  void alu_rr();
  void alu_imm();
  void mac_chain();
  void mem_access(bool postinc);
  void pi_alias_load();
  void reset_pointers();
  void counted_loop(int depth);
  void shared_end_loops();
  void fwd_branch(int depth);
  void call_site();
  void sev_wfe();
  void do_dma(bool deterministic);
  void dma_gated_stress();
  void epilogue();
  void emit_subroutines();

  struct Window {
    u8 reg;
    Addr base;  ///< Per-core base in stress; offsets stay uniform.
    u32 off = 0;
  };
  Window& pick_window() {
    // Stress stores must stay in the private TCDM window; L2 is read-only
    // shared there, so steer most traffic to TCDM.
    return (rng_.uniform(0, 2) != 0) ? tcdm_ : l2_;
  }

  GenParams p_;
  Rng rng_;
  core::CoreConfig cfg_;
  Builder b_;

  Window tcdm_{kTcdmPtr, kTcdmWin};
  Window l2_{kL2Ptr, kL2Win};
  bool deterministic_ = true;
  u32 dma_ops_ = 0;
  std::vector<DmaCopy> dma_copies_;
  std::vector<Builder::Label> subroutines_;
};

core::CoreConfig full_config() {
  core::CoreConfig cfg = core::or10n_config();
  cfg.name = "full";
  cfg.features.has_mul64 = true;  // or10n lacks only the 64-bit multiply
  return cfg;
}

void Generator::prologue() {
  b_.csr_coreid(kCoreIdReg);
  b_.csr_numcores(kNumCoresReg);
  b_.li(kUni0, rng_.next_u32());
  b_.li(kUni1, interesting_value());
  if (stress()) {
    // Private TCDM window: base + coreid * 0x100. The offset arithmetic the
    // generator tracks is uniform across cores even though the base is not.
    tcdm_.base = kStressWinBase;
    b_.emit(Opcode::kSlli, kPriv, kCoreIdReg, 0, 8);
    b_.li(kTcdmPtr, kStressWinBase);
    b_.emit(Opcode::kAdd, kTcdmPtr, kTcdmPtr, kPriv);
  } else {
    b_.li(kTcdmPtr, kTcdmWin);
  }
  b_.li(kL2Ptr, kL2Win);
  for (u8 r = kDataLo; r <= kDataHi; ++r) b_.li(r, interesting_value());
  if (stress()) {
    // Mix the core id into a few data registers so data paths diverge even
    // though control flow does not.
    for (int i = 0; i < 4; ++i) {
      b_.emit(Opcode::kAdd, data_reg(), data_reg(), kCoreIdReg);
    }
  }
}

void Generator::alu_rr() {
  std::vector<Opcode> ops = {Opcode::kAdd, Opcode::kSub, Opcode::kAnd,
                             Opcode::kOr,  Opcode::kXor, Opcode::kSll,
                             Opcode::kSrl, Opcode::kSra, Opcode::kSlt,
                             Opcode::kSltu, Opcode::kMul};
  if (feat().has_mul64) {
    ops.push_back(Opcode::kMulhs);
    ops.push_back(Opcode::kMulhu);
  }
  if (feat().has_div) {
    ops.insert(ops.end(), {Opcode::kDiv, Opcode::kDivu, Opcode::kRem,
                           Opcode::kRemu});
  }
  if (feat().has_simd) {
    ops.insert(ops.end(), {Opcode::kDotp2h, Opcode::kDotp4b, Opcode::kAdd2h,
                           Opcode::kSub2h, Opcode::kAdd4b, Opcode::kSub4b});
  }
  const int n = rng_.uniform(1, 3);
  for (int i = 0; i < n; ++i) {
    const Opcode op = ops[static_cast<size_t>(
        rng_.uniform(0, static_cast<i32>(ops.size()) - 1))];
    b_.emit(op, data_reg(), data_reg(), data_reg());
  }
}

void Generator::alu_imm() {
  constexpr Opcode ops[] = {Opcode::kAddi, Opcode::kAndi, Opcode::kOri,
                            Opcode::kXori, Opcode::kSlli, Opcode::kSrli,
                            Opcode::kSrai, Opcode::kSlti, Opcode::kSltiu,
                            Opcode::kLui};
  const int n = rng_.uniform(1, 3);
  for (int i = 0; i < n; ++i) {
    const Opcode op = ops[static_cast<size_t>(rng_.uniform(0, 9))];
    i32 imm;
    if (op == Opcode::kLui) {
      imm = rng_.uniform(0, (1 << 20) - 1);
    } else if (op == Opcode::kSlli || op == Opcode::kSrli ||
               op == Opcode::kSrai) {
      imm = rng_.uniform(0, 31);
    } else {
      imm = rng_.uniform(-(1 << 14), (1 << 14) - 1);
    }
    // lui has no source register field; keep the instruction canonical so
    // it survives disassembly and binary encoding bit for bit.
    const u8 ra = op == Opcode::kLui ? 0 : data_reg();
    b_.emit(op, data_reg(), ra, 0, imm);
  }
}

void Generator::mac_chain() {
  // On targets without MAC the builder lowers to mul+add; still a chain.
  const u8 acc = data_reg();
  const int n = rng_.uniform(2, 4);
  for (int i = 0; i < n; ++i) {
    if (feat().has_simd && rng_.uniform(0, 2) == 0) {
      b_.emit(rng_.uniform(0, 1) == 0 ? Opcode::kDotp2h : Opcode::kDotp4b,
              acc, data_reg(), data_reg());
    } else {
      b_.mac(acc, data_reg(), data_reg(), kScratch);
    }
  }
}

void Generator::mem_access(bool postinc) {
  Window& w = pick_window();
  // Stress mode: the L2 window is shared between cores, loads only.
  const bool store_ok = !(stress() && w.reg == kL2Ptr);
  const bool is_store = store_ok && rng_.uniform(0, 1) == 0;
  const u32 size = 1u << rng_.uniform(0, 2);
  const bool aligned_only = !feat().has_unaligned;

  if (!postinc) {
    u32 t = static_cast<u32>(rng_.uniform(0, static_cast<i32>(kWinSize - size)));
    if (aligned_only) t &= ~(size - 1);
    const i32 imm = static_cast<i32>(t) - static_cast<i32>(w.off);
    const size_t v = static_cast<size_t>(rng_.uniform(0, size == 4 ? 0 : 1));
    if (is_store) {
      const Opcode op = size == 4   ? Opcode::kSw
                        : size == 2 ? Opcode::kSh
                                    : Opcode::kSb;
      b_.emit(op, data_reg(), w.reg, 0, imm);
    } else {
      const Opcode op = size == 4   ? Opcode::kLw
                        : size == 2 ? (v != 0 ? Opcode::kLhu : Opcode::kLh)
                                    : (v != 0 ? Opcode::kLbu : Opcode::kLb);
      b_.emit(op, data_reg(), w.reg, 0, imm);
    }
    return;
  }

  // Post-increment: the access happens at the current offset, so the size
  // must match the pointer's present alignment on aligned-only profiles.
  // Emitted through the builder's _pi helpers, which lower to plain
  // access + addi on targets without the addressing mode.
  u32 sz = size;
  if (aligned_only) {
    while (w.off % sz != 0) sz >>= 1;
  }
  if (w.off + sz > kWinSize) return;  // pointer parked at the window edge
  u32 t = static_cast<u32>(rng_.uniform(0, static_cast<i32>(kWinSize - 4)));
  const i32 step = static_cast<i32>(t) - static_cast<i32>(w.off);
  const bool v = rng_.uniform(0, 1) != 0;
  const u8 r = data_reg();
  if (store_ok && rng_.uniform(0, 1) == 0) {
    if (sz == 4) {
      b_.sw_pi(r, w.reg, step);
    } else if (sz == 2) {
      b_.sh_pi(r, w.reg, step);
    } else {
      b_.sb_pi(r, w.reg, step);
    }
  } else {
    if (sz == 4) {
      b_.lw_pi(r, w.reg, step);
    } else if (sz == 2) {
      v ? b_.lhu_pi(r, w.reg, step) : b_.lh_pi(r, w.reg, step);
    } else {
      v ? b_.lbu_pi(r, w.reg, step) : b_.lb_pi(r, w.reg, step);
    }
  }
  w.off = t;
}

void Generator::pi_alias_load() {
  // rd == ra on a post-increment load: the base update reads the freshly
  // loaded value — the nastiest write-back ordering case in the ISA. The
  // pointer is garbage afterwards, so re-materialise it immediately.
  if (!feat().has_postinc) return;
  Window& w = pick_window();
  if (!feat().has_unaligned && w.off % 4 != 0) return;
  if (w.off + 4 > kWinSize) return;
  b_.emit(Opcode::kLwpi, w.reg, w.reg, 0, rng_.uniform(-8, 8));
  b_.li(w.reg, w.base);
  if (stress() && w.reg == kTcdmPtr) {
    b_.emit(Opcode::kAdd, w.reg, w.reg, kPriv);
  }
  w.off = 0;
}

void Generator::reset_pointers() {
  b_.li(kTcdmPtr, tcdm_.base);
  if (stress()) b_.emit(Opcode::kAdd, kTcdmPtr, kTcdmPtr, kPriv);
  tcdm_.off = 0;
  b_.li(kL2Ptr, l2_.base);
  l2_.off = 0;
}

void Generator::counted_loop(int depth) {
  // Post-increment accesses inside the body move the window pointers once
  // per *iteration*, which static tracking cannot follow. Pin both
  // pointers to a known state before the loop (covers the zero-trip case)
  // and restore it at the end of every iteration, so the tracked offsets
  // are correct at every point the body was generated against.
  reset_pointers();
  b_.li(kTrip, static_cast<u32>(rng_.uniform(0, 5)));
  const u8 scratch = depth == 0 ? kLoopScratch0 : kLoopScratch1;
  const int items = rng_.uniform(1, 3);
  b_.loop(kTrip, scratch, [&] {
    for (int i = 0; i < items; ++i) body_item(depth + 1);
    reset_pointers();
    // Guarantee a non-empty body even if every item degenerated to nothing.
    b_.nop();
  });
}

void Generator::shared_end_loops() {
  // Raw lp.setup layout the loop() helper never produces: both hardware
  // loop slots ending on the same instruction. The core must unwind the
  // inner slot first and still fall through the outer check.
  const i32 body = rng_.uniform(1, 3);
  b_.li(kTrip, static_cast<u32>(rng_.uniform(1, 3)));
  b_.li(kScratch, static_cast<u32>(rng_.uniform(0, 3)));
  b_.emit(Opcode::kLpSetup, 0, kTrip, 0, body + 1);
  b_.emit(Opcode::kLpSetup, 1, kScratch, 0, body);
  for (i32 i = 0; i < body; ++i) {
    b_.emit(Opcode::kAddi, data_reg(), data_reg(), 0, rng_.uniform(-64, 64));
  }
}

void Generator::fwd_branch(int depth) {
  const Opcode op = kBranchOps[static_cast<size_t>(rng_.uniform(0, 5))];
  const auto skip = b_.make_label();
  b_.branch(op, cond_reg(), cond_reg(), skip);
  const int n = rng_.uniform(1, 3);
  for (int i = 0; i < n; ++i) {
    b_.emit(Opcode::kAddi, data_reg(), data_reg(), 0, rng_.uniform(-256, 256));
  }
  b_.bind(skip);
  // Keep the join point an instruction of its own: a taken skip must not
  // land directly on an enclosing hardware-loop end and bypass its
  // sequential loop-back check.
  (void)depth;
  b_.nop();
}

void Generator::call_site() {
  const bool reuse = !subroutines_.empty() && rng_.uniform(0, 1) == 0;
  Builder::Label target;
  if (reuse) {
    target = subroutines_[static_cast<size_t>(
        rng_.uniform(0, static_cast<i32>(subroutines_.size()) - 1))];
  } else {
    target = b_.make_label();
    subroutines_.push_back(target);
  }
  b_.jal(kLink, target);
}

void Generator::sev_wfe() {
  // Emitted as an atomic pair: the broadcast reaches the sender, so the WFE
  // is guaranteed a pending event regardless of what other cores do.
  b_.sev(0);
  b_.wfe();
}

void Generator::do_dma(bool deterministic) {
  const u32 slice = dma_ops_ % kMaxDmaOps;
  const u32 len = static_cast<u32>(rng_.uniform(1, kDmaSliceBytes));
  const Addr src = kDmaSrcArena + slice * kDmaSliceBytes;
  const Addr dst = kDmaDstArena + slice * kDmaSliceBytes;
  ++dma_ops_;
  dma_copies_.push_back({src, dst, len});
  b_.li(kUni0, src);
  b_.li(kUni1, dst);
  b_.li(kDmaLen, len);
  b_.dma_start(kDmaBaseReg, kUni0, kUni1, kDmaLen);
  if (deterministic) {
    // Single WFE instead of a status poll: the completion event is the
    // only pending source, so the retire sequence is timing-independent.
    b_.wfe();
  } else if (rng_.uniform(0, 1) == 0) {
    b_.dma_wait(kDmaBaseReg, kScratch);
  } else {
    b_.dma_wait_wfe(kDmaBaseReg, kScratch);
  }
}

void Generator::dma_gated_stress() {
  // Core 0 runs the transfer; the branch on coreid is the one sanctioned
  // divergence — no barrier inside the gated region, and the join barrier
  // below is reached by every core exactly once.
  const auto skip = b_.make_label();
  b_.branch(Opcode::kBne, kCoreIdReg, codegen::zero, skip);
  const u32 slice = dma_ops_ % kMaxDmaOps;
  const u32 len = static_cast<u32>(rng_.uniform(1, kDmaSliceBytes));
  const Addr src = kDmaSrcArena + slice * kDmaSliceBytes;
  const Addr dst = kDmaDstArena + slice * kDmaSliceBytes;
  ++dma_ops_;
  dma_copies_.push_back({src, dst, len});
  b_.li(kScratch, src);
  b_.li(kDmaLen, dst);
  b_.emit(Opcode::kAddi, kLoopScratch0, codegen::zero, 0,
          static_cast<i32>(len));
  b_.dma_start(kDmaBaseReg, kScratch, kDmaLen, kLoopScratch0);
  b_.dma_wait(kDmaBaseReg, kScratch);
  b_.bind(skip);
  b_.nop();
  b_.barrier();
}

void Generator::body_item(int depth) {
  // Weighted item choice; structural items thin out with nesting depth.
  const int roll = rng_.uniform(0, 99);
  if (roll < 20) {
    alu_rr();
  } else if (roll < 34) {
    alu_imm();
  } else if (roll < 42) {
    mac_chain();
  } else if (roll < 56) {
    mem_access(/*postinc=*/false);
  } else if (roll < 64) {
    mem_access(/*postinc=*/true);
  } else if (roll < 67) {
    pi_alias_load();
  } else if (roll < 75 && depth < 2) {
    counted_loop(depth);
  } else if (roll < 78 && depth == 0 && feat().has_hwloops) {
    shared_end_loops();
  } else if (roll < 86) {
    fwd_branch(depth);
  } else if (roll < 90 && depth == 0) {
    call_site();
  } else if (roll < 94) {
    sev_wfe();
  } else if (roll < 97 && depth == 0 && p_.allow_dma &&
             dma_ops_ < kMaxDmaOps) {
    if (stress()) {
      dma_gated_stress();
    } else {
      do_dma(deterministic_);
    }
  } else if (roll < 99) {
    b_.barrier();
  } else {
    b_.nop();
  }
}

void Generator::epilogue() {
  if (stress()) b_.barrier();
  if (rng_.uniform(0, 3) == 0) {
    b_.halt();
  } else {
    b_.eoc(static_cast<u32>(rng_.uniform(1, 255)));
  }
}

void Generator::emit_subroutines() {
  for (Builder::Label label : subroutines_) {
    b_.bind(label);
    const int n = rng_.uniform(1, 3);
    for (int i = 0; i < n; ++i) {
      b_.emit(Opcode::kXor, data_reg(), data_reg(), data_reg());
    }
    // Return: pc <- link. rd is occasionally live to cover the rd != r0
    // form of jalr (the link register itself is read before the write).
    b_.emit(Opcode::kJalr, rng_.uniform(0, 1) == 0 ? 0 : kScratch, kLink);
  }
}

GenProgram Generator::run() {
  ULP_CHECK(p_.num_cores >= 1 && p_.num_cores <= 4,
            "generator supports 1..4 cores");
  deterministic_ = !stress() && rng_.uniform(0, 9) < 7;

  prologue();
  for (u32 i = 0; i < p_.body_items; ++i) body_item(0);
  epilogue();
  emit_subroutines();

  // Seed every window the program can read so loads see non-trivial data.
  auto random_bytes = [&](u32 n) {
    std::vector<u8> v(n);
    for (u8& byte : v) byte = static_cast<u8>(rng_.next_u32());
    return v;
  };
  b_.add_data(kDmaSrcArena, random_bytes(kMaxDmaOps * kDmaSliceBytes));
  b_.add_data(kL2Win, random_bytes(kWinSize));
  if (stress()) {
    b_.add_data(kStressWinBase, random_bytes(p_.num_cores * kWinSize));
  } else {
    b_.add_data(kTcdmWin, random_bytes(kWinSize));
  }

  GenProgram out;
  out.program = b_.finalize();
  out.config = cfg_;
  out.num_cores = p_.num_cores;
  out.seed = p_.seed;
  out.profile = p_.profile;
  out.deterministic_retire = deterministic_;
  out.dma_copies = std::move(dma_copies_);
  return out;
}

}  // namespace

core::CoreConfig profile_config(const std::string& name) {
  if (name == "full") return full_config();
  if (name == "baseline") return core::baseline_config();
  if (name == "or10n") return core::or10n_config();
  if (name == "cortex_m4") return core::cortex_m4_config();
  if (name == "cortex_m3") return core::cortex_m3_config();
  throw SimError("unknown verification profile: " + name);
}

GenProgram generate(const GenParams& params) {
  return Generator(params).run();
}

}  // namespace ulp::verif
