// Auto-shrinker: reduce a failing generated program to a minimal repro.
//
// Delta-debugging over the instruction list: repeatedly try structural
// simplifications — removing instruction ranges (with branch/loop targets
// remapped), replacing instructions with NOPs, zeroing and halving
// immediates, dropping data segments — and keep each candidate only if the
// oracle says it still fails *the same way*. "The same way" is judged by
// the failure category (the "golden-vs-cluster" / "ref-vs-ff" / "dma"
// prefix of the divergence string), which stops the shrinker from trading
// a real divergence for a trivially malformed program: breaking the
// program's structure changes the category and the candidate is rejected.
#pragma once

#include <functional>
#include <string>

#include "verif/differential.hpp"

namespace ulp::verif {

/// Failure oracle: empty string = candidate passes (reject it); non-empty =
/// the candidate's failure detail.
using ShrinkOracle = std::function<std::string(const GenProgram&)>;

struct ShrinkResult {
  GenProgram program;  ///< Smallest still-failing variant found.
  std::string detail;  ///< Its failure detail.
  u32 rounds = 0;      ///< Fixpoint rounds executed.
  u32 oracle_calls = 0;
  u32 original_instrs = 0;
  u32 shrunk_instrs = 0;
};

/// Failure category: the divergence-string prefix up to the first ':'.
[[nodiscard]] std::string failure_category(const std::string& detail);

/// Shrink `failing` (whose current failure detail is `detail`) until no
/// transformation makes progress or `max_oracle_calls` is spent. The
/// default oracle runs check_program and requires the failure category to
/// match; pass a custom oracle to shrink against any other predicate.
[[nodiscard]] ShrinkResult shrink(const GenProgram& failing,
                                  const std::string& detail,
                                  u32 max_oracle_calls = 4000);
[[nodiscard]] ShrinkResult shrink(const GenProgram& failing,
                                  const std::string& detail,
                                  const ShrinkOracle& oracle,
                                  u32 max_oracle_calls = 4000);

}  // namespace ulp::verif
