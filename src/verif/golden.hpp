// Independent golden-reference interpreter for differential verification.
//
// Deliberately naive: a switch-on-opcode architectural interpreter over flat
// byte arrays, written from the ISA manual (isa/isa.hpp comments) with no
// shared execution machinery — it includes nothing from core/, cluster/ or
// mem/. Timing does not exist here: there are no cycles, no bank conflicts,
// no stalls; DMA transfers complete instantly at the CMD write. What the
// golden model and the real cluster must nevertheless agree on is the
// *architectural* story — final registers, final memory images, the EOC
// flag, and (for timing-independent programs) the exact retired-instruction
// sequence. Any disagreement is a bug in one of the two, which is the point.
//
// Scope: single hart. Multi-core interleavings have no canonical golden
// order; the differential harness covers them with invariant checks instead
// (see differential.hpp).
#pragma once

#include <array>
#include <optional>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "isa/program.hpp"
#include "verif/coverage.hpp"

namespace ulp::verif {

struct GoldenParams {
  u32 tcdm_bytes = 64 * 1024;
  u32 l2_bytes = 128 * 1024;
  /// Retired-instruction budget; exceeding it fails the run (runaway
  /// program — generator bug or a jalr into a loop).
  u64 max_retired = 2'000'000;
  /// Record the (pc, instr) retire sequence for log comparison.
  bool keep_retire_log = true;
};

/// One retired instruction, as both the golden model and the real core's
/// retire hook report it.
struct Retire {
  u32 pc = 0;
  isa::Instr instr;

  friend bool operator==(const Retire&, const Retire&) = default;
};

class Golden {
 public:
  explicit Golden(GoldenParams params = {});

  /// Interpret `program` from its entry to HALT/EOC. Returns an error
  /// Status (never throws) on anything a generated program must not do:
  /// out-of-map access, pc past program end, WFE with no pending event,
  /// reading the cycle CSR (timing-dependent by definition), misprogrammed
  /// DMA, or blowing the retire budget.
  Status run(const isa::Program& program);

  [[nodiscard]] u32 reg(u32 index) const { return regs_[index]; }
  [[nodiscard]] const std::array<u32, isa::kNumRegs>& regs() const {
    return regs_;
  }
  [[nodiscard]] const std::vector<u8>& tcdm() const { return tcdm_; }
  [[nodiscard]] const std::vector<u8>& l2() const { return l2_; }
  [[nodiscard]] u64 retired() const { return retired_; }
  [[nodiscard]] const std::vector<Retire>& retire_log() const {
    return retire_log_;
  }
  /// EOC flag value, if the program signalled end-of-computation.
  [[nodiscard]] std::optional<u32> eoc() const { return eoc_; }
  [[nodiscard]] const Coverage& coverage() const { return coverage_; }

 private:
  struct HwLoop {
    u32 start = 0;
    u32 end = 0;
    u32 count = 0;
  };

  void advance_pc_sequential();
  [[nodiscard]] u8* mem_at(Addr addr, u32 size);  // null when unmapped
  u32 load(Addr addr, u32 size);
  void store(Addr addr, u32 size, u32 value);
  void write_reg(u32 index, u32 value) {
    if (index != 0) regs_[index] = value;
  }
  Status dma_cmd();

  GoldenParams params_;
  std::array<u32, isa::kNumRegs> regs_{};
  std::vector<u8> tcdm_;
  std::vector<u8> l2_;
  u32 pc_ = 0;
  std::array<HwLoop, 2> loops_{};
  bool halted_ = false;
  std::optional<u32> eoc_;
  bool event_pending_ = false;  ///< sev-to-self / DMA completion latch.

  // DMA shadow registers; transfers complete instantly at the CMD write.
  u32 dma_src_ = 0;
  u32 dma_dst_ = 0;
  u32 dma_len_ = 0;

  u64 retired_ = 0;
  std::vector<Retire> retire_log_;
  Coverage coverage_;
};

}  // namespace ulp::verif
