#include "verif/golden.hpp"

#include <cstring>

#include "common/memmap.hpp"

namespace ulp::verif {

using isa::Instr;
using isa::Opcode;

namespace {

// DMA register offsets, restated from the peripheral's documented register
// map rather than included from dma/ — the golden model must not share
// headers with the machinery it checks beyond the ISA itself.
constexpr Addr kDmaSrc = 0x00;
constexpr Addr kDmaDst = 0x04;
constexpr Addr kDmaLen = 0x08;
constexpr Addr kDmaCmd = 0x0C;
constexpr Addr kDmaStatus = 0x10;

i32 as_i32(u32 v) { return static_cast<i32>(v); }
u32 as_u32(i32 v) { return static_cast<u32>(v); }

i32 lane16(u32 v, int lane) {
  return static_cast<i16>((v >> (16 * lane)) & 0xFFFF);
}
i32 lane8(u32 v, int lane) {
  return static_cast<i8>((v >> (8 * lane)) & 0xFF);
}

std::string hex(u32 v) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "0x%08x", v);
  return buf;
}

}  // namespace

Golden::Golden(GoldenParams params) : params_(params) {
  tcdm_.assign(params_.tcdm_bytes, 0);
  l2_.assign(params_.l2_bytes, 0);
}

u8* Golden::mem_at(Addr addr, u32 size) {
  if (addr >= memmap::kTcdmBase &&
      addr + size <= memmap::kTcdmBase + params_.tcdm_bytes) {
    return tcdm_.data() + (addr - memmap::kTcdmBase);
  }
  if (addr >= memmap::kL2Base &&
      addr + size <= memmap::kL2Base + params_.l2_bytes) {
    return l2_.data() + (addr - memmap::kL2Base);
  }
  return nullptr;
}

u32 Golden::load(Addr addr, u32 size) {
  u32 v = 0;
  std::memcpy(&v, mem_at(addr, size), size);  // little-endian host assumed,
  return v;                                   // same as the bus model
}

void Golden::store(Addr addr, u32 size, u32 value) {
  std::memcpy(mem_at(addr, size), &value, size);
}

void Golden::advance_pc_sequential() {
  u32 next = pc_ + 1;
  // Innermost slot first; an expiring loop falls through so two bodies may
  // share an end index — same rule as the hardware.
  for (int slot = 1; slot >= 0; --slot) {
    HwLoop& lp = loops_[static_cast<size_t>(slot)];
    if (lp.count > 0 && next == lp.end) {
      if (lp.count > 1) {
        --lp.count;
        next = lp.start;
        break;
      }
      lp.count = 0;
    }
  }
  pc_ = next;
}

Status Golden::dma_cmd() {
  if (dma_src_ % 4 != 0 || dma_dst_ % 4 != 0) {
    return Status::Error("golden: DMA src/dst not word-aligned: src=" +
                         hex(dma_src_) + " dst=" + hex(dma_dst_));
  }
  if (dma_len_ == 0) return {};  // no transfer, no completion event
  const u8* src = mem_at(dma_src_, dma_len_);
  u8* dst = mem_at(dma_dst_, dma_len_);
  if (src == nullptr || dst == nullptr) {
    return Status::Error("golden: DMA range unmapped: src=" + hex(dma_src_) +
                         " dst=" + hex(dma_dst_) + " len=" +
                         std::to_string(dma_len_));
  }
  // Instant completion: the copy happens "now" and the completion event is
  // already pending by the time the core looks. memmove tolerates overlap
  // the same way a beat-by-beat ascending copy would for dst < src; the
  // generator never produces overlapping windows anyway.
  std::memmove(dst, src, dma_len_);
  event_pending_ = true;  // completion broadcast (event 0)
  return {};
}

Status Golden::run(const isa::Program& program) {
  regs_.fill(0);
  loops_ = {};
  pc_ = program.entry;
  halted_ = false;
  eoc_.reset();
  event_pending_ = false;
  dma_src_ = dma_dst_ = dma_len_ = 0;
  retired_ = 0;
  retire_log_.clear();
  for (const isa::Segment& seg : program.data) {
    for (size_t i = 0; i < seg.bytes.size(); ++i) {
      u8* p = mem_at(seg.addr + static_cast<Addr>(i), 1);
      if (p == nullptr) {
        return Status::Error("golden: data segment outside memory at " +
                             hex(seg.addr + static_cast<Addr>(i)));
      }
      *p = seg.bytes[i];
    }
  }

  const auto* code = program.code.data();
  const u32 code_size = static_cast<u32>(program.code.size());

  while (!halted_) {
    if (retired_ >= params_.max_retired) {
      return Status::Error("golden: retire budget exhausted at pc " +
                           std::to_string(pc_));
    }
    if (pc_ >= code_size) {
      return Status::Error("golden: pc " + std::to_string(pc_) +
                           " ran past program end");
    }
    const Instr& in = code[pc_];
    ++retired_;
    if (params_.keep_retire_log) retire_log_.push_back({pc_, in});
    coverage_.record(in);
    coverage_.record_hwloop_depth(
        static_cast<u32>(loops_[0].count > 0) +
        static_cast<u32>(loops_[1].count > 0));

    const u32 a = regs_[in.ra];
    const u32 b = regs_[in.rb];
    const u32 d = regs_[in.rd];
    bool sequential = true;

    switch (in.op) {
      case Opcode::kAdd: write_reg(in.rd, a + b); break;
      case Opcode::kSub: write_reg(in.rd, a - b); break;
      case Opcode::kAnd: write_reg(in.rd, a & b); break;
      case Opcode::kOr: write_reg(in.rd, a | b); break;
      case Opcode::kXor: write_reg(in.rd, a ^ b); break;
      case Opcode::kSll: write_reg(in.rd, a << (b & 31)); break;
      case Opcode::kSrl: write_reg(in.rd, a >> (b & 31)); break;
      case Opcode::kSra: write_reg(in.rd, as_u32(as_i32(a) >> (b & 31))); break;
      case Opcode::kSlt: write_reg(in.rd, as_i32(a) < as_i32(b) ? 1 : 0); break;
      case Opcode::kSltu: write_reg(in.rd, a < b ? 1 : 0); break;

      case Opcode::kMul: write_reg(in.rd, a * b); break;
      case Opcode::kMulhs:
        write_reg(in.rd, static_cast<u32>(
                             (static_cast<i64>(as_i32(a)) * as_i32(b)) >> 32));
        break;
      case Opcode::kMulhu:
        write_reg(in.rd, static_cast<u32>(
                             (static_cast<u64>(a) * static_cast<u64>(b)) >> 32));
        break;
      case Opcode::kDiv:
        if (b == 0) {
          write_reg(in.rd, 0xFFFFFFFFu);
        } else if (a == 0x80000000u && b == 0xFFFFFFFFu) {
          write_reg(in.rd, 0x80000000u);
        } else {
          write_reg(in.rd, as_u32(as_i32(a) / as_i32(b)));
        }
        break;
      case Opcode::kDivu:
        write_reg(in.rd, b == 0 ? 0xFFFFFFFFu : a / b);
        break;
      case Opcode::kRem:
        if (b == 0) {
          write_reg(in.rd, a);
        } else if (a == 0x80000000u && b == 0xFFFFFFFFu) {
          write_reg(in.rd, 0);
        } else {
          write_reg(in.rd, as_u32(as_i32(a) % as_i32(b)));
        }
        break;
      case Opcode::kRemu:
        write_reg(in.rd, b == 0 ? a : a % b);
        break;

      case Opcode::kMac: write_reg(in.rd, d + a * b); break;
      case Opcode::kDotp2h:
        write_reg(in.rd, d + as_u32(lane16(a, 0) * lane16(b, 0) +
                                    lane16(a, 1) * lane16(b, 1)));
        break;
      case Opcode::kDotp4b: {
        i32 acc = 0;
        for (int l = 0; l < 4; ++l) acc += lane8(a, l) * lane8(b, l);
        write_reg(in.rd, d + as_u32(acc));
        break;
      }
      case Opcode::kAdd2h:
      case Opcode::kSub2h: {
        const int sign = in.op == Opcode::kAdd2h ? 1 : -1;
        u32 out = 0;
        for (int l = 0; l < 2; ++l) {
          const u32 r = static_cast<u32>(lane16(a, l) + sign * lane16(b, l));
          out |= (r & 0xFFFF) << (16 * l);
        }
        write_reg(in.rd, out);
        break;
      }
      case Opcode::kAdd4b:
      case Opcode::kSub4b: {
        const int sign = in.op == Opcode::kAdd4b ? 1 : -1;
        u32 out = 0;
        for (int l = 0; l < 4; ++l) {
          const u32 r = static_cast<u32>(lane8(a, l) + sign * lane8(b, l));
          out |= (r & 0xFF) << (8 * l);
        }
        write_reg(in.rd, out);
        break;
      }

      case Opcode::kAddi: write_reg(in.rd, a + as_u32(in.imm)); break;
      case Opcode::kAndi: write_reg(in.rd, a & as_u32(in.imm)); break;
      case Opcode::kOri: write_reg(in.rd, a | as_u32(in.imm)); break;
      case Opcode::kXori: write_reg(in.rd, a ^ as_u32(in.imm)); break;
      case Opcode::kSlli: write_reg(in.rd, a << (in.imm & 31)); break;
      case Opcode::kSrli: write_reg(in.rd, a >> (in.imm & 31)); break;
      case Opcode::kSrai:
        write_reg(in.rd, as_u32(as_i32(a) >> (in.imm & 31)));
        break;
      case Opcode::kSlti: write_reg(in.rd, as_i32(a) < in.imm ? 1 : 0); break;
      case Opcode::kSltiu:
        write_reg(in.rd, a < as_u32(in.imm) ? 1 : 0);
        break;
      case Opcode::kLui: write_reg(in.rd, as_u32(in.imm) << 12); break;

      case Opcode::kLw: case Opcode::kLh: case Opcode::kLhu:
      case Opcode::kLb: case Opcode::kLbu:
      case Opcode::kLwpi: case Opcode::kLhpi: case Opcode::kLhupi:
      case Opcode::kLbpi: case Opcode::kLbupi:
      case Opcode::kSw: case Opcode::kSh: case Opcode::kSb:
      case Opcode::kSwpi: case Opcode::kShpi: case Opcode::kSbpi: {
        const bool is_store = isa::is_store(in.op);
        const bool postinc = isa::is_postinc(in.op);
        const u32 size = static_cast<u32>(isa::access_size(in.op));
        // Post-increment addressing uses the pre-increment base.
        const Addr addr = postinc ? a : a + as_u32(in.imm);
        const bool unaligned = addr % size != 0;
        coverage_.record_mem(static_cast<int>(size), unaligned,
                             unaligned && (addr / 4 != (addr + size - 1) / 4));

        // DMA peripheral window: aligned word access only, like the bus.
        if (addr >= memmap::kDmaBase && addr < memmap::kDmaBase + 0x14) {
          if (size != 4 || unaligned) {
            return Status::Error("golden: non-word DMA register access at " +
                                 hex(addr));
          }
          const Addr off = addr - memmap::kDmaBase;
          if (is_store) {
            const u32 v = regs_[in.rd];
            switch (off) {
              case kDmaSrc: dma_src_ = v; break;
              case kDmaDst: dma_dst_ = v; break;
              case kDmaLen: dma_len_ = v; break;
              case kDmaCmd: {
                Status s = dma_cmd();
                if (!s.ok()) return s;
                break;
              }
              default:
                return Status::Error("golden: write to DMA offset " +
                                     std::to_string(off));
            }
          } else {
            u32 v = 0;
            switch (off) {
              case kDmaSrc: v = dma_src_; break;
              case kDmaDst: v = dma_dst_; break;
              case kDmaLen: v = dma_len_; break;
              case kDmaStatus: v = 0; break;  // instant model: always drained
              default:
                return Status::Error("golden: read from DMA offset " +
                                     std::to_string(off));
            }
            write_reg(in.rd, v);
          }
        } else {
          if (mem_at(addr, size) == nullptr) {
            return Status::Error("golden: unmapped access at " + hex(addr) +
                                 " size " + std::to_string(size) + " (pc " +
                                 std::to_string(pc_) + ")");
          }
          if (is_store) {
            store(addr, size, regs_[in.rd]);
          } else {
            u32 v = load(addr, size);
            const bool sign = in.op == Opcode::kLh || in.op == Opcode::kLhpi ||
                              in.op == Opcode::kLb || in.op == Opcode::kLbpi;
            if (sign && size < 4) {
              const u32 sign_bit = 1u << (size * 8 - 1);
              if (v & sign_bit) v |= ~((sign_bit << 1) - 1);
            }
            write_reg(in.rd, v);
          }
        }
        // rd == ra on a post-increment load: the base update reads the
        // just-loaded value, matching the core's write-back order.
        if (postinc) write_reg(in.ra, regs_[in.ra] + as_u32(in.imm));
        break;
      }

      case Opcode::kBeq: case Opcode::kBne: case Opcode::kBlt:
      case Opcode::kBge: case Opcode::kBltu: case Opcode::kBgeu: {
        bool taken = false;
        switch (in.op) {
          case Opcode::kBeq: taken = a == b; break;
          case Opcode::kBne: taken = a != b; break;
          case Opcode::kBlt: taken = as_i32(a) < as_i32(b); break;
          case Opcode::kBge: taken = as_i32(a) >= as_i32(b); break;
          case Opcode::kBltu: taken = a < b; break;
          case Opcode::kBgeu: taken = a >= b; break;
          default: break;
        }
        if (taken) {
          pc_ = static_cast<u32>(static_cast<i64>(pc_) + in.imm);
          sequential = false;
        }
        break;
      }
      case Opcode::kJal:
        write_reg(in.rd, pc_ + 1);
        pc_ = static_cast<u32>(static_cast<i64>(pc_) + in.imm);
        sequential = false;
        break;
      case Opcode::kJalr: {
        const u32 target = a;  // read before rd write (rd may alias ra)
        write_reg(in.rd, pc_ + 1);
        pc_ = target;
        sequential = false;
        break;
      }

      case Opcode::kLpSetup: {
        if (in.rd >= 2) {
          return Status::Error("golden: hardware loop id out of range");
        }
        if (in.imm <= 0) {
          return Status::Error("golden: empty hardware loop body");
        }
        HwLoop& lp = loops_[in.rd];
        lp.start = pc_ + 1;
        lp.end = pc_ + 1 + static_cast<u32>(in.imm);
        lp.count = a;
        if (lp.count == 0) {
          pc_ = lp.end;
          sequential = false;
        }
        break;
      }

      case Opcode::kCsrr:
        switch (static_cast<isa::Csr>(in.imm)) {
          case isa::Csr::kCoreId: write_reg(in.rd, 0); break;
          case isa::Csr::kNumCores: write_reg(in.rd, 1); break;
          case isa::Csr::kCycle:
            // Timing-dependent by definition; no golden value exists.
            return Status::Error("golden: program read the cycle CSR");
          default:
            return Status::Error("golden: unknown CSR " +
                                 std::to_string(in.imm));
        }
        break;
      case Opcode::kBarrier:
        break;  // single hart: the one-core barrier completes immediately
      case Opcode::kWfe:
        // The real core advances pc (running the loop-end checks) before
        // sleeping; mirror that, then insist an event is already pending —
        // a generated single-core program must never deadlock.
        advance_pc_sequential();
        sequential = false;
        if (!event_pending_) {
          return Status::Error("golden: wfe with no pending event (pc " +
                               std::to_string(pc_) + ")");
        }
        event_pending_ = false;
        break;
      case Opcode::kSev:
        event_pending_ = true;  // broadcast reaches the sender too
        break;
      case Opcode::kEoc:
        eoc_ = as_u32(in.imm);
        halted_ = true;
        break;
      case Opcode::kNop: break;
      case Opcode::kHalt: halted_ = true; break;

      case Opcode::kCount:
        return Status::Error("golden: kCount sentinel in program");
    }

    if (sequential && !halted_) advance_pc_sequential();
  }
  return {};
}

}  // namespace ulp::verif
