// Differential execution harness: generated program -> golden interpreter
// and real cluster (every stepping mode) -> first-divergence verdict.
//
// Stepping matrix for every program: the reference per-cycle oracle vs
// plain fast-forward vs block-cached fast-forward (decode-once basic
// blocks with threaded dispatch), all of which must agree bit-for-bit on
// final state, exact cycle counts and per-core retire logs. Single-core
// programs additionally check golden vs the reference-stepped cluster
// (architectural correctness). Multi-core stress programs have no
// canonical golden interleaving, so they are checked against invariants
// instead: the run converges (all barriers complete, no lost wakeups,
// every core halts inside the cycle budget), the stepping modes agree, and
// every generated DMA transfer left a byte-exact image of its source at
// its destination.
//
// Every cluster-backed mode additionally gets a *snapshot column*: the
// same program is advanced K cycles (K a pure function of the program
// seed, spanning 0..run-length so save-at-boot and save-after-halt are
// both exercised), snapshot::save'd, restored into a freshly constructed
// cluster and run to completion there — and the stitched run must be
// bit-identical to the continuous one in cycles, registers, memories,
// retire logs and per-core attribution profiles. Any piece of
// architectural or timing state the snapshot layer forgets to carry shows
// up here as a first-divergence verdict.
#pragma once

#include <array>
#include <optional>
#include <string>
#include <vector>

#include "profile/pc_profile.hpp"
#include "verif/generator.hpp"
#include "verif/golden.hpp"

namespace ulp::verif {

/// Everything observable about one finished cluster run.
struct Observation {
  u64 cycles = 0;
  bool eoc = false;
  u32 eoc_flag = 0;
  u64 barriers_completed = 0;
  std::vector<std::array<u32, isa::kNumRegs>> regs;  ///< Per core.
  std::vector<u8> tcdm;
  std::vector<u8> l2;
  std::vector<std::vector<Retire>> retires;  ///< Per core.
  /// Per-core cycle/instruction attribution capture (pc counts, call tree,
  /// live call stack). Part of the equality contract like everything else:
  /// identical across stepping modes and across a snapshot/restore seam.
  std::vector<profile::PcProfile::RawState> profiles;
};

/// Execute `gp` on a real cluster in the given stepping mode. Throws
/// SimError on timeout/model faults (callers turn that into a failure).
/// `cov`, when given, tallies every retired instruction on every core.
/// `block_cache` pins the ISS basic-block cache on/off for this run
/// (ignored under reference stepping); unset uses the process default.
/// `multicore_windows` likewise pins multi-core block windows (meaningful
/// only with the block cache on and gp.num_cores > 1).
[[nodiscard]] Observation run_on_cluster(
    const GenProgram& gp, bool reference_stepping, u64 max_cycles = 5'000'000,
    Coverage* cov = nullptr, std::optional<bool> block_cache = {},
    std::optional<bool> multicore_windows = {});

struct DiffResult {
  bool pass = true;
  /// First divergence, human-readable ("ref-vs-ff: core 1 r9 ...").
  std::string detail;
};

/// Full differential check of one generated program; dispatches on
/// gp.num_cores (1 = golden three-way, >1 = stress invariants).
/// `snapshot_column` additionally replays every cluster-backed mode
/// through a mid-run save/restore into a fresh cluster and requires the
/// stitched run to match the continuous one bit-for-bit.
[[nodiscard]] DiffResult check_program(const GenProgram& gp,
                                       Coverage* cov = nullptr,
                                       u64 max_cycles = 5'000'000,
                                       bool snapshot_column = true);

// ---- campaign driver --------------------------------------------------

struct CampaignParams {
  u64 seed = 0xC0FFEEull;
  u32 num_programs = 500;  ///< Single-core differential programs.
  u32 num_stress = 100;    ///< Multi-core stress schedules.
  u32 body_items = 32;
  bool allow_dma = true;
  /// Snapshot-column cadence: program i gets the save/restore differential
  /// leg when i % snapshot_every == 0. 1 = every program (the default, and
  /// what the tier-1 campaigns run); 0 disables the column.
  u32 snapshot_every = 1;
};

/// Generation parameters of program `index` within a campaign: seeds are
/// derive_seed(campaign_seed, index) and profiles are striped so the
/// feature-restricted cores (or10n, cortex_m4, baseline) keep their
/// fallback code paths covered. Stress schedules live at index >= 1<<20.
[[nodiscard]] GenParams campaign_member(const CampaignParams& p, u32 index,
                                        bool stress);

struct CampaignFailure {
  GenParams params;  ///< Regenerate the failing program from these.
  std::string detail;
};

struct CampaignResult {
  u32 programs_run = 0;
  u32 stress_run = 0;
  u32 failure_count = 0;
  std::vector<CampaignFailure> failures;  ///< First 32, for shrinking.
  Coverage coverage;

  [[nodiscard]] bool pass() const { return failure_count == 0; }
};

[[nodiscard]] CampaignResult run_campaign(const CampaignParams& params);

}  // namespace ulp::verif
