#include "isa/isa.hpp"

#include "common/status.hpp"

namespace ulp::isa {

namespace {
constexpr std::array<OpInfo, kNumOpcodes> kOpTable = {{
    {"add", Fmt::kR},     {"sub", Fmt::kR},    {"and", Fmt::kR},
    {"or", Fmt::kR},      {"xor", Fmt::kR},    {"sll", Fmt::kR},
    {"srl", Fmt::kR},     {"sra", Fmt::kR},    {"slt", Fmt::kR},
    {"sltu", Fmt::kR},    {"mul", Fmt::kR},    {"mulhs", Fmt::kR},
    {"mulhu", Fmt::kR},   {"div", Fmt::kR},    {"divu", Fmt::kR},
    {"rem", Fmt::kR},     {"remu", Fmt::kR},   {"mac", Fmt::kR},
    {"dotp2.h", Fmt::kR}, {"dotp4.b", Fmt::kR},
    {"add2.h", Fmt::kR},  {"sub2.h", Fmt::kR}, {"add4.b", Fmt::kR},
    {"sub4.b", Fmt::kR},  {"addi", Fmt::kI},   {"andi", Fmt::kI},
    {"ori", Fmt::kI},     {"xori", Fmt::kI},   {"slli", Fmt::kI},
    {"srli", Fmt::kI},    {"srai", Fmt::kI},   {"slti", Fmt::kI},
    {"sltiu", Fmt::kI},   {"lui", Fmt::kLui},  {"lw", Fmt::kMem},
    {"lh", Fmt::kMem},    {"lhu", Fmt::kMem},  {"lb", Fmt::kMem},
    {"lbu", Fmt::kMem},   {"lw!", Fmt::kMem},  {"lh!", Fmt::kMem},
    {"lhu!", Fmt::kMem},  {"lb!", Fmt::kMem},  {"lbu!", Fmt::kMem},
    {"sw", Fmt::kMem},    {"sh", Fmt::kMem},   {"sb", Fmt::kMem},
    {"sw!", Fmt::kMem},   {"sh!", Fmt::kMem},  {"sb!", Fmt::kMem},
    {"beq", Fmt::kB},     {"bne", Fmt::kB},    {"blt", Fmt::kB},
    {"bge", Fmt::kB},     {"bltu", Fmt::kB},   {"bgeu", Fmt::kB},
    {"jal", Fmt::kJ},     {"jalr", Fmt::kR},   {"lp.setup", Fmt::kLp},
    {"csrr", Fmt::kSys},  {"barrier", Fmt::kSys}, {"wfe", Fmt::kSys},
    {"sev", Fmt::kSys},   {"eoc", Fmt::kSys},  {"nop", Fmt::kSys},
    {"halt", Fmt::kSys},
}};
}  // namespace

std::string_view fmt_name(Fmt fmt) {
  switch (fmt) {
    case Fmt::kR: return "R";
    case Fmt::kI: return "I";
    case Fmt::kLui: return "Lui";
    case Fmt::kMem: return "Mem";
    case Fmt::kB: return "B";
    case Fmt::kJ: return "J";
    case Fmt::kLp: return "Lp";
    case Fmt::kSys: return "Sys";
  }
  return "?";
}

const OpInfo& op_info(Opcode op) {
  const auto idx = static_cast<size_t>(op);
  ULP_CHECK(idx < kNumOpcodes, "invalid opcode");
  return kOpTable[idx];
}

bool is_load(Opcode op) {
  return op >= Opcode::kLw && op <= Opcode::kLbupi;
}

bool is_store(Opcode op) {
  return op >= Opcode::kSw && op <= Opcode::kSbpi;
}

bool is_postinc(Opcode op) {
  return (op >= Opcode::kLwpi && op <= Opcode::kLbupi) ||
         (op >= Opcode::kSwpi && op <= Opcode::kSbpi);
}

bool is_branch(Opcode op) {
  return op >= Opcode::kBeq && op <= Opcode::kBgeu;
}

int access_size(Opcode op) {
  switch (op) {
    case Opcode::kLw:
    case Opcode::kLwpi:
    case Opcode::kSw:
    case Opcode::kSwpi:
      return 4;
    case Opcode::kLh:
    case Opcode::kLhu:
    case Opcode::kLhpi:
    case Opcode::kLhupi:
    case Opcode::kSh:
    case Opcode::kShpi:
      return 2;
    case Opcode::kLb:
    case Opcode::kLbu:
    case Opcode::kLbpi:
    case Opcode::kLbupi:
    case Opcode::kSb:
    case Opcode::kSbpi:
      return 1;
    default:
      ULP_CHECK(false, "access_size on non-memory opcode");
  }
}

bool is_simd(Opcode op) {
  return op >= Opcode::kDotp2h && op <= Opcode::kSub4b;
}

}  // namespace ulp::isa
