#include "isa/encoding.hpp"

#include "common/status.hpp"

namespace ulp::isa {

namespace {

constexpr i32 kImm15Min = -(1 << 14);
constexpr i32 kImm15Max = (1 << 14) - 1;
constexpr i32 kImm20Min = -(1 << 19);
constexpr i32 kImm20Max = (1 << 19) - 1;
constexpr u32 kLuiMax = (1u << 20) - 1;

void check_reg(u8 r) { ULP_CHECK(r < kNumRegs, "register out of range"); }

u32 field(u32 v, int shift) { return v << shift; }

i32 sext(u32 v, int bits) {
  const u32 m = 1u << (bits - 1);
  return static_cast<i32>((v ^ m) - m);
}

}  // namespace

bool imm_fits(Opcode op, i32 imm) {
  switch (op_info(op).fmt) {
    case Fmt::kR:
      return imm == 0;
    case Fmt::kLui:
      return imm >= 0 && static_cast<u32>(imm) <= kLuiMax;
    case Fmt::kJ:
      return imm >= kImm20Min && imm <= kImm20Max;
    default:
      return imm >= kImm15Min && imm <= kImm15Max;
  }
}

u32 encode(const Instr& in) {
  const OpInfo& info = op_info(in.op);
  check_reg(in.rd);
  check_reg(in.ra);
  check_reg(in.rb);
  ULP_CHECK(imm_fits(in.op, in.imm),
            std::string("immediate out of range for ") +
                std::string(info.mnemonic));
  u32 w = field(static_cast<u32>(in.op), 25);
  switch (info.fmt) {
    case Fmt::kR:
      w |= field(in.rd, 20) | field(in.ra, 15) | field(in.rb, 10);
      break;
    case Fmt::kI:
    case Fmt::kMem:
    case Fmt::kLp:
      w |= field(in.rd, 20) | field(in.ra, 15) |
           (static_cast<u32>(in.imm) & 0x7FFF);
      break;
    case Fmt::kB:
      w |= field(in.ra, 20) | field(in.rb, 15) |
           (static_cast<u32>(in.imm) & 0x7FFF);
      break;
    case Fmt::kLui:
    case Fmt::kJ:
      w |= field(in.rd, 20) | (static_cast<u32>(in.imm) & 0xFFFFF);
      break;
    case Fmt::kSys:
      w |= field(in.rd, 20) | (static_cast<u32>(in.imm) & 0x7FFF);
      break;
  }
  return w;
}

Instr decode(u32 w) {
  const u32 opc = w >> 25;
  ULP_CHECK(opc < kNumOpcodes, "invalid opcode in instruction word");
  Instr in;
  in.op = static_cast<Opcode>(opc);
  const Fmt fmt = op_info(in.op).fmt;
  switch (fmt) {
    case Fmt::kR:
      in.rd = (w >> 20) & 0x1F;
      in.ra = (w >> 15) & 0x1F;
      in.rb = (w >> 10) & 0x1F;
      break;
    case Fmt::kI:
    case Fmt::kMem:
    case Fmt::kLp:
      in.rd = (w >> 20) & 0x1F;
      in.ra = (w >> 15) & 0x1F;
      in.imm = sext(w & 0x7FFF, 15);
      break;
    case Fmt::kB:
      in.ra = (w >> 20) & 0x1F;
      in.rb = (w >> 15) & 0x1F;
      in.imm = sext(w & 0x7FFF, 15);
      break;
    case Fmt::kLui:
      in.rd = (w >> 20) & 0x1F;
      in.imm = static_cast<i32>(w & 0xFFFFF);
      break;
    case Fmt::kJ:
      in.rd = (w >> 20) & 0x1F;
      in.imm = sext(w & 0xFFFFF, 20);
      break;
    case Fmt::kSys:
      in.rd = (w >> 20) & 0x1F;
      in.imm = sext(w & 0x7FFF, 15);
      break;
  }
  return in;
}

std::vector<u32> encode_all(const std::vector<Instr>& code) {
  std::vector<u32> out;
  out.reserve(code.size());
  for (const Instr& i : code) out.push_back(encode(i));
  return out;
}

std::vector<Instr> decode_all(const std::vector<u32>& words) {
  std::vector<Instr> out;
  out.reserve(words.size());
  for (u32 w : words) out.push_back(decode(w));
  return out;
}

}  // namespace ulp::isa
