#include "isa/program.hpp"

#include "common/status.hpp"
#include "isa/encoding.hpp"

namespace ulp::isa {

namespace {

constexpr u32 kMagic = 0x50554C50;  // "PULP"

void put_u32(std::vector<u8>& out, u32 v) {
  out.push_back(static_cast<u8>(v));
  out.push_back(static_cast<u8>(v >> 8));
  out.push_back(static_cast<u8>(v >> 16));
  out.push_back(static_cast<u8>(v >> 24));
}

class Reader {
 public:
  explicit Reader(const std::vector<u8>& buf) : buf_(buf) {}

  u32 u32_at() {
    ULP_CHECK(pos_ + 4 <= buf_.size(), "truncated program image");
    const u32 v = static_cast<u32>(buf_[pos_]) |
                  static_cast<u32>(buf_[pos_ + 1]) << 8 |
                  static_cast<u32>(buf_[pos_ + 2]) << 16 |
                  static_cast<u32>(buf_[pos_ + 3]) << 24;
    pos_ += 4;
    return v;
  }

  std::vector<u8> bytes(size_t n) {
    ULP_CHECK(pos_ + n <= buf_.size(), "truncated program image");
    std::vector<u8> out(buf_.begin() + static_cast<long>(pos_),
                        buf_.begin() + static_cast<long>(pos_ + n));
    pos_ += n;
    return out;
  }

  [[nodiscard]] bool done() const { return pos_ == buf_.size(); }

 private:
  const std::vector<u8>& buf_;
  size_t pos_ = 0;
};

}  // namespace

size_t Program::image_size_bytes() const {
  size_t sz = 4 * 4;  // magic, entry, code count, segment count
  sz += code.size() * 4;
  for (const Segment& s : data) {
    sz += 8 + ((s.bytes.size() + 3) & ~size_t{3});
  }
  return sz;
}

std::vector<u8> serialize(const Program& program) {
  std::vector<u8> out;
  out.reserve(program.image_size_bytes());
  put_u32(out, kMagic);
  put_u32(out, program.entry);
  put_u32(out, static_cast<u32>(program.code.size()));
  put_u32(out, static_cast<u32>(program.data.size()));
  for (const Instr& i : program.code) put_u32(out, encode(i));
  for (const Segment& s : program.data) {
    put_u32(out, s.addr);
    put_u32(out, static_cast<u32>(s.bytes.size()));
    for (u8 b : s.bytes) out.push_back(b);
    while (out.size() % 4 != 0) out.push_back(0);  // word padding
  }
  return out;
}

Program deserialize(const std::vector<u8>& image) {
  Reader r(image);
  ULP_CHECK(r.u32_at() == kMagic, "bad program image magic");
  Program p;
  p.entry = r.u32_at();
  const u32 ninstr = r.u32_at();
  const u32 nseg = r.u32_at();
  p.code.reserve(ninstr);
  for (u32 i = 0; i < ninstr; ++i) p.code.push_back(decode(r.u32_at()));
  ULP_CHECK(p.entry <= p.code.size(), "entry point outside code");
  for (u32 s = 0; s < nseg; ++s) {
    Segment seg;
    seg.addr = r.u32_at();
    const u32 len = r.u32_at();
    seg.bytes = r.bytes(len);
    if (len % 4 != 0) (void)r.bytes(4 - len % 4);  // skip padding
    p.data.push_back(std::move(seg));
  }
  ULP_CHECK(r.done(), "trailing bytes in program image");
  return p;
}

}  // namespace ulp::isa
