// Program image: code + initialised data segments.
//
// This is the unit the host offloads to the accelerator: the runtime
// serialises a Program to bytes (serialize/deserialize below), ships it over
// the SPI link into L2, and the accelerator boot stub loads the segments.
// Its serialised size is the "Binary Size" column of Table I.
#pragma once

#include <vector>

#include "isa/isa.hpp"

namespace ulp::isa {

/// A block of initialised data placed at a fixed address (LUTs, weights,
/// constants — anything the kernel needs besides its code and I/O buffers).
struct Segment {
  Addr addr = 0;
  std::vector<u8> bytes;
};

struct Program {
  std::vector<Instr> code;
  std::vector<Segment> data;
  u32 entry = 0;  ///< Instruction index where execution starts.

  /// Size of the serialised image in bytes (code + data + headers), i.e.
  /// what must cross the host-accelerator link during a code offload.
  [[nodiscard]] size_t image_size_bytes() const;

  /// Bytes of code alone (4 per instruction).
  [[nodiscard]] size_t code_size_bytes() const { return code.size() * 4; }
};

/// Binary wire format (little-endian u32 header + payload). Round-trips via
/// deserialize; malformed images throw SimError.
[[nodiscard]] std::vector<u8> serialize(const Program& program);
[[nodiscard]] Program deserialize(const std::vector<u8>& image);

}  // namespace ulp::isa
