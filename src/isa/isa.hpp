// VR1K: the 32-bit RISC instruction set used by the simulator.
//
// The ISA is OpenRISC-inspired (32 GPRs, r0 hardwired to zero) and carries
// the OR10N extensions the paper's Section III-B describes: a
// register-register multiply-accumulate, sub-word pseudo-SIMD (2x16 / 4x8
// dot products and vector add/sub), two zero-overhead hardware loops,
// post-increment addressing, and unaligned load/store support. Whether a
// given *core* may execute each extension is decided by core::CoreFeatures;
// the ISA itself just defines semantics and encodings.
//
// Branch/jump offsets are measured in instructions (not bytes); the program
// counter is an instruction index. Encoded images still account 4 bytes per
// instruction for binary-size purposes (Table I).
#pragma once

#include <array>
#include <cstdint>
#include <string_view>

#include "common/types.hpp"

namespace ulp::isa {

inline constexpr int kNumRegs = 32;

/// Control/status registers readable through CSRR.
enum class Csr : u16 {
  kCoreId = 0,    ///< Index of this core within its cluster.
  kNumCores = 1,  ///< Number of cores in the cluster.
  kCycle = 2,     ///< Free-running cycle counter (low 32 bits).
};

enum class Opcode : u8 {
  // ALU register-register.
  kAdd, kSub, kAnd, kOr, kXor, kSll, kSrl, kSra, kSlt, kSltu,
  // Multiply / divide.
  kMul,    ///< 32x32 -> low 32 bits.
  kMulhs,  ///< 32x32 -> high 32 bits, signed   (Cortex-M smull-class).
  kMulhu,  ///< 32x32 -> high 32 bits, unsigned (Cortex-M umull-class).
  kDiv, kDivu, kRem, kRemu,
  // OR10N extensions (feature-gated).
  kMac,     ///< rd += ra * rb (register-register MAC).
  kDotp2h,  ///< rd += a.h0*b.h0 + a.h1*b.h1 (2x16-bit lanes, signed).
  kDotp4b,  ///< rd += sum(a.b[i]*b.b[i])    (4x8-bit lanes, signed).
  kAdd2h, kSub2h, kAdd4b, kSub4b,  ///< lane-wise vector add/sub.
  // ALU register-immediate.
  kAddi, kAndi, kOri, kXori, kSlli, kSrli, kSrai, kSlti, kSltiu,
  kLui,  ///< rd = imm << 12.
  // Loads (rd <- mem[ra + imm]); PI variants post-increment ra by imm.
  kLw, kLh, kLhu, kLb, kLbu,
  kLwpi, kLhpi, kLhupi, kLbpi, kLbupi,
  // Stores (mem[ra + imm] <- rd); PI variants post-increment ra by imm.
  kSw, kSh, kSb,
  kSwpi, kShpi, kSbpi,
  // Control flow. Branch compares ra, rb; target = pc + imm.
  kBeq, kBne, kBlt, kBge, kBltu, kBgeu,
  kJal,   ///< rd = pc + 1; pc += imm.
  kJalr,  ///< rd = pc + 1; pc = ra.
  // Hardware loops: id = rd (0/1), trip count = reg[ra], body = imm instrs
  // starting at the next pc.
  kLpSetup,
  // System.
  kCsrr,     ///< rd = csr[imm].
  kBarrier,  ///< Rendezvous of all cluster cores via the HW synchronizer.
  kWfe,      ///< Sleep (clock-gated) until an event is signalled.
  kSev,      ///< Signal event imm to the cluster event unit.
  kEoc,      ///< End of computation: raises the host-visible event GPIO.
  kNop,
  kHalt,
  kCount,  // sentinel
};

inline constexpr size_t kNumOpcodes = static_cast<size_t>(Opcode::kCount);

/// Instruction formats, used by the binary encoder and the disassembler.
enum class Fmt : u8 {
  kR,    ///< op rd, ra, rb
  kI,    ///< op rd, ra, imm15
  kLui,  ///< op rd, imm20
  kMem,  ///< op rd, imm15(ra)          (loads and stores)
  kB,    ///< op ra, rb, imm15          (branches)
  kJ,    ///< op rd, imm20              (jal)
  kLp,   ///< op id(rd), ra, imm15      (lp.setup)
  kSys,  ///< op [rd,] imm15            (csrr/sev/eoc/barrier/wfe/nop/halt)
};

inline constexpr size_t kNumFmts = 8;

struct OpInfo {
  std::string_view mnemonic;
  Fmt fmt;
};

[[nodiscard]] const OpInfo& op_info(Opcode op);

/// Short format name ("R", "I", "Mem", ...) for coverage matrices and
/// diagnostics.
[[nodiscard]] std::string_view fmt_name(Fmt fmt);

/// One decoded instruction. `imm` is already sign-extended.
struct Instr {
  Opcode op = Opcode::kNop;
  u8 rd = 0;
  u8 ra = 0;
  u8 rb = 0;
  i32 imm = 0;

  friend bool operator==(const Instr&, const Instr&) = default;
};

[[nodiscard]] bool is_load(Opcode op);
[[nodiscard]] bool is_store(Opcode op);
[[nodiscard]] bool is_postinc(Opcode op);
[[nodiscard]] bool is_branch(Opcode op);
/// Bytes accessed by a load/store opcode (1, 2 or 4).
[[nodiscard]] int access_size(Opcode op);
/// True for the OR10N sub-word SIMD opcodes (dotp / vector add/sub).
[[nodiscard]] bool is_simd(Opcode op);

}  // namespace ulp::isa
