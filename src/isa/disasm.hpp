// Human-readable disassembly, used by traces, error messages and tests.
#pragma once

#include <string>
#include <vector>

#include "isa/isa.hpp"

namespace ulp::isa {

/// "mac r3, r4, r5" / "lw r1, 8(r2)" / "beq r1, r2, -12" style text.
[[nodiscard]] std::string disassemble(const Instr& instr);

/// Full listing with instruction indices, one line per instruction.
[[nodiscard]] std::string disassemble_listing(const std::vector<Instr>& code);

}  // namespace ulp::isa
