// Binary encoding of VR1K instructions.
//
// Layout of the 32-bit instruction word (fields by format, opcode always in
// bits [31:25]):
//   R:    | op7 | rd5 | ra5 | rb5 | 0...           |
//   I/Mem:| op7 | rd5 | ra5 | imm15 (signed)       |
//   B:    | op7 | ra5 | rb5 | imm15 (signed)       |
//   Lui/J:| op7 | rd5 | imm20 (J: signed)          |
//   Lp:   | op7 | id5 | ra5 | imm15                |
//   Sys:  | op7 | rd5 | imm15                      |
//
// Encoding exists so that (a) Table I binary sizes are measured on a real
// image, (b) the offload runtime ships real bytes over the simulated SPI
// link, and (c) decode(encode(i)) == i is testable by fuzzing.
#pragma once

#include <vector>

#include "isa/isa.hpp"

namespace ulp::isa {

/// Encodes one instruction; throws SimError if a field is out of range
/// (e.g. an immediate that does not fit its format).
[[nodiscard]] u32 encode(const Instr& instr);

/// Decodes one instruction word; throws SimError on an invalid opcode.
[[nodiscard]] Instr decode(u32 word);

/// True if `imm` is representable in the (signed) immediate field of `op`.
[[nodiscard]] bool imm_fits(Opcode op, i32 imm);

[[nodiscard]] std::vector<u32> encode_all(const std::vector<Instr>& code);
[[nodiscard]] std::vector<Instr> decode_all(const std::vector<u32>& words);

}  // namespace ulp::isa
