#include "isa/disasm.hpp"

#include <sstream>

namespace ulp::isa {

namespace {
std::string reg(u8 r) { return "r" + std::to_string(r); }
}  // namespace

std::string disassemble(const Instr& in) {
  const OpInfo& info = op_info(in.op);
  std::ostringstream os;
  os << info.mnemonic;
  switch (info.fmt) {
    case Fmt::kR:
      os << ' ' << reg(in.rd) << ", " << reg(in.ra) << ", " << reg(in.rb);
      break;
    case Fmt::kI:
      os << ' ' << reg(in.rd) << ", " << reg(in.ra) << ", " << in.imm;
      break;
    case Fmt::kMem:
      os << ' ' << reg(in.rd) << ", " << in.imm << '(' << reg(in.ra) << ')';
      break;
    case Fmt::kB:
      os << ' ' << reg(in.ra) << ", " << reg(in.rb) << ", " << in.imm;
      break;
    case Fmt::kLui:
    case Fmt::kJ:
      os << ' ' << reg(in.rd) << ", " << in.imm;
      break;
    case Fmt::kLp:
      os << ' ' << static_cast<int>(in.rd) << ", " << reg(in.ra) << ", "
         << in.imm;
      break;
    case Fmt::kSys:
      if (in.op == Opcode::kCsrr) {
        os << ' ' << reg(in.rd) << ", " << in.imm;
      } else if (in.op == Opcode::kSev || in.op == Opcode::kEoc) {
        os << ' ' << in.imm;
      }
      break;
  }
  return os.str();
}

std::string disassemble_listing(const std::vector<Instr>& code) {
  std::ostringstream os;
  for (size_t i = 0; i < code.size(); ++i) {
    os << i << ":\t" << disassemble(code[i]) << '\n';
  }
  return os.str();
}

}  // namespace ulp::isa
