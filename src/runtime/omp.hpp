// OpenMP-v4-style offload frontend.
//
// The paper's programming interface is "#pragma omp target" with "map"
// clauses plus OpenMP worksharing (Section III-A, following Marongiu et
// al. [27]). C++ has no pragmas to intercept, so this is the closest
// embedded equivalent: a TargetRegion object plays the role of the
// directive —
//
//   omp::TargetRegion region(features, num_cores);
//   Addr a = region.map_to(host_a);            // map(to: a[0:n])
//   Addr c = region.map_from(n);               // map(from: c[0:n])
//   region.parallel_for(n, [&](Builder& b, const ForContext& ctx) {
//     ... body generated per index, ctx.r_index live ...
//   });
//   omp::Offloadable off = region.compile();   // the outlined region
//
// compile() produces everything the offload runtime needs: the SPMD
// program (DMA staging for each map clause, worksharing prologue, barriers)
// and the packed input payload. Device (TCDM) and staging (L2) addresses
// are allocated automatically — the "higher level abstractions [that] hide
// the low-level details of the data exchange primitives".
#pragma once

#include <functional>
#include <span>
#include <vector>

#include "codegen/builder.hpp"
#include "runtime/offload.hpp"
#include "runtime/outliner.hpp"

namespace ulp::omp {

/// The compiled target region: ship `input` to `input_addr`, run `program`,
/// collect `output_bytes` from `output_addr`.
struct Offloadable {
  isa::Program program;
  std::vector<u8> input;
  Addr input_addr = 0;
  size_t output_bytes = 0;
  Addr output_addr = 0;

  [[nodiscard]] runtime::OffloadRequest request() const {
    return {&program, input, input_addr, output_bytes, output_addr};
  }
};

/// Context handed to a parallel_for body emitter.
struct ForContext {
  u8 r_index = 0;  ///< Register holding the current iteration index.
  /// Scratch registers the body may clobber freely.
  u8 r_tmp0 = 0, r_tmp1 = 0, r_tmp2 = 0, r_tmp3 = 0;
};

class TargetRegion {
 public:
  explicit TargetRegion(core::CoreFeatures features, u32 num_cores = 4);

  // ---- data clauses ----------------------------------------------------
  /// map(to:): `host_data` is copied to the accelerator before the region
  /// runs. Returns the device (TCDM) address the generated code reads.
  Addr map_to(std::span<const u8> host_data);

  /// map(from:): reserves `bytes` of device memory whose final contents are
  /// staged back to the host after the region. Returns the device address.
  Addr map_from(size_t bytes);

  /// Device-only scratch (no transfers) — OpenMP's map(alloc:).
  Addr map_alloc(size_t bytes);

  // ---- execution clauses -----------------------------------------------
  /// #pragma omp parallel: emits `section` once; it runs SPMD on all cores
  /// with the outliner registers live. Consecutive sections are separated
  /// by barriers.
  void parallel(
      std::function<void(codegen::Builder&, const runtime::OutlineRegs&)>
          section);

  /// #pragma omp parallel for schedule(static) over [0, total): the body
  /// emitter is invoked once and runs per index with ctx.r_index live.
  void parallel_for(u32 total,
                    std::function<void(codegen::Builder&, const ForContext&)>
                        body);

  /// Outline the region. The TargetRegion is spent afterwards.
  [[nodiscard]] Offloadable compile();

 private:
  core::CoreFeatures features_;
  u32 num_cores_;

  struct Section {
    std::function<void(codegen::Builder&, const runtime::OutlineRegs&)> emit;
  };

  Addr device_alloc(size_t bytes);

  std::vector<Section> sections_;
  std::vector<runtime::Transfer> map_to_;
  std::vector<runtime::Transfer> map_from_;
  std::vector<u8> input_;
  Addr device_brk_;
  Addr l2_in_brk_;
  Addr l2_out_brk_;
  bool compiled_ = false;
};

}  // namespace ulp::omp
