#include "runtime/offload.hpp"

#include <cmath>

#include "common/status.hpp"
#include "trace/metrics.hpp"

namespace ulp::runtime {

double OffloadTiming::total_s(u32 iterations, bool double_buffered) const {
  ULP_CHECK(iterations >= 1, "need at least one iteration");
  const double n = iterations;
  if (!double_buffered) {
    return t_binary_s + n * (t_in_s + t_compute_s + t_out_s);
  }
  // Pipelined: while the accelerator computes iteration i, the link drains
  // iteration i-1's output and fills iteration i+1's input. Steady state is
  // bounded by the slower of (compute) and (in+out transfer).
  const double steady = std::max(t_compute_s, t_in_s + t_out_s);
  return t_binary_s + t_in_s + (n - 1) * steady + t_compute_s + t_out_s;
}

OffloadSession::OffloadSession(const host::McuSpec& mcu, double mcu_freq_hz,
                               link::SpiLink link,
                               power::PulpPowerModel power_model)
    : mcu_(mcu),
      mcu_freq_hz_(mcu_freq_hz),
      link_(link),
      power_(power_model) {
  ULP_CHECK(mcu_freq_hz > 0, "MCU frequency must be positive");
}

void OffloadSession::attach_trace(const trace::Sinks& sinks,
                                  std::string track_name, bool trace_cluster) {
  sinks_ = sinks;
  trace_name_ = std::move(track_name);
  trace_cluster_ = trace_cluster;
  track_made_ = false;
  trace_cursor_s_ = 0;
}

void OffloadSession::trace_phases(const OffloadOutcome& outcome) {
  const OffloadTiming& t = outcome.timing;
  if (sinks_.metrics != nullptr) {
    sinks_.metrics->counter("offload.runs").add();
    sinks_.metrics->histogram("offload.binary_bytes").record(t.binary_bytes);
    sinks_.metrics->histogram("offload.in_bytes").record(t.in_bytes);
    sinks_.metrics->histogram("offload.out_bytes").record(t.out_bytes);
    sinks_.metrics->histogram("offload.compute_cycles").record(t.accel_cycles);
  }
  if (sinks_.events == nullptr) return;
  if (!track_made_) {
    track_ = sinks_.events->add_track(trace_name_, mcu_freq_hz_, 10);
    track_made_ = true;
  }
  // Spans are stamped in MCU cycles: duration == the phase's cycle total
  // at this session's MCU clock (rounded to the nearest cycle).
  auto cycles = [&](double seconds) {
    return static_cast<u64>(std::llround(seconds * mcu_freq_hz_));
  };
  double cur = trace_cursor_s_;
  auto phase = [&](const char* name, double seconds,
                   std::vector<trace::EventTrace::Arg> args) {
    sinks_.events->complete(track_, name, cycles(cur), cycles(seconds),
                            std::move(args));
    cur += seconds;
  };
  phase("binary_xfer", t.t_binary_s,
        {{"bytes", static_cast<double>(t.binary_bytes)}});
  phase("input_xfer", t.t_in_s, {{"bytes", static_cast<double>(t.in_bytes)}});
  phase("compute", t.t_compute_s,
        {{"accel_cycles", static_cast<double>(t.accel_cycles)}});
  phase("output_xfer", t.t_out_s,
        {{"bytes", static_cast<double>(t.out_bytes)}});
  trace_cursor_s_ = cur;
}

OffloadOutcome OffloadSession::run(const OffloadRequest& request,
                                   const power::OperatingPoint& op,
                                   u32 num_cores) {
  ULP_CHECK(op.freq_hz > 0, "accelerator operating point unset");
  ULP_CHECK(request.program != nullptr, "offload request without a program");

  cluster::ClusterParams params;
  params.num_cores = num_cores;
  params.core_config = core::or10n_config();
  soc::PulpSoc soc(params);
  if (sinks_ && trace_cluster_) {
    soc.cluster().attach_trace(sinks_, op.freq_hz, trace_name_ + ".accel");
  }

  // 1. Code offload: serialise and ship the binary.
  const std::vector<u8> image = isa::serialize(*request.program);
  soc.boot_image(image);  // boot ROM consumes the image from L2

  // 2. Data offload: map(to:) payload into the L2 staging area.
  soc.qspi_write(request.input_addr, request.input);

  // 3. Fetch-enable; run to the EOC GPIO.
  const u64 cycles = soc.run_to_eoc();

  // 4. Read results back.
  OffloadOutcome out;
  out.output.resize(request.output_bytes);
  soc.qspi_read(request.output_addr, out.output);

  out.stats = soc.cluster().stats();
  out.activity = power::ActivityFactors::from_stats(out.stats);
  out.timing.accel_cycles = cycles;
  out.timing.t_compute_s = static_cast<double>(cycles) / op.freq_hz;
  const size_t shipped = image.size() + kRuntimeImageBytes;
  out.timing.t_binary_s = link_.transfer_seconds(shipped, mcu_freq_hz_);
  out.timing.t_in_s =
      link_.transfer_seconds(request.input.size(), mcu_freq_hz_);
  out.timing.t_out_s =
      link_.transfer_seconds(request.output_bytes, mcu_freq_hz_);
  out.timing.binary_bytes = shipped;
  out.timing.in_bytes = request.input.size();
  out.timing.out_bytes = request.output_bytes;
  if (sinks_) trace_phases(out);
  return out;
}

EnergyBreakdown OffloadSession::energy(const OffloadOutcome& o,
                                       const power::OperatingPoint& op,
                                       u32 iterations,
                                       bool double_buffered) const {
  const double n = iterations;
  const double t_xfer =
      o.timing.t_binary_s + n * (o.timing.t_in_s + o.timing.t_out_s);
  const double t_compute = n * o.timing.t_compute_s;
  const double total = o.timing.total_s(iterations, double_buffered);

  EnergyBreakdown e;
  // MCU: active while driving the link (it is the SPI master and its DMA
  // runs from the core clock domain), asleep otherwise.
  e.mcu_j = t_xfer * mcu_.active_power_w(mcu_freq_hz_) +
            std::max(0.0, total - t_xfer) * mcu_.sleep_w;
  // PULP: measured-activity power while computing, idle power otherwise.
  e.pulp_j = n * power_.energy_j(o.activity, op, o.timing.accel_cycles) +
             std::max(0.0, total - t_compute) * power_.idle_w(op.vdd);
  // Link: energy per bit plus the idle floor.
  e.link_j = link_.transfer_energy_j(o.timing.binary_bytes) +
             n * (link_.transfer_energy_j(o.timing.in_bytes) +
                  link_.transfer_energy_j(o.timing.out_bytes)) +
             total * link_.idle_power_w();
  return e;
}

double OffloadSession::steady_power_w(const OffloadOutcome& o,
                                      const power::OperatingPoint& op,
                                      bool double_buffered) const {
  // Average over a long run (binary cost amortised away).
  const double t_xfer = o.timing.t_in_s + o.timing.t_out_s;
  const double t_compute = o.timing.t_compute_s;
  const double period = double_buffered ? std::max(t_compute, t_xfer)
                                        : t_compute + t_xfer;
  if (period <= 0) return 0;
  const double mcu_j = t_xfer * mcu_.active_power_w(mcu_freq_hz_) +
                       std::max(0.0, period - t_xfer) * mcu_.sleep_w;
  const double pulp_j =
      power_.energy_j(o.activity, op, o.timing.accel_cycles) +
      std::max(0.0, period - t_compute) * power_.idle_w(op.vdd);
  const double link_j =
      link_.transfer_energy_j(o.timing.in_bytes) +
      link_.transfer_energy_j(o.timing.out_bytes) +
      period * link_.idle_power_w();
  return (mcu_j + pulp_j + link_j) / period;
}

}  // namespace ulp::runtime
