#include "runtime/offload.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <mutex>
#include <utility>

#include "common/status.hpp"
#include "snapshot/snapshot.hpp"
#include "trace/metrics.hpp"

namespace ulp::runtime {

namespace {

/// Process-wide cache of post-boot SoC snapshots for warm-started
/// campaigns. The batch runner constructs one OffloadSession per job (on
/// worker threads), so the cache must outlive any session; it is keyed by
/// the exact serialized image bytes plus the cluster geometry and bounded
/// so a pathological campaign cannot grow it without limit.
struct BootSnapshotCache {
  static constexpr size_t kMaxEntries = 64;
  std::mutex mu;
  std::map<std::pair<std::vector<u8>, u32>, std::vector<u8>> entries;
};

BootSnapshotCache& boot_cache() {
  static BootSnapshotCache cache;
  return cache;
}

/// boot_image(), memoised: the first boot of an (image, geometry) pair
/// snapshots the post-boot state; later boots restore it. Booting runs
/// zero cluster cycles, so the snapshot is independent of stepping mode
/// and profiler attachment — restore is bit-identical to a cold boot.
void warm_boot(soc::PulpSoc& soc, const std::vector<u8>& image,
               u32 num_cores) {
  BootSnapshotCache& cache = boot_cache();
  std::pair<std::vector<u8>, u32> key{image, num_cores};
  {
    std::lock_guard<std::mutex> lock(cache.mu);
    auto it = cache.entries.find(key);
    if (it != cache.entries.end()) {
      snapshot::Reader r;
      Status s = r.open(it->second);
      if (s.ok()) s = soc.restore(r);
      // The cache only holds snapshots this process wrote into a SoC of
      // the keyed geometry: a failure here is a model bug, not bad input.
      s.or_throw();
      return;
    }
  }
  soc.boot_image(image);
  snapshot::Writer w;
  soc.save(w).or_throw();
  std::lock_guard<std::mutex> lock(cache.mu);
  if (cache.entries.size() < BootSnapshotCache::kMaxEntries) {
    cache.entries.emplace(std::move(key), w.finish());
  }
}

}  // namespace

double OffloadTiming::total_s(u32 iterations, bool double_buffered) const {
  ULP_CHECK(iterations >= 1, "need at least one iteration");
  const double n = iterations;
  if (!double_buffered) {
    return t_retry_s + t_binary_s + n * (t_in_s + t_compute_s + t_out_s);
  }
  // Pipelined: while the accelerator computes iteration i, the link drains
  // iteration i-1's output and fills iteration i+1's input. The critical
  // path is fill (t_in), n-1 steady-state periods, then the last
  // iteration's compute and drain; the steady-state period is bounded by
  // the slower of (compute) and (in+out transfer) — in the link-bound
  // regime the accelerator stalls on the wire, in the compute-bound
  // regime the wire idles, and the period is exactly
  // max(t_compute, t_in + t_out) either way.
  const double steady = std::max(t_compute_s, t_in_s + t_out_s);
  return t_retry_s + t_binary_s + t_in_s + (n - 1) * steady + t_compute_s +
         t_out_s;
}

OffloadSession::OffloadSession(const host::McuSpec& mcu, double mcu_freq_hz,
                               link::SpiLink link,
                               power::PulpPowerModel power_model)
    : mcu_(mcu),
      mcu_freq_hz_(mcu_freq_hz),
      link_(link),
      power_(power_model) {
  ULP_CHECK(mcu_freq_hz > 0, "MCU frequency must be positive");
}

void OffloadSession::attach_trace(const trace::Sinks& sinks,
                                  std::string track_name, bool trace_cluster) {
  sinks_ = sinks;
  trace_name_ = std::move(track_name);
  trace_cluster_ = trace_cluster;
  track_made_ = false;
  trace_cursor_s_ = 0;
}

void OffloadSession::attach_faults(link::FaultInjector* injector,
                                   RetryPolicy policy) {
  ULP_CHECK(policy.max_transfer_attempts >= 1 &&
                policy.max_offload_attempts >= 1,
            "retry budgets must allow at least one attempt");
  injector_ = injector;
  retry_policy_ = policy;
  // The robust protocol frames every transfer with a CRC-32 trailer; the
  // link pays for those bits on every transfer, faulted or not.
  link_ = link_.with_crc(injector != nullptr ? 32 : 0);
}

Status OffloadSession::ship_framed(link::Direction d,
                                   std::span<const u8> payload,
                                   const char* what, OffloadOutcome* out) {
  if (injector_ == nullptr || payload.empty()) return Status();
  OffloadRobustStats& rs = out->robust;
  for (u32 attempt = 1;; ++attempt) {
    const u64 naks_before = injector_->counters().naks;
    if (injector_->frame_intact(d, payload)) return Status();
    if (injector_->counters().naks > naks_before) {
      ++rs.naks;
    } else {
      ++rs.crc_errors;
    }
    if (attempt >= retry_policy_.max_transfer_attempts) {
      return Status::Error(
          StatusCode::kRetriesExhausted,
          std::string(what) + ": transfer retry budget exhausted after " +
              std::to_string(attempt) + " attempts");
    }
    // Retransmit after exponential backoff. The retransmission re-drives
    // the link (full frame cost in time and energy); the backoff is host
    // idle time.
    ++rs.retransmissions;
    const double backoff =
        retry_policy_.backoff_base_s * static_cast<double>(1u << (attempt - 1));
    out->timing.t_retry_s +=
        backoff + link_.transfer_seconds(payload.size(), mcu_freq_hz_);
    rs.retry_link_j += link_.transfer_energy_j(payload.size());
  }
}

void OffloadSession::trace_phases(const OffloadOutcome& outcome) {
  const OffloadTiming& t = outcome.timing;
  const OffloadRobustStats& rs = outcome.robust;
  if (sinks_.metrics != nullptr) {
    sinks_.metrics->counter("offload.runs").add();
    sinks_.metrics->histogram("offload.binary_bytes").record(t.binary_bytes);
    sinks_.metrics->histogram("offload.in_bytes").record(t.in_bytes);
    sinks_.metrics->histogram("offload.out_bytes").record(t.out_bytes);
    sinks_.metrics->histogram("offload.compute_cycles").record(t.accel_cycles);
    if (rs.crc_errors > 0) {
      sinks_.metrics->counter("offload.crc_errors").add(rs.crc_errors);
    }
    if (rs.naks > 0) sinks_.metrics->counter("offload.naks").add(rs.naks);
    if (rs.retransmissions > 0) {
      sinks_.metrics->counter("offload.retransmissions")
          .add(rs.retransmissions);
    }
    if (rs.watchdog_expiries > 0) {
      sinks_.metrics->counter("offload.watchdog_expiries")
          .add(rs.watchdog_expiries);
    }
    if (!outcome.status.ok()) {
      sinks_.metrics->counter("offload.failures").add();
    }
  }
  if (sinks_.events == nullptr) return;
  if (!track_made_) {
    track_ = sinks_.events->add_track(trace_name_, mcu_freq_hz_, 10);
    track_made_ = true;
  }
  // Spans are stamped in MCU cycles: duration == the phase's cycle total
  // at this session's MCU clock (rounded to the nearest cycle).
  auto cycles = [&](double seconds) {
    return static_cast<u64>(std::llround(seconds * mcu_freq_hz_));
  };
  double cur = trace_cursor_s_;
  auto phase = [&](const char* name, double seconds,
                   std::vector<trace::EventTrace::Arg> args) {
    sinks_.events->complete(track_, name, cycles(cur), cycles(seconds),
                            std::move(args));
    cur += seconds;
  };
  phase("binary_xfer", t.t_binary_s,
        {{"bytes", static_cast<double>(t.binary_bytes)}});
  phase("input_xfer", t.t_in_s, {{"bytes", static_cast<double>(t.in_bytes)}});
  phase("compute", t.t_compute_s,
        {{"accel_cycles", static_cast<double>(t.accel_cycles)}});
  phase("output_xfer", t.t_out_s,
        {{"bytes", static_cast<double>(t.out_bytes)}});
  // Aggregate retry/backoff/watchdog overhead as one span so retry storms
  // are visible on the Perfetto timeline next to the clean phases.
  if (t.t_retry_s > 0) {
    phase("link.retry", t.t_retry_s,
          {{"retransmissions", static_cast<double>(rs.retransmissions)},
           {"crc_errors", static_cast<double>(rs.crc_errors)},
           {"naks", static_cast<double>(rs.naks)},
           {"watchdog_expiries", static_cast<double>(rs.watchdog_expiries)}});
  }
  trace_cursor_s_ = cur;
}

OffloadOutcome OffloadSession::run(const OffloadRequest& request,
                                   const power::OperatingPoint& op,
                                   u32 num_cores) {
  ULP_CHECK(op.freq_hz > 0, "accelerator operating point unset");
  ULP_CHECK(request.program != nullptr, "offload request without a program");

  cluster::ClusterParams params;
  params.num_cores = num_cores;
  params.core_config = core::or10n_config();
  if (reference_stepping_.has_value()) {
    params.reference_stepping = reference_stepping_;
  }
  soc::PulpSoc soc(params);
  if (sinks_ && trace_cluster_) {
    soc.cluster().attach_trace(sinks_, op.freq_hz, trace_name_ + ".accel");
  }
  if (profiler_ != nullptr) profiler_->attach(soc.cluster());
  // The SoC is scoped to this run; fold whatever it executed (possibly
  // nothing, on pre-boot protocol failures) into the profiler on the way
  // out and release the dangling attachment.
  struct ProfileCapture {
    profile::ClusterProfiler* p;
    ~ProfileCapture() {
      if (p != nullptr) {
        p->capture();
        p->detach();
      }
    }
  } profile_capture{profiler_};

  OffloadOutcome out;
  const std::vector<u8> image = isa::serialize(*request.program);
  const size_t shipped = image.size() + kRuntimeImageBytes;
  out.timing.t_binary_s = link_.transfer_seconds(shipped, mcu_freq_hz_);
  out.timing.t_in_s =
      link_.transfer_seconds(request.input.size(), mcu_freq_hz_);
  out.timing.t_out_s =
      link_.transfer_seconds(request.output_bytes, mcu_freq_hz_);
  out.timing.binary_bytes = shipped;
  out.timing.in_bytes = request.input.size();
  out.timing.out_bytes = request.output_bytes;
  out.output.resize(request.output_bytes);

  // Robust-protocol simulation, phase by phase in wire order. Each
  // ship_framed draws the frame/beat fault decisions the cycle-stepped
  // wire would draw and retries within the policy budgets; the cluster
  // itself is simulated once on clean bytes — valid because the protocol
  // only proceeds once a frame verified, i.e. arrived intact.
  auto fail = [&](Status why) {
    out.status = std::move(why);
    std::fill(out.output.begin(), out.output.end(), u8{0});
    if (sinks_) trace_phases(out);
    return out;
  };

  // 1. Code offload: the shipped image is kernel bytes + the accelerator
  // runtime; the protocol frames exactly those bytes.
  if (injector_ != nullptr) {
    std::vector<u8> shipped_bytes(image);
    shipped_bytes.resize(shipped, 0);
    Status s = ship_framed(link::Direction::kTx, shipped_bytes,
                           "binary offload", &out);
    if (!s.ok()) return fail(std::move(s));
    // 2. map(to:) payload.
    s = ship_framed(link::Direction::kTx, request.input, "map(to:) payload",
                    &out);
    if (!s.ok()) return fail(std::move(s));
    // 3. Fetch-enable, then the EOC wait. A stuck EOC line burns one
    // watchdog window; the offload is re-attempted (the image and inputs
    // are already resident in L2, so a retry is just a new fetch-enable
    // edge) until the budget runs out.
    bool eoc_seen = false;
    for (u32 a = 1; a <= retry_policy_.max_offload_attempts; ++a) {
      out.robust.offload_attempts = a;
      injector_->begin_eoc_wait();
      if (!injector_->eoc_wait_stuck()) {
        eoc_seen = true;
        break;
      }
      ++out.robust.watchdog_expiries;
      out.timing.t_retry_s += retry_policy_.eoc_watchdog_s;
    }
    if (!eoc_seen) {
      return fail(Status::Error(
          StatusCode::kTimeout,
          "EOC watchdog expired on every offload attempt (" +
              std::to_string(retry_policy_.max_offload_attempts) + ")"));
    }
  }

  // The accelerator-side execution, cycle-accurate, on clean bytes. The
  // boot ROM consumes the image from L2; warm-started sessions restore
  // the memoised post-boot snapshot instead.
  if (warm_start_) {
    warm_boot(soc, image, num_cores);
  } else {
    soc.boot_image(image);
  }
  soc.qspi_write(request.input_addr, request.input);
  const u64 cycles = soc.run_to_eoc();
  soc.qspi_read(request.output_addr, out.output);

  out.stats = soc.cluster().stats();
  out.activity = power::ActivityFactors::from_stats(out.stats);
  out.timing.accel_cycles = cycles;
  out.timing.t_compute_s = static_cast<double>(cycles) / op.freq_hz;

  // 4. map(from:) readback, CRC-checked host-side.
  if (injector_ != nullptr) {
    Status s = ship_framed(link::Direction::kRx, out.output,
                           "map(from:) readback", &out);
    if (!s.ok()) return fail(std::move(s));
  }
  if (sinks_) trace_phases(out);
  return out;
}

OffloadOutcome run_with_host_fallback(OffloadSession& session,
                                      const OffloadRequest& request,
                                      const power::OperatingPoint& op,
                                      u32 num_cores) {
  OffloadOutcome out = session.run(request, op, num_cores);
  if (!out.status.ok() && !request.host_reference.empty()) {
    out.output.assign(request.host_reference.begin(),
                      request.host_reference.end());
    out.used_host_fallback = true;
  }
  return out;
}

EnergyBreakdown OffloadSession::energy(const OffloadOutcome& o,
                                       const power::OperatingPoint& op,
                                       u32 iterations,
                                       bool double_buffered) const {
  const double n = iterations;
  // Retry overhead (retransmissions, backoff, watchdog polling) keeps the
  // MCU active: it is the SPI master re-driving frames or spinning on the
  // watchdog. Charged once per offload, like the binary.
  const double t_xfer = o.timing.t_binary_s + o.timing.t_retry_s +
                        n * (o.timing.t_in_s + o.timing.t_out_s);
  const double t_compute = n * o.timing.t_compute_s;
  const double total = o.timing.total_s(iterations, double_buffered);

  EnergyBreakdown e;
  // MCU: active while driving the link (it is the SPI master and its DMA
  // runs from the core clock domain), asleep otherwise.
  e.mcu_j = t_xfer * mcu_.active_power_w(mcu_freq_hz_) +
            std::max(0.0, total - t_xfer) * mcu_.sleep_w;
  // PULP: measured-activity power while computing, idle power otherwise.
  e.pulp_j = n * power_.energy_j(o.activity, op, o.timing.accel_cycles) +
             std::max(0.0, total - t_compute) * power_.idle_w(op.vdd);
  // Link: energy per bit (clean frames plus retransmitted ones) and the
  // idle floor.
  e.link_j = link_.transfer_energy_j(o.timing.binary_bytes) +
             o.robust.retry_link_j +
             n * (link_.transfer_energy_j(o.timing.in_bytes) +
                  link_.transfer_energy_j(o.timing.out_bytes)) +
             total * link_.idle_power_w();
  return e;
}

double OffloadSession::steady_power_w(const OffloadOutcome& o,
                                      const power::OperatingPoint& op,
                                      bool double_buffered) const {
  // Average over a long run (binary cost amortised away).
  const double t_xfer = o.timing.t_in_s + o.timing.t_out_s;
  const double t_compute = o.timing.t_compute_s;
  const double period = double_buffered ? std::max(t_compute, t_xfer)
                                        : t_compute + t_xfer;
  if (period <= 0) return 0;
  const double mcu_j = t_xfer * mcu_.active_power_w(mcu_freq_hz_) +
                       std::max(0.0, period - t_xfer) * mcu_.sleep_w;
  const double pulp_j =
      power_.energy_j(o.activity, op, o.timing.accel_cycles) +
      std::max(0.0, period - t_compute) * power_.idle_w(op.vdd);
  const double link_j =
      link_.transfer_energy_j(o.timing.in_bytes) +
      link_.transfer_energy_j(o.timing.out_bytes) +
      period * link_.idle_power_w();
  return (mcu_j + pulp_j + link_j) / period;
}

}  // namespace ulp::runtime
