// Host-side offload runtime: the "#pragma omp target" execution engine.
//
// An OffloadSession binds a host MCU (at a chosen clock), the SPI/QSPI
// coupling link, the PULP power model, and a fresh simulated SoC. run()
// performs the complete offload the paper describes:
//
//   1. serialise the kernel program and ship it over the link into L2
//      (the *binary offload* — its cost is what Figure 5b amortises),
//   2. ship the map(to:) input payload into the L2 staging area,
//   3. raise fetch-enable; the cluster boots, stages data to TCDM by DMA,
//      runs the SPMD kernel, stages results back and raises EOC,
//   4. read the output back over the link.
//
// The cluster is simulated cycle-accurately once; timings for `iterations`
// repetitions (Figure 5b's x-axis) compose analytically, either sequential
// or double-buffered (transfers of iteration i+1 overlapped with compute of
// iteration i — the paper's rightmost plot).
#pragma once

#include <span>

#include "host/mcu.hpp"
#include "link/spi_link.hpp"
#include "power/pulp_power.hpp"
#include "soc/pulp_soc.hpp"
#include "trace/event_trace.hpp"

namespace ulp::runtime {

/// What the host wants to offload: a program plus its map(to:)/map(from:)
/// payload description. kernels::KernelCase carries exactly these fields;
/// the indirection keeps the runtime library independent of the benchmark
/// suite.
struct OffloadRequest {
  const isa::Program* program = nullptr;
  std::span<const u8> input;
  Addr input_addr = 0;
  size_t output_bytes = 0;
  Addr output_addr = 0;
};

struct OffloadTiming {
  double t_binary_s = 0;   ///< Program image over the link.
  double t_in_s = 0;       ///< Input payload per iteration.
  double t_out_s = 0;      ///< Output payload per iteration.
  double t_compute_s = 0;  ///< Cluster compute per iteration.
  u64 accel_cycles = 0;
  size_t binary_bytes = 0;
  size_t in_bytes = 0;
  size_t out_bytes = 0;

  /// End-to-end time for n iterations of the kernel per one code offload.
  [[nodiscard]] double total_s(u32 iterations, bool double_buffered) const;

  /// Efficiency w.r.t. ideal speedup (Figure 5b's y-axis): pure compute
  /// time over end-to-end time.
  [[nodiscard]] double efficiency(u32 iterations, bool double_buffered) const {
    const double total = total_s(iterations, double_buffered);
    return total <= 0 ? 0.0 : iterations * t_compute_s / total;
  }
};

struct EnergyBreakdown {
  double mcu_j = 0;
  double pulp_j = 0;
  double link_j = 0;
  [[nodiscard]] double total_j() const { return mcu_j + pulp_j + link_j; }
};

struct OffloadOutcome {
  std::vector<u8> output;          ///< Bytes read back from L2.
  OffloadTiming timing;
  power::ActivityFactors activity; ///< Measured chi factors of the run.
  cluster::ClusterStats stats;
};

class OffloadSession {
 public:
  /// Bytes of accelerator-side support code (boot stub, the streamlined
  /// OpenMP runtime, compiler intrinsics) shipped along with every kernel
  /// binary. The paper's binaries (Table I: 6.7-48 kB) carry this linked
  /// in; our serialised images carry only kernel code + data, so the
  /// runtime image is accounted separately in the code-offload cost.
  static constexpr size_t kRuntimeImageBytes = 8 * 1024;

  OffloadSession(const host::McuSpec& mcu, double mcu_freq_hz,
                 link::SpiLink link,
                 power::PulpPowerModel power_model = {});

  /// Full offload of a cluster-target program at operating point `op`.
  /// `num_cores` must match the value the program was generated for.
  [[nodiscard]] OffloadOutcome run(const OffloadRequest& request,
                                   const power::OperatingPoint& op,
                                   u32 num_cores = 4);

  /// Record each run()'s offload phases — binary_xfer, input_xfer,
  /// compute, output_xfer — as spans on a track named `track_name`
  /// (MCU-cycle timestamps: span durations are exactly the cycle totals
  /// OffloadTiming reports at this MCU clock). Successive runs append
  /// end-to-end. With `trace_cluster`, the cycle-accurate cluster
  /// simulation inside each run additionally records its own
  /// "<track_name>.accel.*" tracks at the accelerator clock.
  void attach_trace(const trace::Sinks& sinks,
                    std::string track_name = "offload",
                    bool trace_cluster = false);

  /// Energy for `iterations` kernel executions per code offload, using the
  /// measured timing/activity of `outcome`.
  [[nodiscard]] EnergyBreakdown energy(const OffloadOutcome& outcome,
                                       const power::OperatingPoint& op,
                                       u32 iterations,
                                       bool double_buffered) const;

  /// Total average power of the heterogeneous system while continuously
  /// iterating (MCU + PULP + link) — the quantity bounded by the paper's
  /// 10 mW envelope.
  [[nodiscard]] double steady_power_w(const OffloadOutcome& outcome,
                                      const power::OperatingPoint& op,
                                      bool double_buffered) const;

  [[nodiscard]] const host::McuSpec& mcu() const { return mcu_; }
  [[nodiscard]] double mcu_freq_hz() const { return mcu_freq_hz_; }
  [[nodiscard]] const link::SpiLink& link() const { return link_; }
  [[nodiscard]] const power::PulpPowerModel& power_model() const {
    return power_;
  }

 private:
  void trace_phases(const OffloadOutcome& outcome);

  host::McuSpec mcu_;
  double mcu_freq_hz_;
  link::SpiLink link_;
  power::PulpPowerModel power_;

  trace::Sinks sinks_;
  std::string trace_name_;
  bool trace_cluster_ = false;
  bool track_made_ = false;
  trace::EventTrace::TrackId track_ = 0;
  double trace_cursor_s_ = 0;  ///< Where the next run's spans start.
};

}  // namespace ulp::runtime
