// Host-side offload runtime: the "#pragma omp target" execution engine.
//
// An OffloadSession binds a host MCU (at a chosen clock), the SPI/QSPI
// coupling link, the PULP power model, and a fresh simulated SoC. run()
// performs the complete offload the paper describes:
//
//   1. serialise the kernel program and ship it over the link into L2
//      (the *binary offload* — its cost is what Figure 5b amortises),
//   2. ship the map(to:) input payload into the L2 staging area,
//   3. raise fetch-enable; the cluster boots, stages data to TCDM by DMA,
//      runs the SPMD kernel, stages results back and raises EOC,
//   4. read the output back over the link.
//
// The cluster is simulated cycle-accurately once; timings for `iterations`
// repetitions (Figure 5b's x-axis) compose analytically, either sequential
// or double-buffered (transfers of iteration i+1 overlapped with compute of
// iteration i — the paper's rightmost plot).
#pragma once

#include <optional>
#include <span>

#include "host/mcu.hpp"
#include "link/fault_injector.hpp"
#include "link/spi_link.hpp"
#include "power/pulp_power.hpp"
#include "profile/profile.hpp"
#include "soc/pulp_soc.hpp"
#include "trace/event_trace.hpp"

namespace ulp::runtime {

/// What the host wants to offload: a program plus its map(to:)/map(from:)
/// payload description. kernels::KernelCase carries exactly these fields;
/// the indirection keeps the runtime library independent of the benchmark
/// suite.
struct OffloadRequest {
  const isa::Program* program = nullptr;
  std::span<const u8> input;
  Addr input_addr = 0;
  size_t output_bytes = 0;
  Addr output_addr = 0;
  /// Golden output of the kernel's host-reference implementation.
  /// run_with_host_fallback() returns these bytes when the offload fails
  /// permanently; empty = no fallback available.
  std::span<const u8> host_reference;
};

/// Bounded-retry knobs of the robust offload protocol (active only after
/// attach_faults()).
struct RetryPolicy {
  /// Attempts per CRC-framed transfer (first try included).
  u32 max_transfer_attempts = 4;
  /// Whole-offload attempts: each EOC watchdog expiry re-raises
  /// fetch-enable and re-runs the kernel (image and inputs are already
  /// resident in L2, so a retry costs only the burned watchdog window).
  u32 max_offload_attempts = 3;
  /// Wall-clock the host burns before declaring an EOC wait hung.
  double eoc_watchdog_s = 1e-3;
  /// Backoff before retransmission k (1-based): backoff_base_s * 2^(k-1).
  double backoff_base_s = 100e-6;
};

/// Per-run robustness accounting (all zero on a clean run).
struct OffloadRobustStats {
  u64 crc_errors = 0;        ///< Frames rejected by the CRC check.
  u64 naks = 0;              ///< Frames rejected by a transient NAK.
  u64 retransmissions = 0;   ///< Extra transfer attempts performed.
  u64 watchdog_expiries = 0; ///< EOC waits the watchdog declared hung.
  u32 offload_attempts = 1;  ///< Fetch-enable cycles issued.
  double retry_link_j = 0;   ///< Extra link energy spent on retries.
};

struct OffloadTiming {
  double t_binary_s = 0;   ///< Program image over the link.
  double t_in_s = 0;       ///< Input payload per iteration.
  double t_out_s = 0;      ///< Output payload per iteration.
  double t_compute_s = 0;  ///< Cluster compute per iteration.
  /// One-off robustness overhead: retransmissions, backoff windows and
  /// burned watchdog waits. Charged once per offload (like t_binary_s).
  double t_retry_s = 0;
  u64 accel_cycles = 0;
  size_t binary_bytes = 0;
  size_t in_bytes = 0;
  size_t out_bytes = 0;

  /// End-to-end time for n iterations of the kernel per one code offload.
  [[nodiscard]] double total_s(u32 iterations, bool double_buffered) const;

  /// Efficiency w.r.t. ideal speedup (Figure 5b's y-axis): pure compute
  /// time over end-to-end time.
  [[nodiscard]] double efficiency(u32 iterations, bool double_buffered) const {
    const double total = total_s(iterations, double_buffered);
    return total <= 0 ? 0.0 : iterations * t_compute_s / total;
  }
};

struct EnergyBreakdown {
  double mcu_j = 0;
  double pulp_j = 0;
  double link_j = 0;
  [[nodiscard]] double total_j() const { return mcu_j + pulp_j + link_j; }
};

struct OffloadOutcome {
  std::vector<u8> output;          ///< Bytes read back from L2 (zeroed on
                                   ///< a failed offload).
  OffloadTiming timing;
  power::ActivityFactors activity; ///< Measured chi factors of the run.
  cluster::ClusterStats stats;
  /// Typed verdict of the offload protocol. ok() on clean runs and on
  /// runs whose faults were all recovered by retry; kRetriesExhausted /
  /// kTimeout when the bounded budgets ran out.
  Status status;
  /// Set by run_with_host_fallback() when `output` came from the
  /// request's host-reference bytes instead of the accelerator.
  bool used_host_fallback = false;
  OffloadRobustStats robust;
};

class OffloadSession {
 public:
  /// Bytes of accelerator-side support code (boot stub, the streamlined
  /// OpenMP runtime, compiler intrinsics) shipped along with every kernel
  /// binary. The paper's binaries (Table I: 6.7-48 kB) carry this linked
  /// in; our serialised images carry only kernel code + data, so the
  /// runtime image is accounted separately in the code-offload cost.
  static constexpr size_t kRuntimeImageBytes = 8 * 1024;

  OffloadSession(const host::McuSpec& mcu, double mcu_freq_hz,
                 link::SpiLink link,
                 power::PulpPowerModel power_model = {});

  /// Full offload of a cluster-target program at operating point `op`.
  /// `num_cores` must match the value the program was generated for.
  [[nodiscard]] OffloadOutcome run(const OffloadRequest& request,
                                   const power::OperatingPoint& op,
                                   u32 num_cores = 4);

  /// Record each run()'s offload phases — binary_xfer, input_xfer,
  /// compute, output_xfer — as spans on a track named `track_name`
  /// (MCU-cycle timestamps: span durations are exactly the cycle totals
  /// OffloadTiming reports at this MCU clock). Successive runs append
  /// end-to-end. With `trace_cluster`, the cycle-accurate cluster
  /// simulation inside each run additionally records its own
  /// "<track_name>.accel.*" tracks at the accelerator clock.
  void attach_trace(const trace::Sinks& sinks,
                    std::string track_name = "offload",
                    bool trace_cluster = false);

  /// Attach a cycle/energy attribution profiler (not owned; nullptr
  /// detaches). Each run()'s cluster simulation is profiled and captured
  /// into the profiler's accumulating DomainProfile — per-pc hotspots,
  /// call tree and stall buckets, identical across stepping modes.
  void attach_profile(profile::ClusterProfiler* profiler) {
    profiler_ = profiler;
  }

  /// Enable the robust offload protocol: every framed transfer carries a
  /// CRC-32 trailer (the link's per-transfer cost grows by 32 bits —
  /// satellite of Figure 5b's framing overhead), transfer attempts draw
  /// their fault outcomes from `injector` (not owned; nullptr disables),
  /// and failures are retried within `policy`'s budgets. Retry time and
  /// energy flow into OffloadTiming::t_retry_s / robust.retry_link_j and
  /// the attached trace ("link.retry" spans, offload.* counters).
  void attach_faults(link::FaultInjector* injector, RetryPolicy policy = {});

  /// Force the cycle-accurate cluster inside run() into reference (true)
  /// or fast-forward (false) stepping; nullopt = the process default
  /// (config::reference_stepping_default, the one-shot capture of
  /// ULP_REFERENCE_STEPPING). The robustness tests diff the two modes
  /// bit-for-bit.
  void set_reference_stepping(std::optional<bool> mode) {
    reference_stepping_ = mode;
  }

  /// Warm-start the accelerator boot: the post-boot SoC state (program
  /// decoded, images resident, cores at the entry point — zero cycles
  /// executed) is snapshotted once per (image, geometry) into a
  /// process-wide cache, and subsequent runs restore it instead of
  /// re-running the boot ROM's deserialise-and-load path. Bit-identical
  /// to a cold boot by construction (asserted by tests/batch), across
  /// stepping modes and worker counts.
  void set_warm_start(bool on) { warm_start_ = on; }

  /// Energy for `iterations` kernel executions per code offload, using the
  /// measured timing/activity of `outcome`.
  [[nodiscard]] EnergyBreakdown energy(const OffloadOutcome& outcome,
                                       const power::OperatingPoint& op,
                                       u32 iterations,
                                       bool double_buffered) const;

  /// Total average power of the heterogeneous system while continuously
  /// iterating (MCU + PULP + link) — the quantity bounded by the paper's
  /// 10 mW envelope.
  [[nodiscard]] double steady_power_w(const OffloadOutcome& outcome,
                                      const power::OperatingPoint& op,
                                      bool double_buffered) const;

  [[nodiscard]] const host::McuSpec& mcu() const { return mcu_; }
  [[nodiscard]] double mcu_freq_hz() const { return mcu_freq_hz_; }
  [[nodiscard]] const link::SpiLink& link() const { return link_; }
  [[nodiscard]] const power::PulpPowerModel& power_model() const {
    return power_;
  }

 private:
  void trace_phases(const OffloadOutcome& outcome);
  /// Simulate the bounded-retry shipping of one framed payload; extra
  /// attempts accumulate into `out`'s retry time/energy and counters.
  Status ship_framed(link::Direction d, std::span<const u8> payload,
                     const char* what, OffloadOutcome* out);

  host::McuSpec mcu_;
  double mcu_freq_hz_;
  link::SpiLink link_;
  power::PulpPowerModel power_;
  link::FaultInjector* injector_ = nullptr;
  RetryPolicy retry_policy_;
  std::optional<bool> reference_stepping_;
  bool warm_start_ = false;
  profile::ClusterProfiler* profiler_ = nullptr;

  trace::Sinks sinks_;
  std::string trace_name_;
  bool trace_cluster_ = false;
  bool track_made_ = false;
  trace::EventTrace::TrackId track_ = 0;
  double trace_cursor_s_ = 0;  ///< Where the next run's spans start.
};

/// Graceful degradation: run the offload; if it fails permanently and the
/// request carries host-reference output, return those bytes (flagged
/// used_host_fallback) so the application still observes correct results
/// — at host-execution quality instead of accelerated.
[[nodiscard]] OffloadOutcome run_with_host_fallback(
    OffloadSession& session, const OffloadRequest& request,
    const power::OperatingPoint& op, u32 num_cores = 4);

}  // namespace ulp::runtime
