// The accelerator-side half of the streamlined OpenMP runtime.
//
// The paper exposes offload through "#pragma omp target" + "map" clauses and
// parallelism through OpenMP worksharing, backed by "a lightweight runtime
// with reduced execution overhead and memory footprint" (Section I). In this
// reproduction that runtime is realised by *code generation*: outline_target
// wraps a kernel's compute emitter into the SPMD program every core of the
// cluster executes:
//
//   prologue:  r1 = core id, r2 = num cores          (worksharing setup)
//   core 0:    DMA  L2 input staging -> TCDM          (map(to:...))
//   barrier                                           (HW synchronizer)
//   compute    chunked by core id                     (omp parallel for)
//   barrier
//   core 0:    DMA  TCDM -> L2 output staging, EOC    (map(from:...))
//   others:    halt
//
// The per-core chunk computation emitted by emit_static_bounds *is* the
// measurable runtime overhead (the paper reports ~6% on average), together
// with the two barriers.
#pragma once

#include <functional>
#include <vector>

#include "codegen/builder.hpp"
#include "common/memmap.hpp"

namespace ulp::runtime {

/// Registers the outliner reserves; kernel compute emitters may read them
/// and must not clobber them.
struct OutlineRegs {
  u8 core_id = 1;    ///< r1: this core's id.
  u8 num_cores = 2;  ///< r2: cluster core count.
};

/// One map(to:) / map(from:) clause materialised as a DMA staging transfer,
/// always expressed source -> destination (map(to:) flows L2 -> TCDM,
/// map(from:) flows TCDM -> L2).
struct Transfer {
  Addr src = 0;
  Addr dst = 0;
  u32 bytes = 0;
};

/// Emits "lo/hi" bounds of a static OpenMP schedule over [0, total) split
/// across `num_cores` cores: chunk = ceil(total/num_cores),
/// lo = id*chunk, hi = min(lo+chunk, total). Clobbers `scratch`.
/// `total` and `num_cores` are build-time constants (kernel sizes are static),
/// the core id is runtime state — exactly like an outlined static schedule.
void emit_static_bounds(codegen::Builder& bld, u8 r_lo, u8 r_hi, u8 r_id,
                        u32 total, u32 num_cores, u8 scratch);

/// Wraps `compute` into the full SPMD target-region program described above.
/// `compute` is invoked once to emit the parallel section; it runs on every
/// core with OutlineRegs live.
[[nodiscard]] isa::Program outline_target(
    const core::CoreFeatures& features,
    const std::vector<Transfer>& map_to,
    const std::vector<Transfer>& map_from,
    const std::function<void(codegen::Builder&, const OutlineRegs&)>& compute);

/// Single-core flat-memory variant used for the MCU-side baselines and the
/// "architectural speedup" study: no DMA staging, no barriers — data already
/// sits at its TCDM/flat addresses, the kernel body runs as-is and halts.
[[nodiscard]] isa::Program outline_flat(
    const core::CoreFeatures& features,
    const std::function<void(codegen::Builder&, const OutlineRegs&)>& compute);

}  // namespace ulp::runtime
