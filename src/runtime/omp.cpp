#include "runtime/omp.hpp"

#include "common/memmap.hpp"
#include "common/status.hpp"

namespace ulp::omp {

using codegen::Builder;
using isa::Opcode;

TargetRegion::TargetRegion(core::CoreFeatures features, u32 num_cores)
    : features_(features),
      num_cores_(num_cores),
      device_brk_(memmap::kTcdmBase),
      l2_in_brk_(memmap::kL2Input),
      l2_out_brk_(memmap::kL2Output) {
  ULP_CHECK(num_cores >= 1, "need at least one core");
}

Addr TargetRegion::device_alloc(size_t bytes) {
  const Addr addr = device_brk_;
  device_brk_ += static_cast<Addr>((bytes + 3) & ~size_t{3});
  ULP_CHECK(device_brk_ <= memmap::kTcdmBase + 64 * 1024,
            "target region exceeds TCDM capacity");
  return addr;
}

Addr TargetRegion::map_to(std::span<const u8> host_data) {
  ULP_CHECK(!compiled_, "region already compiled");
  const Addr dev = device_alloc(host_data.size());
  map_to_.push_back({l2_in_brk_, dev, static_cast<u32>(host_data.size())});
  input_.insert(input_.end(), host_data.begin(), host_data.end());
  // Keep the packed input contiguous in L2 (word-padded per clause).
  const u32 padded = static_cast<u32>((host_data.size() + 3) & ~size_t{3});
  input_.resize(input_.size() + (padded - host_data.size()), 0);
  l2_in_brk_ += padded;
  return dev;
}

Addr TargetRegion::map_from(size_t bytes) {
  ULP_CHECK(!compiled_, "region already compiled");
  const Addr dev = device_alloc(bytes);
  map_from_.push_back({dev, l2_out_brk_, static_cast<u32>(bytes)});
  l2_out_brk_ += static_cast<Addr>((bytes + 3) & ~size_t{3});
  return dev;
}

Addr TargetRegion::map_alloc(size_t bytes) {
  ULP_CHECK(!compiled_, "region already compiled");
  return device_alloc(bytes);
}

void TargetRegion::parallel(
    std::function<void(Builder&, const runtime::OutlineRegs&)> section) {
  ULP_CHECK(!compiled_, "region already compiled");
  sections_.push_back({std::move(section)});
}

void TargetRegion::parallel_for(
    u32 total,
    std::function<void(Builder&, const ForContext&)> body) {
  const u32 num_cores = num_cores_;
  parallel([total, num_cores, body = std::move(body)](
               Builder& bld, const runtime::OutlineRegs& regs) {
    // Static schedule: this core covers [r3, r4).
    runtime::emit_static_bounds(bld, 3, 4, regs.core_id, total, num_cores,
                                /*scratch=*/20);
    const auto done = bld.make_label();
    bld.branch(Opcode::kBge, 3, 4, done);
    const ForContext ctx{.r_index = 3,
                         .r_tmp0 = 5,
                         .r_tmp1 = 6,
                         .r_tmp2 = 7,
                         .r_tmp3 = 8};
    const auto top = bld.make_label();
    bld.bind(top);
    body(bld, ctx);
    bld.emit(Opcode::kAddi, ctx.r_index, ctx.r_index, 0, 1);
    bld.branch(Opcode::kBlt, ctx.r_index, 4, top);
    bld.bind(done);
  });
}

Offloadable TargetRegion::compile() {
  ULP_CHECK(!compiled_, "region already compiled");
  compiled_ = true;
  auto sections = std::move(sections_);
  const u32 num_cores = num_cores_;
  Offloadable off;
  off.program = runtime::outline_target(
      features_, map_to_, map_from_,
      [&sections](Builder& bld, const runtime::OutlineRegs& regs) {
        for (size_t i = 0; i < sections.size(); ++i) {
          if (i > 0) bld.barrier();  // implicit barrier between sections
          sections[i].emit(bld, regs);
        }
      });
  (void)num_cores;
  off.input = std::move(input_);
  off.input_addr = memmap::kL2Input;
  off.output_addr = memmap::kL2Output;
  off.output_bytes = l2_out_brk_ - memmap::kL2Output;
  return off;
}

}  // namespace ulp::omp
