#include "runtime/outliner.hpp"

#include "common/status.hpp"

namespace ulp::runtime {

using codegen::Builder;
using isa::Opcode;

void emit_static_bounds(Builder& bld, u8 r_lo, u8 r_hi, u8 r_id, u32 total,
                        u32 num_cores, u8 scratch) {
  ULP_CHECK(num_cores > 0, "num_cores must be positive");
  const u32 chunk = (total + num_cores - 1) / num_cores;
  // lo = id * chunk.
  bld.li(scratch, chunk);
  bld.emit(Opcode::kMul, r_lo, r_id, scratch);
  // hi = min(lo + chunk, total).
  bld.emit(Opcode::kAdd, r_hi, r_lo, scratch);
  bld.li(scratch, total);
  const auto no_clamp = bld.make_label();
  bld.branch(Opcode::kBge, scratch, r_hi, no_clamp);
  bld.mv(r_hi, scratch);
  bld.bind(no_clamp);
}

isa::Program outline_target(
    const core::CoreFeatures& features, const std::vector<Transfer>& map_to,
    const std::vector<Transfer>& map_from,
    const std::function<void(Builder&, const OutlineRegs&)>& compute) {
  Builder bld(features);
  const OutlineRegs regs;

  // Worksharing prologue.
  bld.csr_coreid(regs.core_id);
  bld.csr_numcores(regs.num_cores);

  // map(to:): core 0 stages inputs L2 -> TCDM through the cluster DMA.
  const auto after_in = bld.make_label();
  bld.branch(Opcode::kBne, regs.core_id, codegen::zero, after_in);
  for (const Transfer& t : map_to) {
    bld.li(28, t.src);
    bld.li(29, t.dst);
    bld.li(30, t.bytes);
    bld.dma_start(/*base=*/31, 28, 29, 30);
  }
  if (!map_to.empty()) bld.dma_wait(/*base=*/31, /*tmp=*/30);
  bld.bind(after_in);
  bld.barrier();

  // Parallel section.
  compute(bld, regs);

  bld.barrier();

  // map(from:): core 0 stages results back and raises EOC; others halt.
  const auto not_zero = bld.make_label();
  bld.branch(Opcode::kBne, regs.core_id, codegen::zero, not_zero);
  for (const Transfer& t : map_from) {
    bld.li(28, t.src);
    bld.li(29, t.dst);
    bld.li(30, t.bytes);
    bld.dma_start(/*base=*/31, 28, 29, 30);
  }
  if (!map_from.empty()) bld.dma_wait(/*base=*/31, /*tmp=*/30);
  bld.eoc();
  bld.bind(not_zero);
  bld.halt();
  return bld.finalize();
}

isa::Program outline_flat(
    const core::CoreFeatures& features,
    const std::function<void(Builder&, const OutlineRegs&)>& compute) {
  Builder bld(features);
  const OutlineRegs regs;
  // Single core: id = 0, num_cores = 1, no staging, no synchronization.
  bld.li(regs.core_id, 0);
  bld.li(regs.num_cores, 1);
  compute(bld, regs);
  bld.halt();
  return bld.finalize();
}

}  // namespace ulp::runtime
