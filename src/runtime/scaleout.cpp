#include "runtime/scaleout.hpp"

#include <algorithm>

namespace ulp::runtime {

OffloadTiming compose_scaleout_timing(
    std::span<const OffloadOutcome> outcomes) {
  ULP_CHECK(!outcomes.empty(), "scale-out composition needs >= 1 cluster");
  OffloadTiming t;
  for (const OffloadOutcome& o : outcomes) {
    t.t_binary_s += o.timing.t_binary_s;
    t.t_in_s += o.timing.t_in_s;
    t.t_out_s += o.timing.t_out_s;
    t.t_retry_s += o.timing.t_retry_s;
    t.binary_bytes += o.timing.binary_bytes;
    t.in_bytes += o.timing.in_bytes;
    t.out_bytes += o.timing.out_bytes;
    // Concurrent clock domains: the node computes as long as its slowest
    // cluster. accel_cycles mirrors that critical path.
    if (o.timing.t_compute_s > t.t_compute_s) {
      t.t_compute_s = o.timing.t_compute_s;
      t.accel_cycles = o.timing.accel_cycles;
    }
  }
  return t;
}

EnergyBreakdown scaleout_energy(const OffloadSession& session,
                                std::span<const OffloadOutcome> outcomes,
                                const power::OperatingPoint& op,
                                u32 iterations, bool double_buffered) {
  const OffloadTiming composed = compose_scaleout_timing(outcomes);
  const double n = iterations;
  const double total = composed.total_s(iterations, double_buffered);
  // Aggregated wire occupancy: the MCU is the SPI master for every
  // cluster's transfers (retry overhead included, charged once like the
  // binaries).
  const double t_xfer = composed.t_binary_s + composed.t_retry_s +
                        n * (composed.t_in_s + composed.t_out_s);

  EnergyBreakdown e;
  e.mcu_j = t_xfer * session.mcu().active_power_w(session.mcu_freq_hz()) +
            std::max(0.0, total - t_xfer) * session.mcu().sleep_w;
  // One shared link: per-byte energy for every cluster's payloads (and
  // retransmissions), one idle floor over the composed schedule.
  e.link_j = total * session.link().idle_power_w();
  for (const OffloadOutcome& o : outcomes) {
    e.pulp_j +=
        n * session.power_model().energy_j(o.activity, op,
                                           o.timing.accel_cycles) +
        std::max(0.0, total - n * o.timing.t_compute_s) *
            session.power_model().idle_w(op.vdd);
    e.link_j += session.link().transfer_energy_j(o.timing.binary_bytes) +
                o.robust.retry_link_j +
                n * (session.link().transfer_energy_j(o.timing.in_bytes) +
                     session.link().transfer_energy_j(o.timing.out_bytes));
  }
  return e;
}

double scaleout_steady_power_w(const OffloadSession& session,
                               std::span<const OffloadOutcome> outcomes,
                               const power::OperatingPoint& op,
                               bool double_buffered) {
  const OffloadTiming composed = compose_scaleout_timing(outcomes);
  const double t_xfer = composed.t_in_s + composed.t_out_s;
  const double period = double_buffered
                            ? std::max(composed.t_compute_s, t_xfer)
                            : composed.t_compute_s + t_xfer;
  if (period <= 0) return 0;
  double joules =
      t_xfer * session.mcu().active_power_w(session.mcu_freq_hz()) +
      std::max(0.0, period - t_xfer) * session.mcu().sleep_w +
      period * session.link().idle_power_w();
  for (const OffloadOutcome& o : outcomes) {
    joules += session.power_model().energy_j(o.activity, op,
                                             o.timing.accel_cycles) +
              std::max(0.0, period - o.timing.t_compute_s) *
                  session.power_model().idle_w(op.vdd) +
              session.link().transfer_energy_j(o.timing.in_bytes) +
              session.link().transfer_energy_j(o.timing.out_bytes);
  }
  return joules / period;
}

}  // namespace ulp::runtime
