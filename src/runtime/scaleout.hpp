// Analytic scale-out composition: N accelerator clusters behind ONE shared
// host link. Each cluster's kernel run is simulated cycle-accurately once
// (one OffloadOutcome per cluster, from a plain OffloadSession); this
// module composes those per-cluster measurements into whole-node timing,
// energy and steady-state power under the platform's dispatch model:
//
//   - every transfer (binary, map(to:), map(from:), retries) serialises on
//     the shared SPI/QSPI wire — transfer terms are SUMS over clusters,
//   - compute runs concurrently in per-cluster clock domains — the compute
//     term is the MAX over clusters,
//   - the wire's idle floor is paid once (one link), each cluster pays its
//     own idle power while other clusters still compute.
//
// This is the analytic counterpart of the cycle-accurate multi-cluster
// HeteroSystem (system/hetero_system.hpp); with one outcome the composed
// figures reduce exactly to the single-cluster OffloadSession arithmetic.
#pragma once

#include <span>

#include "runtime/offload.hpp"

namespace ulp::runtime {

/// Compose per-cluster outcomes into one node-level timing: transfer and
/// retry terms sum (shared wire), compute is the slowest cluster
/// (concurrent domains). The composed OffloadTiming plugs into the usual
/// total_s()/efficiency() pipeline arithmetic — double-buffered steady
/// state is then max(slowest compute, total wire time per iteration),
/// i.e. the node is link-bound once the aggregated transfers outweigh the
/// slowest cluster's kernel.
[[nodiscard]] OffloadTiming compose_scaleout_timing(
    std::span<const OffloadOutcome> outcomes);

/// Node energy for `iterations` kernel executions per cluster per code
/// offload: the MCU is active while driving the aggregated transfers and
/// asleep the rest of the composed schedule; each cluster pays measured
/// compute energy plus idle power while the node finishes elsewhere; the
/// shared link pays per-byte energy for every cluster's payloads and ONE
/// idle floor. All rates come from `session` (the session that produced
/// the outcomes).
[[nodiscard]] EnergyBreakdown scaleout_energy(
    const OffloadSession& session, std::span<const OffloadOutcome> outcomes,
    const power::OperatingPoint& op, u32 iterations, bool double_buffered);

/// Steady-state node power while continuously iterating on all clusters
/// (binary cost amortised away) — the scale-out point to check against the
/// paper's 10 mW envelope.
[[nodiscard]] double scaleout_steady_power_w(
    const OffloadSession& session, std::span<const OffloadOutcome> outcomes,
    const power::OperatingPoint& op, bool double_buffered);

}  // namespace ulp::runtime
