#include "host/peripherals.hpp"

namespace ulp::host {

u32 SpiMasterPeripheral::read32(Addr offset) {
  switch (offset) {
    case 0x00: return remote_addr_;
    case 0x04: return local_addr_;
    case 0x08: return len_;
    case 0x10: return wire_->busy() ? 1 : 0;
    case 0x14: return wire_->last_frame_ok() ? 0 : 1;
    default:
      ULP_CHECK(false, "SPI master: invalid register read");
  }
}

void SpiMasterPeripheral::write32(Addr offset, u32 value) {
  switch (offset) {
    case 0x00: remote_addr_ = value; return;
    case 0x04: local_addr_ = value; return;
    case 0x08: len_ = value; return;
    case 0x0C: {
      ULP_CHECK(value == 1 || value == 2, "SPI master: bad command");
      const bool tx = value == 1;
      mem::Sram* local = local_;
      wire_->start(
          tx, local_addr_, remote_addr_, len_,
          [local](Addr a) { return static_cast<u8>(local->load(a, 1, false)); },
          [local](Addr a, u8 b) { local->store(a, 1, b); });
      return;
    }
    default:
      ULP_CHECK(false, "SPI master: invalid register write");
  }
}

u32 GpioPeripheral::read32(Addr offset) {
  switch (offset) {
    case 0x00: return out_;
    case 0x04: return eoc_level_() ? 1 : 0;
    case 0x08: return img_len_;
    default:
      ULP_CHECK(false, "GPIO: invalid register read");
  }
}

void GpioPeripheral::write32(Addr offset, u32 value) {
  switch (offset) {
    case 0x00: {
      const bool rising = (value & 1) != 0 && (out_ & 1) == 0;
      out_ = value;
      if (rising) on_fetch_enable_(img_len_);
      return;
    }
    case 0x08: img_len_ = value; return;
    default:
      ULP_CHECK(false, "GPIO: invalid register write");
  }
}

}  // namespace ulp::host
