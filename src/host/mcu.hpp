// Host MCU models: the commercial microcontrollers of Figure 3 plus the
// prototype's STM32-L476 host.
//
// Each entry carries the datasheet-derived facts the experiments use:
// which Cortex-M cost model executes the portable-C kernels, the listed
// operating points (clock frequencies), the typical-range active current
// in µA/MHz at the nominal supply, the deep-sleep floor, and the SPI
// controller capabilities. Values are "typical" datasheet numbers for the
// families the paper cites; sources are noted per entry in mcu.cpp.
#pragma once

#include <string>
#include <vector>

#include "core/features.hpp"
#include "common/units.hpp"

namespace ulp::host {

struct McuSpec {
  std::string name;
  enum class CoreKind { kCortexM4, kCortexM3, kSimple16Bit } core_kind;

  std::vector<double> op_freqs_hz;  ///< Datasheet operating points.
  double vdd = 3.0;                 ///< Nominal supply.
  double active_ua_per_mhz = 100;   ///< Typical run-mode current density.
  double sleep_w = uw(2);           ///< Stop/deep-sleep floor.

  double spi_max_hz = mhz(24);      ///< SPI controller frequency cap.
  u32 spi_lanes = 1;                ///< 4 for MCUs exposing QSPI.

  /// Cost model used to execute kernels on this MCU. The paper estimates
  /// Cortex-M3 parts by "running the code on the STM32-L476 with all
  /// Cortex-M4 specific flags deactivated"; the 16-bit MSP430 is
  /// approximated by the plain-RISC baseline core (documented deviation).
  [[nodiscard]] core::CoreConfig core_config() const;

  /// Active power at clock `freq_hz` (datasheet idiom: µA/MHz * V_DD).
  [[nodiscard]] double active_power_w(double freq_hz) const {
    return ua_per_mhz_to_watts(active_ua_per_mhz, freq_hz, vdd);
  }

  [[nodiscard]] double max_freq_hz() const { return op_freqs_hz.back(); }
};

/// All MCUs compared in Figure 3, in the paper's reference order.
[[nodiscard]] const std::vector<McuSpec>& mcu_catalog();

/// The prototype host (STM32 Nucleo L476, Cortex-M4).
[[nodiscard]] const McuSpec& stm32l476();

}  // namespace ulp::host
