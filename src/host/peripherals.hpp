// Host MCU peripherals for full-system simulation: the SPI master
// controller (with its MCU-side DMA semantics) and the GPIO block carrying
// the fetch-enable / end-of-computation handshake of the prototype
// (Section III-C: "Two additional STM32 GPIOs are hooked to the PULP
// emulator").
//
// Register maps (word offsets):
//   SPI master:                       GPIO:
//     0x00 REMOTE_ADDR                  0x00 OUT  (bit0 = fetch enable)
//     0x04 LOCAL_ADDR                   0x04 IN   (bit0 = EOC level)
//     0x08 LEN                          0x08 IMG_LEN (boot image length)
//     0x0C CMD  (1 = TX, 2 = RX)
//     0x10 STATUS (1 while busy)
//     0x14 CRC_STATUS (0 = last frame verified, 1 = CRC/framing error;
//          hardware CRC unit, meaningful when the wire's CRC framing is on)
#pragma once

#include <functional>

#include "core/core.hpp"
#include "link/spi_wire.hpp"
#include "mem/mem.hpp"

namespace ulp::host {

class SpiMasterPeripheral final : public mem::Peripheral {
 public:
  /// `local` is the host SRAM the controller's DMA reads/writes.
  SpiMasterPeripheral(link::SpiWire* wire, mem::Sram* local)
      : wire_(wire), local_(local) {
    ULP_CHECK(wire != nullptr && local != nullptr, "null wiring");
  }

  u32 read32(Addr offset) override;
  void write32(Addr offset, u32 value) override;

  /// Staged transfer registers, for snapshot save/restore (the system
  /// owns the serialization so the peripheral stays snapshot-agnostic).
  [[nodiscard]] u32 remote_addr_reg() const { return remote_addr_; }
  [[nodiscard]] u32 local_addr_reg() const { return local_addr_; }
  [[nodiscard]] u32 len_reg() const { return len_; }
  void restore_regs(u32 remote_addr, u32 local_addr, u32 len) {
    remote_addr_ = remote_addr;
    local_addr_ = local_addr;
    len_ = len;
  }

 private:
  link::SpiWire* wire_;
  mem::Sram* local_;
  u32 remote_addr_ = 0;
  u32 local_addr_ = 0;
  u32 len_ = 0;
};

/// Wake controller for the host core: lets the driver use WFE and sleep —
/// clock-gated, like the real MCU's WFI + EXTI on the EOC line — instead
/// of burning active power in a polling loop. Level-triggered on EOC.
class HostWakeUnit final : public core::SyncUnit {
 public:
  explicit HostWakeUnit(std::function<bool()> eoc_level)
      : eoc_level_(std::move(eoc_level)) {}

  bool barrier_arrive(u32 /*core_id*/) override {
    ULP_CHECK(false, "the host MCU has no cluster barrier");
  }
  bool check_wake(u32 /*core_id*/, core::WakeKind kind) override {
    return kind == core::WakeKind::kEvent && eoc_level_();
  }
  void send_event(u32 /*event_id*/) override {}
  void signal_eoc(u32 /*flag*/) override {}

 private:
  std::function<bool()> eoc_level_;
};

/// Wake-source select register for multi-cluster systems: one u32 at
/// offset 0x00 whose bit i arms cluster i's EOC line as a WFE wake source.
/// Resets to 1 (cluster 0 armed) so the single-cluster driver — which
/// never touches it — sleeps and wakes exactly as before the scale-out.
class WakeMaskPeripheral final : public mem::Peripheral {
 public:
  u32 read32(Addr offset) override { return offset == 0 ? mask_ : 0; }
  void write32(Addr offset, u32 value) override {
    if (offset == 0) mask_ = value;
  }
  [[nodiscard]] u32 mask() const { return mask_; }

 private:
  u32 mask_ = 1;
};

class GpioPeripheral final : public mem::Peripheral {
 public:
  /// `eoc_level` samples the accelerator's EOC line; `on_fetch_enable`
  /// fires on the rising edge of OUT bit0 with the staged image length.
  GpioPeripheral(std::function<bool()> eoc_level,
                 std::function<void(u32 image_len)> on_fetch_enable)
      : eoc_level_(std::move(eoc_level)),
        on_fetch_enable_(std::move(on_fetch_enable)) {}

  u32 read32(Addr offset) override;
  void write32(Addr offset, u32 value) override;

  /// Output latches, for snapshot save/restore. restore_regs sets them
  /// without edge side effects (a restored OUT level is not a new edge).
  [[nodiscard]] u32 out_reg() const { return out_; }
  [[nodiscard]] u32 img_len_reg() const { return img_len_; }
  void restore_regs(u32 out, u32 img_len) {
    out_ = out;
    img_len_ = img_len;
  }

 private:
  std::function<bool()> eoc_level_;
  std::function<void(u32)> on_fetch_enable_;
  u32 out_ = 0;
  u32 img_len_ = 0;
};

}  // namespace ulp::host
