#include "host/mcu.hpp"

#include "common/status.hpp"

namespace ulp::host {

core::CoreConfig McuSpec::core_config() const {
  switch (core_kind) {
    case CoreKind::kCortexM4:
      return core::cortex_m4_config();
    case CoreKind::kCortexM3:
      return core::cortex_m3_config();
    case CoreKind::kSimple16Bit:
      return core::baseline_config();
  }
  ULP_CHECK(false, "unknown core kind");
}

const std::vector<McuSpec>& mcu_catalog() {
  // Sources: typical-range run-mode currents from the respective family
  // datasheets the paper cites ([7][8][9][10][11][4][12]). Currents are the
  // "all peripherals off, code from flash" typical numbers.
  static const std::vector<McuSpec> kCatalog = {
      // STM32F407 (Cortex-M4, 168 MHz, ~238 µA/MHz @ 3.3 V).
      {"STM32F407", McuSpec::CoreKind::kCortexM4,
       {mhz(16), mhz(30), mhz(60), mhz(120), mhz(168)},
       3.3, 238, uw(250), mhz(42), 1},
      // STM32F446 (Cortex-M4, 180 MHz, ~200 µA/MHz @ 3.3 V).
      {"STM32F446", McuSpec::CoreKind::kCortexM4,
       {mhz(16), mhz(30), mhz(60), mhz(120), mhz(180)},
       3.3, 200, uw(220), mhz(45), 1},
      // NXP LPC1800 (Cortex-M3, 180 MHz, ~250 µA/MHz @ 3.3 V).
      {"LPC1800", McuSpec::CoreKind::kCortexM3,
       {mhz(12), mhz(24), mhz(60), mhz(120), mhz(180)},
       3.3, 250, uw(300), mhz(30), 1},
      // SiliconLabs EFM32 Giant Gecko (Cortex-M3, 48 MHz, ~200 µA/MHz @ 3 V).
      {"EFM32", McuSpec::CoreKind::kCortexM3,
       {mhz(1), mhz(7), mhz(14), mhz(28), mhz(48)},
       3.0, 200, uw(2), mhz(24), 1},
      // TI MSP430 (16-bit, 25 MHz, ~265 µA/MHz @ 3 V).
      {"MSP430", McuSpec::CoreKind::kSimple16Bit,
       {mhz(1), mhz(8), mhz(16), mhz(25)},
       3.0, 265, uw(1.2), mhz(12), 1},
      // Ambiq Apollo (Cortex-M4, 24 MHz, ~35 µA/MHz @ 3.3 V, subthreshold).
      {"Ambiq Apollo", McuSpec::CoreKind::kCortexM4,
       {mhz(1), mhz(12), mhz(24)},
       3.3, 35, uw(0.5), mhz(12), 1},
      // STM32L476 (Cortex-M4, 80 MHz, ~100 µA/MHz @ 3 V), the host MCU.
      {"STM32L476", McuSpec::CoreKind::kCortexM4,
       {mhz(2), mhz(4), mhz(8), mhz(16), mhz(26), mhz(32), mhz(48), mhz(80)},
       3.0, 100, uw(1.1), mhz(48), 4},  // exposes QSPI
  };
  return kCatalog;
}

const McuSpec& stm32l476() {
  return mcu_catalog().back();
}

}  // namespace ulp::host
