#include "link/spi_wire.hpp"

#include "trace/metrics.hpp"

namespace ulp::link {

void SpiWire::start(bool tx, Addr local, Addr remote, u32 len,
                    std::function<u8(Addr)> local_read,
                    std::function<void(Addr, u8)> local_write) {
  ULP_CHECK(!busy(), "SPI wire already busy");
  if (len == 0) return;
  tx_ = tx;
  local_ = local;
  remote_ = remote;
  remaining_ = len;
  local_read_ = std::move(local_read);
  local_write_ = std::move(local_write);
  // Command/address framing preamble, then the first byte's serialisation.
  cooldown_ = 2 * frame_overhead_bits_ / lanes_ + cycles_per_byte();
  if (sinks_) {
    if (sinks_.events != nullptr) {
      sinks_.events->begin(track_, tx ? "spi.tx" : "spi.rx", now_,
                           {{"bytes", static_cast<double>(len)},
                            {"remote_addr", static_cast<double>(remote)}});
    }
    if (sinks_.metrics != nullptr) {
      sinks_.metrics->histogram("spi.payload_bytes").record(len);
      sinks_.metrics->counter("spi.transfers").add();
    }
  }
}

void SpiWire::step() {
  ++now_;
  if (!busy()) return;
  ++busy_cycles_;
  if (--cooldown_ > 0) return;
  // One byte crosses the wire.
  if (tx_) {
    remote_write_(remote_, local_read_(local_));
  } else {
    local_write_(local_, remote_read_(remote_));
  }
  ++local_;
  ++remote_;
  ++bytes_moved_;
  if (--remaining_ > 0) {
    cooldown_ = cycles_per_byte();
  } else {
    local_read_ = nullptr;
    local_write_ = nullptr;
    if (sinks_.events != nullptr) sinks_.events->end(track_, now_);
  }
}

}  // namespace ulp::link
