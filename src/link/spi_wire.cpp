#include "link/spi_wire.hpp"

#include "trace/metrics.hpp"

namespace ulp::link {

void SpiWire::start(bool tx, Addr local, Addr remote, u32 len,
                    std::function<u8(Addr)> local_read,
                    std::function<void(Addr, u8)> local_write) {
  ULP_CHECK(!busy(), "SPI wire already busy");
  if (len == 0) return;
  tx_ = tx;
  local_ = local;
  remote_ = remote;
  remaining_ = len;
  local_read_ = std::move(local_read);
  local_write_ = std::move(local_write);
  tx_crc_.reset();
  rx_crc_.reset();
  trailer_remaining_ = 0;
  trailer_received_ = 0;
  // A NAK'd frame is rejected wholesale by the slave; the beats still
  // cross the wire (and cost time) but the frame can never verify.
  frame_damaged_ =
      injector_ != nullptr &&
      injector_->frame_nak(tx ? Direction::kTx : Direction::kRx);
  // Command/address framing preamble, then the first byte's serialisation.
  cooldown_ = 2 * frame_overhead_bits_ / lanes_ + cycles_per_byte();
  if (sinks_) {
    if (sinks_.events != nullptr) {
      sinks_.events->begin(track_, tx ? "spi.tx" : "spi.rx", now_,
                           {{"bytes", static_cast<double>(len)},
                            {"remote_addr", static_cast<double>(remote)}});
    }
    if (sinks_.metrics != nullptr) {
      sinks_.metrics->histogram("spi.payload_bytes").record(len);
      sinks_.metrics->counter("spi.transfers").add();
    }
  }
}

void SpiWire::step() {
  ++now_;
  if (!busy()) return;
  ++busy_cycles_;
  if (--cooldown_ > 0) return;
  const Direction dir = tx_ ? Direction::kTx : Direction::kRx;
  if (remaining_ > 0) {
    // One payload byte crosses the wire.
    u8 byte = tx_ ? local_read_(local_) : remote_read_(remote_);
    tx_crc_.update(byte);
    if (injector_ != nullptr) {
      switch (injector_->beat(dir)) {
        case BeatFault::kFlip:
          byte ^= injector_->flip_mask();
          break;
        case BeatFault::kDrop:
        case BeatFault::kDup:
          // Beat-count slips: the stream framing is broken even if the
          // byte values land; real controllers detect this as a length /
          // CRC mismatch. The byte is still delivered so retried frames
          // overwrite a consistent region.
          frame_damaged_ = true;
          break;
        case BeatFault::kNone:
          break;
      }
    }
    rx_crc_.update(byte);
    if (tx_) {
      remote_write_(remote_, byte);
    } else {
      local_write_(local_, byte);
    }
    ++local_;
    ++remote_;
    ++bytes_moved_;
    if (--remaining_ > 0) {
      cooldown_ = cycles_per_byte();
      return;
    }
    if (crc_frames_) {
      trailer_remaining_ = 4;
      cooldown_ = cycles_per_byte();
      return;
    }
    finish_frame();
    return;
  }
  // CRC trailer beat: consumed by the receiving controller's CRC unit,
  // never written to memory and not counted in bytes_moved().
  const u32 idx = 4 - trailer_remaining_;
  u8 byte = static_cast<u8>(tx_crc_.value() >> (8 * idx));
  if (injector_ != nullptr) {
    switch (injector_->beat(dir)) {
      case BeatFault::kFlip:
        byte ^= injector_->flip_mask();
        break;
      case BeatFault::kDrop:
      case BeatFault::kDup:
        frame_damaged_ = true;
        break;
      case BeatFault::kNone:
        break;
    }
  }
  trailer_received_ |= static_cast<u32>(byte) << (8 * idx);
  if (--trailer_remaining_ > 0) {
    cooldown_ = cycles_per_byte();
    return;
  }
  finish_frame();
}

void SpiWire::finish_frame() {
  ++frames_;
  last_frame_ok_ =
      !crc_frames_ ||
      (!frame_damaged_ && rx_crc_.value() == trailer_received_);
  local_read_ = nullptr;
  local_write_ = nullptr;
  if (sinks_.metrics != nullptr) {
    sinks_.metrics->counter("link.frames").add();
    if (!last_frame_ok_) sinks_.metrics->counter("link.crc_errors").add();
  }
  if (!last_frame_ok_) {
    ++crc_errors_;
    if (sinks_.events != nullptr) {
      sinks_.events->instant(track_, "crc_error", now_);
    }
  }
  if (sinks_.events != nullptr) sinks_.events->end(track_, now_);
}

Status SpiWire::save(snapshot::Writer& w) const {
  w.put_u32(lanes_);
  w.put_u32(frame_overhead_bits_);
  w.put_bool(crc_frames_);
  w.put_bool(tx_);
  w.put_u32(local_);
  w.put_u32(remote_);
  w.put_u32(remaining_);
  w.put_u32(cooldown_);
  w.put_u32(tx_crc_.raw());
  w.put_u32(rx_crc_.raw());
  w.put_u32(trailer_remaining_);
  w.put_u32(trailer_received_);
  w.put_bool(frame_damaged_);
  w.put_bool(last_frame_ok_);
  w.put_u64(frames_);
  w.put_u64(crc_errors_);
  w.put_u64(bytes_moved_);
  w.put_u64(busy_cycles_);
  w.put_u64(now_);
  return Status{};
}

Status SpiWire::restore(snapshot::Reader& r, bool apply) {
  const u32 lanes = r.get_u32();
  const u32 overhead = r.get_u32();
  const bool crc_frames = r.get_bool();
  const bool tx = r.get_bool();
  const Addr local = r.get_u32();
  const Addr remote = r.get_u32();
  const u32 remaining = r.get_u32();
  const u32 cooldown = r.get_u32();
  const u32 tx_crc = r.get_u32();
  const u32 rx_crc = r.get_u32();
  const u32 trailer_remaining = r.get_u32();
  const u32 trailer_received = r.get_u32();
  const bool frame_damaged = r.get_bool();
  const bool last_frame_ok = r.get_bool();
  const u64 frames = r.get_u64();
  const u64 crc_errors = r.get_u64();
  const u64 bytes_moved = r.get_u64();
  const u64 busy_cycles = r.get_u64();
  const u64 now = r.get_u64();
  if (lanes != lanes_ || overhead != frame_overhead_bits_) {
    r.fail(StatusCode::kInvalidArgument,
           "snapshot SPI wire geometry mismatch");
  }
  if (trailer_remaining > 4) {
    r.fail(StatusCode::kInvalidArgument,
           "snapshot SPI trailer position out of range");
  }
  if (Status s = r.status(); !s.ok()) return s;
  if (!apply) return Status{};
  crc_frames_ = crc_frames;
  tx_ = tx;
  local_ = local;
  remote_ = remote;
  remaining_ = remaining;
  cooldown_ = cooldown;
  tx_crc_.set_raw(tx_crc);
  rx_crc_.set_raw(rx_crc);
  trailer_remaining_ = trailer_remaining;
  trailer_received_ = trailer_received;
  frame_damaged_ = frame_damaged;
  last_frame_ok_ = last_frame_ok;
  frames_ = frames;
  crc_errors_ = crc_errors;
  bytes_moved_ = bytes_moved;
  busy_cycles_ = busy_cycles;
  now_ = now;
  // Callbacks are not serializable; mid-frame the owner must rearm_local()
  // before the next step(), idle they stay detached like after a frame.
  local_read_ = nullptr;
  local_write_ = nullptr;
  return Status{};
}

}  // namespace ulp::link
