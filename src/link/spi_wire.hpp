// Cycle-stepped SPI/QSPI wire for full-system co-simulation.
//
// Where link::SpiLink computes transfer times analytically, SpiWire *moves
// the bytes* while both processors run: the host's SPI master controller
// pushes/pulls one byte every `cycles_per_byte` host cycles (SPI clock =
// host clock / 2, `lanes` bits per SPI clock), with a framing preamble per
// transfer. The remote side is abstracted as a byte sink/source (the PULP
// SoC's QSPI slave in front of L2).
#pragma once

#include <functional>

#include "common/status.hpp"
#include "common/types.hpp"
#include "trace/event_trace.hpp"

namespace ulp::link {

class SpiWire {
 public:
  /// Remote-side byte access (the accelerator's QSPI slave).
  using RemoteWrite = std::function<void(Addr, u8)>;
  using RemoteRead = std::function<u8(Addr)>;

  SpiWire(u32 lanes, RemoteWrite write, RemoteRead read,
          u32 frame_overhead_bits = 40)
      : lanes_(lanes),
        remote_write_(std::move(write)),
        remote_read_(std::move(read)),
        frame_overhead_bits_(frame_overhead_bits) {
    ULP_CHECK(lanes == 1 || lanes == 2 || lanes == 4, "bad lane count");
  }

  /// Host cycles per transferred byte: 8 bits / lanes SPI clocks, 2 host
  /// cycles per SPI clock.
  [[nodiscard]] u32 cycles_per_byte() const { return 2 * 8 / lanes_; }

  [[nodiscard]] bool busy() const { return remaining_ > 0; }

  /// Start host -> remote (tx=true) or remote -> host (tx=false). The
  /// local side is accessed through the buffer callbacks the SPI master
  /// peripheral provides per transfer.
  void start(bool tx, Addr local, Addr remote, u32 len,
             std::function<u8(Addr)> local_read,
             std::function<void(Addr, u8)> local_write);

  /// One host clock cycle of progress.
  void step();

  /// Account `cycles` idle host cycles in one jump: exactly what `cycles`
  /// step() calls would do while no transfer is in flight (the trace clock
  /// still advances). Only legal when !busy().
  void skip_idle(u64 cycles) {
    ULP_CHECK(!busy(), "SPI wire skip_idle while a transfer is in flight");
    now_ += cycles;
  }

  /// Record transfers as spans on `track` (host-cycle timestamps) and
  /// payload sizes into the metrics registry. Null sinks detach.
  void attach_trace(const trace::Sinks& sinks,
                    trace::EventTrace::TrackId track) {
    sinks_ = sinks;
    track_ = track;
  }

  [[nodiscard]] u64 bytes_moved() const { return bytes_moved_; }
  [[nodiscard]] u64 busy_cycles() const { return busy_cycles_; }
  /// Host cycles since construction (the wire's trace clock).
  [[nodiscard]] u64 now() const { return now_; }

 private:
  u32 lanes_;
  RemoteWrite remote_write_;
  RemoteRead remote_read_;
  u32 frame_overhead_bits_;

  bool tx_ = false;
  Addr local_ = 0;
  Addr remote_ = 0;
  u32 remaining_ = 0;
  u32 cooldown_ = 0;
  std::function<u8(Addr)> local_read_;
  std::function<void(Addr, u8)> local_write_;

  u64 bytes_moved_ = 0;
  u64 busy_cycles_ = 0;
  u64 now_ = 0;

  trace::Sinks sinks_;
  trace::EventTrace::TrackId track_ = 0;
};

}  // namespace ulp::link
