// Cycle-stepped SPI/QSPI wire for full-system co-simulation.
//
// Where link::SpiLink computes transfer times analytically, SpiWire *moves
// the bytes* while both processors run: the host's SPI master controller
// pushes/pulls one byte every `cycles_per_byte` host cycles (SPI clock =
// host clock / 2, `lanes` bits per SPI clock), with a framing preamble per
// transfer. The remote side is abstracted as a byte sink/source (the PULP
// SoC's QSPI slave in front of L2).
//
// Robust-protocol extensions (both opt-in; the legacy raw wire is the
// default and is pinned by the system tests):
//   * CRC framing — each transfer carries a 4-byte CRC-32 trailer. The
//     sender's controller shifts out the CRC of what it read from memory;
//     the receiver accumulates a CRC over what actually arrived and the
//     frame fails on mismatch (or on structural damage: dropped/duplicated
//     beats, a NAK'd frame). The result is latched in last_frame_ok() and
//     surfaced to the host driver through the SPI master's CRC_STATUS
//     register. Trailer beats cost wire time but are consumed by the CRC
//     units, never written to memory, and do not count in bytes_moved().
//   * Fault injection — an attached link::FaultInjector perturbs beats
//     (flip/drop/dup) and frames (NAK) deterministically; see
//     fault_injector.hpp for the model.
#pragma once

#include <functional>

#include "common/status.hpp"
#include "common/types.hpp"
#include "link/crc32.hpp"
#include "link/fault_injector.hpp"
#include "snapshot/snapshot.hpp"
#include "trace/event_trace.hpp"

namespace ulp::link {

class SpiWire {
 public:
  /// Remote-side byte access (the accelerator's QSPI slave).
  using RemoteWrite = std::function<void(Addr, u8)>;
  using RemoteRead = std::function<u8(Addr)>;

  SpiWire(u32 lanes, RemoteWrite write, RemoteRead read,
          u32 frame_overhead_bits = 40)
      : lanes_(lanes),
        remote_write_(std::move(write)),
        remote_read_(std::move(read)),
        frame_overhead_bits_(frame_overhead_bits) {
    ULP_CHECK(lanes == 1 || lanes == 2 || lanes == 4, "bad lane count");
  }

  /// Host cycles per transferred byte: 8 bits / lanes SPI clocks, 2 host
  /// cycles per SPI clock.
  [[nodiscard]] u32 cycles_per_byte() const { return 2 * 8 / lanes_; }

  [[nodiscard]] bool busy() const {
    return remaining_ > 0 || trailer_remaining_ > 0;
  }

  /// Enable the CRC-32 trailer on every subsequent transfer.
  void set_crc_frames(bool on) { crc_frames_ = on; }
  [[nodiscard]] bool crc_frames() const { return crc_frames_; }

  /// Attach a fault injector (not owned; nullptr detaches). Beats and
  /// frames of subsequent transfers draw their fault decisions from it.
  void set_fault_injector(FaultInjector* injector) { injector_ = injector; }

  /// Result of the most recently completed frame's integrity check. True
  /// when CRC framing is off (a raw wire detects nothing) and before any
  /// transfer completed.
  [[nodiscard]] bool last_frame_ok() const { return last_frame_ok_; }
  [[nodiscard]] u64 frames() const { return frames_; }
  [[nodiscard]] u64 crc_errors() const { return crc_errors_; }

  /// Start host -> remote (tx=true) or remote -> host (tx=false). The
  /// local side is accessed through the buffer callbacks the SPI master
  /// peripheral provides per transfer.
  void start(bool tx, Addr local, Addr remote, u32 len,
             std::function<u8(Addr)> local_read,
             std::function<void(Addr, u8)> local_write);

  /// One host clock cycle of progress.
  void step();

  /// Account `cycles` idle host cycles in one jump: exactly what `cycles`
  /// step() calls would do while no transfer is in flight (the trace clock
  /// still advances). Only legal when !busy().
  void skip_idle(u64 cycles) {
    ULP_CHECK(!busy(), "SPI wire skip_idle while a transfer is in flight");
    now_ += cycles;
  }

  /// Record transfers as spans on `track` (host-cycle timestamps) and
  /// payload sizes into the metrics registry. Null sinks detach.
  void attach_trace(const trace::Sinks& sinks,
                    trace::EventTrace::TrackId track) {
    sinks_ = sinks;
    track_ = track;
  }

  [[nodiscard]] u64 bytes_moved() const { return bytes_moved_; }
  [[nodiscard]] u64 busy_cycles() const { return busy_cycles_; }
  /// Host cycles since construction (the wire's trace clock).
  [[nodiscard]] u64 now() const { return now_; }

  /// Serializes the full wire state — including a mid-frame position with
  /// its CRC accumulators and cooldown — into the writer's current
  /// section. The local buffer callbacks cannot be serialized; after a
  /// restore that lands mid-frame, the owner re-provides them through
  /// rearm_local() (the SPI master peripheral knows the buffer).
  [[nodiscard]] Status save(snapshot::Writer& w) const;

  /// Reads (and with apply=true applies) the field sequence save() wrote.
  /// Lane count and frame overhead are validated against this wire's
  /// construction parameters. After an apply that leaves the wire busy(),
  /// the local callbacks are null until rearm_local() is called.
  [[nodiscard]] Status restore(snapshot::Reader& r, bool apply);

  /// Re-install the local-side buffer callbacks after a mid-frame
  /// restore. Only legal while a transfer is in flight.
  void rearm_local(std::function<u8(Addr)> local_read,
                   std::function<void(Addr, u8)> local_write) {
    ULP_CHECK(busy(), "SPI wire rearm_local while idle");
    local_read_ = std::move(local_read);
    local_write_ = std::move(local_write);
  }

 private:
  void finish_frame();

  u32 lanes_;
  RemoteWrite remote_write_;
  RemoteRead remote_read_;
  u32 frame_overhead_bits_;

  bool tx_ = false;
  Addr local_ = 0;
  Addr remote_ = 0;
  u32 remaining_ = 0;
  u32 cooldown_ = 0;
  std::function<u8(Addr)> local_read_;
  std::function<void(Addr, u8)> local_write_;

  bool crc_frames_ = false;
  FaultInjector* injector_ = nullptr;
  Crc32 tx_crc_;
  Crc32 rx_crc_;
  u32 trailer_remaining_ = 0;
  u32 trailer_received_ = 0;
  bool frame_damaged_ = false;
  bool last_frame_ok_ = true;
  u64 frames_ = 0;
  u64 crc_errors_ = 0;

  u64 bytes_moved_ = 0;
  u64 busy_cycles_ = 0;
  u64 now_ = 0;

  trace::Sinks sinks_;
  trace::EventTrace::TrackId track_ = 0;
};

}  // namespace ulp::link
