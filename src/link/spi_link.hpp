// SPI / QSPI host-accelerator coupling link model.
//
// The paper's model (Sections III-A, IV-B): the MCU is the SPI master, so
// the link clock is derived from — and bounded by — the MCU core clock
// (f_spi = f_mcu / 2 on STM32-class parts, further capped by the
// controller). QSPI quadruples the per-clock bit count. Every transfer pays
// a fixed command/address framing overhead. This is exactly the mechanism
// behind Figure 5b's efficiency plateaus: at low MCU frequencies the link,
// not the accelerator, bounds the offload.
//
// The Discussion-section variation — a link clock decoupled from the MCU
// clock — is modelled by `decoupled_clock_hz` (used by the ablation bench).
#pragma once

#include <cstddef>

#include "common/status.hpp"
#include "common/units.hpp"
#include "common/types.hpp"

namespace ulp::link {

struct SpiLinkConfig {
  /// 1 = classic SPI, 2 = dual (both data wires carry payload, as on
  /// dual-IO flash links), 4 = quad. The paper's prototype uses classic
  /// and quad; dual is modelled the same way — lanes bits per SPI clock
  /// with the framing preamble serialised across the same lanes — and is
  /// pinned by the tests as part of the accepted set {1, 2, 4}.
  u32 lanes = 1;
  double max_freq_hz = mhz(48);     ///< Controller cap.
  u32 frame_overhead_bits = 40;     ///< Command + address per transfer.
  /// CRC trailer bits per framed transfer (0 = unframed raw transfers,
  /// 32 = the robust offload protocol's CRC-32 trailer).
  u32 crc_bits = 0;
  double energy_per_bit = 25e-12;   ///< Joules/bit across the board wires.
  double idle_power_w = uw(3);      ///< Both PHYs idle.
  double decoupled_clock_hz = 0;    ///< >0: link clock independent of MCU.
};

class SpiLink {
 public:
  explicit SpiLink(SpiLinkConfig config) : cfg_(config) {
    ULP_CHECK(cfg_.lanes == 1 || cfg_.lanes == 2 || cfg_.lanes == 4,
              "SPI lanes must be 1, 2 or 4");
  }

  [[nodiscard]] const SpiLinkConfig& config() const { return cfg_; }

  /// Effective SPI clock for a given MCU core clock.
  [[nodiscard]] double clock_hz(double mcu_freq_hz) const {
    if (cfg_.decoupled_clock_hz > 0) {
      return std::min(cfg_.decoupled_clock_hz, cfg_.max_freq_hz);
    }
    return std::min(mcu_freq_hz / 2.0, cfg_.max_freq_hz);
  }

  /// Payload bandwidth in bits per second.
  [[nodiscard]] double bandwidth_bps(double mcu_freq_hz) const {
    return clock_hz(mcu_freq_hz) * cfg_.lanes;
  }

  /// Wire bits for one framed transfer of `bytes` payload bytes. This is
  /// the single source of truth for transfer framing: a zero-byte transfer
  /// is elided entirely (no command, no CRC — the wire never starts), and
  /// a non-empty transfer pays payload + command/address preamble + CRC
  /// trailer. Both transfer_seconds() and transfer_energy_j() derive from
  /// it, so time and energy can never disagree about framing.
  [[nodiscard]] double frame_bits(size_t bytes) const {
    if (bytes == 0) return 0.0;
    return static_cast<double>(bytes) * 8.0 + cfg_.frame_overhead_bits +
           cfg_.crc_bits;
  }

  /// Wall-clock seconds to move `bytes` (one framed transfer).
  [[nodiscard]] double transfer_seconds(size_t bytes,
                                        double mcu_freq_hz) const {
    return frame_bits(bytes) / bandwidth_bps(mcu_freq_hz);
  }

  /// Energy to move `bytes` over the wires.
  [[nodiscard]] double transfer_energy_j(size_t bytes) const {
    return frame_bits(bytes) * cfg_.energy_per_bit;
  }

  /// Average power while streaming continuously at `mcu_freq_hz`.
  [[nodiscard]] double active_power_w(double mcu_freq_hz) const {
    return bandwidth_bps(mcu_freq_hz) * cfg_.energy_per_bit +
           cfg_.idle_power_w;
  }

  [[nodiscard]] double idle_power_w() const { return cfg_.idle_power_w; }

  /// Copy of this link with a CRC trailer of `bits` per framed transfer
  /// (the robust offload protocol enables 32-bit trailers this way).
  [[nodiscard]] SpiLink with_crc(u32 bits) const {
    SpiLinkConfig c = cfg_;
    c.crc_bits = bits;
    return SpiLink(c);
  }

 private:
  SpiLinkConfig cfg_;
};

}  // namespace ulp::link
