// Deterministic, seeded fault injection for the SPI/QSPI coupling link.
//
// The paper couples the MCU and the PULP cluster over plain board wires;
// a real deployment sees bit flips from EMI, beats lost or duplicated by
// controller FIFO slips, transient NAKs from a busy slave and — the worst
// case — a stuck EOC line. The injector models all of these as a
// deterministic function of a seed and the *call sequence* (one decision
// per transferred beat, per frame, per EOC wait), never of wall-clock or
// scheduler state: the same seed produces the same fault schedule in both
// the cycle-stepped wire and the analytic link model, and in both the
// reference and fast-forward stepping modes.
//
// Fault kinds per beat (drawn once per beat from the per-direction rates,
// optionally stretched into bursts):
//   * flip — one random bit of the byte inverts on the wire;
//   * drop — the beat is lost (receiver memory keeps its stale byte);
//   * dup  — the beat is latched twice (stream framing slips).
// Frame-level: a transient NAK marks the whole frame rejected. Drops,
// dups and NAKs are structural damage: real framing counts beats, so the
// receiver's CRC never matches. EOC-level: the first `stuck_eoc_waits`
// EOC waits see the line stuck low (the host's watchdog must fire).
#pragma once

#include <span>
#include <string_view>

#include "common/rng.hpp"
#include "common/status.hpp"
#include "common/types.hpp"
#include "snapshot/snapshot.hpp"

namespace ulp::link {

/// Transfer direction as seen from the host MCU.
enum class Direction : u8 {
  kTx,  ///< Host -> accelerator (binary image, map(to:) payload).
  kRx,  ///< Accelerator -> host (map(from:) result readback).
};

enum class BeatFault : u8 { kNone, kFlip, kDrop, kDup };

struct FaultConfig {
  u64 seed = 1;
  /// Per-beat event probabilities (payload and CRC trailer beats alike).
  double tx_flip_rate = 0, rx_flip_rate = 0;
  double tx_drop_rate = 0, rx_drop_rate = 0;
  double tx_dup_rate = 0, rx_dup_rate = 0;
  /// Per-frame transient NAK probability (slave busy; frame rejected).
  double nak_rate = 0;
  /// Consecutive beats affected once an event fires (>= 1).
  u32 burst_len = 1;
  /// The first N EOC waits observe the line stuck low; the host watchdog
  /// must expire and the offload be retried (or abandoned to fallback).
  u32 stuck_eoc_waits = 0;

  [[nodiscard]] bool any_beat_faults() const {
    return tx_flip_rate > 0 || rx_flip_rate > 0 || tx_drop_rate > 0 ||
           rx_drop_rate > 0 || tx_dup_rate > 0 || rx_dup_rate > 0;
  }
};

class FaultInjector {
 public:
  struct Counters {
    u64 beats = 0;      ///< Beat decisions drawn.
    u64 frames = 0;     ///< Frame (NAK) decisions drawn.
    u64 flips = 0;
    u64 drops = 0;
    u64 dups = 0;
    u64 naks = 0;
    u64 stuck_waits = 0;
    [[nodiscard]] u64 total_faults() const {
      return flips + drops + dups + naks + stuck_waits;
    }
  };

  explicit FaultInjector(FaultConfig config);

  [[nodiscard]] const FaultConfig& config() const { return cfg_; }
  [[nodiscard]] const Counters& counters() const { return counters_; }

  /// One beat crosses the wire in direction `d`: what happens to it.
  BeatFault beat(Direction d);

  /// Bit mask to XOR into a flipped byte (exactly one bit set).
  u8 flip_mask();

  /// Frame-level decision, drawn once per started frame.
  bool frame_nak(Direction d);

  /// The host raised fetch-enable and begins waiting on EOC. Consumes one
  /// stuck-EOC budget entry; while the current wait is stuck, eoc_gate()
  /// masks the line low.
  void begin_eoc_wait();
  [[nodiscard]] bool eoc_wait_stuck() const { return wait_stuck_; }
  /// The EOC level as the host sees it (stuck-at-low while the current
  /// wait is stuck). Pure function of (level, consumed waits) so both
  /// stepping modes observe identical lines regardless of sample count.
  [[nodiscard]] bool eoc_gate(bool level) const {
    return level && !wait_stuck_;
  }

  /// Analytic-tier helper: simulate one CRC-framed transfer attempt of
  /// `payload` (plus the 4-byte CRC trailer) in direction `d` without
  /// moving bytes. Draws exactly the per-frame and per-beat decisions the
  /// cycle-stepped wire would draw and returns whether the receiver's CRC
  /// check passes (computed honestly over the post-fault byte stream).
  bool frame_intact(Direction d, std::span<const u8> payload);

  /// Parse a `--faults=` spec: comma-separated `key=value` with keys
  /// seed, flip, drop, dup, nak (rates apply to both directions), burst,
  /// stuck. Example: "seed=7,flip=1e-4,nak=0.01,stuck=1,burst=4".
  static Status parse(std::string_view spec, FaultConfig* out);

  /// Serializes the RNG position, fault counters, burst stretch state and
  /// stuck-EOC progress into the writer's current section. The config is
  /// construction wiring, not state: the owner re-creates the injector
  /// from the same spec before restoring into it.
  [[nodiscard]] Status save(snapshot::Writer& w) const {
    w.put_u64(rng_.state());
    w.put_u64(counters_.beats);
    w.put_u64(counters_.frames);
    w.put_u64(counters_.flips);
    w.put_u64(counters_.drops);
    w.put_u64(counters_.dups);
    w.put_u64(counters_.naks);
    w.put_u64(counters_.stuck_waits);
    w.put_u8(static_cast<u8>(burst_tx_.kind));
    w.put_u32(burst_tx_.remaining);
    w.put_u8(static_cast<u8>(burst_rx_.kind));
    w.put_u32(burst_rx_.remaining);
    w.put_u32(waits_seen_);
    w.put_bool(wait_stuck_);
    return Status{};
  }

  /// Reads (and with apply=true applies) the field sequence save() wrote.
  [[nodiscard]] Status restore(snapshot::Reader& r, bool apply) {
    const u64 rng_state = r.get_u64();
    Counters c;
    c.beats = r.get_u64();
    c.frames = r.get_u64();
    c.flips = r.get_u64();
    c.drops = r.get_u64();
    c.dups = r.get_u64();
    c.naks = r.get_u64();
    c.stuck_waits = r.get_u64();
    const u8 tx_kind = r.get_u8();
    const u32 tx_remaining = r.get_u32();
    const u8 rx_kind = r.get_u8();
    const u32 rx_remaining = r.get_u32();
    const u32 waits_seen = r.get_u32();
    const bool wait_stuck = r.get_bool();
    if (tx_kind > static_cast<u8>(BeatFault::kDup) ||
        rx_kind > static_cast<u8>(BeatFault::kDup)) {
      r.fail(StatusCode::kInvalidArgument,
             "snapshot fault burst kind out of range");
    }
    if (Status s = r.status(); !s.ok()) return s;
    if (!apply) return Status{};
    rng_.set_state(rng_state);
    counters_ = c;
    burst_tx_ = {static_cast<BeatFault>(tx_kind), tx_remaining};
    burst_rx_ = {static_cast<BeatFault>(rx_kind), rx_remaining};
    waits_seen_ = waits_seen;
    wait_stuck_ = wait_stuck;
    return Status{};
  }

 private:
  struct BurstState {
    BeatFault kind = BeatFault::kNone;
    u32 remaining = 0;
  };

  FaultConfig cfg_;
  Rng rng_;
  Counters counters_;
  BurstState burst_tx_, burst_rx_;
  u32 waits_seen_ = 0;
  bool wait_stuck_ = false;
};

}  // namespace ulp::link
