// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) for link framing.
//
// Every framed SPI transfer of the robust offload protocol carries a 4-byte
// CRC trailer computed over the payload bytes in transfer order; the
// receiving side accumulates the same checksum over what actually arrived
// and rejects the frame on mismatch. The incremental form matches how the
// SPI controllers compute it in hardware (STM32 SPI peripherals expose
// exactly this CRCEN datapath), one byte per shifted beat.
#pragma once

#include <span>

#include "common/types.hpp"

namespace ulp::link {

/// Incremental CRC-32: feed bytes in wire order, read `value()` any time.
class Crc32 {
 public:
  void update(u8 byte) {
    crc_ ^= byte;
    for (int bit = 0; bit < 8; ++bit) {
      crc_ = (crc_ >> 1) ^ ((crc_ & 1u) ? 0xEDB88320u : 0u);
    }
  }

  [[nodiscard]] u32 value() const { return crc_ ^ 0xFFFFFFFFu; }

  void reset() { crc_ = 0xFFFFFFFFu; }

  // Raw (pre-inversion) accumulator, so a mid-frame checksum can be
  // snapshotted and resumed exactly.
  [[nodiscard]] u32 raw() const { return crc_; }
  void set_raw(u32 raw) { crc_ = raw; }

 private:
  u32 crc_ = 0xFFFFFFFFu;
};

/// One-shot CRC-32 of a byte span.
[[nodiscard]] inline u32 crc32(std::span<const u8> bytes) {
  Crc32 c;
  for (const u8 b : bytes) c.update(b);
  return c.value();
}

}  // namespace ulp::link
