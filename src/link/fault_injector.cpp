#include "link/fault_injector.hpp"

#include <cstdlib>
#include <string>

#include "link/crc32.hpp"

namespace ulp::link {

FaultInjector::FaultInjector(FaultConfig config) : cfg_(config), rng_(cfg_.seed) {
  ULP_CHECK(cfg_.burst_len >= 1, "fault burst length must be >= 1");
  auto valid_rate = [](double r) { return r >= 0.0 && r <= 1.0; };
  ULP_CHECK(valid_rate(cfg_.tx_flip_rate) && valid_rate(cfg_.rx_flip_rate) &&
                valid_rate(cfg_.tx_drop_rate) && valid_rate(cfg_.rx_drop_rate) &&
                valid_rate(cfg_.tx_dup_rate) && valid_rate(cfg_.rx_dup_rate) &&
                valid_rate(cfg_.nak_rate),
            "fault rates must be probabilities in [0, 1]");
}

BeatFault FaultInjector::beat(Direction d) {
  ++counters_.beats;
  BurstState& burst = d == Direction::kTx ? burst_tx_ : burst_rx_;
  if (burst.remaining > 0) {
    --burst.remaining;
    switch (burst.kind) {
      case BeatFault::kFlip: ++counters_.flips; break;
      case BeatFault::kDrop: ++counters_.drops; break;
      case BeatFault::kDup: ++counters_.dups; break;
      case BeatFault::kNone: break;
    }
    return burst.kind;
  }
  const double flip = d == Direction::kTx ? cfg_.tx_flip_rate : cfg_.rx_flip_rate;
  const double drop = d == Direction::kTx ? cfg_.tx_drop_rate : cfg_.rx_drop_rate;
  const double dup = d == Direction::kTx ? cfg_.tx_dup_rate : cfg_.rx_dup_rate;
  // One draw per beat; the fault kinds partition the unit interval.
  const double u = rng_.uniform01();
  BeatFault kind = BeatFault::kNone;
  if (u < flip) {
    kind = BeatFault::kFlip;
    ++counters_.flips;
  } else if (u < flip + drop) {
    kind = BeatFault::kDrop;
    ++counters_.drops;
  } else if (u < flip + drop + dup) {
    kind = BeatFault::kDup;
    ++counters_.dups;
  }
  if (kind != BeatFault::kNone && cfg_.burst_len > 1) {
    burst.kind = kind;
    burst.remaining = cfg_.burst_len - 1;
  }
  return kind;
}

u8 FaultInjector::flip_mask() {
  return static_cast<u8>(1u << (rng_.next_u32() & 7u));
}

bool FaultInjector::frame_nak(Direction /*d*/) {
  ++counters_.frames;
  if (cfg_.nak_rate <= 0) return false;
  const bool nak = rng_.uniform01() < cfg_.nak_rate;
  if (nak) ++counters_.naks;
  return nak;
}

void FaultInjector::begin_eoc_wait() {
  wait_stuck_ = waits_seen_ < cfg_.stuck_eoc_waits;
  ++waits_seen_;
  if (wait_stuck_) ++counters_.stuck_waits;
}

bool FaultInjector::frame_intact(Direction d, std::span<const u8> payload) {
  bool structural_damage = frame_nak(d);
  Crc32 tx_crc, rx_crc;
  auto beat_byte = [&](u8 byte, bool trailer, u8* received) {
    switch (beat(d)) {
      case BeatFault::kFlip: byte ^= flip_mask(); break;
      case BeatFault::kDrop:
      case BeatFault::kDup: structural_damage = true; break;
      case BeatFault::kNone: break;
    }
    if (!trailer) rx_crc.update(byte);
    *received = byte;
  };
  u8 received = 0;
  for (const u8 b : payload) {
    tx_crc.update(b);
    beat_byte(b, /*trailer=*/false, &received);
  }
  const u32 sent_crc = tx_crc.value();
  u32 got_crc = 0;
  for (int i = 0; i < 4; ++i) {
    beat_byte(static_cast<u8>(sent_crc >> (8 * i)), /*trailer=*/true,
              &received);
    got_crc |= static_cast<u32>(received) << (8 * i);
  }
  return !structural_damage && rx_crc.value() == got_crc;
}

Status FaultInjector::parse(std::string_view spec, FaultConfig* out) {
  FaultConfig cfg;
  size_t pos = 0;
  while (pos < spec.size()) {
    size_t end = spec.find(',', pos);
    if (end == std::string_view::npos) end = spec.size();
    const std::string_view item = spec.substr(pos, end - pos);
    pos = end + 1;
    if (item.empty()) continue;
    const size_t eq = item.find('=');
    if (eq == std::string_view::npos) {
      return Status::Error(StatusCode::kInvalidArgument,
                           "fault spec item '" + std::string(item) +
                               "' is not key=value");
    }
    const std::string_view key = item.substr(0, eq);
    const std::string value(item.substr(eq + 1));
    char* parse_end = nullptr;
    const double v = std::strtod(value.c_str(), &parse_end);
    if (parse_end == value.c_str() || *parse_end != '\0') {
      return Status::Error(StatusCode::kInvalidArgument,
                           "bad number '" + value + "' in fault spec");
    }
    if (key == "seed") {
      cfg.seed = static_cast<u64>(v);
    } else if (key == "flip") {
      cfg.tx_flip_rate = cfg.rx_flip_rate = v;
    } else if (key == "drop") {
      cfg.tx_drop_rate = cfg.rx_drop_rate = v;
    } else if (key == "dup") {
      cfg.tx_dup_rate = cfg.rx_dup_rate = v;
    } else if (key == "nak") {
      cfg.nak_rate = v;
    } else if (key == "burst") {
      cfg.burst_len = static_cast<u32>(v);
    } else if (key == "stuck") {
      cfg.stuck_eoc_waits = static_cast<u32>(v);
    } else {
      return Status::Error(StatusCode::kInvalidArgument,
                           "unknown fault spec key '" + std::string(key) +
                               "' (seed/flip/drop/dup/nak/burst/stuck)");
    }
  }
  *out = cfg;
  return Status();
}

}  // namespace ulp::link
