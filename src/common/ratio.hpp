// Exact rational clock-domain coupling.
//
// Co-simulating two clock domains means answering "how many target-clock
// ticks are due after each source-clock cycle?". A floating-point
// accumulator answers it approximately and drifts over long runs for
// non-dyadic frequency ratios; this class keeps the Bresenham-style
// integer remainder instead, so the schedule is exact for arbitrarily many
// cycles and — equally important for the fast-forward scheduler — whole
// windows of source cycles can be advanced in O(1) without replaying the
// per-cycle loop.
#pragma once

#include <cmath>
#include <numeric>

#include "common/status.hpp"
#include "common/types.hpp"

namespace ulp {

class ClockRatio {
 public:
  /// Accrues `target_hz / source_hz` target ticks per source cycle.
  /// Frequencies must be integral Hz (every datasheet frequency is).
  ClockRatio(double target_hz, double source_hz)
      : num_(hz_to_int(target_hz)), den_(hz_to_int(source_hz)) {
    const u64 g = std::gcd(num_, den_);
    num_ /= g;
    den_ /= g;
  }

  /// An exact ratio from a raw integer fraction, bypassing the Hz sanity
  /// bound — e.g. picoseconds per tick (1e12 / ticks_per_second), which the
  /// Perfetto exporter uses to rebase every clock domain onto one timeline.
  [[nodiscard]] static ClockRatio from_fraction(u64 num, u64 den) {
    ULP_CHECK(num > 0 && den > 0, "clock ratio needs a positive fraction");
    return ClockRatio(num, den, 0);
  }

  /// Advance one source cycle; returns the target ticks now due.
  u64 tick() {
    acc_ += num_;
    const u64 k = acc_ / den_;
    acc_ -= k * den_;
    return k;
  }

  /// Advance `source_cycles` source cycles at once; returns the total
  /// target ticks due (identical to summing tick() that many times).
  u64 tick_many(u64 source_cycles) {
    ULP_CHECK(source_cycles == 0 ||
                  num_ <= (~0ull - acc_) / source_cycles,
              "clock ratio advance would overflow");
    const u64 total = acc_ + num_ * source_cycles;
    acc_ = total % den_;
    return total / den_;
  }

  /// Source cycles until tick() next returns a non-zero count (>= 1).
  [[nodiscard]] u64 cycles_to_next_tick() const {
    return (den_ - acc_ + num_ - 1) / num_;
  }

  /// Target ticks that `source_cycles` more source cycles would deliver,
  /// without advancing the schedule.
  [[nodiscard]] u64 ticks_within(u64 source_cycles) const {
    ULP_CHECK(source_cycles == 0 ||
                  num_ <= (~0ull - acc_) / source_cycles,
              "clock ratio query would overflow");
    return (acc_ + num_ * source_cycles) / den_;
  }

  /// The largest number of source cycles that delivers at most `ticks`
  /// target ticks, without advancing the schedule. Can be 0 when the
  /// target clock is faster than the source and the very next source
  /// cycle's batch already exceeds `ticks`. Lets a multi-domain scheduler
  /// cap a shared stride so no domain overruns its quiescent horizon.
  [[nodiscard]] u64 cycles_for_at_most_ticks(u64 ticks) const {
    ULP_CHECK(ticks < ~0ull / den_, "clock ratio query would overflow");
    // max S with (acc_ + num_*S) / den_ <= ticks, i.e.
    //            acc_ + num_*S < (ticks + 1) * den_.
    const u64 bound = (ticks + 1) * den_ - acc_;  // > 0 since acc_ < den_
    return (bound - 1) / num_;
  }

  /// One fast-forward stride: `cycles` source cycles consumed, `ticks`
  /// target ticks they delivered.
  struct TickRun {
    u64 cycles;
    u64 ticks;
  };

  /// Advance the schedule by the smallest whole number of source cycles
  /// that delivers at least `want` ticks. `ticks` can exceed `want` when
  /// the target clock is faster than the source (the final source cycle's
  /// batch is indivisible) — exactly the batching tick() produces.
  TickRun consume_ticks(u64 want) {
    ULP_CHECK(want > 0, "consume_ticks needs a positive tick count");
    ULP_CHECK(want <= ~0ull / den_, "clock ratio advance would overflow");
    const u64 need = want * den_ - acc_;  // acc_ < den_ <= want*den_
    const u64 cycles = (need + num_ - 1) / num_;
    const u64 total = acc_ + num_ * cycles;
    acc_ = total % den_;
    return {cycles, total / den_};
  }

  /// Restart the schedule (program load / reset).
  void reset() { acc_ = 0; }

  [[nodiscard]] u64 numerator() const { return num_; }
  [[nodiscard]] u64 denominator() const { return den_; }
  [[nodiscard]] u64 accumulator() const { return acc_; }

  /// Restore a saved accumulator. The acc < den invariant is enforced —
  /// snapshot restore validates before calling this.
  void set_accumulator(u64 acc) {
    ULP_CHECK(acc < den_, "clock ratio accumulator out of range");
    acc_ = acc;
  }

 private:
  ClockRatio(u64 num, u64 den, int /*tag*/) : num_(num), den_(den) {
    const u64 g = std::gcd(num_, den_);
    num_ /= g;
    den_ /= g;
  }

  static constexpr u64 kMaxHz = 10'000'000'000ull;  ///< 10 GHz sanity bound.

  static u64 hz_to_int(double hz) {
    ULP_CHECK(hz > 0, "clock frequencies must be positive");
    const double rounded = std::round(hz);
    ULP_CHECK(std::abs(hz - rounded) < 1e-3 && rounded <= static_cast<double>(kMaxHz),
              "clock frequency must be integral Hz");
    return static_cast<u64>(rounded);
  }

  u64 num_;
  u64 den_;
  u64 acc_ = 0;
};

}  // namespace ulp
