// Tiny environment-variable helpers for runtime switches.
#pragma once

#include <cstdlib>
#include <cstring>

namespace ulp {

/// True when `name` is set to anything other than "" or "0". Raw getenv
/// is not thread-safe against setenv: simulation code must not call this
/// directly but go through common/config.hpp, which captures each flag
/// once at process start into an immutable default (tests and CLIs
/// override per instance or via config setters instead of setenv).
[[nodiscard]] inline bool env_flag(const char* name) {
  const char* v = std::getenv(name);
  return v != nullptr && v[0] != '\0' && std::strcmp(v, "0") != 0;
}

}  // namespace ulp
