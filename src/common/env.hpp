// Tiny environment-variable helpers for runtime switches.
#pragma once

#include <cstdlib>
#include <cstring>

namespace ulp {

/// True when `name` is set to anything other than "" or "0". Used for
/// escape hatches like ULP_REFERENCE_STEPPING; read at each construction
/// site (not cached) so tests may flip the variable between instances.
[[nodiscard]] inline bool env_flag(const char* name) {
  const char* v = std::getenv(name);
  return v != nullptr && v[0] != '\0' && std::strcmp(v, "0") != 0;
}

}  // namespace ulp
