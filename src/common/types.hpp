// Fundamental scalar aliases shared by every module of the simulator.
#pragma once

#include <cstdint>
#include <cstddef>

namespace ulp {

using u8 = std::uint8_t;
using u16 = std::uint16_t;
using u32 = std::uint32_t;
using u64 = std::uint64_t;
using i8 = std::int8_t;
using i16 = std::int16_t;
using i32 = std::int32_t;
using i64 = std::int64_t;

/// Simulated time, measured in clock cycles of the component's own domain.
using Cycle = std::uint64_t;

/// Byte address in a 32-bit physical address space.
using Addr = std::uint32_t;

}  // namespace ulp
