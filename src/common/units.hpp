// Thin physical-unit helpers.
//
// Power/energy bookkeeping mixes quantities from the PULP power model
// (milliwatts, megahertz) and MCU datasheets (µA/MHz at a supply voltage);
// everything is normalised here to SI base units (Hz, V, W, J, s) stored in
// doubles, with named constructors so call sites read like the datasheets.
#pragma once

namespace ulp {

constexpr double kKilo = 1e3;
constexpr double kMega = 1e6;
constexpr double kGiga = 1e9;
constexpr double kMilli = 1e-3;
constexpr double kMicro = 1e-6;
constexpr double kNano = 1e-9;

[[nodiscard]] constexpr double mhz(double v) { return v * kMega; }
[[nodiscard]] constexpr double khz(double v) { return v * kKilo; }
[[nodiscard]] constexpr double mw(double v) { return v * kMilli; }
[[nodiscard]] constexpr double uw(double v) { return v * kMicro; }
[[nodiscard]] constexpr double ua(double v) { return v * kMicro; }

/// MCU datasheet idiom: dynamic current of c µA/MHz at supply vdd gives
/// power = c * 1e-6 [A/MHz] * f[MHz] * vdd [V].
[[nodiscard]] constexpr double ua_per_mhz_to_watts(double ua_per_mhz,
                                                   double freq_hz,
                                                   double vdd) {
  return ua_per_mhz * kMicro * (freq_hz / kMega) * vdd;
}

}  // namespace ulp
