// Platform memory map shared by the cluster model, the code generator and
// the offload runtime. One header so generated code and simulated hardware
// can never disagree about where things live.
#pragma once

#include "common/types.hpp"

namespace ulp::memmap {

inline constexpr Addr kTcdmBase = 0x10000000;   ///< Cluster L1 scratchpad.
inline constexpr Addr kPeriphBase = 0x10200000; ///< Cluster peripherals.
inline constexpr Addr kDmaBase = kPeriphBase + 0x0000;
inline constexpr Addr kL2Base = 0x1C000000;     ///< SoC L2 memory.

/// L2 staging convention shared by the offload runtime and the kernels:
/// the host deposits map(to:) payloads at kL2Input, map(from:) results
/// appear at kL2Output; the first 32 KiB stay free for boot images.
inline constexpr Addr kL2Input = kL2Base + 0x8000;
inline constexpr Addr kL2Output = kL2Base + 0x18000;

/// Multi-cluster scale-out: on the shared host link, cluster i's L2 is
/// aliased at kL2Base + i * kClusterL2Stride. The QSPI router strips the
/// alias offset, so each cluster still sees its own L2 at kL2Base and
/// single-cluster kernels/drivers run unchanged on any cluster. 16 MiB
/// windows comfortably cover the 128 KiB L2s and keep the arithmetic to a
/// shift.
inline constexpr Addr kClusterL2Stride = 0x01000000;
[[nodiscard]] constexpr Addr cluster_l2_base(u32 cluster) {
  return kL2Base + static_cast<Addr>(cluster) * kClusterL2Stride;
}

}  // namespace ulp::memmap
