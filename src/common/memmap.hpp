// Platform memory map shared by the cluster model, the code generator and
// the offload runtime. One header so generated code and simulated hardware
// can never disagree about where things live.
#pragma once

#include "common/types.hpp"

namespace ulp::memmap {

inline constexpr Addr kTcdmBase = 0x10000000;   ///< Cluster L1 scratchpad.
inline constexpr Addr kPeriphBase = 0x10200000; ///< Cluster peripherals.
inline constexpr Addr kDmaBase = kPeriphBase + 0x0000;
inline constexpr Addr kL2Base = 0x1C000000;     ///< SoC L2 memory.

/// L2 staging convention shared by the offload runtime and the kernels:
/// the host deposits map(to:) payloads at kL2Input, map(from:) results
/// appear at kL2Output; the first 32 KiB stay free for boot images.
inline constexpr Addr kL2Input = kL2Base + 0x8000;
inline constexpr Addr kL2Output = kL2Base + 0x18000;

}  // namespace ulp::memmap
