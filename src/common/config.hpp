// Process-wide immutable simulation defaults.
//
// Simulation objects used to call getenv() at construction time; once many
// HeteroSystem/Cluster instances run on concurrent worker threads (the
// batch campaign engine), per-construction getenv is a data race against
// any setenv and makes a mid-campaign environment change produce a mix of
// stepping modes. The defaults here are captured from the environment
// exactly once — at first use — and are immutable afterwards, so every
// simulation in the process observes the same configuration. Tests and
// CLIs that need a different default inject it explicitly *before* the
// first simulation is constructed (or per instance, via
// ClusterParams::reference_stepping, which always wins).
#pragma once

#include <atomic>
#include <cstdlib>

#include "common/env.hpp"

namespace ulp::config {

namespace detail {
/// Tri-state latch: -1 = not yet captured, 0/1 = captured value.
inline std::atomic<int>& reference_stepping_state() {
  static std::atomic<int> state{-1};
  return state;
}
}  // namespace detail

/// The process-wide default stepping mode: true = per-cycle reference
/// loop, false = quiescence fast-forward. Captured from the
/// ULP_REFERENCE_STEPPING environment variable on first call; every later
/// call returns the same value regardless of setenv. Thread-safe.
[[nodiscard]] inline bool reference_stepping_default() {
  auto& state = detail::reference_stepping_state();
  int v = state.load(std::memory_order_acquire);
  if (v < 0) {
    int captured = env_flag("ULP_REFERENCE_STEPPING") ? 1 : 0;
    // First caller wins; a concurrent first call captures the same
    // environment, so the race is benign either way.
    if (!state.compare_exchange_strong(v, captured,
                                       std::memory_order_acq_rel)) {
      return v == 1;
    }
    return captured == 1;
  }
  return v == 1;
}

/// Explicit injection of the process default (CLI flags, tests). Must run
/// before simulations that should observe it are constructed; instances
/// already built keep the mode they latched.
inline void set_reference_stepping_default(bool reference) {
  detail::reference_stepping_state().store(reference ? 1 : 0,
                                           std::memory_order_release);
}

namespace detail {
inline std::atomic<int>& block_cache_state() {
  static std::atomic<int> state{-1};
  return state;
}
}  // namespace detail

/// The process-wide default for the ISS basic-block translation cache:
/// true = decode-once cached blocks with threaded dispatch on the
/// fast-forward path, false = plain per-instruction dispatch. ON unless the
/// ULP_BLOCK_CACHE environment variable is exactly "0" (mirroring the
/// stepping latch: captured once at first use, immutable afterwards, so
/// concurrent campaign workers all observe one mode). Reference stepping
/// always executes through the per-cycle decode+switch oracle regardless of
/// this default; ClusterParams::block_cache overrides it per instance.
[[nodiscard]] inline bool block_cache_default() {
  auto& state = detail::block_cache_state();
  int v = state.load(std::memory_order_acquire);
  if (v < 0) {
    const char* e = std::getenv("ULP_BLOCK_CACHE");
    const int captured = (e != nullptr && e[0] == '0' && e[1] == '\0') ? 0 : 1;
    if (!state.compare_exchange_strong(v, captured,
                                       std::memory_order_acq_rel)) {
      return v == 1;
    }
    return captured == 1;
  }
  return v == 1;
}

/// Explicit injection of the block-cache default (CLI flags, tests). Must
/// run before the simulations that should observe it are constructed.
inline void set_block_cache_default(bool on) {
  detail::block_cache_state().store(on ? 1 : 0, std::memory_order_release);
}

namespace detail {
inline std::atomic<int>& multicore_windows_state() {
  static std::atomic<int> state{-1};
  return state;
}
}  // namespace detail

/// The process-wide default for multi-core block windows: when the block
/// cache is active and several cores are runnable between synchronisation
/// points, interleave cached-block execution across them under the
/// bank-conflict-exact TCDM replay instead of falling back to per-cycle
/// stepping. ON unless the ULP_MC_WINDOWS environment variable is exactly
/// "0" (same latch discipline as ULP_BLOCK_CACHE). Meaningless when the
/// block cache itself is off; ClusterParams::multicore_windows overrides it
/// per instance.
[[nodiscard]] inline bool multicore_windows_default() {
  auto& state = detail::multicore_windows_state();
  int v = state.load(std::memory_order_acquire);
  if (v < 0) {
    const char* e = std::getenv("ULP_MC_WINDOWS");
    const int captured = (e != nullptr && e[0] == '0' && e[1] == '\0') ? 0 : 1;
    if (!state.compare_exchange_strong(v, captured,
                                       std::memory_order_acq_rel)) {
      return v == 1;
    }
    return captured == 1;
  }
  return v == 1;
}

/// Explicit injection of the multi-core-window default (CLI flags, tests).
/// Must run before the simulations that should observe it are constructed.
inline void set_multicore_windows_default(bool on) {
  detail::multicore_windows_state().store(on ? 1 : 0,
                                          std::memory_order_release);
}

namespace detail {
inline std::atomic<int>& hwloop_bug_state() {
  static std::atomic<int> state{-1};
  return state;
}
}  // namespace detail

/// Verification self-test fault: when set, cores execute hardware loops one
/// iteration short (an injected off-by-one in the loop-expiry check). The
/// differential fuzzer must detect and shrink this divergence; it exists so
/// the verifier itself can be verified, riscv-dv "bug injection" style.
/// Captured once from ULP_INJECT_HWLOOP_BUG; cores latch it at reset().
/// Never set this outside the fuzzer's self-tests.
[[nodiscard]] inline bool inject_hwloop_bug() {
  auto& state = detail::hwloop_bug_state();
  int v = state.load(std::memory_order_acquire);
  if (v < 0) {
    int captured = env_flag("ULP_INJECT_HWLOOP_BUG") ? 1 : 0;
    if (!state.compare_exchange_strong(v, captured,
                                       std::memory_order_acq_rel)) {
      return v == 1;
    }
    return captured == 1;
  }
  return v == 1;
}

/// Test hook: toggles the injected hardware-loop fault. Cores constructed
/// (reset) afterwards observe the new value; restore to false when done.
inline void set_inject_hwloop_bug(bool inject) {
  detail::hwloop_bug_state().store(inject ? 1 : 0, std::memory_order_release);
}

namespace detail {
inline std::atomic<int>& snapshot_bug_state() {
  static std::atomic<int> state{-1};
  return state;
}
}  // namespace detail

/// Verification self-test fault for the snapshot layer: when set, Core
/// restore deliberately drops one hardware-loop field (a simulated
/// "forgot to serialize it" bug). The differential snapshot fuzzer must
/// detect and shrink the resulting divergence between the continuous and
/// the save/restore run. Captured once from ULP_INJECT_SNAPSHOT_BUG.
/// Never set this outside the fuzzer's self-tests.
[[nodiscard]] inline bool inject_snapshot_bug() {
  auto& state = detail::snapshot_bug_state();
  int v = state.load(std::memory_order_acquire);
  if (v < 0) {
    int captured = env_flag("ULP_INJECT_SNAPSHOT_BUG") ? 1 : 0;
    if (!state.compare_exchange_strong(v, captured,
                                       std::memory_order_acq_rel)) {
      return v == 1;
    }
    return captured == 1;
  }
  return v == 1;
}

/// Test hook: toggles the injected snapshot-restore fault. Restores
/// performed afterwards observe the new value; restore to false when done.
inline void set_inject_snapshot_bug(bool inject) {
  detail::snapshot_bug_state().store(inject ? 1 : 0,
                                     std::memory_order_release);
}

}  // namespace ulp::config
