// Q-format fixed-point arithmetic.
//
// The paper's benchmarks use 16-bit fixed point (svm, cnn, matmul-fixed) and
// 32-bit fixed point with software-emulated 64-bit accumulation (hog). The
// golden references in src/kernels use these helpers; the ISS kernels must
// produce bit-identical results, so rounding behaviour is pinned down here:
// multiplication keeps the full double-width product and performs an
// arithmetic right shift (truncation toward -inf), matching what the
// generated mul+srai instruction sequence computes.
#pragma once

#include <algorithm>
#include <limits>

#include "common/types.hpp"

namespace ulp {

/// Saturate a wide integer to the range of a narrower signed type.
template <typename Narrow, typename Wide>
[[nodiscard]] constexpr Narrow saturate(Wide v) {
  constexpr Wide lo = static_cast<Wide>(std::numeric_limits<Narrow>::min());
  constexpr Wide hi = static_cast<Wide>(std::numeric_limits<Narrow>::max());
  return static_cast<Narrow>(std::clamp(v, lo, hi));
}

/// 16-bit fixed point with FRAC fractional bits (Q(15-FRAC).FRAC).
template <int FRAC>
struct Fix16 {
  static_assert(FRAC > 0 && FRAC < 16);
  i16 raw = 0;

  constexpr Fix16() = default;
  constexpr explicit Fix16(i16 r) : raw(r) {}

  [[nodiscard]] static constexpr Fix16 from_raw(i16 r) { return Fix16(r); }
  [[nodiscard]] static constexpr Fix16 from_double(double v) {
    return Fix16(saturate<i16, i64>(static_cast<i64>(v * (1 << FRAC))));
  }
  [[nodiscard]] constexpr double to_double() const {
    return static_cast<double>(raw) / (1 << FRAC);
  }

  friend constexpr Fix16 operator+(Fix16 a, Fix16 b) {
    return Fix16(static_cast<i16>(a.raw + b.raw));  // wraps, like the ISS add
  }
  friend constexpr Fix16 operator-(Fix16 a, Fix16 b) {
    return Fix16(static_cast<i16>(a.raw - b.raw));
  }
  /// Full-precision product, arithmetic shift back: (a*b) >> FRAC.
  friend constexpr Fix16 operator*(Fix16 a, Fix16 b) {
    const i32 p = static_cast<i32>(a.raw) * static_cast<i32>(b.raw);
    return Fix16(static_cast<i16>(p >> FRAC));
  }
  friend constexpr bool operator==(Fix16 a, Fix16 b) { return a.raw == b.raw; }
  friend constexpr bool operator<(Fix16 a, Fix16 b) { return a.raw < b.raw; }
};

/// The benchmarks' 16-bit format: Q4.11 with one sign bit (range ±16).
using q16_t = Fix16<11>;

/// 32-bit fixed point used by hog (high dynamic range), Q(31-FRAC).FRAC.
template <int FRAC>
struct Fix32 {
  static_assert(FRAC > 0 && FRAC < 32);
  i32 raw = 0;

  constexpr Fix32() = default;
  constexpr explicit Fix32(i32 r) : raw(r) {}

  [[nodiscard]] static constexpr Fix32 from_raw(i32 r) { return Fix32(r); }
  [[nodiscard]] static constexpr Fix32 from_double(double v) {
    return Fix32(saturate<i32, i64>(static_cast<i64>(v * (i64{1} << FRAC))));
  }
  [[nodiscard]] constexpr double to_double() const {
    return static_cast<double>(raw) / (i64{1} << FRAC);
  }

  friend constexpr Fix32 operator+(Fix32 a, Fix32 b) {
    return Fix32(static_cast<i32>(static_cast<u32>(a.raw) +
                                  static_cast<u32>(b.raw)));
  }
  friend constexpr Fix32 operator-(Fix32 a, Fix32 b) {
    return Fix32(static_cast<i32>(static_cast<u32>(a.raw) -
                                  static_cast<u32>(b.raw)));
  }
  /// 32x32 -> 64-bit product then shift: this is the operation hog must
  /// SW-emulate on OR10N (no umull) and gets in hardware on Cortex-M.
  friend constexpr Fix32 operator*(Fix32 a, Fix32 b) {
    const i64 p = static_cast<i64>(a.raw) * static_cast<i64>(b.raw);
    return Fix32(static_cast<i32>(p >> FRAC));
  }
  friend constexpr bool operator==(Fix32 a, Fix32 b) { return a.raw == b.raw; }
};

/// The hog format: Q15.16.
using q32_t = Fix32<16>;

}  // namespace ulp
