// Strict numeric parsing for command-line arguments.
//
// The bench/fuzz/campaign CLIs used to feed argv straight into std::stoul
// (throws an uncaught std::invalid_argument on garbage) or strtoul (accepts
// "12abc" and silently truncates out-of-range values through a cast). These
// helpers accept a value only when the *entire* argument parses and the
// result fits the destination type, so every binary can reject malformed
// input with one error line + usage and exit code 2 instead of aborting on
// an escaped exception.
#pragma once

#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <limits>
#include <string>

#include "common/types.hpp"

namespace ulp::cli {

/// Parses a full string as an unsigned integer (base 10, or 0x-prefixed
/// hex / 0-prefixed octal when base == 0). Returns false — leaving *out
/// untouched — unless the whole string is a valid number within
/// [0, max_value]. Leading whitespace and signs are rejected (strtoull
/// would skip the former and wrap a '-' through 2^64).
inline bool parse_u64(const char* s, u64* out, u64 max_value = ~0ull,
                      int base = 10) {
  if (s == nullptr || *s == '\0' || *s == '-' || *s == '+' ||
      std::isspace(static_cast<unsigned char>(*s)) != 0) {
    return false;
  }
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(s, &end, base);
  if (end == s || *end != '\0' || errno == ERANGE) return false;
  if (v > max_value) return false;
  *out = v;
  return true;
}

/// parse_u64 narrowed to u32 (the common CLI case: counts, sizes, flags).
inline bool parse_u32(const char* s, u32* out,
                      u32 max_value = std::numeric_limits<u32>::max(),
                      int base = 10) {
  u64 v = 0;
  if (!parse_u64(s, &v, max_value, base)) return false;
  *out = static_cast<u32>(v);
  return true;
}

/// Parses a full string as a finite double. Rejects partial parses
/// ("1.5x"), empty strings, leading whitespace and over/underflow.
inline bool parse_double(const char* s, double* out) {
  if (s == nullptr || *s == '\0' ||
      std::isspace(static_cast<unsigned char>(*s)) != 0) {
    return false;
  }
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(s, &end);
  if (end == s || *end != '\0' || errno == ERANGE) return false;
  *out = v;
  return true;
}

}  // namespace ulp::cli
