// Deterministic pseudo-random number generator for workload synthesis.
//
// Every benchmark input in this repository is synthetic (the paper's camera
// frames / sensor traces are not available); xoshiro-style generation keyed
// by a fixed seed makes every experiment bit-reproducible across runs and
// platforms, which the golden-reference tests rely on.
#pragma once

#include "common/types.hpp"

namespace ulp {

/// splitmix64/xorshift-based PRNG; not cryptographic, but stable and fast.
class Rng {
 public:
  explicit constexpr Rng(u64 seed = 0x9E3779B97F4A7C15ull) : state_(seed) {
    // Avoid the all-zero fixed point of xorshift.
    if (state_ == 0) state_ = 1;
  }

  constexpr u64 next_u64() {
    u64 z = (state_ += 0x9E3779B97F4A7C15ull);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
  }

  constexpr u32 next_u32() { return static_cast<u32>(next_u64() >> 32); }

  /// Uniform in [lo, hi] inclusive.
  constexpr i32 uniform(i32 lo, i32 hi) {
    const u64 span = static_cast<u64>(static_cast<i64>(hi) - lo + 1);
    return static_cast<i32>(static_cast<i64>(next_u64() % span) + lo);
  }

  /// Uniform double in [0, 1).
  constexpr double uniform01() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  // Raw generator state, for exact snapshot/restore of components that
  // own an Rng mid-stream (e.g. the link fault injector).
  [[nodiscard]] constexpr u64 state() const { return state_; }
  constexpr void set_state(u64 state) { state_ = state == 0 ? 1 : state; }

 private:
  u64 state_;
};

/// Splittable counter-derived seed: a stateless splitmix64 finalizer over
/// (base, stream). The batch campaign engine keys every job's input data
/// and fault schedule to derive_seed(campaign_seed, job_index), so a job's
/// randomness is a pure function of its position in the declarative matrix
/// — independent of execution order, worker count, and of every other job.
/// Streams of the same base never collide for distinct indices (the mix is
/// a bijection of the counter), and seed 0 is avoided for Rng's sake.
[[nodiscard]] constexpr u64 derive_seed(u64 base, u64 stream) {
  u64 z = base + 0x9E3779B97F4A7C15ull * (stream + 1);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  z ^= z >> 31;
  return z == 0 ? 1 : z;
}

}  // namespace ulp
