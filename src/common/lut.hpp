// Fixed-point function tables (LUTs).
//
// Non-linear functions in the benchmarks (exp for the RBF SVM kernel, tanh
// for the CNN activation) are evaluated on the embedded targets through
// direct-indexed lookup tables placed in data memory — the standard ULP
// fixed-point idiom. The table *contents* and the *indexing rule* are defined
// once here and shared by the golden references and by the kernel generators
// (which emit the same shift/clamp/load sequence), so results are
// bit-identical between reference and simulated execution.
#pragma once

#include <cmath>
#include <vector>

#include "common/fixed_point.hpp"
#include "common/status.hpp"
#include "common/types.hpp"

namespace ulp {

/// A direct-indexed LUT over non-negative q16 inputs:
///   index = min(x_raw >> index_shift, size-1), y = table[index].
/// Negative inputs are handled by the caller (sign symmetry).
struct Lut16 {
  std::vector<i16> table;
  int index_shift = 0;

  [[nodiscard]] i16 lookup(i32 x_raw) const {
    ULP_CHECK(x_raw >= 0, "Lut16::lookup requires non-negative input");
    auto idx = static_cast<size_t>(x_raw >> index_shift);
    if (idx >= table.size()) idx = table.size() - 1;
    return table[idx];
  }

  /// Bytes the table occupies in the accelerator binary image.
  [[nodiscard]] size_t size_bytes() const { return table.size() * sizeof(i16); }
};

/// exp(-x) for x in Q4.11, domain [0, size << shift raw) i.e. ~[0, 8.0).
/// Used by the RBF SVM kernel: K(a,b) = exp(-gamma * ||a-b||^2).
[[nodiscard]] inline Lut16 make_exp_neg_lut(int index_shift = 5,
                                            size_t size = 512) {
  Lut16 lut;
  lut.index_shift = index_shift;
  lut.table.resize(size);
  for (size_t i = 0; i < size; ++i) {
    // Representative input: midpoint of the bucket, in q16.
    const double x =
        (static_cast<double>(i << index_shift) + (1 << index_shift) / 2.0) /
        (1 << 11);
    lut.table[i] = q16_t::from_double(std::exp(-x)).raw;
  }
  return lut;
}

/// tanh(x) for x >= 0 in Q4.11; callers apply tanh(-x) = -tanh(x).
/// Used by the CNN activation layers.
[[nodiscard]] inline Lut16 make_tanh_lut(int index_shift = 4,
                                         size_t size = 512) {
  Lut16 lut;
  lut.index_shift = index_shift;
  lut.table.resize(size);
  for (size_t i = 0; i < size; ++i) {
    const double x =
        (static_cast<double>(i << index_shift) + (1 << index_shift) / 2.0) /
        (1 << 11);
    lut.table[i] = q16_t::from_double(std::tanh(x)).raw;
  }
  return lut;
}

/// Signed tanh via the symmetric LUT rule shared with the generated kernels.
[[nodiscard]] inline i16 tanh_lut_signed(const Lut16& lut, i32 x_raw) {
  if (x_raw >= 0) return lut.lookup(x_raw);
  return static_cast<i16>(-lut.lookup(-x_raw));
}

/// Integer square root of a 64-bit value (returns floor(sqrt(v))).
/// hog block normalisation uses this exact bit-by-bit routine; the kernel
/// generator emits the same algorithm, so results match bit-for-bit.
[[nodiscard]] constexpr u32 isqrt64(u64 v) {
  u64 rem = 0;
  u64 root = 0;
  for (int i = 0; i < 32; ++i) {
    root <<= 1;
    rem = (rem << 2) | (v >> 62);
    v <<= 2;
    if (root < rem) {
      rem -= root + 1;
      root += 2;
    }
  }
  return static_cast<u32>(root >> 1);
}

}  // namespace ulp
