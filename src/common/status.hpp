// Error handling for the simulator.
//
// Configuration/usage errors (bad addresses, malformed programs, invalid
// operating points) throw SimError: they indicate a broken model setup, not a
// recoverable condition, and the tests assert on them. Hot simulation paths
// never throw; they are validated up front.
#pragma once

#include <stdexcept>
#include <string>

namespace ulp {

/// Raised on invalid simulator configuration or on behaviour that a real
/// platform would treat as a hard fault (bus error, illegal instruction).
class SimError : public std::runtime_error {
 public:
  explicit SimError(const std::string& what) : std::runtime_error(what) {}
};

/// Recoverable-error result for I/O-facing APIs (exporters, CSV writers)
/// where the caller may legitimately want to continue — unlike ULP_CHECK,
/// which is reserved for broken model setup. Default-constructed = success.
class [[nodiscard]] Status {
 public:
  Status() = default;

  static Status Error(std::string message) {
    Status s;
    s.ok_ = false;
    s.message_ = std::move(message);
    return s;
  }

  [[nodiscard]] bool ok() const { return ok_; }
  [[nodiscard]] const std::string& message() const { return message_; }

  /// Bridge to the throwing convention: raises SimError if not ok.
  void or_throw() const {
    if (!ok_) throw SimError(message_);
  }

 private:
  bool ok_ = true;
  std::string message_;
};

namespace detail {
[[noreturn]] inline void fail(const char* cond, const char* file, int line,
                              const std::string& msg) {
  throw SimError(std::string(file) + ":" + std::to_string(line) +
                 ": check failed (" + cond + "): " + msg);
}
}  // namespace detail

}  // namespace ulp

/// Precondition check that survives in release builds; throws SimError.
#define ULP_CHECK(cond, msg)                                       \
  do {                                                             \
    if (!(cond)) ::ulp::detail::fail(#cond, __FILE__, __LINE__, (msg)); \
  } while (false)
