// Error handling for the simulator.
//
// Configuration/usage errors (bad addresses, malformed programs, invalid
// operating points) throw SimError: they indicate a broken model setup, not a
// recoverable condition, and the tests assert on them. Hot simulation paths
// never throw; they are validated up front.
#pragma once

#include <stdexcept>
#include <string>

#include "common/types.hpp"

namespace ulp {

/// Raised on invalid simulator configuration or on behaviour that a real
/// platform would treat as a hard fault (bus error, illegal instruction).
class SimError : public std::runtime_error {
 public:
  explicit SimError(const std::string& what) : std::runtime_error(what) {}
};

/// Machine-readable failure class for Status. The offload runtime branches
/// on these (a CRC failure is retried, a watchdog timeout falls back to
/// the host-reference implementation); message() carries the detail.
enum class StatusCode : u8 {
  kOk = 0,
  kUnknown,           ///< Legacy Error(message) without a class.
  kInvalidArgument,   ///< Malformed spec/config handed to a parser.
  kIoError,           ///< Filesystem/stream failure (exporters, CSV).
  kCrcError,          ///< Framed link transfer failed its CRC check.
  kTimeout,           ///< EOC watchdog expired (stuck line, hung boot).
  kRetriesExhausted,  ///< Bounded retry budget spent without success.
};

[[nodiscard]] constexpr const char* status_code_name(StatusCode c) {
  switch (c) {
    case StatusCode::kOk: return "ok";
    case StatusCode::kUnknown: return "unknown";
    case StatusCode::kInvalidArgument: return "invalid-argument";
    case StatusCode::kIoError: return "io-error";
    case StatusCode::kCrcError: return "crc-error";
    case StatusCode::kTimeout: return "timeout";
    case StatusCode::kRetriesExhausted: return "retries-exhausted";
  }
  return "?";
}

/// Recoverable-error result for I/O-facing APIs (exporters, CSV writers)
/// and for the robust offload path, where a failure is a legitimate
/// outcome the caller reacts to (retry, degrade to host execution) —
/// unlike ULP_CHECK, which is reserved for broken model setup.
/// Default-constructed = success.
class [[nodiscard]] Status {
 public:
  Status() = default;

  static Status Error(std::string message) {
    return Error(StatusCode::kUnknown, std::move(message));
  }

  static Status Error(StatusCode code, std::string message) {
    Status s;
    s.ok_ = false;
    s.code_ = code;
    s.message_ = std::move(message);
    return s;
  }

  [[nodiscard]] bool ok() const { return ok_; }
  [[nodiscard]] StatusCode code() const { return code_; }
  [[nodiscard]] const std::string& message() const { return message_; }

  /// Bridge to the throwing convention: raises SimError if not ok.
  void or_throw() const {
    if (!ok_) throw SimError(message_);
  }

 private:
  bool ok_ = true;
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

namespace detail {
[[noreturn]] inline void fail(const char* cond, const char* file, int line,
                              const std::string& msg) {
  throw SimError(std::string(file) + ":" + std::to_string(line) +
                 ": check failed (" + cond + "): " + msg);
}
}  // namespace detail

}  // namespace ulp

/// Precondition check that survives in release builds; throws SimError.
#define ULP_CHECK(cond, msg)                                       \
  do {                                                             \
    if (!(cond)) ::ulp::detail::fail(#cond, __FILE__, __LINE__, (msg)); \
  } while (false)
