#include "snapshot/snapshot.hpp"

#include <fstream>

#include "link/crc32.hpp"

namespace ulp::snapshot {

namespace {

constexpr size_t kHeaderBytes = 4 + 4 + 8 + 4;

void append_u32(std::vector<u8>* out, u32 v) {
  for (int i = 0; i < 4; ++i) out->push_back(static_cast<u8>(v >> (8 * i)));
}

void append_u64(std::vector<u8>* out, u64 v) {
  for (int i = 0; i < 8; ++i) out->push_back(static_cast<u8>(v >> (8 * i)));
}

u32 read_u32(const u8* p) {
  return static_cast<u32>(p[0]) | static_cast<u32>(p[1]) << 8 |
         static_cast<u32>(p[2]) << 16 | static_cast<u32>(p[3]) << 24;
}

u64 read_u64(const u8* p) {
  u64 v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<u64>(p[i]) << (8 * i);
  return v;
}

}  // namespace

std::vector<u8> Writer::finish() const {
  ULP_CHECK(open_.empty(), "finish with an unterminated section");
  std::vector<u8> out;
  out.reserve(kHeaderBytes + payload_.size());
  append_u32(&out, kMagic);
  append_u32(&out, kVersion);
  append_u64(&out, payload_.size());
  append_u32(&out, link::crc32(payload_));
  out.insert(out.end(), payload_.begin(), payload_.end());
  return out;
}

Status Reader::open(std::span<const u8> bytes) {
  sections_.clear();
  cursor_ = limit_ = 0;
  status_ = Status::Error(StatusCode::kInvalidArgument,
                          "snapshot reader not opened");
  if (bytes.size() < kHeaderBytes) {
    return Status::Error(StatusCode::kIoError,
                         "snapshot truncated: no room for header (" +
                             std::to_string(bytes.size()) + " bytes)");
  }
  const u32 magic = read_u32(bytes.data());
  if (magic != kMagic) {
    return Status::Error(StatusCode::kInvalidArgument,
                         "not a snapshot: bad magic");
  }
  const u32 version = read_u32(bytes.data() + 4);
  if (version != kVersion) {
    return Status::Error(StatusCode::kInvalidArgument,
                         "unsupported snapshot version " +
                             std::to_string(version) + " (expected " +
                             std::to_string(kVersion) + ")");
  }
  const u64 payload_len = read_u64(bytes.data() + 8);
  if (payload_len != bytes.size() - kHeaderBytes) {
    return Status::Error(StatusCode::kIoError,
                         "snapshot truncated: header claims " +
                             std::to_string(payload_len) + " payload bytes, " +
                             std::to_string(bytes.size() - kHeaderBytes) +
                             " present");
  }
  const u32 crc = read_u32(bytes.data() + 16);
  bytes_ = bytes.subspan(kHeaderBytes);
  if (link::crc32(bytes_) != crc) {
    return Status::Error(StatusCode::kCrcError,
                         "snapshot payload CRC mismatch");
  }
  // Index the top-level sections. Every {id, len} pair must fit exactly.
  size_t at = 0;
  while (at < bytes_.size()) {
    if (bytes_.size() - at < 12) {
      return Status::Error(StatusCode::kInvalidArgument,
                           "snapshot malformed: dangling section header");
    }
    const u32 id = read_u32(bytes_.data() + at);
    const u64 len = read_u64(bytes_.data() + at + 4);
    at += 12;
    if (len > bytes_.size() - at) {
      return Status::Error(StatusCode::kInvalidArgument,
                           "snapshot malformed: section 0x" +
                               std::to_string(id) + " overruns payload");
    }
    sections_.push_back({id, at, at + static_cast<size_t>(len)});
    at += static_cast<size_t>(len);
  }
  status_ = Status{};
  return status_;
}

Status Reader::enter(u32 id) {
  if (!status_.ok()) return status_;
  for (const Section& s : sections_) {
    if (s.id == id) {
      cursor_ = s.begin;
      limit_ = s.end;
      return Status{};
    }
  }
  fail(StatusCode::kInvalidArgument,
       "snapshot missing section id " + std::to_string(id));
  return status_;
}

void Reader::take(u8* out, size_t n) {
  if (!status_.ok()) {
    std::memset(out, 0, n);
    return;
  }
  if (limit_ - cursor_ < n) {
    std::memset(out, 0, n);
    fail(StatusCode::kIoError, "snapshot section underrun");
    return;
  }
  std::memcpy(out, bytes_.data() + cursor_, n);
  cursor_ += n;
}

std::vector<u8> Reader::get_blob() {
  const u64 len = get_u64();
  if (!status_.ok()) return {};
  if (limit_ - cursor_ < len) {
    fail(StatusCode::kIoError, "snapshot blob overruns its section");
    return {};
  }
  std::vector<u8> out(bytes_.begin() + static_cast<std::ptrdiff_t>(cursor_),
                      bytes_.begin() + static_cast<std::ptrdiff_t>(cursor_ + len));
  cursor_ += static_cast<size_t>(len);
  return out;
}

Status write_file(const std::string& path, std::span<const u8> bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out.good()) {
    return Status::Error(StatusCode::kIoError,
                         "cannot open snapshot file for writing: " + path);
  }
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  out.flush();
  if (!out.good()) {
    return Status::Error(StatusCode::kIoError,
                         "short write to snapshot file: " + path);
  }
  return {};
}

Status read_file(const std::string& path, std::vector<u8>* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) {
    return Status::Error(StatusCode::kIoError,
                         "cannot open snapshot file: " + path);
  }
  out->assign(std::istreambuf_iterator<char>(in),
              std::istreambuf_iterator<char>());
  if (in.bad()) {
    return Status::Error(StatusCode::kIoError,
                         "error reading snapshot file: " + path);
  }
  return {};
}

}  // namespace ulp::snapshot
