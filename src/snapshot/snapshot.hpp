// Versioned, stable-byte-format save/restore of simulator state.
//
// A snapshot is a header followed by a flat sequence of sections:
//
//   magic u32 ("ULPS")  version u32  payload_len u64  payload_crc u32
//   { section id u32, section len u64, section bytes }*
//
// All integers are little-endian. Sections are forward-skippable: the
// Reader indexes them by id at open() time, so a restore only has to
// enter() the sections it understands and unknown ids are ignored. The
// header CRC-32 covers the whole payload, which turns truncation and
// byte flips into a clean Status error before any component state is
// touched.
//
// Writer cannot fail (it only appends to a byte vector); Reader uses a
// sticky failure latch: every get_* primitive bounds-checks against the
// current section, and the first underrun or malformed field poisons the
// stream. Component restore code reads a fixed field sequence and
// returns reader.status() — no per-field error plumbing, no UB on bad
// input.
//
// Restore is all-or-nothing by convention: composite components
// (Cluster, HeteroSystem) run the full read sequence twice, first with
// apply=false (validate every field, every geometry check, every nested
// blob — zero mutation), then with apply=true. A snapshot that fails
// validation leaves the target exactly as it was.
#pragma once

#include <cstring>
#include <span>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "common/types.hpp"

namespace ulp::snapshot {

inline constexpr u32 kMagic = 0x53504C55u;  ///< "ULPS" read little-endian.
inline constexpr u32 kVersion = 1;

/// Section ids. Centralised so every component sharing one top-level
/// stream stays collision-free; per-index sections add their index to a
/// base id.
namespace section {
// Cluster snapshots (also the entire payload of a PulpSoc snapshot).
inline constexpr u32 kClusterMeta = 0x10;  ///< Geometry guard.
inline constexpr u32 kClusterProgram = 0x11;
inline constexpr u32 kClusterState = 0x12;
inline constexpr u32 kClusterTcdm = 0x13;
inline constexpr u32 kClusterL2 = 0x14;
inline constexpr u32 kClusterIcache = 0x15;
inline constexpr u32 kClusterEvents = 0x16;
inline constexpr u32 kClusterDma = 0x17;
inline constexpr u32 kClusterCoreBase = 0x40;  ///< + core id (< 0x40 cores).

// HeteroSystem snapshots.
inline constexpr u32 kSysMeta = 0x80;
inline constexpr u32 kSysHostProgram = 0x81;
inline constexpr u32 kSysHostState = 0x82;
inline constexpr u32 kSysHostSram = 0x83;
inline constexpr u32 kSysWire = 0x84;
inline constexpr u32 kSysInjector = 0x85;
inline constexpr u32 kSysClusterBase = 0xA0;  ///< + cluster index (< 32).
}  // namespace section

/// Append-only snapshot builder. Sections nest syntactically (a
/// begin/end pair patches its length back in), but the Reader only
/// indexes the top level — nested component snapshots are stored as
/// complete standalone blobs instead (see put_blob + sub-Reader).
class Writer {
 public:
  void begin_section(u32 id) {
    put_u32(id);
    open_.push_back(payload_.size());
    put_u64(0);  // patched by end_section
  }

  void end_section() {
    ULP_CHECK(!open_.empty(), "end_section without begin_section");
    const size_t at = open_.back();
    open_.pop_back();
    const u64 len = payload_.size() - (at + 8);
    for (int i = 0; i < 8; ++i) {
      payload_[at + i] = static_cast<u8>(len >> (8 * i));
    }
  }

  void put_u8(u8 v) { payload_.push_back(v); }
  void put_u32(u32 v) {
    for (int i = 0; i < 4; ++i) payload_.push_back(static_cast<u8>(v >> (8 * i)));
  }
  void put_u64(u64 v) {
    for (int i = 0; i < 8; ++i) payload_.push_back(static_cast<u8>(v >> (8 * i)));
  }
  void put_i32(i32 v) { put_u32(static_cast<u32>(v)); }
  void put_bool(bool v) { put_u8(v ? 1 : 0); }
  void put_f64(double v) {
    u64 bits = 0;
    std::memcpy(&bits, &v, sizeof bits);
    put_u64(bits);
  }
  /// Raw bytes, no length prefix (fixed-size images).
  void put_bytes(std::span<const u8> bytes) {
    payload_.insert(payload_.end(), bytes.begin(), bytes.end());
  }
  /// Length-prefixed byte string (variable-size payloads).
  void put_blob(std::span<const u8> bytes) {
    put_u64(bytes.size());
    put_bytes(bytes);
  }

  /// Final on-disk/in-memory form: header + payload. The Writer stays
  /// usable (finish() is a pure function of the bytes so far).
  [[nodiscard]] std::vector<u8> finish() const;

 private:
  std::vector<u8> payload_;
  std::vector<size_t> open_;  ///< Offsets of unpatched length fields.
};

/// Bounds-checked snapshot parser with a sticky failure latch.
class Reader {
 public:
  /// Validates magic/version/length/CRC and indexes the top-level
  /// sections. Nothing else is legal on a Reader whose open() failed.
  /// The span must stay alive while the Reader is used.
  [[nodiscard]] Status open(std::span<const u8> bytes);

  /// Positions the cursor at the start of section `id`; subsequent get_*
  /// calls are bounded by that section's end. A missing section latches
  /// (and returns) an error. Re-entering a section rewinds it, which is
  /// what makes the two-pass validate/apply restore possible.
  [[nodiscard]] Status enter(u32 id);

  [[nodiscard]] bool has_section(u32 id) const {
    for (const Section& s : sections_) {
      if (s.id == id) return true;
    }
    return false;
  }

  u8 get_u8() {
    u8 v = 0;
    take(&v, 1);
    return v;
  }
  u32 get_u32() {
    u8 b[4] = {};
    take(b, 4);
    return static_cast<u32>(b[0]) | static_cast<u32>(b[1]) << 8 |
           static_cast<u32>(b[2]) << 16 | static_cast<u32>(b[3]) << 24;
  }
  u64 get_u64() {
    u64 v = 0;
    u8 b[8] = {};
    take(b, 8);
    for (int i = 0; i < 8; ++i) v |= static_cast<u64>(b[i]) << (8 * i);
    return v;
  }
  i32 get_i32() { return static_cast<i32>(get_u32()); }
  bool get_bool() { return get_u8() != 0; }
  double get_f64() {
    const u64 bits = get_u64();
    double v = 0;
    std::memcpy(&v, &bits, sizeof v);
    return v;
  }
  /// Fixed-size read; on underrun the output is zero-filled and the
  /// stream latches failure.
  void get_bytes(std::span<u8> out) { take(out.data(), out.size()); }
  /// Length-prefixed read (pairs with put_blob).
  [[nodiscard]] std::vector<u8> get_blob();

  /// Latch a caller-detected semantic error (geometry mismatch, ...).
  void fail(StatusCode code, std::string message) {
    if (status_.ok()) status_ = Status::Error(code, std::move(message));
  }

  /// Sticky stream status: ok until the first bad field.
  [[nodiscard]] Status status() const { return status_; }

 private:
  struct Section {
    u32 id = 0;
    size_t begin = 0;
    size_t end = 0;
  };

  void take(u8* out, size_t n);

  std::span<const u8> bytes_;
  std::vector<Section> sections_;
  size_t cursor_ = 0;
  size_t limit_ = 0;
  Status status_ = Status::Error(StatusCode::kInvalidArgument,
                                 "snapshot reader not opened");
};

/// Write `bytes` to `path` atomically enough for our purposes (single
/// write, error-checked).
[[nodiscard]] Status write_file(const std::string& path,
                                std::span<const u8> bytes);

/// Read a whole snapshot file into `out`.
[[nodiscard]] Status read_file(const std::string& path, std::vector<u8>* out);

}  // namespace ulp::snapshot
