#include "power/pulp_power.hpp"

#include <array>
#include <cmath>

#include "common/status.hpp"
#include "common/units.hpp"

namespace ulp::power {

namespace {

/// Characterised operating points: V_DD -> (f_max, leakage). The frequency
/// curve follows the super-linear near-threshold behaviour of 28nm FD-SOI;
/// leakage grows with V_DD (DIBL + body effect).
struct OpRow {
  double vdd;
  double fmax_hz;
  double leak_w;
};
constexpr std::array<OpRow, 6> kOpTable = {{
    {0.5, mhz(16), mw(0.10)},
    {0.6, mhz(50), mw(0.15)},
    {0.7, mhz(120), mw(0.22)},
    {0.8, mhz(230), mw(0.32)},
    {0.9, mhz(350), mw(0.46)},
    {1.0, mhz(450), mw(0.65)},
}};

// Dynamic power densities at V_DD = 1.0 V, in W/Hz; scaled by (vdd)^2.
// CALIBRATION: chosen so the matmul benchmark reproduces the paper's
// Figure 3 anchors (~304 GOPS/W peak at ~1.48 mW at the 0.5 V point).
constexpr double kRhoCoreRun = 60e-12;   // per active core
constexpr double kRhoCoreIdle = 4e-12;   // per clock-gated core
constexpr double kRhoMem = 37e-12;       // per TCDM access/cycle
constexpr double kRhoDma = 23e-12;       // DMA engine busy
constexpr double kRhoIcache = 7.6e-12;   // per core-fetch/cycle
constexpr double kRhoSoc = 19e-12;       // FLL, bus, always-on logic

double lerp(double x0, double y0, double x1, double y1, double x) {
  return y0 + (y1 - y0) * (x - x0) / (x1 - x0);
}

template <typename F>
double interp_table(double vdd, F&& field) {
  ULP_CHECK(vdd >= PulpPowerModel::kVddMin - 1e-9 &&
                vdd <= PulpPowerModel::kVddMax + 1e-9,
            "V_DD outside the characterised range");
  for (size_t i = 1; i < kOpTable.size(); ++i) {
    if (vdd <= kOpTable[i].vdd + 1e-12) {
      return lerp(kOpTable[i - 1].vdd, field(kOpTable[i - 1]),
                  kOpTable[i].vdd, field(kOpTable[i]), vdd);
    }
  }
  return field(kOpTable.back());
}

}  // namespace

ActivityFactors ActivityFactors::from_stats(
    const cluster::ClusterStats& stats) {
  ActivityFactors chi;
  const double cycles = static_cast<double>(stats.cycles);
  if (cycles <= 0) return chi;
  for (const auto& c : stats.cores) {
    chi.cores_run += static_cast<double>(c.active_cycles) / cycles;
    chi.cores_idle +=
        static_cast<double>(c.sleep_cycles + c.halted_cycles) / cycles;
  }
  // TCDM access counters include core and DMA traffic.
  u64 accesses = 0;
  for (const auto& c : stats.cores) accesses += c.loads + c.stores;
  accesses += stats.dma.bytes_moved / 4;
  chi.mem = static_cast<double>(accesses) / cycles;
  chi.dma = static_cast<double>(stats.dma.busy_cycles) / cycles;
  return chi;
}

ActivityFactors ActivityFactors::all_on(u32 num_cores) {
  ActivityFactors chi;
  chi.cores_run = num_cores;
  chi.cores_idle = 0;
  chi.mem = num_cores;  // every core touching memory every cycle
  chi.dma = 1.0;
  return chi;
}

double PulpPowerModel::fmax_hz(double vdd, BiasMode bias) const {
  const double base =
      interp_table(vdd, [](const OpRow& r) { return r.fmax_hz; });
  return bias == BiasMode::kForwardBias ? base * kFbbSpeedup : base;
}

double PulpPowerModel::leakage_w(double vdd, BiasMode bias) const {
  const double base =
      interp_table(vdd, [](const OpRow& r) { return r.leak_w; });
  return bias == BiasMode::kForwardBias ? base * kFbbLeakageFactor : base;
}

double PulpPowerModel::dynamic_w(const ActivityFactors& chi, double vdd,
                                 double freq_hz) const {
  ULP_CHECK(freq_hz >= 0, "negative frequency");
  const double scale = vdd * vdd;  // densities characterised at 1.0 V
  const double per_hz = chi.cores_run * kRhoCoreRun +
                        chi.cores_idle * kRhoCoreIdle + chi.mem * kRhoMem +
                        chi.dma * kRhoDma + chi.cores_run * kRhoIcache +
                        kRhoSoc;
  return freq_hz * scale * per_hz;
}

double PulpPowerModel::idle_w(double vdd) const {
  // Clock-gated cluster: leakage plus the always-on SoC logic ticking at a
  // slow ref clock (32 kHz-class); the latter is negligible but nonzero.
  return leakage_w(vdd) + khz(32) * vdd * vdd * kRhoSoc * 4;
}

std::optional<OperatingPoint> PulpPowerModel::max_performance_point(
    double budget_w, const ActivityFactors& chi, bool allow_boost) const {
  std::optional<OperatingPoint> best;
  const auto consider = [&](const OperatingPoint& op) {
    if (total_w(chi, op) > budget_w) return;
    if (!best || op.freq_hz > best->freq_hz) best = op;
  };
  // f_max(vdd) is monotone per bias mode: scan V_DD downward, the first
  // point that fits the budget at f_max is that mode's fastest.
  for (const BiasMode bias :
       {BiasMode::kNominal, BiasMode::kForwardBias}) {
    if (bias == BiasMode::kForwardBias && !allow_boost) continue;
    bool found = false;
    for (double vdd = kVddMax; vdd >= kVddMin - 1e-9; vdd -= 0.005) {
      const OperatingPoint op{vdd, fmax_hz(vdd, bias), bias};
      if (total_w(chi, op) <= budget_w) {
        consider(op);
        found = true;
        break;
      }
    }
    if (found) continue;
    // Below-f_max fallback at the lowest voltage.
    const double vdd = kVddMin;
    const double leak = leakage_w(vdd, bias);
    if (leak >= budget_w) continue;
    const double per_hz_w = dynamic_w(chi, vdd, 1.0);  // W per Hz
    if (per_hz_w <= 0) continue;
    const double f = (budget_w - leak) / per_hz_w;
    if (f < khz(100)) continue;  // not a useful operating point
    consider(OperatingPoint{vdd, f, bias});
  }
  return best;
}

}  // namespace ulp::power
