// PULP3 power model.
//
// Reproduces the paper's methodology (Section IV-A): average dynamic power
// over a benchmark is
//
//   P_d = f_clk * sum_i (chi_i,idle*rho_i,idle + chi_i,run*rho_i,run
//                        + chi_i,dma*rho_i,dma)
//
// with chi_i the active-cycle ratios measured by the simulator's
// performance counters and rho_i per-component dynamic power densities.
// Leakage, densities and f_max per operating point (V_DD = 0.5 V .. 1.0 V in
// 100 mV steps, 28nm FD-SOI flavour) come from a constants table; since the
// post-layout back-annotation of the taped-out chip is not available, the
// densities are CALIBRATED so the model reproduces the paper's published
// anchors — peak 304 GOPS/W at 1.48 mW on matmul (Figure 3) — and are
// therefore effective values, not transistor-level ones. f_max between
// table points is interpolated, as in the paper.
#pragma once

#include <optional>

#include "cluster/cluster.hpp"

namespace ulp::power {

/// Body-bias setting. PULP's FD-SOI flavour exposes a body-bias
/// multiplexer per core (Section III-B; Rossi et al. [6] characterise
/// -1.8 V to 0.9 V of bias): forward body bias lowers V_T, buying extra
/// frequency at the same V_DD at the price of a large leakage increase.
enum class BiasMode : u8 {
  kNominal,
  kForwardBias,
};

struct OperatingPoint {
  double vdd = 1.0;      ///< Volts.
  double freq_hz = 0.0;  ///< Cluster clock.
  BiasMode bias = BiasMode::kNominal;
};

/// Activity factors (the chi of the paper's formula), extracted from a
/// cluster run. Sums are across cores, so cores_run is in [0, N].
struct ActivityFactors {
  double cores_run = 0.0;   ///< Sum of per-core active-cycle ratios.
  double cores_idle = 0.0;  ///< Sum of per-core clock-gated ratios.
  double mem = 0.0;         ///< TCDM + interconnect accesses per cycle.
  double dma = 0.0;         ///< DMA busy-cycle ratio.

  [[nodiscard]] static ActivityFactors from_stats(
      const cluster::ClusterStats& stats);

  /// Worst-case factors for envelope sizing: every core and the memory
  /// system fully active.
  [[nodiscard]] static ActivityFactors all_on(u32 num_cores);
};

class PulpPowerModel {
 public:
  static constexpr double kVddMin = 0.5;
  static constexpr double kVddMax = 1.0;

  /// Frequency headroom of forward body bias, and its leakage penalty
  /// (effective values in the spirit of [6]).
  static constexpr double kFbbSpeedup = 1.3;
  static constexpr double kFbbLeakageFactor = 3.0;

  /// Maximum cluster frequency at `vdd` (interpolated between the
  /// characterised operating points). vdd outside [0.5, 1.0] throws.
  [[nodiscard]] double fmax_hz(double vdd,
                               BiasMode bias = BiasMode::kNominal) const;

  [[nodiscard]] double leakage_w(double vdd,
                                 BiasMode bias = BiasMode::kNominal) const;

  /// The paper's P_d formula.
  [[nodiscard]] double dynamic_w(const ActivityFactors& chi, double vdd,
                                 double freq_hz) const;

  [[nodiscard]] double total_w(const ActivityFactors& chi,
                               const OperatingPoint& op) const {
    return leakage_w(op.vdd, op.bias) + dynamic_w(chi, op.vdd, op.freq_hz);
  }

  /// Energy of a run of `cycles` cluster cycles at `op`.
  [[nodiscard]] double energy_j(const ActivityFactors& chi,
                                const OperatingPoint& op, u64 cycles) const {
    return total_w(chi, op) * (static_cast<double>(cycles) / op.freq_hz);
  }

  /// Power when the accelerator sits idle waiting for an offload (clock
  /// gated, leakage + always-on SoC logic).
  [[nodiscard]] double idle_w(double vdd) const;

  /// Highest-performance operating point whose total power at activity
  /// `chi` fits within `budget_w`: scans V_DD downward at f_max, then
  /// trades frequency at the lowest voltage. nullopt if even that exceeds
  /// the budget. With `allow_boost`, forward-body-bias points compete too
  /// (they win when the budget is generous enough to pay the leakage).
  [[nodiscard]] std::optional<OperatingPoint> max_performance_point(
      double budget_w, const ActivityFactors& chi,
      bool allow_boost = false) const;
};

}  // namespace ulp::power
