// Full-system co-simulation: the heterogeneous node of Figure 1 with BOTH
// processors executing simulated code.
//
// The analytic runtime (runtime::OffloadSession) composes offload timing
// from a single cluster simulation plus link arithmetic; this module is the
// ground truth it approximates. A simulated Cortex-M4 host runs a
// *bare-metal driver program* that performs the offload entirely through
// its memory-mapped peripherals:
//
//   host core --(SimpleBus)--> SPI master ctrl --(SpiWire, byte-timed)-->
//       QSPI slave -> PULP L2;  GPIO: fetch-enable out, EOC in
//
// while the PULP cluster executes its kernel cycle-by-cycle in its own
// clock domain (the two clocks are co-simulated at their real frequency
// ratio). This is the "bare-metal runtime port" of the original prototype.
//
// Scale-out: the system hosts N clusters (params.num_clusters), each a full
// PulpSoc (own DMA, TCDM, event unit, L2) in its own clock domain, behind
// ONE shared SPI wire. Cluster i's L2 is aliased on the host link at
// memmap::cluster_l2_base(i) and its handshake GPIO pair sits at
// kGpioBase + i * 0x100; a wake-mask register selects which EOC lines wake
// a sleeping host. Transfers to different clusters serialise on the shared
// wire — the offload/dispatch bottleneck the scale-out campaigns measure.
// With num_clusters == 1 (the default) every path below reduces to the
// original single-cluster model bit-exactly (asserted by tests/system).
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "common/ratio.hpp"
#include "core/core.hpp"
#include "host/mcu.hpp"
#include "host/peripherals.hpp"
#include "link/fault_injector.hpp"
#include "link/spi_wire.hpp"
#include "mem/bus.hpp"
#include "soc/pulp_soc.hpp"
#include "trace/event_trace.hpp"

namespace ulp::system {

/// Host memory map. Each cluster's GPIO block occupies a 0x100 window at
/// kGpioBase + cluster * 0x100 (cluster 0's window is the legacy one).
inline constexpr Addr kHostSramBase = 0x00000000;
inline constexpr Addr kSpiMasterBase = 0x40000000;
inline constexpr Addr kGpioBase = 0x40001000;
inline constexpr Addr kWakeMaskBase = 0x40002000;

struct HeteroSystemParams {
  double mcu_freq_hz = mhz(16);
  double pulp_freq_hz = mhz(16);
  u32 spi_lanes = 4;
  u32 host_sram_bytes = 512 * 1024;
  cluster::ClusterParams cluster_params = {};
  /// Accelerator clusters behind the shared link (1..32; the wake mask is
  /// one u32). Every cluster is built from cluster_params (cluster_id is
  /// stamped per instance).
  u32 num_clusters = 1;
  /// Per-cluster clock overrides; empty = every cluster at pulp_freq_hz,
  /// otherwise exactly num_clusters entries.
  std::vector<double> cluster_freq_hz;
  /// Where the host driver stages the boot image in L2 (cluster-local
  /// address; on the wire, cluster i stages at l2_staging +
  /// i * memmap::kClusterL2Stride).
  Addr l2_staging = memmap::kL2Base;
  /// CRC-32 trailer framing on the SPI wire (the robust offload
  /// protocol). Off by default: the raw wire's byte counts are pinned by
  /// the legacy system tests.
  bool crc_frames = false;
  /// Deterministic link fault injection (see link/fault_injector.hpp).
  /// The stuck-EOC budget gates the EOC line as the host sees it; pair
  /// with a robust driver (counted-polling watchdog) — a legacy sleeping
  /// driver would never wake from a stuck line. One injector serves the
  /// shared wire; every cluster's transfers draw from its schedule in
  /// submission order.
  std::optional<link::FaultConfig> faults;
};

struct HeteroStats {
  u64 host_cycles = 0;
  u64 cluster_cycles = 0;  ///< Summed over clusters (== cluster 0 for N=1).
  u64 wire_bytes = 0;
  u64 wire_busy_host_cycles = 0;
  /// Host cycles spent executing while an SPI transfer was already in
  /// flight — the profiler's "host link-bound" stall bucket (a subset of
  /// the host core's active cycles; counted per real step in both
  /// stepping modes, so profiles stay bit-identical).
  u64 host_link_bound_cycles = 0;
  bool accel_started = false;  ///< Any cluster saw its fetch-enable edge.
  u64 link_frames = 0;      ///< Completed wire transfers.
  u64 link_crc_errors = 0;  ///< Frames that failed their integrity check.
  u64 fault_count = 0;      ///< Injected faults (all kinds), 0 without injector.
  /// Per-cluster breakdown, num_clusters entries in cluster order.
  std::vector<u64> cluster_cycles_each;
  std::vector<u8> cluster_started_each;
};

class HeteroSystem {
 public:
  explicit HeteroSystem(HeteroSystemParams params = {});

  HeteroSystem(const HeteroSystem&) = delete;
  HeteroSystem& operator=(const HeteroSystem&) = delete;

  /// Load the bare-metal driver into the host core and its data (boot
  /// image bytes, input payload) into host SRAM.
  void load_host_program(const isa::Program& program);

  /// Advance one host clock cycle (each cluster advances by its frequency
  /// ratio; the wire moves bytes; GPIO edges boot the accelerators).
  void step();

  /// Run until the host core halts. Returns host cycles elapsed.
  /// Fast-forwards through the dominant idle pattern of an offload — host
  /// asleep on the EOC line with the SPI wire quiet while the cluster
  /// computes — by advancing host time one cluster tick at a time through
  /// the rational clock coupling. Observably identical to per-cycle step()
  /// (disabled when the cluster runs in reference-stepping mode).
  u64 run_to_host_halt(u64 max_host_cycles = 1'000'000'000ull);

  /// Record the whole node into `sinks`: host run/sleep spans (WFI on the
  /// EOC line), SPI wire transfers, fetch-enable / EOC handshake instants,
  /// and each cluster's own tracks. Host-side tracks tick at the MCU clock
  /// and cluster tracks at their PULP clocks, so the exported timeline
  /// shows every domain on one real-time axis. Cluster 0 keeps the legacy
  /// "cluster.*" track names; cluster i > 0 records as "cluster<i>.*".
  /// Call before load_host_program.
  void attach_trace(const trace::Sinks& sinks);

  [[nodiscard]] core::Core& host_core() { return *host_core_; }
  /// The currently loaded bare-metal driver (for annotated disassembly).
  [[nodiscard]] const isa::Program& host_program() const {
    return host_program_;
  }
  [[nodiscard]] mem::Sram& host_sram() { return *host_sram_; }
  /// Cluster `i`'s SoC; the argument-free legacy accessor is cluster 0.
  [[nodiscard]] soc::PulpSoc& soc(u32 i = 0) { return *socs_[i]; }
  [[nodiscard]] u32 num_clusters() const {
    return static_cast<u32>(socs_.size());
  }
  [[nodiscard]] link::SpiWire& wire() { return *wire_; }
  /// The host-visible wake mask (bit i arms cluster i's EOC line).
  [[nodiscard]] u32 wake_mask() const { return wake_mask_->mask(); }
  /// Null unless params.faults was set.
  [[nodiscard]] link::FaultInjector* fault_injector() {
    return injector_.get();
  }
  [[nodiscard]] HeteroStats stats() const;

  /// Serializes the complete node: host core / SRAM / peripheral
  /// registers, the SPI wire (mid-frame positions included), the fault
  /// injector's RNG schedule, the exact clock-coupling accumulators, and
  /// every cluster as a nested standalone snapshot blob.
  [[nodiscard]] Status save(snapshot::Writer& w) const;

  /// All-or-nothing restore of a save() image into this system: the
  /// whole stream — including every nested cluster snapshot — is
  /// validated with zero mutation before anything is applied. Geometry
  /// (cluster count, clock ratios, SRAM size, lane count, injector
  /// presence, CRC framing) must match this system's construction
  /// parameters. A restore that lands mid-frame re-installs the SPI
  /// master's local buffer callbacks.
  [[nodiscard]] Status restore(snapshot::Reader& r);

 private:
  [[nodiscard]] Status restore_pass(snapshot::Reader& r, bool apply);
  void trace_sample();
  /// The EOC line of cluster `c` as the host observes it (the injector may
  /// hold it stuck low for the current wait).
  [[nodiscard]] bool eoc_line(u32 c = 0) const {
    const bool level = socs_[c]->eoc_gpio();
    return injector_ != nullptr ? injector_->eoc_gate(level) : level;
  }
  /// Whether any wake-mask-armed EOC line is high — the host core's WFE
  /// wake condition. For one cluster with the reset mask this is exactly
  /// the legacy eoc_line() sample.
  [[nodiscard]] bool wake_pending() const;
  /// Routes a host-link (QSPI) address to its cluster: strips the
  /// kClusterL2Stride alias so each cluster sees its own local map.
  [[nodiscard]] u32 route_cluster(Addr addr, Addr* local) const;
  /// Bulk-advance while the host sleeps on EOC and the wire is idle.
  /// Returns host cycles consumed. Dispatches to the solo fast path
  /// (bit-exact legacy behaviour) or the multi-cluster stride scheduler.
  u64 fast_forward_host_sleep(u64 max_host_cycles);
  u64 fast_forward_solo(u64 max_host_cycles);
  u64 fast_forward_multi(u64 max_host_cycles);
  /// Budget-exhaustion diagnostic: host state plus every cluster's
  /// deadlock report, so an N-cluster hang names the stuck cluster.
  [[nodiscard]] std::string stuck_report() const;

  HeteroSystemParams params_;
  std::vector<ClockRatio> ratios_;  ///< Cluster ticks per host cycle, exact.
  std::vector<std::unique_ptr<soc::PulpSoc>> socs_;
  std::unique_ptr<link::FaultInjector> injector_;
  std::unique_ptr<mem::Sram> host_sram_;
  std::unique_ptr<mem::SimpleBus> host_bus_;
  std::unique_ptr<link::SpiWire> wire_;
  std::unique_ptr<host::SpiMasterPeripheral> spi_master_;
  std::vector<std::unique_ptr<host::GpioPeripheral>> gpios_;
  std::unique_ptr<host::WakeMaskPeripheral> wake_mask_;
  std::unique_ptr<host::HostWakeUnit> wake_unit_;
  std::unique_ptr<core::Core> host_core_;

  isa::Program host_program_;
  std::vector<u8> started_;  ///< Per cluster: fetch-enable edge seen.
  bool reference_stepping_ = false;  ///< Mirrors the clusters' mode.
  u64 host_cycles_ = 0;
  u64 host_link_bound_cycles_ = 0;

  // Tracing state (inert unless attach_trace() was called).
  trace::Sinks sinks_;
  trace::EventTrace::TrackId host_track_ = 0;
  u8 traced_host_state_ = 255;  ///< 0 halted, 1 run, 2 sleep.
  bool host_span_open_ = false;
  u64 host_sleep_since_ = 0;
  std::vector<u8> traced_eoc_;  ///< Per cluster.
};

}  // namespace ulp::system
