// Full-system co-simulation: the heterogeneous node of Figure 1 with BOTH
// processors executing simulated code.
//
// The analytic runtime (runtime::OffloadSession) composes offload timing
// from a single cluster simulation plus link arithmetic; this module is the
// ground truth it approximates. A simulated Cortex-M4 host runs a
// *bare-metal driver program* that performs the offload entirely through
// its memory-mapped peripherals:
//
//   host core --(SimpleBus)--> SPI master ctrl --(SpiWire, byte-timed)-->
//       QSPI slave -> PULP L2;  GPIO: fetch-enable out, EOC in
//
// while the PULP cluster executes its kernel cycle-by-cycle in its own
// clock domain (the two clocks are co-simulated at their real frequency
// ratio). This is the "bare-metal runtime port" of the original prototype.
#pragma once

#include <memory>
#include <optional>

#include "common/ratio.hpp"
#include "core/core.hpp"
#include "host/mcu.hpp"
#include "host/peripherals.hpp"
#include "link/fault_injector.hpp"
#include "link/spi_wire.hpp"
#include "mem/bus.hpp"
#include "soc/pulp_soc.hpp"
#include "trace/event_trace.hpp"

namespace ulp::system {

/// Host memory map.
inline constexpr Addr kHostSramBase = 0x00000000;
inline constexpr Addr kSpiMasterBase = 0x40000000;
inline constexpr Addr kGpioBase = 0x40001000;

struct HeteroSystemParams {
  double mcu_freq_hz = mhz(16);
  double pulp_freq_hz = mhz(16);
  u32 spi_lanes = 4;
  u32 host_sram_bytes = 512 * 1024;
  cluster::ClusterParams cluster_params = {};
  /// Where the host driver stages the boot image in L2.
  Addr l2_staging = memmap::kL2Base;
  /// CRC-32 trailer framing on the SPI wire (the robust offload
  /// protocol). Off by default: the raw wire's byte counts are pinned by
  /// the legacy system tests.
  bool crc_frames = false;
  /// Deterministic link fault injection (see link/fault_injector.hpp).
  /// The stuck-EOC budget gates the EOC line as the host sees it; pair
  /// with a robust driver (counted-polling watchdog) — a legacy sleeping
  /// driver would never wake from a stuck line.
  std::optional<link::FaultConfig> faults;
};

struct HeteroStats {
  u64 host_cycles = 0;
  u64 cluster_cycles = 0;
  u64 wire_bytes = 0;
  u64 wire_busy_host_cycles = 0;
  /// Host cycles spent executing while an SPI transfer was already in
  /// flight — the profiler's "host link-bound" stall bucket (a subset of
  /// the host core's active cycles; counted per real step in both
  /// stepping modes, so profiles stay bit-identical).
  u64 host_link_bound_cycles = 0;
  bool accel_started = false;
  u64 link_frames = 0;      ///< Completed wire transfers.
  u64 link_crc_errors = 0;  ///< Frames that failed their integrity check.
  u64 fault_count = 0;      ///< Injected faults (all kinds), 0 without injector.
};

class HeteroSystem {
 public:
  explicit HeteroSystem(HeteroSystemParams params = {});

  HeteroSystem(const HeteroSystem&) = delete;
  HeteroSystem& operator=(const HeteroSystem&) = delete;

  /// Load the bare-metal driver into the host core and its data (boot
  /// image bytes, input payload) into host SRAM.
  void load_host_program(const isa::Program& program);

  /// Advance one host clock cycle (the cluster advances by the frequency
  /// ratio; the wire moves bytes; GPIO edges boot the accelerator).
  void step();

  /// Run until the host core halts. Returns host cycles elapsed.
  /// Fast-forwards through the dominant idle pattern of an offload — host
  /// asleep on the EOC line with the SPI wire quiet while the cluster
  /// computes — by advancing host time one cluster tick at a time through
  /// the rational clock coupling. Observably identical to per-cycle step()
  /// (disabled when the cluster runs in reference-stepping mode).
  u64 run_to_host_halt(u64 max_host_cycles = 1'000'000'000ull);

  /// Record the whole node into `sinks`: host run/sleep spans (WFI on the
  /// EOC line), SPI wire transfers, fetch-enable / EOC handshake instants,
  /// and the cluster's own tracks. Host-side tracks tick at the MCU clock
  /// and cluster tracks at the PULP clock, so the exported timeline shows
  /// both domains on one real-time axis. Call before load_host_program.
  void attach_trace(const trace::Sinks& sinks);

  [[nodiscard]] core::Core& host_core() { return *host_core_; }
  /// The currently loaded bare-metal driver (for annotated disassembly).
  [[nodiscard]] const isa::Program& host_program() const {
    return host_program_;
  }
  [[nodiscard]] mem::Sram& host_sram() { return *host_sram_; }
  [[nodiscard]] soc::PulpSoc& soc() { return *soc_; }
  [[nodiscard]] link::SpiWire& wire() { return *wire_; }
  /// Null unless params.faults was set.
  [[nodiscard]] link::FaultInjector* fault_injector() {
    return injector_.get();
  }
  [[nodiscard]] HeteroStats stats() const;

 private:
  void trace_sample();
  /// The EOC line as the host observes it (the injector may hold it
  /// stuck low for the current wait).
  [[nodiscard]] bool eoc_line() const {
    const bool level = soc_->eoc_gpio();
    return injector_ != nullptr ? injector_->eoc_gate(level) : level;
  }
  /// Bulk-advance while the host sleeps on EOC and the wire is idle.
  /// Returns host cycles consumed.
  u64 fast_forward_host_sleep(u64 max_host_cycles);

  HeteroSystemParams params_;
  ClockRatio ratio_;  ///< Cluster ticks per host cycle, exact.
  std::unique_ptr<soc::PulpSoc> soc_;
  std::unique_ptr<link::FaultInjector> injector_;
  std::unique_ptr<mem::Sram> host_sram_;
  std::unique_ptr<mem::SimpleBus> host_bus_;
  std::unique_ptr<link::SpiWire> wire_;
  std::unique_ptr<host::SpiMasterPeripheral> spi_master_;
  std::unique_ptr<host::GpioPeripheral> gpio_;
  std::unique_ptr<host::HostWakeUnit> wake_unit_;
  std::unique_ptr<core::Core> host_core_;

  isa::Program host_program_;
  bool accel_started_ = false;
  bool reference_stepping_ = false;  ///< Mirrors the cluster's mode.
  u64 host_cycles_ = 0;
  u64 host_link_bound_cycles_ = 0;

  // Tracing state (inert unless attach_trace() was called).
  trace::Sinks sinks_;
  trace::EventTrace::TrackId host_track_ = 0;
  u8 traced_host_state_ = 255;  ///< 0 halted, 1 run, 2 sleep.
  bool host_span_open_ = false;
  u64 host_sleep_since_ = 0;
  bool traced_eoc_ = false;
};

}  // namespace ulp::system
