#include "system/host_driver.hpp"

#include "system/hetero_system.hpp"

namespace ulp::system {

using codegen::Builder;
using isa::Opcode;

namespace {

/// Emits one SPI-master transfer + busy poll. r1 = SPI base (live).
/// Clobbers r3, r4.
void emit_transfer(Builder& bld, bool tx, Addr local, Addr remote, u32 len) {
  bld.li(3, remote);
  bld.emit(Opcode::kSw, 3, 1, 0, 0x00);
  bld.li(3, local);
  bld.emit(Opcode::kSw, 3, 1, 0, 0x04);
  bld.li(3, len);
  bld.emit(Opcode::kSw, 3, 1, 0, 0x08);
  bld.li(3, tx ? 1 : 2);
  bld.emit(Opcode::kSw, 3, 1, 0, 0x0C);
  const auto poll = bld.make_label();
  bld.bind(poll);
  bld.emit(Opcode::kLw, 4, 1, 0, 0x10);
  bld.branch(Opcode::kBne, 4, codegen::zero, poll);
}

/// Robust-protocol transfer: emit_transfer plus a CRC_STATUS check and a
/// bounded retry loop. On budget exhaustion stores `fail_code` to the
/// status word and jumps to `fail`. r1 = SPI base (live). Clobbers r3,
/// r4, r5 (r5 = retry counter; safe — host tasks only run while waiting
/// on EOC, never inside a transfer).
void emit_robust_transfer(Builder& bld, bool tx, Addr local, Addr remote,
                          u32 len, const HostDriverSpec& spec, u32 fail_code,
                          Builder::Label fail) {
  if (len == 0) return;
  bld.li(5, 0);
  const auto retry = bld.make_label();
  bld.bind(retry);
  emit_transfer(bld, tx, local, remote, len);
  // Hardware CRC verdict for the frame that just drained.
  bld.emit(Opcode::kLw, 4, 1, 0, 0x14);
  const auto ok = bld.make_label();
  bld.branch(Opcode::kBeq, 4, codegen::zero, ok);
  bld.emit(Opcode::kAddi, 5, 5, 0, 1);
  bld.li(3, spec.max_transfer_retries + 1);
  bld.branch(Opcode::kBne, 5, 3, retry);
  bld.li(3, fail_code);
  bld.li(4, static_cast<u32>(spec.status_addr));
  bld.emit(Opcode::kSw, 3, 4, 0, 0);
  bld.branch(Opcode::kBeq, codegen::zero, codegen::zero, fail);
  bld.bind(ok);
}

/// The robust driver body (spec.status_addr != 0). Same five offload
/// steps as the legacy body, wrapped in the robust protocol.
void build_robust_body(Builder& bld, const HostDriverSpec& spec) {
  ULP_CHECK(spec.eoc_watchdog_rounds >= 1,
            "robust driver needs a nonzero EOC watchdog budget");
  const auto fail = bld.make_label();
  const Addr watchdog_addr = spec.status_addr + 4;

  // 1-2. Ship the kernel image and the input payload, CRC-checked.
  emit_robust_transfer(bld, /*tx=*/true, spec.host_image_addr,
                       spec.l2_staging, spec.image_len, spec,
                       kDriverStatusImageTxFailed, fail);
  emit_robust_transfer(bld, true, spec.host_input_addr,
                       spec.remote_input_addr, spec.input_len, spec,
                       kDriverStatusInputTxFailed, fail);

  // 3. Image length, then the fetch-enable rising edge.
  bld.li(3, spec.image_len);
  bld.emit(Opcode::kSw, 3, 2, 0, 0x08);
  bld.li(3, 1);
  bld.emit(Opcode::kSw, 3, 2, 0, 0x00);

  // 4. Wait for EOC under a counted-polling watchdog. The round counter
  // lives in memory (status_addr + 4) so an interleaved host task is free
  // to clobber r5..r15.
  bld.li(3, static_cast<u32>(watchdog_addr));
  bld.emit(Opcode::kSw, codegen::zero, 3, 0, 0);
  const auto wait_eoc = bld.make_label();
  const auto eoc_seen = bld.make_label();
  bld.bind(wait_eoc);
  bld.emit(Opcode::kLw, 4, 2, 0, 0x04);
  bld.branch(Opcode::kBne, 4, codegen::zero, eoc_seen);
  if (spec.host_task) {
    spec.host_task(bld);
    if (spec.host_task_counter_addr != 0) {
      bld.li(3, spec.host_task_counter_addr);
      bld.emit(Opcode::kLw, 4, 3, 0, 0);
      bld.emit(Opcode::kAddi, 4, 4, 0, 1);
      bld.emit(Opcode::kSw, 4, 3, 0, 0);
    }
  }
  bld.li(3, static_cast<u32>(watchdog_addr));
  bld.emit(Opcode::kLw, 4, 3, 0, 0);
  bld.emit(Opcode::kAddi, 4, 4, 0, 1);
  bld.emit(Opcode::kSw, 4, 3, 0, 0);
  bld.li(3, spec.eoc_watchdog_rounds);
  bld.branch(Opcode::kBne, 4, 3, wait_eoc);
  // Watchdog expired: the accelerator is presumed hung.
  bld.li(3, kDriverStatusEocTimeout);
  bld.li(4, static_cast<u32>(spec.status_addr));
  bld.emit(Opcode::kSw, 3, 4, 0, 0);
  bld.branch(Opcode::kBeq, codegen::zero, codegen::zero, fail);
  bld.bind(eoc_seen);

  // 5. Pull the results back (CRC-checked) and report success.
  emit_robust_transfer(bld, /*tx=*/false, spec.host_output_addr,
                       spec.remote_output_addr, spec.output_len, spec,
                       kDriverStatusReadbackFailed, fail);
  bld.li(4, static_cast<u32>(spec.status_addr));
  bld.emit(Opcode::kSw, codegen::zero, 4, 0, 0);  // kDriverStatusOk
  bld.bind(fail);
  bld.halt();
}

}  // namespace

isa::Program build_host_driver(const core::CoreFeatures& features,
                               const HostDriverSpec& spec) {
  Builder bld(features);
  bld.li(1, kSpiMasterBase);
  bld.li(2, kGpioBase);

  if (spec.status_addr != 0) {
    build_robust_body(bld, spec);
    return bld.finalize();
  }

  // 1-2. Ship the kernel image and the input payload.
  emit_transfer(bld, /*tx=*/true, spec.host_image_addr, spec.l2_staging,
                spec.image_len);
  if (spec.input_len > 0) {
    emit_transfer(bld, true, spec.host_input_addr, spec.remote_input_addr,
                  spec.input_len);
  }

  // 3. Image length, then the fetch-enable rising edge.
  bld.li(3, spec.image_len);
  bld.emit(Opcode::kSw, 3, 2, 0, 0x08);
  bld.li(3, 1);
  bld.emit(Opcode::kSw, 3, 2, 0, 0x00);

  // 4. Wait for EOC. Without a host task this is a plain poll (the real
  // driver would sleep on an EXTI interrupt — same wall-clock behaviour).
  // With one, the host interleaves its own computation with GPIO checks:
  // the Discussion section's concurrent heterogeneous-task model.
  const auto wait_eoc = bld.make_label();
  const auto eoc_seen = bld.make_label();
  bld.bind(wait_eoc);
  bld.emit(Opcode::kLw, 4, 2, 0, 0x04);
  bld.branch(Opcode::kBne, 4, codegen::zero, eoc_seen);
  if (spec.host_task) {
    spec.host_task(bld);
    if (spec.host_task_counter_addr != 0) {
      bld.li(3, spec.host_task_counter_addr);
      bld.emit(Opcode::kLw, 4, 3, 0, 0);
      bld.emit(Opcode::kAddi, 4, 4, 0, 1);
      bld.emit(Opcode::kSw, 4, 3, 0, 0);
    }
  } else if (spec.sleep_while_waiting) {
    bld.emit(Opcode::kWfe);  // clock-gated until the EOC line rises
  }
  bld.branch(Opcode::kBeq, codegen::zero, codegen::zero, wait_eoc);
  bld.bind(eoc_seen);

  // 5. Pull the results back and finish.
  if (spec.output_len > 0) {
    emit_transfer(bld, /*tx=*/false, spec.host_output_addr,
                  spec.remote_output_addr, spec.output_len);
  }
  bld.halt();
  return bld.finalize();
}

FullSystemPackage package_offload(const kernels::KernelCase& kc,
                                  Addr l2_staging) {
  const std::vector<u8> image = isa::serialize(kc.program);

  FullSystemPackage pkg;
  pkg.spec.l2_staging = l2_staging;
  // Host SRAM layout: image at 64 KiB, input after it, output buffer after
  // that (all word-aligned).
  pkg.spec.host_image_addr = 0x10000;
  pkg.spec.image_len = static_cast<u32>(image.size());
  pkg.spec.host_input_addr =
      (pkg.spec.host_image_addr + pkg.spec.image_len + 3) & ~3u;
  pkg.spec.input_len = static_cast<u32>(kc.input.size());
  pkg.spec.remote_input_addr = kc.input_addr;
  pkg.spec.host_output_addr =
      (pkg.spec.host_input_addr + pkg.spec.input_len + 3) & ~3u;
  pkg.spec.output_len = static_cast<u32>(kc.output_bytes);
  pkg.spec.remote_output_addr = kc.output_addr;

  pkg.host_program =
      build_host_driver(core::cortex_m4_config().features, pkg.spec);
  pkg.host_program.data.push_back({pkg.spec.host_image_addr, image});
  pkg.host_program.data.push_back({pkg.spec.host_input_addr, kc.input});
  return pkg;
}

FullSystemPackage package_robust_offload(const kernels::KernelCase& kc,
                                         const RobustOffloadOptions& opts,
                                         Addr l2_staging) {
  FullSystemPackage pkg = package_offload(kc, l2_staging);
  // Status word + watchdog scratch sit word-aligned after the output
  // buffer; enabling them switches the driver to the robust body.
  pkg.spec.status_addr =
      (pkg.spec.host_output_addr + pkg.spec.output_len + 3) & ~3u;
  pkg.spec.max_transfer_retries = opts.max_transfer_retries;
  pkg.spec.eoc_watchdog_rounds = opts.eoc_watchdog_rounds;
  pkg.host_reference = kc.expected;
  std::vector<isa::Segment> data = std::move(pkg.host_program.data);
  pkg.host_program =
      build_host_driver(core::cortex_m4_config().features, pkg.spec);
  pkg.host_program.data = std::move(data);
  return pkg;
}

MultiSystemPackage package_multi_offload(
    std::span<const kernels::KernelCase> cases, Addr l2_staging) {
  ULP_CHECK(!cases.empty(), "multi-offload needs at least one kernel case");
  MultiSystemPackage pkg;

  // Per-cluster specs: cluster i's wire-side (remote) addresses carry the
  // alias offset; host SRAM regions run sequentially from 64 KiB.
  Addr host_cursor = 0x10000;
  std::vector<std::vector<u8>> images;
  for (u32 c = 0; c < cases.size(); ++c) {
    const kernels::KernelCase& kc = cases[c];
    images.push_back(isa::serialize(kc.program));
    const Addr alias = static_cast<Addr>(c) * memmap::kClusterL2Stride;

    HostDriverSpec spec;
    spec.l2_staging = l2_staging + alias;
    spec.host_image_addr = host_cursor;
    spec.image_len = static_cast<u32>(images.back().size());
    spec.host_input_addr = (spec.host_image_addr + spec.image_len + 3) & ~3u;
    spec.input_len = static_cast<u32>(kc.input.size());
    spec.remote_input_addr = kc.input_addr + alias;
    spec.host_output_addr = (spec.host_input_addr + spec.input_len + 3) & ~3u;
    spec.output_len = static_cast<u32>(kc.output_bytes);
    spec.remote_output_addr = kc.output_addr + alias;
    host_cursor = (spec.host_output_addr + spec.output_len + 3) & ~3u;
    pkg.specs.push_back(spec);
  }

  Builder bld(core::cortex_m4_config().features);
  bld.li(1, kSpiMasterBase);

  // 1. Dispatch: every cluster's image + input, back to back on the one
  // shared wire (this serialisation is the scale-out bottleneck).
  for (const HostDriverSpec& spec : pkg.specs) {
    emit_transfer(bld, /*tx=*/true, spec.host_image_addr, spec.l2_staging,
                  spec.image_len);
    if (spec.input_len > 0) {
      emit_transfer(bld, true, spec.host_input_addr, spec.remote_input_addr,
                    spec.input_len);
    }
  }

  // 2. Launch: raise every fetch-enable; all clusters compute concurrently.
  for (u32 c = 0; c < pkg.specs.size(); ++c) {
    bld.li(2, kGpioBase + c * 0x100);
    bld.li(3, pkg.specs[c].image_len);
    bld.emit(Opcode::kSw, 3, 2, 0, 0x08);
    bld.li(3, 1);
    bld.emit(Opcode::kSw, 3, 2, 0, 0x00);
  }

  // 3. Retire in order: arm cluster c's EOC line as the (sole) wake
  // source, then sleep until it rises. EOC lines latch high until the
  // next boot, so clusters finishing out of order just wake immediately
  // when their turn comes.
  for (u32 c = 0; c < pkg.specs.size(); ++c) {
    bld.li(3, 1u << c);
    bld.li(4, static_cast<u32>(kWakeMaskBase));
    bld.emit(Opcode::kSw, 3, 4, 0, 0);
    bld.li(2, kGpioBase + c * 0x100);
    const auto wait_eoc = bld.make_label();
    const auto eoc_seen = bld.make_label();
    bld.bind(wait_eoc);
    bld.emit(Opcode::kLw, 4, 2, 0, 0x04);
    bld.branch(Opcode::kBne, 4, codegen::zero, eoc_seen);
    bld.emit(Opcode::kWfe);  // clock-gated until the armed line rises
    bld.branch(Opcode::kBeq, codegen::zero, codegen::zero, wait_eoc);
    bld.bind(eoc_seen);
  }

  // 4. Readback: every cluster's results, again serialised on the wire.
  for (const HostDriverSpec& spec : pkg.specs) {
    if (spec.output_len > 0) {
      emit_transfer(bld, /*tx=*/false, spec.host_output_addr,
                    spec.remote_output_addr, spec.output_len);
    }
  }
  bld.halt();

  pkg.host_program = bld.finalize();
  for (u32 c = 0; c < cases.size(); ++c) {
    pkg.host_program.data.push_back(
        {pkg.specs[c].host_image_addr, images[c]});
    pkg.host_program.data.push_back(
        {pkg.specs[c].host_input_addr, cases[c].input});
  }
  return pkg;
}

MultiOffloadResult run_multi_offload(HeteroSystem& sys,
                                     const MultiSystemPackage& pkg,
                                     u64 max_host_cycles) {
  ULP_CHECK(pkg.specs.size() == sys.num_clusters(),
            "package cluster count must match the system");
  sys.load_host_program(pkg.host_program);
  MultiOffloadResult r;
  r.host_cycles = sys.run_to_host_halt(max_host_cycles);
  r.stats = sys.stats();
  mem::Sram& sram = sys.host_sram();
  for (const HostDriverSpec& spec : pkg.specs) {
    std::vector<u8>& out = r.outputs.emplace_back();
    out.resize(spec.output_len);
    for (u32 i = 0; i < spec.output_len; ++i) {
      out[i] = static_cast<u8>(sram.load(spec.host_output_addr + i, 1, false));
    }
  }
  return r;
}

SystemOffloadResult run_offload_with_fallback(HeteroSystem& sys,
                                              const FullSystemPackage& pkg,
                                              u64 max_host_cycles) {
  sys.load_host_program(pkg.host_program);
  SystemOffloadResult r;
  r.host_cycles = sys.run_to_host_halt(max_host_cycles);
  r.stats = sys.stats();
  mem::Sram& sram = sys.host_sram();
  if (pkg.spec.status_addr != 0) {
    r.driver_status =
        static_cast<u32>(sram.load(pkg.spec.status_addr, 4, false));
  }
  r.output.resize(pkg.spec.output_len);
  for (u32 i = 0; i < pkg.spec.output_len; ++i) {
    r.output[i] = static_cast<u8>(
        sram.load(pkg.spec.host_output_addr + i, 1, false));
  }
  if (r.driver_status == kDriverStatusOk) return r;
  const char* what =
      r.driver_status == kDriverStatusImageTxFailed   ? "image transfer"
      : r.driver_status == kDriverStatusInputTxFailed ? "input transfer"
      : r.driver_status == kDriverStatusEocTimeout    ? "EOC wait"
                                                      : "output readback";
  r.status = Status::Error(
      r.driver_status == kDriverStatusEocTimeout
          ? StatusCode::kTimeout
          : StatusCode::kRetriesExhausted,
      std::string("offload failed: ") + what +
          (r.driver_status == kDriverStatusEocTimeout
               ? " watchdog expired"
               : " retry budget exhausted"));
  if (!pkg.host_reference.empty()) {
    r.output = pkg.host_reference;
    r.used_host_fallback = true;
  }
  return r;
}

}  // namespace ulp::system
