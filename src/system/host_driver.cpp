#include "system/host_driver.hpp"

#include "system/hetero_system.hpp"

namespace ulp::system {

using codegen::Builder;
using isa::Opcode;

namespace {

/// Emits one SPI-master transfer + busy poll. r1 = SPI base (live).
/// Clobbers r3, r4.
void emit_transfer(Builder& bld, bool tx, Addr local, Addr remote, u32 len) {
  bld.li(3, remote);
  bld.emit(Opcode::kSw, 3, 1, 0, 0x00);
  bld.li(3, local);
  bld.emit(Opcode::kSw, 3, 1, 0, 0x04);
  bld.li(3, len);
  bld.emit(Opcode::kSw, 3, 1, 0, 0x08);
  bld.li(3, tx ? 1 : 2);
  bld.emit(Opcode::kSw, 3, 1, 0, 0x0C);
  const auto poll = bld.make_label();
  bld.bind(poll);
  bld.emit(Opcode::kLw, 4, 1, 0, 0x10);
  bld.branch(Opcode::kBne, 4, codegen::zero, poll);
}

}  // namespace

isa::Program build_host_driver(const core::CoreFeatures& features,
                               const HostDriverSpec& spec) {
  Builder bld(features);
  bld.li(1, kSpiMasterBase);
  bld.li(2, kGpioBase);

  // 1-2. Ship the kernel image and the input payload.
  emit_transfer(bld, /*tx=*/true, spec.host_image_addr, spec.l2_staging,
                spec.image_len);
  if (spec.input_len > 0) {
    emit_transfer(bld, true, spec.host_input_addr, spec.remote_input_addr,
                  spec.input_len);
  }

  // 3. Image length, then the fetch-enable rising edge.
  bld.li(3, spec.image_len);
  bld.emit(Opcode::kSw, 3, 2, 0, 0x08);
  bld.li(3, 1);
  bld.emit(Opcode::kSw, 3, 2, 0, 0x00);

  // 4. Wait for EOC. Without a host task this is a plain poll (the real
  // driver would sleep on an EXTI interrupt — same wall-clock behaviour).
  // With one, the host interleaves its own computation with GPIO checks:
  // the Discussion section's concurrent heterogeneous-task model.
  const auto wait_eoc = bld.make_label();
  const auto eoc_seen = bld.make_label();
  bld.bind(wait_eoc);
  bld.emit(Opcode::kLw, 4, 2, 0, 0x04);
  bld.branch(Opcode::kBne, 4, codegen::zero, eoc_seen);
  if (spec.host_task) {
    spec.host_task(bld);
    if (spec.host_task_counter_addr != 0) {
      bld.li(3, spec.host_task_counter_addr);
      bld.emit(Opcode::kLw, 4, 3, 0, 0);
      bld.emit(Opcode::kAddi, 4, 4, 0, 1);
      bld.emit(Opcode::kSw, 4, 3, 0, 0);
    }
  } else if (spec.sleep_while_waiting) {
    bld.emit(Opcode::kWfe);  // clock-gated until the EOC line rises
  }
  bld.branch(Opcode::kBeq, codegen::zero, codegen::zero, wait_eoc);
  bld.bind(eoc_seen);

  // 5. Pull the results back and finish.
  if (spec.output_len > 0) {
    emit_transfer(bld, /*tx=*/false, spec.host_output_addr,
                  spec.remote_output_addr, spec.output_len);
  }
  bld.halt();
  return bld.finalize();
}

FullSystemPackage package_offload(const kernels::KernelCase& kc,
                                  Addr l2_staging) {
  const std::vector<u8> image = isa::serialize(kc.program);

  FullSystemPackage pkg;
  pkg.spec.l2_staging = l2_staging;
  // Host SRAM layout: image at 64 KiB, input after it, output buffer after
  // that (all word-aligned).
  pkg.spec.host_image_addr = 0x10000;
  pkg.spec.image_len = static_cast<u32>(image.size());
  pkg.spec.host_input_addr =
      (pkg.spec.host_image_addr + pkg.spec.image_len + 3) & ~3u;
  pkg.spec.input_len = static_cast<u32>(kc.input.size());
  pkg.spec.remote_input_addr = kc.input_addr;
  pkg.spec.host_output_addr =
      (pkg.spec.host_input_addr + pkg.spec.input_len + 3) & ~3u;
  pkg.spec.output_len = static_cast<u32>(kc.output_bytes);
  pkg.spec.remote_output_addr = kc.output_addr;

  pkg.host_program =
      build_host_driver(core::cortex_m4_config().features, pkg.spec);
  pkg.host_program.data.push_back({pkg.spec.host_image_addr, image});
  pkg.host_program.data.push_back({pkg.spec.host_input_addr, kc.input});
  return pkg;
}

}  // namespace ulp::system
