// Bare-metal host offload driver generator.
//
// Produces the Cortex-M program the host core of a HeteroSystem executes to
// perform one complete offload — the simulated counterpart of the low-level
// primitives Section III-A describes ("primitives to initialize the SPI and
// DMA peripherals of the MCU and invoke inbound or outbound DMA transfers
// through the SPI channel", plus the GPIO event handshake):
//
//   1. TX the serialised kernel image from host flash/SRAM to L2 staging,
//   2. TX the input payload to the L2 input buffer,
//   3. write the image length and raise the fetch-enable GPIO,
//   4. poll the EOC GPIO while the cluster runs,
//   5. RX the results from L2 back into host SRAM, halt.
//
// The generated program, the kernel image and the input payload are all the
// HeteroSystem needs to run the offload end-to-end in simulation.
#pragma once

#include <span>
#include <vector>

#include "codegen/builder.hpp"
#include "isa/program.hpp"
#include "kernels/kernel.hpp"
#include "system/hetero_system.hpp"

namespace ulp::system {

struct HostDriverSpec {
  Addr host_image_addr = 0;  ///< Image bytes in host SRAM ("flash").
  u32 image_len = 0;
  Addr l2_staging = 0;       ///< Remote boot staging area.

  Addr host_input_addr = 0;
  u32 input_len = 0;
  Addr remote_input_addr = 0;

  Addr host_output_addr = 0;
  u32 output_len = 0;
  Addr remote_output_addr = 0;

  /// Optional concurrent host task (the Discussion section's heterogeneous
  /// task model: "an additional, separate task to be performed on the host
  /// at the same time"). While waiting for EOC the driver executes this
  /// emitter's code between GPIO checks instead of spinning; the emitted
  /// block runs once per wait-loop round. May clobber r5..r15.
  std::function<void(codegen::Builder&)> host_task;
  /// Host SRAM word incremented after each completed host-task round
  /// (0 = disabled); lets callers observe how much host work fit into the
  /// accelerator's compute time.
  Addr host_task_counter_addr = 0;

  /// Without a host task: sleep (WFE, clock-gated — the MCU's WFI+EXTI on
  /// the EOC line) instead of busy-polling. The host's sleep_cycles
  /// counter then reflects the real low-power wait.
  bool sleep_while_waiting = true;

  // ---- Robust offload protocol -------------------------------------
  // All inert while status_addr == 0: the legacy driver above is emitted
  // unchanged. With status_addr set, every SPI transfer is checked
  // against the controller's hardware CRC verdict (CRC_STATUS) and
  // retried up to max_transfer_retries times, and the EOC wait runs a
  // counted-polling watchdog instead of WFE (a stuck EOC line must not
  // strand a sleeping core; the real driver would arm a timer IRQ). The
  // driver's final verdict is written to the status word so the caller
  // can degrade to the host-reference implementation.
  /// Host SRAM word receiving the driver's final kDriverStatus* code.
  /// The word at status_addr + 4 is driver scratch (the watchdog round
  /// counter — kept in memory so host tasks may clobber r5..r15).
  Addr status_addr = 0;
  /// Extra attempts per CRC-framed transfer after the first fails.
  u32 max_transfer_retries = 3;
  /// EOC poll rounds before the watchdog declares the accelerator hung.
  u32 eoc_watchdog_rounds = 50000;
};

/// Driver status word values (written to HostDriverSpec::status_addr).
inline constexpr u32 kDriverStatusOk = 0;
inline constexpr u32 kDriverStatusImageTxFailed = 1;
inline constexpr u32 kDriverStatusInputTxFailed = 2;
inline constexpr u32 kDriverStatusEocTimeout = 3;
inline constexpr u32 kDriverStatusReadbackFailed = 4;

/// The driver program for a Cortex-M-class host.
[[nodiscard]] isa::Program build_host_driver(
    const core::CoreFeatures& features, const HostDriverSpec& spec);

/// Convenience: a complete full-system package for a cluster KernelCase —
/// the host driver program with the kernel image + input payload attached
/// as host data segments, plus the spec used (for result readout).
struct FullSystemPackage {
  isa::Program host_program;
  HostDriverSpec spec;
  /// Golden output of the kernel's host-reference implementation; the
  /// degradation path returns these bytes when the offload fails
  /// permanently. Empty for legacy (non-robust) packages.
  std::vector<u8> host_reference;
};
[[nodiscard]] FullSystemPackage package_offload(
    const kernels::KernelCase& kc, Addr l2_staging = memmap::kL2Base);

/// Knobs for the robust driver variant of package_offload.
struct RobustOffloadOptions {
  u32 max_transfer_retries = 3;
  u32 eoc_watchdog_rounds = 50000;
};

/// Like package_offload, but the driver speaks the robust protocol
/// (CRC-checked transfers with bounded retry, EOC watchdog, status word)
/// and the package carries the host-reference output for degradation.
/// Pair with a HeteroSystem whose wire has CRC framing enabled.
[[nodiscard]] FullSystemPackage package_robust_offload(
    const kernels::KernelCase& kc, const RobustOffloadOptions& opts = {},
    Addr l2_staging = memmap::kL2Base);

/// Outcome of one full-system offload run through the degradation path.
struct SystemOffloadResult {
  std::vector<u8> output;          ///< Correct either way when ok()/fallback.
  Status status;                   ///< Typed failure of the offload itself.
  bool used_host_fallback = false; ///< Output came from the host reference.
  u32 driver_status = kDriverStatusOk;  ///< Raw driver status word.
  u64 host_cycles = 0;
  /// Snapshot of the node's counters at halt (cluster cycles, wire bytes,
  /// link frames/CRC rejects, injected faults). Lets batch campaigns
  /// aggregate co-simulation runs without reaching back into the system
  /// object after the result was returned.
  HeteroStats stats;
};

// ---- Multi-cluster scale-out dispatch ------------------------------

/// A complete N-cluster offload package: one host driver program that
/// dispatches a kernel to every cluster over the shared wire, plus the
/// per-cluster specs (for result readout). The driver:
///   1. ships every cluster's image + input back-to-back (the shared link
///      serialises dispatch — the bottleneck scale-out campaigns measure),
///   2. raises every fetch-enable, so all clusters compute concurrently,
///   3. retires clusters in order: arms cluster i's EOC line in the wake
///      mask, sleeps (WFE) until it rises, then moves to i+1,
///   4. pulls every cluster's results back, halts.
struct MultiSystemPackage {
  isa::Program host_program;
  std::vector<HostDriverSpec> specs;  ///< One per cluster, in order.
};

/// Package one KernelCase per cluster (cases.size() == the target system's
/// num_clusters). Cluster i's wire-side addresses carry the
/// memmap::kClusterL2Stride alias offset; host SRAM regions are laid out
/// sequentially from 64 KiB.
[[nodiscard]] MultiSystemPackage package_multi_offload(
    std::span<const kernels::KernelCase> cases,
    Addr l2_staging = memmap::kL2Base);

/// Outcome of one N-cluster offload run.
struct MultiOffloadResult {
  std::vector<std::vector<u8>> outputs;  ///< Per cluster, in order.
  u64 host_cycles = 0;
  HeteroStats stats;
};

/// Load `pkg` into `sys`, run to host halt, read every cluster's output
/// region back from host SRAM.
[[nodiscard]] MultiOffloadResult run_multi_offload(
    HeteroSystem& sys, const MultiSystemPackage& pkg,
    u64 max_host_cycles = 1'000'000'000ull);

/// Load `pkg` into `sys`, run to host halt, and read the driver's verdict:
/// on success the output bytes come back from host SRAM; on a permanent
/// offload failure (retry budget spent, watchdog expired) the result is a
/// typed error Status plus — when the package carries one — the
/// host-reference output, so the caller still observes correct results.
[[nodiscard]] SystemOffloadResult run_offload_with_fallback(
    HeteroSystem& sys, const FullSystemPackage& pkg,
    u64 max_host_cycles = 1'000'000'000ull);

}  // namespace ulp::system
