// Bare-metal host offload driver generator.
//
// Produces the Cortex-M program the host core of a HeteroSystem executes to
// perform one complete offload — the simulated counterpart of the low-level
// primitives Section III-A describes ("primitives to initialize the SPI and
// DMA peripherals of the MCU and invoke inbound or outbound DMA transfers
// through the SPI channel", plus the GPIO event handshake):
//
//   1. TX the serialised kernel image from host flash/SRAM to L2 staging,
//   2. TX the input payload to the L2 input buffer,
//   3. write the image length and raise the fetch-enable GPIO,
//   4. poll the EOC GPIO while the cluster runs,
//   5. RX the results from L2 back into host SRAM, halt.
//
// The generated program, the kernel image and the input payload are all the
// HeteroSystem needs to run the offload end-to-end in simulation.
#pragma once

#include "codegen/builder.hpp"
#include "isa/program.hpp"
#include "kernels/kernel.hpp"

namespace ulp::system {

struct HostDriverSpec {
  Addr host_image_addr = 0;  ///< Image bytes in host SRAM ("flash").
  u32 image_len = 0;
  Addr l2_staging = 0;       ///< Remote boot staging area.

  Addr host_input_addr = 0;
  u32 input_len = 0;
  Addr remote_input_addr = 0;

  Addr host_output_addr = 0;
  u32 output_len = 0;
  Addr remote_output_addr = 0;

  /// Optional concurrent host task (the Discussion section's heterogeneous
  /// task model: "an additional, separate task to be performed on the host
  /// at the same time"). While waiting for EOC the driver executes this
  /// emitter's code between GPIO checks instead of spinning; the emitted
  /// block runs once per wait-loop round. May clobber r5..r15.
  std::function<void(codegen::Builder&)> host_task;
  /// Host SRAM word incremented after each completed host-task round
  /// (0 = disabled); lets callers observe how much host work fit into the
  /// accelerator's compute time.
  Addr host_task_counter_addr = 0;

  /// Without a host task: sleep (WFE, clock-gated — the MCU's WFI+EXTI on
  /// the EOC line) instead of busy-polling. The host's sleep_cycles
  /// counter then reflects the real low-power wait.
  bool sleep_while_waiting = true;
};

/// The driver program for a Cortex-M-class host.
[[nodiscard]] isa::Program build_host_driver(
    const core::CoreFeatures& features, const HostDriverSpec& spec);

/// Convenience: a complete full-system package for a cluster KernelCase —
/// the host driver program with the kernel image + input payload attached
/// as host data segments, plus the spec used (for result readout).
struct FullSystemPackage {
  isa::Program host_program;
  HostDriverSpec spec;
};
[[nodiscard]] FullSystemPackage package_offload(
    const kernels::KernelCase& kc, Addr l2_staging = memmap::kL2Base);

}  // namespace ulp::system
