#include "system/hetero_system.hpp"

#include <algorithm>

#include "common/status.hpp"
#include "trace/metrics.hpp"

namespace ulp::system {

HeteroSystem::HeteroSystem(HeteroSystemParams params)
    : params_(std::move(params)),
      ratio_(params_.pulp_freq_hz, params_.mcu_freq_hz) {
  ULP_CHECK(params_.mcu_freq_hz > 0 && params_.pulp_freq_hz > 0,
            "clock frequencies must be positive");
  soc_ = std::make_unique<soc::PulpSoc>(params_.cluster_params);
  // Host-side fast-forward is only exact when the cluster also honours the
  // advance() contract, so both domains follow one mode switch.
  reference_stepping_ = soc_->cluster().reference_stepping();
  host_sram_ = std::make_unique<mem::Sram>(kHostSramBase,
                                           params_.host_sram_bytes);
  host_bus_ = std::make_unique<mem::SimpleBus>(host_sram_.get(), 1);

  soc::PulpSoc* soc = soc_.get();
  wire_ = std::make_unique<link::SpiWire>(
      params_.spi_lanes,
      [soc](Addr a, u8 b) { soc->qspi_write(a, std::span<const u8>(&b, 1)); },
      [soc](Addr a) {
        u8 b = 0;
        soc->qspi_read(a, std::span<u8>(&b, 1));
        return b;
      });
  if (params_.faults) {
    injector_ = std::make_unique<link::FaultInjector>(*params_.faults);
    wire_->set_fault_injector(injector_.get());
  }
  wire_->set_crc_frames(params_.crc_frames);
  spi_master_ = std::make_unique<host::SpiMasterPeripheral>(wire_.get(),
                                                            host_sram_.get());
  gpio_ = std::make_unique<host::GpioPeripheral>(
      [this]() { return eoc_line(); },
      [this](u32 image_len) {
        // A new fetch-enable edge opens a new EOC wait; the injector
        // decides up front whether this one sees the line stuck (a pure
        // function of seed + wait count, identical in both stepping
        // modes regardless of how often the line is sampled).
        if (injector_ != nullptr) injector_->begin_eoc_wait();
        soc_->boot_from_l2(params_.l2_staging, image_len);
        accel_started_ = true;
        if (sinks_.events != nullptr) {
          sinks_.events->instant(
              host_track_, "fetch_enable", host_cycles_,
              {{"image_len", static_cast<double>(image_len)}});
        }
      });
  host_bus_->add_peripheral(kSpiMasterBase, 0x100, spi_master_.get());
  host_bus_->add_peripheral(kGpioBase, 0x100, gpio_.get());

  // WFE on the host core sleeps until the EOC GPIO rises (WFI + EXTI).
  wake_unit_ = std::make_unique<host::HostWakeUnit>(
      [this]() { return eoc_line(); });
  host_core_ = std::make_unique<core::Core>(0, 1, core::cortex_m4_config(),
                                            host_bus_.get(),
                                            /*icache=*/nullptr,
                                            wake_unit_.get());
}

void HeteroSystem::attach_trace(const trace::Sinks& sinks) {
  sinks_ = sinks;
  traced_host_state_ = 255;
  host_span_open_ = false;
  traced_eoc_ = false;
  if (sinks_.events != nullptr) {
    host_track_ =
        sinks_.events->add_track("host.mcu", params_.mcu_freq_hz, 0);
    wire_->attach_trace(sinks_, sinks_.events->add_track(
                                    "link.spi", params_.mcu_freq_hz, 1));
  } else {
    wire_->attach_trace(sinks_, 0);
  }
  soc_->cluster().attach_trace(sinks_, params_.pulp_freq_hz);
}

void HeteroSystem::trace_sample() {
  trace::EventTrace* ev = sinks_.events;
  const core::Core& host = *host_core_;
  const u8 s = host.halted() ? 0 : (host.sleeping() ? u8{2} : u8{1});
  if (s != traced_host_state_) {
    if (host_span_open_) {
      if (ev != nullptr) ev->end(host_track_, host_cycles_);
      host_span_open_ = false;
      if (traced_host_state_ == 2 && sinks_.metrics != nullptr) {
        sinks_.metrics->histogram("host.sleep_cycles")
            .record(host_cycles_ - host_sleep_since_);
      }
    }
    if (s == 1) {
      if (ev != nullptr) {
        ev->begin(host_track_, "run", host_cycles_);
        host_span_open_ = true;
      }
    } else if (s == 2) {
      host_sleep_since_ = host_cycles_;
      if (ev != nullptr) {
        ev->begin(host_track_, "sleep", host_cycles_);
        host_span_open_ = true;
      }
    } else if (ev != nullptr) {
      ev->instant(host_track_, "halt", host_cycles_);
    }
    traced_host_state_ = s;
  }

  const bool eoc = eoc_line();
  if (eoc != traced_eoc_) {
    if (eoc && ev != nullptr) ev->instant(host_track_, "eoc", host_cycles_);
    traced_eoc_ = eoc;
  }
}

void HeteroSystem::load_host_program(const isa::Program& program) {
  host_program_ = program;
  for (const isa::Segment& seg : host_program_.data) {
    for (size_t i = 0; i < seg.bytes.size(); ++i) {
      host_sram_->store(seg.addr + static_cast<Addr>(i), 1, seg.bytes[i]);
    }
  }
  host_core_->reset(&host_program_);
  accel_started_ = false;
  ratio_.reset();
  host_cycles_ = 0;
  host_link_bound_cycles_ = 0;
}

void HeteroSystem::step() {
  // Sample the wire before the host acts: a cycle is link-bound when the
  // host executes with a transfer already in flight (poll loops, drains),
  // not when this very cycle kicks a transfer off.
  const bool wire_was_busy = wire_->busy();
  const core::StepState hs = host_core_->step();
  if (hs == core::StepState::kActive && wire_was_busy) {
    ++host_link_bound_cycles_;
  }
  wire_->step();
  ++host_cycles_;
  if (sinks_) trace_sample();
  // The cluster runs in its own clock domain (exact rational coupling).
  const u64 due = ratio_.tick();
  for (u64 i = 0; i < due; ++i) {
    if (accel_started_ && !soc_->cluster().all_halted()) {
      soc_->cluster().step();
    }
  }
}

// Only the cluster can change state while the host sleeps on the EOC GPIO
// with the wire quiet, so host time moves in whole inter-tick strides:
// charge the stride to the sleeping host, run the cluster ticks due at its
// end, re-check EOC. O(1) host-side work per *cluster* cycle even when the
// MCU clock is many times the PULP clock (the near-threshold operating
// points of interest), instead of O(mcu_freq / pulp_freq).
u64 HeteroSystem::fast_forward_host_sleep(u64 max_host_cycles) {
  cluster::Cluster& cl = soc_->cluster();
  const u64 budget = max_host_cycles - host_cycles_;
  u64 advanced = 0;
  while (!eoc_line() && advanced < budget) {
    if (!accel_started_ || cl.all_halted()) {
      // Nothing left that can raise EOC: sleep out the whole budget (the
      // per-cycle loop would spin to the same cycle before its budget
      // check fires). The tick schedule still accrues, as it does there.
      ratio_.tick_many(budget - advanced);
      advanced = budget;
      break;
    }
    const u64 ticks_left = ratio_.ticks_within(budget - advanced);
    if (ticks_left == 0) {
      // Budget ends before the next cluster tick: accrue the partial
      // remainder so the tick schedule stays aligned.
      ratio_.tick_many(budget - advanced);
      advanced = budget;
      break;
    }
    // Stride sizing: within the cluster's quiescent horizon no instruction
    // retires, so EOC cannot rise — run those ticks as one burst (the
    // horizon is unbounded while every core is parked; the cluster caps
    // its own windows at DMA completions internally). When the horizon is
    // zero a core acts on the very next tick; take it alone and re-check
    // EOC. The last consumed host cycle's tick batch is indivisible (the
    // reference loop runs the whole batch before the host's next wake
    // check too), so EOC rising inside it is observed one host step later
    // in both modes.
    // With the cluster's block cache active a zero horizon need not mean
    // tick-at-a-time: hand the cluster the whole remaining tick budget and
    // let it retire cached blocks, stopping right after the step that
    // raises EOC (blocks and quiescent windows cannot raise it), which the
    // rewind below maps onto the same host wake cycle as tick-wise runs.
    const u64 horizon = cl.quiescent_horizon();
    const u64 stride = (horizon == 0 && cl.block_cache_enabled())
                           ? ticks_left
                           : std::min(std::max<u64>(horizon, 1), ticks_left);
    const ClockRatio before = ratio_;
    const ClockRatio::TickRun run = ratio_.consume_ticks(stride);
    const u64 done = cl.advance(run.ticks, /*stop_at_eoc_rise=*/true);
    if (done < run.ticks) {
      // The cluster halted or raised EOC partway through the burst and its
      // clock froze (halt), exactly as the per-cycle loop freezes it.
      // Rewind the tick schedule to the host cycle whose batch held the
      // last executed tick: the host wakes on the step after it, and any
      // remaining cluster ticks of that batch re-accrue through the
      // accumulator at subsequent host steps.
      ratio_ = before;
      advanced += ratio_.consume_ticks(done).cycles;
    } else {
      advanced += run.cycles;
    }
  }
  host_cycles_ += advanced;
  host_core_->charge_sleep_cycles(advanced);
  wire_->skip_idle(advanced);
  return advanced;
}

u64 HeteroSystem::run_to_host_halt(u64 max_host_cycles) {
  while (!host_core_->halted()) {
    ULP_CHECK(host_cycles_ < max_host_cycles,
              "full-system run exceeded host cycle budget");
    if (!reference_stepping_ && host_core_->sleeping() && !wire_->busy() &&
        !eoc_line()) {
      // EOC rises during a cluster batch; the host then wakes at its next
      // real step(), exactly one host cycle later — as with per-cycle
      // stepping, where the raising batch runs after the host's step.
      fast_forward_host_sleep(max_host_cycles);
      continue;
    }
    step();
  }
  return host_cycles_;
}

HeteroStats HeteroSystem::stats() const {
  HeteroStats s;
  s.host_cycles = host_cycles_;
  s.cluster_cycles = soc_->cluster().cycles();
  s.wire_bytes = wire_->bytes_moved();
  s.wire_busy_host_cycles = wire_->busy_cycles();
  s.host_link_bound_cycles = host_link_bound_cycles_;
  s.accel_started = accel_started_;
  s.link_frames = wire_->frames();
  s.link_crc_errors = wire_->crc_errors();
  if (injector_ != nullptr) s.fault_count = injector_->counters().total_faults();
  return s;
}

}  // namespace ulp::system
