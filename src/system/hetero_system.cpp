#include "system/hetero_system.hpp"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>

#include "common/status.hpp"
#include "trace/metrics.hpp"

namespace ulp::system {

HeteroSystem::HeteroSystem(HeteroSystemParams params)
    : params_(std::move(params)) {
  ULP_CHECK(params_.mcu_freq_hz > 0 && params_.pulp_freq_hz > 0,
            "clock frequencies must be positive");
  ULP_CHECK(params_.num_clusters >= 1 && params_.num_clusters <= 32,
            "num_clusters must be in [1, 32] (the wake mask is one u32)");
  ULP_CHECK(params_.cluster_freq_hz.empty() ||
                params_.cluster_freq_hz.size() == params_.num_clusters,
            "cluster_freq_hz must be empty or have num_clusters entries");
  for (u32 c = 0; c < params_.num_clusters; ++c) {
    cluster::ClusterParams cp = params_.cluster_params;
    cp.cluster_id = c;
    socs_.push_back(std::make_unique<soc::PulpSoc>(cp));
    const double freq = params_.cluster_freq_hz.empty()
                            ? params_.pulp_freq_hz
                            : params_.cluster_freq_hz[c];
    ULP_CHECK(freq > 0, "cluster clock frequencies must be positive");
    ratios_.emplace_back(freq, params_.mcu_freq_hz);
  }
  started_.assign(params_.num_clusters, 0);
  traced_eoc_.assign(params_.num_clusters, 0);
  // Host-side fast-forward is only exact when the clusters also honour the
  // advance() contract, so every domain follows one mode switch.
  reference_stepping_ = socs_[0]->cluster().reference_stepping();
  for (const auto& soc : socs_) {
    ULP_CHECK(soc->cluster().reference_stepping() == reference_stepping_,
              "all clusters must share one stepping mode");
  }
  host_sram_ = std::make_unique<mem::Sram>(kHostSramBase,
                                           params_.host_sram_bytes);
  host_bus_ = std::make_unique<mem::SimpleBus>(host_sram_.get(), 1);

  wire_ = std::make_unique<link::SpiWire>(
      params_.spi_lanes,
      [this](Addr a, u8 b) {
        Addr local = 0;
        const u32 c = route_cluster(a, &local);
        socs_[c]->qspi_write(local, std::span<const u8>(&b, 1));
      },
      [this](Addr a) {
        Addr local = 0;
        const u32 c = route_cluster(a, &local);
        u8 b = 0;
        socs_[c]->qspi_read(local, std::span<u8>(&b, 1));
        return b;
      });
  if (params_.faults) {
    injector_ = std::make_unique<link::FaultInjector>(*params_.faults);
    wire_->set_fault_injector(injector_.get());
  }
  wire_->set_crc_frames(params_.crc_frames);
  spi_master_ = std::make_unique<host::SpiMasterPeripheral>(wire_.get(),
                                                            host_sram_.get());
  for (u32 c = 0; c < params_.num_clusters; ++c) {
    gpios_.push_back(std::make_unique<host::GpioPeripheral>(
        [this, c]() { return eoc_line(c); },
        [this, c](u32 image_len) {
          // A new fetch-enable edge opens a new EOC wait; the injector
          // decides up front whether this one sees the line stuck (a pure
          // function of seed + wait count, identical in both stepping
          // modes regardless of how often the line is sampled).
          if (injector_ != nullptr) injector_->begin_eoc_wait();
          socs_[c]->boot_from_l2(params_.l2_staging, image_len);
          started_[c] = 1;
          if (sinks_.events != nullptr) {
            std::vector<trace::EventTrace::Arg> args = {
                {"image_len", static_cast<double>(image_len)}};
            if (socs_.size() > 1) {
              args.push_back({"cluster", static_cast<double>(c)});
            }
            sinks_.events->instant(host_track_, "fetch_enable", host_cycles_,
                                   std::move(args));
          }
        }));
    host_bus_->add_peripheral(kGpioBase + c * 0x100, 0x100, gpios_[c].get());
  }
  host_bus_->add_peripheral(kSpiMasterBase, 0x100, spi_master_.get());
  wake_mask_ = std::make_unique<host::WakeMaskPeripheral>();
  host_bus_->add_peripheral(kWakeMaskBase, 0x100, wake_mask_.get());

  // WFE on the host core sleeps until an armed EOC GPIO rises (WFI + EXTI;
  // the reset wake mask arms cluster 0, the legacy behaviour).
  wake_unit_ = std::make_unique<host::HostWakeUnit>(
      [this]() { return wake_pending(); });
  host_core_ = std::make_unique<core::Core>(0, 1, core::cortex_m4_config(),
                                            host_bus_.get(),
                                            /*icache=*/nullptr,
                                            wake_unit_.get());
}

u32 HeteroSystem::route_cluster(Addr addr, Addr* local) const {
  // Addresses below the first alias window (TCDM debug pokes, cluster
  // peripherals) stay on cluster 0 untouched — exactly the legacy map.
  if (addr < memmap::kL2Base + memmap::kClusterL2Stride) {
    *local = addr;
    return 0;
  }
  const u64 idx = (addr - memmap::kL2Base) / memmap::kClusterL2Stride;
  ULP_CHECK(idx < socs_.size(),
            "QSPI address 0x" + std::to_string(addr) +
                " routes to cluster " + std::to_string(idx) +
                " but only " + std::to_string(socs_.size()) + " exist");
  *local = addr - static_cast<Addr>(idx) * memmap::kClusterL2Stride;
  return static_cast<u32>(idx);
}

bool HeteroSystem::wake_pending() const {
  const u32 mask = wake_mask_->mask();
  for (u32 c = 0; c < socs_.size(); ++c) {
    if (((mask >> c) & 1u) != 0 && eoc_line(c)) return true;
  }
  return false;
}

void HeteroSystem::attach_trace(const trace::Sinks& sinks) {
  sinks_ = sinks;
  traced_host_state_ = 255;
  host_span_open_ = false;
  traced_eoc_.assign(socs_.size(), 0);
  if (sinks_.events != nullptr) {
    host_track_ =
        sinks_.events->add_track("host.mcu", params_.mcu_freq_hz, 0);
    wire_->attach_trace(sinks_, sinks_.events->add_track(
                                    "link.spi", params_.mcu_freq_hz, 1));
  } else {
    wire_->attach_trace(sinks_, 0);
  }
  for (u32 c = 0; c < socs_.size(); ++c) {
    const double freq = params_.cluster_freq_hz.empty()
                            ? params_.pulp_freq_hz
                            : params_.cluster_freq_hz[c];
    // Cluster 0 keeps the legacy "cluster.*" names; siblings get a suffix.
    socs_[c]->cluster().attach_trace(
        sinks_, freq,
        c == 0 ? std::string("cluster") : "cluster" + std::to_string(c));
  }
}

void HeteroSystem::trace_sample() {
  trace::EventTrace* ev = sinks_.events;
  const core::Core& host = *host_core_;
  const u8 s = host.halted() ? 0 : (host.sleeping() ? u8{2} : u8{1});
  if (s != traced_host_state_) {
    if (host_span_open_) {
      if (ev != nullptr) ev->end(host_track_, host_cycles_);
      host_span_open_ = false;
      if (traced_host_state_ == 2 && sinks_.metrics != nullptr) {
        sinks_.metrics->histogram("host.sleep_cycles")
            .record(host_cycles_ - host_sleep_since_);
      }
    }
    if (s == 1) {
      if (ev != nullptr) {
        ev->begin(host_track_, "run", host_cycles_);
        host_span_open_ = true;
      }
    } else if (s == 2) {
      host_sleep_since_ = host_cycles_;
      if (ev != nullptr) {
        ev->begin(host_track_, "sleep", host_cycles_);
        host_span_open_ = true;
      }
    } else if (ev != nullptr) {
      ev->instant(host_track_, "halt", host_cycles_);
    }
    traced_host_state_ = s;
  }

  for (u32 c = 0; c < socs_.size(); ++c) {
    const bool eoc = eoc_line(c);
    if (eoc != (traced_eoc_[c] != 0)) {
      if (eoc && ev != nullptr) {
        ev->instant(host_track_,
                    c == 0 ? std::string("eoc")
                           : "eoc" + std::to_string(c),
                    host_cycles_);
      }
      traced_eoc_[c] = eoc ? 1 : 0;
    }
  }
}

void HeteroSystem::load_host_program(const isa::Program& program) {
  host_program_ = program;
  for (const isa::Segment& seg : host_program_.data) {
    for (size_t i = 0; i < seg.bytes.size(); ++i) {
      host_sram_->store(seg.addr + static_cast<Addr>(i), 1, seg.bytes[i]);
    }
  }
  host_core_->reset(&host_program_);
  started_.assign(socs_.size(), 0);
  for (ClockRatio& r : ratios_) r.reset();
  host_cycles_ = 0;
  host_link_bound_cycles_ = 0;
}

void HeteroSystem::step() {
  // Sample the wire before the host acts: a cycle is link-bound when the
  // host executes with a transfer already in flight (poll loops, drains),
  // not when this very cycle kicks a transfer off.
  const bool wire_was_busy = wire_->busy();
  const core::StepState hs = host_core_->step();
  if (hs == core::StepState::kActive && wire_was_busy) {
    ++host_link_bound_cycles_;
  }
  wire_->step();
  ++host_cycles_;
  if (sinks_) trace_sample();
  // Each cluster runs in its own clock domain (exact rational coupling).
  for (u32 c = 0; c < socs_.size(); ++c) {
    const u64 due = ratios_[c].tick();
    for (u64 i = 0; i < due; ++i) {
      if (started_[c] != 0 && !socs_[c]->cluster().all_halted()) {
        socs_[c]->cluster().step();
      }
    }
  }
}

// Only the cluster can change state while the host sleeps on the EOC GPIO
// with the wire quiet, so host time moves in whole inter-tick strides:
// charge the stride to the sleeping host, run the cluster ticks due at its
// end, re-check EOC. O(1) host-side work per *cluster* cycle even when the
// MCU clock is many times the PULP clock (the near-threshold operating
// points of interest), instead of O(mcu_freq / pulp_freq).
//
// This is the single-cluster fast path, byte-for-byte the pre-scale-out
// scheduler (the N=1 bit-exactness contract); fast_forward_multi below
// generalises it to N domains with a shared stride.
u64 HeteroSystem::fast_forward_solo(u64 max_host_cycles) {
  cluster::Cluster& cl = socs_[0]->cluster();
  ClockRatio& ratio = ratios_[0];
  const u64 budget = max_host_cycles - host_cycles_;
  u64 advanced = 0;
  while (!eoc_line() && advanced < budget) {
    if (started_[0] == 0 || cl.all_halted()) {
      // Nothing left that can raise EOC: sleep out the whole budget (the
      // per-cycle loop would spin to the same cycle before its budget
      // check fires). The tick schedule still accrues, as it does there.
      ratio.tick_many(budget - advanced);
      advanced = budget;
      break;
    }
    const u64 ticks_left = ratio.ticks_within(budget - advanced);
    if (ticks_left == 0) {
      // Budget ends before the next cluster tick: accrue the partial
      // remainder so the tick schedule stays aligned.
      ratio.tick_many(budget - advanced);
      advanced = budget;
      break;
    }
    // Stride sizing: within the cluster's quiescent horizon no instruction
    // retires, so EOC cannot rise — run those ticks as one burst (the
    // horizon is unbounded while every core is parked; the cluster caps
    // its own windows at DMA completions internally). When the horizon is
    // zero a core acts on the very next tick; take it alone and re-check
    // EOC. The last consumed host cycle's tick batch is indivisible (the
    // reference loop runs the whole batch before the host's next wake
    // check too), so EOC rising inside it is observed one host step later
    // in both modes.
    // With the cluster's block cache active a zero horizon need not mean
    // tick-at-a-time: hand the cluster the whole remaining tick budget and
    // let it retire cached blocks, stopping right after the step that
    // raises EOC (blocks and quiescent windows cannot raise it), which the
    // rewind below maps onto the same host wake cycle as tick-wise runs.
    const u64 horizon = cl.quiescent_horizon();
    const u64 stride = (horizon == 0 && cl.block_cache_enabled())
                           ? ticks_left
                           : std::min(std::max<u64>(horizon, 1), ticks_left);
    const ClockRatio before = ratio;
    const ClockRatio::TickRun run = ratio.consume_ticks(stride);
    const u64 done = cl.advance(run.ticks, /*stop_at_eoc_rise=*/true);
    if (done < run.ticks) {
      // The cluster halted or raised EOC partway through the burst and its
      // clock froze (halt), exactly as the per-cycle loop freezes it.
      // Rewind the tick schedule to the host cycle whose batch held the
      // last executed tick: the host wakes on the step after it, and any
      // remaining cluster ticks of that batch re-accrue through the
      // accumulator at subsequent host steps.
      ratio = before;
      advanced += ratio.consume_ticks(done).cycles;
    } else {
      advanced += run.cycles;
    }
  }
  host_cycles_ += advanced;
  host_core_->charge_sleep_cycles(advanced);
  wire_->skip_idle(advanced);
  return advanced;
}

// N-cluster generalisation: all domains share one host-cycle stride, capped
// so that no cluster can act (issue an instruction or wake a sleeper —
// hence raise EOC) strictly inside it. A cluster whose horizon is zero may
// act on its very next tick, which pins the stride to one host cycle: its
// tick batch for that cycle is indivisible, exactly as in step(), so a
// wake raised inside the batch is observed at the host's next real step in
// both modes.
u64 HeteroSystem::fast_forward_multi(u64 max_host_cycles) {
  const u64 budget = max_host_cycles - host_cycles_;
  u64 advanced = 0;
  while (advanced < budget && !wake_pending()) {
    u64 stride = budget - advanced;
    bool any_live = false;
    for (u32 c = 0; c < socs_.size(); ++c) {
      cluster::Cluster& cl = socs_[c]->cluster();
      if (started_[c] == 0 || cl.all_halted()) continue;
      any_live = true;
      const u64 horizon = cl.quiescent_horizon();
      const u64 limit =
          horizon == 0
              ? 1
              : std::max<u64>(ratios_[c].cycles_for_at_most_ticks(horizon),
                              1);
      stride = std::min(stride, limit);
    }
    if (!any_live) {
      // Nothing left that can raise an armed EOC: sleep out the budget;
      // every tick schedule still accrues, as in the per-cycle loop.
      for (ClockRatio& r : ratios_) r.tick_many(budget - advanced);
      advanced = budget;
      break;
    }
    for (u32 c = 0; c < socs_.size(); ++c) {
      const u64 due = ratios_[c].tick_many(stride);
      if (due == 0) continue;
      cluster::Cluster& cl = socs_[c]->cluster();
      if (started_[c] != 0 && !cl.all_halted()) {
        // advance() stops early at all-halt, freezing the cluster clock
        // exactly as the per-cycle loop's all_halted() guard does; the
        // remaining due ticks of this stride are then no-ops there too.
        cl.advance(due);
      }
    }
    advanced += stride;
  }
  host_cycles_ += advanced;
  host_core_->charge_sleep_cycles(advanced);
  wire_->skip_idle(advanced);
  return advanced;
}

u64 HeteroSystem::fast_forward_host_sleep(u64 max_host_cycles) {
  return socs_.size() == 1 ? fast_forward_solo(max_host_cycles)
                           : fast_forward_multi(max_host_cycles);
}

std::string HeteroSystem::stuck_report() const {
  char mask[16];
  std::snprintf(mask, sizeof(mask), "0x%x", wake_mask_->mask());
  std::string out = "host " + host_core_->state_brief() + ", wake mask " +
                    mask;
  for (u32 c = 0; c < socs_.size(); ++c) {
    out += "\ncluster " + std::to_string(c) + " ";
    out += started_[c] != 0 ? "[started" : "[not started";
    out += socs_[c]->eoc_gpio() ? ", eoc high] " : ", eoc low] ";
    out += socs_[c]->cluster().deadlock_report();
  }
  return out;
}

u64 HeteroSystem::run_to_host_halt(u64 max_host_cycles) {
  while (!host_core_->halted()) {
    ULP_CHECK(host_cycles_ < max_host_cycles,
              "full-system run exceeded host cycle budget; " +
                  stuck_report());
    if (!reference_stepping_ && host_core_->sleeping() && !wire_->busy() &&
        !wake_pending()) {
      // EOC rises during a cluster batch; the host then wakes at its next
      // real step(), exactly one host cycle later — as with per-cycle
      // stepping, where the raising batch runs after the host's step.
      fast_forward_host_sleep(max_host_cycles);
      continue;
    }
    step();
  }
  return host_cycles_;
}

Status HeteroSystem::save(snapshot::Writer& w) const {
  namespace sec = snapshot::section;
  w.begin_section(sec::kSysMeta);
  w.put_u32(static_cast<u32>(socs_.size()));
  w.put_u32(params_.spi_lanes);
  w.put_u32(params_.host_sram_bytes);
  w.put_bool(params_.crc_frames);
  w.put_bool(injector_ != nullptr);
  for (const ClockRatio& ratio : ratios_) {
    w.put_u64(ratio.numerator());
    w.put_u64(ratio.denominator());
  }
  w.end_section();

  w.begin_section(sec::kSysHostProgram);
  w.put_blob(isa::serialize(host_program_));
  w.end_section();

  w.begin_section(sec::kSysHostState);
  w.put_u64(host_cycles_);
  w.put_u64(host_link_bound_cycles_);
  w.put_bytes(started_);
  for (const ClockRatio& ratio : ratios_) w.put_u64(ratio.accumulator());
  w.put_u32(wake_mask_->mask());
  w.put_u32(spi_master_->remote_addr_reg());
  w.put_u32(spi_master_->local_addr_reg());
  w.put_u32(spi_master_->len_reg());
  for (const auto& gpio : gpios_) {
    w.put_u32(gpio->out_reg());
    w.put_u32(gpio->img_len_reg());
  }
  if (Status s = host_core_->save(w); !s.ok()) return s;
  w.end_section();

  w.begin_section(sec::kSysHostSram);
  w.put_blob(host_sram_->bytes());
  w.end_section();

  w.begin_section(sec::kSysWire);
  if (Status s = wire_->save(w); !s.ok()) return s;
  w.end_section();

  if (injector_ != nullptr) {
    w.begin_section(sec::kSysInjector);
    if (Status s = injector_->save(w); !s.ok()) return s;
    w.end_section();
  }

  // Each cluster is a complete standalone snapshot (own header + CRC) in
  // one section, so the cluster format can evolve independently and a
  // cluster-only tool can open the blob directly.
  for (u32 c = 0; c < socs_.size(); ++c) {
    snapshot::Writer cw;
    if (Status s = socs_[c]->save(cw); !s.ok()) return s;
    w.begin_section(sec::kSysClusterBase + c);
    w.put_blob(cw.finish());
    w.end_section();
  }
  return Status{};
}

Status HeteroSystem::restore(snapshot::Reader& r) {
  if (Status s = restore_pass(r, /*apply=*/false); !s.ok()) return s;
  return restore_pass(r, /*apply=*/true);
}

Status HeteroSystem::restore_pass(snapshot::Reader& r, bool apply) {
  namespace sec = snapshot::section;

  if (Status s = r.enter(sec::kSysMeta); !s.ok()) return s;
  const u32 num_clusters = r.get_u32();
  const u32 lanes = r.get_u32();
  const u32 sram_bytes = r.get_u32();
  const bool crc_frames = r.get_bool();
  const bool has_injector = r.get_bool();
  bool ratios_match = true;
  if (num_clusters == socs_.size()) {
    for (const ClockRatio& ratio : ratios_) {
      const u64 num = r.get_u64();
      const u64 den = r.get_u64();
      if (num != ratio.numerator() || den != ratio.denominator()) {
        ratios_match = false;
      }
    }
  }
  if (r.status().ok() &&
      (num_clusters != socs_.size() || lanes != params_.spi_lanes ||
       sram_bytes != params_.host_sram_bytes ||
       crc_frames != params_.crc_frames ||
       has_injector != (injector_ != nullptr) || !ratios_match)) {
    return Status::Error(
        StatusCode::kInvalidArgument,
        "snapshot system geometry mismatch (snapshot has " +
            std::to_string(num_clusters) + " clusters; target has " +
            std::to_string(socs_.size()) + ")");
  }

  if (Status s = r.enter(sec::kSysHostProgram); !s.ok()) return s;
  const std::vector<u8> prog_image = r.get_blob();
  isa::Program host_prog;
  if (r.status().ok()) {
    try {
      host_prog = isa::deserialize(prog_image);
    } catch (const std::exception& e) {
      return Status::Error(StatusCode::kInvalidArgument,
                           std::string("snapshot host program invalid: ") +
                               e.what());
    }
  }
  if (apply) host_program_ = std::move(host_prog);

  if (Status s = r.enter(sec::kSysHostState); !s.ok()) return s;
  const u64 host_cycles = r.get_u64();
  const u64 host_link_bound = r.get_u64();
  std::vector<u8> started(socs_.size());
  r.get_bytes(started);
  std::vector<u64> accumulators(socs_.size());
  for (u64& acc : accumulators) acc = r.get_u64();
  const u32 wake_mask = r.get_u32();
  const u32 spi_remote = r.get_u32();
  const u32 spi_local = r.get_u32();
  const u32 spi_len = r.get_u32();
  std::vector<std::pair<u32, u32>> gpio_regs(socs_.size());
  for (auto& [out, img_len] : gpio_regs) {
    out = r.get_u32();
    img_len = r.get_u32();
  }
  if (r.status().ok()) {
    for (const u8 flag : started) {
      if (flag > 1) {
        return Status::Error(StatusCode::kInvalidArgument,
                             "snapshot cluster-started flag malformed");
      }
    }
    for (u32 c = 0; c < socs_.size(); ++c) {
      if (accumulators[c] >= ratios_[c].denominator()) {
        return Status::Error(StatusCode::kInvalidArgument,
                             "snapshot clock accumulator out of range");
      }
    }
  }
  if (apply) {
    host_cycles_ = host_cycles;
    host_link_bound_cycles_ = host_link_bound;
    started_ = std::move(started);
    for (u32 c = 0; c < socs_.size(); ++c) {
      ratios_[c].set_accumulator(accumulators[c]);
    }
    wake_mask_->write32(0, wake_mask);
    spi_master_->restore_regs(spi_remote, spi_local, spi_len);
    for (u32 c = 0; c < socs_.size(); ++c) {
      gpios_[c]->restore_regs(gpio_regs[c].first, gpio_regs[c].second);
    }
    // Reset against the restored driver before the core's own restore
    // overwrites the architectural fields (same contract as the cluster).
    host_core_->reset(&host_program_);
  }
  if (Status s = host_core_->restore(r, apply); !s.ok()) return s;

  if (Status s = r.enter(sec::kSysHostSram); !s.ok()) return s;
  const std::vector<u8> sram_image = r.get_blob();
  if (r.status().ok() && sram_image.size() != host_sram_->bytes().size()) {
    return Status::Error(StatusCode::kInvalidArgument,
                         "snapshot host SRAM image size mismatch");
  }
  if (apply) {
    std::memcpy(host_sram_->bytes().data(), sram_image.data(),
                sram_image.size());
  }

  if (Status s = r.enter(sec::kSysWire); !s.ok()) return s;
  if (Status s = wire_->restore(r, apply); !s.ok()) return s;

  if (injector_ != nullptr) {
    if (Status s = r.enter(sec::kSysInjector); !s.ok()) return s;
    if (Status s = injector_->restore(r, apply); !s.ok()) return s;
  }

  for (u32 c = 0; c < socs_.size(); ++c) {
    if (Status s = r.enter(sec::kSysClusterBase + c); !s.ok()) return s;
    const std::vector<u8> blob = r.get_blob();
    if (Status s = r.status(); !s.ok()) return s;
    snapshot::Reader sub;
    if (Status s = sub.open(blob); !s.ok()) return s;
    if (Status s = socs_[c]->restore_pass(sub, apply); !s.ok()) return s;
  }

  if (apply) {
    if (wire_->busy()) {
      // The in-flight frame's local side is always the host SRAM (the SPI
      // master peripheral provides exactly these buffer accessors at
      // start(); see SpiMasterPeripheral::write32, CMD).
      mem::Sram* local = host_sram_.get();
      wire_->rearm_local(
          [local](Addr a) {
            return static_cast<u8>(local->load(a, 1, false));
          },
          [local](Addr a, u8 b) { local->store(a, 1, b); });
    }
    if (sinks_) {
      // Host-cycle stamps jump with the restored clock; restart the trace
      // bookkeeping as attach_trace does (cluster tracks were already
      // tidied by each cluster's own restore).
      if (sinks_.events != nullptr) {
        sinks_.events->close_open_spans(host_track_);
      }
      traced_host_state_ = 255;
      host_span_open_ = false;
      traced_eoc_.assign(socs_.size(), 0);
    }
  }
  return r.status();
}

HeteroStats HeteroSystem::stats() const {
  HeteroStats s;
  s.host_cycles = host_cycles_;
  for (u32 c = 0; c < socs_.size(); ++c) {
    const u64 cycles = socs_[c]->cluster().cycles();
    s.cluster_cycles += cycles;
    s.cluster_cycles_each.push_back(cycles);
    s.cluster_started_each.push_back(started_[c]);
    s.accel_started = s.accel_started || started_[c] != 0;
  }
  s.wire_bytes = wire_->bytes_moved();
  s.wire_busy_host_cycles = wire_->busy_cycles();
  s.host_link_bound_cycles = host_link_bound_cycles_;
  s.link_frames = wire_->frames();
  s.link_crc_errors = wire_->crc_errors();
  if (injector_ != nullptr) s.fault_count = injector_->counters().total_faults();
  return s;
}

}  // namespace ulp::system
