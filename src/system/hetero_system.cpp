#include "system/hetero_system.hpp"

#include "common/status.hpp"

namespace ulp::system {

HeteroSystem::HeteroSystem(HeteroSystemParams params)
    : params_(std::move(params)) {
  ULP_CHECK(params_.mcu_freq_hz > 0 && params_.pulp_freq_hz > 0,
            "clock frequencies must be positive");
  soc_ = std::make_unique<soc::PulpSoc>(params_.cluster_params);
  host_sram_ = std::make_unique<mem::Sram>(kHostSramBase,
                                           params_.host_sram_bytes);
  host_bus_ = std::make_unique<mem::SimpleBus>(host_sram_.get(), 1);

  soc::PulpSoc* soc = soc_.get();
  wire_ = std::make_unique<link::SpiWire>(
      params_.spi_lanes,
      [soc](Addr a, u8 b) { soc->qspi_write(a, std::span<const u8>(&b, 1)); },
      [soc](Addr a) {
        u8 b = 0;
        soc->qspi_read(a, std::span<u8>(&b, 1));
        return b;
      });
  spi_master_ = std::make_unique<host::SpiMasterPeripheral>(wire_.get(),
                                                            host_sram_.get());
  gpio_ = std::make_unique<host::GpioPeripheral>(
      [soc]() { return soc->eoc_gpio(); },
      [this](u32 image_len) {
        soc_->boot_from_l2(params_.l2_staging, image_len);
        accel_started_ = true;
      });
  host_bus_->add_peripheral(kSpiMasterBase, 0x100, spi_master_.get());
  host_bus_->add_peripheral(kGpioBase, 0x100, gpio_.get());

  // WFE on the host core sleeps until the EOC GPIO rises (WFI + EXTI).
  wake_unit_ = std::make_unique<host::HostWakeUnit>(
      [soc]() { return soc->eoc_gpio(); });
  host_core_ = std::make_unique<core::Core>(0, 1, core::cortex_m4_config(),
                                            host_bus_.get(),
                                            /*icache=*/nullptr,
                                            wake_unit_.get());
}

void HeteroSystem::load_host_program(const isa::Program& program) {
  host_program_ = program;
  for (const isa::Segment& seg : host_program_.data) {
    for (size_t i = 0; i < seg.bytes.size(); ++i) {
      host_sram_->store(seg.addr + static_cast<Addr>(i), 1, seg.bytes[i]);
    }
  }
  host_core_->reset(&host_program_);
  accel_started_ = false;
  clock_accum_ = 0.0;
  host_cycles_ = 0;
}

void HeteroSystem::step() {
  host_core_->step();
  wire_->step();
  ++host_cycles_;
  // The cluster runs in its own clock domain.
  clock_accum_ += params_.pulp_freq_hz / params_.mcu_freq_hz;
  while (clock_accum_ >= 1.0) {
    clock_accum_ -= 1.0;
    if (accel_started_ && !soc_->cluster().all_halted()) {
      soc_->cluster().step();
    }
  }
}

u64 HeteroSystem::run_to_host_halt(u64 max_host_cycles) {
  while (!host_core_->halted()) {
    ULP_CHECK(host_cycles_ < max_host_cycles,
              "full-system run exceeded host cycle budget");
    step();
  }
  return host_cycles_;
}

HeteroStats HeteroSystem::stats() const {
  HeteroStats s;
  s.host_cycles = host_cycles_;
  s.cluster_cycles = soc_->cluster().cycles();
  s.wire_bytes = wire_->bytes_moved();
  s.wire_busy_host_cycles = wire_->busy_cycles();
  s.accel_started = accel_started_;
  return s;
}

}  // namespace ulp::system
