// Campaign result serialisation: JSON and CSV exports plus the human
// summary. Every emitter is deterministic — doubles print as shortest
// round-trip-exact %.17g, rows follow job-index order, and nothing
// wall-clock- or worker-dependent is included — so the files from a
// 1-worker and an N-worker run of the same campaign are byte-identical
// (the determinism tests and scripts/bench_throughput.sh diff them).
#pragma once

#include <string>

#include "batch/result.hpp"

namespace ulp::batch {

/// The whole campaign as a JSON document: the spec echo, one object per
/// job, and the aggregated summary.
[[nodiscard]] std::string to_json(const CampaignResult& result);

/// to_json to a file.
[[nodiscard]] Status write_json(const std::string& path,
                                const CampaignResult& result);

/// One CSV row per job through trace::CsvWriter (RFC 4180 quoting for the
/// kernel/fault/status text cells).
[[nodiscard]] Status write_csv(const std::string& path,
                               const CampaignResult& result);

/// Multi-line human digest of the totals (pass/fail counts, cycles,
/// energy, robustness counters).
[[nodiscard]] std::string summary_text(const CampaignResult& result);

/// Campaign-level profile aggregate: every profiled job's attribution
/// (per-pc counts, frames, stall buckets) in job-index order, plus merged
/// per-group profiles keyed "kernel/coresN" (jobs differing only in clock,
/// V_DD, faults or repeat share a code image, so their profiles fold).
/// Deterministic and worker-count-independent like to_json.
[[nodiscard]] std::string profile_json(const CampaignResult& result);

/// profile_json to a file.
[[nodiscard]] Status write_profile_json(const std::string& path,
                                        const CampaignResult& result);

}  // namespace ulp::batch
