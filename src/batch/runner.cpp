#include "batch/runner.hpp"

#include <exception>
#include <memory>

#include "common/rng.hpp"
#include "common/units.hpp"
#include "host/mcu.hpp"
#include "kernels/kernel.hpp"
#include "link/fault_injector.hpp"
#include "power/pulp_power.hpp"
#include "system/hetero_system.hpp"
#include "system/host_driver.hpp"

namespace ulp::batch {

namespace {

const kernels::KernelInfo* find_kernel(const std::string& name) {
  for (const auto& k : kernels::all_kernels()) {
    if (k.name == name) return &k;
  }
  for (const auto& k : kernels::extension_kernels()) {
    if (k.name == name) return &k;
  }
  return nullptr;
}

/// Resolves the job's fault spec into a config whose schedule seed is a
/// pure function of the *job's* derived seed (mixed with the spec's own
/// seed key, so distinct specs stay distinct): job #k draws the same fault
/// schedule alone as inside any campaign, on any worker.
Status job_fault_config(const JobSpec& spec, link::FaultConfig* out) {
  const Status s = link::FaultInjector::parse(spec.fault_spec, out);
  if (!s.ok()) return s;
  out->seed = derive_seed(spec.seed, out->seed);
  return {};
}

void fill_cluster_stats(const cluster::ClusterStats& stats, JobResult* r) {
  r->total_instrs = stats.total_instrs();
  r->tcdm_conflicts = stats.tcdm_conflicts;
  r->icache_misses = stats.icache_misses;
}

JobResult run_analytic(const JobSpec& spec, const kernels::KernelInfo& info,
                       const power::OperatingPoint& op) {
  JobResult r;
  r.spec = spec;

  const auto cfg = core::or10n_config();
  const kernels::KernelCase kc = info.factory(
      cfg.features, spec.num_cores, kernels::Target::kCluster, spec.seed);

  const host::McuSpec& mcu = host::stm32l476();
  link::SpiLinkConfig lcfg;
  lcfg.lanes = mcu.spi_lanes;
  lcfg.max_freq_hz = mcu.spi_max_hz;
  runtime::OffloadSession session(mcu, mhz(spec.mcu_mhz),
                                  link::SpiLink(lcfg));
  session.set_reference_stepping(spec.reference_stepping);

  profile::ClusterProfiler profiler;
  if (spec.collect_profile) session.attach_profile(&profiler);

  std::unique_ptr<link::FaultInjector> injector;
  if (!spec.fault_spec.empty()) {
    link::FaultConfig fcfg;
    const Status s = job_fault_config(spec, &fcfg);
    if (!s.ok()) {
      r.status = s;
      return r;
    }
    injector = std::make_unique<link::FaultInjector>(fcfg);
    session.attach_faults(injector.get());
  }

  const runtime::OffloadOutcome outcome = runtime::run_with_host_fallback(
      session, kc.offload_request(), op, spec.num_cores);

  r.status = outcome.status;
  r.pass = outcome.output == kc.expected;
  r.used_host_fallback = outcome.used_host_fallback;
  r.timing = outcome.timing;
  r.robust = outcome.robust;
  r.accel_cycles = outcome.timing.accel_cycles;
  fill_cluster_stats(outcome.stats, &r);
  r.energy =
      session.energy(outcome, op, spec.iterations, spec.double_buffered);
  r.steady_power_w =
      session.steady_power_w(outcome, op, spec.double_buffered);
  if (injector != nullptr) {
    r.fault_count = injector->counters().total_faults();
  }
  if (spec.collect_profile) {
    r.profile.collected = true;
    r.profile.cluster = profiler.data();
  }
  return r;
}

JobResult run_cosim(const JobSpec& spec, const kernels::KernelInfo& info,
                    const power::OperatingPoint& op) {
  JobResult r;
  r.spec = spec;

  const auto cfg = core::or10n_config();
  const kernels::KernelCase kc = info.factory(
      cfg.features, spec.num_cores, kernels::Target::kCluster, spec.seed);

  system::HeteroSystemParams params;
  params.mcu_freq_hz = mhz(spec.mcu_mhz);
  params.pulp_freq_hz = op.freq_hz;
  params.cluster_params.num_cores = spec.num_cores;
  params.cluster_params.reference_stepping = spec.reference_stepping;

  const bool robust = !spec.fault_spec.empty();
  if (robust) {
    link::FaultConfig fcfg;
    const Status s = job_fault_config(spec, &fcfg);
    if (!s.ok()) {
      r.status = s;
      return r;
    }
    params.crc_frames = true;
    params.faults = fcfg;
  }

  const system::FullSystemPackage pkg =
      robust ? system::package_robust_offload(kc) : system::package_offload(kc);
  system::HeteroSystem sys(params);

  profile::ClusterProfiler cluster_prof;
  profile::CoreProfiler host_prof;
  if (spec.collect_profile) {
    cluster_prof.attach(sys.soc().cluster());
    host_prof.attach(sys.host_core());
  }

  const system::SystemOffloadResult res =
      system::run_offload_with_fallback(sys, pkg);

  if (spec.collect_profile) {
    cluster_prof.capture();
    host_prof.capture(sys.host_program(),
                      sys.stats().host_link_bound_cycles);
    r.profile.collected = true;
    r.profile.cluster = cluster_prof.data();
    r.profile.has_host = true;
    r.profile.host = host_prof.data();
  }

  r.status = res.status;
  r.pass = res.output == kc.expected;
  r.used_host_fallback = res.used_host_fallback;
  r.host_cycles = res.host_cycles;
  r.accel_cycles = res.stats.cluster_cycles;
  r.wire_bytes = res.stats.wire_bytes;
  r.link_crc_errors = res.stats.link_crc_errors;
  r.fault_count = res.stats.fault_count;
  return r;
}

}  // namespace

JobResult run_job(const JobSpec& spec) {
  try {
    const kernels::KernelInfo* info = find_kernel(spec.kernel);
    if (info == nullptr) {
      JobResult r;
      r.spec = spec;
      r.status = Status::Error(StatusCode::kInvalidArgument,
                               "unknown kernel '" + spec.kernel + "'");
      return r;
    }
    power::PulpPowerModel pm;
    const power::OperatingPoint op{spec.vdd, pm.fmax_hz(spec.vdd)};
    return spec.engine == Engine::kCosim ? run_cosim(spec, *info, op)
                                         : run_analytic(spec, *info, op);
  } catch (const std::exception& e) {
    // A job that trips a simulator precondition (SimError) or any other
    // exception is isolated: the campaign records it and moves on.
    JobResult r;
    r.spec = spec;
    r.status = Status::Error(StatusCode::kUnknown,
                             std::string("job exception: ") + e.what());
    return r;
  }
}

}  // namespace ulp::batch
