#include "batch/runner.hpp"

#include <exception>
#include <memory>

#include "common/rng.hpp"
#include "common/units.hpp"
#include "host/mcu.hpp"
#include "kernels/kernel.hpp"
#include "link/fault_injector.hpp"
#include "power/pulp_power.hpp"
#include "runtime/scaleout.hpp"
#include "system/hetero_system.hpp"
#include "system/host_driver.hpp"

namespace ulp::batch {

namespace {

const kernels::KernelInfo* find_kernel(const std::string& name) {
  for (const auto& k : kernels::all_kernels()) {
    if (k.name == name) return &k;
  }
  for (const auto& k : kernels::extension_kernels()) {
    if (k.name == name) return &k;
  }
  return nullptr;
}

/// Resolves the job's fault spec into a config whose schedule seed is a
/// pure function of the *job's* derived seed (mixed with the spec's own
/// seed key, so distinct specs stay distinct): job #k draws the same fault
/// schedule alone as inside any campaign, on any worker.
Status job_fault_config(const JobSpec& spec, link::FaultConfig* out) {
  const Status s = link::FaultInjector::parse(spec.fault_spec, out);
  if (!s.ok()) return s;
  out->seed = derive_seed(spec.seed, out->seed);
  return {};
}

void fill_cluster_stats(const cluster::ClusterStats& stats, JobResult* r) {
  r->total_instrs = stats.total_instrs();
  r->tcdm_conflicts = stats.tcdm_conflicts;
  r->icache_misses = stats.icache_misses;
  r->bc_hits = stats.block_cache.hits;
  r->bc_decodes = stats.block_cache.decodes;
  r->bc_flushes = stats.block_cache.flushes;
  r->bc_chained = stats.block_cache.chained;
  r->bc_dmap_fallbacks = stats.block_cache.dmap_fallbacks;
}

/// Per-cluster input shard seed: cluster 0 reuses the job seed (so an
/// N=1 scale-out cell is the exact legacy job), siblings derive theirs
/// from it. Distinct from the job-index seeds by construction — the
/// cluster index space (< 32) sits far below any campaign's job indices
/// only by luck, so tests/batch audits the combined space for collisions.
u64 cluster_shard_seed(u64 job_seed, u32 cluster) {
  return cluster == 0 ? job_seed : derive_seed(job_seed, cluster);
}

JobResult run_analytic(const JobSpec& spec, const kernels::KernelInfo& info,
                       const power::OperatingPoint& op) {
  JobResult r;
  r.spec = spec;

  const auto cfg = core::or10n_config();
  const kernels::KernelCase kc = info.factory(
      cfg.features, spec.num_cores, kernels::Target::kCluster, spec.seed);

  const host::McuSpec& mcu = host::stm32l476();
  link::SpiLinkConfig lcfg;
  lcfg.lanes = spec.lanes != 0 ? spec.lanes : mcu.spi_lanes;
  lcfg.max_freq_hz = mcu.spi_max_hz;
  runtime::OffloadSession session(mcu, mhz(spec.mcu_mhz),
                                  link::SpiLink(lcfg));
  session.set_reference_stepping(spec.reference_stepping);
  session.set_warm_start(spec.warm_start);

  profile::ClusterProfiler profiler;
  if (spec.collect_profile) session.attach_profile(&profiler);

  std::unique_ptr<link::FaultInjector> injector;
  if (!spec.fault_spec.empty()) {
    link::FaultConfig fcfg;
    const Status s = job_fault_config(spec, &fcfg);
    if (!s.ok()) {
      r.status = s;
      return r;
    }
    injector = std::make_unique<link::FaultInjector>(fcfg);
    session.attach_faults(injector.get());
  }

  if (spec.clusters == 1) {
    // The classic single-cluster job, kept as the exact legacy arithmetic
    // (the scale-out composition is algebraically identical for one
    // cluster but sums in a different order; campaign results are pinned
    // bit-for-bit).
    const runtime::OffloadOutcome outcome = runtime::run_with_host_fallback(
        session, kc.offload_request(), op, spec.num_cores);

    r.status = outcome.status;
    r.pass = outcome.output == kc.expected;
    r.used_host_fallback = outcome.used_host_fallback;
    r.timing = outcome.timing;
    r.robust = outcome.robust;
    r.accel_cycles = outcome.timing.accel_cycles;
    fill_cluster_stats(outcome.stats, &r);
    r.energy =
        session.energy(outcome, op, spec.iterations, spec.double_buffered);
    r.steady_power_w =
        session.steady_power_w(outcome, op, spec.double_buffered);
  } else {
    // Scale-out job: one kernel instance per cluster (input shards keyed
    // by cluster_shard_seed), each simulated through the shared session —
    // the one injector draws fault outcomes in submission order, exactly
    // the order the shared wire would serve the clusters.
    std::vector<runtime::OffloadOutcome> outcomes;
    r.pass = true;
    for (u32 c = 0; c < spec.clusters; ++c) {
      const kernels::KernelCase shard =
          c == 0 ? kc
                 : info.factory(cfg.features, spec.num_cores,
                                kernels::Target::kCluster,
                                cluster_shard_seed(spec.seed, c));
      runtime::OffloadOutcome o = runtime::run_with_host_fallback(
          session, shard.offload_request(), op, spec.num_cores);
      r.pass = r.pass && o.output == shard.expected;
      r.used_host_fallback = r.used_host_fallback || o.used_host_fallback;
      if (!o.status.ok() && r.status.ok()) r.status = o.status;
      r.accel_cycles += o.timing.accel_cycles;
      r.total_instrs += o.stats.total_instrs();
      r.tcdm_conflicts += o.stats.tcdm_conflicts;
      r.icache_misses += o.stats.icache_misses;
      r.bc_hits += o.stats.block_cache.hits;
      r.bc_decodes += o.stats.block_cache.decodes;
      r.bc_flushes += o.stats.block_cache.flushes;
      r.bc_chained += o.stats.block_cache.chained;
      r.bc_dmap_fallbacks += o.stats.block_cache.dmap_fallbacks;
      r.robust.crc_errors += o.robust.crc_errors;
      r.robust.naks += o.robust.naks;
      r.robust.retransmissions += o.robust.retransmissions;
      r.robust.watchdog_expiries += o.robust.watchdog_expiries;
      r.robust.retry_link_j += o.robust.retry_link_j;
      outcomes.push_back(std::move(o));
    }
    r.timing = runtime::compose_scaleout_timing(outcomes);
    r.energy = runtime::scaleout_energy(session, outcomes, op,
                                        spec.iterations,
                                        spec.double_buffered);
    r.steady_power_w = runtime::scaleout_steady_power_w(
        session, outcomes, op, spec.double_buffered);
  }
  if (injector != nullptr) {
    r.fault_count = injector->counters().total_faults();
  }
  if (spec.collect_profile) {
    r.profile.collected = true;
    r.profile.cluster = profiler.data();
  }
  return r;
}

JobResult run_cosim(const JobSpec& spec, const kernels::KernelInfo& info,
                    const power::OperatingPoint& op) {
  JobResult r;
  r.spec = spec;

  const auto cfg = core::or10n_config();
  const kernels::KernelCase kc = info.factory(
      cfg.features, spec.num_cores, kernels::Target::kCluster, spec.seed);

  system::HeteroSystemParams params;
  params.mcu_freq_hz = mhz(spec.mcu_mhz);
  params.pulp_freq_hz = op.freq_hz;
  if (spec.lanes != 0) params.spi_lanes = spec.lanes;
  params.num_clusters = spec.clusters;
  params.cluster_params.num_cores = spec.num_cores;
  params.cluster_params.reference_stepping = spec.reference_stepping;

  const bool robust = !spec.fault_spec.empty();
  if (robust) {
    link::FaultConfig fcfg;
    const Status s = job_fault_config(spec, &fcfg);
    if (!s.ok()) {
      r.status = s;
      return r;
    }
    // The multi-cluster dispatch driver has no CRC-retry protocol (only
    // the single-cluster robust driver does), so scale-out jobs run raw
    // framing: flip/drop faults corrupt payloads deterministically and
    // surface as pass=false; a stuck-EOC fault strands the sleeping
    // driver and surfaces as an isolated budget-exceeded job failure.
    params.crc_frames = spec.clusters == 1;
    params.faults = fcfg;
  }
  system::HeteroSystem sys(params);

  profile::ClusterProfiler cluster_prof;
  profile::CoreProfiler host_prof;
  if (spec.collect_profile) {
    // Profiles attribute cluster 0 (every cluster runs the same kernel
    // shape, so its hotspots stand for the node) plus the host driver.
    cluster_prof.attach(sys.soc().cluster());
    host_prof.attach(sys.host_core());
  }

  if (spec.clusters == 1) {
    const system::FullSystemPackage pkg = robust
                                              ? system::package_robust_offload(kc)
                                              : system::package_offload(kc);
    const system::SystemOffloadResult res =
        system::run_offload_with_fallback(sys, pkg);
    r.status = res.status;
    r.pass = res.output == kc.expected;
    r.used_host_fallback = res.used_host_fallback;
    r.host_cycles = res.host_cycles;
    r.accel_cycles = res.stats.cluster_cycles;
    r.wire_bytes = res.stats.wire_bytes;
    r.link_crc_errors = res.stats.link_crc_errors;
    r.fault_count = res.stats.fault_count;
  } else {
    std::vector<kernels::KernelCase> cases;
    cases.push_back(kc);
    for (u32 c = 1; c < spec.clusters; ++c) {
      cases.push_back(info.factory(cfg.features, spec.num_cores,
                                   kernels::Target::kCluster,
                                   cluster_shard_seed(spec.seed, c)));
    }
    const system::MultiSystemPackage pkg =
        system::package_multi_offload(cases);
    const system::MultiOffloadResult res = system::run_multi_offload(sys, pkg);
    r.pass = true;
    for (u32 c = 0; c < spec.clusters; ++c) {
      r.pass = r.pass && res.outputs[c] == cases[c].expected;
    }
    r.host_cycles = res.host_cycles;
    r.accel_cycles = res.stats.cluster_cycles;
    r.wire_bytes = res.stats.wire_bytes;
    r.link_crc_errors = res.stats.link_crc_errors;
    r.fault_count = res.stats.fault_count;
  }

  if (spec.collect_profile) {
    cluster_prof.capture();
    host_prof.capture(sys.host_program(),
                      sys.stats().host_link_bound_cycles);
    r.profile.collected = true;
    r.profile.cluster = cluster_prof.data();
    r.profile.has_host = true;
    r.profile.host = host_prof.data();
  }
  return r;
}

}  // namespace

JobResult run_job(const JobSpec& spec) {
  try {
    const kernels::KernelInfo* info = find_kernel(spec.kernel);
    if (info == nullptr) {
      JobResult r;
      r.spec = spec;
      r.status = Status::Error(StatusCode::kInvalidArgument,
                               "unknown kernel '" + spec.kernel + "'");
      return r;
    }
    power::PulpPowerModel pm;
    const power::OperatingPoint op{spec.vdd, pm.fmax_hz(spec.vdd)};
    return spec.engine == Engine::kCosim ? run_cosim(spec, *info, op)
                                         : run_analytic(spec, *info, op);
  } catch (const std::exception& e) {
    // A job that trips a simulator precondition (SimError) or any other
    // exception is isolated: the campaign records it and moves on.
    JobResult r;
    r.spec = spec;
    r.status = Status::Error(StatusCode::kUnknown,
                             std::string("job exception: ") + e.what());
    return r;
  }
}

}  // namespace ulp::batch
