// Executes one campaign job on its simulation tier.
#pragma once

#include "batch/result.hpp"

namespace ulp::batch {

/// Runs `spec` to completion and returns its result. Never throws: setup
/// errors and escaped simulation exceptions are folded into the result's
/// Status so one broken job cannot abort a campaign. Thread-compatible —
/// every simulation object is local to the call; concurrent run_job calls
/// share nothing mutable.
[[nodiscard]] JobResult run_job(const JobSpec& spec);

}  // namespace ulp::batch
