#include "batch/campaign.hpp"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "common/rng.hpp"

namespace ulp::batch {

namespace {

std::string trim(std::string_view s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return std::string(s.substr(b, e - b));
}

std::vector<std::string> split(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      const std::string piece = trim(s.substr(start, i - start));
      if (!piece.empty()) out.push_back(piece);
      start = i + 1;
    }
  }
  return out;
}

Status parse_doubles(const std::string& key, std::string_view value,
                     std::vector<double>* out) {
  std::vector<double> parsed;
  for (const std::string& piece : split(value, ',')) {
    char* end = nullptr;
    const double v = std::strtod(piece.c_str(), &end);
    if (end == piece.c_str() || *end != '\0') {
      return Status::Error(StatusCode::kInvalidArgument,
                           key + ": not a number: '" + piece + "'");
    }
    parsed.push_back(v);
  }
  if (parsed.empty()) {
    return Status::Error(StatusCode::kInvalidArgument, key + ": empty list");
  }
  *out = std::move(parsed);
  return {};
}

Status parse_u64(const std::string& key, std::string_view value, u64* out) {
  const std::string v = trim(value);
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(v.c_str(), &end, 0);
  if (end == v.c_str() || *end != '\0') {
    return Status::Error(StatusCode::kInvalidArgument,
                         key + ": not an integer: '" + v + "'");
  }
  *out = parsed;
  return {};
}

}  // namespace

std::string JobSpec::label() const {
  // Default cells (clusters == 1, lanes == 0) keep the legacy label
  // byte-for-byte; scale-out cells widen the cores segment to
  // "cores<cores>x<clusters>" and append "/l<lanes>" after the mcu one.
  char cores_seg[48];
  if (clusters > 1) {
    std::snprintf(cores_seg, sizeof cores_seg, "cores%ux%u", num_cores,
                  clusters);
  } else {
    std::snprintf(cores_seg, sizeof cores_seg, "cores%u", num_cores);
  }
  char lanes_seg[24] = "";
  if (lanes != 0) std::snprintf(lanes_seg, sizeof lanes_seg, "/l%u", lanes);
  char buf[192];
  std::snprintf(buf, sizeof buf, "%s/%s/mcu%g%s/vdd%.2f/%s/r%u",
                kernel.c_str(), cores_seg, mcu_mhz, lanes_seg, vdd,
                fault_spec.empty() ? "clean" : fault_spec.c_str(), repeat);
  return buf;
}

std::vector<JobSpec> expand(const CampaignSpec& spec) {
  ULP_CHECK(!spec.kernels.empty() && !spec.num_cores.empty() &&
                !spec.clusters.empty() && !spec.mcu_mhz.empty() &&
                !spec.lanes.empty() && !spec.vdd.empty() &&
                !spec.faults.empty() && spec.repeats >= 1,
            "campaign axes must be non-empty");
  std::vector<JobSpec> jobs;
  jobs.reserve(spec.job_count());
  u64 index = 0;
  // Nesting order is part of the format: with the default size-1 clusters
  // and lanes axes every job keeps the exact index — hence derived seed —
  // it had before the scale-out axes existed.
  for (const std::string& kernel : spec.kernels) {
    for (const u32 cores : spec.num_cores) {
      for (const u32 ncl : spec.clusters) {
        for (const double mcu : spec.mcu_mhz) {
          for (const u32 lanes : spec.lanes) {
            for (const double vdd : spec.vdd) {
              for (const std::string& faults : spec.faults) {
                for (u32 r = 0; r < spec.repeats; ++r) {
                  JobSpec j;
                  j.index = index;
                  j.engine = spec.engine;
                  j.kernel = kernel;
                  j.num_cores = cores;
                  j.clusters = ncl;
                  j.mcu_mhz = mcu;
                  j.lanes = lanes;
                  j.vdd = vdd;
                  j.fault_spec = faults == "none" ? std::string() : faults;
                  j.repeat = r;
                  // The one source of per-job randomness: position in the
                  // matrix. Execution order and worker count cannot touch
                  // it.
                  j.seed = derive_seed(spec.base_seed, index);
                  j.iterations = spec.iterations;
                  j.double_buffered = spec.double_buffered;
                  j.reference_stepping = spec.reference_stepping;
                  j.collect_profile = spec.collect_profile;
                  j.warm_start = spec.warm_start;
                  jobs.push_back(std::move(j));
                  ++index;
                }
              }
            }
          }
        }
      }
    }
  }
  return jobs;
}

Status parse_campaign_text(std::string_view text, CampaignSpec* out) {
  CampaignSpec spec = *out;
  std::istringstream in{std::string(text)};
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (const size_t hash = line.find('#'); hash != std::string::npos) {
      line.erase(hash);
    }
    const std::string stripped = trim(line);
    if (stripped.empty()) continue;
    const size_t eq = stripped.find('=');
    if (eq == std::string::npos) {
      return Status::Error(StatusCode::kInvalidArgument,
                           "campaign line " + std::to_string(lineno) +
                               ": expected 'key = value', got '" + stripped +
                               "'");
    }
    const std::string key = trim(stripped.substr(0, eq));
    const std::string value = trim(stripped.substr(eq + 1));
    Status s;
    if (key == "engine") {
      if (value == "analytic") {
        spec.engine = Engine::kAnalytic;
      } else if (value == "cosim") {
        spec.engine = Engine::kCosim;
      } else {
        s = Status::Error(StatusCode::kInvalidArgument,
                          "engine: expected analytic|cosim, got '" + value +
                              "'");
      }
    } else if (key == "kernels") {
      spec.kernels = split(value, ',');
      if (spec.kernels.empty()) {
        s = Status::Error(StatusCode::kInvalidArgument, "kernels: empty list");
      }
    } else if (key == "cores") {
      std::vector<double> v;
      s = parse_doubles(key, value, &v);
      if (s.ok()) {
        spec.num_cores.clear();
        for (const double d : v) {
          if (d < 1 || d != static_cast<u32>(d)) {
            s = Status::Error(StatusCode::kInvalidArgument,
                              "cores: expected positive integers");
            break;
          }
          spec.num_cores.push_back(static_cast<u32>(d));
        }
      }
    } else if (key == "clusters") {
      std::vector<double> v;
      s = parse_doubles(key, value, &v);
      if (s.ok()) {
        spec.clusters.clear();
        for (const double d : v) {
          if (d < 1 || d > 32 || d != static_cast<u32>(d)) {
            s = Status::Error(StatusCode::kInvalidArgument,
                              "clusters: expected integers in [1, 32]");
            break;
          }
          spec.clusters.push_back(static_cast<u32>(d));
        }
      }
    } else if (key == "lanes") {
      std::vector<double> v;
      s = parse_doubles(key, value, &v);
      if (s.ok()) {
        spec.lanes.clear();
        for (const double d : v) {
          if (d < 0 || d > 32 || d != static_cast<u32>(d)) {
            s = Status::Error(StatusCode::kInvalidArgument,
                              "lanes: expected integers in [0, 32]");
            break;
          }
          spec.lanes.push_back(static_cast<u32>(d));
        }
      }
    } else if (key == "mcu_mhz") {
      s = parse_doubles(key, value, &spec.mcu_mhz);
    } else if (key == "vdd") {
      s = parse_doubles(key, value, &spec.vdd);
    } else if (key == "faults") {
      spec.faults = split(value, ';');
      if (spec.faults.empty()) spec.faults = {"none"};
    } else if (key == "repeats") {
      u64 v = 0;
      s = parse_u64(key, value, &v);
      if (s.ok() && (v < 1 || v > 1'000'000)) {
        s = Status::Error(StatusCode::kInvalidArgument,
                          "repeats: out of range");
      }
      if (s.ok()) spec.repeats = static_cast<u32>(v);
    } else if (key == "seed") {
      s = parse_u64(key, value, &spec.base_seed);
    } else if (key == "iterations") {
      u64 v = 0;
      s = parse_u64(key, value, &v);
      if (s.ok() && (v < 1 || v > 1'000'000'000)) {
        s = Status::Error(StatusCode::kInvalidArgument,
                          "iterations: out of range");
      }
      if (s.ok()) spec.iterations = static_cast<u32>(v);
    } else if (key == "double_buffered") {
      spec.double_buffered = value == "1" || value == "true";
    } else if (key == "profile") {
      spec.collect_profile = value == "1" || value == "true";
    } else if (key == "reference_stepping") {
      spec.reference_stepping = value == "1" || value == "true";
    } else if (key == "warm_start") {
      spec.warm_start = value == "1" || value == "true";
    } else {
      s = Status::Error(StatusCode::kInvalidArgument,
                        "unknown campaign key '" + key + "'");
    }
    if (!s.ok()) {
      return Status::Error(s.code(), "campaign line " +
                                         std::to_string(lineno) + ": " +
                                         s.message());
    }
  }
  *out = std::move(spec);
  return {};
}

Status parse_campaign_file(const std::string& path, CampaignSpec* out) {
  std::ifstream in(path);
  if (!in.good()) {
    return Status::Error(StatusCode::kIoError,
                         "cannot open campaign file: " + path);
  }
  std::ostringstream text;
  text << in.rdbuf();
  return parse_campaign_text(text.str(), out);
}

}  // namespace ulp::batch
