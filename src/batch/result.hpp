// Per-job and campaign-level results.
//
// A JobResult is a pure function of its JobSpec: everything in it is
// deterministic simulation output (no wall-clock, no worker identity), so
// two campaign runs with different worker counts produce byte-identical
// aggregates. Failures are data, not control flow — a job that throws or
// returns a failing offload Status is recorded and the campaign proceeds.
#pragma once

#include <vector>

#include "batch/campaign.hpp"
#include "profile/profile.hpp"
#include "runtime/offload.hpp"

namespace ulp::batch {

struct JobResult {
  JobSpec spec;
  /// kOk: the simulation ran and the offload protocol succeeded (possibly
  /// by retry). Failed offloads carry kTimeout/kRetriesExhausted; setup
  /// errors (unknown kernel, bad fault spec) carry kInvalidArgument; an
  /// escaped simulation exception becomes kUnknown.
  Status status;
  /// Output bytes matched the kernel's golden reference (true for
  /// host-fallback results too: the fallback *is* the reference).
  bool pass = false;
  bool used_host_fallback = false;

  runtime::OffloadTiming timing;
  runtime::EnergyBreakdown energy;  ///< Analytic engine only.
  runtime::OffloadRobustStats robust;
  double steady_power_w = 0;  ///< Analytic engine only.

  // Cluster perf counters (both engines).
  u64 accel_cycles = 0;
  u64 total_instrs = 0;
  u64 tcdm_conflicts = 0;
  u64 icache_misses = 0;

  // Block-cache telemetry, summed over the job's clusters and cores
  // (cosim engine with the block cache on; zero otherwise). Deterministic
  // simulation output like the perf counters above.
  u64 bc_hits = 0;
  u64 bc_decodes = 0;  ///< Block decodes == lookup misses.
  u64 bc_flushes = 0;
  u64 bc_chained = 0;
  u64 bc_dmap_fallbacks = 0;

  // Co-simulation extras (zero on the analytic engine).
  u64 host_cycles = 0;
  u64 wire_bytes = 0;
  u64 link_crc_errors = 0;
  u64 fault_count = 0;  ///< Faults the injector actually fired (any engine).

  /// Cycle/energy attribution (JobSpec::collect_profile only; empty
  /// otherwise). Pure simulation output — identical across stepping modes
  /// and worker counts like every other field.
  profile::JobProfile profile;
};

/// Campaign-level merge, folded over jobs in index order.
struct CampaignTotals {
  u64 jobs = 0;
  u64 passed = 0;
  u64 failed = 0;  ///< !status.ok() — includes recovered-by-fallback jobs.
  u64 fallbacks = 0;
  u64 accel_cycles = 0;
  u64 host_cycles = 0;
  u64 total_instrs = 0;
  u64 crc_errors = 0;
  u64 retransmissions = 0;
  u64 watchdog_expiries = 0;
  u64 fault_count = 0;
  u64 bc_hits = 0;
  u64 bc_decodes = 0;
  u64 bc_flushes = 0;
  u64 bc_chained = 0;
  u64 bc_dmap_fallbacks = 0;
  double compute_s = 0;  ///< Sum of per-iteration compute windows.
  double total_s = 0;    ///< Sum of end-to-end offload times.
  double energy_j = 0;
};

/// Deterministic fold: index order, independent of completion order and
/// worker count (floating-point sums are order-sensitive, so the order is
/// pinned here instead of accumulating in completion order on workers).
[[nodiscard]] CampaignTotals aggregate_totals(
    const std::vector<JobResult>& jobs);

struct CampaignResult {
  CampaignSpec spec;
  std::vector<JobResult> jobs;  ///< Dense, job-index order.
  CampaignTotals totals;
  /// Wall-clock duration of the run. The one non-deterministic field —
  /// never serialised by aggregate.cpp; the CLI reports it separately.
  double elapsed_s = 0;
};

}  // namespace ulp::batch
