#include "batch/pool.hpp"

#include <chrono>

namespace ulp::batch {

Pool::Pool(u32 workers) {
  threads_.reserve(workers);
  for (u32 i = 0; i < workers; ++i) {
    threads_.emplace_back([this] { worker_loop(); });
  }
}

Pool::~Pool() {
  wait_idle();
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  work_ready_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void Pool::submit(std::function<void()> task) {
  if (threads_.empty()) {
    task();  // Inline mode: the submitting thread is the worker.
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  work_ready_.notify_one();
}

void Pool::wait_idle() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_.wait(lock, [this] { return in_flight_ == 0; });
}

bool Pool::wait_idle_for(u32 ms) {
  std::unique_lock<std::mutex> lock(mu_);
  return idle_.wait_for(lock, std::chrono::milliseconds(ms),
                        [this] { return in_flight_ == 0; });
}

u64 Pool::pending() const {
  std::lock_guard<std::mutex> lock(mu_);
  return in_flight_;
}

void Pool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_ready_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (--in_flight_ == 0) idle_.notify_all();
    }
  }
}

}  // namespace ulp::batch
