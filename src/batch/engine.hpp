// The campaign engine: expand a declarative matrix, fan the jobs out over
// a worker pool, aggregate deterministically.
#pragma once

#include <functional>

#include "batch/result.hpp"

namespace ulp::batch {

/// Point-in-time view of a running campaign, for live reporting. Counters
/// are monotonic; aggregate throughput is done/elapsed as seen so far.
struct ProgressSnapshot {
  u64 jobs_total = 0;
  u64 jobs_done = 0;
  u64 jobs_failed = 0;    ///< Of the done ones.
  u64 accel_cycles = 0;   ///< Simulated cluster cycles completed so far.
  double elapsed_s = 0;   ///< Wall-clock since the campaign started.

  [[nodiscard]] double jobs_per_s() const {
    return elapsed_s > 0 ? static_cast<double>(jobs_done) / elapsed_s : 0;
  }
  [[nodiscard]] double cycles_per_s() const {
    return elapsed_s > 0 ? static_cast<double>(accel_cycles) / elapsed_s : 0;
  }
};

struct RunOptions {
  /// Worker threads (0 = run inline on the calling thread). The result is
  /// byte-identical for every value; only wall-clock changes.
  u32 workers = 1;
  /// Invoked on the *calling* thread every `progress_period_ms` while the
  /// campaign runs, and once more after the last job. Null = silent.
  std::function<void(const ProgressSnapshot&)> on_progress;
  u32 progress_period_ms = 1000;
};

/// Runs the whole campaign: expand(spec), execute every job (failures are
/// isolated per job), fold totals in job-index order. Deterministic in
/// everything but wall-clock: the JSON/CSV serialisations of the returned
/// result are byte-identical across worker counts and schedules.
[[nodiscard]] CampaignResult run_campaign(const CampaignSpec& spec,
                                          const RunOptions& options = {});

}  // namespace ulp::batch
