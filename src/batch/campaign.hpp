// Declarative simulation campaigns: job matrices over the heterogeneous
// node's design space.
//
// A CampaignSpec names the axes — kernel x core count x MCU clock x PULP
// operating point (V_DD, which fixes the cluster clock at fmax) x link
// fault spec x repeat — and expand() unrolls their cross product into
// JobSpecs in a fixed document order. Each job's randomness (synthetic
// input data, link fault schedule) is keyed to derive_seed(base_seed,
// job_index): a pure function of the job's position in the matrix, so the
// schedule a job observes is identical whether it runs alone, first, last,
// on one worker or on sixteen.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.hpp"
#include "common/types.hpp"

namespace ulp::batch {

/// Which simulation tier executes a job.
enum class Engine : u8 {
  /// runtime::OffloadSession — cycle-accurate cluster, analytic host/link
  /// composition, energy model. The sweep workhorse.
  kAnalytic,
  /// system::HeteroSystem — both processors co-simulated cycle by cycle
  /// (the host runs the generated bare-metal driver). Slower; no energy.
  kCosim,
};

[[nodiscard]] constexpr const char* engine_name(Engine e) {
  return e == Engine::kAnalytic ? "analytic" : "cosim";
}

struct CampaignSpec {
  Engine engine = Engine::kAnalytic;
  std::vector<std::string> kernels = {"matmul"};
  std::vector<u32> num_cores = {4};
  /// Accelerator clusters per node (scale-out axis). 1 = the classic
  /// single-cluster node; N > 1 runs one kernel instance per cluster
  /// behind the shared link (analytic: runtime/scaleout composition;
  /// cosim: a multi-cluster HeteroSystem with the multi-dispatch driver).
  std::vector<u32> clusters = {1};
  std::vector<double> mcu_mhz = {16.0};
  /// SPI/QSPI lane counts; 0 = the engine default (the MCU spec's lane
  /// count for analytic runs, 4 for co-sim). The link-bandwidth axis of
  /// the scale-out frontier.
  std::vector<u32> lanes = {0};
  /// PULP operating points: V_DD in [0.5, 1.0]; the cluster runs at
  /// fmax(V_DD) (and the co-sim clock ratio follows).
  std::vector<double> vdd = {0.5};
  /// Link fault specs in link::FaultInjector::parse syntax; "none" (or an
  /// empty string) is a clean run. Specs contain commas, so lists of them
  /// are semicolon-separated in files/CLIs.
  std::vector<std::string> faults = {"none"};
  /// Statistical repeats: each repeat re-rolls the synthetic input (and
  /// fault schedule) through the derived seed.
  u32 repeats = 1;
  u64 base_seed = 1;
  /// Offload amortisation (Figure 5b's x-axis), analytic engine only.
  u32 iterations = 1;
  bool double_buffered = false;
  /// Per-campaign stepping override; unset = the process default.
  std::optional<bool> reference_stepping;
  /// Collect per-job cycle/energy attribution profiles (per-pc hotspots,
  /// stall buckets, call frames). Deterministic like every other result
  /// field: the aggregated profile is byte-identical across worker counts.
  bool collect_profile = false;
  /// Warm-start the accelerator boot from the process-wide post-boot
  /// snapshot cache (analytic engine only; see
  /// OffloadSession::set_warm_start). Byte-identical results by
  /// construction, so neither a result axis nor echoed in aggregates.
  bool warm_start = false;

  [[nodiscard]] u64 job_count() const {
    return static_cast<u64>(kernels.size()) * num_cores.size() *
           clusters.size() * mcu_mhz.size() * lanes.size() * vdd.size() *
           faults.size() * repeats;
  }
};

/// One cell of the expanded matrix. Carries everything a worker needs, by
/// value: jobs share no mutable state.
struct JobSpec {
  u64 index = 0;  ///< Position in document order; the aggregation key.
  Engine engine = Engine::kAnalytic;
  std::string kernel;
  u32 num_cores = 4;
  u32 clusters = 1;
  double mcu_mhz = 16.0;
  u32 lanes = 0;  ///< 0 = engine default.
  double vdd = 0.5;
  std::string fault_spec;  ///< Normalised: "" = clean run.
  u32 repeat = 0;
  u64 seed = 0;  ///< derive_seed(base_seed, index).
  u32 iterations = 1;
  bool double_buffered = false;
  std::optional<bool> reference_stepping;
  bool collect_profile = false;
  bool warm_start = false;

  /// Compact human-readable identity, e.g.
  /// "matmul/cores4/mcu16/vdd0.50/clean/r0". Scale-out cells extend it:
  /// clusters > 1 makes the cores segment "cores4x2" (cores x clusters)
  /// and an explicit lane count appends "/l2" after the mcu segment —
  /// default cells keep the legacy label byte-for-byte.
  [[nodiscard]] std::string label() const;
};

/// Unrolls the cross product in document order (kernels outermost, repeats
/// innermost) and stamps each job's index and derived seed. Axis *values*
/// are not validated here — an unknown kernel or a malformed fault spec
/// becomes a per-job failure at run time, isolated from its neighbours —
/// but empty axes are a spec error and throw.
[[nodiscard]] std::vector<JobSpec> expand(const CampaignSpec& spec);

/// Parses the campaign file format:
///
///   # comment
///   engine   = analytic          # or: cosim
///   kernels  = matmul, cnn
///   cores    = 4
///   clusters = 1, 2, 4            # accelerator clusters per node
///   mcu_mhz  = 16, 48
///   lanes    = 0, 1, 4            # SPI lanes; 0 = engine default
///   vdd      = 0.5, 0.8
///   faults   = none; seed=7,flip=1e-4
///   repeats  = 4
///   seed     = 1
///   iterations = 1
///   double_buffered = 0
///   profile  = 1                 # collect per-job attribution profiles
///
/// Unknown keys, unparsable numbers and out-of-range values are errors.
/// Keys not present keep the CampaignSpec defaults.
[[nodiscard]] Status parse_campaign_text(std::string_view text,
                                         CampaignSpec* out);

/// parse_campaign_text over a file's contents.
[[nodiscard]] Status parse_campaign_file(const std::string& path,
                                         CampaignSpec* out);

}  // namespace ulp::batch
