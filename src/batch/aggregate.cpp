#include "batch/aggregate.hpp"

#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>

#include "profile/report.hpp"
#include "trace/report.hpp"

namespace ulp::batch {

namespace {

std::string fmt_double(double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

std::string fmt_u64(u64 v) {
  return std::to_string(v);
}

/// Minimal JSON string escaping (quotes, backslashes, control chars) —
/// kernel names and fault specs are plain ASCII, but status messages may
/// quote arbitrary input.
std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void emit_spec(std::ostringstream& os, const CampaignSpec& spec) {
  os << "  \"campaign\": {\n";
  os << "    \"engine\": \"" << engine_name(spec.engine) << "\",\n";
  os << "    \"kernels\": [";
  for (size_t i = 0; i < spec.kernels.size(); ++i) {
    os << (i ? ", " : "") << '"' << json_escape(spec.kernels[i]) << '"';
  }
  os << "],\n    \"cores\": [";
  for (size_t i = 0; i < spec.num_cores.size(); ++i) {
    os << (i ? ", " : "") << spec.num_cores[i];
  }
  os << "],\n    \"clusters\": [";
  for (size_t i = 0; i < spec.clusters.size(); ++i) {
    os << (i ? ", " : "") << spec.clusters[i];
  }
  os << "],\n    \"mcu_mhz\": [";
  for (size_t i = 0; i < spec.mcu_mhz.size(); ++i) {
    os << (i ? ", " : "") << fmt_double(spec.mcu_mhz[i]);
  }
  os << "],\n    \"lanes\": [";
  for (size_t i = 0; i < spec.lanes.size(); ++i) {
    os << (i ? ", " : "") << spec.lanes[i];
  }
  os << "],\n    \"vdd\": [";
  for (size_t i = 0; i < spec.vdd.size(); ++i) {
    os << (i ? ", " : "") << fmt_double(spec.vdd[i]);
  }
  os << "],\n    \"faults\": [";
  for (size_t i = 0; i < spec.faults.size(); ++i) {
    os << (i ? ", " : "") << '"' << json_escape(spec.faults[i]) << '"';
  }
  os << "],\n";
  os << "    \"repeats\": " << spec.repeats << ",\n";
  os << "    \"seed\": " << spec.base_seed << ",\n";
  os << "    \"iterations\": " << spec.iterations << ",\n";
  os << "    \"double_buffered\": "
     << (spec.double_buffered ? "true" : "false") << "\n";
  os << "  },\n";
}

void emit_job(std::ostringstream& os, const JobResult& r) {
  const JobSpec& s = r.spec;
  os << "    {\"index\": " << s.index;
  os << ", \"kernel\": \"" << json_escape(s.kernel) << '"';
  os << ", \"cores\": " << s.num_cores;
  os << ", \"clusters\": " << s.clusters;
  os << ", \"mcu_mhz\": " << fmt_double(s.mcu_mhz);
  os << ", \"lanes\": " << s.lanes;
  os << ", \"vdd\": " << fmt_double(s.vdd);
  os << ", \"faults\": \"" << json_escape(s.fault_spec) << '"';
  os << ", \"repeat\": " << s.repeat;
  os << ", \"seed\": " << s.seed;
  os << ", \"status\": \"" << status_code_name(r.status.code()) << '"';
  if (!r.status.ok()) {
    os << ", \"message\": \"" << json_escape(r.status.message()) << '"';
  }
  os << ", \"pass\": " << (r.pass ? "true" : "false");
  os << ", \"host_fallback\": " << (r.used_host_fallback ? "true" : "false");
  os << ", \"accel_cycles\": " << fmt_u64(r.accel_cycles);
  os << ", \"instrs\": " << fmt_u64(r.total_instrs);
  os << ", \"tcdm_conflicts\": " << fmt_u64(r.tcdm_conflicts);
  os << ", \"icache_misses\": " << fmt_u64(r.icache_misses);
  os << ", \"bc_hits\": " << fmt_u64(r.bc_hits);
  os << ", \"bc_decodes\": " << fmt_u64(r.bc_decodes);
  os << ", \"bc_flushes\": " << fmt_u64(r.bc_flushes);
  os << ", \"bc_chained\": " << fmt_u64(r.bc_chained);
  os << ", \"bc_dmap_fallbacks\": " << fmt_u64(r.bc_dmap_fallbacks);
  os << ", \"t_binary_s\": " << fmt_double(r.timing.t_binary_s);
  os << ", \"t_in_s\": " << fmt_double(r.timing.t_in_s);
  os << ", \"t_out_s\": " << fmt_double(r.timing.t_out_s);
  os << ", \"t_compute_s\": " << fmt_double(r.timing.t_compute_s);
  os << ", \"t_retry_s\": " << fmt_double(r.timing.t_retry_s);
  os << ", \"mcu_j\": " << fmt_double(r.energy.mcu_j);
  os << ", \"pulp_j\": " << fmt_double(r.energy.pulp_j);
  os << ", \"link_j\": " << fmt_double(r.energy.link_j);
  os << ", \"steady_power_w\": " << fmt_double(r.steady_power_w);
  os << ", \"crc_errors\": " << fmt_u64(r.robust.crc_errors);
  os << ", \"naks\": " << fmt_u64(r.robust.naks);
  os << ", \"retransmissions\": " << fmt_u64(r.robust.retransmissions);
  os << ", \"watchdog_expiries\": " << fmt_u64(r.robust.watchdog_expiries);
  os << ", \"offload_attempts\": " << r.robust.offload_attempts;
  os << ", \"host_cycles\": " << fmt_u64(r.host_cycles);
  os << ", \"wire_bytes\": " << fmt_u64(r.wire_bytes);
  os << ", \"wire_crc_rejects\": " << fmt_u64(r.link_crc_errors);
  os << ", \"fault_count\": " << fmt_u64(r.fault_count);
  os << '}';
}

void emit_totals(std::ostringstream& os, const CampaignTotals& t) {
  os << "  \"summary\": {\n";
  os << "    \"jobs\": " << t.jobs << ",\n";
  os << "    \"passed\": " << t.passed << ",\n";
  os << "    \"failed\": " << t.failed << ",\n";
  os << "    \"fallbacks\": " << t.fallbacks << ",\n";
  os << "    \"accel_cycles\": " << t.accel_cycles << ",\n";
  os << "    \"host_cycles\": " << t.host_cycles << ",\n";
  os << "    \"instrs\": " << t.total_instrs << ",\n";
  os << "    \"crc_errors\": " << t.crc_errors << ",\n";
  os << "    \"retransmissions\": " << t.retransmissions << ",\n";
  os << "    \"watchdog_expiries\": " << t.watchdog_expiries << ",\n";
  os << "    \"fault_count\": " << t.fault_count << ",\n";
  os << "    \"bc_hits\": " << t.bc_hits << ",\n";
  os << "    \"bc_decodes\": " << t.bc_decodes << ",\n";
  os << "    \"bc_flushes\": " << t.bc_flushes << ",\n";
  os << "    \"bc_chained\": " << t.bc_chained << ",\n";
  os << "    \"bc_dmap_fallbacks\": " << t.bc_dmap_fallbacks << ",\n";
  os << "    \"compute_s\": " << fmt_double(t.compute_s) << ",\n";
  os << "    \"total_s\": " << fmt_double(t.total_s) << ",\n";
  os << "    \"energy_j\": " << fmt_double(t.energy_j) << "\n";
  os << "  }\n";
}

}  // namespace

std::string to_json(const CampaignResult& result) {
  std::ostringstream os;
  os << "{\n";
  emit_spec(os, result.spec);
  os << "  \"jobs\": [\n";
  for (size_t i = 0; i < result.jobs.size(); ++i) {
    emit_job(os, result.jobs[i]);
    os << (i + 1 < result.jobs.size() ? ",\n" : "\n");
  }
  os << "  ],\n";
  emit_totals(os, result.totals);
  os << "}\n";
  return os.str();
}

Status write_json(const std::string& path, const CampaignResult& result) {
  std::ofstream out(path);
  if (!out.good()) {
    return Status::Error(StatusCode::kIoError,
                         "cannot open JSON file: " + path);
  }
  out << to_json(result);
  out.flush();
  if (!out.good()) {
    return Status::Error(StatusCode::kIoError, "JSON write failed: " + path);
  }
  return {};
}

Status write_csv(const std::string& path, const CampaignResult& result) {
  trace::CsvWriter csv(
      path, {"index",           "kernel",        "cores",
             "clusters",        "mcu_mhz",       "lanes",
             "vdd",             "faults",
             "repeat",          "seed",          "status",
             "pass",            "host_fallback", "accel_cycles",
             "instrs",          "t_compute_s",   "t_retry_s",
             "total_s",         "energy_j",      "steady_power_w",
             "crc_errors",      "retransmissions",
             "watchdog_expiries", "host_cycles", "fault_count"});
  for (const JobResult& r : result.jobs) {
    const JobSpec& s = r.spec;
    const bool finished = r.status.ok() || r.used_host_fallback;
    const Status row = csv.row(std::vector<std::string>{
        fmt_u64(s.index), s.kernel, std::to_string(s.num_cores),
        std::to_string(s.clusters), fmt_double(s.mcu_mhz),
        std::to_string(s.lanes), fmt_double(s.vdd), s.fault_spec,
        std::to_string(s.repeat), fmt_u64(s.seed),
        status_code_name(r.status.code()), r.pass ? "1" : "0",
        r.used_host_fallback ? "1" : "0", fmt_u64(r.accel_cycles),
        fmt_u64(r.total_instrs), fmt_double(r.timing.t_compute_s),
        fmt_double(r.timing.t_retry_s),
        fmt_double(finished ? r.timing.total_s(s.iterations,
                                               s.double_buffered)
                            : 0.0),
        fmt_double(r.energy.total_j()), fmt_double(r.steady_power_w),
        fmt_u64(r.robust.crc_errors), fmt_u64(r.robust.retransmissions),
        fmt_u64(r.robust.watchdog_expiries), fmt_u64(r.host_cycles),
        fmt_u64(r.fault_count)});
    if (!row.ok()) return row;
  }
  return {};
}

std::string summary_text(const CampaignResult& result) {
  const CampaignTotals& t = result.totals;
  std::ostringstream os;
  os << "campaign: " << t.jobs << " jobs (" << engine_name(result.spec.engine)
     << " engine), " << t.passed << " passed, " << t.failed << " failed";
  if (t.fallbacks > 0) {
    os << " (" << t.fallbacks << " recovered by host fallback)";
  }
  os << "\n";
  os << "simulated: " << t.accel_cycles << " cluster cycles, "
     << t.total_instrs << " instructions";
  if (t.host_cycles > 0) os << ", " << t.host_cycles << " host cycles";
  os << "\n";
  if (t.fault_count > 0 || t.crc_errors > 0 || t.watchdog_expiries > 0) {
    os << "robustness: " << t.fault_count << " injected faults, "
       << t.crc_errors << " CRC rejects, " << t.retransmissions
       << " retransmissions, " << t.watchdog_expiries
       << " watchdog expiries\n";
  }
  if (result.spec.engine == Engine::kAnalytic) {
    char buf[128];
    std::snprintf(buf, sizeof buf,
                  "modelled: %.6f s offload time, %.6f J total energy\n",
                  t.total_s, t.energy_j);
    os << buf;
  }
  return os.str();
}

std::string profile_json(const CampaignResult& result) {
  // Merged per-group fold: jobs sharing a kernel x core-count cell run the
  // same program image, so their per-pc counts and frames add meaningfully.
  // std::map keys the groups in sorted order; jobs arrive in index order —
  // both independent of completion order and worker count.
  struct Group {
    u64 jobs = 0;
    profile::JobProfile merged;
  };
  std::map<std::string, Group> groups;

  std::ostringstream os;
  os << "{\n  \"jobs\": [\n";
  bool first = true;
  for (const JobResult& r : result.jobs) {
    if (!r.profile.collected) continue;
    if (!first) os << ",\n";
    first = false;
    os << "    {\"index\": " << r.spec.index << ", \"label\": \""
       << json_escape(r.spec.label())
       << "\", \"profile\": " << profile::to_json(r.profile) << '}';

    // Scale-out cells group separately (their profiles attribute cluster
    // 0 of an N-cluster node); default cells keep the legacy key.
    Group& g = groups[r.spec.kernel + "/cores" +
                      std::to_string(r.spec.num_cores) +
                      (r.spec.clusters > 1
                           ? "x" + std::to_string(r.spec.clusters)
                           : std::string())];
    ++g.jobs;
    g.merged.collected = true;
    g.merged.cluster.name = "cluster";
    g.merged.cluster.merge(r.profile.cluster);
    if (r.profile.has_host) {
      g.merged.has_host = true;
      g.merged.host.name = "host";
      g.merged.host.merge(r.profile.host);
    }
  }
  os << (first ? "" : "\n") << "  ],\n  \"groups\": {\n";
  for (auto it = groups.begin(); it != groups.end(); ++it) {
    if (it != groups.begin()) os << ",\n";
    os << "    \"" << json_escape(it->first)
       << "\": {\"jobs\": " << it->second.jobs
       << ", \"profile\": " << profile::to_json(it->second.merged) << '}';
  }
  os << (groups.empty() ? "" : "\n") << "  }\n}\n";
  return os.str();
}

Status write_profile_json(const std::string& path,
                          const CampaignResult& result) {
  std::ofstream out(path);
  if (!out.good()) {
    return Status::Error(StatusCode::kIoError,
                         "cannot open profile JSON file: " + path);
  }
  out << profile_json(result);
  out.flush();
  if (!out.good()) {
    return Status::Error(StatusCode::kIoError,
                         "profile JSON write failed: " + path);
  }
  return {};
}

}  // namespace ulp::batch
