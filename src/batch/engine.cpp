#include "batch/engine.hpp"

#include <atomic>
#include <chrono>

#include "batch/pool.hpp"
#include "batch/runner.hpp"

namespace ulp::batch {

CampaignTotals aggregate_totals(const std::vector<JobResult>& jobs) {
  CampaignTotals t;
  for (const JobResult& r : jobs) {  // Index order: the fold is pinned.
    ++t.jobs;
    if (r.pass) ++t.passed;
    if (!r.status.ok()) ++t.failed;
    if (r.used_host_fallback) ++t.fallbacks;
    t.accel_cycles += r.accel_cycles;
    t.host_cycles += r.host_cycles;
    t.total_instrs += r.total_instrs;
    t.crc_errors += r.robust.crc_errors + r.link_crc_errors;
    t.retransmissions += r.robust.retransmissions;
    t.watchdog_expiries += r.robust.watchdog_expiries;
    t.fault_count += r.fault_count;
    t.bc_hits += r.bc_hits;
    t.bc_decodes += r.bc_decodes;
    t.bc_flushes += r.bc_flushes;
    t.bc_chained += r.bc_chained;
    t.bc_dmap_fallbacks += r.bc_dmap_fallbacks;
    t.compute_s += r.timing.t_compute_s;
    if (r.status.ok() || r.used_host_fallback) {
      t.total_s +=
          r.timing.total_s(r.spec.iterations, r.spec.double_buffered);
    }
    t.energy_j += r.energy.total_j();
  }
  return t;
}

CampaignResult run_campaign(const CampaignSpec& spec,
                            const RunOptions& options) {
  CampaignResult result;
  result.spec = spec;
  std::vector<JobSpec> jobs = expand(spec);
  result.jobs.resize(jobs.size());

  // Shared progress counters. Workers only ever touch these atomics and
  // their own job's result slot; everything else is read-only.
  std::atomic<u64> done{0};
  std::atomic<u64> failed{0};
  std::atomic<u64> cycles{0};

  const auto t0 = std::chrono::steady_clock::now();
  auto snapshot = [&] {
    ProgressSnapshot s;
    s.jobs_total = jobs.size();
    s.jobs_done = done.load(std::memory_order_relaxed);
    s.jobs_failed = failed.load(std::memory_order_relaxed);
    s.accel_cycles = cycles.load(std::memory_order_relaxed);
    s.elapsed_s = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - t0)
                      .count();
    return s;
  };

  {
    Pool pool(options.workers);
    for (const JobSpec& job : jobs) {
      pool.submit([&result, &job, &done, &failed, &cycles] {
        JobResult r = run_job(job);
        cycles.fetch_add(r.accel_cycles, std::memory_order_relaxed);
        if (!r.status.ok()) failed.fetch_add(1, std::memory_order_relaxed);
        // Disjoint slot per job: the shard a worker writes is keyed by the
        // job's matrix index, so no two tasks alias.
        result.jobs[job.index] = std::move(r);
        done.fetch_add(1, std::memory_order_relaxed);
      });
    }
    if (options.on_progress) {
      while (!pool.wait_idle_for(options.progress_period_ms)) {
        options.on_progress(snapshot());
      }
    } else {
      pool.wait_idle();
    }
  }
  if (options.on_progress) options.on_progress(snapshot());

  result.totals = aggregate_totals(result.jobs);
  result.elapsed_s = snapshot().elapsed_s;
  return result;
}

}  // namespace ulp::batch
