// Work-queue thread pool for batch simulation.
//
// A fixed set of worker threads drains a FIFO of tasks; the owner thread
// submits work and then waits — either to full idleness or in bounded
// slices (wait_idle_for), which is how the campaign driver interleaves
// live progress reporting with the run. The pool makes no ordering
// promises between tasks: campaign determinism comes from each job writing
// only its own pre-assigned result slot and from every aggregation pass
// folding those slots in job-index order, never in completion order.
//
// workers == 0 degenerates to inline execution on the submitting thread —
// the zero-thread oracle the determinism tests compare multi-worker runs
// against (and a serial escape hatch for debugging under a debugger).
#pragma once

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "common/types.hpp"

namespace ulp::batch {

class Pool {
 public:
  /// Starts `workers` threads (0 = inline execution on submit).
  explicit Pool(u32 workers);

  /// Joins the workers. Pending tasks are drained first: destroying a pool
  /// is a wait_idle().
  ~Pool();

  Pool(const Pool&) = delete;
  Pool& operator=(const Pool&) = delete;

  /// Enqueues one task. Tasks must not throw — wrap fallible work and
  /// report failure through the task's own result slot (run_job does).
  void submit(std::function<void()> task);

  /// Blocks until every submitted task has finished.
  void wait_idle();

  /// Waits up to `ms` milliseconds; true when the pool went idle.
  [[nodiscard]] bool wait_idle_for(u32 ms);

  [[nodiscard]] u32 workers() const {
    return static_cast<u32>(threads_.size());
  }

  /// Tasks submitted minus tasks finished (approximate between waits).
  [[nodiscard]] u64 pending() const;

 private:
  void worker_loop();

  mutable std::mutex mu_;
  std::condition_variable work_ready_;
  std::condition_variable idle_;
  std::deque<std::function<void()>> queue_;
  u64 in_flight_ = 0;  ///< Queued + currently executing.
  bool stopping_ = false;
  std::vector<std::thread> threads_;
};

}  // namespace ulp::batch
