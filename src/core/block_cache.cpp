// Block decode, threaded dispatch, and Core::run_cached().
//
// Every handler here replays one per-cycle issue of its opcode exactly:
// same bookkeeping order (instrs, retire hook, profile retire, charge), same
// feature-gate messages, same arithmetic conventions. The per-cycle
// execute() switch in core.cpp stays the oracle; any divergence between the
// two is a bug the differential suites are built to catch.

#include "core/block_cache.hpp"

#include <algorithm>
#include <array>
#include <string>

#include "common/status.hpp"
#include "core/core.hpp"
#include "isa/disasm.hpp"

namespace ulp::core {

using isa::Instr;
using isa::Opcode;

namespace {

i32 as_i32(u32 v) { return static_cast<i32>(v); }
u32 as_u32(i32 v) { return static_cast<u32>(v); }

i32 lane16(u32 v, int lane) {
  return static_cast<i16>((v >> (16 * lane)) & 0xFFFF);
}
i32 lane8(u32 v, int lane) {
  return static_cast<i8>((v >> (8 * lane)) & 0xFF);
}

/// Instructions the scheduler must observe per-cycle (sleep entry, events,
/// end-of-computation): a block never contains them, so block runs can never
/// park a core, wake a sibling, or raise EOC mid-run.
bool is_sync(Opcode op) {
  return op == Opcode::kBarrier || op == Opcode::kWfe || op == Opcode::kSev ||
         op == Opcode::kEoc || op == Opcode::kHalt;
}

/// Instructions that end a block (included as its last record). Hardware
/// loop back-edges need no terminator: the dispatch loop re-checks the pc
/// against every record and re-looks-up on any wrap.
bool is_terminator(Opcode op) {
  return isa::is_branch(op) || op == Opcode::kJal || op == Opcode::kJalr ||
         op == Opcode::kLpSetup;
}

// Per-opcode facts the mem handlers monomorphise on: each load/store opcode
// fully determines its access size, direction, addressing and extension.
constexpr bool mem_is_store(Opcode op) {
  return op >= Opcode::kSw && op <= Opcode::kSbpi;
}
constexpr bool mem_is_postinc(Opcode op) {
  return (op >= Opcode::kLwpi && op <= Opcode::kLbupi) ||
         (op >= Opcode::kSwpi && op <= Opcode::kSbpi);
}
constexpr int mem_size(Opcode op) {
  switch (op) {
    case Opcode::kLw:
    case Opcode::kLwpi:
    case Opcode::kSw:
    case Opcode::kSwpi:
      return 4;
    case Opcode::kLh:
    case Opcode::kLhu:
    case Opcode::kLhpi:
    case Opcode::kLhupi:
    case Opcode::kSh:
    case Opcode::kShpi:
      return 2;
    default:
      return 1;
  }
}
constexpr bool mem_sign(Opcode op) {
  // The signed sub-word loads finish_mem() extends (lhu/lbu stay zero-filled).
  return op == Opcode::kLh || op == Opcode::kLhpi || op == Opcode::kLb ||
         op == Opcode::kLbpi;
}

/// Decode-time price of a record under `c` (the cost execute() would pick;
/// branches/jumps store their taken cost, the not-taken cost is 1; memory
/// records carry their load/store extra cycles).
u32 static_cost(const Instr& in, const CoreCosts& c) {
  if (isa::is_load(in.op)) return c.load_extra;
  if (isa::is_store(in.op)) return c.store_extra;
  switch (in.op) {
    case Opcode::kMul:
    case Opcode::kMac:
      return c.mul_cycles;
    case Opcode::kMulhs:
    case Opcode::kMulhu:
      return c.mul64_cycles;
    case Opcode::kDiv:
    case Opcode::kDivu:
    case Opcode::kRem:
    case Opcode::kRemu:
      return c.div_cycles;
    case Opcode::kDotp2h:
      return c.dotp2_cycles;
    case Opcode::kDotp4b:
      return c.dotp4_cycles;
    case Opcode::kBeq:
    case Opcode::kBne:
    case Opcode::kBlt:
    case Opcode::kBge:
    case Opcode::kBltu:
    case Opcode::kBgeu:
      return 1 + c.branch_taken_penalty;
    case Opcode::kJal:
    case Opcode::kJalr:
      return 1 + c.jump_penalty;
    default:
      return 1;
  }
}

// The dispatchable opcodes, grouped by which handler instantiations exist.
// These lists drive both resolve() (dispatch-id assignment) and the
// computed-goto label table in dispatch(); sharing them guarantees the two
// stay index-aligned. Plain ops have no feature gate (one untrusted
// instantiation — note csrr's handler statically forbids the trusted one);
// gated and mem ops exist in both trust flavours.
#define ULP_BC_PLAIN_OPS(X)                                                  \
  X(kAdd) X(kSub) X(kAnd) X(kOr) X(kXor) X(kSll) X(kSrl) X(kSra) X(kSlt)     \
  X(kSltu) X(kMul) X(kAddi) X(kAndi) X(kOri) X(kXori) X(kSlli) X(kSrli)      \
  X(kSrai) X(kSlti) X(kSltiu) X(kLui) X(kBeq) X(kBne) X(kBlt) X(kBge)        \
  X(kBltu) X(kBgeu) X(kJal) X(kJalr) X(kCsrr) X(kNop)
#define ULP_BC_GATED_OPS(X)                                                  \
  X(kMulhs) X(kMulhu) X(kDiv) X(kDivu) X(kRem) X(kRemu) X(kMac) X(kDotp2h)   \
  X(kDotp4b) X(kAdd2h) X(kSub2h) X(kAdd4b) X(kSub4b) X(kLpSetup)
#define ULP_BC_MEM_OPS(X)                                                    \
  X(kLw) X(kLh) X(kLhu) X(kLb) X(kLbu) X(kLwpi) X(kLhpi) X(kLhupi) X(kLbpi)  \
  X(kLbupi) X(kSw) X(kSh) X(kSb) X(kSwpi) X(kShpi) X(kSbpi)

/// Dense dispatch ids (CachedOp::did): one per live handler instantiation,
/// id 0 reserved for the call-through-fn fallback.
enum DispatchId : u16 {
  kDidFallback = 0,
#define ULP_DID_PLAIN(name) kDid##name##U,
#define ULP_DID_BOTH(name) kDid##name##U, kDid##name##T,
  ULP_BC_PLAIN_OPS(ULP_DID_PLAIN) ULP_BC_GATED_OPS(ULP_DID_BOTH)
      ULP_BC_MEM_OPS(ULP_DID_BOTH)
#undef ULP_DID_PLAIN
#undef ULP_DID_BOTH
};

}  // namespace

// Computed-goto dispatch needs GNU labels-as-values (GCC and Clang); other
// compilers fall back to the indirect call through CachedOp::fn.
#if defined(__GNUC__) && !defined(ULP_FORCE_SWITCH_DISPATCH)
#define ULP_COMPUTED_GOTO 1
#else
#define ULP_COMPUTED_GOTO 0
#endif

const char* block_dispatch_backend() {
  return ULP_COMPUTED_GOTO ? "computed-goto" : "switch";
}

/// The threaded-dispatch handlers. A friend of Core: handlers are the block
/// path's counterpart of Core::execute()/start_mem() and need the same
/// access to architectural and performance state.
class BlockRunner {
 public:
  /// Resolves one decoded instruction into its handler (CachedOp::fn), its
  /// dispatch id (CachedOp::did) and the mem-record flag. Feature gates are
  /// resolved here, at decode time: when the core's configuration (and,
  /// for lp.setup/csrr, the instruction's own fields) guarantees a
  /// handler's ULP_CHECKs can never fire, the kTrusted instantiation —
  /// no runtime checks, single merged cycle add — is selected instead.
  /// Undispatchable (sync-class) opcodes leave fn null.
  /// Single call site (the decode loop): force-inlined so `*rec` never
  /// escapes and the decode loop keeps the record in registers — the
  /// out-of-line call measurably slows decode-bound (cache-thrashing)
  /// workloads.
#if defined(__GNUC__)
  __attribute__((always_inline))
#endif
  static inline void resolve(const Instr& in, const CoreFeatures& f,
                             CachedOp* rec);

  /// Executes a block's records from ops[0] while the pc stays on-script,
  /// with the lean lane's per-record bookkeeping (I$ line probes charged
  /// inline, provable hits batched, the post-store generation check).
  /// Returns true when the run must hand back to step() (non-plain memory
  /// or a self-modifying store) — the pc-divert and block-complete ends
  /// return false and leave the next pc in the core.
  ///
  /// When a span ends with the pc back on ops[0] (a hardware-loop wrap or
  /// a taken branch to the block's own start) and `ctx.cycles <=
  /// lean_limit`, the span restarts in place — the hot loop of every
  /// hwloop kernel never leaves this function, so the per-iteration cost
  /// is a compare and a jump rather than a call frame.
  ///
  /// This is where the computed-goto backend lives: each handler label
  /// ends by jumping straight to the next record's label, so the hot loop
  /// is one well-distributed indirect branch per record plus a direct
  /// (inlinable) handler call — no per-record dispatch function. (A
  /// function that takes label addresses can never be inlined, so a
  /// per-record dispatch() call would cost a frame per instruction.) The
  /// portable backend is the same loop through rec.fn.
  static bool run_span(Core& c, const CachedOp* ops, size_t n,
                       BlockRunCtx& ctx, mem::SharedICache* ic,
                       const u64* code_gen, BlockCache* bc, u64 lean_limit);

  /// One multi-core block window (see run_multicore_window in the header).
  static u64 run_window(const McWindowParams& p);

 private:
  /// One non-memory instruction, exactly as execute() would run it.
  /// kTrusted: every check in this handler was proven at decode time.
  template <Opcode Op, bool kTrusted>
  static bool exec(Core& c, const CachedOp& op, BlockRunCtx& ctx) {
    // Opcodes whose handler body cannot throw (no feature gate, no CSR
    // check — or kTrusted, where the gates were discharged at decode)
    // defer the whole cycle charge to one add at the end; the rest count
    // the issue cycle up front so a mid-handler SimError leaves the same
    // cycle state one step() would have.
    constexpr bool kSimple =
        kTrusted ||
        Op == Opcode::kAdd || Op == Opcode::kSub || Op == Opcode::kAnd ||
        Op == Opcode::kOr || Op == Opcode::kXor || Op == Opcode::kSll ||
        Op == Opcode::kSrl || Op == Opcode::kSra || Op == Opcode::kSlt ||
        Op == Opcode::kSltu || Op == Opcode::kMul || Op == Opcode::kAddi ||
        Op == Opcode::kAndi || Op == Opcode::kOri || Op == Opcode::kXori ||
        Op == Opcode::kSlli || Op == Opcode::kSrli || Op == Opcode::kSrai ||
        Op == Opcode::kSlti || Op == Opcode::kSltiu || Op == Opcode::kLui ||
        Op == Opcode::kBeq || Op == Opcode::kBne || Op == Opcode::kBlt ||
        Op == Opcode::kBge || Op == Opcode::kBltu || Op == Opcode::kBgeu ||
        Op == Opcode::kJal || Op == Opcode::kJalr || Op == Opcode::kNop;
    const Instr& in = op.instr;
    // The issue cycle: step() bookkeeping folded into ctx, then execute()'s
    // preamble in its order.
    if constexpr (!kSimple) ctx.cycles += 1;
    ++ctx.instrs;
    if (c.retire_hook_) c.retire_hook_(op.pc, in);
    const u32 pc0 = op.pc;
    if (c.prof_ != nullptr) c.prof_->on_retire(pc0, in, c.regs_[in.ra]);
    const u32 a = c.regs_[in.ra];
    const u32 b = c.regs_[in.rb];
    const u32 d = c.regs_[in.rd];
    const CoreFeatures& f = c.cfg_.features;
    const CoreCosts& cc = c.cfg_.costs;
    u32 cost = 1;
    bool sequential = true;
    (void)b;
    (void)d;
    (void)f;
    (void)cc;

    if constexpr (Op == Opcode::kAdd) {
      c.write_reg(in.rd, a + b);
    } else if constexpr (Op == Opcode::kSub) {
      c.write_reg(in.rd, a - b);
    } else if constexpr (Op == Opcode::kAnd) {
      c.write_reg(in.rd, a & b);
    } else if constexpr (Op == Opcode::kOr) {
      c.write_reg(in.rd, a | b);
    } else if constexpr (Op == Opcode::kXor) {
      c.write_reg(in.rd, a ^ b);
    } else if constexpr (Op == Opcode::kSll) {
      c.write_reg(in.rd, a << (b & 31));
    } else if constexpr (Op == Opcode::kSrl) {
      c.write_reg(in.rd, a >> (b & 31));
    } else if constexpr (Op == Opcode::kSra) {
      c.write_reg(in.rd, as_u32(as_i32(a) >> (b & 31)));
    } else if constexpr (Op == Opcode::kSlt) {
      c.write_reg(in.rd, as_i32(a) < as_i32(b) ? 1 : 0);
    } else if constexpr (Op == Opcode::kSltu) {
      c.write_reg(in.rd, a < b ? 1 : 0);
    } else if constexpr (Op == Opcode::kMul) {
      c.write_reg(in.rd, a * b);
      cost = op.cost;
      ++c.perf_.mults;
    } else if constexpr (Op == Opcode::kMulhs) {
      if constexpr (!kTrusted) ULP_CHECK(f.has_mul64, c.cfg_.name + " has no mulhs");
      c.write_reg(in.rd, static_cast<u32>(
                             (static_cast<i64>(as_i32(a)) * as_i32(b)) >> 32));
      cost = op.cost;
      ++c.perf_.mults;
    } else if constexpr (Op == Opcode::kMulhu) {
      if constexpr (!kTrusted) ULP_CHECK(f.has_mul64, c.cfg_.name + " has no mulhu");
      c.write_reg(in.rd, static_cast<u32>(
                             (static_cast<u64>(a) * static_cast<u64>(b)) >> 32));
      cost = op.cost;
      ++c.perf_.mults;
    } else if constexpr (Op == Opcode::kDiv) {
      if constexpr (!kTrusted) ULP_CHECK(f.has_div, c.cfg_.name + " has no divide");
      if (b == 0) {
        c.write_reg(in.rd, 0xFFFFFFFFu);
      } else if (a == 0x80000000u && b == 0xFFFFFFFFu) {
        c.write_reg(in.rd, 0x80000000u);  // INT_MIN / -1 overflow convention
      } else {
        c.write_reg(in.rd, as_u32(as_i32(a) / as_i32(b)));
      }
      cost = op.cost;
      ++c.perf_.divs;
    } else if constexpr (Op == Opcode::kDivu) {
      if constexpr (!kTrusted) ULP_CHECK(f.has_div, c.cfg_.name + " has no divide");
      c.write_reg(in.rd, b == 0 ? 0xFFFFFFFFu : a / b);
      cost = op.cost;
      ++c.perf_.divs;
    } else if constexpr (Op == Opcode::kRem) {
      if constexpr (!kTrusted) ULP_CHECK(f.has_div, c.cfg_.name + " has no divide");
      if (b == 0) {
        c.write_reg(in.rd, a);
      } else if (a == 0x80000000u && b == 0xFFFFFFFFu) {
        c.write_reg(in.rd, 0);  // INT_MIN % -1
      } else {
        c.write_reg(in.rd, as_u32(as_i32(a) % as_i32(b)));
      }
      cost = op.cost;
      ++c.perf_.divs;
    } else if constexpr (Op == Opcode::kRemu) {
      if constexpr (!kTrusted) ULP_CHECK(f.has_div, c.cfg_.name + " has no divide");
      c.write_reg(in.rd, b == 0 ? a : a % b);
      cost = op.cost;
      ++c.perf_.divs;
    } else if constexpr (Op == Opcode::kMac) {
      if constexpr (!kTrusted) ULP_CHECK(f.has_mac, c.cfg_.name + " has no MAC");
      c.write_reg(in.rd, d + a * b);
      cost = op.cost;
      ++c.perf_.mults;
    } else if constexpr (Op == Opcode::kDotp2h) {
      if constexpr (!kTrusted) ULP_CHECK(f.has_simd, c.cfg_.name + " has no sub-word SIMD");
      c.write_reg(in.rd, d + as_u32(lane16(a, 0) * lane16(b, 0) +
                                    lane16(a, 1) * lane16(b, 1)));
      cost = op.cost;
      ++c.perf_.mults;
    } else if constexpr (Op == Opcode::kDotp4b) {
      if constexpr (!kTrusted) ULP_CHECK(f.has_simd, c.cfg_.name + " has no sub-word SIMD");
      i32 acc = 0;
      for (int l = 0; l < 4; ++l) acc += lane8(a, l) * lane8(b, l);
      c.write_reg(in.rd, d + as_u32(acc));
      cost = op.cost;
      ++c.perf_.mults;
    } else if constexpr (Op == Opcode::kAdd2h || Op == Opcode::kSub2h) {
      if constexpr (!kTrusted) ULP_CHECK(f.has_simd, c.cfg_.name + " has no sub-word SIMD");
      const int sign = Op == Opcode::kAdd2h ? 1 : -1;
      u32 out = 0;
      for (int l = 0; l < 2; ++l) {
        const u32 r = static_cast<u32>(lane16(a, l) + sign * lane16(b, l));
        out |= (r & 0xFFFF) << (16 * l);
      }
      c.write_reg(in.rd, out);
    } else if constexpr (Op == Opcode::kAdd4b || Op == Opcode::kSub4b) {
      if constexpr (!kTrusted) ULP_CHECK(f.has_simd, c.cfg_.name + " has no sub-word SIMD");
      const int sign = Op == Opcode::kAdd4b ? 1 : -1;
      u32 out = 0;
      for (int l = 0; l < 4; ++l) {
        const u32 r = static_cast<u32>(lane8(a, l) + sign * lane8(b, l));
        out |= (r & 0xFF) << (8 * l);
      }
      c.write_reg(in.rd, out);
    } else if constexpr (Op == Opcode::kAddi) {
      c.write_reg(in.rd, a + as_u32(in.imm));
    } else if constexpr (Op == Opcode::kAndi) {
      c.write_reg(in.rd, a & as_u32(in.imm));
    } else if constexpr (Op == Opcode::kOri) {
      c.write_reg(in.rd, a | as_u32(in.imm));
    } else if constexpr (Op == Opcode::kXori) {
      c.write_reg(in.rd, a ^ as_u32(in.imm));
    } else if constexpr (Op == Opcode::kSlli) {
      c.write_reg(in.rd, a << (in.imm & 31));
    } else if constexpr (Op == Opcode::kSrli) {
      c.write_reg(in.rd, a >> (in.imm & 31));
    } else if constexpr (Op == Opcode::kSrai) {
      c.write_reg(in.rd, as_u32(as_i32(a) >> (in.imm & 31)));
    } else if constexpr (Op == Opcode::kSlti) {
      c.write_reg(in.rd, as_i32(a) < in.imm ? 1 : 0);
    } else if constexpr (Op == Opcode::kSltiu) {
      c.write_reg(in.rd, a < as_u32(in.imm) ? 1 : 0);
    } else if constexpr (Op == Opcode::kLui) {
      c.write_reg(in.rd, as_u32(in.imm) << 12);
    } else if constexpr (Op == Opcode::kBeq || Op == Opcode::kBne ||
                         Op == Opcode::kBlt || Op == Opcode::kBge ||
                         Op == Opcode::kBltu || Op == Opcode::kBgeu) {
      ++c.perf_.branches;
      bool taken = false;
      if constexpr (Op == Opcode::kBeq) taken = a == b;
      if constexpr (Op == Opcode::kBne) taken = a != b;
      if constexpr (Op == Opcode::kBlt) taken = as_i32(a) < as_i32(b);
      if constexpr (Op == Opcode::kBge) taken = as_i32(a) >= as_i32(b);
      if constexpr (Op == Opcode::kBltu) taken = a < b;
      if constexpr (Op == Opcode::kBgeu) taken = a >= b;
      if (taken) {
        ++c.perf_.branches_taken;
        c.pc_ = static_cast<u32>(static_cast<i64>(c.pc_) + in.imm);
        cost = op.cost;  // 1 + branch_taken_penalty
        sequential = false;
      }
    } else if constexpr (Op == Opcode::kJal) {
      c.write_reg(in.rd, c.pc_ + 1);
      c.pc_ = static_cast<u32>(static_cast<i64>(c.pc_) + in.imm);
      cost = op.cost;  // 1 + jump_penalty
      sequential = false;
    } else if constexpr (Op == Opcode::kJalr) {
      const u32 target = a;
      c.write_reg(in.rd, c.pc_ + 1);
      c.pc_ = target;
      cost = op.cost;  // 1 + jump_penalty
      sequential = false;
    } else if constexpr (Op == Opcode::kLpSetup) {
      if constexpr (!kTrusted) ULP_CHECK(f.has_hwloops, c.cfg_.name + " has no hardware loops");
      if constexpr (!kTrusted) ULP_CHECK(in.rd < 2, "hardware loop id must be 0 or 1");
      if constexpr (!kTrusted) ULP_CHECK(in.imm > 0, "hardware loop body must be non-empty");
      Core::HwLoop& lp = c.loops_[in.rd];
      lp.start = c.pc_ + 1;
      lp.end = c.pc_ + 1 + static_cast<u32>(in.imm);
      lp.count = a;
      if (lp.count == 0) {
        c.pc_ = lp.end;
        sequential = false;
      }
    } else if constexpr (Op == Opcode::kCsrr) {
      // kCycle below folds ctx.cycles into the CSR view assuming the issue
      // cycle was counted up front — which only !kSimple does, so csrr may
      // never be instantiated trusted.
      static_assert(!kTrusted, "csrr depends on the up-front issue cycle");
      u32 v = 0;
      switch (static_cast<isa::Csr>(in.imm)) {
        case isa::Csr::kCoreId:
          v = c.id_;
          break;
        case isa::Csr::kNumCores:
          v = c.num_cores_;
          break;
        case isa::Csr::kCycle:
          // read_csr() sees perf_.cycles with the current cycle already
          // counted; in a block run that cycle lives in ctx.cycles until
          // the exit flush, so add the two views.
          v = static_cast<u32>(c.perf_.cycles + ctx.cycles);
          break;
        default:
          ULP_CHECK(false, "unknown CSR " + std::to_string(in.imm));
      }
      c.write_reg(in.rd, v);
    } else if constexpr (Op == Opcode::kNop) {
      // nothing
    } else {
      ULP_CHECK(false, "unhandled opcode: " + isa::disassemble(in));
    }

    if (sequential) {
      if (op.no_loop_end) {
        ++c.pc_;  // provably not a loop end: skip the loop-slot scan
      } else {
        c.advance_pc_sequential();
      }
    }
    if constexpr (kSimple) {
      ctx.cycles += cost;
    } else {
      ctx.cycles += cost - 1;
    }
    if (c.prof_ != nullptr) c.prof_->add_cycles(pc0, cost);
    return true;
  }

  /// One load/store on the fast lane: a naturally aligned access inside a
  /// direct span, with no armed write watch in the way, is replayed without
  /// the bus call — data movement on the host pointer, the span's solo
  /// grant latency plus the opcode's extra cycles, and the same counter,
  /// hook and writeback sequence retry_mem()/finish_mem() would perform.
  /// Everything else (unaligned, watched stores, peripherals) falls back to
  /// exec_mem_slow(). Monomorphised per opcode: size, direction, post-
  /// increment and sign extension are compile-time facts.
  /// kTrusted: the post-increment feature gate was discharged at decode
  /// (always true for the non-post-increment opcodes, which have no gate).
  template <Opcode Op, bool kTrusted>
  static bool exec_mem(Core& c, const CachedOp& op, BlockRunCtx& ctx) {
    constexpr bool kStore = mem_is_store(Op);
    constexpr bool kPostInc = mem_is_postinc(Op);
    constexpr int kSize = mem_size(Op);
    const Instr& in = op.instr;
    const Addr addr = kPostInc ? c.regs_[in.ra]
                               : c.regs_[in.ra] + static_cast<u32>(in.imm);
    if constexpr (kSize > 1) {
      if ((addr & static_cast<Addr>(kSize - 1)) != 0) {
        return exec_mem_slow(c, op, ctx);
      }
    }
    const mem::DirectMap& dm = c.dmap_;
    for (u32 s = 0; s < dm.count; ++s) {
      const mem::DirectSpan& sp = dm.spans[s];
      if (addr < sp.base || addr - sp.base > sp.bytes - kSize) continue;
      if constexpr (kStore) {
        if (dm.watch_bytes != 0 && addr < dm.watch_base + dm.watch_bytes &&
            addr + kSize > dm.watch_base) {
          // Watched store: the bus path lands it so the watcher fires.
          return exec_mem_slow(c, op, ctx);
        }
      }
      const u32 charge = sp.latency + op.cost;  // cost = load/store extra
      if constexpr (kPostInc && !kTrusted) {
        // The issue cycle is counted before start_mem()'s feature check can
        // throw, exactly as one step() would leave the cycle state.
        ctx.cycles += 1;
        ULP_CHECK(c.cfg_.features.has_postinc,
                  c.cfg_.name + " has no post-increment addressing");
        ctx.cycles += charge - 1;
      } else {
        ctx.cycles += charge;
      }
      u8* p = sp.data + (addr - sp.base);
      if (sp.access_counter != nullptr) ++*sp.access_counter;
      // Data movement first (the grant), then retirement — retry_mem/
      // finish_mem order, byte-for-byte little-endian as load_le/store_le.
      u32 loaded = 0;
      if constexpr (kStore) {
        const u32 v = c.regs_[in.rd];
        for (int i = 0; i < kSize; ++i) {
          p[i] = static_cast<u8>(v >> (8 * i));
        }
      } else {
        for (int i = kSize - 1; i >= 0; --i) {
          loaded = (loaded << 8) | p[i];
        }
      }
      if (c.prof_ != nullptr) c.prof_->add_cycles(op.pc, charge);
      ++ctx.instrs;
      if (c.retire_hook_) c.retire_hook_(op.pc, in);
      if (c.prof_ != nullptr) c.prof_->on_retire(op.pc, in, c.regs_[in.ra]);
      if constexpr (kStore) {
        ++ctx.stores;
      } else {
        ++ctx.loads;
        if constexpr (mem_sign(Op) && kSize < 4) {
          constexpr u32 kSignBit = 1u << (kSize * 8 - 1);
          if (loaded & kSignBit) loaded |= ~((kSignBit << 1) - 1);
        }
        c.write_reg(in.rd, loaded);
      }
      if constexpr (kPostInc) {
        c.write_reg(in.ra, c.regs_[in.ra] + static_cast<u32>(in.imm));
      }
      if (op.no_loop_end) {
        ++c.pc_;
      } else {
        c.advance_pc_sequential();
      }
      return true;
    }
    return exec_mem_slow(c, op, ctx);
  }

  /// One load/store, replayed through the real start_mem/retry_mem/
  /// finish_mem machinery so address split, writeback, post-increment and
  /// profiling stay byte-for-byte the per-cycle code. The solo-window
  /// precondition makes every grant succeed on its first fresh-cycle
  /// attempt, so the cycle count is closed-form: grant cycle + queued
  /// latency per part.
  static bool exec_mem_slow(Core& c, const CachedOp& op, BlockRunCtx& ctx) {
    const Instr& in = op.instr;
    const Addr addr = isa::is_postinc(in.op)
                          ? c.regs_[in.ra]
                          : c.regs_[in.ra] + static_cast<u32>(in.imm);
    if (!c.bus_->plain_memory(addr, isa::access_size(in.op))) {
      return false;  // peripheral/unmapped: per-cycle path owns this access
    }
    if (c.bcache_ != nullptr) c.bcache_->note_dmap_fallback();
    ctx.cycles += 1;  // the issue cycle carries the first grant attempt
    const u64 stall0 = c.perf_.stall_mem;
    c.bus_->begin_cycle();
    c.start_mem(in);
    while (c.memop_.active) {
      // The granted part queued latency-1+extra stall cycles; those plus
      // the next part's own grant cycle elapse before the retry.
      ctx.cycles += c.busy_ + 1;
      c.busy_ = 0;
      c.bus_->begin_cycle();
      c.retry_mem();
    }
    ctx.cycles += c.busy_;
    c.busy_ = 0;
    ULP_CHECK(c.perf_.stall_mem == stall0,
              "block-cached access denied on a plain-memory range");
    return true;
  }

  friend class BlockCache;
};

void BlockRunner::resolve(const Instr& in, const CoreFeatures& f,
                          CachedOp* rec) {
// Unchecked opcodes: the kTrusted flag changes nothing, one instantiation.
#define ULP_BLOCK_HANDLER(name)           \
  case Opcode::name:                      \
    rec->fn = &exec<Opcode::name, false>; \
    rec->did = kDid##name##U;             \
    return;
// Feature-gated opcodes: discharge the gate at decode time when it holds.
#define ULP_BLOCK_CHECKED_HANDLER(name, cond) \
  case Opcode::name:                          \
    if (cond) {                               \
      rec->fn = &exec<Opcode::name, true>;    \
      rec->did = kDid##name##T;               \
    } else {                                  \
      rec->fn = &exec<Opcode::name, false>;   \
      rec->did = kDid##name##U;               \
    }                                         \
    return;
#define ULP_BLOCK_MEM_HANDLER(name)                       \
  case Opcode::name:                                      \
    rec->is_mem = true;                                   \
    if (f.has_postinc || !mem_is_postinc(Opcode::name)) { \
      rec->fn = &exec_mem<Opcode::name, true>;            \
      rec->did = kDid##name##T;                           \
    } else {                                              \
      rec->fn = &exec_mem<Opcode::name, false>;           \
      rec->did = kDid##name##U;                           \
    }                                                     \
    return;
  switch (in.op) {
    ULP_BLOCK_MEM_HANDLER(kLw)
    ULP_BLOCK_MEM_HANDLER(kLh)
    ULP_BLOCK_MEM_HANDLER(kLhu)
    ULP_BLOCK_MEM_HANDLER(kLb)
    ULP_BLOCK_MEM_HANDLER(kLbu)
    ULP_BLOCK_MEM_HANDLER(kLwpi)
    ULP_BLOCK_MEM_HANDLER(kLhpi)
    ULP_BLOCK_MEM_HANDLER(kLhupi)
    ULP_BLOCK_MEM_HANDLER(kLbpi)
    ULP_BLOCK_MEM_HANDLER(kLbupi)
    ULP_BLOCK_MEM_HANDLER(kSw)
    ULP_BLOCK_MEM_HANDLER(kSh)
    ULP_BLOCK_MEM_HANDLER(kSb)
    ULP_BLOCK_MEM_HANDLER(kSwpi)
    ULP_BLOCK_MEM_HANDLER(kShpi)
    ULP_BLOCK_MEM_HANDLER(kSbpi)
    ULP_BLOCK_HANDLER(kAdd)
    ULP_BLOCK_HANDLER(kSub)
    ULP_BLOCK_HANDLER(kAnd)
    ULP_BLOCK_HANDLER(kOr)
    ULP_BLOCK_HANDLER(kXor)
    ULP_BLOCK_HANDLER(kSll)
    ULP_BLOCK_HANDLER(kSrl)
    ULP_BLOCK_HANDLER(kSra)
    ULP_BLOCK_HANDLER(kSlt)
    ULP_BLOCK_HANDLER(kSltu)
    ULP_BLOCK_HANDLER(kMul)
    ULP_BLOCK_CHECKED_HANDLER(kMulhs, f.has_mul64)
    ULP_BLOCK_CHECKED_HANDLER(kMulhu, f.has_mul64)
    ULP_BLOCK_CHECKED_HANDLER(kDiv, f.has_div)
    ULP_BLOCK_CHECKED_HANDLER(kDivu, f.has_div)
    ULP_BLOCK_CHECKED_HANDLER(kRem, f.has_div)
    ULP_BLOCK_CHECKED_HANDLER(kRemu, f.has_div)
    ULP_BLOCK_CHECKED_HANDLER(kMac, f.has_mac)
    ULP_BLOCK_CHECKED_HANDLER(kDotp2h, f.has_simd)
    ULP_BLOCK_CHECKED_HANDLER(kDotp4b, f.has_simd)
    ULP_BLOCK_CHECKED_HANDLER(kAdd2h, f.has_simd)
    ULP_BLOCK_CHECKED_HANDLER(kSub2h, f.has_simd)
    ULP_BLOCK_CHECKED_HANDLER(kAdd4b, f.has_simd)
    ULP_BLOCK_CHECKED_HANDLER(kSub4b, f.has_simd)
    ULP_BLOCK_HANDLER(kAddi)
    ULP_BLOCK_HANDLER(kAndi)
    ULP_BLOCK_HANDLER(kOri)
    ULP_BLOCK_HANDLER(kXori)
    ULP_BLOCK_HANDLER(kSlli)
    ULP_BLOCK_HANDLER(kSrli)
    ULP_BLOCK_HANDLER(kSrai)
    ULP_BLOCK_HANDLER(kSlti)
    ULP_BLOCK_HANDLER(kSltiu)
    ULP_BLOCK_HANDLER(kLui)
    ULP_BLOCK_HANDLER(kBeq)
    ULP_BLOCK_HANDLER(kBne)
    ULP_BLOCK_HANDLER(kBlt)
    ULP_BLOCK_HANDLER(kBge)
    ULP_BLOCK_HANDLER(kBltu)
    ULP_BLOCK_HANDLER(kBgeu)
    ULP_BLOCK_HANDLER(kJal)
    ULP_BLOCK_HANDLER(kJalr)
    ULP_BLOCK_CHECKED_HANDLER(kLpSetup, f.has_hwloops && in.rd < 2 && in.imm > 0)
    ULP_BLOCK_HANDLER(kCsrr)
    ULP_BLOCK_HANDLER(kNop)
    default:
      // Sync-class opcodes never decode into blocks; anything else lands in
      // the per-cycle path's "unhandled opcode" check.
      rec->fn = nullptr;
      rec->did = kDidFallback;
      return;
  }
#undef ULP_BLOCK_HANDLER
#undef ULP_BLOCK_CHECKED_HANDLER
#undef ULP_BLOCK_MEM_HANDLER
}

bool BlockRunner::run_span(Core& c, const CachedOp* ops, size_t n,
                           BlockRunCtx& ctx, mem::SharedICache* ic,
                           const u64* code_gen, BlockCache* bc,
                           u64 lean_limit) {
  size_t i = 0;
  u64 sure_hits = 0;
  bool stop = false;
#if ULP_COMPUTED_GOTO
  // Label table index-aligned with DispatchId by construction (same X-macro
  // lists, same order).
  static const void* const kTargets[] = {
      &&lbl_fallback,
#define ULP_BC_LBL_PLAIN(name) &&lbl_##name##_u,
#define ULP_BC_LBL_BOTH(name) &&lbl_##name##_u, &&lbl_##name##_t,
      ULP_BC_PLAIN_OPS(ULP_BC_LBL_PLAIN) ULP_BC_GATED_OPS(ULP_BC_LBL_BOTH)
          ULP_BC_MEM_OPS(ULP_BC_LBL_BOTH)
#undef ULP_BC_LBL_PLAIN
#undef ULP_BC_LBL_BOTH
  };
  const CachedOp* rec;
// I$ probe for *rec, charged exactly as the indirect-call loop does it:
// line-start fetches pay their penalty inline, the rest are provable hits
// batched into one charge at span end.
#define ULP_BC_PRE()                                                       \
  if (ic != nullptr) {                                                     \
    if (rec->line_start) {                                                 \
      const u32 penalty = ic->fetch(rec->pc);                              \
      if (penalty > 0) {                                                   \
        c.perf_.stall_icache += penalty;                                   \
        ctx.cycles += penalty + 1;                                         \
        if (c.prof_ != nullptr) c.prof_->add_cycles(rec->pc, penalty + 1); \
      }                                                                    \
    } else {                                                               \
      ++sure_hits;                                                         \
    }                                                                      \
  }
// Post-store self-modifying-code check — only store-capable labels pay it.
#define ULP_BC_GEN()                                                        \
  if (rec->is_store && code_gen != nullptr && *code_gen != bc->generation) { \
    bc->flush();                                                            \
    bc->generation = *code_gen;                                             \
    stop = true;                                                            \
    goto span_done;                                                         \
  }
// The threaded step: straight to the next record's handler label. The pc
// check catches hardware-loop wraps and taken branches leaving the block.
#define ULP_BC_NEXT()                   \
  do {                                  \
    if (++i >= n) goto span_done;       \
    rec = &ops[i];                      \
    if (rec->pc != c.pc_) goto span_done; \
    goto* kTargets[rec->did];           \
  } while (0)

  if (n == 0) goto span_done;
  rec = &ops[0];
  if (rec->pc != c.pc_) goto span_done;
  goto* kTargets[rec->did];

lbl_fallback : {
  ULP_BC_PRE();
  if (!rec->fn(c, *rec, ctx)) {
    stop = true;
    goto span_done;
  }
  ULP_BC_GEN();
  ULP_BC_NEXT();
}
#define ULP_BC_CASE_PLAIN(name)                        \
  lbl_##name##_u : {                                   \
    ULP_BC_PRE();                                      \
    if (!exec<Opcode::name, false>(c, *rec, ctx)) {    \
      stop = true;                                     \
      goto span_done;                                  \
    }                                                  \
    ULP_BC_NEXT();                                     \
  }
#define ULP_BC_CASE_GATED(name)                        \
  lbl_##name##_u : {                                   \
    ULP_BC_PRE();                                      \
    if (!exec<Opcode::name, false>(c, *rec, ctx)) {    \
      stop = true;                                     \
      goto span_done;                                  \
    }                                                  \
    ULP_BC_NEXT();                                     \
  }                                                    \
  lbl_##name##_t : {                                   \
    ULP_BC_PRE();                                      \
    if (!exec<Opcode::name, true>(c, *rec, ctx)) {     \
      stop = true;                                     \
      goto span_done;                                  \
    }                                                  \
    ULP_BC_NEXT();                                     \
  }
#define ULP_BC_CASE_MEM(name)                           \
  lbl_##name##_u : {                                    \
    ULP_BC_PRE();                                       \
    if (!exec_mem<Opcode::name, false>(c, *rec, ctx)) { \
      stop = true;                                      \
      goto span_done;                                   \
    }                                                   \
    ULP_BC_GEN();                                       \
    ULP_BC_NEXT();                                      \
  }                                                     \
  lbl_##name##_t : {                                    \
    ULP_BC_PRE();                                       \
    if (!exec_mem<Opcode::name, true>(c, *rec, ctx)) {  \
      stop = true;                                      \
      goto span_done;                                   \
    }                                                   \
    ULP_BC_GEN();                                       \
    ULP_BC_NEXT();                                      \
  }
  ULP_BC_PLAIN_OPS(ULP_BC_CASE_PLAIN)
  ULP_BC_GATED_OPS(ULP_BC_CASE_GATED)
  ULP_BC_MEM_OPS(ULP_BC_CASE_MEM)
#undef ULP_BC_CASE_PLAIN
#undef ULP_BC_CASE_GATED
#undef ULP_BC_CASE_MEM
#undef ULP_BC_PRE
#undef ULP_BC_GEN
#undef ULP_BC_NEXT
span_done:
  // Hardware-loop back-edge (or a taken branch to the block's own start):
  // restart the span in place while the lean budget holds. Every executed
  // record charges at least one cycle, so a restart implies progress.
  if (!stop && n != 0 && c.pc_ == ops[0].pc && ctx.cycles <= lean_limit) {
    i = 0;
    rec = &ops[0];
    goto* kTargets[rec->did];
  }
#else
  for (;;) {
    for (i = 0; i < n; ++i) {
      const CachedOp& rec = ops[i];
      if (rec.pc != c.pc_) break;
      if (ic != nullptr) {
        if (rec.line_start) {
          const u32 penalty = ic->fetch(rec.pc);
          if (penalty > 0) {
            c.perf_.stall_icache += penalty;
            ctx.cycles += penalty + 1;
            if (c.prof_ != nullptr) c.prof_->add_cycles(rec.pc, penalty + 1);
          }
        } else {
          ++sure_hits;
        }
      }
      if (!rec.fn(c, rec, ctx)) {
        stop = true;
        break;
      }
      if (rec.is_store && code_gen != nullptr &&
          *code_gen != bc->generation) {
        bc->flush();
        bc->generation = *code_gen;
        stop = true;
        break;
      }
    }
    // Same in-place span restart as the computed-goto backend's.
    if (stop || n == 0 || c.pc_ != ops[0].pc || ctx.cycles > lean_limit) {
      break;
    }
  }
#endif
  if (sure_hits != 0) ic->charge_hits(sure_hits);
  return stop;
}

const Block* BlockCache::lookup(u32 pc, const isa::Instr* code, u32 code_size,
                                const CoreConfig& cfg,
                                u32 icache_line_words) {
  if (pc >= code_size) return nullptr;
  if (blocks_.size() != code_size) {
    blocks_.assign(code_size, Block{});
    built_.assign(code_size, 0);
    succ_.assign(code_size, SuccEdge{});
    pool_.clear();
    stats_.blocks = 0;
    stats_.records = 0;
    ++epoch_;  // every recorded successor edge points into the old program
    // A program change resets the hardware loops too (Core::reset), so the
    // loop-end map can start from scratch.
    loop_end_.assign(code_size + 1, 0);
    loop_scan_valid_ = false;
  }
  if (!loop_scan_valid_) {
    // Mark every pc some lp.setup could put a loop end at. After a
    // self-modifying-code flush the old marks stay set: a loop armed by the
    // previous code revision keeps its end address in the core's loop
    // registers, so the map may only widen until the next program load.
    for (u32 p = 0; p < code_size; ++p) {
      if (code[p].op != Opcode::kLpSetup || code[p].imm < 0) continue;
      const u64 end = u64{p} + 1 + static_cast<u64>(code[p].imm);
      if (end <= code_size) loop_end_[end] = 1;
    }
    loop_scan_valid_ = true;
  }
  if (built_[pc] == 0) {
    // Decode into a stack scratch first: the pool may flush (capacity) or
    // reallocate (growth) before the records land, and the scratch keeps
    // that invisible to the decode loop.
    std::array<CachedOp, kMaxBlockOps> scratch;
    u32 n = 0;
    for (u32 p = pc; p < code_size && n < kMaxBlockOps; ++p) {
      const isa::Instr& in = code[p];
      if (is_sync(in.op)) break;
      CachedOp rec;
      BlockRunner::resolve(in, cfg.features, &rec);
      if (rec.fn == nullptr) break;  // defensive: undispatchable opcode
      rec.instr = in;
      rec.pc = p;
      rec.cost = static_cost(in, cfg.costs);
      rec.is_store = isa::is_store(in.op);
      rec.line_start = icache_line_words == 0 || p == pc ||
                       p % icache_line_words == 0;
      rec.no_loop_end = loop_end_[p + 1] == 0;
      scratch[n++] = rec;
      if (is_terminator(in.op)) break;
    }
    if (pool_.size() + n > kMaxTotalOps) flush();
    built_[pc] = 1;
    Block blk;
    blk.first = static_cast<u32>(pool_.size());
    blk.count = n;
    pool_.insert(pool_.end(), scratch.begin(), scratch.begin() + n);
    stats_.records += n;
    ++stats_.blocks;
    ++stats_.decodes;
    blocks_[pc] = blk;
  } else {
    ++stats_.hits;
  }
  const Block& b = blocks_[pc];
  return b.count == 0 ? nullptr : &b;
}

const Block* BlockCache::chain(const Block* from, u32 pc,
                               const isa::Instr* code, u32 code_size,
                               const CoreConfig& cfg, u32 icache_line_words) {
  // `from` lives in blocks_, which is indexed by start pc, so its edge slot
  // is succ_[from - blocks_.data()]. blocks_ never reallocates mid-program
  // (it is resized only on a program-size change), so the subtraction is
  // stable across the whole run.
  if (from != nullptr) {
    const SuccEdge& e = succ_[static_cast<size_t>(from - blocks_.data())];
    if (e.pc == pc && e.epoch == epoch_) {
      // The recorded edge was stamped in the current epoch, so no flush or
      // program change intervened: blocks_[pc] is exactly what lookup()
      // would return (and non-empty — empty blocks are never recorded as
      // successors).
      ++stats_.chained;
      return &blocks_[pc];
    }
  }
  const Block* next = lookup(pc, code, code_size, cfg, icache_line_words);
  if (from != nullptr && next != nullptr) {
    // If the lookup above flushed for capacity, the epoch already moved
    // past this stamp and the edge stays dead until it is re-stamped in
    // the new epoch.
    SuccEdge& e = succ_[static_cast<size_t>(from - blocks_.data())];
    e.pc = pc;
    e.epoch = epoch_;
  }
  return next;
}

void BlockCache::flush() {
  // built_ gates every blocks_ entry, so only it and the pool need clearing.
  std::fill(built_.begin(), built_.end(), u8{0});
  pool_.clear();
  stats_.blocks = 0;
  stats_.records = 0;
  ++epoch_;  // recorded successor edges now point into the cleared pool
  loop_scan_valid_ = false;  // code may have changed: rescan lp.setup ends
  ++stats_.flushes;
}

u32 Core::compute_worst_op_cycles() const {
  const CoreCosts& c = cfg_.costs;
  u32 w = 1;
  for (const u32 v :
       {c.mul_cycles, c.mul64_cycles, c.div_cycles, c.dotp2_cycles,
        c.dotp4_cycles, 1 + c.branch_taken_penalty, 1 + c.jump_penalty}) {
    w = std::max(w, v);
  }
  // Worst load/store: two parts, each a grant cycle plus queued stalls.
  const u32 extra = std::max(c.load_extra, c.store_extra);
  w = std::max(w, 2 * (bus_->worst_case_latency() + extra));
  // A record may additionally pay one I$ refill up front.
  if (icache_ != nullptr) w += icache_->miss_penalty() + 1;
  return w;
}

u64 Core::run_cached(u64 max_cycles) {
  if (halted_ || sleeping_ || busy_ > 0 || memop_.active) return 0;
  if (bcache_ == nullptr) bcache_ = std::make_unique<BlockCache>();
  if (code_gen_ != nullptr && *code_gen_ != bcache_->generation) {
    bcache_->flush();  // someone wrote into the code window since last run
    bcache_->generation = *code_gen_;
  }
  if (worst_op_cycles_ == 0) worst_op_cycles_ = compute_worst_op_cycles();
  dmap_ = bus_->direct_map();
  const u32 line_words = icache_ != nullptr ? icache_->instrs_per_line() : 0;
  // Invariant members hoisted into locals: the indirect handler call is
  // opaque to the compiler, which would otherwise reload them every record.
  BlockCache* const bc = bcache_.get();
  mem::SharedICache* const ic = icache_;
  const u64* const code_gen = code_gen_;

  BlockRunCtx ctx;
  try {
    bool stop = false;
    const Block* prev = nullptr;
    while (!stop) {
      const Block* blk = bc->chain(prev, pc_, code_, code_size_, cfg_,
                                   line_words);
      if (blk == nullptr) break;  // sync op / past end: per-cycle territory
      prev = blk;
      last_block_pc_ = pc_;
      const CachedOp* ops = bc->ops(*blk);
      const size_t n = blk->count;
      const u64 lean_need = static_cast<u64>(worst_op_cycles_) * n;
      if (max_cycles - ctx.cycles >= lean_need) {
        // Lean lane: the whole block provably fits the budget, so no
        // per-record budget checks. run_span() threads through the records
        // (I$ probes on line starts, provable hits batched, generation
        // check after stores) and reports whether to hand back to step()
        // — a pc divert (hardware-loop wrap, taken branch) just ends the
        // span with the new pc in the core. A back-edge landing on this
        // very block restarts *inside* run_span while ctx.cycles stays at
        // or under lean_limit (≥ one more whole worst-case span left) —
        // the hot loop of every hwloop kernel, kept free of call frames.
        last_block_ops_left_ = static_cast<u32>(n);
        if (BlockRunner::run_span(*this, ops, n, ctx, ic, code_gen, bc,
                                  max_cycles - lean_need)) {
          stop = true;  // non-plain memory or self-modifying store
        }
        continue;
      }
      // Budget tail: per-record worst-case checks, I$ probe on every record.
      for (size_t i = 0; i < n; ++i) {
        const CachedOp& rec = ops[i];
        last_block_ops_left_ = static_cast<u32>(n - i);
        if (rec.pc != pc_) break;
        if (max_cycles - ctx.cycles < worst_op_cycles_) {
          stop = true;  // the next record could overshoot the budget
          break;
        }
        if (ic != nullptr) {
          const u32 penalty = ic->fetch(rec.pc);
          if (penalty > 0) {
            // Refill charged exactly as issue() would: the miss cycle plus
            // the refill, attributed up front. The line bitmap is sticky,
            // so a post-charge fallback to step() re-fetches as a hit.
            perf_.stall_icache += penalty;
            ctx.cycles += penalty + 1;
            if (prof_ != nullptr) prof_->add_cycles(rec.pc, penalty + 1);
          }
        }
        if (!rec.fn(*this, rec, ctx)) {
          stop = true;
          break;
        }
        if (rec.is_store && code_gen != nullptr &&
            *code_gen != bc->generation) {
          bc->flush();
          bc->generation = *code_gen;
          stop = true;
          break;
        }
      }
    }
  } catch (...) {
    // Keep the fault's counter state identical to per-cycle stepping: the
    // faulting instruction's counted cycles/retires are in ctx, flush them.
    flush_run_ctx(ctx);
    throw;
  }
  flush_run_ctx(ctx);
  return ctx.cycles;
}

void Core::flush_run_ctx(const BlockRunCtx& ctx) {
  // Every cycle of a block run is an active cycle: the core never sleeps,
  // halts, or idles inside one.
  perf_.cycles += ctx.cycles;
  perf_.active_cycles += ctx.cycles;
  perf_.instrs += ctx.instrs;
  perf_.loads += ctx.loads;
  perf_.stores += ctx.stores;
}

namespace {

/// Transient per-core state of one multi-core block window. ctx.cycles is
/// the core's *local time*: the window-relative cycle its next action
/// happens at. The runner always advances the core with the smallest
/// (local time, rotation rank) pair, which makes the interleaving of
/// arbitration attempts identical to the per-cycle scheduler's rotating
/// core loop — the foundation of the bank-conflict-exact replay.
struct WCore {
  Core* c = nullptr;
  u32 slot = 0;      ///< Cluster core index (rotation rank derives from it).
  BlockRunCtx ctx;   ///< Bulk counters; ctx.cycles doubles as local time.
  const Block* blk = nullptr;
  const CachedOp* ops = nullptr;
  u32 nops = 0;
  u32 next = 0;      ///< Index of the next record to retire.
  u64 sure_hits = 0; ///< Fetches provably hitting the I$, charged in bulk.
  /// In-flight load/store replay lane. kFast: direct-span data movement
  /// under try_grant_plain() arbitration. kMachinery: the real start_mem/
  /// retry_mem path (unaligned, watched store, L2/TCDM splits), one grant
  /// attempt per pick so contention interleaves exactly.
  enum MemLane : u8 { kNoMem = 0, kFast, kMachinery };
  MemLane lane = kNoMem;
  bool started = false;  ///< kMachinery: start_mem() already issued.
  Addr addr = 0;         ///< kFast: resolved effective address.
  const mem::DirectSpan* span = nullptr;  ///< kFast: containing span.
};

}  // namespace

u64 BlockRunner::run_window(const McWindowParams& p) {
  constexpr u32 kMaxCores = 16;
  const u32 n = p.num_cores;
  if (n < 2 || n > kMaxCores) return 0;
  std::array<WCore, kMaxCores> w;
  u32 na = 0;

  // Phase 1 — per-core entry, mirroring run_cached()'s preamble (cache
  // construction, generation sync, budget constants, direct map) plus the
  // block-eligibility pre-check. Nothing here mutates architectural state,
  // so bailing out leaves the cluster exactly as per-cycle stepping expects.
  for (u32 i = 0; i < n; ++i) {
    if (p.park_state[i] != 0) continue;
    Core& c = *p.cores[i];
    if (c.bcache_ == nullptr) c.bcache_ = std::make_unique<BlockCache>();
    BlockCache* const bc = c.bcache_.get();
    if (c.code_gen_ != nullptr && *c.code_gen_ != bc->generation) {
      bc->flush();  // someone wrote into the code window since last run
      bc->generation = *c.code_gen_;
    }
    if (c.worst_op_cycles_ == 0) c.worst_op_cycles_ = c.compute_worst_op_cycles();
    c.dmap_ = c.bus_->direct_map();
    WCore& s = w[na];
    s = WCore{};
    s.c = &c;
    s.slot = i;
    if (c.busy_ == 0 && !c.memop_.active) {
      const u32 lw = c.icache_ != nullptr ? c.icache_->instrs_per_line() : 0;
      s.blk = bc->lookup(c.pc_, c.code_, c.code_size_, c.cfg_, lw);
      if (s.blk == nullptr) return 0;  // sync op / past end: can't form
      s.ops = bc->ops(*s.blk);
      s.nops = s.blk->count;
      c.last_block_pc_ = c.pc_;
    }
    ++na;
  }
  if (na < 2) return 0;

  // Phase 2 — seed local times. A core mid-stall enters at its remaining
  // busy cycles (its next action is the issue after the countdown); a core
  // mid-memory-op re-attempts its next part then. busy_ moves into ctx and
  // is reconstituted as the post-window residue at exit, so a bail-out
  // after this point must always run the exit flush.
  for (u32 k = 0; k < na; ++k) {
    WCore& s = w[k];
    s.ctx.cycles = s.c->busy_;
    s.c->busy_ = 0;
    if (s.c->memop_.active) {
      s.lane = WCore::kMachinery;
      s.started = true;  // start_mem() ran before the window formed
    }
  }

  mem::DataBus* const bus = w[0].c->bus_;  // one shared cluster bus
  const u64* const code_gen = w[0].c->code_gen_;
  const u64 gen0 = code_gen != nullptr ? *code_gen : 0;

  // The arbitration replay: begin_cycle() opens local cycle `t` exactly
  // once, clearing bank/port claims; every grant attempt at the same t then
  // contends against the claims its same-cycle predecessors (earlier in
  // (time, rank) order — the per-cycle rotation order) already planted.
  // Cycles with no attempts are skipped wholesale: their claims are never
  // probed, so not clearing them is unobservable.
  u64 arb_open = ~u64{0};
  const auto ensure_arb = [&](u64 t) {
    if (arb_open != t) {
      bus->begin_cycle();
      arb_open = t;
    }
  };
  // Rotation rank of `slot` at local time t: 0 = the core the per-cycle
  // scheduler would step first that cycle.
  const auto rank = [&](u32 slot, u64 t) -> u32 {
    const u32 first = static_cast<u32>((p.rot0 + t) % n);
    return (slot + n - first) % n;
  };

  // One fast-lane attempt: arbitration via try_grant_plain (which claims
  // the bank/port and counts the access exactly as the bus path would),
  // data movement on the host pointer, and the retry_mem/finish_mem
  // retirement sequence — exec_mem()'s granted path, under contention.
  const auto fast_attempt = [&](WCore& s) {
    Core& c = *s.c;
    const CachedOp& rec = s.ops[s.next];
    ensure_arb(s.ctx.cycles);
    if (!c.bus_->try_grant_plain(s.addr)) {
      // Denied: a lower-rank master claimed the bank this cycle. One stall
      // cycle, then retry — retry_mem()'s denied path.
      ++c.perf_.stall_mem;
      if (c.prof_ != nullptr) c.prof_->add_cycles(rec.pc, 1);
      s.ctx.cycles += 1;
      return;
    }
    const Instr& in = rec.instr;
    const int size = mem_size(in.op);
    const u32 charge = s.span->latency + rec.cost;  // cost = load/store extra
    s.ctx.cycles += charge;
    u8* ptr = s.span->data + (s.addr - s.span->base);
    u32 loaded = 0;
    if (rec.is_store) {
      const u32 v = c.regs_[in.rd];
      for (int b = 0; b < size; ++b) ptr[b] = static_cast<u8>(v >> (8 * b));
    } else {
      for (int b = size - 1; b >= 0; --b) loaded = (loaded << 8) | ptr[b];
    }
    if (c.prof_ != nullptr) c.prof_->add_cycles(rec.pc, charge);
    ++s.ctx.instrs;
    if (c.retire_hook_) c.retire_hook_(rec.pc, in);
    if (c.prof_ != nullptr) c.prof_->on_retire(rec.pc, in, c.regs_[in.ra]);
    if (rec.is_store) {
      ++s.ctx.stores;
    } else {
      ++s.ctx.loads;
      if (mem_sign(in.op) && size < 4) {
        const u32 sign_bit = 1u << (size * 8 - 1);
        if (loaded & sign_bit) loaded |= ~((sign_bit << 1) - 1);
      }
      c.write_reg(in.rd, loaded);
    }
    if (mem_is_postinc(in.op)) {
      c.write_reg(in.ra, c.regs_[in.ra] + static_cast<u32>(in.imm));
    }
    if (rec.no_loop_end) {
      ++c.pc_;
    } else {
      c.advance_pc_sequential();
    }
    s.lane = WCore::kNoMem;
    s.span = nullptr;
    ++s.next;
  };

  // One machinery attempt: the attempt cycle plus whatever stall the
  // start_mem/retry_mem call queued (grant latency + extra on success, the
  // denied-stall bookkeeping on failure — both self-attributed to perf_ and
  // the profile by the machinery itself).
  const auto machinery_attempt = [&](WCore& s) {
    Core& c = *s.c;
    ensure_arb(s.ctx.cycles);
    s.ctx.cycles += 1;
    if (!s.started) {
      c.start_mem(s.ops[s.next].instr);
      s.started = true;
    } else {
      c.retry_mem();
    }
    s.ctx.cycles += c.busy_;
    c.busy_ = 0;
    if (!c.memop_.active) {
      // finish_mem() retired it, writing instrs/loads/stores to perf_
      // directly — they must not be double-counted through ctx.
      s.lane = WCore::kNoMem;
      s.started = false;
      if (s.blk != nullptr) ++s.next;  // entry-pending ops have no record
    }
  };

  // Classify a memory record on its issue cycle and run the first attempt.
  // Returns false when the access leaves plain memory — peripheral space is
  // per-cycle territory (which is also why no DMA program can ever start
  // inside a window), so the core stops *before* issuing.
  const auto begin_mem = [&](WCore& s, const CachedOp& rec) -> bool {
    Core& c = *s.c;
    const Instr& in = rec.instr;
    const bool postinc = mem_is_postinc(in.op);
    const Addr addr =
        postinc ? c.regs_[in.ra] : c.regs_[in.ra] + static_cast<u32>(in.imm);
    const int size = mem_size(in.op);
    const mem::DirectMap& dm = c.dmap_;
    const mem::DirectSpan* span = nullptr;
    bool fast = (addr & static_cast<Addr>(size - 1)) == 0 &&
                (!postinc || c.cfg_.features.has_postinc);
    if (fast) {
      for (u32 k = 0; k < dm.count; ++k) {
        const mem::DirectSpan& sp = dm.spans[k];
        if (addr >= sp.base &&
            addr - sp.base <= sp.bytes - static_cast<u32>(size)) {
          span = &sp;
          break;
        }
      }
      if (span == nullptr) {
        fast = false;
      } else if (rec.is_store && dm.watch_bytes != 0 &&
                 addr < dm.watch_base + dm.watch_bytes &&
                 addr + static_cast<Addr>(size) > dm.watch_base) {
        fast = false;  // the write watcher must fire: bus path
      }
    }
    if (fast) {
      s.lane = WCore::kFast;
      s.addr = addr;
      s.span = span;
      fast_attempt(s);
      return true;
    }
    if (!c.bus_->plain_memory(addr, size)) return false;
    c.bcache_->note_dmap_fallback();
    s.lane = WCore::kMachinery;
    s.started = false;
    machinery_attempt(s);
    return true;
  };

  // Advance one core by one action at its local time. Returns false when
  // the core must stop the window (sync instruction or program end ahead,
  // peripheral access).
  const auto pick = [&](WCore& s) -> bool {
    Core& c = *s.c;
    if (s.lane == WCore::kMachinery) {
      machinery_attempt(s);
      return true;
    }
    if (s.lane == WCore::kFast) {
      fast_attempt(s);
      return true;
    }
    if (s.blk == nullptr || s.next >= s.nops || s.ops[s.next].pc != c.pc_) {
      // Block boundary (terminator, hardware-loop wrap, or the entry of a
      // core that joined mid-stall): chain to the block at the new pc.
      BlockCache* const bc = c.bcache_.get();
      const u32 lw = c.icache_ != nullptr ? c.icache_->instrs_per_line() : 0;
      const Block* nxt =
          bc->chain(s.blk, c.pc_, c.code_, c.code_size_, c.cfg_, lw);
      if (nxt == nullptr) return false;
      s.blk = nxt;
      s.ops = bc->ops(*nxt);
      s.nops = nxt->count;
      s.next = 0;
      c.last_block_pc_ = c.pc_;
    }
    const CachedOp& rec = s.ops[s.next];
    if (c.icache_ != nullptr) {
      if (rec.line_start) {
        const u32 penalty = c.icache_->fetch(rec.pc);
        if (penalty > 0) {
          // Refill charged exactly as issue() would, without executing; the
          // line bitmap is sticky, so the re-pick's probe is a sure hit.
          c.perf_.stall_icache += penalty;
          s.ctx.cycles += penalty + 1;
          if (c.prof_ != nullptr) c.prof_->add_cycles(rec.pc, penalty + 1);
          return true;
        }
      } else {
        ++s.sure_hits;
      }
    }
    if (!rec.is_mem) {
      rec.fn(c, rec, s.ctx);
      ++s.next;
      return true;
    }
    return begin_mem(s, rec);
  };

  // The window proper: advance the globally earliest (time, rank) core.
  // Every arbitration attempt therefore executes in exactly the order the
  // per-cycle scheduler would have run it, every grant and denial lands
  // identically, and the first core that cannot continue defines the
  // window's end — later-time work on other cores becomes their residue.
  //
  // Realised as a cycle walk rather than a per-action min-scan: every
  // action advances its core's local time by at least one cycle, so at any
  // cycle T each core acts at most once, and visiting the slots in rotation
  // order (rank 0 first) replays the (time, rank) total order exactly —
  // with `first` maintained incrementally instead of paying the rank()
  // modulos on every action.
  std::array<WCore*, kMaxCores> by_slot{};
  for (u32 k = 0; k < na; ++k) by_slot[w[k].slot] = &w[k];
  u64 t_pick = 0;
  WCore* cur = nullptr;
  try {
    u64 T = 0;
    u32 first = p.rot0 % n;  // rank-0 slot at local cycle 0
    for (bool stop = false; !stop;) {
      bool any = false;
      for (u32 j = 0; j < n; ++j) {
        u32 slot = first + j;
        if (slot >= n) slot -= n;
        WCore* const s = by_slot[slot];
        if (s == nullptr || s->ctx.cycles != T) continue;
        cur = s;
        t_pick = T;
        // Budget guard on every pick (issues and retries alike): no action
        // may start at or beyond budget - worst, so no in-window memory
        // effect can land at a cycle the caller has not granted.
        if (T >= p.budget || p.budget - T < s->c->worst_op_cycles_) {
          stop = true;
          break;
        }
        if (!pick(*s)) {
          stop = true;
          break;
        }
        if (code_gen != nullptr && *code_gen != gen0) {
          // A machinery store hit some core's code window. The (time, rank)
          // order guarantees no sibling has executed anything at a later
          // time, so stopping here is exact; the next run's generation
          // sync flushes every stale cache.
          stop = true;
          break;
        }
        any = true;
      }
      if (stop) break;
      if (any) {
        ++T;
        first = first + 1 == n ? 0 : first + 1;
      } else {
        // Every core is mid-charge: jump to the earliest next action.
        u64 tn = ~u64{0};
        for (u32 k = 0; k < na; ++k) tn = std::min(tn, w[k].ctx.cycles);
        T = tn;
        first = static_cast<u32>((p.rot0 + T) % n);
      }
    }
  } catch (...) {
    // A record faulted mid-pick at local time t_pick. Leave every core
    // exactly as per-cycle stepping would at the fault cycle: the faulting
    // core flushes its full ctx (its counted cycles include the faulting
    // issue); every other core is advanced to the fault cycle — plus one
    // if its rotation rank that cycle comes first, because the per-cycle
    // scheduler would have stepped it before the fault fired — with the
    // overshoot reconstituted as busy residue.
    const u32 rank_f = rank(cur->slot, t_pick);
    for (u32 k = 0; k < na; ++k) {
      WCore& s = w[k];
      Core& c = *s.c;
      if (&s == cur) {
        c.flush_run_ctx(s.ctx);
      } else {
        const u64 cap = t_pick + (rank(s.slot, t_pick) < rank_f ? 1 : 0);
        const u64 wj = std::min(s.ctx.cycles, cap);
        c.perf_.cycles += wj;
        c.perf_.active_cycles += wj;
        c.perf_.instrs += s.ctx.instrs;
        c.perf_.loads += s.ctx.loads;
        c.perf_.stores += s.ctx.stores;
        c.busy_ = static_cast<u32>(s.ctx.cycles - wj);
      }
      if (s.sure_hits != 0 && c.icache_ != nullptr) {
        c.icache_->charge_hits(s.sure_hits);
      }
      c.last_block_ops_left_ = s.blk != nullptr ? s.nops - s.next : 0;
    }
    for (u32 i = 0; i < n; ++i) {
      if (p.park_state[i] == 0) continue;
      const u64 cap = t_pick + (rank(i, t_pick) < rank_f ? 1 : 0);
      if (cap == 0) continue;
      if (p.park_state[i] == 2) {  // cluster::kParkedHalt
        p.cores[i]->charge_halted_cycles(cap);
      } else {  // cluster::kParkedSleep
        p.cores[i]->charge_sleep_cycles(cap);
      }
    }
    throw;
  }

  // Normal exit: the window's span is the earliest per-core local time —
  // the stopping core's. Later cores keep their overshoot (an in-flight
  // multi-cycle record, exactly like one straddling a per-cycle advance
  // boundary) as busy residue; retire counts flush in full, their cycles
  // were all charged into ctx at issue time.
  u64 wmin = w[0].ctx.cycles;
  for (u32 k = 1; k < na; ++k) wmin = std::min(wmin, w[k].ctx.cycles);
  for (u32 k = 0; k < na; ++k) {
    WCore& s = w[k];
    Core& c = *s.c;
    c.perf_.cycles += wmin;
    c.perf_.active_cycles += wmin;
    c.perf_.instrs += s.ctx.instrs;
    c.perf_.loads += s.ctx.loads;
    c.perf_.stores += s.ctx.stores;
    c.busy_ = static_cast<u32>(s.ctx.cycles - wmin);
    if (s.sure_hits != 0 && c.icache_ != nullptr) {
      c.icache_->charge_hits(s.sure_hits);
    }
    c.last_block_ops_left_ = s.blk != nullptr ? s.nops - s.next : 0;
  }
  if (wmin != 0) {
    for (u32 i = 0; i < n; ++i) {
      if (p.park_state[i] == 0) continue;
      if (p.park_state[i] == 2) {  // cluster::kParkedHalt
        p.cores[i]->charge_halted_cycles(wmin);
      } else {  // cluster::kParkedSleep
        p.cores[i]->charge_sleep_cycles(wmin);
      }
    }
  }
  return wmin;
}

u64 run_multicore_window(const McWindowParams& p) {
  return BlockRunner::run_window(p);
}

}  // namespace ulp::core
