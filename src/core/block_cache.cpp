// Block decode, threaded dispatch, and Core::run_cached().
//
// Every handler here replays one per-cycle issue of its opcode exactly:
// same bookkeeping order (instrs, retire hook, profile retire, charge), same
// feature-gate messages, same arithmetic conventions. The per-cycle
// execute() switch in core.cpp stays the oracle; any divergence between the
// two is a bug the differential suites are built to catch.

#include "core/block_cache.hpp"

#include <algorithm>
#include <array>
#include <string>

#include "common/status.hpp"
#include "core/core.hpp"
#include "isa/disasm.hpp"

namespace ulp::core {

using isa::Instr;
using isa::Opcode;

namespace {

i32 as_i32(u32 v) { return static_cast<i32>(v); }
u32 as_u32(i32 v) { return static_cast<u32>(v); }

i32 lane16(u32 v, int lane) {
  return static_cast<i16>((v >> (16 * lane)) & 0xFFFF);
}
i32 lane8(u32 v, int lane) {
  return static_cast<i8>((v >> (8 * lane)) & 0xFF);
}

/// Instructions the scheduler must observe per-cycle (sleep entry, events,
/// end-of-computation): a block never contains them, so block runs can never
/// park a core, wake a sibling, or raise EOC mid-run.
bool is_sync(Opcode op) {
  return op == Opcode::kBarrier || op == Opcode::kWfe || op == Opcode::kSev ||
         op == Opcode::kEoc || op == Opcode::kHalt;
}

/// Instructions that end a block (included as its last record). Hardware
/// loop back-edges need no terminator: the dispatch loop re-checks the pc
/// against every record and re-looks-up on any wrap.
bool is_terminator(Opcode op) {
  return isa::is_branch(op) || op == Opcode::kJal || op == Opcode::kJalr ||
         op == Opcode::kLpSetup;
}

// Per-opcode facts the mem handlers monomorphise on: each load/store opcode
// fully determines its access size, direction, addressing and extension.
constexpr bool mem_is_store(Opcode op) {
  return op >= Opcode::kSw && op <= Opcode::kSbpi;
}
constexpr bool mem_is_postinc(Opcode op) {
  return (op >= Opcode::kLwpi && op <= Opcode::kLbupi) ||
         (op >= Opcode::kSwpi && op <= Opcode::kSbpi);
}
constexpr int mem_size(Opcode op) {
  switch (op) {
    case Opcode::kLw:
    case Opcode::kLwpi:
    case Opcode::kSw:
    case Opcode::kSwpi:
      return 4;
    case Opcode::kLh:
    case Opcode::kLhu:
    case Opcode::kLhpi:
    case Opcode::kLhupi:
    case Opcode::kSh:
    case Opcode::kShpi:
      return 2;
    default:
      return 1;
  }
}
constexpr bool mem_sign(Opcode op) {
  // The signed sub-word loads finish_mem() extends (lhu/lbu stay zero-filled).
  return op == Opcode::kLh || op == Opcode::kLhpi || op == Opcode::kLb ||
         op == Opcode::kLbpi;
}

/// Decode-time price of a record under `c` (the cost execute() would pick;
/// branches/jumps store their taken cost, the not-taken cost is 1; memory
/// records carry their load/store extra cycles).
u32 static_cost(const Instr& in, const CoreCosts& c) {
  if (isa::is_load(in.op)) return c.load_extra;
  if (isa::is_store(in.op)) return c.store_extra;
  switch (in.op) {
    case Opcode::kMul:
    case Opcode::kMac:
      return c.mul_cycles;
    case Opcode::kMulhs:
    case Opcode::kMulhu:
      return c.mul64_cycles;
    case Opcode::kDiv:
    case Opcode::kDivu:
    case Opcode::kRem:
    case Opcode::kRemu:
      return c.div_cycles;
    case Opcode::kDotp2h:
      return c.dotp2_cycles;
    case Opcode::kDotp4b:
      return c.dotp4_cycles;
    case Opcode::kBeq:
    case Opcode::kBne:
    case Opcode::kBlt:
    case Opcode::kBge:
    case Opcode::kBltu:
    case Opcode::kBgeu:
      return 1 + c.branch_taken_penalty;
    case Opcode::kJal:
    case Opcode::kJalr:
      return 1 + c.jump_penalty;
    default:
      return 1;
  }
}

}  // namespace

/// The threaded-dispatch handlers. A friend of Core: handlers are the block
/// path's counterpart of Core::execute()/start_mem() and need the same
/// access to architectural and performance state.
class BlockRunner {
 public:
  /// Picks the handler for one decoded instruction. Feature gates are
  /// resolved here, at decode time: when the core's configuration (and,
  /// for lp.setup/csrr, the instruction's own fields) guarantees a
  /// handler's ULP_CHECKs can never fire, the kTrusted instantiation —
  /// no runtime checks, single merged cycle add — is selected instead.
  [[nodiscard]] static CachedOp::Handler handler_for(const Instr& in,
                                                     const CoreFeatures& f);

 private:
  /// One non-memory instruction, exactly as execute() would run it.
  /// kTrusted: every check in this handler was proven at decode time.
  template <Opcode Op, bool kTrusted>
  static bool exec(Core& c, const CachedOp& op, BlockRunCtx& ctx) {
    // Opcodes whose handler body cannot throw (no feature gate, no CSR
    // check — or kTrusted, where the gates were discharged at decode)
    // defer the whole cycle charge to one add at the end; the rest count
    // the issue cycle up front so a mid-handler SimError leaves the same
    // cycle state one step() would have.
    constexpr bool kSimple =
        kTrusted ||
        Op == Opcode::kAdd || Op == Opcode::kSub || Op == Opcode::kAnd ||
        Op == Opcode::kOr || Op == Opcode::kXor || Op == Opcode::kSll ||
        Op == Opcode::kSrl || Op == Opcode::kSra || Op == Opcode::kSlt ||
        Op == Opcode::kSltu || Op == Opcode::kMul || Op == Opcode::kAddi ||
        Op == Opcode::kAndi || Op == Opcode::kOri || Op == Opcode::kXori ||
        Op == Opcode::kSlli || Op == Opcode::kSrli || Op == Opcode::kSrai ||
        Op == Opcode::kSlti || Op == Opcode::kSltiu || Op == Opcode::kLui ||
        Op == Opcode::kBeq || Op == Opcode::kBne || Op == Opcode::kBlt ||
        Op == Opcode::kBge || Op == Opcode::kBltu || Op == Opcode::kBgeu ||
        Op == Opcode::kJal || Op == Opcode::kJalr || Op == Opcode::kNop;
    const Instr& in = op.instr;
    // The issue cycle: step() bookkeeping folded into ctx, then execute()'s
    // preamble in its order.
    if constexpr (!kSimple) ctx.cycles += 1;
    ++ctx.instrs;
    if (c.retire_hook_) c.retire_hook_(op.pc, in);
    const u32 pc0 = op.pc;
    if (c.prof_ != nullptr) c.prof_->on_retire(pc0, in, c.regs_[in.ra]);
    const u32 a = c.regs_[in.ra];
    const u32 b = c.regs_[in.rb];
    const u32 d = c.regs_[in.rd];
    const CoreFeatures& f = c.cfg_.features;
    const CoreCosts& cc = c.cfg_.costs;
    u32 cost = 1;
    bool sequential = true;
    (void)b;
    (void)d;
    (void)f;
    (void)cc;

    if constexpr (Op == Opcode::kAdd) {
      c.write_reg(in.rd, a + b);
    } else if constexpr (Op == Opcode::kSub) {
      c.write_reg(in.rd, a - b);
    } else if constexpr (Op == Opcode::kAnd) {
      c.write_reg(in.rd, a & b);
    } else if constexpr (Op == Opcode::kOr) {
      c.write_reg(in.rd, a | b);
    } else if constexpr (Op == Opcode::kXor) {
      c.write_reg(in.rd, a ^ b);
    } else if constexpr (Op == Opcode::kSll) {
      c.write_reg(in.rd, a << (b & 31));
    } else if constexpr (Op == Opcode::kSrl) {
      c.write_reg(in.rd, a >> (b & 31));
    } else if constexpr (Op == Opcode::kSra) {
      c.write_reg(in.rd, as_u32(as_i32(a) >> (b & 31)));
    } else if constexpr (Op == Opcode::kSlt) {
      c.write_reg(in.rd, as_i32(a) < as_i32(b) ? 1 : 0);
    } else if constexpr (Op == Opcode::kSltu) {
      c.write_reg(in.rd, a < b ? 1 : 0);
    } else if constexpr (Op == Opcode::kMul) {
      c.write_reg(in.rd, a * b);
      cost = op.cost;
      ++c.perf_.mults;
    } else if constexpr (Op == Opcode::kMulhs) {
      if constexpr (!kTrusted) ULP_CHECK(f.has_mul64, c.cfg_.name + " has no mulhs");
      c.write_reg(in.rd, static_cast<u32>(
                             (static_cast<i64>(as_i32(a)) * as_i32(b)) >> 32));
      cost = op.cost;
      ++c.perf_.mults;
    } else if constexpr (Op == Opcode::kMulhu) {
      if constexpr (!kTrusted) ULP_CHECK(f.has_mul64, c.cfg_.name + " has no mulhu");
      c.write_reg(in.rd, static_cast<u32>(
                             (static_cast<u64>(a) * static_cast<u64>(b)) >> 32));
      cost = op.cost;
      ++c.perf_.mults;
    } else if constexpr (Op == Opcode::kDiv) {
      if constexpr (!kTrusted) ULP_CHECK(f.has_div, c.cfg_.name + " has no divide");
      if (b == 0) {
        c.write_reg(in.rd, 0xFFFFFFFFu);
      } else if (a == 0x80000000u && b == 0xFFFFFFFFu) {
        c.write_reg(in.rd, 0x80000000u);  // INT_MIN / -1 overflow convention
      } else {
        c.write_reg(in.rd, as_u32(as_i32(a) / as_i32(b)));
      }
      cost = op.cost;
      ++c.perf_.divs;
    } else if constexpr (Op == Opcode::kDivu) {
      if constexpr (!kTrusted) ULP_CHECK(f.has_div, c.cfg_.name + " has no divide");
      c.write_reg(in.rd, b == 0 ? 0xFFFFFFFFu : a / b);
      cost = op.cost;
      ++c.perf_.divs;
    } else if constexpr (Op == Opcode::kRem) {
      if constexpr (!kTrusted) ULP_CHECK(f.has_div, c.cfg_.name + " has no divide");
      if (b == 0) {
        c.write_reg(in.rd, a);
      } else if (a == 0x80000000u && b == 0xFFFFFFFFu) {
        c.write_reg(in.rd, 0);  // INT_MIN % -1
      } else {
        c.write_reg(in.rd, as_u32(as_i32(a) % as_i32(b)));
      }
      cost = op.cost;
      ++c.perf_.divs;
    } else if constexpr (Op == Opcode::kRemu) {
      if constexpr (!kTrusted) ULP_CHECK(f.has_div, c.cfg_.name + " has no divide");
      c.write_reg(in.rd, b == 0 ? a : a % b);
      cost = op.cost;
      ++c.perf_.divs;
    } else if constexpr (Op == Opcode::kMac) {
      if constexpr (!kTrusted) ULP_CHECK(f.has_mac, c.cfg_.name + " has no MAC");
      c.write_reg(in.rd, d + a * b);
      cost = op.cost;
      ++c.perf_.mults;
    } else if constexpr (Op == Opcode::kDotp2h) {
      if constexpr (!kTrusted) ULP_CHECK(f.has_simd, c.cfg_.name + " has no sub-word SIMD");
      c.write_reg(in.rd, d + as_u32(lane16(a, 0) * lane16(b, 0) +
                                    lane16(a, 1) * lane16(b, 1)));
      cost = op.cost;
      ++c.perf_.mults;
    } else if constexpr (Op == Opcode::kDotp4b) {
      if constexpr (!kTrusted) ULP_CHECK(f.has_simd, c.cfg_.name + " has no sub-word SIMD");
      i32 acc = 0;
      for (int l = 0; l < 4; ++l) acc += lane8(a, l) * lane8(b, l);
      c.write_reg(in.rd, d + as_u32(acc));
      cost = op.cost;
      ++c.perf_.mults;
    } else if constexpr (Op == Opcode::kAdd2h || Op == Opcode::kSub2h) {
      if constexpr (!kTrusted) ULP_CHECK(f.has_simd, c.cfg_.name + " has no sub-word SIMD");
      const int sign = Op == Opcode::kAdd2h ? 1 : -1;
      u32 out = 0;
      for (int l = 0; l < 2; ++l) {
        const u32 r = static_cast<u32>(lane16(a, l) + sign * lane16(b, l));
        out |= (r & 0xFFFF) << (16 * l);
      }
      c.write_reg(in.rd, out);
    } else if constexpr (Op == Opcode::kAdd4b || Op == Opcode::kSub4b) {
      if constexpr (!kTrusted) ULP_CHECK(f.has_simd, c.cfg_.name + " has no sub-word SIMD");
      const int sign = Op == Opcode::kAdd4b ? 1 : -1;
      u32 out = 0;
      for (int l = 0; l < 4; ++l) {
        const u32 r = static_cast<u32>(lane8(a, l) + sign * lane8(b, l));
        out |= (r & 0xFF) << (8 * l);
      }
      c.write_reg(in.rd, out);
    } else if constexpr (Op == Opcode::kAddi) {
      c.write_reg(in.rd, a + as_u32(in.imm));
    } else if constexpr (Op == Opcode::kAndi) {
      c.write_reg(in.rd, a & as_u32(in.imm));
    } else if constexpr (Op == Opcode::kOri) {
      c.write_reg(in.rd, a | as_u32(in.imm));
    } else if constexpr (Op == Opcode::kXori) {
      c.write_reg(in.rd, a ^ as_u32(in.imm));
    } else if constexpr (Op == Opcode::kSlli) {
      c.write_reg(in.rd, a << (in.imm & 31));
    } else if constexpr (Op == Opcode::kSrli) {
      c.write_reg(in.rd, a >> (in.imm & 31));
    } else if constexpr (Op == Opcode::kSrai) {
      c.write_reg(in.rd, as_u32(as_i32(a) >> (in.imm & 31)));
    } else if constexpr (Op == Opcode::kSlti) {
      c.write_reg(in.rd, as_i32(a) < in.imm ? 1 : 0);
    } else if constexpr (Op == Opcode::kSltiu) {
      c.write_reg(in.rd, a < as_u32(in.imm) ? 1 : 0);
    } else if constexpr (Op == Opcode::kLui) {
      c.write_reg(in.rd, as_u32(in.imm) << 12);
    } else if constexpr (Op == Opcode::kBeq || Op == Opcode::kBne ||
                         Op == Opcode::kBlt || Op == Opcode::kBge ||
                         Op == Opcode::kBltu || Op == Opcode::kBgeu) {
      ++c.perf_.branches;
      bool taken = false;
      if constexpr (Op == Opcode::kBeq) taken = a == b;
      if constexpr (Op == Opcode::kBne) taken = a != b;
      if constexpr (Op == Opcode::kBlt) taken = as_i32(a) < as_i32(b);
      if constexpr (Op == Opcode::kBge) taken = as_i32(a) >= as_i32(b);
      if constexpr (Op == Opcode::kBltu) taken = a < b;
      if constexpr (Op == Opcode::kBgeu) taken = a >= b;
      if (taken) {
        ++c.perf_.branches_taken;
        c.pc_ = static_cast<u32>(static_cast<i64>(c.pc_) + in.imm);
        cost = op.cost;  // 1 + branch_taken_penalty
        sequential = false;
      }
    } else if constexpr (Op == Opcode::kJal) {
      c.write_reg(in.rd, c.pc_ + 1);
      c.pc_ = static_cast<u32>(static_cast<i64>(c.pc_) + in.imm);
      cost = op.cost;  // 1 + jump_penalty
      sequential = false;
    } else if constexpr (Op == Opcode::kJalr) {
      const u32 target = a;
      c.write_reg(in.rd, c.pc_ + 1);
      c.pc_ = target;
      cost = op.cost;  // 1 + jump_penalty
      sequential = false;
    } else if constexpr (Op == Opcode::kLpSetup) {
      if constexpr (!kTrusted) ULP_CHECK(f.has_hwloops, c.cfg_.name + " has no hardware loops");
      if constexpr (!kTrusted) ULP_CHECK(in.rd < 2, "hardware loop id must be 0 or 1");
      if constexpr (!kTrusted) ULP_CHECK(in.imm > 0, "hardware loop body must be non-empty");
      Core::HwLoop& lp = c.loops_[in.rd];
      lp.start = c.pc_ + 1;
      lp.end = c.pc_ + 1 + static_cast<u32>(in.imm);
      lp.count = a;
      if (lp.count == 0) {
        c.pc_ = lp.end;
        sequential = false;
      }
    } else if constexpr (Op == Opcode::kCsrr) {
      // kCycle below folds ctx.cycles into the CSR view assuming the issue
      // cycle was counted up front — which only !kSimple does, so csrr may
      // never be instantiated trusted.
      static_assert(!kTrusted, "csrr depends on the up-front issue cycle");
      u32 v = 0;
      switch (static_cast<isa::Csr>(in.imm)) {
        case isa::Csr::kCoreId:
          v = c.id_;
          break;
        case isa::Csr::kNumCores:
          v = c.num_cores_;
          break;
        case isa::Csr::kCycle:
          // read_csr() sees perf_.cycles with the current cycle already
          // counted; in a block run that cycle lives in ctx.cycles until
          // the exit flush, so add the two views.
          v = static_cast<u32>(c.perf_.cycles + ctx.cycles);
          break;
        default:
          ULP_CHECK(false, "unknown CSR " + std::to_string(in.imm));
      }
      c.write_reg(in.rd, v);
    } else if constexpr (Op == Opcode::kNop) {
      // nothing
    } else {
      ULP_CHECK(false, "unhandled opcode: " + isa::disassemble(in));
    }

    if (sequential) {
      if (op.no_loop_end) {
        ++c.pc_;  // provably not a loop end: skip the loop-slot scan
      } else {
        c.advance_pc_sequential();
      }
    }
    if constexpr (kSimple) {
      ctx.cycles += cost;
    } else {
      ctx.cycles += cost - 1;
    }
    if (c.prof_ != nullptr) c.prof_->add_cycles(pc0, cost);
    return true;
  }

  /// One load/store on the fast lane: a naturally aligned access inside a
  /// direct span, with no armed write watch in the way, is replayed without
  /// the bus call — data movement on the host pointer, the span's solo
  /// grant latency plus the opcode's extra cycles, and the same counter,
  /// hook and writeback sequence retry_mem()/finish_mem() would perform.
  /// Everything else (unaligned, watched stores, peripherals) falls back to
  /// exec_mem_slow(). Monomorphised per opcode: size, direction, post-
  /// increment and sign extension are compile-time facts.
  /// kTrusted: the post-increment feature gate was discharged at decode
  /// (always true for the non-post-increment opcodes, which have no gate).
  template <Opcode Op, bool kTrusted>
  static bool exec_mem(Core& c, const CachedOp& op, BlockRunCtx& ctx) {
    constexpr bool kStore = mem_is_store(Op);
    constexpr bool kPostInc = mem_is_postinc(Op);
    constexpr int kSize = mem_size(Op);
    const Instr& in = op.instr;
    const Addr addr = kPostInc ? c.regs_[in.ra]
                               : c.regs_[in.ra] + static_cast<u32>(in.imm);
    if constexpr (kSize > 1) {
      if ((addr & static_cast<Addr>(kSize - 1)) != 0) {
        return exec_mem_slow(c, op, ctx);
      }
    }
    const mem::DirectMap& dm = c.dmap_;
    for (u32 s = 0; s < dm.count; ++s) {
      const mem::DirectSpan& sp = dm.spans[s];
      if (addr < sp.base || addr - sp.base > sp.bytes - kSize) continue;
      if constexpr (kStore) {
        if (dm.watch_bytes != 0 && addr < dm.watch_base + dm.watch_bytes &&
            addr + kSize > dm.watch_base) {
          // Watched store: the bus path lands it so the watcher fires.
          return exec_mem_slow(c, op, ctx);
        }
      }
      const u32 charge = sp.latency + op.cost;  // cost = load/store extra
      if constexpr (kPostInc && !kTrusted) {
        // The issue cycle is counted before start_mem()'s feature check can
        // throw, exactly as one step() would leave the cycle state.
        ctx.cycles += 1;
        ULP_CHECK(c.cfg_.features.has_postinc,
                  c.cfg_.name + " has no post-increment addressing");
        ctx.cycles += charge - 1;
      } else {
        ctx.cycles += charge;
      }
      u8* p = sp.data + (addr - sp.base);
      if (sp.access_counter != nullptr) ++*sp.access_counter;
      // Data movement first (the grant), then retirement — retry_mem/
      // finish_mem order, byte-for-byte little-endian as load_le/store_le.
      u32 loaded = 0;
      if constexpr (kStore) {
        const u32 v = c.regs_[in.rd];
        for (int i = 0; i < kSize; ++i) {
          p[i] = static_cast<u8>(v >> (8 * i));
        }
      } else {
        for (int i = kSize - 1; i >= 0; --i) {
          loaded = (loaded << 8) | p[i];
        }
      }
      if (c.prof_ != nullptr) c.prof_->add_cycles(op.pc, charge);
      ++ctx.instrs;
      if (c.retire_hook_) c.retire_hook_(op.pc, in);
      if (c.prof_ != nullptr) c.prof_->on_retire(op.pc, in, c.regs_[in.ra]);
      if constexpr (kStore) {
        ++ctx.stores;
      } else {
        ++ctx.loads;
        if constexpr (mem_sign(Op) && kSize < 4) {
          constexpr u32 kSignBit = 1u << (kSize * 8 - 1);
          if (loaded & kSignBit) loaded |= ~((kSignBit << 1) - 1);
        }
        c.write_reg(in.rd, loaded);
      }
      if constexpr (kPostInc) {
        c.write_reg(in.ra, c.regs_[in.ra] + static_cast<u32>(in.imm));
      }
      if (op.no_loop_end) {
        ++c.pc_;
      } else {
        c.advance_pc_sequential();
      }
      return true;
    }
    return exec_mem_slow(c, op, ctx);
  }

  /// One load/store, replayed through the real start_mem/retry_mem/
  /// finish_mem machinery so address split, writeback, post-increment and
  /// profiling stay byte-for-byte the per-cycle code. The solo-window
  /// precondition makes every grant succeed on its first fresh-cycle
  /// attempt, so the cycle count is closed-form: grant cycle + queued
  /// latency per part.
  static bool exec_mem_slow(Core& c, const CachedOp& op, BlockRunCtx& ctx) {
    const Instr& in = op.instr;
    const Addr addr = isa::is_postinc(in.op)
                          ? c.regs_[in.ra]
                          : c.regs_[in.ra] + static_cast<u32>(in.imm);
    if (!c.bus_->plain_memory(addr, isa::access_size(in.op))) {
      return false;  // peripheral/unmapped: per-cycle path owns this access
    }
    ctx.cycles += 1;  // the issue cycle carries the first grant attempt
    const u64 stall0 = c.perf_.stall_mem;
    c.bus_->begin_cycle();
    c.start_mem(in);
    while (c.memop_.active) {
      // The granted part queued latency-1+extra stall cycles; those plus
      // the next part's own grant cycle elapse before the retry.
      ctx.cycles += c.busy_ + 1;
      c.busy_ = 0;
      c.bus_->begin_cycle();
      c.retry_mem();
    }
    ctx.cycles += c.busy_;
    c.busy_ = 0;
    ULP_CHECK(c.perf_.stall_mem == stall0,
              "block-cached access denied on a plain-memory range");
    return true;
  }

  friend class BlockCache;
};

CachedOp::Handler BlockRunner::handler_for(const Instr& in,
                                           const CoreFeatures& f) {
// Unchecked opcodes: the kTrusted flag changes nothing, one instantiation.
#define ULP_BLOCK_HANDLER(name) \
  case Opcode::name:            \
    return &exec<Opcode::name, false>;
// Feature-gated opcodes: discharge the gate at decode time when it holds.
#define ULP_BLOCK_CHECKED_HANDLER(name, cond)                         \
  case Opcode::name:                                                  \
    return (cond) ? &exec<Opcode::name, true>                         \
                  : &exec<Opcode::name, false>;
#define ULP_BLOCK_MEM_HANDLER(name)                                   \
  case Opcode::name:                                                  \
    return f.has_postinc || !mem_is_postinc(Opcode::name)             \
               ? &exec_mem<Opcode::name, true>                        \
               : &exec_mem<Opcode::name, false>;
  switch (in.op) {
    ULP_BLOCK_MEM_HANDLER(kLw)
    ULP_BLOCK_MEM_HANDLER(kLh)
    ULP_BLOCK_MEM_HANDLER(kLhu)
    ULP_BLOCK_MEM_HANDLER(kLb)
    ULP_BLOCK_MEM_HANDLER(kLbu)
    ULP_BLOCK_MEM_HANDLER(kLwpi)
    ULP_BLOCK_MEM_HANDLER(kLhpi)
    ULP_BLOCK_MEM_HANDLER(kLhupi)
    ULP_BLOCK_MEM_HANDLER(kLbpi)
    ULP_BLOCK_MEM_HANDLER(kLbupi)
    ULP_BLOCK_MEM_HANDLER(kSw)
    ULP_BLOCK_MEM_HANDLER(kSh)
    ULP_BLOCK_MEM_HANDLER(kSb)
    ULP_BLOCK_MEM_HANDLER(kSwpi)
    ULP_BLOCK_MEM_HANDLER(kShpi)
    ULP_BLOCK_MEM_HANDLER(kSbpi)
    ULP_BLOCK_HANDLER(kAdd)
    ULP_BLOCK_HANDLER(kSub)
    ULP_BLOCK_HANDLER(kAnd)
    ULP_BLOCK_HANDLER(kOr)
    ULP_BLOCK_HANDLER(kXor)
    ULP_BLOCK_HANDLER(kSll)
    ULP_BLOCK_HANDLER(kSrl)
    ULP_BLOCK_HANDLER(kSra)
    ULP_BLOCK_HANDLER(kSlt)
    ULP_BLOCK_HANDLER(kSltu)
    ULP_BLOCK_HANDLER(kMul)
    ULP_BLOCK_CHECKED_HANDLER(kMulhs, f.has_mul64)
    ULP_BLOCK_CHECKED_HANDLER(kMulhu, f.has_mul64)
    ULP_BLOCK_CHECKED_HANDLER(kDiv, f.has_div)
    ULP_BLOCK_CHECKED_HANDLER(kDivu, f.has_div)
    ULP_BLOCK_CHECKED_HANDLER(kRem, f.has_div)
    ULP_BLOCK_CHECKED_HANDLER(kRemu, f.has_div)
    ULP_BLOCK_CHECKED_HANDLER(kMac, f.has_mac)
    ULP_BLOCK_CHECKED_HANDLER(kDotp2h, f.has_simd)
    ULP_BLOCK_CHECKED_HANDLER(kDotp4b, f.has_simd)
    ULP_BLOCK_CHECKED_HANDLER(kAdd2h, f.has_simd)
    ULP_BLOCK_CHECKED_HANDLER(kSub2h, f.has_simd)
    ULP_BLOCK_CHECKED_HANDLER(kAdd4b, f.has_simd)
    ULP_BLOCK_CHECKED_HANDLER(kSub4b, f.has_simd)
    ULP_BLOCK_HANDLER(kAddi)
    ULP_BLOCK_HANDLER(kAndi)
    ULP_BLOCK_HANDLER(kOri)
    ULP_BLOCK_HANDLER(kXori)
    ULP_BLOCK_HANDLER(kSlli)
    ULP_BLOCK_HANDLER(kSrli)
    ULP_BLOCK_HANDLER(kSrai)
    ULP_BLOCK_HANDLER(kSlti)
    ULP_BLOCK_HANDLER(kSltiu)
    ULP_BLOCK_HANDLER(kLui)
    ULP_BLOCK_HANDLER(kBeq)
    ULP_BLOCK_HANDLER(kBne)
    ULP_BLOCK_HANDLER(kBlt)
    ULP_BLOCK_HANDLER(kBge)
    ULP_BLOCK_HANDLER(kBltu)
    ULP_BLOCK_HANDLER(kBgeu)
    ULP_BLOCK_HANDLER(kJal)
    ULP_BLOCK_HANDLER(kJalr)
    ULP_BLOCK_CHECKED_HANDLER(kLpSetup, f.has_hwloops && in.rd < 2 && in.imm > 0)
    ULP_BLOCK_HANDLER(kCsrr)
    ULP_BLOCK_HANDLER(kNop)
    default:
      // Sync-class opcodes never decode into blocks; anything else lands in
      // the per-cycle path's "unhandled opcode" check.
      return nullptr;
  }
#undef ULP_BLOCK_HANDLER
#undef ULP_BLOCK_CHECKED_HANDLER
#undef ULP_BLOCK_MEM_HANDLER
}

const Block* BlockCache::lookup(u32 pc, const isa::Instr* code, u32 code_size,
                                const CoreConfig& cfg,
                                u32 icache_line_words) {
  if (pc >= code_size) return nullptr;
  if (blocks_.size() != code_size) {
    blocks_.assign(code_size, Block{});
    built_.assign(code_size, 0);
    pool_.clear();
    stats_.blocks = 0;
    stats_.records = 0;
    // A program change resets the hardware loops too (Core::reset), so the
    // loop-end map can start from scratch.
    loop_end_.assign(code_size + 1, 0);
    loop_scan_valid_ = false;
  }
  if (!loop_scan_valid_) {
    // Mark every pc some lp.setup could put a loop end at. After a
    // self-modifying-code flush the old marks stay set: a loop armed by the
    // previous code revision keeps its end address in the core's loop
    // registers, so the map may only widen until the next program load.
    for (u32 p = 0; p < code_size; ++p) {
      if (code[p].op != Opcode::kLpSetup || code[p].imm < 0) continue;
      const u64 end = u64{p} + 1 + static_cast<u64>(code[p].imm);
      if (end <= code_size) loop_end_[end] = 1;
    }
    loop_scan_valid_ = true;
  }
  if (built_[pc] == 0) {
    // Decode into a stack scratch first: the pool may flush (capacity) or
    // reallocate (growth) before the records land, and the scratch keeps
    // that invisible to the decode loop.
    std::array<CachedOp, kMaxBlockOps> scratch;
    u32 n = 0;
    for (u32 p = pc; p < code_size && n < kMaxBlockOps; ++p) {
      const isa::Instr& in = code[p];
      if (is_sync(in.op)) break;
      CachedOp rec;
      rec.fn = BlockRunner::handler_for(in, cfg.features);
      if (rec.fn == nullptr) break;  // defensive: undispatchable opcode
      rec.instr = in;
      rec.pc = p;
      rec.cost = static_cost(in, cfg.costs);
      rec.is_store = isa::is_store(in.op);
      rec.line_start = icache_line_words == 0 || p == pc ||
                       p % icache_line_words == 0;
      rec.no_loop_end = loop_end_[p + 1] == 0;
      scratch[n++] = rec;
      if (is_terminator(in.op)) break;
    }
    if (pool_.size() + n > kMaxTotalOps) flush();
    built_[pc] = 1;
    Block blk;
    blk.first = static_cast<u32>(pool_.size());
    blk.count = n;
    pool_.insert(pool_.end(), scratch.begin(), scratch.begin() + n);
    stats_.records += n;
    ++stats_.blocks;
    ++stats_.decodes;
    blocks_[pc] = blk;
  }
  const Block& b = blocks_[pc];
  return b.count == 0 ? nullptr : &b;
}

void BlockCache::flush() {
  // built_ gates every blocks_ entry, so only it and the pool need clearing.
  std::fill(built_.begin(), built_.end(), u8{0});
  pool_.clear();
  stats_.blocks = 0;
  stats_.records = 0;
  loop_scan_valid_ = false;  // code may have changed: rescan lp.setup ends
  ++stats_.flushes;
}

u32 Core::compute_worst_op_cycles() const {
  const CoreCosts& c = cfg_.costs;
  u32 w = 1;
  for (const u32 v :
       {c.mul_cycles, c.mul64_cycles, c.div_cycles, c.dotp2_cycles,
        c.dotp4_cycles, 1 + c.branch_taken_penalty, 1 + c.jump_penalty}) {
    w = std::max(w, v);
  }
  // Worst load/store: two parts, each a grant cycle plus queued stalls.
  const u32 extra = std::max(c.load_extra, c.store_extra);
  w = std::max(w, 2 * (bus_->worst_case_latency() + extra));
  // A record may additionally pay one I$ refill up front.
  if (icache_ != nullptr) w += icache_->miss_penalty() + 1;
  return w;
}

u64 Core::run_cached(u64 max_cycles) {
  if (halted_ || sleeping_ || busy_ > 0 || memop_.active) return 0;
  if (bcache_ == nullptr) bcache_ = std::make_unique<BlockCache>();
  if (code_gen_ != nullptr && *code_gen_ != bcache_->generation) {
    bcache_->flush();  // someone wrote into the code window since last run
    bcache_->generation = *code_gen_;
  }
  if (worst_op_cycles_ == 0) worst_op_cycles_ = compute_worst_op_cycles();
  dmap_ = bus_->direct_map();
  const u32 line_words = icache_ != nullptr ? icache_->instrs_per_line() : 0;
  // Invariant members hoisted into locals: the indirect handler call is
  // opaque to the compiler, which would otherwise reload them every record.
  BlockCache* const bc = bcache_.get();
  mem::SharedICache* const ic = icache_;
  const u64* const code_gen = code_gen_;

  BlockRunCtx ctx;
  try {
    bool stop = false;
    while (!stop) {
      const Block* blk = bc->lookup(pc_, code_, code_size_, cfg_, line_words);
      if (blk == nullptr) break;  // sync op / past end: per-cycle territory
      last_block_pc_ = pc_;
      const CachedOp* ops = bc->ops(*blk);
      const size_t n = blk->count;
      const u32 start_pc = pc_;
      const u64 lean_need = static_cast<u64>(worst_op_cycles_) * n;
      if (max_cycles - ctx.cycles >= lean_need) {
        // Lean lane: the whole block provably fits the budget, so no
        // per-record budget checks; I$ probes only on line-start records
        // (the rest are guaranteed hits, charged in bulk below).
        last_block_ops_left_ = static_cast<u32>(n);
        for (;;) {
          u64 sure_hits = 0;
          size_t i = 0;
          for (; i < n; ++i) {
            const CachedOp& rec = ops[i];
            // A hardware loop wrapped the pc back mid-block (or a zero-trip
            // lp.setup skipped ahead): chain into the block at the new pc.
            if (rec.pc != pc_) break;
            if (ic != nullptr) {
              if (rec.line_start) {
                const u32 penalty = ic->fetch(rec.pc);
                if (penalty > 0) {
                  perf_.stall_icache += penalty;
                  ctx.cycles += penalty + 1;
                  if (prof_ != nullptr) prof_->add_cycles(rec.pc, penalty + 1);
                }
              } else {
                ++sure_hits;
              }
            }
            if (!rec.fn(*this, rec, ctx)) {
              stop = true;  // non-plain memory: hand back to step()
              break;
            }
            if (rec.is_store && code_gen != nullptr &&
                *code_gen != bc->generation) {
              // Self-modifying code: the store (now fully retired, pc
              // already past it) hit the code window. Drop every block
              // before any possibly-stale record executes.
              bc->flush();
              bc->generation = *code_gen;
              stop = true;
              break;
            }
          }
          if (sure_hits != 0) ic->charge_hits(sure_hits);
          // A hardware-loop back-edge (or a taken branch to the block's own
          // start) landed on this very block: re-enter it directly, no
          // lookup. This is the hot loop of every hwloop kernel.
          if (!stop && pc_ == start_pc && max_cycles - ctx.cycles >= lean_need) {
            continue;
          }
          break;
        }
        continue;
      }
      // Budget tail: per-record worst-case checks, I$ probe on every record.
      for (size_t i = 0; i < n; ++i) {
        const CachedOp& rec = ops[i];
        last_block_ops_left_ = static_cast<u32>(n - i);
        if (rec.pc != pc_) break;
        if (max_cycles - ctx.cycles < worst_op_cycles_) {
          stop = true;  // the next record could overshoot the budget
          break;
        }
        if (ic != nullptr) {
          const u32 penalty = ic->fetch(rec.pc);
          if (penalty > 0) {
            // Refill charged exactly as issue() would: the miss cycle plus
            // the refill, attributed up front. The line bitmap is sticky,
            // so a post-charge fallback to step() re-fetches as a hit.
            perf_.stall_icache += penalty;
            ctx.cycles += penalty + 1;
            if (prof_ != nullptr) prof_->add_cycles(rec.pc, penalty + 1);
          }
        }
        if (!rec.fn(*this, rec, ctx)) {
          stop = true;
          break;
        }
        if (rec.is_store && code_gen != nullptr &&
            *code_gen != bc->generation) {
          bc->flush();
          bc->generation = *code_gen;
          stop = true;
          break;
        }
      }
    }
  } catch (...) {
    // Keep the fault's counter state identical to per-cycle stepping: the
    // faulting instruction's counted cycles/retires are in ctx, flush them.
    flush_run_ctx(ctx);
    throw;
  }
  flush_run_ctx(ctx);
  return ctx.cycles;
}

void Core::flush_run_ctx(const BlockRunCtx& ctx) {
  // Every cycle of a block run is an active cycle: the core never sleeps,
  // halts, or idles inside one.
  perf_.cycles += ctx.cycles;
  perf_.active_cycles += ctx.cycles;
  perf_.instrs += ctx.instrs;
  perf_.loads += ctx.loads;
  perf_.stores += ctx.stores;
}

}  // namespace ulp::core
