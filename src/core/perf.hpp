// Per-core performance counters.
//
// These mirror the performance monitoring unit the authors added to their
// FPGA platform: active/idle cycle ratios per component feed the power
// model's activity factors, and retired-instruction counts on the baseline
// configuration define the "RISC ops" of Table I.
#pragma once

#include "common/types.hpp"

namespace ulp::core {

struct PerfCounters {
  u64 cycles = 0;         ///< Total cycles observed by this core's clock.
  u64 active_cycles = 0;  ///< Cycles not sleeping/halted (incl. stalls).
  u64 sleep_cycles = 0;   ///< Clock-gated (WFE / barrier wait).
  u64 halted_cycles = 0;  ///< After HALT/EOC.
  u64 stall_mem = 0;      ///< Cycles lost to denied bus grants (contention).
  u64 stall_icache = 0;   ///< Cycles lost to I$ refills.

  // Why a core slept, classified once at sleep entry (see Core::go_to_sleep):
  // barrier waits, WFE with a DMA transfer outstanding (DMA wait), and plain
  // WFE event waits. Always sums to sleep_cycles — the profiler's stall
  // buckets rely on that conservation.
  u64 sleep_barrier_cycles = 0;
  u64 sleep_dma_cycles = 0;
  u64 sleep_event_cycles = 0;

  u64 instrs = 0;  ///< Instructions retired.
  u64 loads = 0;
  u64 stores = 0;
  u64 branches = 0;
  u64 branches_taken = 0;
  u64 mults = 0;  ///< mul/mac/dotp-class instructions.
  u64 divs = 0;
  u64 barriers = 0;

  void reset() { *this = PerfCounters{}; }

  /// Fraction of cycles the core was clocked and doing work (the power
  /// model's chi_run for the core component).
  [[nodiscard]] double activity() const {
    return cycles == 0 ? 0.0
                       : static_cast<double>(active_cycles) /
                             static_cast<double>(cycles);
  }

  PerfCounters& operator+=(const PerfCounters& o) {
    cycles += o.cycles;
    active_cycles += o.active_cycles;
    sleep_cycles += o.sleep_cycles;
    halted_cycles += o.halted_cycles;
    stall_mem += o.stall_mem;
    stall_icache += o.stall_icache;
    sleep_barrier_cycles += o.sleep_barrier_cycles;
    sleep_dma_cycles += o.sleep_dma_cycles;
    sleep_event_cycles += o.sleep_event_cycles;
    instrs += o.instrs;
    loads += o.loads;
    stores += o.stores;
    branches += o.branches;
    branches_taken += o.branches_taken;
    mults += o.mults;
    divs += o.divs;
    barriers += o.barriers;
    return *this;
  }
};

}  // namespace ulp::core
