// The instruction-set simulator core.
//
// Cycle-stepped: the owner (cluster or single-core harness) calls step()
// once per clock cycle. The core executes functionally and charges cycles
// per the CoreConfig cost model; memory operations go through a DataBus and
// stall on denied grants (TCDM bank conflicts, busy L2 port), which is how
// multi-core contention appears in the results.
#pragma once

#include <array>
#include <functional>
#include <memory>
#include <string>

#include "common/status.hpp"
#include "core/block_cache.hpp"
#include "core/features.hpp"
#include "core/perf.hpp"
#include "isa/program.hpp"
#include "mem/bus.hpp"
#include "mem/icache.hpp"
#include "profile/pc_profile.hpp"

namespace ulp::snapshot {
class Writer;
class Reader;
}  // namespace ulp::snapshot

namespace ulp::core {

/// What a sleeping core is waiting for. Barrier releases and software/DMA
/// events are tracked separately so a DMA-completion event can never release
/// a core that is parked inside a barrier.
enum class WakeKind : u8 { kBarrier, kEvent };

/// Cluster synchronization services the core reaches through BARRIER / WFE /
/// SEV / EOC. Implemented by cluster::EventUnit; null for single-core hosts.
class SyncUnit {
 public:
  virtual ~SyncUnit() = default;

  /// Core `core_id` arrives at the cluster barrier. Returns true if this
  /// arrival completed the barrier (the caller proceeds without sleeping).
  virtual bool barrier_arrive(u32 core_id) = 0;

  /// Polls (and consumes) a pending wake of the given kind for `core_id`.
  virtual bool check_wake(u32 core_id, WakeKind kind) = 0;

  /// SEV: broadcast a software event.
  virtual void send_event(u32 event_id) = 0;

  /// EOC: end-of-computation flag, wired to the host-visible GPIO.
  virtual void signal_eoc(u32 flag) = 0;

  /// True while a DMA transfer the cluster issued is still in flight. Lets
  /// a core entering WFE classify the wait as "DMA wait" rather than a
  /// generic event wait (profiler stall buckets). Default: no DMA.
  [[nodiscard]] virtual bool dma_outstanding() const { return false; }
};

/// What a core did in the cycle just stepped; lets a scheduler park cores
/// that cannot make progress instead of re-stepping them every cycle.
enum class StepState : u8 { kActive, kSleeping, kHalted };

class Core {
 public:
  /// `icache` may be null (ideal fetch); `sync` may be null (single core).
  Core(u32 core_id, u32 num_cores, CoreConfig config, mem::DataBus* bus,
       mem::SharedICache* icache = nullptr, SyncUnit* sync = nullptr);

  /// Points the core at a program and resets architectural state (registers,
  /// pc=entry, hardware loops) and performance counters.
  void reset(const isa::Program* program);

  /// Advance one clock cycle. Returns the core's state after the cycle.
  StepState step();

  /// Convenience for single-core runs: steps until HALT/EOC. Throws if the
  /// program does not finish within `max_cycles`. Uses the block-cached fast
  /// path when enabled; falls back to per-cycle stepping wherever a pc is
  /// not block-eligible.
  void run_to_halt(u64 max_cycles = 2'000'000'000ull);

  /// One-line human-readable execution state — pc, sleep/wake condition,
  /// remaining stall, in-flight memory op and block-cache position — used
  /// by run_to_halt and the cluster/system deadlock reports to say exactly
  /// where a stuck core stands.
  [[nodiscard]] std::string state_brief() const;

  /// Retire whole decode-once cached blocks starting at the current pc,
  /// charging cycles in bulk but bit-identically to per-cycle stepping.
  /// Stops before any record whose remaining budget could not cover its
  /// worst case, before sync-class instructions (barrier/wfe/sev/eoc/halt),
  /// on non-plain-memory accesses, and after a store that invalidated the
  /// code window. Never consumes more than `max_cycles`. Returns the cycles
  /// consumed; 0 means the current pc is not block-eligible (or the core is
  /// busy/sleeping/halted) and the caller must step() per-cycle instead.
  /// Only valid when the core is provably alone on its bus for the whole
  /// window (solo core awake, DMA idle) — the owner checks that.
  u64 run_cached(u64 max_cycles);

  /// Enables the block-cached fast path for this core. The constructor
  /// latches config::block_cache_default() (forced off under the reference
  /// stepping default); owners (cluster) override per instance.
  void set_block_cache(bool on) { block_enabled_ = on; }
  [[nodiscard]] bool block_cache_enabled() const { return block_enabled_; }

  /// Points the core at its owner's code-generation counter. The owner
  /// bumps it on any write into the instruction-memory window (core store,
  /// DMA beat, host debug write); run_cached() flushes every cached block
  /// when the generation moved. Null (default): code is immutable.
  void set_code_generation(const u64* generation) { code_gen_ = generation; }

  /// Block-cache statistics (null until the first run_cached() decode).
  [[nodiscard]] const BlockCacheStats* block_stats() const {
    return bcache_ != nullptr ? &bcache_->stats() : nullptr;
  }

  [[nodiscard]] bool mem_in_flight() const { return memop_.active; }

  [[nodiscard]] bool halted() const { return halted_; }
  [[nodiscard]] bool sleeping() const { return sleeping_; }
  /// What a sleeping core waits for (valid only while sleeping()).
  [[nodiscard]] WakeKind sleep_kind() const { return sleep_kind_; }
  /// Stall cycles left on the in-flight instruction (0 = will issue next).
  [[nodiscard]] u32 busy_remaining() const { return busy_; }

  // Bulk cycle accounting for quiescence fast-forward. Each call charges
  // exactly what `n` consecutive step() calls would have charged for a core
  // in that state; the scheduler may only use them when the state provably
  // cannot change within the window (see cluster::Cluster::advance).
  void charge_sleep_cycles(u64 n) {
    perf_.cycles += n;
    perf_.sleep_cycles += n;
    bump_sleep_split(n);
    if (prof_ != nullptr) prof_->add_cycles(sleep_pc_, n);
  }
  void charge_halted_cycles(u64 n) {
    perf_.cycles += n;
    perf_.halted_cycles += n;
  }
  void charge_busy_cycles(u64 n) {
    ULP_CHECK(n <= busy_, "busy fast-forward past instruction completion");
    perf_.cycles += n;
    perf_.active_cycles += n;
    busy_ -= static_cast<u32>(n);
  }

  [[nodiscard]] u32 pc() const { return pc_; }
  [[nodiscard]] u32 core_id() const { return id_; }
  [[nodiscard]] const CoreConfig& config() const { return cfg_; }

  [[nodiscard]] u32 reg(u32 index) const { return regs_[index]; }
  void set_reg(u32 index, u32 value);

  [[nodiscard]] const PerfCounters& perf() const { return perf_; }
  [[nodiscard]] PerfCounters& perf() { return perf_; }

  /// Observer invoked at every instruction retirement with the pc it
  /// executed at (instruction tracing / debugging). Null disables; the
  /// fast path pays one branch.
  using RetireHook = std::function<void(u32 pc, const isa::Instr& instr)>;
  void set_retire_hook(RetireHook hook) { retire_hook_ = std::move(hook); }

  /// Attaches a per-PC cycle/instruction profile (null detaches). The core
  /// attributes every cycle it consumes to a pc at well-defined charge
  /// points, identically under reference stepping and fast-forward. The
  /// profile is cleared by reset(), so it always covers exactly the
  /// currently loaded program.
  void set_profile(profile::PcProfile* prof) { prof_ = prof; }
  [[nodiscard]] profile::PcProfile* profile() const { return prof_; }

  /// Serializes all architectural + timing state (registers, pc, hardware
  /// loops, sleep/halt/busy state, the in-flight memory op, perf counters
  /// and — when a profile is attached — its capture state) as a flat field
  /// sequence into the writer's current section. Derived state (program
  /// pointers, block cache) is not written; it is rebuilt on restore.
  [[nodiscard]] Status save(snapshot::Writer& w) const;

  /// Reads the field sequence save() wrote. With apply=false the fields
  /// are validated and consumed but nothing is mutated (the first half of
  /// an all-or-nothing composite restore). The owner must reset() the
  /// core against the restored program before the apply pass so derived
  /// state is rebuilt; restore then overwrites the architectural fields.
  [[nodiscard]] Status restore(snapshot::Reader& r, bool apply);

 private:
  friend class BlockRunner;

  struct HwLoop {
    u32 start = 0;
    u32 end = 0;  ///< Index one past the last body instruction.
    u32 count = 0;
  };

  struct MemPart {
    Addr addr = 0;
    int size = 0;
    int byte_offset = 0;  ///< Offset of this part in the access's bytes.
  };

  struct MemOp {
    bool active = false;
    isa::Instr instr;
    std::array<MemPart, 2> parts;
    int num_parts = 0;
    int next_part = 0;
    u32 assembled = 0;  ///< Load data assembled across parts.
  };

  [[nodiscard]] StepState state_after_issue() const {
    if (halted_) return StepState::kHalted;
    if (sleeping_) return StepState::kSleeping;
    return StepState::kActive;
  }

  void issue();                       // fetch + decode + execute
  void execute(const isa::Instr& in); // non-memory instructions
  void start_mem(const isa::Instr& in);
  void retry_mem();
  void finish_mem();
  // Retirement helpers. Defined in the header: both run once per retired
  // instruction on the block-cached path (block_cache.cpp), where an
  // out-of-line call would dominate the handler body.
  void advance_pc_sequential() {
    // Fast path: no hardware loop armed — the next pc is simply pc+1.
    if ((loops_[0].count | loops_[1].count) == 0) {
      ++pc_;
      return;
    }
    u32 next = pc_ + 1;
    {
      // Innermost loop (slot 1) is checked first so nesting works. When the
      // inner loop expires we keep checking the outer slot: the two bodies
      // may legally end on the same instruction.
      // hwloop_bug_ raises the continue threshold by one, dropping the last
      // iteration — the injected fault the differential fuzzer must catch.
      const u32 last = hwloop_bug_ ? 2u : 1u;
      for (int slot = 1; slot >= 0; --slot) {
        HwLoop& lp = loops_[static_cast<size_t>(slot)];
        if (lp.count > 0 && next == lp.end) {
          if (lp.count > last) {
            --lp.count;
            next = lp.start;
            break;
          }
          lp.count = 0;  // final iteration: fall through, deactivate
        }
      }
    }
    pc_ = next;
  }
  void write_reg(u32 index, u32 value) {
    if (index != 0) regs_[index] = value;
  }
  [[nodiscard]] u32 read_csr(i32 index) const;
  void go_to_sleep(WakeKind kind, u32 pc);

  /// Ceiling on the cycles any one cached record can charge (op cost, two
  /// worst-case memory parts, an I$ refill) — sizes run_cached()'s budget
  /// check so it never overshoots. Computed lazily (0 = not yet).
  [[nodiscard]] u32 compute_worst_op_cycles() const;

  /// Folds a block run's accumulated counters into PerfCounters (run exit
  /// and the fault path — see BlockRunCtx).
  void flush_run_ctx(const BlockRunCtx& ctx);

  /// Adds `n` cycles to the sleep-cause counter latched at sleep entry.
  void bump_sleep_split(u64 n) {
    switch (sleep_bucket_) {
      case kSleepBarrier: perf_.sleep_barrier_cycles += n; break;
      case kSleepDma: perf_.sleep_dma_cycles += n; break;
      default: perf_.sleep_event_cycles += n; break;
    }
  }

  u32 id_;
  u32 num_cores_;
  CoreConfig cfg_;
  mem::DataBus* bus_;
  mem::SharedICache* icache_;
  SyncUnit* sync_;

  const isa::Program* prog_ = nullptr;
  // Hot-path caches, refreshed by reset(): the code array is immutable for
  // the lifetime of a loaded program, and the feature flag never changes.
  const isa::Instr* code_ = nullptr;
  u32 code_size_ = 0;
  std::array<u32, isa::kNumRegs> regs_{};
  u32 pc_ = 0;
  std::array<HwLoop, 2> loops_{};

  bool halted_ = true;
  /// Injected off-by-one in the hardware-loop expiry check (verification
  /// self-test fault; latched from config::inject_hwloop_bug() at reset).
  bool hwloop_bug_ = false;
  bool sleeping_ = false;
  WakeKind sleep_kind_ = WakeKind::kEvent;
  u32 busy_ = 0;  ///< Remaining stall cycles of the current instruction.
  MemOp memop_;

  // Profiler state: why the core slept (latched at sleep entry, when the
  // DMA-outstanding question has a mode-independent answer) and the pc the
  // sleeping instruction executed at (sleep cycles are attributed there).
  static constexpr u8 kSleepBarrier = 0;
  static constexpr u8 kSleepDma = 1;
  static constexpr u8 kSleepEvent = 2;
  u8 sleep_bucket_ = kSleepEvent;
  u32 sleep_pc_ = 0;
  profile::PcProfile* prof_ = nullptr;

  PerfCounters perf_;
  RetireHook retire_hook_;

  // Basic-block translation cache (see block_cache.hpp). Allocated lazily
  // on the first run_cached(); strictly per-core, so campaign workers never
  // share mutable cache state.
  std::unique_ptr<BlockCache> bcache_;
  bool block_enabled_ = false;
  const u64* code_gen_ = nullptr;
  u32 worst_op_cycles_ = 0;
  /// Plain-memory geometry for the block-cached mem fast lane, refreshed
  /// from the bus at every run_cached() entry (the watch window can move
  /// between windows; the spans themselves are stable).
  mem::DirectMap dmap_;
  // Deadlock diagnostics: where the last cached-block run stood.
  u32 last_block_pc_ = 0;
  u32 last_block_ops_left_ = 0;

  static constexpr u32 kWakeLatency = 2;  ///< HW synchronizer wake cost.
};

}  // namespace ulp::core
