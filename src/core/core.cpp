#include "core/core.hpp"

#include "common/config.hpp"
#include "common/status.hpp"
#include "isa/disasm.hpp"
#include "snapshot/snapshot.hpp"

namespace ulp::core {

using isa::Instr;
using isa::Opcode;

namespace {

i32 as_i32(u32 v) { return static_cast<i32>(v); }
u32 as_u32(i32 v) { return static_cast<u32>(v); }

/// Lane-wise helpers for the sub-word SIMD extensions.
i32 lane16(u32 v, int lane) {
  return static_cast<i16>((v >> (16 * lane)) & 0xFFFF);
}
i32 lane8(u32 v, int lane) {
  return static_cast<i8>((v >> (8 * lane)) & 0xFF);
}

}  // namespace

Core::Core(u32 core_id, u32 num_cores, CoreConfig config, mem::DataBus* bus,
           mem::SharedICache* icache, SyncUnit* sync)
    : id_(core_id),
      num_cores_(num_cores),
      cfg_(std::move(config)),
      bus_(bus),
      icache_(icache),
      sync_(sync) {
  ULP_CHECK(bus != nullptr, "core needs a data bus");
  ULP_CHECK(core_id < num_cores, "core id out of range");
  // Reference stepping is the per-cycle oracle: it always executes through
  // the original decode+switch, so the block cache is forced off under it.
  block_enabled_ =
      config::block_cache_default() && !config::reference_stepping_default();
}

void Core::reset(const isa::Program* program) {
  ULP_CHECK(program != nullptr, "null program");
  prog_ = program;
  code_ = program->code.data();
  code_size_ = static_cast<u32>(program->code.size());
  regs_.fill(0);
  pc_ = program->entry;
  loops_ = {};
  hwloop_bug_ = config::inject_hwloop_bug();
  halted_ = false;
  sleeping_ = false;
  busy_ = 0;
  memop_ = {};
  sleep_bucket_ = kSleepEvent;
  sleep_pc_ = 0;
  perf_.reset();
  // The profile always describes the currently loaded program: watchdog
  // retries and fallback re-boots reset the counters it must mirror.
  if (prof_ != nullptr) prof_->reset();
  // A new program means every cached block decodes stale code: drop them.
  if (bcache_ != nullptr) {
    bcache_->flush();
    bcache_->generation = code_gen_ != nullptr ? *code_gen_ : 0;
  }
  last_block_pc_ = 0;
  last_block_ops_left_ = 0;
}

void Core::set_reg(u32 index, u32 value) {
  ULP_CHECK(index < isa::kNumRegs, "register index out of range");
  if (index != 0) regs_[index] = value;
}

u32 Core::read_csr(i32 index) const {
  switch (static_cast<isa::Csr>(index)) {
    case isa::Csr::kCoreId:
      return id_;
    case isa::Csr::kNumCores:
      return num_cores_;
    case isa::Csr::kCycle:
      return static_cast<u32>(perf_.cycles);
  }
  ULP_CHECK(false, "unknown CSR " + std::to_string(index));
}

void Core::go_to_sleep(WakeKind kind, u32 pc) {
  sleeping_ = true;
  sleep_kind_ = kind;
  sleep_pc_ = pc;
  // Classify the wait once, at sleep entry. Sleep entry always happens
  // inside a real step() in both scheduler modes, so the DMA-outstanding
  // answer — and with it the whole sleep split — is mode-independent.
  if (kind == WakeKind::kBarrier) {
    sleep_bucket_ = kSleepBarrier;
  } else {
    sleep_bucket_ = (sync_ != nullptr && sync_->dma_outstanding())
                        ? kSleepDma
                        : kSleepEvent;
  }
}

StepState Core::step() {
  ++perf_.cycles;
  if (halted_) {
    ++perf_.halted_cycles;
    return StepState::kHalted;
  }
  if (sleeping_) {
    if (sync_ != nullptr && sync_->check_wake(id_, sleep_kind_)) {
      sleeping_ = false;
      // "Woken up in just a few cycles" — HW synchronizer wake latency.
      busy_ = kWakeLatency;
      ++perf_.active_cycles;
      // Lump the wake cycle plus the synchronizer latency here: the busy
      // countdown itself never attributes (it may be bulk-charged).
      if (prof_ != nullptr) prof_->add_cycles(sleep_pc_, 1 + kWakeLatency);
      return StepState::kActive;
    }
    ++perf_.sleep_cycles;
    bump_sleep_split(1);
    if (prof_ != nullptr) prof_->add_cycles(sleep_pc_, 1);
    return StepState::kSleeping;
  }
  ++perf_.active_cycles;
  if (busy_ > 0) {
    --busy_;
    return StepState::kActive;
  }
  if (memop_.active) {
    retry_mem();
    return StepState::kActive;
  }
  issue();
  return state_after_issue();
}

void Core::run_to_halt(u64 max_cycles) {
  u64 used = 0;
  while (used < max_cycles) {
    if (halted_) return;
    if (block_enabled_) {
      const u64 done = run_cached(max_cycles - used);
      if (done > 0) {
        used += done;
        continue;
      }
    }
    step();
    ++used;
  }
  if (halted_) return;
  ULP_CHECK(halted_,
            "program did not halt within cycle budget: " + state_brief());
}

std::string Core::state_brief() const {
  if (halted_) return "core " + std::to_string(id_) + " halted";
  std::string block_state;
  if (block_enabled_ && bcache_ != nullptr) {
    block_state = ", block cache active (last block start pc " +
                  std::to_string(last_block_pc_) + ", " +
                  std::to_string(last_block_ops_left_) +
                  " records remaining, " +
                  std::to_string(bcache_->stats().flushes) + " flushes)";
  }
  return "core " + std::to_string(id_) + " at pc " + std::to_string(pc_) +
         (sleeping_ ? (std::string(" sleeping on ") +
                       (sleep_kind_ == WakeKind::kBarrier ? "barrier"
                                                          : "event"))
                    : " awake") +
         ", busy " + std::to_string(busy_) +
         (memop_.active ? ", memory op in flight" : "") + block_state;
}

void Core::issue() {
  ULP_CHECK(pc_ < code_size_, "pc ran past program end (missing halt?)");
  if (icache_ != nullptr) {
    const u32 penalty = icache_->fetch(pc_);
    if (penalty > 0) {
      perf_.stall_icache += penalty;
      busy_ = penalty;  // refill; the instruction issues afterwards
      // This step's cycle plus the whole refill, attributed up front.
      if (prof_ != nullptr) prof_->add_cycles(pc_, penalty + 1);
      return;
    }
  }
  const Instr& in = code_[pc_];
  if (isa::is_load(in.op) || isa::is_store(in.op)) {
    start_mem(in);
    return;
  }
  execute(in);
}

void Core::execute(const Instr& in) {
  ++perf_.instrs;
  if (retire_hook_) retire_hook_(pc_, in);
  // Latch the issue pc and ra before the switch: branches/jal rewrite pc_,
  // and jalr may clobber its own target register (rd == ra).
  const u32 pc0 = pc_;
  if (prof_ != nullptr) prof_->on_retire(pc0, in, regs_[in.ra]);
  const u32 a = regs_[in.ra];
  const u32 b = regs_[in.rb];
  const u32 d = regs_[in.rd];
  const CoreFeatures& f = cfg_.features;
  const CoreCosts& c = cfg_.costs;
  u32 cost = 1;
  bool sequential = true;

  switch (in.op) {
    case Opcode::kAdd: write_reg(in.rd, a + b); break;
    case Opcode::kSub: write_reg(in.rd, a - b); break;
    case Opcode::kAnd: write_reg(in.rd, a & b); break;
    case Opcode::kOr: write_reg(in.rd, a | b); break;
    case Opcode::kXor: write_reg(in.rd, a ^ b); break;
    case Opcode::kSll: write_reg(in.rd, a << (b & 31)); break;
    case Opcode::kSrl: write_reg(in.rd, a >> (b & 31)); break;
    case Opcode::kSra: write_reg(in.rd, as_u32(as_i32(a) >> (b & 31))); break;
    case Opcode::kSlt: write_reg(in.rd, as_i32(a) < as_i32(b) ? 1 : 0); break;
    case Opcode::kSltu: write_reg(in.rd, a < b ? 1 : 0); break;

    case Opcode::kMul:
      write_reg(in.rd, a * b);
      cost = c.mul_cycles;
      ++perf_.mults;
      break;
    case Opcode::kMulhs:
      ULP_CHECK(f.has_mul64, cfg_.name + " has no mulhs");
      write_reg(in.rd, static_cast<u32>(
                           (static_cast<i64>(as_i32(a)) * as_i32(b)) >> 32));
      cost = c.mul64_cycles;
      ++perf_.mults;
      break;
    case Opcode::kMulhu:
      ULP_CHECK(f.has_mul64, cfg_.name + " has no mulhu");
      write_reg(in.rd, static_cast<u32>(
                           (static_cast<u64>(a) * static_cast<u64>(b)) >> 32));
      cost = c.mul64_cycles;
      ++perf_.mults;
      break;
    case Opcode::kDiv:
      ULP_CHECK(f.has_div, cfg_.name + " has no divide");
      if (b == 0) {
        write_reg(in.rd, 0xFFFFFFFFu);
      } else if (a == 0x80000000u && b == 0xFFFFFFFFu) {
        write_reg(in.rd, 0x80000000u);  // INT_MIN / -1 overflow convention
      } else {
        write_reg(in.rd, as_u32(as_i32(a) / as_i32(b)));
      }
      cost = c.div_cycles;
      ++perf_.divs;
      break;
    case Opcode::kDivu:
      ULP_CHECK(f.has_div, cfg_.name + " has no divide");
      write_reg(in.rd, b == 0 ? 0xFFFFFFFFu : a / b);
      cost = c.div_cycles;
      ++perf_.divs;
      break;
    case Opcode::kRem:
      ULP_CHECK(f.has_div, cfg_.name + " has no divide");
      if (b == 0) {
        write_reg(in.rd, a);
      } else if (a == 0x80000000u && b == 0xFFFFFFFFu) {
        write_reg(in.rd, 0);  // INT_MIN % -1
      } else {
        write_reg(in.rd, as_u32(as_i32(a) % as_i32(b)));
      }
      cost = c.div_cycles;
      ++perf_.divs;
      break;
    case Opcode::kRemu:
      ULP_CHECK(f.has_div, cfg_.name + " has no divide");
      write_reg(in.rd, b == 0 ? a : a % b);
      cost = c.div_cycles;
      ++perf_.divs;
      break;

    case Opcode::kMac:
      ULP_CHECK(f.has_mac, cfg_.name + " has no MAC");
      write_reg(in.rd, d + a * b);
      cost = c.mul_cycles;
      ++perf_.mults;
      break;
    case Opcode::kDotp2h:
      ULP_CHECK(f.has_simd, cfg_.name + " has no sub-word SIMD");
      write_reg(in.rd, d + as_u32(lane16(a, 0) * lane16(b, 0) +
                                  lane16(a, 1) * lane16(b, 1)));
      cost = c.dotp2_cycles;
      ++perf_.mults;
      break;
    case Opcode::kDotp4b: {
      ULP_CHECK(f.has_simd, cfg_.name + " has no sub-word SIMD");
      i32 acc = 0;
      for (int l = 0; l < 4; ++l) acc += lane8(a, l) * lane8(b, l);
      write_reg(in.rd, d + as_u32(acc));
      cost = c.dotp4_cycles;
      ++perf_.mults;
      break;
    }
    case Opcode::kAdd2h:
    case Opcode::kSub2h: {
      ULP_CHECK(f.has_simd, cfg_.name + " has no sub-word SIMD");
      const int sign = in.op == Opcode::kAdd2h ? 1 : -1;
      u32 out = 0;
      for (int l = 0; l < 2; ++l) {
        const u32 r = static_cast<u32>(lane16(a, l) + sign * lane16(b, l));
        out |= (r & 0xFFFF) << (16 * l);
      }
      write_reg(in.rd, out);
      break;
    }
    case Opcode::kAdd4b:
    case Opcode::kSub4b: {
      ULP_CHECK(f.has_simd, cfg_.name + " has no sub-word SIMD");
      const int sign = in.op == Opcode::kAdd4b ? 1 : -1;
      u32 out = 0;
      for (int l = 0; l < 4; ++l) {
        const u32 r = static_cast<u32>(lane8(a, l) + sign * lane8(b, l));
        out |= (r & 0xFF) << (8 * l);
      }
      write_reg(in.rd, out);
      break;
    }

    case Opcode::kAddi: write_reg(in.rd, a + as_u32(in.imm)); break;
    case Opcode::kAndi: write_reg(in.rd, a & as_u32(in.imm)); break;
    case Opcode::kOri: write_reg(in.rd, a | as_u32(in.imm)); break;
    case Opcode::kXori: write_reg(in.rd, a ^ as_u32(in.imm)); break;
    case Opcode::kSlli: write_reg(in.rd, a << (in.imm & 31)); break;
    case Opcode::kSrli: write_reg(in.rd, a >> (in.imm & 31)); break;
    case Opcode::kSrai:
      write_reg(in.rd, as_u32(as_i32(a) >> (in.imm & 31)));
      break;
    case Opcode::kSlti:
      write_reg(in.rd, as_i32(a) < in.imm ? 1 : 0);
      break;
    case Opcode::kSltiu:
      write_reg(in.rd, a < as_u32(in.imm) ? 1 : 0);
      break;
    case Opcode::kLui:
      write_reg(in.rd, as_u32(in.imm) << 12);
      break;

    case Opcode::kBeq:
    case Opcode::kBne:
    case Opcode::kBlt:
    case Opcode::kBge:
    case Opcode::kBltu:
    case Opcode::kBgeu: {
      ++perf_.branches;
      bool taken = false;
      switch (in.op) {
        case Opcode::kBeq: taken = a == b; break;
        case Opcode::kBne: taken = a != b; break;
        case Opcode::kBlt: taken = as_i32(a) < as_i32(b); break;
        case Opcode::kBge: taken = as_i32(a) >= as_i32(b); break;
        case Opcode::kBltu: taken = a < b; break;
        case Opcode::kBgeu: taken = a >= b; break;
        default: break;
      }
      if (taken) {
        ++perf_.branches_taken;
        pc_ = static_cast<u32>(static_cast<i64>(pc_) + in.imm);
        cost = 1 + c.branch_taken_penalty;
        sequential = false;
      }
      break;
    }
    case Opcode::kJal:
      write_reg(in.rd, pc_ + 1);
      pc_ = static_cast<u32>(static_cast<i64>(pc_) + in.imm);
      cost = 1 + c.jump_penalty;
      sequential = false;
      break;
    case Opcode::kJalr: {
      const u32 target = a;
      write_reg(in.rd, pc_ + 1);
      pc_ = target;
      cost = 1 + c.jump_penalty;
      sequential = false;
      break;
    }

    case Opcode::kLpSetup: {
      ULP_CHECK(f.has_hwloops, cfg_.name + " has no hardware loops");
      ULP_CHECK(in.rd < 2, "hardware loop id must be 0 or 1");
      ULP_CHECK(in.imm > 0, "hardware loop body must be non-empty");
      HwLoop& lp = loops_[in.rd];
      lp.start = pc_ + 1;
      lp.end = pc_ + 1 + static_cast<u32>(in.imm);
      lp.count = a;
      // A zero trip count skips the body entirely.
      if (lp.count == 0) {
        pc_ = lp.end;
        sequential = false;
      }
      break;
    }

    case Opcode::kCsrr:
      write_reg(in.rd, read_csr(in.imm));
      break;
    case Opcode::kBarrier: {
      ULP_CHECK(sync_ != nullptr, "barrier without a cluster event unit");
      ++perf_.barriers;
      const bool last = sync_->barrier_arrive(id_);
      if (!last) {
        advance_pc_sequential();
        if (prof_ != nullptr) prof_->add_cycles(pc0, 1);
        go_to_sleep(WakeKind::kBarrier, pc0);
        return;  // pc already advanced; sleep until released
      }
      break;
    }
    case Opcode::kWfe:
      ULP_CHECK(sync_ != nullptr, "wfe without a cluster event unit");
      advance_pc_sequential();
      if (prof_ != nullptr) prof_->add_cycles(pc0, 1);
      go_to_sleep(WakeKind::kEvent, pc0);
      return;
    case Opcode::kSev:
      ULP_CHECK(sync_ != nullptr, "sev without a cluster event unit");
      sync_->send_event(as_u32(in.imm));
      break;
    case Opcode::kEoc:
      if (sync_ != nullptr) sync_->signal_eoc(as_u32(in.imm));
      halted_ = true;
      break;
    case Opcode::kNop:
      break;
    case Opcode::kHalt:
      halted_ = true;
      break;

    default:
      ULP_CHECK(false, "unhandled opcode: " + isa::disassemble(in));
  }

  if (sequential) advance_pc_sequential();
  busy_ = cost - 1;
  // Lump the instruction's whole cost at issue; the busy countdown (which
  // the fast-forward scheduler may bulk-charge) never attributes.
  if (prof_ != nullptr) prof_->add_cycles(pc0, cost);
}

void Core::start_mem(const Instr& in) {
  const CoreFeatures& f = cfg_.features;
  if (isa::is_postinc(in.op)) {
    ULP_CHECK(f.has_postinc, cfg_.name + " has no post-increment addressing");
  }
  const int size = isa::access_size(in.op);
  // Post-increment addressing uses the *pre-increment* base address.
  const Addr addr = isa::is_postinc(in.op)
                        ? regs_[in.ra]
                        : regs_[in.ra] + static_cast<u32>(in.imm);

  memop_ = MemOp{};
  memop_.active = true;
  memop_.instr = in;
  const Addr boundary = (addr | 3) + 1;  // next word boundary above addr
  if (addr % static_cast<Addr>(size) == 0) {
    // Naturally aligned: one transaction.
    memop_.parts[0] = {addr, size, 0};
    memop_.num_parts = 1;
  } else {
    ULP_CHECK(f.has_unaligned,
              cfg_.name + " has no unaligned access support (addr " +
                  std::to_string(addr) + ", size " + std::to_string(size) + ")");
    if (addr + static_cast<Addr>(size) <= boundary) {
      // Unaligned but within one word: the byte-lane rotator handles it in
      // a single transaction.
      memop_.parts[0] = {addr, size, 0};
      memop_.num_parts = 1;
    } else {
      // Straddles a word boundary: two transactions, one per word.
      const int first = static_cast<int>(boundary - addr);
      memop_.parts[0] = {addr, first, 0};
      memop_.parts[1] = {boundary, size - first, first};
      memop_.num_parts = 2;
    }
  }
  retry_mem();
}

void Core::retry_mem() {
  const Instr& in = memop_.instr;
  const bool store = isa::is_store(in.op);
  const MemPart& part = memop_.parts[static_cast<size_t>(memop_.next_part)];

  u32 store_value = 0;
  if (store) store_value = regs_[in.rd] >> (8 * part.byte_offset);

  const mem::BusResult r =
      bus_->access(part.addr, part.size, store, store_value,
                   /*sign_extend=*/false, id_);
  if (!r.granted) {
    ++perf_.stall_mem;
    if (prof_ != nullptr) prof_->add_cycles(pc_, 1);
    return;  // retry next cycle
  }
  if (!store) {
    const u32 mask = part.size == 4 ? 0xFFFFFFFFu
                                    : ((1u << (part.size * 8)) - 1);
    memop_.assembled |= (r.data & mask) << (8 * part.byte_offset);
  }
  const CoreCosts& c = cfg_.costs;
  const u32 extra = store ? c.store_extra : c.load_extra;
  busy_ += r.latency - 1 + extra;
  // Grant cycle plus the latency/extra cycles it queued onto busy_.
  if (prof_ != nullptr) prof_->add_cycles(pc_, r.latency + extra);

  ++memop_.next_part;
  if (memop_.next_part == memop_.num_parts) finish_mem();
}

void Core::finish_mem() {
  const Instr& in = memop_.instr;
  ++perf_.instrs;
  if (retire_hook_) retire_hook_(pc_, in);
  if (prof_ != nullptr) prof_->on_retire(pc_, in, regs_[in.ra]);
  if (isa::is_store(in.op)) {
    ++perf_.stores;
  } else {
    ++perf_.loads;
    u32 v = memop_.assembled;
    const int size = isa::access_size(in.op);
    // Sign-extend loads (lh/lb and their post-increment forms).
    const bool sign = in.op == Opcode::kLh || in.op == Opcode::kLhpi ||
                      in.op == Opcode::kLb || in.op == Opcode::kLbpi;
    if (sign && size < 4) {
      const u32 sign_bit = 1u << (size * 8 - 1);
      if (v & sign_bit) v |= ~((sign_bit << 1) - 1);
    }
    write_reg(in.rd, v);
  }
  if (isa::is_postinc(in.op)) {
    write_reg(in.ra, regs_[in.ra] + static_cast<u32>(in.imm));
  }
  memop_ = MemOp{};
  advance_pc_sequential();
}

namespace {

void put_instr(snapshot::Writer& w, const Instr& in) {
  w.put_u8(static_cast<u8>(in.op));
  w.put_u8(in.rd);
  w.put_u8(in.ra);
  w.put_u8(in.rb);
  w.put_i32(in.imm);
}

Instr get_instr(snapshot::Reader& r) {
  Instr in{};
  const u8 op = r.get_u8();
  if (op >= isa::kNumOpcodes) {
    r.fail(StatusCode::kInvalidArgument, "snapshot holds an invalid opcode");
  } else {
    in.op = static_cast<Opcode>(op);
  }
  in.rd = r.get_u8();
  in.ra = r.get_u8();
  in.rb = r.get_u8();
  in.imm = r.get_i32();
  return in;
}

void put_perf(snapshot::Writer& w, const PerfCounters& p) {
  w.put_u64(p.cycles);
  w.put_u64(p.active_cycles);
  w.put_u64(p.sleep_cycles);
  w.put_u64(p.halted_cycles);
  w.put_u64(p.stall_mem);
  w.put_u64(p.stall_icache);
  w.put_u64(p.sleep_barrier_cycles);
  w.put_u64(p.sleep_dma_cycles);
  w.put_u64(p.sleep_event_cycles);
  w.put_u64(p.instrs);
  w.put_u64(p.loads);
  w.put_u64(p.stores);
  w.put_u64(p.branches);
  w.put_u64(p.branches_taken);
  w.put_u64(p.mults);
  w.put_u64(p.divs);
  w.put_u64(p.barriers);
}

PerfCounters get_perf(snapshot::Reader& r) {
  PerfCounters p;
  p.cycles = r.get_u64();
  p.active_cycles = r.get_u64();
  p.sleep_cycles = r.get_u64();
  p.halted_cycles = r.get_u64();
  p.stall_mem = r.get_u64();
  p.stall_icache = r.get_u64();
  p.sleep_barrier_cycles = r.get_u64();
  p.sleep_dma_cycles = r.get_u64();
  p.sleep_event_cycles = r.get_u64();
  p.instrs = r.get_u64();
  p.loads = r.get_u64();
  p.stores = r.get_u64();
  p.branches = r.get_u64();
  p.branches_taken = r.get_u64();
  p.mults = r.get_u64();
  p.divs = r.get_u64();
  p.barriers = r.get_u64();
  return p;
}

void put_profile(snapshot::Writer& w, const profile::PcProfile& prof) {
  const profile::PcProfile::RawState s = prof.raw_state();
  w.put_u64(s.pcs.size());
  for (const profile::PcCount& p : s.pcs) {
    w.put_u64(p.instrs);
    w.put_u64(p.cycles);
  }
  w.put_u64(s.frames.size());
  for (const profile::PcProfile::Frame& f : s.frames) {
    w.put_u32(f.entry_pc);
    w.put_u32(f.parent);
    w.put_u64(f.cycles);
  }
  w.put_u64(s.stack.size());
  for (const auto& [ret_pc, caller] : s.stack) {
    w.put_u32(ret_pc);
    w.put_u32(caller);
  }
  w.put_u32(s.current);
  w.put_u64(s.truncated_calls);
}

profile::PcProfile::RawState get_profile(snapshot::Reader& r) {
  profile::PcProfile::RawState s;
  const u64 num_pcs = r.get_u64();
  for (u64 i = 0; i < num_pcs && r.status().ok(); ++i) {
    profile::PcCount p;
    p.instrs = r.get_u64();
    p.cycles = r.get_u64();
    s.pcs.push_back(p);
  }
  const u64 num_frames = r.get_u64();
  for (u64 i = 0; i < num_frames && r.status().ok(); ++i) {
    profile::PcProfile::Frame f;
    f.entry_pc = r.get_u32();
    f.parent = r.get_u32();
    f.cycles = r.get_u64();
    s.frames.push_back(f);
  }
  const u64 num_stack = r.get_u64();
  for (u64 i = 0; i < num_stack && r.status().ok(); ++i) {
    const u32 ret_pc = r.get_u32();
    const u32 caller = r.get_u32();
    s.stack.emplace_back(ret_pc, caller);
  }
  s.current = r.get_u32();
  s.truncated_calls = r.get_u64();
  if (!r.status().ok()) return s;
  // Structural validity: the frame tree must be parent-before-child with a
  // self-parented root, and every reference must land inside it.
  bool ok = !s.frames.empty() && s.frames[0].parent == 0 &&
            s.current < s.frames.size();
  for (u32 i = 1; ok && i < s.frames.size(); ++i) {
    ok = s.frames[i].parent < i;
  }
  for (const auto& [ret_pc, caller] : s.stack) {
    ok = ok && caller < s.frames.size();
  }
  if (!ok) {
    r.fail(StatusCode::kInvalidArgument, "snapshot profile state malformed");
  }
  return s;
}

}  // namespace

Status Core::save(snapshot::Writer& w) const {
  for (const u32 reg : regs_) w.put_u32(reg);
  w.put_u32(pc_);
  for (const HwLoop& lp : loops_) {
    w.put_u32(lp.start);
    w.put_u32(lp.end);
    w.put_u32(lp.count);
  }
  w.put_bool(halted_);
  w.put_bool(hwloop_bug_);
  w.put_bool(sleeping_);
  w.put_u8(static_cast<u8>(sleep_kind_));
  w.put_u32(busy_);
  w.put_bool(memop_.active);
  put_instr(w, memop_.instr);
  for (const MemPart& part : memop_.parts) {
    w.put_u32(part.addr);
    w.put_i32(part.size);
    w.put_i32(part.byte_offset);
  }
  w.put_i32(memop_.num_parts);
  w.put_i32(memop_.next_part);
  w.put_u32(memop_.assembled);
  w.put_u8(sleep_bucket_);
  w.put_u32(sleep_pc_);
  put_perf(w, perf_);
  w.put_bool(prof_ != nullptr);
  if (prof_ != nullptr) put_profile(w, *prof_);
  return Status{};
}

Status Core::restore(snapshot::Reader& r, bool apply) {
  std::array<u32, isa::kNumRegs> regs{};
  for (u32& reg : regs) reg = r.get_u32();
  const u32 pc = r.get_u32();
  std::array<HwLoop, 2> loops{};
  for (HwLoop& lp : loops) {
    lp.start = r.get_u32();
    lp.end = r.get_u32();
    lp.count = r.get_u32();
  }
  const bool halted = r.get_bool();
  const bool hwloop_bug = r.get_bool();
  const bool sleeping = r.get_bool();
  const u8 sleep_kind = r.get_u8();
  if (sleep_kind > static_cast<u8>(WakeKind::kEvent)) {
    r.fail(StatusCode::kInvalidArgument, "snapshot sleep kind out of range");
  }
  const u32 busy = r.get_u32();
  MemOp memop{};
  memop.active = r.get_bool();
  memop.instr = get_instr(r);
  for (MemPart& part : memop.parts) {
    part.addr = r.get_u32();
    part.size = r.get_i32();
    part.byte_offset = r.get_i32();
  }
  memop.num_parts = r.get_i32();
  memop.next_part = r.get_i32();
  memop.assembled = r.get_u32();
  if (memop.num_parts < 0 || memop.num_parts > 2 || memop.next_part < 0 ||
      memop.next_part > memop.num_parts) {
    r.fail(StatusCode::kInvalidArgument, "snapshot memory op malformed");
  }
  const u8 sleep_bucket = r.get_u8();
  const u32 sleep_pc = r.get_u32();
  const PerfCounters perf = get_perf(r);
  const bool has_profile = r.get_bool();
  profile::PcProfile::RawState prof_state;
  if (has_profile) prof_state = get_profile(r);
  if (Status s = r.status(); !s.ok()) return s;
  if (!apply) return Status{};

  regs_ = regs;
  pc_ = pc;
  loops_ = loops;
  // Verification self-test fault: simulate a field the snapshot layer
  // "forgot" to carry across the restore boundary. The differential
  // snapshot fuzzer must catch the divergence this causes.
  if (config::inject_snapshot_bug()) loops_[0].count = 0;
  halted_ = halted;
  hwloop_bug_ = hwloop_bug;
  sleeping_ = sleeping;
  sleep_kind_ = static_cast<WakeKind>(sleep_kind);
  busy_ = busy;
  memop_ = memop;
  sleep_bucket_ = sleep_bucket;
  sleep_pc_ = sleep_pc;
  perf_ = perf;
  if (prof_ != nullptr) {
    // A snapshot without profile state restores an attached profile to its
    // post-reset state, so capture starts clean from the restore point.
    if (has_profile) {
      prof_->set_raw_state(prof_state);
    } else {
      prof_->reset();
    }
  }
  return Status{};
}

}  // namespace ulp::core
