#include "core/features.hpp"

namespace ulp::core {

CoreConfig baseline_config() {
  CoreConfig cfg;
  cfg.name = "baseline-risc";
  cfg.features = CoreFeatures{
      .has_mac = false,
      .has_simd = false,
      .has_hwloops = false,
      .has_postinc = false,
      .has_unaligned = false,
      .has_mul64 = false,
      .has_div = true,
      .unroll_hot = false,
  };
  cfg.costs = CoreCosts{
      .mul_cycles = 2,
      .mul64_cycles = 4,
      .div_cycles = 32,
      // No branch prediction on a plain 5-stage pipeline.
      .branch_taken_penalty = 2,
      .jump_penalty = 2,
  };
  return cfg;
}

CoreConfig or10n_config() {
  CoreConfig cfg;
  cfg.name = "or10n";
  cfg.features = CoreFeatures{
      .has_mac = true,
      .has_simd = true,
      .has_hwloops = true,
      .has_postinc = true,
      .has_unaligned = true,
      .has_mul64 = false,
      .has_div = true,
  };
  cfg.costs = CoreCosts{
      .mul_cycles = 1,
      .dotp2_cycles = 1,
      .dotp4_cycles = 2,
      .div_cycles = 16,
      // Taken branches flush the front-end like on the M-class parts; the
      // hardware loops exist precisely to avoid paying this in hot loops.
      .branch_taken_penalty = 2,
      .jump_penalty = 2,
  };
  return cfg;
}

CoreConfig cortex_m4_config() {
  CoreConfig cfg;
  cfg.name = "cortex-m4";
  cfg.features = CoreFeatures{
      .has_mac = true,  // MLA
      .has_simd = false,
      .has_hwloops = false,
      .has_postinc = true,
      .has_unaligned = true,
      .has_mul64 = true,  // UMULL/SMULL
      .has_div = true,    // UDIV/SDIV
  };
  cfg.costs = CoreCosts{
      .mul_cycles = 1,
      .mul64_cycles = 1,
      .div_cycles = 5,
      .branch_taken_penalty = 2,
      .jump_penalty = 2,
  };
  return cfg;
}

CoreConfig cortex_m3_config() {
  // The paper's M3 methodology: the M4 core with M4-specific capabilities
  // turned down. The visible deltas are long multiply and divide timing.
  CoreConfig cfg = cortex_m4_config();
  cfg.name = "cortex-m3";
  cfg.costs.mul64_cycles = 4;  // UMULL is 3-5 cycles on Cortex-M3
  cfg.costs.div_cycles = 7;
  cfg.costs.load_extra = 1;  // no M4-style back-to-back load pipelining
  return cfg;
}

}  // namespace ulp::core
