// Core feature sets and cycle-cost models.
//
// One instruction-set simulator plays every processor in the paper by
// swapping CoreConfig:
//  * baseline  — OR10N with "all microarchitectural improvements
//                deactivated": plain 5-stage RISC, the unit in which the
//                paper counts "RISC ops" (Table I, footnote 1).
//  * or10n     — the PULP3 cluster core: register-register MAC, sub-word
//                pseudo-SIMD, two hardware loops, post-increment and
//                unaligned load/store. No 32x32->64 multiply (the cause of
//                hog's architectural slowdown).
//  * cortex_m4 / cortex_m3 — the MCU-class cores: MLA-style MAC, hardware
//                umull/sdiv, post-increment addressing and unaligned
//                support, but no hardware loops and no sub-word SIMD
//                reachable from portable C. The paper derives its M3
//                numbers from the M4 with M4-specific flags off, so the two
//                configs differ only in multiply/divide timings.
//
// Costs are cycles charged per instruction class, on top of (bus latency)
// for memory operations. They are drawn from the respective TRMs/datasheets
// at the granularity this study needs; EXPERIMENTS.md discusses the
// sensitivity.
#pragma once

#include <string>

#include "common/types.hpp"

namespace ulp::core {

struct CoreFeatures {
  bool has_mac = false;        ///< Register-register MAC (or ARM MLA).
  bool has_simd = false;       ///< Sub-word dotp / vector add-sub.
  bool has_hwloops = false;    ///< Two zero-overhead hardware loops.
  bool has_postinc = false;    ///< Post-increment addressing modes.
  bool has_unaligned = false;  ///< HW support for unaligned accesses.
  bool has_mul64 = false;      ///< mulhs/mulhu (32x32 -> high word).
  bool has_div = true;         ///< Hardware integer divide.
  /// Code-generation property: -O3 unrolls hot innermost loops on targets
  /// without hardware loops. Off for the plain-RISC baseline so the
  /// "RISC ops" work metric stays canonical (one op per algorithmic step).
  bool unroll_hot = true;
};

struct CoreCosts {
  u32 mul_cycles = 1;       ///< mul and mac.
  u32 dotp2_cycles = 1;     ///< 2x16 dot product.
  u32 dotp4_cycles = 2;     ///< 4x8 dot product.
  u32 mul64_cycles = 1;     ///< mulhs/mulhu when available.
  u32 div_cycles = 16;
  u32 load_extra = 0;       ///< Added to bus latency for loads.
  u32 store_extra = 0;      ///< Added to bus latency for stores.
  u32 branch_taken_penalty = 1;
  u32 jump_penalty = 1;
};

struct CoreConfig {
  std::string name;
  CoreFeatures features;
  CoreCosts costs;
};

/// Plain-RISC baseline: the "RISC ops" measuring stick.
[[nodiscard]] CoreConfig baseline_config();
/// PULP3 cluster core.
[[nodiscard]] CoreConfig or10n_config();
/// MCU-class cores.
[[nodiscard]] CoreConfig cortex_m4_config();
[[nodiscard]] CoreConfig cortex_m3_config();

}  // namespace ulp::core
