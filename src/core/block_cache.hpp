// Basic-block translation cache for the ISS.
//
// On first execution of a pc the cache decodes forward to the next control
// transfer (branch, jal/jalr, lp.setup) or scheduler-visible instruction
// (barrier/wfe/sev/eoc/halt) into an array of pre-resolved records: a
// handler function pointer (one specialised function per opcode — threaded
// dispatch, replacing the per-cycle decode+switch), the decoded operands,
// and the instruction's static cycle cost under the core's cost model.
// Core::run_cached() then retires whole cached blocks between observable
// events with cycle-exact bulk accounting; the per-cycle step() path keeps
// the original switch untouched as the differential oracle.
//
// Keying and invalidation: blocks are keyed by start pc (a dense array —
// the pc is an instruction index). The cache snapshots the owner's code
// generation counter; any write into the instruction-memory window (core
// store, DMA beat, host debug write — see cluster::Cluster's write watch)
// bumps the generation and the next lookup flushes every block. Capacity
// overflow (decode-heavy footprints) also flushes wholesale: eviction
// bookkeeping is not worth carrying on the hot path for programs that fit,
// and a full re-decode is exactly what the flush counter makes visible.
#pragma once

#include <memory>
#include <vector>

#include "core/features.hpp"
#include "isa/isa.hpp"

namespace ulp::core {

class Core;

/// Mutable state of one cached-block run, shared between the dispatch loop
/// and the handlers. The counters every record touches (cycles, instrs,
/// loads, stores) accumulate here instead of read-modify-writing
/// PerfCounters per instruction; the run flushes them once at exit — and on
/// a fault, so the architectural state a SimError leaves behind is
/// bit-identical to per-cycle stepping (every cycle of a cached-block run
/// is an active cycle by construction).
struct BlockRunCtx {
  u64 cycles = 0;
  u64 instrs = 0;
  u64 loads = 0;
  u64 stores = 0;
};

struct CachedOp {
  /// Executes the record exactly as one per-cycle issue would, charging
  /// its cycles into `ctx`. Returns false — having changed *nothing* —
  /// when the record must be handed back to the per-cycle path (memory
  /// access outside plain RAM).
  using Handler = bool (*)(Core& c, const CachedOp& op, BlockRunCtx& ctx);

  Handler fn = nullptr;
  isa::Instr instr;
  u32 pc = 0;
  /// Dense dispatch id for the computed-goto backend (index into its label
  /// table); 0 routes through `fn` (the portable fallback and the slow-path
  /// records the goto table does not specialise).
  u16 did = 0;
  /// Issue-to-retire cycles when statically known (ALU class, and the
  /// not-taken/taken baselines for control flow). For memory records this
  /// holds the load/store extra cycles instead (the grant latency is the
  /// direct span's).
  u32 cost = 1;
  /// The record can bump the owner's code generation (stores).
  bool is_store = false;
  /// Load/store record: the multi-core window routes it through the
  /// per-attempt arbitration replay instead of the handler's solo lane.
  bool is_mem = false;
  /// This record's fetch may touch a new I$ line (block entry or a
  /// line-aligned pc). False means the line was provably fetched by an
  /// earlier record of the same run: a guaranteed hit, charged in bulk.
  bool line_start = true;
  /// pc+1 can never be a hardware-loop end (no lp.setup anywhere in the
  /// program targets it), so a sequential retirement from this record is a
  /// bare pc increment — the loop-slot scan is provably a no-op.
  bool no_loop_end = false;
};

/// A decoded block: a contiguous slice of the cache's record pool. Keeping
/// every record in one arena makes dispatch cache-friendly and turns a
/// wholesale flush into a pool clear instead of per-block deallocation.
struct Block {
  u32 first = 0;  ///< Index of the first record in the pool.
  u32 count = 0;
};

struct BlockCacheStats {
  u64 blocks = 0;   ///< Decoded blocks currently live.
  u64 records = 0;  ///< Cached records currently live.
  u64 decodes = 0;  ///< Blocks decoded over the cache's lifetime (misses).
  u64 flushes = 0;  ///< Wholesale invalidations (generation or capacity).
  u64 hits = 0;     ///< lookup() served an already-decoded block.
  u64 chained = 0;  ///< Block-to-block transfers resolved by chain().
  /// Cached loads/stores that left the direct-map fast lane (unaligned,
  /// watched store, peripheral hand-back, or a multi-core machinery replay).
  u64 dmap_fallbacks = 0;
};

class BlockCache {
 public:
  /// Longest straight-line block; longer runs split at the cap and chain
  /// through the dispatch loop's re-lookup.
  static constexpr u32 kMaxBlockOps = 64;
  /// Record budget across all blocks; exceeding it flushes wholesale.
  static constexpr size_t kMaxTotalOps = size_t{1} << 15;

  /// The block starting at `pc`, decoding it on first use. Returns null
  /// when `pc` is out of range or sits directly on an instruction the
  /// per-cycle path must execute (sync class). `cfg` prices the records;
  /// `icache_line_words` (0 = no I$) marks line-start records.
  const Block* lookup(u32 pc, const isa::Instr* code, u32 code_size,
                      const CoreConfig& cfg, u32 icache_line_words);

  /// The records of a block returned by lookup(). Valid until the next
  /// lookup() that decodes (the pool may grow) or flush().
  [[nodiscard]] const CachedOp* ops(const Block& b) const {
    return pool_.data() + b.first;
  }

  /// Block-to-block transfer: the block starting at `pc`, reached from
  /// `from` (null on the first block of a run). When `from` recorded `pc`
  /// as its successor in the current epoch the answer is a table read —
  /// no bounds/built checks, no decode; otherwise this is lookup() plus
  /// recording the edge for next time. Chained or not, the result is
  /// identical to lookup(pc, ...).
  const Block* chain(const Block* from, u32 pc, const isa::Instr* code,
                     u32 code_size, const CoreConfig& cfg,
                     u32 icache_line_words);

  /// Drop every block (code changed / capacity overflow / core reset).
  void flush();

  [[nodiscard]] const BlockCacheStats& stats() const { return stats_; }

  /// A cached load/store left the direct-map fast lane (see
  /// BlockCacheStats::dmap_fallbacks; bumped by the slow-lane replays).
  void note_dmap_fallback() { ++stats_.dmap_fallbacks; }

  /// Code generation this cache was built against (see Core::run_cached).
  u64 generation = 0;

 private:
  std::vector<CachedOp> pool_;  ///< All live records, block-contiguous.
  std::vector<Block> blocks_;   ///< Indexed by start pc.
  std::vector<u8> built_;       ///< Distinguishes "not decoded" from empty.
  /// Cross-block chaining edge of the block starting at each pc: the start
  /// pc its last run transferred to, trusted while `epoch` matches the
  /// cache's epoch. Kept out of Block on purpose: the decode loop streams
  /// blocks_/built_, and widening those entries with edge state measurably
  /// slows decode-bound workloads — chain() alone touches this array.
  struct SuccEdge {
    u64 epoch = 0;  ///< Never matches: epoch_ starts at 1.
    u32 pc = 0;
  };
  std::vector<SuccEdge> succ_;
  /// Bumped whenever recorded successor edges die (flush, program change);
  /// chain() only trusts an edge stamped with the current epoch.
  u64 epoch_ = 1;
  /// loop_end_[p] != 0: some lp.setup in the program (current code, or —
  /// after a self-modifying-code flush — any earlier revision whose armed
  /// loop may still be live) puts a hardware-loop end at instruction p.
  /// Rebuilt on program change, widened (never narrowed) on flush.
  std::vector<u8> loop_end_;
  bool loop_scan_valid_ = false;
  BlockCacheStats stats_;
};

/// The dispatch backend compiled into the block handlers: "computed-goto"
/// (GNU labels-as-values — each handler label in BlockRunner::run_span
/// jumps straight to the next record's label, one distributed indirect
/// branch per record) or "switch" (portable per-record indirect call
/// through CachedOp::fn). Build provenance for recorded benchmarks
/// (--ulp-build-info).
[[nodiscard]] const char* block_dispatch_backend();

/// One multi-core block window (see cluster::Cluster::window_block_run).
/// `cores[i]` participates when `park_state[i] == 0` (the cluster's
/// kNotParked); parked cores are bulk-charged for the window. `rot0` is the
/// cluster's rotation slot at entry (cycles % num_cores) — the window
/// replays the per-cycle round-robin arbitration order from it.
struct McWindowParams {
  core::Core* const* cores = nullptr;
  const u8* park_state = nullptr;
  u32 num_cores = 0;
  u64 budget = 0;
  u32 rot0 = 0;
};

/// Interleaves cached-block execution across every runnable core under the
/// bank-conflict-exact arbitration replay, until the first core stops
/// (sync instruction ahead, peripheral access, budget, code-window write).
/// Returns the cycles the *cluster* consumed (the earliest per-core local
/// time at exit; later cores keep the difference as their stall residue).
/// 0 = the window could not start (a runnable core's pc is not
/// block-eligible) and nothing was charged. On a SimError every core —
/// active or parked — is left exactly as per-cycle stepping would leave it
/// at the fault cycle before the error propagates.
u64 run_multicore_window(const McWindowParams& p);

}  // namespace ulp::core
