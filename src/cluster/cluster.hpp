// The PULP cluster: four OR10N-class cores, shared I$, banked TCDM behind a
// single-cycle log-interconnect, lightweight DMA and the HW synchronizer.
//
// Execution model is SPMD, as on the real cluster: every core starts at the
// program's entry point and differentiates its work through the core-id CSR
// (the runtime's generated prologue computes per-core loop chunks from it).
// The cluster is cycle-stepped; per-cycle bank arbitration rotates the core
// priority order so no core is systematically favoured.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "cluster/event_unit.hpp"
#include "common/memmap.hpp"
#include "core/core.hpp"
#include "dma/dma.hpp"
#include "mem/bus.hpp"
#include "mem/icache.hpp"
#include "mem/tcdm.hpp"
#include "trace/event_trace.hpp"

namespace ulp::cluster {

// Memory map re-exported from common/memmap.hpp (one source of truth).
inline constexpr Addr kTcdmBase = memmap::kTcdmBase;
inline constexpr Addr kPeriphBase = memmap::kPeriphBase;
inline constexpr Addr kDmaOffset = memmap::kDmaBase - memmap::kPeriphBase;
inline constexpr Addr kL2Base = memmap::kL2Base;

struct ClusterParams {
  u32 num_cores = 4;
  core::CoreConfig core_config = core::or10n_config();

  /// Identity of this cluster inside a multi-cluster HeteroSystem; pure
  /// diagnostics (deadlock reports name the stuck cluster). 0 for
  /// standalone clusters and the first system cluster.
  u32 cluster_id = 0;

  u32 tcdm_banks = 8;
  u32 tcdm_bank_bytes = 8 * 1024;  ///< 8 banks x 8 KiB = 64 KiB TCDM.
  u32 l2_bytes = 128 * 1024;
  u32 l2_latency = 4;

  u32 icache_line_instrs = 4;
  u32 icache_miss_penalty = 8;

  /// Force per-cycle reference stepping (true) or quiescence fast-forward
  /// (false). Unset: the process-wide default (ULP_REFERENCE_STEPPING,
  /// captured once at startup — see common/config.hpp; injectable via
  /// config::set_reference_stepping_default before simulations start).
  /// Both modes are cycle- and bit-identical
  /// by construction (enforced by the differential perf tests); the
  /// reference loop survives as the escape hatch and testing oracle.
  std::optional<bool> reference_stepping;

  /// Enable the per-core basic-block translation cache on the fast-forward
  /// path (decode-once blocks with threaded dispatch, retired whole between
  /// observable events). Unset: the process-wide default (ULP_BLOCK_CACHE,
  /// default on — see common/config.hpp). Always off under reference
  /// stepping, which is the per-cycle oracle. Bit- and cycle-identical to
  /// both other modes by construction (enforced by the three-way
  /// differential suites).
  std::optional<bool> block_cache;

  /// Enable multi-core block windows: when the block cache is active and
  /// several cores are runnable between synchronisation points, interleave
  /// cached-block execution across all of them under the bank-conflict-exact
  /// TCDM arbitration replay, instead of requiring a solo core. Unset: the
  /// process-wide default (ULP_MC_WINDOWS, default on — see
  /// common/config.hpp). No effect when the block cache is off; multi-core
  /// windows also stand down while a trace is attached (solo windows
  /// generate no TCDM conflicts and stay sample-compatible; multi-core
  /// windows would need per-cycle conflict counter stamps).
  std::optional<bool> multicore_windows;

  /// Base address of the executable-code window for the self-modifying-code
  /// model, 0 = disabled (code is immutable, the seed behaviour). When set,
  /// load_program() mirrors the encoded instruction image to this address
  /// and any store landing in the window (core store, DMA beat, host debug
  /// write through the cluster bus) patches the decoded program in place
  /// and invalidates every cached block. The window must lie in TCDM or L2.
  Addr code_window_base = 0;
};

/// Aggregated cluster activity, the input to the power model's chi factors.
struct ClusterStats {
  u64 cycles = 0;
  std::vector<core::PerfCounters> cores;
  dma::DmaStats dma;
  u64 tcdm_conflicts = 0;
  u64 icache_misses = 0;
  /// Block-cache telemetry summed across the cores (all zero when the block
  /// cache is off or no core has decoded yet).
  core::BlockCacheStats block_cache;

  /// Total instructions retired across all cores.
  [[nodiscard]] u64 total_instrs() const {
    u64 n = 0;
    for (const auto& c : cores) n += c.instrs;
    return n;
  }
};

class Cluster {
 public:
  explicit Cluster(ClusterParams params = {});

  // Not movable: cores hold stable pointers into this object.
  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  /// Installs a program: data segments are written to TCDM/L2, the I$ is
  /// cold, all cores are reset to the entry point. Statistics restart.
  void load_program(const isa::Program& program);

  /// Record the cluster's activity into `sinks`: per-core run/wait spans
  /// (barrier and WFE sleeps become "wait" spans whose durations feed the
  /// cluster.wait_cycles histogram), per-transfer DMA spans, barrier
  /// completions and TCDM bank-conflict counters. `ticks_per_second` is
  /// the cluster clock for real-time alignment (default: 1 cycle = 1 ns
  /// nominal, like the VCD tracer). Call before load_program/run; the
  /// per-cycle cost with no sinks attached is one branch.
  void attach_trace(const trace::Sinks& sinks,
                    double ticks_per_second = 1e9,
                    const std::string& track_prefix = "cluster");

  /// Advance one cluster clock cycle.
  void step();

  /// Advance up to `max_cycles` cycles, fast-forwarding through quiescent
  /// stretches (every core sleeping/halted or mid-stall, DMA idle or with
  /// analytic progress), retiring whole cached blocks when a solo core has
  /// the cluster to itself (block cache enabled), and stepping
  /// cycle-by-cycle everywhere else. Stops early once every core has
  /// halted; with `stop_at_eoc_rise`, also right after the step that raises
  /// the EOC line (an outer clock domain watching the line resumes its own
  /// stepping from there). Returns cycles consumed. Observably identical to
  /// calling step() the same number of times.
  u64 advance(u64 max_cycles, bool stop_at_eoc_rise = false);

  /// Run until every core has halted (EOC/HALT). Returns elapsed cycles
  /// since load_program. Throws if `max_cycles` is exceeded.
  u64 run(u64 max_cycles = 4'000'000'000ull);

  [[nodiscard]] bool all_halted() const;
  [[nodiscard]] u64 cycles() const { return cycles_; }

  /// Multi-line diagnostic naming this cluster and the execution state of
  /// every core (pc, sleep condition, stall, in-flight memory op, block
  /// cache position) plus the DMA queue — what run()/run_to_host_halt
  /// print when a budget expires, so an N-cluster deadlock identifies
  /// *which* cluster (and, block-cached, which block) is stuck.
  [[nodiscard]] std::string deadlock_report() const;

  /// Cycles until a non-parked core can issue or a parked sleeper wakes
  /// (0 = someone can act right now; only the DMA bounds longer windows).
  /// Lets an outer clock domain (HeteroSystem) size its own fast-forward
  /// strides: no instruction retires — so no EOC can rise — for this many
  /// cluster cycles.
  [[nodiscard]] u64 quiescent_horizon() const;

  /// The active stepping mode. May only be changed before load_program /
  /// between runs; flipping it mid-run desynchronises the scheduler state.
  [[nodiscard]] bool reference_stepping() const { return reference_stepping_; }
  void set_reference_stepping(bool reference) {
    reference_stepping_ = reference;
    apply_block_cache_mode();
  }

  /// Whether the block-cached fast path is active (never under reference
  /// stepping). Changing it follows the same rule as the stepping mode:
  /// only before load_program / between runs.
  [[nodiscard]] bool block_cache_enabled() const { return block_cache_; }
  void set_block_cache(bool on) {
    params_.block_cache = on;
    apply_block_cache_mode();
  }

  /// Whether multi-core block windows are active (requires the block cache;
  /// see ClusterParams::multicore_windows). Same change rule as above.
  [[nodiscard]] bool multicore_windows_enabled() const {
    return block_cache_ && multicore_windows_;
  }
  void set_multicore_windows(bool on) {
    params_.multicore_windows = on;
    apply_block_cache_mode();
  }

  [[nodiscard]] const ClusterParams& params() const { return params_; }
  [[nodiscard]] core::Core& core(u32 i) { return *cores_[i]; }
  [[nodiscard]] mem::ClusterBus& bus() { return *bus_; }
  [[nodiscard]] mem::Tcdm& tcdm() { return *tcdm_; }
  [[nodiscard]] mem::Sram& l2() { return *l2_; }
  [[nodiscard]] dma::Dma& dma() { return *dma_; }
  [[nodiscard]] EventUnit& events() { return *events_; }
  [[nodiscard]] const EventUnit& events() const { return *events_; }

  [[nodiscard]] ClusterStats stats() const;

  /// The currently loaded program (empty before the first load_program).
  /// The profiler renders annotated disassembly against this image.
  [[nodiscard]] const isa::Program& program() const { return program_; }

  /// Serializes the complete architectural + timing state — program,
  /// memories, I$/event/DMA state, every core — as a section sequence
  /// (see snapshot::section). Derived state is excluded by design: the
  /// block cache is rebuilt on demand after restore (and provably changes
  /// nothing), the rotating-arbiter rank is recomputed from the cycle
  /// count, and the SMC write watches are re-armed from the geometry.
  [[nodiscard]] Status save(snapshot::Writer& w) const;

  /// All-or-nothing restore of a save() image into this cluster. The
  /// snapshot is fully validated first (header sections, geometry,
  /// program decode, every field) with zero mutation; only a snapshot
  /// that passes is applied. The stepping/block-cache mode of *this*
  /// cluster is kept — restoring a reference-mode snapshot into a
  /// fast-forward cluster (or any other combination) is bit-identical.
  [[nodiscard]] Status restore(snapshot::Reader& r);

  /// One phase of restore(): apply=false validates and consumes the field
  /// sequence without mutating anything, apply=true applies it. Exposed
  /// so a composite owner (HeteroSystem) can fold this cluster's
  /// validate pass into its own all-or-nothing boundary.
  [[nodiscard]] Status restore_pass(snapshot::Reader& r, bool apply);

 private:
  /// Scheduler view of a core between step() calls.
  enum ParkState : u8 {
    kNotParked = 0,   ///< Active (or mid-stall): stepped every cycle.
    kParkedSleep = 1, ///< Sleeping: skipped until a matching wake pends.
    kParkedHalt = 2,  ///< Halted: skipped forever (bulk cycle accounting).
  };

  void reference_step();
  void trace_sample();
  /// Bulk-advance up to `max_cycles` cycles in which only the DMA acts.
  u64 do_quiescent_window(u64 max_cycles);
  /// Retire cached blocks for up to `budget` cycles while the cluster is
  /// between observable events (DMA idle, no parked sleeper with a wake
  /// pending). One runnable core: the solo fast lane (run_cached, others
  /// bulk-charged). Several runnable cores and multi-core windows enabled
  /// (and no trace attached): the bank-conflict-exact interleaved window
  /// (core::run_multicore_window). Returns cycles consumed (0 = no window
  /// could form or a core's pc is not block-eligible).
  u64 window_block_run(u64 budget);
  /// Re-derive the effective per-core block-cache flag from the stepping
  /// mode and params/process default, and push it to the cores.
  void apply_block_cache_mode();
  /// Write watcher on the code window: re-decode the patched words into the
  /// loaded program and invalidate every cached block.
  void on_code_write(Addr addr, int size);

  ClusterParams params_;
  std::unique_ptr<mem::Tcdm> tcdm_;
  std::unique_ptr<mem::Sram> l2_;
  std::unique_ptr<mem::ClusterBus> bus_;
  std::unique_ptr<mem::SharedICache> icache_;
  std::unique_ptr<EventUnit> events_;
  std::unique_ptr<dma::Dma> dma_;
  std::vector<std::unique_ptr<core::Core>> cores_;
  std::vector<core::Core*> cores_raw_;  ///< Hot-path alias of cores_.

  isa::Program program_;
  u64 cycles_ = 0;
  bool reference_stepping_ = false;
  bool block_cache_ = false;       ///< Effective mode (off under reference).
  bool multicore_windows_ = false; ///< Effective mode (needs block_cache_).
  /// Bumped on every write into the code window; cores compare it against
  /// their block cache's generation and flush on mismatch.
  u64 code_generation_ = 0;
  bool tracing_ = false;           ///< sinks_ attached (hot-path cache).
  u32 rr_first_ = 0;               ///< == cycles_ % num_cores, kept inline.
  /// Multi-core-window formation backoff: no attempt before this cycle
  /// (set after an attempt that failed to form or died young — pure perf
  /// heuristic, never observable). Reset by load_program().
  u64 mc_stand_down_until_ = 0;
  u32 halted_count_ = 0;           ///< Cores in kParkedHalt; all_halted O(1).
  std::vector<u8> parked_;         ///< ParkState per core.

  // Tracing state (inert unless attach_trace() was called).
  trace::Sinks sinks_;
  std::vector<trace::EventTrace::TrackId> core_tracks_;
  trace::EventTrace::TrackId sync_track_ = 0;
  std::vector<u8> traced_state_;   ///< Per core: 0 halted, 1 run, 2 sleep.
  std::vector<bool> span_open_;    ///< Per core: a run/wait span is open.
  std::vector<u64> sleep_since_;   ///< Per core: wait-span start cycle.
  u64 traced_barriers_ = 0;
  u64 traced_conflicts_ = 0;

  /// Per-core block-cache stats summed (see ClusterStats::block_cache).
  [[nodiscard]] core::BlockCacheStats block_cache_totals() const;
};

}  // namespace ulp::cluster
