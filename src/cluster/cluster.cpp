#include "cluster/cluster.hpp"

#include "common/status.hpp"

namespace ulp::cluster {

Cluster::Cluster(ClusterParams params) : params_(std::move(params)) {
  ULP_CHECK(params_.num_cores >= 1, "cluster needs at least one core");
  tcdm_ = std::make_unique<mem::Tcdm>(kTcdmBase, params_.tcdm_banks,
                                      params_.tcdm_bank_bytes);
  l2_ = std::make_unique<mem::Sram>(kL2Base, params_.l2_bytes);
  bus_ = std::make_unique<mem::ClusterBus>(tcdm_.get(), l2_.get(),
                                           params_.l2_latency);
  icache_ = std::make_unique<mem::SharedICache>(params_.icache_line_instrs,
                                                params_.icache_miss_penalty);
  events_ = std::make_unique<EventUnit>(params_.num_cores);
  // The DMA is bus initiator N (after cores 0..N-1).
  dma_ = std::make_unique<dma::Dma>(bus_.get(), params_.num_cores);
  dma_->set_event_unit(events_.get());
  bus_->add_peripheral(kPeriphBase + kDmaOffset, 0x20, dma_.get());

  for (u32 i = 0; i < params_.num_cores; ++i) {
    cores_.push_back(std::make_unique<core::Core>(
        i, params_.num_cores, params_.core_config, bus_.get(), icache_.get(),
        events_.get()));
  }
}

void Cluster::load_program(const isa::Program& program) {
  program_ = program;
  for (const isa::Segment& seg : program_.data) {
    for (size_t i = 0; i < seg.bytes.size(); ++i) {
      bus_->debug_store(seg.addr + static_cast<Addr>(i), 1, seg.bytes[i]);
    }
  }
  icache_->reset(program_.code.size());
  events_->clear_eoc();
  dma_->reset_stats();
  tcdm_->reset_stats();
  for (auto& c : cores_) c->reset(&program_);
  cycles_ = 0;
}

void Cluster::step() {
  bus_->begin_cycle();
  // Rotating priority: the core that goes first changes every cycle, so
  // TCDM conflict losses spread evenly (round-robin arbitration).
  const u32 n = params_.num_cores;
  const u32 first = static_cast<u32>(cycles_ % n);
  for (u32 k = 0; k < n; ++k) {
    cores_[(first + k) % n]->step();
  }
  dma_->step();
  ++cycles_;
}

bool Cluster::all_halted() const {
  for (const auto& c : cores_) {
    if (!c->halted()) return false;
  }
  return true;
}

u64 Cluster::run(u64 max_cycles) {
  while (!all_halted()) {
    ULP_CHECK(cycles_ < max_cycles, "cluster run exceeded cycle budget");
    step();
  }
  // Drain any DMA work still in flight (e.g. a final writeback started just
  // before EOC; well-formed kernels wait, but keep timing honest anyway).
  while (!dma_->idle()) {
    ULP_CHECK(cycles_ < max_cycles, "cluster DMA drain exceeded cycle budget");
    step();
  }
  return cycles_;
}

ClusterStats Cluster::stats() const {
  ClusterStats s;
  s.cycles = cycles_;
  for (const auto& c : cores_) s.cores.push_back(c->perf());
  s.dma = dma_->stats();
  s.tcdm_conflicts = tcdm_->total_conflicts();
  s.icache_misses = icache_->misses();
  return s;
}

}  // namespace ulp::cluster
