#include "cluster/cluster.hpp"

#include <algorithm>
#include <limits>

#include <cstring>

#include "common/config.hpp"
#include "common/status.hpp"
#include "isa/encoding.hpp"
#include "snapshot/snapshot.hpp"
#include "trace/metrics.hpp"

namespace ulp::cluster {

namespace {
u8 traced_core_state(const core::Core& c) {
  if (c.halted()) return 0;
  if (c.sleeping()) return 2;
  return 1;
}
}  // namespace

Cluster::Cluster(ClusterParams params) : params_(std::move(params)) {
  ULP_CHECK(params_.num_cores >= 1, "cluster needs at least one core");
  // Unset: the process-wide default, captured once from the environment
  // (thread-safe; per-construction getenv would race concurrent campaign
  // workers against any setenv).
  reference_stepping_ = params_.reference_stepping.value_or(
      config::reference_stepping_default());
  tcdm_ = std::make_unique<mem::Tcdm>(kTcdmBase, params_.tcdm_banks,
                                      params_.tcdm_bank_bytes);
  l2_ = std::make_unique<mem::Sram>(kL2Base, params_.l2_bytes);
  bus_ = std::make_unique<mem::ClusterBus>(tcdm_.get(), l2_.get(),
                                           params_.l2_latency);
  icache_ = std::make_unique<mem::SharedICache>(params_.icache_line_instrs,
                                                params_.icache_miss_penalty);
  events_ = std::make_unique<EventUnit>(params_.num_cores);
  // The DMA is bus initiator N (after cores 0..N-1).
  dma_ = std::make_unique<dma::Dma>(bus_.get(), params_.num_cores);
  dma_->set_event_unit(events_.get());
  dma_->set_cluster_bus(bus_.get());
  // Sleep classification for the profiler: WFE with a transfer in flight
  // is a DMA wait, not a generic event wait.
  events_->set_dma_probe([d = dma_.get()] { return !d->idle(); });
  bus_->add_peripheral(kPeriphBase + kDmaOffset, 0x20, dma_.get());

  for (u32 i = 0; i < params_.num_cores; ++i) {
    cores_.push_back(std::make_unique<core::Core>(
        i, params_.num_cores, params_.core_config, bus_.get(), icache_.get(),
        events_.get()));
    cores_raw_.push_back(cores_.back().get());
    cores_raw_.back()->set_code_generation(&code_generation_);
  }
  apply_block_cache_mode();
  // Cores come out of construction halted (until load_program).
  parked_.assign(params_.num_cores, kParkedHalt);
  halted_count_ = params_.num_cores;
}

void Cluster::apply_block_cache_mode() {
  block_cache_ = !reference_stepping_ &&
                 params_.block_cache.value_or(config::block_cache_default());
  multicore_windows_ =
      block_cache_ &&
      params_.multicore_windows.value_or(config::multicore_windows_default());
  for (core::Core* c : cores_raw_) c->set_block_cache(block_cache_);
}

void Cluster::attach_trace(const trace::Sinks& sinks, double ticks_per_second,
                           const std::string& track_prefix) {
  sinks_ = sinks;
  tracing_ = static_cast<bool>(sinks_);
  core_tracks_.clear();
  traced_state_.assign(params_.num_cores, 255);  // no state seen yet
  span_open_.assign(params_.num_cores, false);
  sleep_since_.assign(params_.num_cores, 0);
  traced_barriers_ = events_->barriers_completed();
  traced_conflicts_ = tcdm_->total_conflicts();
  if (sinks_.events != nullptr) {
    for (u32 i = 0; i < params_.num_cores; ++i) {
      core_tracks_.push_back(sinks_.events->add_track(
          track_prefix + ".core" + std::to_string(i), ticks_per_second,
          100 + static_cast<int>(i)));
    }
    sync_track_ = sinks_.events->add_track(track_prefix + ".sync",
                                           ticks_per_second, 110);
    dma_->attach_trace(sinks_, sinks_.events->add_track(
                                   track_prefix + ".dma", ticks_per_second,
                                   111));
  } else {
    dma_->attach_trace(sinks_, 0);
  }
}

void Cluster::trace_sample() {
  trace::EventTrace* ev = sinks_.events;
  for (u32 i = 0; i < params_.num_cores; ++i) {
    const u8 s = traced_core_state(*cores_[i]);
    if (s == traced_state_[i]) continue;
    if (span_open_[i]) {
      if (ev != nullptr) ev->end(core_tracks_[i], cycles_);
      span_open_[i] = false;
      if (traced_state_[i] == 2 && sinks_.metrics != nullptr) {
        sinks_.metrics->histogram("cluster.wait_cycles")
            .record(cycles_ - sleep_since_[i]);
      }
    }
    if (s == 1) {
      if (ev != nullptr) {
        ev->begin(core_tracks_[i], "run", cycles_);
        span_open_[i] = true;
      }
    } else if (s == 2) {
      sleep_since_[i] = cycles_;
      if (ev != nullptr) {
        ev->begin(core_tracks_[i], "wait", cycles_);
        span_open_[i] = true;
      }
    } else if (ev != nullptr) {
      ev->instant(core_tracks_[i], "halt", cycles_);
    }
    traced_state_[i] = s;
  }

  const u64 barriers = events_->barriers_completed();
  if (barriers != traced_barriers_) {
    if (ev != nullptr) {
      ev->instant(sync_track_, "barrier", cycles_,
                  {{"completed", static_cast<double>(barriers)}});
    }
    if (sinks_.metrics != nullptr) {
      sinks_.metrics->counter("cluster.barriers")
          .add(barriers - traced_barriers_);
    }
    traced_barriers_ = barriers;
  }

  const u64 conflicts = tcdm_->total_conflicts();
  if (conflicts != traced_conflicts_) {
    if (ev != nullptr) {
      ev->counter(sync_track_, "tcdm.conflicts", cycles_,
                  static_cast<double>(conflicts));
    }
    if (sinks_.metrics != nullptr) {
      sinks_.metrics->counter("tcdm.conflicts")
          .add(conflicts - traced_conflicts_);
    }
    traced_conflicts_ = conflicts;
  }
}

void Cluster::on_code_write(Addr addr, int size) {
  // Re-decode every instruction word the store touched (sub-word stores
  // patch part of a word; the containing word is re-read whole). The
  // decoded program is patched in place, so the per-cycle paths see the new
  // code naturally at their next fetch; cached blocks are invalidated
  // through the generation bump.
  const Addr base = params_.code_window_base;
  const Addr lo = std::max(addr, base);
  const Addr hi = std::min(addr + static_cast<Addr>(size),
                           base + static_cast<Addr>(program_.code.size()) * 4);
  for (Addr word = lo / 4 * 4; word < hi; word += 4) {
    const size_t index = static_cast<size_t>((word - base) / 4);
    const u32 encoded = bus_->debug_load(word, 4, /*sign_extend=*/false);
    program_.code[index] = isa::decode(encoded);  // throws on invalid opcode
  }
  ++code_generation_;
}

void Cluster::load_program(const isa::Program& program) {
  program_ = program;
  // Quiet the code-window watcher while (re)initialising memory; it is
  // re-armed below once the mirror matches the program image.
  bus_->set_write_watch(0, 0, {});
  dma_->set_code_watch(0, 0);
  for (const isa::Segment& seg : program_.data) {
    for (size_t i = 0; i < seg.bytes.size(); ++i) {
      bus_->debug_store(seg.addr + static_cast<Addr>(i), 1, seg.bytes[i]);
    }
  }
  if (params_.code_window_base != 0 && !program_.code.empty()) {
    // Executable-code window: mirror the encoded image so stores into it
    // observe (and may patch) the very bytes the cores execute.
    const Addr base = params_.code_window_base;
    const std::vector<u32> image = isa::encode_all(program_.code);
    const u32 window_bytes = static_cast<u32>(image.size()) * 4;
    ULP_CHECK(bus_->plain_memory(base, static_cast<int>(window_bytes)),
              "code window must lie entirely in TCDM or L2");
    for (size_t i = 0; i < image.size(); ++i) {
      bus_->debug_store(base + static_cast<Addr>(i) * 4, 4, image[i]);
    }
    bus_->set_write_watch(base, window_bytes,
                          [this](Addr a, int s) { on_code_write(a, s); });
    dma_->set_code_watch(base, window_bytes);
  }
  icache_->reset(program_.code.size());
  events_->clear_eoc();
  dma_->reset_stats();
  tcdm_->reset_stats();
  for (auto& c : cores_) c->reset(&program_);
  cycles_ = 0;
  rr_first_ = 0;
  mc_stand_down_until_ = 0;
  parked_.assign(params_.num_cores, kNotParked);
  halted_count_ = 0;
  if (sinks_) {
    // Cycle stamps restart with the program; restart the trace bookkeeping
    // too (any spans left open by a previous run close at their last tick).
    // Only this cluster's core tracks are tidied — other components (host,
    // SPI wire, DMA) own their tracks and may have spans in flight.
    if (sinks_.events != nullptr) {
      for (trace::EventTrace::TrackId t : core_tracks_) {
        sinks_.events->close_open_spans(t);
      }
    }
    traced_state_.assign(params_.num_cores, 255);
    span_open_.assign(params_.num_cores, false);
    traced_barriers_ = events_->barriers_completed();
    traced_conflicts_ = tcdm_->total_conflicts();
  }
}

// The seed's per-cycle loop, kept verbatim as the testing oracle behind
// ULP_REFERENCE_STEPPING: every core is stepped every cycle, halt status is
// rescanned, nothing is parked.
void Cluster::reference_step() {
  bus_->begin_cycle();
  // Rotating priority: the core that goes first changes every cycle, so
  // TCDM conflict losses spread evenly (round-robin arbitration).
  const u32 n = params_.num_cores;
  const u32 first = static_cast<u32>(cycles_ % n);
  for (u32 k = 0; k < n; ++k) {
    cores_[(first + k) % n]->step();
  }
  dma_->step();
  ++cycles_;
  if (sinks_) trace_sample();
}

void Cluster::step() {
  if (reference_stepping_) {
    reference_step();
    return;
  }
  bus_->begin_cycle();
  // Rotating priority, without the per-cycle modulo: rr_first_ tracks
  // cycles_ % n across steps and bulk jumps. Parked cores are not stepped —
  // a sleeping core is woken at exactly its rotation slot in the cycle a
  // matching wake pends (the same predicate its own check_wake would have
  // consumed), so wake ordering is identical to stepping it every cycle.
  const u32 n = params_.num_cores;
  u32 idx = rr_first_;
  for (u32 k = 0; k < n; ++k) {
    const u32 i = idx;
    if (++idx == n) idx = 0;
    core::Core& c = *cores_raw_[i];
    const u8 p = parked_[i];
    if (p == kParkedHalt) {
      c.charge_halted_cycles(1);
      continue;
    }
    if (p == kParkedSleep) {
      if (events_->wake_pending(i, c.sleep_kind())) {
        parked_[i] = kNotParked;
        c.step();  // consumes the wake; core is active again
      } else {
        c.charge_sleep_cycles(1);
      }
      continue;
    }
    const core::StepState s = c.step();
    if (s == core::StepState::kSleeping) {
      parked_[i] = kParkedSleep;
    } else if (s == core::StepState::kHalted) {
      parked_[i] = kParkedHalt;
      ++halted_count_;
    }
  }
  dma_->step();
  ++cycles_;
  if (++rr_first_ == n) rr_first_ = 0;
  if (tracing_) trace_sample();
}

bool Cluster::all_halted() const {
  if (!reference_stepping_) return halted_count_ == params_.num_cores;
  for (const auto& c : cores_) {
    if (!c->halted()) return false;
  }
  return true;
}

u64 Cluster::quiescent_horizon() const {
  u64 horizon = std::numeric_limits<u64>::max();
  const u32 n = params_.num_cores;
  for (u32 i = 0; i < n; ++i) {
    const u8 p = parked_[i];
    if (p == kParkedHalt) continue;
    const core::Core& c = *cores_raw_[i];
    if (p == kParkedSleep) {
      if (events_->wake_pending(i, c.sleep_kind())) return 0;
      continue;
    }
    // Unparked: the core issues (or retries a memory op) once its stall
    // countdown hits zero, and nothing can disturb it before that.
    const u32 busy = c.busy_remaining();
    if (busy == 0) return 0;
    horizon = std::min(horizon, static_cast<u64>(busy));
  }
  return horizon;
}

u64 Cluster::do_quiescent_window(u64 max_cycles) {
  u64 consumed;
  if (dma_->idle()) {
    // Nothing in the whole cluster can change state: pure time jump.
    consumed = max_cycles;
    dma_->skip_idle(consumed);
    cycles_ += consumed;
  } else if (tracing_) {
    // Keep per-cycle sampling so trace output is byte-identical; only the
    // DMA (and the sampler) runs, which is still far cheaper than stepping
    // four parked cores.
    consumed = 0;
    while (consumed < max_cycles) {
      bus_->begin_cycle();
      const bool completed = dma_->step();
      ++consumed;
      ++cycles_;
      trace_sample();
      if (completed) break;
    }
  } else {
    const dma::Dma::FastForwardResult f = dma_->fast_forward(max_cycles);
    consumed = f.consumed;
    cycles_ += consumed;
  }
  // Bulk cycle accounting: each core gets exactly what `consumed` step()
  // calls would have charged a core in its (unchanging) state.
  for (u32 i = 0; i < params_.num_cores; ++i) {
    core::Core& c = *cores_raw_[i];
    switch (parked_[i]) {
      case kParkedHalt: c.charge_halted_cycles(consumed); break;
      case kParkedSleep: c.charge_sleep_cycles(consumed); break;
      default: c.charge_busy_cycles(consumed); break;
    }
  }
  rr_first_ = static_cast<u32>(cycles_ % params_.num_cores);
  return consumed;
}

u64 Cluster::window_block_run(u64 budget) {
  // Eligibility: the runnable cores must provably own the cluster for the
  // whole window. No DMA beats (bus contention, events, code writes), no
  // sibling that could wake (blocks contain no SEV/barrier and the DMA
  // stays idle, so no new wake can appear mid-run either).
  if (!dma_->idle()) return 0;
  core::Core* solo = nullptr;
  u32 runnable = 0;
  const u32 n = params_.num_cores;
  for (u32 i = 0; i < n; ++i) {
    const u8 p = parked_[i];
    if (p == kParkedHalt) continue;
    core::Core& c = *cores_raw_[i];
    if (p == kParkedSleep) {
      if (events_->wake_pending(i, c.sleep_kind())) return 0;
      continue;
    }
    ++runnable;
    solo = &c;
  }
  if (runnable == 0) return 0;
  if (runnable == 1) {
    // Solo fast lane: one core owns every bank, every grant succeeds.
    if (solo->busy_remaining() > 0 || solo->mem_in_flight()) return 0;
    const u64 done = solo->run_cached(budget);
    if (done == 0) return 0;  // pc not block-eligible (sync op ahead, ...)
    // Bulk accounting for everyone else, exactly as `done` step() calls
    // would have charged them; their states provably cannot change.
    for (u32 i = 0; i < n; ++i) {
      core::Core& c = *cores_raw_[i];
      if (&c == solo) continue;
      if (parked_[i] == kParkedHalt) {
        c.charge_halted_cycles(done);
      } else {
        c.charge_sleep_cycles(done);
      }
    }
    dma_->skip_idle(done);
    cycles_ += done;
    rr_first_ = static_cast<u32>(cycles_ % n);
    // Nothing observable changed mid-run (no parks, wakes, barriers, DMA or
    // TCDM conflicts), so one sample here reproduces per-cycle sampling.
    if (tracing_) trace_sample();
    return done;
  }
  // Several runnable cores: the interleaved multi-core window. Stands down
  // while tracing — multi-core windows do generate TCDM conflicts, and the
  // per-cycle conflict counter stamps a trace expects cannot be reproduced
  // by one end-of-window sample (solo windows generate none, so they stay
  // trace-compatible above).
  if (!multicore_windows_ || tracing_) return 0;
  // Profitability guards (pure perf heuristics: any return-0 path falls
  // back to per-cycle stepping, which is the bit-exactness oracle). A
  // window costs O(cores) setup — per-core lookups, entry seeding, the
  // exit flush — so it must not be attempted when it provably cannot
  // amortise that: a tiny remaining budget (cosim tick strides hand the
  // cluster a handful of cycles at a time), or a sync-dominated stretch
  // where the last attempts died young (barrier storms would otherwise
  // re-pay the failed-formation scan on every single step()).
  constexpr u64 kMinMcBudget = 24;
  if (budget < kMinMcBudget) return 0;
  if (cycles_ < mc_stand_down_until_) return 0;
  core::McWindowParams mp;
  mp.cores = cores_raw_.data();
  mp.park_state = parked_.data();
  mp.num_cores = n;
  mp.budget = budget;
  mp.rot0 = rr_first_;
  // On a SimError the runner has already charged every core to the fault
  // cycle; the cluster-side counters stay put, exactly like the solo path.
  const u64 done = core::run_multicore_window(mp);
  if (done < kMinMcBudget) {
    // Failed to form (a core sits at a sync op) or died young (a barrier a
    // few instructions ahead): stand down long enough for the sync point
    // to pass before paying the formation scan again.
    mc_stand_down_until_ = cycles_ + kMinMcBudget;
  }
  if (done == 0) return 0;
  dma_->skip_idle(done);
  cycles_ += done;
  rr_first_ = static_cast<u32>(cycles_ % n);
  return done;
}

u64 Cluster::advance(u64 max_cycles, bool stop_at_eoc_rise) {
  const u64 start = cycles_;
  if (reference_stepping_) {
    while (cycles_ - start < max_cycles && !all_halted()) {
      const bool eoc0 = events_->eoc();
      step();
      if (stop_at_eoc_rise && !eoc0 && events_->eoc()) break;
    }
    return cycles_ - start;
  }
  while (cycles_ - start < max_cycles &&
         halted_count_ != params_.num_cores) {
    const u64 horizon = quiescent_horizon();
    if (horizon == 0) {
      // Only a step() can raise EOC: cached blocks and quiescent windows
      // exclude the sync-class instructions by construction.
      if (block_cache_ &&
          window_block_run(max_cycles - (cycles_ - start)) > 0) {
        continue;
      }
      const bool eoc0 = events_->eoc();
      step();
      if (stop_at_eoc_rise && !eoc0 && events_->eoc()) break;
      continue;
    }
    do_quiescent_window(std::min(horizon, max_cycles - (cycles_ - start)));
  }
  return cycles_ - start;
}

std::string Cluster::deadlock_report() const {
  std::string out = "cluster " + std::to_string(params_.cluster_id) +
                    " at cycle " + std::to_string(cycles_) + ":";
  for (const core::Core* c : cores_raw_) {
    out += "\n  " + c->state_brief();
  }
  if (!dma_->idle()) out += "\n  DMA transfer in flight";
  return out;
}

u64 Cluster::run(u64 max_cycles) {
  while (!all_halted()) {
    ULP_CHECK(cycles_ < max_cycles,
              "cluster run exceeded cycle budget; " + deadlock_report());
    if (reference_stepping_) {
      step();
    } else {
      advance(max_cycles - cycles_);
    }
  }
  // Drain any DMA work still in flight (e.g. a final writeback started just
  // before EOC; well-formed kernels wait, but keep timing honest anyway).
  while (!dma_->idle()) {
    ULP_CHECK(cycles_ < max_cycles,
              "cluster DMA drain exceeded cycle budget; " + deadlock_report());
    if (reference_stepping_) {
      step();
    } else {
      // All cores are halted; only the DMA acts until the queue drains.
      do_quiescent_window(max_cycles - cycles_);
    }
  }
  return cycles_;
}

core::BlockCacheStats Cluster::block_cache_totals() const {
  core::BlockCacheStats t;
  for (const core::Core* c : cores_raw_) {
    const core::BlockCacheStats* b = c->block_stats();
    if (b == nullptr) continue;
    t.blocks += b->blocks;
    t.records += b->records;
    t.decodes += b->decodes;
    t.flushes += b->flushes;
    t.hits += b->hits;
    t.chained += b->chained;
    t.dmap_fallbacks += b->dmap_fallbacks;
  }
  return t;
}

ClusterStats Cluster::stats() const {
  ClusterStats s;
  s.cycles = cycles_;
  for (const auto& c : cores_) s.cores.push_back(c->perf());
  s.dma = dma_->stats();
  s.tcdm_conflicts = tcdm_->total_conflicts();
  s.icache_misses = icache_->misses();
  s.block_cache = block_cache_totals();
  return s;
}

Status Cluster::save(snapshot::Writer& w) const {
  namespace sec = snapshot::section;
  w.begin_section(sec::kClusterMeta);
  w.put_u32(params_.num_cores);
  w.put_u32(params_.tcdm_banks);
  w.put_u32(params_.tcdm_bank_bytes);
  w.put_u32(params_.l2_bytes);
  w.put_u32(params_.icache_line_instrs);
  w.put_u32(params_.icache_miss_penalty);
  w.put_u32(params_.code_window_base);
  w.end_section();

  // The program is serialized post-SMC-patches (on_code_write re-decodes
  // into program_ in place), so it is consistent with the memory images —
  // restore never has to replay the code mirror.
  w.begin_section(sec::kClusterProgram);
  w.put_blob(isa::serialize(program_));
  w.end_section();

  w.begin_section(sec::kClusterState);
  w.put_u64(cycles_);
  w.put_u64(code_generation_);
  w.put_u32(halted_count_);
  w.put_bytes(parked_);
  w.end_section();

  w.begin_section(sec::kClusterTcdm);
  w.put_blob(tcdm_->bytes());
  w.put_u64(tcdm_->total_accesses());
  w.put_u64(tcdm_->total_conflicts());
  w.end_section();

  w.begin_section(sec::kClusterL2);
  w.put_blob(l2_->bytes());
  w.end_section();

  w.begin_section(sec::kClusterIcache);
  w.put_u64(icache_->misses());
  w.put_u64(icache_->hits());
  const std::vector<bool>& lines = icache_->lines_present();
  w.put_u64(lines.size());
  for (const bool present : lines) w.put_bool(present);
  w.end_section();

  w.begin_section(sec::kClusterEvents);
  if (Status s = events_->save(w); !s.ok()) return s;
  w.end_section();

  w.begin_section(sec::kClusterDma);
  if (Status s = dma_->save(w); !s.ok()) return s;
  w.end_section();

  for (u32 i = 0; i < params_.num_cores; ++i) {
    w.begin_section(sec::kClusterCoreBase + i);
    if (Status s = cores_[i]->save(w); !s.ok()) return s;
    w.end_section();
  }
  return Status{};
}

Status Cluster::restore(snapshot::Reader& r) {
  if (Status s = restore_pass(r, /*apply=*/false); !s.ok()) return s;
  return restore_pass(r, /*apply=*/true);
}

Status Cluster::restore_pass(snapshot::Reader& r, bool apply) {
  namespace sec = snapshot::section;

  if (Status s = r.enter(sec::kClusterMeta); !s.ok()) return s;
  const u32 num_cores = r.get_u32();
  const u32 tcdm_banks = r.get_u32();
  const u32 tcdm_bank_bytes = r.get_u32();
  const u32 l2_bytes = r.get_u32();
  const u32 icache_line = r.get_u32();
  const u32 icache_penalty = r.get_u32();
  const Addr code_window_base = r.get_u32();
  if (r.status().ok() &&
      (num_cores != params_.num_cores || tcdm_banks != params_.tcdm_banks ||
       tcdm_bank_bytes != params_.tcdm_bank_bytes ||
       l2_bytes != params_.l2_bytes ||
       icache_line != params_.icache_line_instrs ||
       icache_penalty != params_.icache_miss_penalty ||
       code_window_base != params_.code_window_base)) {
    return Status::Error(
        StatusCode::kInvalidArgument,
        "snapshot cluster geometry mismatch (snapshot has " +
            std::to_string(num_cores) + " cores, " +
            std::to_string(tcdm_banks) + "x" +
            std::to_string(tcdm_bank_bytes) + " TCDM, " +
            std::to_string(l2_bytes) + " L2; target has " +
            std::to_string(params_.num_cores) + " cores)");
  }

  if (Status s = r.enter(sec::kClusterProgram); !s.ok()) return s;
  const std::vector<u8> image = r.get_blob();
  isa::Program prog;
  if (r.status().ok()) {
    try {
      prog = isa::deserialize(image);
    } catch (const std::exception& e) {
      return Status::Error(StatusCode::kInvalidArgument,
                           std::string("snapshot program invalid: ") +
                               e.what());
    }
  }
  const size_t code_words = prog.code.size();
  if (apply) {
    // Quiet the code-window watcher while state is replaced wholesale; it
    // is re-armed below. The memory images already hold the code mirror
    // (including any SMC patches), so it is not rewritten here.
    bus_->set_write_watch(0, 0, {});
    dma_->set_code_watch(0, 0);
    program_ = std::move(prog);
  }

  if (Status s = r.enter(sec::kClusterState); !s.ok()) return s;
  const u64 cycles = r.get_u64();
  const u64 code_generation = r.get_u64();
  const u32 halted_count = r.get_u32();
  std::vector<u8> parked(params_.num_cores);
  r.get_bytes(parked);
  if (r.status().ok()) {
    u32 halted_in_park = 0;
    bool park_ok = true;
    for (const u8 p : parked) {
      if (p > kParkedHalt) park_ok = false;
      if (p == kParkedHalt) ++halted_in_park;
    }
    if (!park_ok || halted_in_park != halted_count) {
      return Status::Error(StatusCode::kInvalidArgument,
                           "snapshot park state malformed");
    }
  }
  if (apply) {
    cycles_ = cycles;
    // Set before the cores reset below: reset() syncs each block cache's
    // generation from this counter, so rebuilt caches start coherent with
    // the restored code image.
    code_generation_ = code_generation;
    halted_count_ = halted_count;
    parked_ = std::move(parked);
    // Derived scheduler state: the arbiter rank is a pure function of the
    // cycle count; the multi-core-window backoff is a perf heuristic with
    // no observable effect, so it simply restarts.
    rr_first_ = static_cast<u32>(cycles_ % params_.num_cores);
    mc_stand_down_until_ = 0;
  }

  if (Status s = r.enter(sec::kClusterTcdm); !s.ok()) return s;
  const std::vector<u8> tcdm_image = r.get_blob();
  const u64 tcdm_accesses = r.get_u64();
  const u64 tcdm_conflicts = r.get_u64();
  if (r.status().ok() && tcdm_image.size() != tcdm_->size()) {
    return Status::Error(StatusCode::kInvalidArgument,
                         "snapshot TCDM image size mismatch");
  }
  if (apply) {
    std::memcpy(tcdm_->bytes().data(), tcdm_image.data(), tcdm_image.size());
    tcdm_->reset_stats();
    tcdm_->charge_uncontended(tcdm_accesses, tcdm_conflicts);
  }

  if (Status s = r.enter(sec::kClusterL2); !s.ok()) return s;
  const std::vector<u8> l2_image = r.get_blob();
  if (r.status().ok() && l2_image.size() != l2_->bytes().size()) {
    return Status::Error(StatusCode::kInvalidArgument,
                         "snapshot L2 image size mismatch");
  }
  if (apply) {
    std::memcpy(l2_->bytes().data(), l2_image.data(), l2_image.size());
  }

  if (Status s = r.enter(sec::kClusterIcache); !s.ok()) return s;
  const u64 icache_misses = r.get_u64();
  const u64 icache_hits = r.get_u64();
  const u64 num_lines = r.get_u64();
  // A never-loaded cluster (pre-boot snapshot) has an unsized bitmap;
  // anything else must match the snapshot program's line count exactly
  // (fetch() indexes the bitmap, so a short one would trip ULP_CHECKs).
  if (r.status().ok() &&
      num_lines != code_words / params_.icache_line_instrs + 1 &&
      !(num_lines == 0 && code_words == 0)) {
    return Status::Error(StatusCode::kInvalidArgument,
                         "snapshot icache bitmap size mismatch");
  }
  std::vector<bool> lines(static_cast<size_t>(num_lines), false);
  for (u64 i = 0; i < num_lines && r.status().ok(); ++i) {
    lines[static_cast<size_t>(i)] = r.get_bool();
  }
  if (apply) {
    icache_->restore_state(std::move(lines), icache_misses, icache_hits);
  }

  if (Status s = r.enter(sec::kClusterEvents); !s.ok()) return s;
  if (Status s = events_->restore(r, apply); !s.ok()) return s;

  if (Status s = r.enter(sec::kClusterDma); !s.ok()) return s;
  if (Status s = dma_->restore(r, apply); !s.ok()) return s;

  for (u32 i = 0; i < params_.num_cores; ++i) {
    if (Status s = r.enter(sec::kClusterCoreBase + i); !s.ok()) return s;
    // Reset rebuilds the derived state (code pointers, block cache synced
    // to the restored generation, cleared profile); the core's restore
    // then overwrites the architectural fields.
    if (apply) cores_[i]->reset(&program_);
    if (Status s = cores_[i]->restore(r, apply); !s.ok()) return s;
  }

  if (apply) {
    if (params_.code_window_base != 0 && !program_.code.empty()) {
      const u32 window_bytes = static_cast<u32>(program_.code.size()) * 4;
      bus_->set_write_watch(params_.code_window_base, window_bytes,
                            [this](Addr a, int s) { on_code_write(a, s); });
      dma_->set_code_watch(params_.code_window_base, window_bytes);
    }
    if (sinks_) {
      // Same trace restart as load_program: cycle stamps jump with the
      // restored clock, so open spans close at their last honest tick.
      if (sinks_.events != nullptr) {
        for (trace::EventTrace::TrackId t : core_tracks_) {
          sinks_.events->close_open_spans(t);
        }
      }
      traced_state_.assign(params_.num_cores, 255);
      span_open_.assign(params_.num_cores, false);
      traced_barriers_ = events_->barriers_completed();
      traced_conflicts_ = tcdm_->total_conflicts();
    }
  }
  return r.status();
}

}  // namespace ulp::cluster
