// Cluster event unit / hardware synchronizer.
//
// PULP's cluster contains a small hardware block that implements barriers
// and events so cores "can be put to sleep and woken up in just a few
// cycles" (Section III-B). The core-side cost (sleep entry, wake latency)
// lives in core::Core; this class is the shared state: barrier arrival
// bitmask, per-core wake flags split by wake kind, the end-of-computation
// flag wired to the host GPIO, and DMA-completion events.
#pragma once

#include <functional>
#include <vector>

#include "common/status.hpp"
#include "core/core.hpp"
#include "snapshot/snapshot.hpp"

namespace ulp::cluster {

class EventUnit final : public core::SyncUnit {
 public:
  explicit EventUnit(u32 num_cores)
      : num_cores_(num_cores),
        arrived_(num_cores, 0),
        barrier_release_(num_cores, 0),
        event_pending_(num_cores, 0) {
    ULP_CHECK(num_cores > 0, "event unit needs at least one core");
  }

  bool barrier_arrive(u32 core_id) override {
    ULP_CHECK(core_id < num_cores_, "bad core id");
    ULP_CHECK(!arrived_[core_id], "double barrier arrival");
    arrived_[core_id] = 1;
    ++arrival_count_;
    if (arrival_count_ < num_cores_) return false;
    // Barrier complete: release every *other* core; the caller proceeds.
    arrival_count_ = 0;
    for (u32 i = 0; i < num_cores_; ++i) {
      arrived_[i] = 0;
      if (i != core_id) barrier_release_[i] = 1;
    }
    ++barriers_completed_;
    return true;
  }

  bool check_wake(u32 core_id, core::WakeKind kind) override {
    ULP_CHECK(core_id < num_cores_, "bad core id");
    auto& mask = kind == core::WakeKind::kBarrier ? barrier_release_
                                                  : event_pending_;
    if (!mask[core_id]) return false;
    mask[core_id] = 0;
    return true;
  }

  /// Non-consuming peek at check_wake's predicate: would a sleeping
  /// `core_id` wake this cycle? Lets the scheduler leave sleepers parked
  /// without stepping them while no wake is pending.
  [[nodiscard]] bool wake_pending(u32 core_id, core::WakeKind kind) const {
    return kind == core::WakeKind::kBarrier ? barrier_release_[core_id] != 0
                                            : event_pending_[core_id] != 0;
  }

  void send_event(u32 /*event_id*/) override {
    // Broadcast: WFE wake-ups are re-checked in software, so event identity
    // does not need to be tracked per id.
    event_pending_.assign(num_cores_, 1);
  }

  void signal_eoc(u32 flag) override {
    eoc_ = true;
    eoc_flag_ = flag;
  }

  /// The "end of computation" GPIO level seen by the host MCU.
  [[nodiscard]] bool eoc() const { return eoc_; }
  [[nodiscard]] u32 eoc_flag() const { return eoc_flag_; }
  void clear_eoc() { eoc_ = false; }

  [[nodiscard]] u64 barriers_completed() const { return barriers_completed_; }

  /// Wires the DMA-busy question for sleep classification (profiler "DMA
  /// wait" vs plain event wait). A std::function rather than a dma::Dma*
  /// keeps this header free of the dma <-> event_unit include cycle.
  void set_dma_probe(std::function<bool()> probe) {
    dma_probe_ = std::move(probe);
  }
  [[nodiscard]] bool dma_outstanding() const override {
    return dma_probe_ && dma_probe_();
  }

  /// Serializes the barrier/event/EOC state into the writer's current
  /// section. The DMA probe is wiring, not state, and is untouched.
  [[nodiscard]] Status save(snapshot::Writer& w) const {
    w.put_u32(arrival_count_);
    for (u32 i = 0; i < num_cores_; ++i) {
      w.put_u8(arrived_[i]);
      w.put_u8(barrier_release_[i]);
      w.put_u8(event_pending_[i]);
    }
    w.put_bool(eoc_);
    w.put_u32(eoc_flag_);
    w.put_u64(barriers_completed_);
    return Status{};
  }

  /// Reads (and with apply=true applies) the field sequence save() wrote.
  [[nodiscard]] Status restore(snapshot::Reader& r, bool apply) {
    const u32 arrival_count = r.get_u32();
    if (arrival_count >= num_cores_) {
      r.fail(StatusCode::kInvalidArgument,
             "snapshot barrier arrival count out of range");
    }
    std::vector<u8> arrived(num_cores_), release(num_cores_),
        pending(num_cores_);
    for (u32 i = 0; i < num_cores_; ++i) {
      arrived[i] = r.get_u8();
      release[i] = r.get_u8();
      pending[i] = r.get_u8();
    }
    const bool eoc = r.get_bool();
    const u32 eoc_flag = r.get_u32();
    const u64 barriers = r.get_u64();
    if (Status s = r.status(); !s.ok()) return s;
    if (!apply) return Status{};
    arrival_count_ = arrival_count;
    arrived_ = std::move(arrived);
    barrier_release_ = std::move(release);
    event_pending_ = std::move(pending);
    eoc_ = eoc;
    eoc_flag_ = eoc_flag;
    barriers_completed_ = barriers;
    return Status{};
  }

 private:
  std::function<bool()> dma_probe_;
  u32 num_cores_;
  u32 arrival_count_ = 0;
  // u8, not vector<bool>: these sit on the per-cycle wake path.
  std::vector<u8> arrived_;
  std::vector<u8> barrier_release_;
  std::vector<u8> event_pending_;
  bool eoc_ = false;
  u32 eoc_flag_ = 0;
  u64 barriers_completed_ = 0;
};

}  // namespace ulp::cluster
