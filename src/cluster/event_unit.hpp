// Cluster event unit / hardware synchronizer.
//
// PULP's cluster contains a small hardware block that implements barriers
// and events so cores "can be put to sleep and woken up in just a few
// cycles" (Section III-B). The core-side cost (sleep entry, wake latency)
// lives in core::Core; this class is the shared state: barrier arrival
// bitmask, per-core wake flags split by wake kind, the end-of-computation
// flag wired to the host GPIO, and DMA-completion events.
#pragma once

#include <vector>

#include "common/status.hpp"
#include "core/core.hpp"

namespace ulp::cluster {

class EventUnit final : public core::SyncUnit {
 public:
  explicit EventUnit(u32 num_cores)
      : num_cores_(num_cores),
        arrived_(num_cores, false),
        barrier_release_(num_cores, false),
        event_pending_(num_cores, false) {
    ULP_CHECK(num_cores > 0, "event unit needs at least one core");
  }

  bool barrier_arrive(u32 core_id) override {
    ULP_CHECK(core_id < num_cores_, "bad core id");
    ULP_CHECK(!arrived_[core_id], "double barrier arrival");
    arrived_[core_id] = true;
    ++arrival_count_;
    if (arrival_count_ < num_cores_) return false;
    // Barrier complete: release every *other* core; the caller proceeds.
    arrival_count_ = 0;
    for (u32 i = 0; i < num_cores_; ++i) {
      arrived_[i] = false;
      if (i != core_id) barrier_release_[i] = true;
    }
    ++barriers_completed_;
    return true;
  }

  bool check_wake(u32 core_id, core::WakeKind kind) override {
    ULP_CHECK(core_id < num_cores_, "bad core id");
    auto& mask = kind == core::WakeKind::kBarrier ? barrier_release_
                                                  : event_pending_;
    if (!mask[core_id]) return false;
    mask[core_id] = false;
    return true;
  }

  void send_event(u32 /*event_id*/) override {
    // Broadcast: WFE wake-ups are re-checked in software, so event identity
    // does not need to be tracked per id.
    event_pending_.assign(num_cores_, true);
  }

  void signal_eoc(u32 flag) override {
    eoc_ = true;
    eoc_flag_ = flag;
  }

  /// The "end of computation" GPIO level seen by the host MCU.
  [[nodiscard]] bool eoc() const { return eoc_; }
  [[nodiscard]] u32 eoc_flag() const { return eoc_flag_; }
  void clear_eoc() { eoc_ = false; }

  [[nodiscard]] u64 barriers_completed() const { return barriers_completed_; }

 private:
  u32 num_cores_;
  u32 arrival_count_ = 0;
  std::vector<bool> arrived_;
  std::vector<bool> barrier_release_;
  std::vector<bool> event_pending_;
  bool eoc_ = false;
  u32 eoc_flag_ = 0;
  u64 barriers_completed_ = 0;
};

}  // namespace ulp::cluster
