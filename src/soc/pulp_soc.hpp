// The PULP SoC as seen from the host MCU: a QSPI slave in front of the L2
// memory, a boot path that accepts serialised program images, the
// fetch-enable / end-of-computation GPIO pair, and the cluster behind them.
//
// Byte movement through the QSPI slave is functional here; the *timing* of
// link transfers is computed by link::SpiLink, and the split keeps the
// cycle-accurate cluster simulation independent of wall-clock link math
// (they meet in runtime::OffloadSession).
#pragma once

#include <span>

#include "cluster/cluster.hpp"
#include "isa/program.hpp"

namespace ulp::soc {

class PulpSoc {
 public:
  explicit PulpSoc(cluster::ClusterParams params = {});

  PulpSoc(const PulpSoc&) = delete;
  PulpSoc& operator=(const PulpSoc&) = delete;

  /// Host deposits bytes into L2 through the QSPI slave.
  void qspi_write(Addr addr, std::span<const u8> bytes);
  /// Host reads results back from L2.
  void qspi_read(Addr addr, std::span<u8> bytes);

  /// Boot a serialised program image (as shipped over the link): the boot
  /// ROM deserialises it, loads code + data segments and resets the
  /// cluster. Throws on malformed images.
  void boot_image(const std::vector<u8>& image);

  /// Boot from an image the host already streamed into L2 (the full-system
  /// flow: QSPI slave deposits bytes at `staging`, the fetch-enable GPIO
  /// then triggers this boot path).
  void boot_from_l2(Addr staging, u32 image_len);

  /// Fetch-enable GPIO: run the cluster until EOC (all cores halted).
  /// Returns cluster cycles elapsed.
  u64 run_to_eoc(u64 max_cycles = 4'000'000'000ull);

  /// End-of-computation GPIO level.
  [[nodiscard]] bool eoc_gpio() const;

  [[nodiscard]] cluster::Cluster& cluster() { return cluster_; }
  [[nodiscard]] const cluster::Cluster& cluster() const { return cluster_; }

  /// A PulpSoc snapshot is exactly its cluster's snapshot: the QSPI slave
  /// and boot ROM are stateless adapters over L2.
  [[nodiscard]] Status save(snapshot::Writer& w) const {
    return cluster_.save(w);
  }
  [[nodiscard]] Status restore(snapshot::Reader& r) {
    return cluster_.restore(r);
  }
  [[nodiscard]] Status restore_pass(snapshot::Reader& r, bool apply) {
    return cluster_.restore_pass(r, apply);
  }

 private:
  cluster::Cluster cluster_;
};

}  // namespace ulp::soc
