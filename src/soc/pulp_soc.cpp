#include "soc/pulp_soc.hpp"

#include "common/status.hpp"

namespace ulp::soc {

PulpSoc::PulpSoc(cluster::ClusterParams params)
    : cluster_(std::move(params)) {}

void PulpSoc::qspi_write(Addr addr, std::span<const u8> bytes) {
  mem::Sram& l2 = cluster_.l2();
  ULP_CHECK(l2.contains(addr, static_cast<int>(std::min<size_t>(
                                  bytes.size(), 1))) ||
                bytes.empty(),
            "QSPI write outside L2");
  for (size_t i = 0; i < bytes.size(); ++i) {
    l2.store(addr + static_cast<Addr>(i), 1, bytes[i]);
  }
}

void PulpSoc::qspi_read(Addr addr, std::span<u8> bytes) {
  mem::Sram& l2 = cluster_.l2();
  for (size_t i = 0; i < bytes.size(); ++i) {
    bytes[i] = static_cast<u8>(l2.load(addr + static_cast<Addr>(i), 1, false));
  }
}

void PulpSoc::boot_image(const std::vector<u8>& image) {
  const isa::Program program = isa::deserialize(image);
  cluster_.load_program(program);
}

void PulpSoc::boot_from_l2(Addr staging, u32 image_len) {
  std::vector<u8> image(image_len);
  qspi_read(staging, image);
  boot_image(image);
}

u64 PulpSoc::run_to_eoc(u64 max_cycles) {
  const u64 cycles = cluster_.run(max_cycles);
  ULP_CHECK(cluster_.events().eoc(),
            "cluster halted without raising the EOC GPIO");
  return cycles;
}

bool PulpSoc::eoc_gpio() const {
  return cluster_.events().eoc();
}

}  // namespace ulp::soc
