#include "codegen/assembler.hpp"

#include <cctype>
#include <charconv>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "isa/encoding.hpp"

namespace ulp::codegen {

using isa::Fmt;
using isa::Instr;
using isa::Opcode;

namespace {

struct PendingLabel {
  u32 instr_index;
  std::string name;
  int line;
  bool is_lpsetup;  // lp.setup resolves to (target - (setup+1)), branches
                    // to (target - branch).
};

[[noreturn]] void syntax_error(int line, const std::string& msg) {
  throw SimError("asm line " + std::to_string(line) + ": " + msg);
}

/// Splits an instruction's operand text into tokens, treating ',', '(' and
/// ')' as separators; "4(r3)" becomes ["4", "r3"].
std::vector<std::string> operand_tokens(const std::string& text) {
  std::vector<std::string> out;
  std::string cur;
  for (char c : text) {
    if (c == ',' || c == '(' || c == ')' || std::isspace(
                                                static_cast<unsigned char>(c))) {
      if (!cur.empty()) {
        out.push_back(cur);
        cur.clear();
      }
    } else {
      cur.push_back(c);
    }
  }
  if (!cur.empty()) out.push_back(cur);
  return out;
}

bool parse_int(const std::string& tok, i64* out) {
  int base = 10;
  size_t start = 0;
  bool neg = false;
  if (start < tok.size() && (tok[start] == '-' || tok[start] == '+')) {
    neg = tok[start] == '-';
    ++start;
  }
  if (tok.size() >= start + 2 && tok[start] == '0' &&
      (tok[start + 1] == 'x' || tok[start + 1] == 'X')) {
    base = 16;
    start += 2;
  }
  i64 v = 0;
  const auto* first = tok.data() + start;
  const auto* last = tok.data() + tok.size();
  const auto [ptr, ec] = std::from_chars(first, last, v, base);
  if (ec != std::errc{} || ptr != last) return false;
  *out = neg ? -v : v;
  return true;
}

u8 parse_reg(const std::string& tok, int line) {
  if (tok.size() < 2 || (tok[0] != 'r' && tok[0] != 'R')) {
    syntax_error(line, "expected register, got '" + tok + "'");
  }
  i64 n = 0;
  if (!parse_int(tok.substr(1), &n) || n < 0 || n >= isa::kNumRegs) {
    syntax_error(line, "bad register '" + tok + "'");
  }
  return static_cast<u8>(n);
}

const std::map<std::string, Opcode, std::less<>>& mnemonic_map() {
  static const auto* map = [] {
    auto* m = new std::map<std::string, Opcode, std::less<>>();
    for (size_t i = 0; i < isa::kNumOpcodes; ++i) {
      const auto op = static_cast<Opcode>(i);
      (*m)[std::string(isa::op_info(op).mnemonic)] = op;
    }
    return m;
  }();
  return *map;
}

}  // namespace

isa::Program assemble(std::string_view source) {
  std::map<std::string, u32, std::less<>> labels;
  std::vector<PendingLabel> pending;
  std::vector<Instr> code;

  std::istringstream stream{std::string(source)};
  std::string raw_line;
  int line_no = 0;
  while (std::getline(stream, raw_line)) {
    ++line_no;
    // Strip comments.
    for (const char marker : {';', '#'}) {
      if (const size_t p = raw_line.find(marker); p != std::string::npos) {
        raw_line.erase(p);
      }
    }
    // Leading label(s).
    std::string text = raw_line;
    while (true) {
      const size_t colon = text.find(':');
      if (colon == std::string::npos) break;
      std::string name = text.substr(0, colon);
      // Trim whitespace.
      while (!name.empty() && std::isspace(static_cast<unsigned char>(
                                  name.front()))) {
        name.erase(name.begin());
      }
      while (!name.empty() &&
             std::isspace(static_cast<unsigned char>(name.back()))) {
        name.pop_back();
      }
      if (name.empty() || name.find(' ') != std::string::npos) break;
      ULP_CHECK(!labels.contains(name),
                "asm line " + std::to_string(line_no) + ": duplicate label '" +
                    name + "'");
      labels[name] = static_cast<u32>(code.size());
      text = text.substr(colon + 1);
    }
    // Mnemonic.
    std::istringstream ls(text);
    std::string mnemonic;
    if (!(ls >> mnemonic)) continue;  // empty line
    const auto& mm = mnemonic_map();
    const auto it = mm.find(mnemonic);
    if (it == mm.end()) syntax_error(line_no, "unknown mnemonic '" + mnemonic + "'");
    const Opcode op = it->second;
    const Fmt fmt = isa::op_info(op).fmt;

    std::string rest;
    std::getline(ls, rest);
    const std::vector<std::string> ops = operand_tokens(rest);
    const size_t pending_before = pending.size();

    auto need = [&](size_t n) {
      if (ops.size() != n) {
        syntax_error(line_no, "expected " + std::to_string(n) +
                                  " operands for '" + mnemonic + "', got " +
                                  std::to_string(ops.size()));
      }
    };
    auto imm_or_label = [&](const std::string& tok, bool lpsetup) -> i32 {
      i64 v = 0;
      if (parse_int(tok, &v)) return static_cast<i32>(v);
      pending.push_back(
          {static_cast<u32>(code.size()), tok, line_no, lpsetup});
      return 0;
    };

    Instr in;
    in.op = op;
    switch (fmt) {
      case Fmt::kR:
        need(3);
        in.rd = parse_reg(ops[0], line_no);
        in.ra = parse_reg(ops[1], line_no);
        in.rb = parse_reg(ops[2], line_no);
        break;
      case Fmt::kI:
        need(3);
        in.rd = parse_reg(ops[0], line_no);
        in.ra = parse_reg(ops[1], line_no);
        in.imm = imm_or_label(ops[2], false);
        break;
      case Fmt::kMem:
        need(3);  // "lw rd, imm(ra)" tokenises to rd, imm, ra
        in.rd = parse_reg(ops[0], line_no);
        in.imm = imm_or_label(ops[1], false);
        in.ra = parse_reg(ops[2], line_no);
        break;
      case Fmt::kB:
        need(3);
        in.ra = parse_reg(ops[0], line_no);
        in.rb = parse_reg(ops[1], line_no);
        in.imm = imm_or_label(ops[2], false);
        break;
      case Fmt::kLui:
      case Fmt::kJ:
        need(2);
        in.rd = parse_reg(ops[0], line_no);
        in.imm = imm_or_label(ops[1], false);
        break;
      case Fmt::kLp: {
        need(3);
        i64 id = 0;
        if (!parse_int(ops[0], &id) || id < 0 || id > 1) {
          syntax_error(line_no, "lp.setup id must be 0 or 1");
        }
        in.rd = static_cast<u8>(id);
        in.ra = parse_reg(ops[1], line_no);
        in.imm = imm_or_label(ops[2], true);
        break;
      }
      case Fmt::kSys:
        if (op == Opcode::kCsrr) {
          need(2);
          in.rd = parse_reg(ops[0], line_no);
          in.imm = imm_or_label(ops[1], false);
        } else if (op == Opcode::kSev || op == Opcode::kEoc) {
          if (ops.size() == 1) in.imm = imm_or_label(ops[0], false);
          else need(0);
        } else {
          need(0);
        }
        break;
    }
    // Literal immediates are validated here; label-resolved offsets are
    // validated after backpatching below.
    if (pending.size() == pending_before &&
        !isa::imm_fits(in.op, in.imm)) {
      syntax_error(line_no, "immediate " + std::to_string(in.imm) +
                                " out of range for '" + mnemonic + "'");
    }
    code.push_back(in);
  }

  for (const PendingLabel& p : pending) {
    const auto it = labels.find(p.name);
    if (it == labels.end()) {
      syntax_error(p.line, "undefined label '" + p.name + "'");
    }
    Instr& in = code[p.instr_index];
    if (p.is_lpsetup) {
      const i64 body = static_cast<i64>(it->second) - (p.instr_index + 1);
      if (body <= 0) syntax_error(p.line, "lp.setup end label before body");
      in.imm = static_cast<i32>(body);
    } else {
      in.imm = static_cast<i32>(static_cast<i64>(it->second) - p.instr_index);
    }
    ULP_CHECK(isa::imm_fits(in.op, in.imm), "asm line " +
                                                std::to_string(p.line) +
                                                ": offset out of range");
  }

  isa::Program prog;
  prog.code = std::move(code);
  return prog;
}

}  // namespace ulp::codegen
