#include "codegen/builder.hpp"

#include "common/memmap.hpp"
#include "common/status.hpp"
#include "isa/encoding.hpp"

namespace ulp::codegen {

using isa::Opcode;

u32 Builder::emit(Opcode op, u8 rd, u8 ra, u8 rb, i32 imm) {
  const u32 index = here();
  code_.push_back(isa::Instr{op, rd, ra, rb, imm});
  return index;
}

const isa::Instr& Builder::instr_at(u32 index) const {
  ULP_CHECK(index < code_.size(), "instr_at index out of range");
  return code_[index];
}

void Builder::patch_imm(u32 index, i32 imm) {
  ULP_CHECK(index < code_.size(), "patch_imm index out of range");
  ULP_CHECK(isa::imm_fits(code_[index].op, imm),
            "patch_imm immediate out of range");
  code_[index].imm = imm;
}

Builder::Label Builder::make_label() {
  label_pos_.push_back(-1);
  return static_cast<Label>(label_pos_.size() - 1);
}

void Builder::bind(Label label) {
  ULP_CHECK(label < label_pos_.size(), "unknown label");
  ULP_CHECK(label_pos_[label] < 0, "label bound twice");
  label_pos_[label] = here();
}

void Builder::branch(Opcode op, u8 ra, u8 rb, Label target) {
  ULP_CHECK(isa::is_branch(op), "branch() requires a branch opcode");
  fixups_.push_back({emit(op, 0, ra, rb, 0), target});
}

void Builder::jal(u8 rd, Label target) {
  fixups_.push_back({emit(Opcode::kJal, rd, 0, 0, 0), target});
}

void Builder::li(u8 rd, u32 value) {
  const i32 sval = static_cast<i32>(value);
  if (sval >= -(1 << 14) && sval < (1 << 14)) {
    emit(Opcode::kAddi, rd, zero, 0, sval);
    return;
  }
  // lui covers bits [31:12]; ori fills in the low 12 (always non-negative).
  emit(Opcode::kLui, rd, 0, 0, static_cast<i32>(value >> 12));
  if ((value & 0xFFF) != 0) {
    emit(Opcode::kOri, rd, rd, 0, static_cast<i32>(value & 0xFFF));
  }
}

void Builder::loop(u8 count, u8 scratch, const std::function<void()>& body) {
  if (feat_.has_hwloops && hwloop_depth_ < 2) {
    // Outer loops take slot 0, the innermost takes slot 1 (checked first by
    // the core, so nesting resolves correctly).
    const u8 slot = static_cast<u8>(hwloop_depth_);
    ++hwloop_depth_;
    const u32 setup = emit(Opcode::kLpSetup, slot, count, 0, /*imm=*/1);
    const u32 body_start = here();
    body();
    const u32 body_len = here() - body_start;
    ULP_CHECK(body_len > 0, "hardware loop body is empty");
    code_[setup].imm = static_cast<i32>(body_len);
    --hwloop_depth_;
    return;
  }
  // Software down-counter.
  mv(scratch, count);
  const Label done = make_label();
  const Label top = make_label();
  branch(Opcode::kBeq, scratch, zero, done);
  bind(top);
  body();
  emit(Opcode::kAddi, scratch, scratch, 0, -1);
  branch(Opcode::kBne, scratch, zero, top);
  bind(done);
}

void Builder::loop_hot(u32 count, u8 scratch, const std::function<void()>& body,
                       u32 unroll) {
  ULP_CHECK(count > 0, "loop_hot requires a positive trip count");
  if (feat_.has_hwloops && hwloop_depth_ < 2) {
    li(scratch, count);
    loop(scratch, scratch, body);
    return;
  }
  const u32 factor = feat_.unroll_hot ? unroll : 1;
  ULP_CHECK(factor > 0 && count % factor == 0,
            "loop_hot trip count must be a multiple of the unroll factor");
  li(scratch, count / factor);
  const Label top = make_label();
  bind(top);
  for (u32 u = 0; u < factor; ++u) body();
  emit(Opcode::kAddi, scratch, scratch, 0, -1);
  branch(Opcode::kBne, scratch, zero, top);
}

void Builder::mac(u8 rd, u8 ra, u8 rb, u8 scratch) {
  if (feat_.has_mac) {
    emit(Opcode::kMac, rd, ra, rb);
    return;
  }
  emit(Opcode::kMul, scratch, ra, rb);
  emit(Opcode::kAdd, rd, rd, scratch);
}

void Builder::access_pi(Opcode op, u8 rd, u8 ra, i32 step) {
  if (feat_.has_postinc) {
    emit(op, rd, ra, 0, step);
    return;
  }
  emit(strip_postinc(op), rd, ra, 0, 0);
  emit(Opcode::kAddi, ra, ra, 0, step);
}

isa::Opcode Builder::strip_postinc(Opcode op) {
  switch (op) {
    case Opcode::kLwpi: return Opcode::kLw;
    case Opcode::kLhpi: return Opcode::kLh;
    case Opcode::kLhupi: return Opcode::kLhu;
    case Opcode::kLbpi: return Opcode::kLb;
    case Opcode::kLbupi: return Opcode::kLbu;
    case Opcode::kSwpi: return Opcode::kSw;
    case Opcode::kShpi: return Opcode::kSh;
    case Opcode::kSbpi: return Opcode::kSb;
    default:
      ULP_CHECK(false, "not a post-increment opcode");
  }
}

void Builder::mulh_signed(u8 rd, u8 ra, u8 rb, u8 t0, u8 t1, u8 t2, u8 t3) {
  if (feat_.has_mul64) {
    emit(Opcode::kMulhs, rd, ra, rb);
    return;
  }
  // 16x16 partial products with exact carry propagation. With a = ah:al and
  // b = bh:bl (al/bl unsigned, ah/bh signed):
  //   hi = ah*bh + (ah*bl)>>16 + (al*bh)>>16
  //      + ((al*bl)>>16 + (ah*bl & 0xFFFF) + (al*bh & 0xFFFF)) >> 16.
  // The middle products are split into high/low halves so their sum can
  // never wrap (the classic mulh emulation). rd may not alias the sources
  // or scratch registers; the kernels respect this.
  emit(Opcode::kSlli, t0, ra, 0, 16);
  emit(Opcode::kSrli, t0, t0, 0, 16);  // al
  emit(Opcode::kSrai, t1, ra, 0, 16);  // ah
  emit(Opcode::kSlli, t2, rb, 0, 16);
  emit(Opcode::kSrli, t2, t2, 0, 16);  // bl
  emit(Opcode::kSrai, t3, rb, 0, 16);  // bh
  emit(Opcode::kMul, rd, t1, t3);      // ah*bh
  emit(Opcode::kMul, t3, t0, t3);      // al*bh
  emit(Opcode::kMul, t1, t1, t2);      // ah*bl
  emit(Opcode::kMul, t0, t0, t2);      // al*bl
  emit(Opcode::kSrli, t0, t0, 0, 16);  // carry word u = (al*bl) >> 16
  emit(Opcode::kSlli, t2, t1, 0, 16);
  emit(Opcode::kSrli, t2, t2, 0, 16);  // (ah*bl) & 0xFFFF
  emit(Opcode::kAdd, t0, t0, t2);      // u += low(ah*bl)
  emit(Opcode::kSlli, t2, t3, 0, 16);
  emit(Opcode::kSrli, t2, t2, 0, 16);  // (al*bh) & 0xFFFF
  emit(Opcode::kAdd, t0, t0, t2);      // u += low(al*bh)
  emit(Opcode::kSrli, t0, t0, 0, 16);  // u >> 16: carry into the high word
  emit(Opcode::kAdd, rd, rd, t0);
  emit(Opcode::kSrai, t1, t1, 0, 16);  // high(ah*bl), signed
  emit(Opcode::kAdd, rd, rd, t1);
  emit(Opcode::kSrai, t3, t3, 0, 16);  // high(al*bh), signed
  emit(Opcode::kAdd, rd, rd, t3);
}

void Builder::q32_mul(u8 rd, u8 ra, u8 rb, u8 t0, u8 t1, u8 t2, u8 t3) {
  if (feat_.has_mul64) {
    // (hi << 16) | (lo >> 16): three extra ALU ops around mulhs/mul.
    emit(Opcode::kMulhs, t0, ra, rb);
    emit(Opcode::kMul, t1, ra, rb);
    emit(Opcode::kSlli, t0, t0, 0, 16);
    emit(Opcode::kSrli, t1, t1, 0, 16);
    emit(Opcode::kOr, rd, t0, t1);
    return;
  }
  // Software path: compute hi into t2' via mulh_signed-style partials, but
  // we also need the low word; reuse the partial products directly.
  // a = ah:al, b = bh:bl. product>>16 (bits 47:16) =
  //   (ah*bh)<<16 + ah*bl + al*bh + ((al*bl)>>16).
  emit(Opcode::kSlli, t0, ra, 0, 16);
  emit(Opcode::kSrli, t0, t0, 0, 16);  // al
  emit(Opcode::kSrai, t1, ra, 0, 16);  // ah
  emit(Opcode::kSlli, t2, rb, 0, 16);
  emit(Opcode::kSrli, t2, t2, 0, 16);  // bl
  emit(Opcode::kSrai, t3, rb, 0, 16);  // bh
  emit(Opcode::kMul, rd, t1, t3);      // ah*bh
  emit(Opcode::kSlli, rd, rd, 0, 16);
  emit(Opcode::kMul, t3, t0, t3);      // al*bh
  emit(Opcode::kMul, t1, t1, t2);      // ah*bl
  emit(Opcode::kMul, t0, t0, t2);      // al*bl
  emit(Opcode::kSrli, t0, t0, 0, 16);
  emit(Opcode::kAdd, rd, rd, t3);
  emit(Opcode::kAdd, rd, rd, t1);
  emit(Opcode::kAdd, rd, rd, t0);
}

void Builder::add64(u8 lo_d, u8 hi_d, u8 lo_s, u8 hi_s, u8 scratch) {
  emit(Opcode::kAdd, lo_d, lo_d, lo_s);
  emit(Opcode::kSltu, scratch, lo_d, lo_s);  // carry out of the low word
  emit(Opcode::kAdd, hi_d, hi_d, hi_s);
  emit(Opcode::kAdd, hi_d, hi_d, scratch);
}

void Builder::dma_start(u8 base, u8 src, u8 dst, u8 len) {
  li(base, memmap::kDmaBase);
  emit(Opcode::kSw, src, base, 0, 0x00);
  emit(Opcode::kSw, dst, base, 0, 0x04);
  emit(Opcode::kSw, len, base, 0, 0x08);
  emit(Opcode::kSw, zero, base, 0, 0x0C);  // CMD: enqueue
}

void Builder::dma_wait(u8 base, u8 tmp) {
  const Label top = make_label();
  bind(top);
  emit(Opcode::kLw, tmp, base, 0, 0x10);  // STATUS
  branch(Opcode::kBne, tmp, zero, top);
}

void Builder::dma_wait_wfe(u8 base, u8 tmp) {
  const Label top = make_label();
  const Label done = make_label();
  bind(top);
  emit(Opcode::kLw, tmp, base, 0, 0x10);  // STATUS: outstanding transfers
  branch(Opcode::kBeq, tmp, zero, done);
  emit(Opcode::kWfe);  // DMA completion broadcasts an event to every core
  branch(Opcode::kBeq, zero, zero, top);
  bind(done);
  // Land the exit on an instruction of our own: hardware loop-back triggers
  // only on a *sequential* advance reaching the body end, so if `done` were
  // the first instruction after an enclosing loop() body, the taken exit
  // branch would jump past the loop-back check and abandon the loop.
  nop();
}

void Builder::add_data(Addr addr, std::vector<u8> bytes) {
  data_.push_back(isa::Segment{addr, std::move(bytes)});
}

isa::Program Builder::finalize(u32 entry) {
  for (const Fixup& fx : fixups_) {
    ULP_CHECK(fx.label < label_pos_.size() && label_pos_[fx.label] >= 0,
              "unbound label at finalize");
    const i64 offset =
        label_pos_[fx.label] - static_cast<i64>(fx.instr_index);
    code_[fx.instr_index].imm = static_cast<i32>(offset);
    ULP_CHECK(isa::imm_fits(code_[fx.instr_index].op,
                            code_[fx.instr_index].imm),
              "branch offset out of range");
  }
  isa::Program p;
  p.code = std::move(code_);
  p.data = std::move(data_);
  p.entry = entry;
  ULP_CHECK(entry <= p.code.size(), "entry out of range");
  // Re-arm the builder as empty so accidental reuse is caught by tests.
  code_.clear();
  data_.clear();
  fixups_.clear();
  label_pos_.clear();
  return p;
}

}  // namespace ulp::codegen
