// Feature-directed program builder: the repository's "compiler back-end".
//
// Kernels are written once against this builder; the builder receives the
// target's CoreFeatures and selects instructions exactly the way the paper
// describes -O3 doing for each target:
//   * loop()        -> lp.setup on cores with hardware loops, an
//                      addi/bne down-counter otherwise;
//   * *_pi() access -> post-increment addressing when available, otherwise
//                      the load/store plus an explicit addi;
//   * mac()         -> the MAC instruction (OR10N mac / ARM MLA) when
//                      available, otherwise mul+add through a scratch reg;
//   * mul32x32_hi/q32 helpers -> hardware mulhs/mulhu (Cortex smull/umull)
//                      when available, otherwise the 16x16 partial-product
//                      software emulation — the exact effect behind hog's
//                      architectural slowdown on OR10N (Figure 4).
//
// Branch targets use labels with backpatching; finalize() resolves fixups
// and returns an isa::Program.
#pragma once

#include <functional>
#include <vector>

#include "core/features.hpp"
#include "isa/program.hpp"

namespace ulp::codegen {

/// Register conventions used by the generated kernels (pure convention; the
/// hardware only fixes r0 = zero).
inline constexpr u8 zero = 0;

class Builder {
 public:
  using Label = u32;

  explicit Builder(core::CoreFeatures features) : feat_(features) {}

  [[nodiscard]] const core::CoreFeatures& features() const { return feat_; }

  // ---- raw emission -------------------------------------------------
  /// Emits one instruction; returns its index.
  u32 emit(isa::Opcode op, u8 rd = 0, u8 ra = 0, u8 rb = 0, i32 imm = 0);

  /// Current instruction count (the next emitted index).
  [[nodiscard]] u32 here() const { return static_cast<u32>(code_.size()); }

  /// Read back an already-emitted instruction.
  [[nodiscard]] const isa::Instr& instr_at(u32 index) const;

  /// Patch the immediate of an already-emitted instruction. The program
  /// generator uses this for raw lp.setup body lengths it lays out itself
  /// (boundary cases the loop() helper deliberately avoids).
  void patch_imm(u32 index, i32 imm);

  // ---- labels --------------------------------------------------------
  [[nodiscard]] Label make_label();
  void bind(Label label);
  /// Branch/jal to a label (imm backpatched at finalize()).
  void branch(isa::Opcode op, u8 ra, u8 rb, Label target);
  void jal(u8 rd, Label target);

  // ---- common idioms ---------------------------------------------------
  /// Load an arbitrary 32-bit constant (addi, or lui+ori when wide).
  void li(u8 rd, u32 value);
  void mv(u8 rd, u8 ra) { emit(isa::Opcode::kAdd, rd, ra, zero); }
  void nop() { emit(isa::Opcode::kNop); }

  // ---- feature-directed selections ------------------------------------
  /// Counted loop over `body`, executed reg[count] times (count >= 0; zero
  /// skips the body). `scratch` is clobbered on targets without hardware
  /// loops. Nest freely: two hardware-loop levels, software beyond that.
  void loop(u8 count, u8 scratch, const std::function<void()>& body);

  /// Hot inner loop with a build-time trip count. On hardware-loop targets
  /// this is lp.setup (zero overhead, no need to unroll); on the others the
  /// body is unrolled `unroll`-fold, the way -O3 treats hot innermost loops
  /// on Cortex-M. `count` must be a multiple of `unroll`. The body callback
  /// is invoked per emission, so it must be re-entrant (pure pointer-walk
  /// bodies are). Clobbers `scratch` on non-hardware-loop targets.
  void loop_hot(u32 count, u8 scratch, const std::function<void()>& body,
                u32 unroll = 4);

  /// rd += ra * rb. `scratch` is clobbered on targets without MAC.
  void mac(u8 rd, u8 ra, u8 rb, u8 scratch);

  /// Post-increment memory access: performs the access at reg[ra], then
  /// ra += step. One instruction with has_postinc, two otherwise.
  void lw_pi(u8 rd, u8 ra, i32 step) { access_pi(isa::Opcode::kLwpi, rd, ra, step); }
  void lh_pi(u8 rd, u8 ra, i32 step) { access_pi(isa::Opcode::kLhpi, rd, ra, step); }
  void lhu_pi(u8 rd, u8 ra, i32 step) { access_pi(isa::Opcode::kLhupi, rd, ra, step); }
  void lb_pi(u8 rd, u8 ra, i32 step) { access_pi(isa::Opcode::kLbpi, rd, ra, step); }
  void lbu_pi(u8 rd, u8 ra, i32 step) { access_pi(isa::Opcode::kLbupi, rd, ra, step); }
  void sw_pi(u8 rd, u8 ra, i32 step) { access_pi(isa::Opcode::kSwpi, rd, ra, step); }
  void sh_pi(u8 rd, u8 ra, i32 step) { access_pi(isa::Opcode::kShpi, rd, ra, step); }
  void sb_pi(u8 rd, u8 ra, i32 step) { access_pi(isa::Opcode::kSbpi, rd, ra, step); }

  /// rd = high 32 bits of the signed 64-bit product ra*rb.
  /// Uses mulhs when available; otherwise emits the 16x16 partial-product
  /// emulation (clobbers t0..t3).
  void mulh_signed(u8 rd, u8 ra, u8 rb, u8 t0, u8 t1, u8 t2, u8 t3);

  /// Fixed-point Q·16 multiply: rd = (i64(ra)*rb) >> 16, the hog work-horse.
  /// Clobbers t0..t3 on targets without mulhs.
  void q32_mul(u8 rd, u8 ra, u8 rb, u8 t0, u8 t1, u8 t2, u8 t3);

  /// 64-bit accumulate: (hi_d:lo_d) += (hi_s:lo_s); clobbers `scratch`.
  /// Software carry chain (sltu) everywhere — the ISA has no add-with-carry,
  /// matching the paper's "SW-emulated 64-bit variables for accumulation".
  void add64(u8 lo_d, u8 hi_d, u8 lo_s, u8 hi_s, u8 scratch);

  // ---- cluster services ------------------------------------------------
  void barrier() { emit(isa::Opcode::kBarrier); }
  void sev(u32 event = 0) {
    emit(isa::Opcode::kSev, 0, 0, 0, static_cast<i32>(event));
  }
  void wfe() { emit(isa::Opcode::kWfe); }
  void eoc(u32 flag = 1) { emit(isa::Opcode::kEoc, 0, 0, 0, static_cast<i32>(flag)); }
  void halt() { emit(isa::Opcode::kHalt); }
  void csr_coreid(u8 rd) { emit(isa::Opcode::kCsrr, rd, 0, 0, 0); }
  void csr_numcores(u8 rd) { emit(isa::Opcode::kCsrr, rd, 0, 0, 1); }

  /// Program a DMA transfer with the operands already in registers; `base`
  /// is a scratch register that receives the DMA peripheral base address.
  void dma_start(u8 base, u8 src, u8 dst, u8 len);
  /// Spin until the DMA queue drains (clobbers `tmp`).
  void dma_wait(u8 base, u8 tmp);
  /// Sleep (WFE) until the DMA queue drains: re-checks STATUS on every
  /// event wakeup, so the core is clock-gated for the bulk of the transfer
  /// instead of burning the busy-poll of dma_wait (clobbers `tmp`).
  void dma_wait_wfe(u8 base, u8 tmp);

  // ---- data segments & finalization -------------------------------------
  void add_data(Addr addr, std::vector<u8> bytes);

  /// Resolves label fixups and returns the finished program.
  [[nodiscard]] isa::Program finalize(u32 entry = 0);

 private:
  void access_pi(isa::Opcode op, u8 rd, u8 ra, i32 step);
  [[nodiscard]] static isa::Opcode strip_postinc(isa::Opcode op);

  core::CoreFeatures feat_;
  std::vector<isa::Instr> code_;
  std::vector<isa::Segment> data_;
  std::vector<i64> label_pos_;  // -1 while unbound
  struct Fixup {
    u32 instr_index;
    Label label;
  };
  std::vector<Fixup> fixups_;
  int hwloop_depth_ = 0;
};

}  // namespace ulp::codegen
