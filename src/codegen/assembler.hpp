// A small textual assembler for VR1K.
//
// Complements the Builder (which kernels use programmatically): tests and
// examples can write readable assembly directly. Syntax follows the
// disassembler's output, one instruction per line:
//
//     ; comment (also '#')
//     start:
//         addi  r1, r0, 64
//         lp.setup 0, r1, body_end     ; label or literal body length
//         lw!   r2, 4(r3)              ; post-increment load
//     body_end:
//         beq   r1, r0, start          ; branch targets are labels
//         halt
//
// assemble() resolves labels and returns an isa::Program (no data
// segments; callers attach those separately).
#pragma once

#include <string_view>

#include "isa/program.hpp"

namespace ulp::codegen {

/// Assembles `source`; throws SimError with a line number on syntax errors
/// or unresolved labels.
[[nodiscard]] isa::Program assemble(std::string_view source);

}  // namespace ulp::codegen
